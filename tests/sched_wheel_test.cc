// Determinism regression suite for the timer-wheel engine.
//
// The wheel's contract is exact equivalence with the reference heap
// engine: both implement the (time, seq) total order, so any schedule —
// including adversarial same-tick cancel/reschedule races — must execute
// in the identical event order on both. These tests drive randomized and
// hand-built schedules through EventQueue and ReferenceEventQueue side by
// side and require the fire sequences to match exactly, then pin down the
// clamped() counter, EventId staleness semantics, Arena/Action behavior,
// and parallel-vs-sequential trial identity for the cluster experiments.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "sched/action.h"
#include "sched/cluster.h"
#include "sched/event_queue.h"
#include "sched/reference_queue.h"
#include "sim/arena.h"
#include "sim/clock.h"
#include "sim/parallel.h"

namespace confbench::sched {
namespace {

// --- wheel vs reference equivalence -----------------------------------------

/// Drives one engine through a deterministic random script and records the
/// exact fire order. The script mixes at()/after(), same-tick bursts,
/// cancels and reschedules — all decisions come from the shared RNG stream,
/// so both engines replay the identical script.
template <typename Q>
struct Script {
  Q& q;
  std::mt19937_64 rng;
  std::vector<std::uint64_t> fired;
  std::vector<EventId> handles;
  std::uint64_t next_token = 0;
  std::uint64_t budget;  ///< events the handlers may still schedule

  Script(Q& queue, std::uint64_t seed, std::uint64_t total)
      : q(queue), rng(seed), budget(total) {}

  void seed_initial(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n && budget > 0; ++i) schedule_one();
  }

  void schedule_one() {
    --budget;
    const std::uint64_t token = next_token++;
    const std::uint64_t shape = rng();
    // Delays cluster at a handful of exact values so same-tick collisions
    // are common, with occasional far jumps to cross bucket levels.
    sim::Ns d;
    switch (shape % 8) {
      case 0: d = 0; break;                       // same tick as now
      case 1: d = 100; break;                     // collides constantly
      case 2: d = 100; break;
      case 3: d = 16'384; break;                  // exactly one L0 bucket
      case 4: d = 1'000'000; break;               // ~60 L0 buckets
      case 5: d = 40'000'000; break;              // into L1
      case 6: d = static_cast<sim::Ns>(shape % 97); break;
      default: d = 20'000'000'000; break;         // beyond the calendar
    }
    const EventId id =
        (shape & 1) ? q.after(d, [this, token] { fire(token); })
                    : q.at(q.now() + d, [this, token] { fire(token); });
    handles.push_back(id);
  }

  void fire(std::uint64_t token) {
    fired.push_back(token);
    if (budget == 0) return;
    const std::uint64_t r = rng();
    switch (r % 10) {
      case 0:  // same-tick cancel race: try to kill a pseudo-random event,
               // possibly one also due at this exact tick.
        if (!handles.empty() && q.cancel(handles[r / 16 % handles.size()]))
          schedule_one();  // backfill so the run keeps going
        break;
      case 1:
      case 2: {  // reschedule race, sometimes to *this* tick (fresh seq:
                 // must run after everything already queued at now()).
        if (handles.empty()) break;
        const std::size_t v = r / 16 % handles.size();
        const sim::Ns t = (r & 32) ? q.now() : q.now() + r % 3'000'000;
        const EventId moved = q.reschedule(handles[v], t);
        if (moved.valid()) handles[v] = moved;
        break;
      }
      case 3:  // same-tick burst: several events at one timestamp.
        for (int i = 0; i < 3 && budget > 0; ++i) schedule_one();
        break;
      default:
        schedule_one();
        break;
    }
  }
};

/// Runs the same script on both engines and expects identical execution.
void expect_equivalent(std::uint64_t seed, std::uint64_t total) {
  sim::VirtualClock wheel_clock, ref_clock;
  EventQueue wheel(wheel_clock);
  ReferenceEventQueue ref(ref_clock);

  Script<EventQueue> ws(wheel, seed, total);
  Script<ReferenceEventQueue> rs(ref, seed, total);
  ws.seed_initial(total / 4);
  rs.seed_initial(total / 4);
  wheel.run();
  ref.run();

  ASSERT_EQ(ws.fired, rs.fired) << "seed " << seed;
  EXPECT_DOUBLE_EQ(wheel_clock.now(), ref_clock.now()) << "seed " << seed;
  EXPECT_EQ(wheel.processed(), ref.processed());
  EXPECT_EQ(wheel.cancelled(), ref.cancelled());
  EXPECT_EQ(wheel.clamped(), ref.clamped());
  EXPECT_TRUE(wheel.empty());
  EXPECT_TRUE(ref.empty());
}

TEST(WheelEquivalence, RandomizedSchedulesMatchReferenceOrder) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1337ULL, 99991ULL})
    expect_equivalent(seed, 4000);
}

TEST(WheelEquivalence, LongRandomizedScheduleMatches) {
  expect_equivalent(123456789, 40000);
}

TEST(WheelEquivalence, HandBuiltSameTickRaces) {
  // Four events at t=100. The first handler cancels the third and
  // reschedules the second to t=100 again — the reschedule takes a fresh
  // seq, so the moved event runs after the surviving original order.
  auto run = [](auto& q) {
    std::vector<std::string> order;
    std::vector<EventId> ids;
    ids.push_back(q.at(100, [&] {
      order.push_back("a");
      EXPECT_TRUE(q.cancel(ids[2]));
      const EventId moved = q.reschedule(ids[1], 100);
      EXPECT_TRUE(moved.valid());
    }));
    ids.push_back(q.at(100, [&] { order.push_back("b"); }));
    ids.push_back(q.at(100, [&] { order.push_back("c"); }));
    ids.push_back(q.at(100, [&] { order.push_back("d"); }));
    q.run();
    return order;
  };
  sim::VirtualClock wc, rc;
  EventQueue wheel(wc);
  ReferenceEventQueue ref(rc);
  const std::vector<std::string> expected = {"a", "d", "b"};
  EXPECT_EQ(run(wheel), expected);
  EXPECT_EQ(run(ref), expected);
}

// --- clamped() / past-time scheduling (satellite bugfix) --------------------

TEST(WheelClamping, PastSchedulesAreCountedAndRunAtNow) {
  sim::VirtualClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  q.at(1000, [&] {
    order.push_back(1);
    // now() == 1000: both forms of past scheduling clamp to now and count.
    q.at(10, [&] { order.push_back(2); });
    EXPECT_EQ(q.clamped(), 1u);
  });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(clock.now(), 1000);  // clamped event did not move time back
  EXPECT_EQ(q.clamped(), 1u);
}

TEST(WheelClamping, RescheduleIntoPastClampsAndCounts) {
  sim::VirtualClock clock;
  EventQueue q(clock);
  bool late_ran = false;
  const EventId late = q.at(5000, [&] { late_ran = true; });
  q.at(1000, [&] {
    const EventId moved = q.reschedule(late, 10);  // past: clamps to 1000
    EXPECT_TRUE(moved.valid());
  });
  q.run();
  EXPECT_TRUE(late_ran);
  EXPECT_DOUBLE_EQ(clock.now(), 1000);
  EXPECT_EQ(q.clamped(), 1u);
}

// --- EventId staleness ------------------------------------------------------

TEST(WheelEventId, HandlesGoStaleExactlyOnce) {
  sim::VirtualClock clock;
  EventQueue q(clock);
  EXPECT_FALSE(q.cancel(EventId{}));  // default handle is never valid

  int runs = 0;
  const EventId id = q.at(100, [&] { ++runs; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));                     // double cancel
  EXPECT_FALSE(q.reschedule(id, 200).valid());    // stale reschedule
  q.run();
  EXPECT_EQ(runs, 0);  // cancelled events never run
  EXPECT_EQ(q.cancelled(), 1u);

  const EventId fired = q.at(300, [&] { ++runs; });
  q.run();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(q.cancel(fired));  // fired events are stale too
}

TEST(WheelEventId, RescheduleInvalidatesTheOldHandle) {
  sim::VirtualClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  const EventId a = q.at(100, [&] { order.push_back(1); });
  q.at(150, [&] { order.push_back(2); });
  const EventId moved = q.reschedule(a, 400);
  ASSERT_TRUE(moved.valid());
  EXPECT_FALSE(q.cancel(a));  // old handle died with the reschedule
  q.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_DOUBLE_EQ(clock.now(), 400);
  // The replacement handle is stale after the event fires.
  EXPECT_FALSE(q.cancel(moved));
}

TEST(WheelEventId, CancelledEventsNeverAdvanceTheClock) {
  sim::VirtualClock clock;
  EventQueue q(clock);
  q.at(100, [] {});
  const EventId far = q.at(50'000'000'000, [] {});  // deep in the calendar
  EXPECT_TRUE(q.cancel(far));
  q.run();
  EXPECT_DOUBLE_EQ(clock.now(), 100);  // drained without visiting t=50s
}

// --- Arena / Action ---------------------------------------------------------

TEST(Arena, AlignsAndResets) {
  sim::Arena arena(64);
  void* a = arena.allocate(1, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(200, 16);  // forces block growth
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 16, 0u);
  EXPECT_NE(a, b);
  EXPECT_GE(arena.bytes_served(), 209u);
  arena.reset();
  EXPECT_EQ(arena.bytes_served(), 0u);
  EXPECT_EQ(arena.blocks(), 1u);  // keeps the largest block for reuse
}

TEST(Arena, VectorUsesArenaStorage) {
  sim::Arena arena;
  sim::ArenaVector<std::uint64_t> v{sim::ArenaAllocator<std::uint64_t>(arena)};
  for (std::uint64_t i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v[999], 999u);
  EXPECT_GE(arena.bytes_served(), 1000 * sizeof(std::uint64_t));
}

TEST(Action, SmallClosuresStayInline) {
  sim::Arena arena;
  const std::size_t before = arena.bytes_served();
  std::uint64_t x = 0, y = 0, z = 0;
  Action a([&x, &y, &z] { x = y = z = 7; }, arena);  // 24 bytes: inline
  a();
  EXPECT_EQ(x, 7u);
  EXPECT_EQ(arena.bytes_served(), before);  // no spill
}

TEST(Action, OversizedClosuresSpillToTheArena) {
  sim::Arena arena;
  struct Big {
    std::uint64_t pad[12];  // 96 bytes > kInlineBytes
    std::uint64_t* out;
    void operator()() const { *out = pad[0]; }
  };
  std::uint64_t result = 0;
  Big big{};
  big.pad[0] = 42;
  big.out = &result;
  Action a(big, arena);
  EXPECT_GE(arena.bytes_served(), sizeof(Big));
  Action b = std::move(a);  // spilled actions relocate by pointer
  b();
  EXPECT_EQ(result, 42u);
}

TEST(Action, RefWrapsWithoutCopying) {
  int count = 0;
  auto recurring = [&count] { ++count; };
  Action a = Action::ref(recurring);
  Action b = Action::ref(recurring);
  a();
  b();
  EXPECT_EQ(count, 2);
}

TEST(Action, MoveTransfersOwnershipOnce) {
  auto counter = std::make_shared<int>(0);
  Action a([counter] { ++*counter; });
  Action b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(*counter, 1);
  EXPECT_EQ(counter.use_count(), 2);  // exactly one owning copy left
}

// --- parallel trials vs sequential (determinism regression) -----------------

/// Full scalar-field and histogram comparison between two results. CSV
/// rows are pure functions of these fields, so equality here is equality
/// of the emitted bytes.
void expect_same_result(const ClusterResult& a, const ClusterResult& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.hedges, b.hedges);
  EXPECT_EQ(a.hedge_wins, b.hedge_wins);
  EXPECT_EQ(a.hedge_cancelled, b.hedge_cancelled);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_DOUBLE_EQ(a.latency.sum(), b.latency.sum());
  EXPECT_DOUBLE_EQ(a.latency.p50(), b.latency.p50());
  EXPECT_DOUBLE_EQ(a.latency.p99(), b.latency.p99());
  EXPECT_DOUBLE_EQ(a.latency.p999(), b.latency.p999());
  EXPECT_EQ(a.queue_wait.count(), b.queue_wait.count());
  EXPECT_DOUBLE_EQ(a.queue_wait.sum(), b.queue_wait.sum());
}

ServiceModel test_model() {
  ServiceModel m;
  m.parallel_ns = 1 * sim::kMs;
  m.serialized_ns = 0.2 * sim::kMs;
  m.jitter_sigma = 0.02;
  m.cold_start_ns = 0.5 * sim::kSec;
  return m;
}

TEST(ParallelTrials, ClusterLoadShapeMatchesSequential) {
  // A miniature of the cluster_load sweep: several independent cells at
  // different offered loads and seeds.
  std::vector<ClusterExperiment::Trial> trials;
  for (const double rate : {2000.0, 4000.0, 6000.0}) {
    for (const std::uint64_t seed : {11ULL, 12ULL}) {
      ClusterConfig cfg;
      cfg.rate_rps = rate;
      cfg.requests = 6000;
      cfg.warmup_requests = 500;
      cfg.seed = seed;
      cfg.queue = {.concurrency = 8, .queue_depth = 16};
      cfg.scaler = {.min_warm = 4, .max_replicas = 4,
                    .tick_ns = 20 * sim::kMs};
      trials.push_back({cfg, test_model()});
    }
  }
  const std::vector<ClusterResult> seq =
      ClusterExperiment::run_trials(trials, 1);
  const std::vector<ClusterResult> par =
      ClusterExperiment::run_trials(trials, 4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    SCOPED_TRACE(i);
    expect_same_result(seq[i], par[i]);
    EXPECT_TRUE(par[i].accounted());
  }
}

TEST(ParallelTrials, ChaosRecoveryShapeMatchesSequential) {
  // A miniature of the chaos_recovery bench: crashes mid-run, retries,
  // hedging — the paths that exercise EventQueue::cancel under faults.
  std::vector<ClusterExperiment::Trial> trials;
  for (const std::uint64_t seed : {21ULL, 22ULL, 23ULL}) {
    ClusterConfig cfg;
    cfg.rate_rps = 3000;
    cfg.requests = 6000;
    cfg.seed = seed;
    cfg.queue = {.concurrency = 8, .queue_depth = 16};
    cfg.scaler = {.min_warm = 4, .max_replicas = 4, .tick_ns = 20 * sim::kMs};
    cfg.faults.crash(0.4 * sim::kSec, 1).crash(0.9 * sim::kSec, 2);
    cfg.retry = {.max_attempts = 3, .base_backoff_ns = 5 * sim::kMs};
    cfg.hedge.enabled = true;
    cfg.hedge.quantile = 0.9;
    cfg.recovery = {.boot_ns = 0.5 * sim::kSec};
    trials.push_back({cfg, test_model()});
  }
  const std::vector<ClusterResult> seq =
      ClusterExperiment::run_trials(trials, 1);
  const std::vector<ClusterResult> par =
      ClusterExperiment::run_trials(trials, 4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    SCOPED_TRACE(i);
    expect_same_result(seq[i], par[i]);
    EXPECT_GT(par[i].crashes, 0u);
    EXPECT_GT(par[i].hedges, 0u);
  }
}

TEST(ParallelTrials, ParallelForOrderedCoversEveryIndexOnce) {
  std::vector<int> hits(257, 0);
  sim::parallel_for_ordered(hits.size(), 4,
                            [&](std::size_t i) { hits[i] += 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
  // Sequential fallback path.
  sim::parallel_for_ordered(hits.size(), 1,
                            [&](std::size_t i) { hits[i] += 1; });
  for (const int h : hits) EXPECT_EQ(h, 2);
}

}  // namespace
}  // namespace confbench::sched

// Attestation verification service: cost-model centralization, collateral
// cache TTL/revocation semantics, session-ticket lifecycle edges, batched
// verification with outage-mid-batch behaviour, and the fault/cluster/shard
// integrations (hooks, migration re-attest, cross-shard crossings).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "attest/svc/collateral_cache.h"
#include "attest/svc/cost_model.h"
#include "attest/svc/ticket.h"
#include "attest/svc/verify_service.h"
#include "core/gateway.h"
#include "fault/fault.h"
#include "fault/migrate.h"
#include "fault/recovery.h"
#include "sched/cluster.h"
#include "sched/event_queue.h"
#include "sched/shard.h"
#include "sim/clock.h"
#include "sim/time.h"
#include "tee/registry.h"

namespace confbench::attest::svc {
namespace {

using sim::kMs;
using sim::kSec;
using sim::kUs;

// --- CostModel ---------------------------------------------------------------

TEST(CostModel, SinglePricingAuthorityMatchesLegacyMeasureAttest) {
  // The legacy fault:: entry point and every new consumer must charge the
  // same full-round price — that is the point of centralizing the three
  // call sites behind the service.
  for (const std::string name : {"tdx", "sev-snp", "cca"}) {
    const tee::PlatformPtr plat = tee::Registry::instance().create(name);
    ASSERT_TRUE(plat);
    const CostModel m = CostModel::measure(*plat);
    EXPECT_EQ(m.platform, name);
    EXPECT_DOUBLE_EQ(m.full_round_ns, fault::measure_attest_ns(*plat));
    // The registry-lookup overload prices identically.
    EXPECT_DOUBLE_EQ(CostModel::measure(name).full_round_ns, m.full_round_ns);
  }
  EXPECT_THROW(CostModel::measure("no-such-tee"), std::invalid_argument);
}

TEST(CostModel, DecompositionMatchesPlatformCharacter) {
  const CostModel tdx = CostModel::measure("tdx");
  EXPECT_TRUE(tdx.supported);
  // TDX is PCS-bound: the collateral share dominates the round.
  EXPECT_GT(tdx.collateral_ns, tdx.evidence_ns + tdx.verify_ns);
  EXPECT_GT(tdx.full_round_ns, 1 * kSec);
  EXPECT_LT(tdx.warm_verify_ns(), tdx.full_round_ns);
  EXPECT_FALSE(tdx.evtpm_available);

  const CostModel snp = CostModel::measure("sev-snp");
  EXPECT_TRUE(snp.supported);
  EXPECT_LT(snp.full_round_ns, tdx.full_round_ns);
  // e-vTPM (SVSM vTPM at VMPL0) is an SNP-only verification mode, and a
  // local quote check beats re-deriving trust from the AMD-SP.
  EXPECT_TRUE(snp.evtpm_available);
  EXPECT_GT(snp.evtpm_round_ns, 0);
  EXPECT_LT(snp.evtpm_round_ns, snp.full_round_ns);

  const CostModel cca = CostModel::measure("cca");
  EXPECT_FALSE(cca.supported);
  EXPECT_DOUBLE_EQ(cca.full_round_ns, 0);
  EXPECT_DOUBLE_EQ(cca.warm_verify_ns(), 0);
}

// --- CollateralCache ---------------------------------------------------------

TEST(CollateralCache, TtlClassifiesHitStaleMissAndExpiryIsStrict) {
  CollateralCache cache(100 * kMs);
  const CollateralKey k{"tdx", 0};
  EXPECT_EQ(cache.lookup(k, 0), CacheOutcome::kMiss);
  cache.insert(k, 10 * kMs);
  EXPECT_EQ(cache.lookup(k, 109 * kMs), CacheOutcome::kHit);
  // An entry whose TTL ends exactly at the lookup instant is already stale.
  EXPECT_EQ(cache.lookup(k, 110 * kMs), CacheOutcome::kStale);
  cache.insert(k, 110 * kMs);  // refetch overwrites the stale entry
  EXPECT_EQ(cache.lookup(k, 111 * kMs), CacheOutcome::kHit);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.stale(), 1u);
  EXPECT_DOUBLE_EQ(cache.fetched_at(k), 110 * kMs);
  EXPECT_DOUBLE_EQ(cache.fetched_at({"tdx", 9}), 0);
}

TEST(CollateralCache, NonPositiveTtlDisablesCaching) {
  CollateralCache off(0);
  const CollateralKey k{"tdx", 0};
  off.insert(k, 0);
  EXPECT_EQ(off.lookup(k, 1), CacheOutcome::kMiss);
  EXPECT_EQ(off.size(), 0u);
}

TEST(CollateralCache, RevocationFlushesEveryTcbLevelOfThePlatform) {
  CollateralCache cache(1 * kSec);
  cache.insert({"tdx", 0}, 0);
  cache.insert({"tdx", 7}, 0);
  cache.insert({"sev-snp", 0}, 0);
  EXPECT_EQ(cache.revoke("tdx"), 2u);
  // Cached-but-revoked collateral must never validate a quote.
  EXPECT_EQ(cache.lookup({"tdx", 0}, 1 * kMs), CacheOutcome::kMiss);
  EXPECT_EQ(cache.lookup({"tdx", 7}, 1 * kMs), CacheOutcome::kMiss);
  EXPECT_EQ(cache.lookup({"sev-snp", 0}, 1 * kMs), CacheOutcome::kHit);
  EXPECT_EQ(cache.revocation_flushes(), 2u);
}

TEST(CollateralCache, TcbRecoveryBumpsTheLevelWithoutFlushing) {
  CollateralCache cache(1 * kSec);
  cache.insert({"tdx", 0}, 0);
  EXPECT_EQ(cache.current_tcb(), 0);
  EXPECT_EQ(cache.tcb_recovery(), 1);
  EXPECT_EQ(cache.current_tcb(), 1);
  // Softer than revocation: nothing is flushed — the old-level entry stays
  // valid for old-level quotes, it just stops being looked up once
  // verifiers add the new offset to their callers' base level.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup({"tdx", 0}, 1 * kMs), CacheOutcome::kHit);
  EXPECT_EQ(cache.lookup({"tdx", 1}, 1 * kMs), CacheOutcome::kMiss);
  EXPECT_EQ(cache.tcb_recovery(), 2);
  EXPECT_EQ(cache.tcb_recoveries(), 2u);
}

// --- TicketTable -------------------------------------------------------------

TEST(TicketTable, ExpiryExactlyAtTheCrossingInstantIsDead) {
  TicketTable t(100 * kMs);
  t.mint(7, 0);
  EXPECT_TRUE(t.valid(7, 99 * kMs));
  EXPECT_TRUE(t.resume(7, 99 * kMs));
  // now == mint + ttl: strictly invalid, erased, counted as expiry.
  EXPECT_FALSE(t.valid(7, 100 * kMs));
  EXPECT_FALSE(t.resume(7, 100 * kMs));
  EXPECT_EQ(t.resumed(), 1u);
  EXPECT_EQ(t.expired(), 1u);
  EXPECT_EQ(t.invalidated_total(), 0u) << "expiry is not an invalidation";
  EXPECT_EQ(t.size(), 0u);
}

TEST(TicketTable, InvalidationReasonsAreCountedSeparately) {
  TicketTable t(1 * kSec);
  t.mint(1, 0);
  t.mint(2, 0);
  t.mint(3, 0);
  t.invalidate(1, TicketInvalidation::kMigration);
  t.invalidate(2, TicketInvalidation::kReboot);
  t.invalidate(9, TicketInvalidation::kReboot);  // no ticket: uncounted
  EXPECT_EQ(t.invalidated(TicketInvalidation::kMigration), 1u);
  EXPECT_EQ(t.invalidated(TicketInvalidation::kReboot), 1u);
  EXPECT_FALSE(t.resume(1, 1 * kMs));
  EXPECT_FALSE(t.resume(2, 1 * kMs));
  t.invalidate_all(TicketInvalidation::kRevocation);
  EXPECT_EQ(t.invalidated(TicketInvalidation::kRevocation), 1u);
  EXPECT_EQ(t.invalidated_total(), 3u);
  EXPECT_EQ(t.size(), 0u);

  TicketTable off(0);
  off.mint(1, 0);
  EXPECT_FALSE(off.resume(1, 0));
  EXPECT_EQ(off.minted(), 0u);
}

// --- VerifyService (unit, against a real event queue) ------------------------

/// Synthetic model: numbers chosen so every phase is visible in the
/// completion times (collateral 100ms dominates, verify phases are exact).
CostModel unit_model() {
  CostModel m;
  m.platform = "tdx";
  m.supported = true;
  m.evidence_ns = 10 * kMs;
  m.collateral_ns = 100 * kMs;
  m.verify_ns = 5 * kMs;
  m.full_round_ns = 130 * kMs;
  m.ticket_check_ns = 1 * kMs;
  m.evtpm_available = true;
  m.evtpm_round_ns = 20 * kMs;
  return m;
}

struct Harness {
  sim::VirtualClock clock;
  sched::EventQueue events{clock};
  VerifyService svc;
  Harness(VerifyConfig cfg, CostModel m,
          std::vector<std::pair<sim::Ns, sim::Ns>> outages = {})
      : svc(cfg, std::move(m), [this] { return clock.now(); },
            [this](sim::Ns t, std::function<void()> fn) {
              events.at(t, std::move(fn));
            },
            std::move(outages)) {}
};

TEST(TicketTable, ValidIsANonCountingPeek) {
  // Speculative hedging prices a crossing at *launch* by peeking the
  // successor's ticket; the peek must not disturb the lifecycle counters
  // the arrival-time resume() pays for real.
  TicketTable t(100 * kMs);
  t.mint(7, 0);
  EXPECT_TRUE(t.valid(7, 99 * kMs));
  EXPECT_TRUE(t.valid(7, 99 * kMs));
  EXPECT_EQ(t.resumed(), 0u);
  // Peeking a dead ticket neither erases nor counts it.
  EXPECT_FALSE(t.valid(7, 100 * kMs));
  EXPECT_EQ(t.expired(), 0u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.resume(7, 99 * kMs));
  EXPECT_EQ(t.resumed(), 1u);
}

TEST(VerifyService, FirstCrossingPaysFullRoundRepeatResumesTicket) {
  VerifyConfig cfg;
  cfg.enabled = true;
  Harness h(cfg, unit_model());
  std::vector<VerifyOutcome> out;
  h.events.at(0, [&] {
    h.svc.verify(7, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
  });
  h.events.at(1 * kSec, [&] {
    h.svc.verify(7, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
  });
  h.events.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].status, VerifyStatus::kVerified);
  // window (2ms) + collateral (100ms) + evidence + verify (15ms).
  EXPECT_DOUBLE_EQ(out[0].done_ns, 117 * kMs);
  EXPECT_EQ(out[1].status, VerifyStatus::kResumed);
  EXPECT_DOUBLE_EQ(out[1].done_ns, 1 * kSec + 1 * kMs);
  EXPECT_EQ(h.svc.tickets().minted(), 1u);
  EXPECT_EQ(h.svc.tickets().resumed(), 1u);
  EXPECT_EQ(h.svc.collateral_fetches(), 1u);
}

TEST(VerifyService, TcbRecoveryForcesFreshCollateralButSparesTickets) {
  VerifyConfig cfg;
  cfg.enabled = true;
  cfg.tcb_recovery_at = {500 * kMs};
  Harness h(cfg, unit_model());
  std::vector<VerifyOutcome> out;
  h.events.at(0, [&] {
    h.svc.verify(7, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
  });
  h.events.at(600 * kMs, [&] {
    // Recovery is softer than revocation: 7's session ticket survives...
    h.svc.verify(7, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
    // ...but an unticketed verification keys collateral at the bumped
    // level, misses the warm old-level entry, and re-fetches.
    h.svc.verify(8, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
  });
  h.events.run();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].status, VerifyStatus::kVerified);
  EXPECT_EQ(out[1].status, VerifyStatus::kResumed);
  EXPECT_EQ(out[2].status, VerifyStatus::kVerified);
  // Full price again from the 600ms dispatch: window + collateral +
  // evidence + verify — the warm old-level entry did not help.
  EXPECT_DOUBLE_EQ(out[2].done_ns, 600 * kMs + 117 * kMs);
  EXPECT_EQ(h.svc.collateral_fetches(), 2u);
  EXPECT_EQ(h.svc.cache().tcb_recoveries(), 1u);
}

TEST(VerifyService, BatchAmortizesOneFetchAcrossTheSharedKey) {
  VerifyConfig cfg;
  cfg.enabled = true;
  cfg.ticket_ttl_ns = 0;  // no tickets: every request is a full verify
  Harness h(cfg, unit_model());
  std::vector<VerifyOutcome> out;
  for (int i = 0; i < 5; ++i)
    h.events.at(i * 0.1 * kMs, [&, i] {
      h.svc.verify(static_cast<std::uint64_t>(i), 0, 0,
                   [&](const VerifyOutcome& o) { out.push_back(o); });
    });
  h.events.run();
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(h.svc.batches(), 1u);
  EXPECT_EQ(h.svc.batched_requests(), 5u);
  EXPECT_EQ(h.svc.collateral_fetches(), 1u) << "one fetch per key per batch";
  EXPECT_EQ(h.svc.full_verifies(), 5u);
  for (const VerifyOutcome& o : out) {
    EXPECT_EQ(o.status, VerifyStatus::kVerified);
    EXPECT_DOUBLE_EQ(o.done_ns, 117 * kMs);  // all share the batch's fetch
  }
}

TEST(VerifyService, MaxBatchFlushesWithoutWaitingForTheWindow) {
  VerifyConfig cfg;
  cfg.enabled = true;
  cfg.ticket_ttl_ns = 0;
  cfg.max_batch = 2;
  Harness h(cfg, unit_model());
  std::vector<VerifyOutcome> out;
  h.events.at(0, [&] {
    h.svc.verify(1, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
    h.svc.verify(2, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
  });
  h.events.run();
  ASSERT_EQ(out.size(), 2u);
  // No 2ms window wait: the batch filled and flushed at t=0.
  EXPECT_DOUBLE_EQ(out[0].done_ns, 115 * kMs);
  EXPECT_EQ(h.svc.batches(), 1u);
}

TEST(VerifyService, DeadlineGiveupDeliversAtTheDeadlineInstant) {
  VerifyConfig cfg;
  cfg.enabled = true;
  cfg.ticket_ttl_ns = 0;
  Harness h(cfg, unit_model());
  std::vector<VerifyOutcome> out;
  h.events.at(0, [&] {
    // Priced completion would be 117ms; the deadline at 50ms beats it.
    h.svc.verify(1, 0, 50 * kMs,
                 [&](const VerifyOutcome& o) { out.push_back(o); });
  });
  h.events.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].status, VerifyStatus::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(out[0].done_ns, 50 * kMs);
  EXPECT_EQ(h.svc.deadline_giveups(), 1u);
  EXPECT_EQ(h.svc.tickets().minted(), 0u) << "a give-up mints no ticket";
}

TEST(VerifyService, BoundedQueueRefusesOverflow) {
  VerifyConfig cfg;
  cfg.enabled = true;
  cfg.ticket_ttl_ns = 0;
  cfg.max_queue = 1;
  Harness h(cfg, unit_model());
  std::vector<VerifyOutcome> out;
  h.events.at(0, [&] {
    h.svc.verify(1, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
    h.svc.verify(2, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
  });
  h.events.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].status, VerifyStatus::kQueueFull);
  EXPECT_EQ(out[1].status, VerifyStatus::kVerified);
  EXPECT_EQ(h.svc.queue_rejects(), 1u);
}

TEST(VerifyService, OutageOpeningMidBatchFailsOnlyUnfetchedCollateral) {
  // Regression (satellite): a PCS outage window that opens while a batch's
  // fetch is in flight must fail exactly the requests that needed the
  // fetch; requests verifying against already-cached collateral in the
  // same batch are local and complete.
  VerifyConfig cfg;
  cfg.enabled = true;
  cfg.ticket_ttl_ns = 0;
  cfg.prewarm_subjects = {99};  // warms the tcb-0 collateral entry at t=0
  // Fetch interval for the cold key is [2ms, 102ms): the outage opens
  // mid-flight at 50ms.
  Harness h(cfg, unit_model(), {{50 * kMs, 500 * kMs}});
  std::vector<std::pair<std::uint64_t, VerifyOutcome>> out;
  h.events.at(0, [&] {
    h.svc.verify(1, /*tcb=*/0, 0, [&](const VerifyOutcome& o) {
      out.push_back({1, o});
    });
    h.svc.verify(2, /*tcb=*/1, 0, [&](const VerifyOutcome& o) {
      out.push_back({2, o});
    });
  });
  h.events.run();
  ASSERT_EQ(out.size(), 2u);
  for (const auto& [subject, o] : out) {
    if (subject == 1) {
      EXPECT_EQ(o.status, VerifyStatus::kVerified)
          << "cached collateral is local: the outage must not touch it";
      EXPECT_DOUBLE_EQ(o.done_ns, 17 * kMs);  // window + evidence + verify
    } else {
      EXPECT_EQ(o.status, VerifyStatus::kCollateralUnavailable);
      EXPECT_DOUBLE_EQ(o.done_ns, 102 * kMs);  // learned at the fetch timeout
    }
  }
  EXPECT_EQ(h.svc.fetch_failures(), 1u);
  EXPECT_EQ(h.svc.cache().hits(), 1u);
}

TEST(VerifyService, EvtpmModeSkipsCollateralAndIgnoresOutages) {
  VerifyConfig cfg;
  cfg.enabled = true;
  cfg.ticket_ttl_ns = 0;
  cfg.mode = VerifyMode::kEvtpm;
  Harness h(cfg, unit_model(), {{0, 10 * kSec}});  // outage the whole run
  std::vector<VerifyOutcome> out;
  h.events.at(0, [&] {
    h.svc.verify(1, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
  });
  h.events.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].status, VerifyStatus::kVerified);
  EXPECT_DOUBLE_EQ(out[0].done_ns, 22 * kMs);  // window + evtpm round
  EXPECT_EQ(h.svc.collateral_fetches(), 0u);
  EXPECT_EQ(h.svc.evtpm_verifies(), 1u);
  EXPECT_EQ(h.svc.fetch_failures(), 0u);
}

TEST(VerifyService, HitAgainstInFlightFetchWaitsForItsCompletion) {
  // Batch 1 books the fetch at t=0 (completes at 102ms). Batch 2 flushes
  // at 12ms, hits the booked entry — and must wait for the fetch to land,
  // not verify against collateral that has not arrived yet.
  VerifyConfig cfg;
  cfg.enabled = true;
  cfg.ticket_ttl_ns = 0;
  Harness h(cfg, unit_model());
  std::vector<VerifyOutcome> out;
  h.events.at(0, [&] {
    h.svc.verify(1, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
  });
  h.events.at(10 * kMs, [&] {
    h.svc.verify(2, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
  });
  h.events.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].done_ns, 117 * kMs);
  EXPECT_DOUBLE_EQ(out[1].done_ns, 117 * kMs)
      << "the second batch rides the in-flight fetch, not a time machine";
  EXPECT_EQ(h.svc.collateral_fetches(), 1u);
}

TEST(VerifyService, ScheduledRevocationRacingACrossingWinsTheInstant) {
  // Ticket lifecycle edge (satellite): a revocation and a cross-shard
  // forward land at the same virtual instant. The revocation was booked
  // first (at construction), so the crossing must NOT resume the dead
  // ticket — it pays a full round against refetched collateral.
  VerifyConfig cfg;
  cfg.enabled = true;
  cfg.revoke_at = {200 * kMs};
  cfg.prewarm_subjects = {7};
  Harness h(cfg, unit_model());
  std::vector<VerifyOutcome> out;
  h.events.at(100 * kMs, [&] {
    h.svc.verify(7, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
  });
  h.events.at(200 * kMs, [&] {  // booked after the ctor's revocation event
    h.svc.verify(7, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
  });
  h.events.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].status, VerifyStatus::kResumed) << "before revocation";
  EXPECT_EQ(out[1].status, VerifyStatus::kVerified)
      << "the racing crossing re-verifies from scratch";
  EXPECT_GT(out[1].done_ns, 200 * kMs + unit_model().collateral_ns)
      << "revocation also flushed the collateral cache";
  EXPECT_EQ(h.svc.tickets().invalidated(TicketInvalidation::kRevocation), 1u);
  EXPECT_EQ(h.svc.revocations(), 1u);
  EXPECT_GE(h.svc.cache().revocation_flushes(), 1u);
}

// --- Ticket lifecycle races between hedge launch and hedge arrival ----------
//
// A speculative hedge peeks the successor's trust state when it *launches*
// and establishes trust when it *arrives*, one fabric hop later. Everything
// that can kill the peeked state in between — TTL expiry, a revocation, a
// TCB recovery — must make the arrival fall back to the full verify, never
// resume dead state, and leave the lifecycle counters consistent.

TEST(VerifyService, TicketExpiringBetweenLaunchPeekAndArrivalPaysFullVerify) {
  VerifyConfig cfg;
  cfg.enabled = true;
  cfg.ticket_ttl_ns = 150 * kMs;
  cfg.prewarm_subjects = {7};  // ticket minted at t=0, dead at 150ms
  Harness h(cfg, unit_model());
  std::vector<VerifyOutcome> out;
  h.events.at(100 * kMs, [&] {
    // Launch-time price check: the ticket is still live.
    EXPECT_TRUE(h.svc.tickets().valid(7, h.clock.now()));
  });
  h.events.at(160 * kMs, [&] {  // the hedge lands after the hop: too late
    h.svc.verify(7, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
  });
  h.events.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].status, VerifyStatus::kVerified) << "full verify, no resume";
  EXPECT_EQ(h.svc.tickets().resumed(), 0u);
  EXPECT_EQ(h.svc.tickets().expired(), 1u);
  // Prewarmed collateral keeps the fallback warm: window + evidence+verify.
  EXPECT_EQ(h.svc.collateral_fetches(), 0u);
  EXPECT_DOUBLE_EQ(out[0].done_ns, 177 * kMs);
  EXPECT_EQ(h.svc.tickets().minted(), 2u) << "the fallback re-mints";
}

TEST(VerifyService, RevocationBetweenLaunchPeekAndArrivalForcesRefetch) {
  VerifyConfig cfg;
  cfg.enabled = true;
  cfg.prewarm_subjects = {7};
  cfg.revoke_at = {150 * kMs};
  Harness h(cfg, unit_model());
  std::vector<VerifyOutcome> out;
  h.events.at(100 * kMs, [&] {
    EXPECT_TRUE(h.svc.tickets().valid(7, h.clock.now()));
  });
  h.events.at(160 * kMs, [&] {
    h.svc.verify(7, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
  });
  h.events.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].status, VerifyStatus::kVerified);
  EXPECT_EQ(h.svc.tickets().invalidated(TicketInvalidation::kRevocation), 1u);
  // The revocation also flushed the prewarmed collateral: the fallback
  // pays the whole round — window + collateral + evidence + verify.
  EXPECT_EQ(h.svc.collateral_fetches(), 1u);
  EXPECT_DOUBLE_EQ(out[0].done_ns, 277 * kMs);
}

TEST(VerifyService, TcbRecoveryBetweenLaunchPeekAndArrivalRekeysCollateral) {
  VerifyConfig cfg;
  cfg.enabled = true;
  cfg.ticket_ttl_ns = 0;  // isolate the collateral-key race
  cfg.prewarm_subjects = {7};  // warms the tcb-0 entry at t=0
  cfg.tcb_recovery_at = {150 * kMs};
  Harness h(cfg, unit_model());
  std::vector<VerifyOutcome> out;
  h.events.at(100 * kMs, [&] {
    // Launch-time price check: the current-level collateral is warm.
    EXPECT_TRUE(h.svc.cache().warm({"tdx", h.svc.cache().current_tcb()},
                                   h.clock.now()));
  });
  h.events.at(160 * kMs, [&] {  // arrival keys at the bumped level: cold
    h.svc.verify(8, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
  });
  h.events.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].status, VerifyStatus::kVerified);
  EXPECT_EQ(h.svc.cache().tcb_recoveries(), 1u);
  EXPECT_EQ(h.svc.collateral_fetches(), 1u)
      << "the warm old-level entry must not satisfy the new-level key";
  EXPECT_DOUBLE_EQ(out[0].done_ns, 277 * kMs);
}

TEST(VerifyService, ReverifyStallsOnlyOnAColdCache) {
  const std::vector<std::pair<sim::Ns, sim::Ns>> outage = {
      {100 * kMs, 500 * kMs}};
  VerifyConfig warm_cfg;
  warm_cfg.enabled = true;
  warm_cfg.prewarm_subjects = {0};
  Harness warm(warm_cfg, unit_model(), outage);
  // Warm collateral: the round is local — it sails through the window.
  EXPECT_DOUBLE_EQ(warm.svc.reverify_done_ns(150 * kMs), 165 * kMs);

  VerifyConfig cold_cfg;
  cold_cfg.enabled = true;
  Harness cold(cold_cfg, unit_model(), outage);
  // Cold: the fetch cannot start inside the outage; it stalls to the end
  // of the window, then pays collateral + evidence + verify.
  EXPECT_DOUBLE_EQ(cold.svc.reverify_done_ns(150 * kMs), 615 * kMs);
  // The stall warmed the cache: a second re-attest after the fetch lands
  // is local again.
  EXPECT_DOUBLE_EQ(cold.svc.reverify_done_ns(700 * kMs), 715 * kMs);
}

TEST(VerifyService, UnsupportedPlatformVerifiesForFree) {
  CostModel cca;
  cca.platform = "cca";
  cca.supported = false;
  VerifyConfig cfg;
  cfg.enabled = true;
  Harness h(cfg, cca);
  std::vector<VerifyOutcome> out;
  h.events.at(0, [&] {
    h.svc.verify(1, 0, 0, [&](const VerifyOutcome& o) { out.push_back(o); });
  });
  h.events.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].status, VerifyStatus::kVerified);
  EXPECT_DOUBLE_EQ(out[0].done_ns, 0);
  EXPECT_EQ(h.svc.tickets().minted(), 0u);
  EXPECT_DOUBLE_EQ(h.svc.reverify_done_ns(5 * kMs), 5 * kMs);
}

// --- MigrationPlanner integration --------------------------------------------

TEST(MigrationPlanner, ServiceBackedReattestStallsOnlyOnCacheMiss) {
  fault::MigrationCosts costs;
  costs.pre_copy_ns = 50 * kMs;
  costs.stop_copy_ns = 10 * kMs;
  costs.reaccept_ns = 20 * kMs;
  costs.reattest_ns = 130 * kMs;
  // Outage covers the re-attest start (blackout_start 50 + 30 = 80ms).
  const std::vector<std::pair<sim::Ns, sim::Ns>> outage = {
      {70 * kMs, 300 * kMs}};

  fault::MigrationPlanner legacy(costs, outage);
  const fault::MigrationSchedule l = legacy.plan(0, 0);
  EXPECT_DOUBLE_EQ(l.reattest_start_ns, 300 * kMs) << "legacy stalls flat";
  EXPECT_DOUBLE_EQ(l.blackout_end_ns, 430 * kMs);

  VerifyConfig warm_cfg;
  warm_cfg.enabled = true;
  warm_cfg.prewarm_subjects = {0};
  Harness warm(warm_cfg, unit_model(), outage);
  fault::MigrationPlanner warm_planner(costs, outage);
  warm_planner.attach_service(&warm.svc);
  const fault::MigrationSchedule w = warm_planner.plan(0, 0);
  // Warm collateral: no network share, no outage stall — the blackout ends
  // evidence + verify after re-attest starts.
  EXPECT_DOUBLE_EQ(w.blackout_end_ns, 95 * kMs);
  EXPECT_LT(w.blackout_end_ns, l.blackout_end_ns);

  VerifyConfig cold_cfg;
  cold_cfg.enabled = true;
  Harness cold(cold_cfg, unit_model(), outage);
  fault::MigrationPlanner cold_planner(costs, outage);
  cold_planner.attach_service(&cold.svc);
  const fault::MigrationSchedule c = cold_planner.plan(0, 0);
  // Cold: the fetch stalls to the window end, then pays the full
  // decomposed round.
  EXPECT_DOUBLE_EQ(c.blackout_end_ns, 415 * kMs);
}

// --- Cluster integration (fault hooks) ---------------------------------------

sched::ClusterConfig gray_config() {
  sched::ClusterConfig cfg;
  cfg.requests = 4000;
  cfg.rate_rps = 4000;
  cfg.warmup_requests = 200;
  cfg.seed = 7;
  cfg.queue = {.concurrency = 8, .queue_depth = 32};
  cfg.scaler = {.min_warm = 12, .max_replicas = 12, .tick_ns = 20 * kMs};
  cfg.retry.max_attempts = 4;
  cfg.faults.slow_link(100 * kMs, 800 * kMs, 0, 50 * kMs);
  cfg.outlier.enabled = true;
  cfg.outlier.alpha = 0.3;
  cfg.outlier.min_samples = 20;
  cfg.recovery = {.boot_ns = 2 * kSec, .attest_ns = 0};
  cfg.migration = {.pre_copy_ns = 100 * kMs, .stop_copy_ns = 20 * kMs};
  return cfg;
}

sched::ServiceModel gray_model() {
  sched::ServiceModel m;
  m.parallel_ns = 1 * kMs;
  m.serialized_ns = 0;
  m.jitter_sigma = 0.02;
  m.cold_start_ns = 0.5 * kSec;
  return m;
}

TEST(ClusterHooks, MigrateAndRebootInvalidateTicketsForDistinctReasons) {
  // Ticket lifecycle edge (satellite): DegradeResponse::kMigrate must
  // invalidate the gray replica's ticket as a migration, kReboot as a
  // reboot — the reasons are distinct counters in the registry.
  for (const bool migrate : {false, true}) {
    VerifyConfig vcfg;
    vcfg.enabled = true;
    for (std::uint64_t r = 0; r < 12; ++r) vcfg.prewarm_subjects.push_back(r);
    VerifyService svc(vcfg, unit_model(), nullptr, nullptr, {});
    ASSERT_TRUE(svc.tickets().valid(0, 1 * kMs));

    sched::ClusterConfig cfg = gray_config();
    cfg.degrade_response = migrate ? sched::DegradeResponse::kMigrate
                                   : sched::DegradeResponse::kReboot;
    cfg.attest_svc = &svc;
    const sched::ClusterResult r =
        sched::ClusterExperiment(cfg).run_with_model(gray_model());
    ASSERT_GT(r.gray_trips, 0u);
    EXPECT_TRUE(r.accounted());
    if (migrate) {
      ASSERT_FALSE(r.migrations.empty());
      EXPECT_GT(svc.tickets().invalidated(TicketInvalidation::kMigration), 0u);
      EXPECT_EQ(svc.tickets().invalidated(TicketInvalidation::kReboot), 0u);
    } else {
      ASSERT_FALSE(r.recoveries.empty());
      EXPECT_GT(svc.tickets().invalidated(TicketInvalidation::kReboot), 0u);
      EXPECT_EQ(svc.tickets().invalidated(TicketInvalidation::kMigration),
                0u);
    }
    // The dead incarnation's ticket no longer verifies its replacement.
    EXPECT_FALSE(svc.tickets().valid(0, 900 * kMs));
  }
}

TEST(ClusterHooks, ServiceBackedRecoveryReattestSkipsOutageWhenWarm) {
  // Secure recovery under an attestation outage: the legacy path stalls
  // the re-attest behind the window; the service path with warm
  // collateral is local and does not.
  sched::ClusterConfig cfg;
  cfg.requests = 2000;
  cfg.rate_rps = 4000;
  cfg.seed = 3;
  cfg.queue = {.concurrency = 8, .queue_depth = 32};
  cfg.scaler = {.min_warm = 8, .max_replicas = 8, .tick_ns = 20 * kMs};
  cfg.retry.max_attempts = 4;
  cfg.faults.crash(100 * kMs, 0);
  cfg.faults.attest_outage(100 * kMs, 2 * kSec);
  cfg.recovery = {.boot_ns = 200 * kMs, .attest_ns = 130 * kMs};

  const sched::ClusterResult legacy =
      sched::ClusterExperiment(cfg).run_with_model(gray_model());
  ASSERT_FALSE(legacy.recoveries.empty());
  // Boot ends ~300ms inside the outage: the flat model stalls to 2.1s.
  EXPECT_GE(legacy.recoveries[0].attest_start_ns, 2.1 * kSec);

  VerifyConfig vcfg;
  vcfg.enabled = true;
  vcfg.prewarm_subjects = {0};
  VerifyService svc(vcfg, unit_model(), nullptr, nullptr,
                    cfg.faults.attest_outages());
  sched::ClusterConfig warm_cfg = cfg;
  warm_cfg.attest_svc = &svc;
  const sched::ClusterResult warm =
      sched::ClusterExperiment(warm_cfg).run_with_model(gray_model());
  ASSERT_FALSE(warm.recoveries.empty());
  EXPECT_LT(warm.recoveries[0].attest_end_ns,
            legacy.recoveries[0].attest_end_ns)
      << "warm collateral must not stall behind the outage";
  EXPECT_TRUE(warm.accounted());
}

// --- Sharded fabric integration ----------------------------------------------

sched::ShardedConfig sharded_config() {
  sched::ShardedConfig cfg;
  cfg.requests = 3000;
  cfg.rate_rps = 3000;
  cfg.seed = 11;
  cfg.replicas = 16;
  cfg.shard.shards = 4;
  cfg.queue = {.concurrency = 8, .queue_depth = 32};
  cfg.scaler.tick_ns = 20 * kMs;
  cfg.retry.max_attempts = 4;
  return cfg;
}

sched::ServiceModel sharded_model() {
  sched::ServiceModel m;
  m.parallel_ns = 1 * kMs;
  m.serialized_ns = 0;
  m.jitter_sigma = 0.02;
  m.cold_start_ns = 0.5 * kSec;
  return m;
}

/// Sheds shard 0's admissions for most of the run by cutting it off from
/// 3/4 of its slice (minority-reachable => forwards to the successor).
void add_shed_faults(sched::ShardedConfig& cfg) {
  const sched::ShardedFrontend fe(cfg.shard, cfg.replicas);
  const auto& slice = fe.slice(0);
  const std::size_t cut = slice.size() - slice.size() / 4;
  for (std::size_t i = 0; i < cut; ++i)
    cfg.faults.link_down(100 * kMs, 800 * kMs,
                         sched::ShardedFrontend::shard_host(0),
                         sched::ShardedFrontend::replica_host(slice[i]));
}

TEST(ShardedAttest, DisabledServiceKeepsLegacyCountersAtZero) {
  sched::ShardedConfig cfg = sharded_config();
  add_shed_faults(cfg);
  cfg.shard.cross_admit_ns = 130 * kMs;
  const sched::ShardedResult a =
      sched::ShardedExperiment(cfg).run_with_model(sharded_model());
  const sched::ShardedResult b =
      sched::ShardedExperiment(cfg).run_with_model(sharded_model());
  EXPECT_TRUE(a.accounted());
  EXPECT_GT(a.shed, 0u);
  EXPECT_EQ(a.attest.full, 0u);
  EXPECT_EQ(a.attest.ticket_mints, 0u);
  EXPECT_EQ(a.attest.cache_misses, 0u);
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(ShardedAttest, WarmTicketsCollapseTheCrossShardTail) {
  sched::ShardedConfig cold_cfg = sharded_config();
  cold_cfg.secure = true;
  add_shed_faults(cold_cfg);
  cold_cfg.attest_svc.enabled = true;
  cold_cfg.attest_svc.cost = unit_model();
  cold_cfg.attest_svc.collateral_ttl_ns = 0;
  cold_cfg.attest_svc.ticket_ttl_ns = 0;
  const sched::ShardedResult cold =
      sched::ShardedExperiment(cold_cfg).run_with_model(sharded_model());
  EXPECT_TRUE(cold.accounted());
  EXPECT_GT(cold.shed, 0u);
  EXPECT_GT(cold.attest.full, 0u);
  EXPECT_GT(cold.attest.fetches, 0u);
  EXPECT_EQ(cold.attest.ticket_resumes, 0u);

  sched::ShardedConfig warm_cfg = cold_cfg;
  warm_cfg.attest_svc.collateral_ttl_ns = 600 * kSec;
  warm_cfg.attest_svc.ticket_ttl_ns = 300 * kSec;
  for (int s = 0; s < 4; ++s)
    warm_cfg.attest_svc.prewarm_subjects.push_back(
        static_cast<std::uint64_t>(s));
  const sched::ShardedResult warm =
      sched::ShardedExperiment(warm_cfg).run_with_model(sharded_model());
  EXPECT_TRUE(warm.accounted());
  EXPECT_GT(warm.attest.ticket_resumes, 0u);
  EXPECT_EQ(warm.attest.fetches, 0u) << "prewarmed cache, ticketed subjects";
  // The tentpole claim at unit scale: ticket resumption collapses the
  // crossing tail the cold service pays in full rounds.
  EXPECT_LT(warm.latency_cross.p99(), cold.latency_cross.p99());

  // Determinism with the service enabled: same seed, same bytes.
  const sched::ShardedResult again =
      sched::ShardedExperiment(warm_cfg).run_with_model(sharded_model());
  EXPECT_EQ(warm.to_json(), again.to_json());
}

TEST(ShardedAttest, VerifyDeadlineGiveupsFeedTheTypedRetryPath) {
  sched::ShardedConfig cfg = sharded_config();
  cfg.secure = true;
  add_shed_faults(cfg);
  cfg.deadline_ns = 60 * kMs;  // far below the 117ms cold round
  cfg.attest_svc.enabled = true;
  cfg.attest_svc.cost = unit_model();
  cfg.attest_svc.collateral_ttl_ns = 0;
  cfg.attest_svc.ticket_ttl_ns = 0;
  const sched::ShardedResult r =
      sched::ShardedExperiment(cfg).run_with_model(sharded_model());
  EXPECT_TRUE(r.accounted());
  EXPECT_GT(r.attest.deadline_giveups, 0u);
  // The give-ups surface as typed kDeadlineExceeded failures through the
  // existing RetryVerdict accounting — no new failure channel.
  const auto it = r.failure_codes.find(
      std::string(core::to_string(core::ErrorCode::kDeadlineExceeded)));
  ASSERT_NE(it, r.failure_codes.end());
  EXPECT_GT(it->second, 0u);
}

TEST(ShardedAttest, NormalFleetsNeverConstructTheService) {
  sched::ShardedConfig cfg = sharded_config();
  cfg.secure = false;
  add_shed_faults(cfg);
  cfg.attest_svc.enabled = true;  // requested, but nothing to verify
  cfg.attest_svc.cost = unit_model();
  const sched::ShardedResult r =
      sched::ShardedExperiment(cfg).run_with_model(sharded_model());
  EXPECT_TRUE(r.accounted());
  EXPECT_EQ(r.attest.full, 0u);
  EXPECT_EQ(r.attest.ticket_mints, 0u);
}

}  // namespace
}  // namespace confbench::attest::svc

#include <gtest/gtest.h>
#include <cmath>
#include <cstdio>

#include "metrics/boxplot.h"
#include "metrics/counters.h"
#include "metrics/csv.h"
#include "metrics/heatmap.h"
#include "metrics/json.h"
#include "metrics/stats.h"
#include "metrics/table.h"

namespace confbench::metrics {
namespace {

// --- stats -------------------------------------------------------------------

TEST(Percentile, EmptyInputReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 50), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100), 7.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 17.5);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({30, 10, 40, 20}, 50), 25);
}

TEST(Summary, ComputesAllFields) {
  const auto s = Summary::of({4, 1, 3, 2, 5});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.p25, 2);
  EXPECT_DOUBLE_EQ(s.p75, 4);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(Summary, EmptyIsZeroed) {
  const auto s = Summary::of({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0);
}

TEST(Summary, SingleElementNoStddev) {
  const auto s = Summary::of({42});
  EXPECT_DOUBLE_EQ(s.stddev, 0);
  EXPECT_DOUBLE_EQ(s.p95, 42);
}

TEST(GeometricMean, KnownValue) {
  EXPECT_DOUBLE_EQ(geometric_mean({1, 4}), 2.0);
  EXPECT_NEAR(geometric_mean({2, 8, 4}), 4.0, 1e-12);
}

TEST(GeometricMean, SkipsNonPositive) {
  EXPECT_DOUBLE_EQ(geometric_mean({0, -3, 4}), 4.0);
  EXPECT_DOUBLE_EQ(geometric_mean({0, -3}), 0.0);
}

TEST(RatioOfMeans, Basics) {
  EXPECT_DOUBLE_EQ(ratio_of_means({2, 4}, {1, 1}), 3.0);
  EXPECT_DOUBLE_EQ(ratio_of_means({}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(ratio_of_means({1}, {0}), 0.0);
}

// --- counters -----------------------------------------------------------------

TEST(PerfCounters, AccumulateOperator) {
  PerfCounters a, b;
  a.instructions = 10;
  a.add_exit(tee::ExitReason::kTimer, 2);
  b.instructions = 5;
  b.add_exit(tee::ExitReason::kTimer, 3);
  b.add_exit(tee::ExitReason::kMmio, 1);
  a += b;
  EXPECT_DOUBLE_EQ(a.instructions, 15);
  EXPECT_DOUBLE_EQ(a.vm_exits, 6);
  EXPECT_DOUBLE_EQ(a.exit_count(tee::ExitReason::kTimer), 5);
  EXPECT_DOUBLE_EQ(a.exit_count(tee::ExitReason::kMmio), 1);
}

TEST(PerfCounters, KvRoundTripPreservesEverything) {
  PerfCounters c;
  c.instructions = 1.25e9;
  c.cycles = 3e9;
  c.cache_references = 1e7;
  c.cache_misses = 54321.5;
  c.branches = 2e8;
  c.branch_misses = 4e6;
  c.syscalls = 123;
  c.vm_exits = 45.5;
  c.page_faults = 67;
  c.context_switches = 8;
  c.io_bytes = 1 << 20;
  c.net_bytes = 999;
  c.alloc_bytes = 4096;
  c.gc_cycles = 3;
  c.mem_protection_ns = 1234.5;
  c.wall_ns = 9.87654e8;
  PerfCounters parsed;
  ASSERT_TRUE(PerfCounters::from_kv_string(c.to_kv_string(), &parsed));
  EXPECT_DOUBLE_EQ(parsed.instructions, c.instructions);
  EXPECT_DOUBLE_EQ(parsed.cache_misses, c.cache_misses);
  EXPECT_DOUBLE_EQ(parsed.vm_exits, c.vm_exits);
  EXPECT_DOUBLE_EQ(parsed.gc_cycles, c.gc_cycles);
  EXPECT_DOUBLE_EQ(parsed.mem_protection_ns, c.mem_protection_ns);
  EXPECT_DOUBLE_EQ(parsed.wall_ns, c.wall_ns);
}

TEST(PerfCounters, KvParseRejectsGarbage) {
  PerfCounters out;
  EXPECT_FALSE(PerfCounters::from_kv_string("", &out));
  EXPECT_FALSE(PerfCounters::from_kv_string("not-a-kv-string", &out));
  EXPECT_FALSE(PerfCounters::from_kv_string("ins=abc", &out));
}

TEST(PerfCounters, KvParseIgnoresUnknownKeys) {
  PerfCounters out;
  EXPECT_TRUE(PerfCounters::from_kv_string("ins=5;future_key=1", &out));
  EXPECT_DOUBLE_EQ(out.instructions, 5);
}

TEST(PerfCounters, PerfStatStringMentionsEvents) {
  PerfCounters c;
  c.instructions = 1000;
  c.wall_ns = 2e9;
  const std::string s = c.to_perf_stat_string();
  EXPECT_NE(s.find("instructions"), std::string::npos);
  EXPECT_NE(s.find("cache-misses"), std::string::npos);
  EXPECT_NE(s.find("2.000000 seconds"), std::string::npos);
}

// --- table ----------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"short", "1.00"});
  t.add_row({"a-much-longer-name", "42.50"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NE(t.render().find("only-one"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::num(2.5, 3), "2.500");
}

// --- heatmap ---------------------------------------------------------------------

TEST(Heatmap, SetAndGet) {
  Heatmap h({"r1", "r2"}, {"c1", "c2", "c3"});
  h.set(1, 2, 3.5);
  EXPECT_DOUBLE_EQ(h.at(1, 2), 3.5);
  EXPECT_DOUBLE_EQ(h.at(0, 0), 0.0);
  EXPECT_EQ(h.rows(), 2u);
  EXPECT_EQ(h.cols(), 3u);
}

TEST(Heatmap, OutOfRangeThrows) {
  Heatmap h({"r"}, {"c"});
  EXPECT_THROW(h.set(1, 0, 1.0), std::out_of_range);
  EXPECT_THROW([[maybe_unused]] double v = h.at(0, 1), std::out_of_range);
}

TEST(Heatmap, RenderContainsLabelsAndValues) {
  Heatmap h({"iostress"}, {"python"});
  h.set(0, 0, 2.74);
  const std::string out = h.render();
  EXPECT_NE(out.find("iostress"), std::string::npos);
  EXPECT_NE(out.find("python"), std::string::npos);
  EXPECT_NE(out.find("2.74"), std::string::npos);
}

TEST(Heatmap, AnsiModeEmitsEscapes) {
  Heatmap h({"r"}, {"c"});
  h.set(0, 0, 1.0);
  EXPECT_NE(h.render({.ansi_color = true}).find("\x1b["), std::string::npos);
  EXPECT_EQ(h.render({.ansi_color = false}).find("\x1b["),
            std::string::npos);
}

// --- boxplot ---------------------------------------------------------------------

TEST(Boxplot, RendersSeriesWithMarkers) {
  BoxSeries s{"tdx attest", Summary::of({90, 95, 100, 105, 120})};
  const std::string out = render_boxplots({s});
  EXPECT_NE(out.find("tdx attest"), std::string::npos);
  EXPECT_NE(out.find('M'), std::string::npos);
  EXPECT_NE(out.find('='), std::string::npos);
}

TEST(Boxplot, EmptyInputSafe) {
  EXPECT_EQ(render_boxplots({}), "(no data)\n");
}

TEST(Boxplot, LogScaleHandlesWideRanges) {
  BoxSeries fast{"fast", Summary::of({1, 2, 3})};
  BoxSeries slow{"slow", Summary::of({1000, 2000, 3000})};
  const std::string out =
      render_boxplots({fast, slow}, 60, /*log_scale=*/true, "ms");
  EXPECT_NE(out.find("log10"), std::string::npos);
}

// --- csv --------------------------------------------------------------------------

TEST(Csv, HeaderAndRows) {
  CsvWriter w({"a", "b"});
  w.add_row({"1", "2"});
  EXPECT_EQ(w.str(), "a,b\n1,2\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter w({"x"});
  w.add_row({"has,comma"});
  w.add_row({"has\"quote"});
  w.add_row({"has\nnewline"});
  const std::string out = w.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(out.find("\"has\nnewline\""), std::string::npos);
}

TEST(Csv, RowWidthMismatchThrows) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"only-one"}), std::invalid_argument);
}

TEST(Csv, WritesFile) {
  CsvWriter w({"k", "v"});
  w.add_row({"x", "1"});
  const std::string path = ::testing::TempDir() + "/confbench_csv_test.csv";
  ASSERT_TRUE(w.write_file(path));
  EXPECT_FALSE(w.write_file("/no/such/dir/file.csv"));
}

}  // namespace
}  // namespace confbench::metrics
// (appended) --- JSON writer -------------------------------------------------

namespace confbench::metrics {
namespace {

TEST(Json, ObjectWithMixedValues) {
  JsonWriter w;
  w.begin_object()
      .key("name").value("fib")
      .key("ratio").value(1.25)
      .key("trials").value(10)
      .key("secure").value(true)
      .key("error").null()
      .end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(),
            R"({"name":"fib","ratio":1.25,"trials":10,"secure":true,"error":null})");
}

TEST(Json, NestedArraysAndObjects) {
  JsonWriter w;
  w.begin_object().key("xs").begin_array();
  w.value(1).value(2).begin_object().key("k").value("v").end_object();
  w.end_array().end_object();
  EXPECT_EQ(w.str(), R"({"xs":[1,2,{"k":"v"}]})");
  EXPECT_TRUE(w.complete());
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, DoublesRoundTripShortest) {
  JsonWriter w;
  w.begin_array().value(0.5).value(1e20).value(1.0 / 3.0).end_array();
  EXPECT_EQ(w.str().substr(0, 10), "[0.5,1e+20");
  double back = 0;
  sscanf(w.str().c_str() + w.str().rfind(',') + 1, "%lf", &back);
  EXPECT_DOUBLE_EQ(back, 1.0 / 3.0);
}

TEST(Json, NonFiniteBecomesNull) {
  JsonWriter w;
  w.begin_array().value(std::nan("")).end_array();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(Json, IncompleteDetected) {
  JsonWriter w;
  w.begin_object().key("a");
  EXPECT_FALSE(w.complete());
  w.value(1);
  EXPECT_FALSE(w.complete());
  w.end_object();
  EXPECT_TRUE(w.complete());
}

}  // namespace
}  // namespace confbench::metrics

#include <gtest/gtest.h>

#include <set>

#include "rt/profile.h"
#include "tee/registry.h"
#include "wl/faas.h"

namespace confbench::wl {
namespace {

TEST(FaasCatalogue, TwentyFiveWorkloads) {
  EXPECT_EQ(faas_workloads().size(), 25u);
}

TEST(FaasCatalogue, NamesUnique) {
  std::set<std::string> names;
  for (const auto& w : faas_workloads()) names.insert(w.name);
  EXPECT_EQ(names.size(), faas_workloads().size());
}

TEST(FaasCatalogue, PaperFunctionsPresent) {
  // The six functions described in §IV-D plus 'ack' from Fig. 6.
  for (const char* name : {"cpustress", "memstress", "iostress", "logging",
                           "factors", "filesystem", "ack"}) {
    EXPECT_NE(find_faas(name), nullptr) << name;
  }
}

TEST(FaasCatalogue, FindUnknownReturnsNull) {
  EXPECT_EQ(find_faas("not-a-function"), nullptr);
}

TEST(FaasCatalogue, CategoryNames) {
  EXPECT_EQ(to_string(Category::kCpu), "cpu");
  EXPECT_EQ(to_string(Category::kIo), "io");
  EXPECT_EQ(find_faas("cpustress")->category, Category::kCpu);
  EXPECT_EQ(find_faas("memstress")->category, Category::kMemory);
  EXPECT_EQ(find_faas("iostress")->category, Category::kIo);
}

// Golden-output checks for the real computations.

std::string run(const char* name, const char* lang = "lua") {
  vm::ExecutionContext ctx(tee::Registry::instance().create("none"), false,
                           1);
  rt::RtContext env(ctx, *rt::find_profile(lang));
  return find_faas(name)->body(env);
}

TEST(FaasOutputs, Factors) {
  // 4999999937 is prime: the first of the 8 numbers yields itself.
  const std::string out = run("factors");
  EXPECT_EQ(out.rfind("factors:", 0), 0u) << out;
}

TEST(FaasOutputs, PrimesCountsCorrectly) {
  // pi(400000) = 33860.
  EXPECT_EQ(run("primes"), "primes:33860");
}

TEST(FaasOutputs, FibModulus) {
  // fib(90) = 2880067194370816120; mod 1e9+7 computed independently.
  EXPECT_EQ(run("fib"), "fib:" + std::to_string(2880067194370816120ULL %
                                                1000000007ULL));
}

TEST(FaasOutputs, AckermannValue) {
  // ackermann(3, 6) = 509.
  EXPECT_EQ(run("ack"), "ack:509");
}

TEST(FaasOutputs, QuicksortSorted) {
  const std::string out = run("quicksort");
  EXPECT_EQ(out.rfind("quicksort:ok:", 0), 0u) << out;
}

TEST(FaasOutputs, JsonStructure) {
  // 4001 objects (outer + 4000 records), 10000 string tokens, depth 2.
  EXPECT_EQ(run("json"), "json:4001:10000:2");
}

TEST(FaasOutputs, Sha256StableDigestPrefix) {
  const std::string a = run("sha256");
  const std::string b = run("sha256", "python");
  EXPECT_EQ(a, b);  // payload is deterministic, independent of runtime
  EXPECT_EQ(a.rfind("sha256:", 0), 0u);
  EXPECT_EQ(a.size(), std::string("sha256:").size() + 16);
}

TEST(FaasOutputs, IostressMovesRealBytes) {
  const std::string out = run("iostress");
  // "iostress:<written>:<read>" with 8 MiB each.
  EXPECT_EQ(out, "iostress:" + std::to_string(8 << 20) + ":" +
                     std::to_string(8 << 20));
}

TEST(FaasOutputs, FilesystemAllOpsSucceed) {
  EXPECT_EQ(run("filesystem"), "filesystem:54/54");
}

TEST(FaasOutputs, LoggingCountsLines) {
  EXPECT_EQ(run("logging"), "logging:3000");
}

// Parameterised sweep: every workload runs to completion under every
// language profile, returns its name-prefixed output, and is deterministic.
struct Cell {
  const char* workload;
  const char* lang;
};

class AllCells
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(AllCells, RunsAndIsDeterministic) {
  const auto [wl_idx, lang] = GetParam();
  const FaasWorkload& w = faas_workloads()[static_cast<std::size_t>(wl_idx)];
  auto run_once = [&] {
    vm::ExecutionContext ctx(tee::Registry::instance().create("tdx"), true,
                             7);
    rt::RtContext env(ctx, *rt::find_profile(lang));
    const std::string out = w.body(env);
    return std::pair(out, ctx.now());
  };
  const auto [out1, t1] = run_once();
  const auto [out2, t2] = run_once();
  EXPECT_EQ(out1.rfind(w.name + ":", 0), 0u)
      << w.name << " output: " << out1;
  EXPECT_EQ(out1, out2);
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_GT(t1, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllCells,
    ::testing::Combine(::testing::Range(0, 25),
                       ::testing::Values("python", "lua", "go")),
    [](const ::testing::TestParamInfo<std::tuple<int, const char*>>& info) {
      return faas_workloads()[static_cast<std::size_t>(
                                  std::get<0>(info.param))]
                 .name +
             "_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace confbench::wl

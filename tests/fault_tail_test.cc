// Tail-tolerance machinery: hedged requests, gray-failure outlier
// detection, live-migration drain, typed retry verdicts and the fabric
// link-fault driver — unit tests plus cluster integration runs mirroring
// bench/tail_tolerance.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "fault/hedge.h"
#include "fault/linkfault.h"
#include "fault/migrate.h"
#include "fault/outlier.h"
#include "fault/retry.h"
#include "net/network.h"
#include "sched/cluster.h"
#include "sim/time.h"

namespace confbench::fault {
namespace {

using sim::kMs;
using sim::kSec;
using sim::kUs;

// --- HedgePolicy ------------------------------------------------------------

TEST(HedgePolicy, DisabledOrColdProducesNoThresholdAndNoHedges) {
  HedgePolicy off;  // default config: disabled
  for (int i = 0; i < 500; ++i) off.observe(10 * kMs);
  EXPECT_DOUBLE_EQ(off.threshold_ns(), 0);
  EXPECT_FALSE(off.allow(0, 1000));

  HedgeConfig cfg;
  cfg.enabled = true;
  cfg.warmup = 10;
  HedgePolicy warm(cfg);
  for (int i = 0; i < 9; ++i) warm.observe(10 * kMs);
  EXPECT_DOUBLE_EQ(warm.threshold_ns(), 0);  // still warming up
  EXPECT_FALSE(warm.allow(0, 1000));
  warm.observe(10 * kMs);
  EXPECT_GT(warm.threshold_ns(), 0);
  EXPECT_TRUE(warm.allow(0, 1000));
}

TEST(HedgePolicy, ThresholdTracksTheLatencyTail) {
  HedgeConfig cfg;
  cfg.enabled = true;
  cfg.quantile = 0.9;
  cfg.warmup = 10;
  HedgePolicy p(cfg);
  // Bimodal fleet: 90% fast, 10% straggling 10x slower. The learned arm
  // delay must sit above the bulk and at-or-below the straggler mode.
  for (int i = 0; i < 90; ++i) p.observe(10 * kMs);
  for (int i = 0; i < 10; ++i) p.observe(100 * kMs);
  const sim::Ns t = p.threshold_ns();
  EXPECT_GT(t, 15 * kMs);   // above the bulk (and the 1.5x median floor)
  EXPECT_LT(t, 120 * kMs);  // not beyond the stragglers
}

TEST(HedgePolicy, MedianFloorKeepsThresholdOutOfTheBulk) {
  // Tight unimodal distribution: the configured quantile collapses onto
  // the median bucket, so without the floor the fleet would hedge its own
  // bulk. The floor pins the threshold at min_median_mult * median.
  HedgeConfig cfg;
  cfg.enabled = true;
  cfg.quantile = 0.9;
  cfg.warmup = 10;
  cfg.min_median_mult = 1.5;
  HedgePolicy p(cfg);
  for (int i = 0; i < 200; ++i) p.observe(10 * kMs);
  const double median = p.histogram().quantile(0.5);
  EXPECT_GE(p.threshold_ns(), 1.5 * median - 1.0);
}

TEST(HedgePolicy, MinDelayFloorsFastFleets) {
  HedgeConfig cfg;
  cfg.enabled = true;
  cfg.warmup = 1;
  cfg.min_delay_ns = 1 * kMs;
  HedgePolicy p(cfg);
  for (int i = 0; i < 50; ++i) p.observe(2 * kUs);  // scheduling noise
  EXPECT_DOUBLE_EQ(p.threshold_ns(), 1 * kMs);
}

TEST(HedgePolicy, BudgetFractionCapsFleetWideHedges) {
  HedgeConfig cfg;
  cfg.enabled = true;
  cfg.warmup = 1;
  cfg.budget_fraction = 0.05;
  HedgePolicy p(cfg);
  p.observe(10 * kMs);
  EXPECT_TRUE(p.allow(0, 100));
  EXPECT_TRUE(p.allow(4, 100));
  EXPECT_FALSE(p.allow(5, 100));  // 5 >= 0.05 * 100 — cap reached
  EXPECT_TRUE(p.allow(5, 200));   // offered load caught up

  cfg.budget_fraction = 0;  // zero budget disables hedging outright
  HedgePolicy none(cfg);
  none.observe(10 * kMs);
  EXPECT_FALSE(none.allow(0, 1000));
}

// --- OutlierDetector --------------------------------------------------------

OutlierConfig detector_config() {
  OutlierConfig cfg;
  cfg.enabled = true;
  cfg.alpha = 0.5;
  cfg.ratio = 3.0;
  cfg.min_samples = 5;
  return cfg;
}

TEST(HedgePolicy, CostClassesLearnSeparateThresholds) {
  // Mixed traffic: 80% light requests, 20% heavy (10x). A single shared
  // histogram arms the light class at the mixed tail — which is the heavy
  // mode — so light stragglers never hedge. Per-class histograms give each
  // class its own arm delay.
  HedgeConfig cfg;
  cfg.enabled = true;
  cfg.quantile = 0.9;
  cfg.warmup = 10;
  cfg.cost_classes = 2;
  HedgePolicy per_class(cfg);
  HedgeConfig shared = cfg;
  shared.cost_classes = 1;
  HedgePolicy mixed(shared);
  for (int i = 0; i < 100; ++i) {
    const sim::Ns lat = (i % 5 == 4) ? 100 * kMs : 10 * kMs;
    per_class.observe(i % 5 == 4 ? 1 : 0, lat);
    mixed.observe(0, lat);
  }
  // The light class arms near its own (tight) tail...
  EXPECT_LT(per_class.threshold_ns(0), 30 * kMs);
  // ...the heavy class near its own, an order of magnitude higher...
  EXPECT_GT(per_class.threshold_ns(1), 90 * kMs);
  // ...while the shared histogram would stall light hedges at the mixed
  // p90, i.e. the heavy mode.
  EXPECT_GT(mixed.threshold_ns(0), 3 * per_class.threshold_ns(0));
  // Out-of-range classes clamp to the last (catch-all) histogram.
  EXPECT_DOUBLE_EQ(per_class.threshold_ns(7), per_class.threshold_ns(1));
}

TEST(HedgePolicy, ColdClassStaysUnarmedWhileWarmClassesHedge) {
  HedgeConfig cfg;
  cfg.enabled = true;
  cfg.warmup = 10;
  cfg.cost_classes = 2;
  HedgePolicy p(cfg);
  for (int i = 0; i < 50; ++i) p.observe(0, 10 * kMs);
  EXPECT_GT(p.threshold_ns(0), 0);
  EXPECT_DOUBLE_EQ(p.threshold_ns(1), 0) << "cold class must not arm";
  // The fleet-wide budget gate only needs one warm class.
  EXPECT_TRUE(p.allow(0, 1000));
}

TEST(OutlierDetector, FlagsTheGraySlowReplicaOnly) {
  OutlierDetector d(detector_config(), 3);
  for (int i = 0; i < 10; ++i) {
    d.observe(0, 10 * kMs);  // gray: answers, but 10x slower
    d.observe(1, 1 * kMs);
    d.observe(2, 1 * kMs);
  }
  EXPECT_TRUE(d.outlier(0));
  EXPECT_FALSE(d.outlier(1));
  EXPECT_FALSE(d.outlier(2));
  EXPECT_GT(d.ewma_ns(0), 3.0 * d.fleet_median_ns());
}

TEST(OutlierDetector, RequiresMinSamplesAndPeers) {
  OutlierDetector d(detector_config(), 3);
  for (int i = 0; i < 4; ++i) {
    d.observe(0, 100 * kMs);
    d.observe(1, 1 * kMs);
  }
  EXPECT_FALSE(d.outlier(0));  // below min_samples
  d.observe(0, 100 * kMs);
  d.observe(1, 1 * kMs);
  EXPECT_TRUE(d.outlier(0));  // both warmed: flags

  // A lone warmed replica has no peers to deviate from.
  OutlierDetector lone(detector_config(), 3);
  for (int i = 0; i < 10; ++i) lone.observe(0, 100 * kMs);
  EXPECT_FALSE(lone.outlier(0));
}

TEST(OutlierDetector, ForgiveResetsReadmittedReplicas) {
  OutlierDetector d(detector_config(), 2);
  for (int i = 0; i < 10; ++i) {
    d.observe(0, 10 * kMs);
    d.observe(1, 1 * kMs);
  }
  ASSERT_TRUE(d.outlier(0));
  d.forgive(0);
  EXPECT_FALSE(d.outlier(0));  // stale EWMA gone: no instant re-trip
  EXPECT_DOUBLE_EQ(d.ewma_ns(0), 0);
}

TEST(OutlierDetector, DisabledNeverFlags) {
  OutlierConfig cfg = detector_config();
  cfg.enabled = false;
  OutlierDetector d(cfg, 2);
  for (int i = 0; i < 50; ++i) {
    d.observe(0, 100 * kMs);
    d.observe(1, 1 * kMs);
  }
  EXPECT_FALSE(d.outlier(0));
}

// --- MigrationPlanner / measure_migration -----------------------------------

TEST(MigrationPlanner, PhasesAreOrderedAndDrainOverlapsPrecopy) {
  const MigrationCosts costs{.pre_copy_ns = 100 * kMs,
                             .stop_copy_ns = 10 * kMs,
                             .reaccept_ns = 5 * kMs,
                             .reattest_ns = 20 * kMs};
  const MigrationPlanner planner(costs, {});
  // Backlog drains while pre-copy streams: blackout starts at the later of
  // the two, here the pre-copy end.
  const MigrationSchedule s = planner.plan(1 * kSec, 1 * kSec + 40 * kMs);
  EXPECT_DOUBLE_EQ(s.precopy_end_ns, 1 * kSec + 100 * kMs);
  EXPECT_DOUBLE_EQ(s.drain_end_ns, 1 * kSec + 40 * kMs);
  EXPECT_DOUBLE_EQ(s.blackout_start_ns, s.precopy_end_ns);
  EXPECT_DOUBLE_EQ(s.reattest_start_ns, s.blackout_start_ns + 15 * kMs);
  EXPECT_DOUBLE_EQ(s.blackout_end_ns, s.reattest_start_ns + 20 * kMs);
  EXPECT_DOUBLE_EQ(s.ttr_ns(), 135 * kMs);

  // A slow drain pushes the blackout past the pre-copy end instead.
  const MigrationSchedule slow = planner.plan(1 * kSec, 1 * kSec + 300 * kMs);
  EXPECT_DOUBLE_EQ(slow.blackout_start_ns, 1 * kSec + 300 * kMs);
}

TEST(MigrationPlanner, AttestOutageStallsOnlyTheReattestStep) {
  const MigrationCosts secure{.pre_copy_ns = 100 * kMs,
                              .stop_copy_ns = 10 * kMs,
                              .reaccept_ns = 5 * kMs,
                              .reattest_ns = 20 * kMs};
  // Re-attest would start at 115ms, inside the [110ms, 200ms) outage: it
  // waits the window out, exactly like crash recovery.
  const MigrationPlanner stalled(secure, {{110 * kMs, 200 * kMs}});
  const MigrationSchedule s = stalled.plan(0, 0);
  EXPECT_DOUBLE_EQ(s.reattest_start_ns, 200 * kMs);
  EXPECT_DOUBLE_EQ(s.blackout_end_ns, 220 * kMs);

  // A normal VM (no re-attestation) sails through the same outage.
  MigrationCosts normal = secure;
  normal.reaccept_ns = 0;
  normal.reattest_ns = 0;
  const MigrationPlanner unaffected(normal, {{110 * kMs, 200 * kMs}});
  EXPECT_DOUBLE_EQ(unaffected.plan(0, 0).blackout_end_ns, 110 * kMs);
}

TEST(Migration, SecureMigrationPaysReacceptanceAndReattestation) {
  for (const char* plat : {"tdx", "sev-snp", "cca"}) {
    const MigrationCosts normal = measure_migration(plat, false);
    const MigrationCosts secure = measure_migration(plat, true);
    EXPECT_GT(normal.pre_copy_ns, 0) << plat;
    EXPECT_DOUBLE_EQ(normal.reaccept_ns, 0) << plat;
    EXPECT_DOUBLE_EQ(normal.reattest_ns, 0) << plat;
    // Encrypted per-page export makes every secure copy phase dearer, and
    // re-acceptance + re-attest widen the blackout beyond stop-copy alone.
    EXPECT_GT(secure.stop_copy_ns, normal.stop_copy_ns) << plat;
    EXPECT_GT(secure.reaccept_ns, 0) << plat;
    EXPECT_GT(secure.blackout_ns(), normal.blackout_ns()) << plat;
    EXPECT_GT(secure.total_ns(), normal.total_ns()) << plat;
  }
  EXPECT_THROW(measure_migration("not-a-platform", true),
               std::invalid_argument);
}

// --- RetryVerdict -----------------------------------------------------------

TEST(RetryVerdict, ChecksRunInAttemptsBudgetDeadlineOrder) {
  RetryConfig cfg;
  cfg.max_attempts = 3;
  cfg.budget_ns = 50 * kMs;
  cfg.base_backoff_ns = 40 * kMs;
  cfg.jitter = 0;
  const RetryPolicy p(cfg, 0);
  EXPECT_EQ(p.verdict(1, 10 * kMs, 0), RetryVerdict::kRetry);
  // Attempts exhausted wins even when budget and deadline are also blown.
  EXPECT_EQ(p.verdict(3, 60 * kMs, 10 * kMs),
            RetryVerdict::kAttemptsExhausted);
  // Budget beats deadline when both would refuse.
  EXPECT_EQ(p.verdict(1, 50 * kMs, 10 * kMs), RetryVerdict::kBudgetExhausted);
  // Deadline refusal: 30ms spent + 40ms backoff cannot beat 60ms.
  EXPECT_EQ(p.verdict(1, 30 * kMs, 60 * kMs), RetryVerdict::kDeadlineExceeded);
  EXPECT_TRUE(p.should_retry(1, 10 * kMs, 0));
  EXPECT_FALSE(p.should_retry(3, 0, 0));
}

TEST(RetryVerdict, VerdictsHaveStableNames) {
  EXPECT_EQ(to_string(RetryVerdict::kRetry), "retry");
  EXPECT_EQ(to_string(RetryVerdict::kAttemptsExhausted), "attempts_exhausted");
  EXPECT_EQ(to_string(RetryVerdict::kBudgetExhausted), "budget_exhausted");
  EXPECT_EQ(to_string(RetryVerdict::kDeadlineExceeded), "deadline_exceeded");
}

// --- LinkFaultDriver --------------------------------------------------------

TEST(CircuitBreaker, HalfOpenProbeDuringActiveWindowReopensOnceThenReadmits) {
  // The forgive/readmission sequence during a partition that outlives the
  // breaker cooldown: trip -> cooldown elapses mid-window -> the half-open
  // probe fails against the still-down link -> exactly one re-open (stale
  // failures are absorbed) -> window lifts -> next probe closes it.
  CircuitBreaker br(BreakerConfig{.failure_threshold = 2,
                                  .success_threshold = 1,
                                  .open_cooldown_ns = 100 * kMs});
  br.record_failure(0);
  br.record_failure(1 * kMs);
  ASSERT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_EQ(br.times_opened(), 1u);
  EXPECT_FALSE(br.allow(50 * kMs)) << "cooldown still running";

  EXPECT_TRUE(br.allow(110 * kMs));  // half-open, single probe granted
  EXPECT_EQ(br.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(br.allow(111 * kMs)) << "one probe in flight at a time";
  br.record_failure(112 * kMs);  // the window is still active: probe dies
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_EQ(br.times_opened(), 2u);
  // A stale pre-trip timeout reported now must not double-count the open.
  br.record_failure(113 * kMs);
  EXPECT_EQ(br.times_opened(), 2u);

  EXPECT_TRUE(br.allow(220 * kMs));  // second cooldown over; window lifted
  br.record_success(221 * kMs);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
  EXPECT_TRUE(br.allow(222 * kMs)) << "readmitted traffic flows again";
}

TEST(OutlierDetector, ForgiveDuringReadmissionDropsStaleGrayEvidence) {
  OutlierConfig cfg;
  cfg.enabled = true;
  cfg.alpha = 0.3;
  cfg.min_samples = 5;
  OutlierDetector det(cfg, 3);
  for (int i = 0; i < 20; ++i) {
    det.observe(0, 100 * kMs);  // gray-slow through the partition window
    det.observe(1, 10 * kMs);
    det.observe(2, 10 * kMs);
  }
  ASSERT_TRUE(det.outlier(0));
  // Readmission mid-run: forgiveness wipes the EWMA so the replica is
  // judged on post-recovery latencies, not the partition-era ones.
  det.forgive(0);
  EXPECT_FALSE(det.outlier(0)) << "forgiven replica has no samples yet";
  for (int i = 0; i < 20; ++i) {
    det.observe(0, 10 * kMs);
    det.observe(1, 10 * kMs);
    det.observe(2, 10 * kMs);
  }
  EXPECT_FALSE(det.outlier(0)) << "healthy again: stale evidence is gone";
}

TEST(LinkFaultDriver, RepaysWindowsOntoTheFabricAndRestoresThem) {
  net::Network fabric;
  FaultPlan plan;
  plan.slow_link(1 * kSec, 1 * kSec, "client", "h", 4.0)
      .link_down(1 * kSec, 500 * kMs, "h", "client")
      .slow_link(0, 2 * kSec, /*replica=*/0, 5 * kMs);  // cluster's business
  LinkFaultDriver drv(fabric, plan);

  drv.advance(0);  // replica-addressed event only: fabric untouched
  EXPECT_EQ(fabric.link_state("client", "h"), net::LinkState::kUp);
  EXPECT_EQ(drv.transitions(), 0u);

  drv.advance(1200 * kMs);  // both windows active
  EXPECT_EQ(fabric.link_state("client", "h"), net::LinkState::kSlow);
  EXPECT_DOUBLE_EQ(fabric.link_factor("client", "h"), 4.0);
  EXPECT_EQ(fabric.link_state("h", "client"), net::LinkState::kDown);

  drv.advance(1600 * kMs);  // down window expired, slow still active
  EXPECT_EQ(fabric.link_state("h", "client"), net::LinkState::kUp);
  EXPECT_EQ(fabric.link_state("client", "h"), net::LinkState::kSlow);

  drv.advance(2500 * kMs);  // everything restored
  EXPECT_EQ(fabric.link_state("client", "h"), net::LinkState::kUp);
  EXPECT_EQ(drv.transitions(), 4u);

  EXPECT_THROW(drv.advance(1 * kSec), std::invalid_argument);
}

// --- Cluster integration ----------------------------------------------------

sched::ClusterConfig tail_config() {
  sched::ClusterConfig cfg;
  cfg.requests = 4000;
  cfg.rate_rps = 4000;
  cfg.warmup_requests = 200;
  cfg.seed = 7;
  cfg.queue = {.concurrency = 8, .queue_depth = 32};
  // Pre-warmed fixed fleet of 12: one slow replica is 8.3% of traffic,
  // safely under the hedge quantile's tail mass (no threshold ratchet).
  cfg.scaler = {.min_warm = 12, .max_replicas = 12, .tick_ns = 20 * kMs};
  cfg.retry.max_attempts = 4;
  return cfg;
}

sched::ServiceModel tail_model() {
  sched::ServiceModel m;
  m.parallel_ns = 1 * kMs;
  m.serialized_ns = 0;
  m.jitter_sigma = 0.02;
  m.cold_start_ns = 0.5 * kSec;
  return m;
}

TEST(ClusterTail, HedgingCutsGrayFailureTailWithinBudget) {
  sched::ClusterConfig cfg = tail_config();
  // One replica's responses arrive 20ms late for most of the run: gray —
  // no timeout fires (20ms << detect_timeout), only the tail bloats.
  cfg.faults.slow_link(100 * kMs, 800 * kMs, 0, 20 * kMs);

  const sched::ClusterResult base =
      sched::ClusterExperiment(cfg).run_with_model(tail_model());

  cfg.hedge.enabled = true;
  cfg.hedge.quantile = 0.9;
  cfg.hedge.budget_fraction = 0.25;
  const sched::ClusterResult hedged =
      sched::ClusterExperiment(cfg).run_with_model(tail_model());

  ASSERT_GT(base.latency_fault.count(), 0u);
  ASSERT_GT(hedged.latency_fault.count(), 0u);
  // Criterion (a): the backup dispatch hides the slow link's delay.
  EXPECT_LT(hedged.latency_fault.quantile(0.99),
            0.6 * base.latency_fault.quantile(0.99));
  EXPECT_GT(hedged.hedges, 0u);
  EXPECT_GT(hedged.hedge_wins, 0u);
  EXPECT_LE(hedged.hedge_wins, hedged.hedges);
  EXPECT_GT(hedged.hedge_threshold_ns, 0);
  // Fleet-wide amplification stayed within the budget fraction.
  EXPECT_LE(static_cast<double>(hedged.hedges),
            cfg.hedge.budget_fraction * static_cast<double>(hedged.offered));
  // Hedges are copies, not requests: zero-lost-requests holds throughout.
  EXPECT_TRUE(base.accounted());
  EXPECT_TRUE(hedged.accounted());
  EXPECT_EQ(hedged.offered, cfg.requests);
}

TEST(ClusterTail, AsymmetricPartitionLosesResponsesNotRequests) {
  sched::ClusterConfig cfg = tail_config();
  // Replica 0 keeps serving but its answers vanish: clients time out,
  // breakers trip on the timeout evidence, hedges mask the wait.
  cfg.faults.link_down(100 * kMs, 600 * kMs, 0);
  cfg.hedge.enabled = true;
  cfg.hedge.quantile = 0.9;
  cfg.hedge.budget_fraction = 0.25;
  const sched::ClusterResult r =
      sched::ClusterExperiment(cfg).run_with_model(tail_model());
  EXPECT_GT(r.responses_lost, 0u);
  EXPECT_TRUE(r.accounted())
      << "completed=" << r.completed << " rejected=" << r.rejected
      << " failed=" << r.failed << " offered=" << r.offered;
  EXPECT_GT(r.availability(), 0.95);
}

TEST(ClusterTail, GrayTripMigrationBeatsRebootForNormalVms) {
  sched::ClusterConfig cfg = tail_config();
  // Severe gray failure: 50ms extra on every response from replica 0. The
  // outlier detector must trip the breaker even though nothing times out.
  cfg.faults.slow_link(100 * kMs, 800 * kMs, 0, 50 * kMs);
  cfg.outlier.enabled = true;
  cfg.outlier.alpha = 0.3;
  cfg.outlier.min_samples = 20;
  cfg.recovery = {.boot_ns = 2 * kSec, .attest_ns = 0};  // normal VM reboot
  cfg.migration = {.pre_copy_ns = 100 * kMs, .stop_copy_ns = 20 * kMs};

  sched::ClusterConfig reboot_cfg = cfg;
  reboot_cfg.degrade_response = sched::DegradeResponse::kReboot;
  const sched::ClusterResult reboot =
      sched::ClusterExperiment(reboot_cfg).run_with_model(tail_model());

  sched::ClusterConfig mig_cfg = cfg;
  mig_cfg.degrade_response = sched::DegradeResponse::kMigrate;
  const sched::ClusterResult migrated =
      sched::ClusterExperiment(mig_cfg).run_with_model(tail_model());

  ASSERT_GT(reboot.gray_trips, 0u);
  ASSERT_GT(migrated.gray_trips, 0u);
  ASSERT_FALSE(reboot.recoveries.empty());
  ASSERT_FALSE(migrated.migrations.empty());
  // Criterion (c): a planned drain + tiny blackout restores the replica
  // faster than a cold reboot for a normal VM.
  EXPECT_GT(reboot.mean_ttr_ns(), 0);
  EXPECT_GT(migrated.mean_migration_ttr_ns(), 0);
  EXPECT_LT(migrated.mean_migration_ttr_ns(), reboot.mean_ttr_ns());
  EXPECT_TRUE(reboot.accounted());
  EXPECT_TRUE(migrated.accounted());
}

TEST(Placement, ChoosesLeastLoadedAndHonorsAntiAffinity) {
  const std::vector<PlacementCandidate> cands = {
      {.host = "a", .load = 5, .rack = "rack-0"},
      {.host = "b", .load = 2, .rack = "rack-0"},
      {.host = "c", .load = 2, .rack = "rack-0"},  // ties with b; b wins
      {.host = "d", .load = 9, .rack = "rack-1"},
  };
  EXPECT_EQ(choose_target(PlacementPolicy::kLeastLoaded, cands, "rack-0"), 1u);
  // Anti-affinity pays load for failure-domain diversity: the only
  // off-rack host wins despite the heaviest backlog.
  EXPECT_EQ(choose_target(PlacementPolicy::kAntiAffinity, cands, "rack-0"), 3u);
  // Off-rack ties still break by the lowest index.
  const std::vector<PlacementCandidate> off = {
      {.host = "a", .load = 1, .rack = "rack-1"},
      {.host = "b", .load = 1, .rack = "rack-2"},
  };
  EXPECT_EQ(choose_target(PlacementPolicy::kAntiAffinity, off, "rack-0"), 0u);
  // Every candidate shares the source's rack: degrade to least-loaded
  // rather than refuse the migration.
  const std::vector<PlacementCandidate> same = {
      {.host = "a", .load = 4, .rack = "rack-0"},
      {.host = "b", .load = 3, .rack = "rack-0"},
  };
  EXPECT_EQ(choose_target(PlacementPolicy::kAntiAffinity, same, "rack-0"), 1u);
  EXPECT_EQ(to_string(PlacementPolicy::kAntiAffinity), "anti-affinity");
  EXPECT_EQ(to_string(PlacementPolicy::kLeastLoaded), "least-loaded");
}

TEST(ClusterTail, MigrationPlacementRecordsTargetAndAntiAffinityLeavesRack) {
  sched::ClusterConfig cfg = tail_config();
  cfg.faults.slow_link(100 * kMs, 800 * kMs, 0, 50 * kMs);
  cfg.outlier.enabled = true;
  cfg.outlier.alpha = 0.3;
  cfg.outlier.min_samples = 20;
  cfg.recovery = {.boot_ns = 2 * kSec, .attest_ns = 0};
  cfg.migration = {.pre_copy_ns = 100 * kMs, .stop_copy_ns = 20 * kMs};
  cfg.degrade_response = sched::DegradeResponse::kMigrate;

  for (const auto policy : {PlacementPolicy::kLeastLoaded,
                            PlacementPolicy::kAntiAffinity}) {
    sched::ClusterConfig pcfg = cfg;
    pcfg.placement = policy;
    const sched::ClusterResult r =
        sched::ClusterExperiment(pcfg).run_with_model(tail_model());
    ASSERT_FALSE(r.migrations.empty()) << to_string(policy);
    for (const auto& ms : r.migrations) {
      // The landing host is chosen at detection time and recorded in the
      // migration trace; the source never hosts its own incarnation.
      ASSERT_FALSE(ms.target_host.empty()) << to_string(policy);
      EXPECT_NE(ms.target_host, "replica-" + std::to_string(ms.replica));
      if (policy == PlacementPolicy::kAntiAffinity) {
        // Racks group replicas in fours; with 12 warm peers there is
        // always an off-rack candidate, so the guest must leave the
        // source's failure domain.
        const int target = std::stoi(ms.target_host.substr(8));
        EXPECT_NE(target / 4, static_cast<int>(ms.replica) / 4)
            << ms.target_host;
      }
    }
    EXPECT_TRUE(r.accounted());
  }
}

TEST(ClusterTail, DeadlineGiveUpsAreTypedNotSilent) {
  sched::ClusterConfig cfg = tail_config();
  cfg.scaler = {.min_warm = 2, .max_replicas = 2, .tick_ns = 20 * kMs};
  cfg.rate_rps = 2000;
  cfg.faults.crash(300 * kMs, 0);
  cfg.recovery = {.boot_ns = 1 * kSec, .attest_ns = 0};
  // Every failover backoff (40ms, no jitter) lands past the 30ms deadline,
  // so each crash victim must give up with a typed deadline verdict.
  cfg.retry.max_attempts = 10;
  cfg.retry.base_backoff_ns = 40 * kMs;
  cfg.retry.jitter = 0;
  cfg.deadline_ns = 30 * kMs;
  const sched::ClusterResult r =
      sched::ClusterExperiment(cfg).run_with_model(tail_model());
  EXPECT_GT(r.failed, 0u);
  ASSERT_EQ(r.failure_codes.count("deadline_exceeded"), 1u)
      << "give-ups must be attributed with core::ErrorCode";
  EXPECT_GT(r.failure_codes.at("deadline_exceeded"), 0u);
  EXPECT_TRUE(r.accounted());
}

TEST(ClusterTail, GrayTripAndBreakerChurnDuringActivePartitionStayAccounted) {
  // Two overlapping windows: replica 0 goes gray-slow (outlier evidence,
  // nothing times out) while replica 1's responses vanish entirely. The
  // link_down window (600ms) outlives the breaker cooldown (150ms), so
  // replica 1's breaker reaches half-open *during* the partition, its
  // probe-readmitted dispatches time out again, and it re-opens — the
  // readmission churn must neither lose requests nor wedge the run.
  sched::ClusterConfig cfg = tail_config();
  cfg.breaker.open_cooldown_ns = 150 * kMs;
  cfg.faults.slow_link(100 * kMs, 700 * kMs, 0, 50 * kMs)
      .link_down(100 * kMs, 600 * kMs, 1);
  cfg.outlier.enabled = true;
  cfg.outlier.alpha = 0.3;
  cfg.outlier.min_samples = 20;
  cfg.hedge.enabled = true;
  cfg.hedge.quantile = 0.9;
  cfg.hedge.budget_fraction = 0.25;
  const sched::ClusterResult r =
      sched::ClusterExperiment(cfg).run_with_model(tail_model());
  EXPECT_GT(r.gray_trips, 0u)
      << "the outlier trip must land while the other partition is active";
  EXPECT_GT(r.responses_lost, 0u);
  EXPECT_TRUE(r.accounted())
      << "completed=" << r.completed << " rejected=" << r.rejected
      << " failed=" << r.failed << " offered=" << r.offered;
  EXPECT_GT(r.availability(), 0.9);
}

TEST(ClusterTail, TailMachineryDefaultsOffLeavesChaosRunsUntouched) {
  // The entire tail-tolerance layer is opt-in: a plain chaos run must not
  // record a single hedge, gray trip, migration or lost response.
  sched::ClusterConfig cfg = tail_config();
  cfg.faults.crash(300 * kMs, 1);
  cfg.recovery = {.boot_ns = 1 * kSec, .attest_ns = 0};
  const sched::ClusterResult r =
      sched::ClusterExperiment(cfg).run_with_model(tail_model());
  EXPECT_EQ(r.hedges, 0u);
  EXPECT_EQ(r.hedge_wins + r.hedge_waste + r.hedge_cancelled, 0u);
  EXPECT_DOUBLE_EQ(r.hedge_threshold_ns, 0);
  EXPECT_EQ(r.gray_trips, 0u);
  EXPECT_EQ(r.responses_lost, 0u);
  EXPECT_TRUE(r.migrations.empty());
  EXPECT_TRUE(r.accounted());
}

}  // namespace
}  // namespace confbench::fault

#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace confbench::sim {
namespace {

TEST(StableHash, KnownValues) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(stable_hash(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(stable_hash("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(stable_hash("foobar"), 0x85944171f73967e8ULL);
}

TEST(StableHash, DistinctInputsDistinctHashes) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i)
    seen.insert(stable_hash("key-" + std::to_string(i)));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HashCombine, OrderMatters) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashCombine, Deterministic) {
  EXPECT_EQ(hash_combine(42, 7), hash_combine(42, 7));
}

TEST(SplitMix64, MatchesReference) {
  // Reference outputs for seed 1234567 (from the public-domain reference
  // implementation).
  SplitMix64 mix(1234567);
  EXPECT_EQ(mix.next(), 6457827717110365317ULL);
  EXPECT_EQ(mix.next(), 3203168211198807973ULL);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, StringSeedMatchesHash) {
  Rng a(stable_hash("hello")), b(std::string_view("hello"));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(4);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GaussianMoments) {
  Rng rng(7);
  constexpr int kN = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, JitterZeroSigmaIsExactlyOne) {
  Rng rng(8);
  EXPECT_DOUBLE_EQ(rng.jitter(0.0), 1.0);
  EXPECT_DOUBLE_EQ(rng.jitter(-1.0), 1.0);
}

TEST(Rng, JitterIsPositiveAndCentered) {
  Rng rng(9);
  constexpr int kN = 50000;
  double log_sum = 0;
  for (int i = 0; i < kN; ++i) {
    const double j = rng.jitter(0.1);
    ASSERT_GT(j, 0.0);
    log_sum += std::log(j);
  }
  // Lognormal(0, sigma): median 1 => mean of logs ~ 0.
  EXPECT_NEAR(log_sum / kN, 0.0, 0.01);
}

TEST(Rng, JitterSpreadGrowsWithSigma) {
  Rng a(10), b(10);
  double small_dev = 0, large_dev = 0;
  for (int i = 0; i < 10000; ++i) {
    small_dev += std::abs(a.jitter(0.01) - 1.0);
    large_dev += std::abs(b.jitter(0.2) - 1.0);
  }
  EXPECT_LT(small_dev, large_dev);
}

}  // namespace
}  // namespace confbench::sim

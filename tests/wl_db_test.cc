#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/rng.h"
#include "tee/registry.h"
#include "vm/vfs.h"
#include "wl/db/btree.h"
#include "wl/db/db.h"
#include "wl/db/speedtest.h"

namespace confbench::wl::db {
namespace {

// --- B+-tree -------------------------------------------------------------------

TEST(BTree, EmptyTree) {
  BPlusTree t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.find(42).has_value());
  EXPECT_FALSE(t.erase(42));
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.height(), 1);
}

TEST(BTree, InsertAndFind) {
  BPlusTree t;
  EXPECT_TRUE(t.insert(5, 500));  // NOLINT
  EXPECT_TRUE(t.insert(3, 300));
  EXPECT_TRUE(t.insert(8, 800));
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.find(5).value(), 500u);
  EXPECT_EQ(t.find(3).value(), 300u);
  EXPECT_FALSE(t.find(4).has_value());
}

TEST(BTree, DuplicateInsertOverwrites) {
  BPlusTree t;
  EXPECT_TRUE(t.insert(1, 10));
  EXPECT_FALSE(t.insert(1, 20));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(1).value(), 20u);
}

TEST(BTree, SplitsGrowHeight) {
  BPlusTree t;
  for (std::uint64_t k = 0; k < 10000; ++k) t.insert(k, k);
  EXPECT_EQ(t.size(), 10000u);
  EXPECT_GE(t.height(), 3);
  EXPECT_GT(t.node_count(), 100u);
  EXPECT_TRUE(t.validate());
}

TEST(BTree, OrderedInsertScanAscends) {
  BPlusTree t;
  for (std::uint64_t k = 0; k < 2000; ++k) t.insert(k * 2, k);
  std::uint64_t prev = 0;
  std::size_t count = 0;
  t.scan(0, ~0ULL, [&](std::uint64_t key, std::uint64_t) {
    if (count > 0) {
      EXPECT_GT(key, prev);
    }
    prev = key;
    ++count;
  });
  EXPECT_EQ(count, 2000u);
}

TEST(BTree, ScanRangeBoundsInclusive) {
  BPlusTree t;
  for (std::uint64_t k = 10; k <= 20; ++k) t.insert(k, k);
  std::vector<std::uint64_t> seen;
  t.scan(12, 15, [&](std::uint64_t key, std::uint64_t) {
    seen.push_back(key);
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{12, 13, 14, 15}));
}

TEST(BTree, ScanEmptyRange) {
  BPlusTree t;
  t.insert(5, 5);
  int n = 0;
  t.scan(10, 3, [&](std::uint64_t, std::uint64_t) { ++n; });
  t.scan(6, 9, [&](std::uint64_t, std::uint64_t) { ++n; });
  EXPECT_EQ(n, 0);
}

TEST(BTree, EraseRemovesOnlyTarget) {
  BPlusTree t;
  for (std::uint64_t k = 0; k < 100; ++k) t.insert(k, k);
  EXPECT_TRUE(t.erase(50));
  EXPECT_FALSE(t.erase(50));
  EXPECT_EQ(t.size(), 99u);
  EXPECT_FALSE(t.find(50).has_value());
  EXPECT_TRUE(t.find(49).has_value());
  EXPECT_TRUE(t.find(51).has_value());
}

TEST(BTree, RandomisedPropertyAgainstStdMap) {
  BPlusTree t;
  std::map<std::uint64_t, std::uint64_t> model;
  sim::Rng rng(2024);
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = rng.next_below(4000);
    switch (rng.next_below(3)) {
      case 0: {
        const bool was_new = t.insert(key, op);
        EXPECT_EQ(was_new, model.find(key) == model.end());
        model[key] = static_cast<std::uint64_t>(op);
        break;
      }
      case 1: {
        const auto found = t.find(key);
        const auto it = model.find(key);
        EXPECT_EQ(found.has_value(), it != model.end());
        if (found) {
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
      case 2:
        EXPECT_EQ(t.erase(key), model.erase(key) > 0);
        break;
    }
  }
  EXPECT_EQ(t.size(), model.size());
  EXPECT_TRUE(t.validate());
  // Full scan must reproduce the model exactly.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> scanned;
  t.scan(0, ~0ULL, [&](std::uint64_t k, std::uint64_t v) {
    scanned.push_back({k, v});
  });
  EXPECT_EQ(scanned.size(), model.size());
  auto it = model.begin();
  for (const auto& [k, v] : scanned) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST(BTree, TouchAccountingDrains) {
  BPlusTree t;
  for (std::uint64_t k = 0; k < 100; ++k) t.insert(k, k);
  auto touched = t.drain_touched();
  EXPECT_GT(touched.size(), 100u);  // at least one node per insert
  EXPECT_TRUE(t.drain_touched().empty());
  [[maybe_unused]] auto found = t.find(5);
  EXPECT_FALSE(t.drain_touched().empty());
}

// --- Database -------------------------------------------------------------------

struct DbTest : ::testing::Test {
  DbTest()
      : ctx(tee::Registry::instance().create("tdx"), false, 1),
        fs(ctx),
        database(ctx, fs) {}
  vm::ExecutionContext ctx;
  vm::Vfs fs;
  Database database;
};

TEST_F(DbTest, CreateAndDropTables) {
  database.create_table("t");
  EXPECT_NE(database.table("t"), nullptr);
  EXPECT_THROW(database.create_table("t"), std::invalid_argument);
  database.drop_table("t");
  EXPECT_EQ(database.table("t"), nullptr);
  EXPECT_THROW(database.drop_table("t"), std::invalid_argument);
}

TEST_F(DbTest, InsertLookupRoundTrip) {
  Table& t = database.create_table("users");
  t.insert({42, 128, 0});
  const auto row = t.lookup(42);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->key, 42u);
  EXPECT_EQ(row->payload_bytes, 128u);
  EXPECT_NE(row->checksum, 0u);  // populated by the engine
  EXPECT_FALSE(t.lookup(43).has_value());
}

TEST_F(DbTest, ScanCountsAndChecksums) {
  Table& t = database.create_table("t");
  database.begin();
  for (std::uint64_t k = 0; k < 500; ++k) t.insert({k, 64, 0});
  database.commit();
  const auto [count, sum] = t.scan(100, 199);
  EXPECT_EQ(count, 100u);
  EXPECT_NE(sum, 0u);
}

TEST_F(DbTest, UpdateRangeRewritesPayloads) {
  Table& t = database.create_table("t");
  for (std::uint64_t k = 0; k < 50; ++k) t.insert({k, 64, 0});
  EXPECT_EQ(t.update_range(10, 19, 96), 10u);
  EXPECT_EQ(t.lookup(15)->payload_bytes, 96u);
  EXPECT_EQ(t.lookup(25)->payload_bytes, 64u);
}

TEST_F(DbTest, EraseShrinksTable) {
  Table& t = database.create_table("t");
  for (std::uint64_t k = 0; k < 50; ++k) t.insert({k, 64, 0});
  EXPECT_TRUE(t.erase(25));
  EXPECT_EQ(t.rows(), 49u);
  EXPECT_FALSE(t.lookup(25).has_value());
}

TEST_F(DbTest, AutocommitFsyncsPerStatement) {
  Table& t = database.create_table("t");
  const double sys0 = ctx.counters().syscalls;
  t.insert({1, 64, 0});
  t.insert({2, 64, 0});
  const double per_stmt = (ctx.counters().syscalls - sys0) / 2;
  EXPECT_GE(per_stmt, 2.0);  // write + fsync (+ flush) each
}

TEST_F(DbTest, TransactionBatchesWal) {
  Table& t = database.create_table("t");
  database.begin();
  EXPECT_TRUE(database.in_transaction());
  const double io0 = ctx.counters().io_bytes;
  for (std::uint64_t k = 0; k < 100; ++k) t.insert({k, 64, 0});
  EXPECT_DOUBLE_EQ(ctx.counters().io_bytes, io0);  // nothing durable yet
  database.commit();
  EXPECT_FALSE(database.in_transaction());
  EXPECT_GT(ctx.counters().io_bytes, io0);  // one batched WAL write
}

TEST_F(DbTest, WalCheckpointTruncatesLog) {
  database.create_table("t");
  database.begin();
  database.log_mutation(Database::kCheckpointBytes + 1024);
  database.commit();
  EXPECT_LT(fs.file_size("/db/wal.log"), Database::kCheckpointBytes);
}

// --- speedtest -------------------------------------------------------------------

TEST(Speedtest, RunsAllTests) {
  vm::ExecutionContext ctx(tee::Registry::instance().create("tdx"), false, 1);
  vm::Vfs fs(ctx);
  const auto results = run_speedtest(ctx, fs, 10);
  EXPECT_EQ(results.size(), speedtest_test_names().size());
  for (const auto& r : results) {
    EXPECT_GT(r.elapsed, 0) << r.name;
    EXPECT_FALSE(r.name.empty());
  }
}

TEST(Speedtest, ChecksumsIdenticalAcrossVmKinds) {
  // The paper compares secure and normal execution of the same suite: the
  // *answers* must match, only the timing differs.
  auto run = [](bool secure) {
    vm::ExecutionContext ctx(tee::Registry::instance().create("tdx"), secure,
                             1);
    vm::Vfs fs(ctx);
    return run_speedtest(ctx, fs, 10);
  };
  const auto a = run(false);
  const auto b = run(true);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].checksum, b[i].checksum) << a[i].name;
    EXPECT_EQ(a[i].id, b[i].id);
  }
}

TEST(Speedtest, SecureSlowerInAggregateOnTdx) {
  auto total = [](bool secure) {
    vm::ExecutionContext ctx(tee::Registry::instance().create("tdx"), secure,
                             1);
    vm::Vfs fs(ctx);
    double sum = 0;
    for (const auto& r : run_speedtest(ctx, fs, 10)) sum += r.elapsed;
    return sum;
  };
  EXPECT_GT(total(true), total(false));
}

TEST(Speedtest, SizeScalesWork) {
  vm::ExecutionContext ctx(tee::Registry::instance().create("none"), false,
                           1);
  vm::Vfs fs(ctx);
  const auto small = run_speedtest(ctx, fs, 5);
  vm::ExecutionContext ctx2(tee::Registry::instance().create("none"), false,
                            1);
  vm::Vfs fs2(ctx2);
  const auto large = run_speedtest(ctx2, fs2, 20);
  double small_sum = 0, large_sum = 0;
  for (const auto& r : small) small_sum += r.elapsed;
  for (const auto& r : large) large_sum += r.elapsed;
  EXPECT_GT(large_sum, 2 * small_sum);
}

}  // namespace
}  // namespace confbench::wl::db

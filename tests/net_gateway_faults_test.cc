// Network fault injection interacting with gateway retries: transport
// failures (drops -> 504, corruption -> 502) must be retried with fresh
// pool selection, surface in InvocationRecord::retries/error exactly as
// documented, and be bit-deterministic run to run.
#include <gtest/gtest.h>

#include <vector>

#include "core/confbench.h"

namespace confbench::core {
namespace {

GatewayConfig single_tdx_config() {
  GatewayConfig cfg;
  cfg.endpoints.push_back({"tdx", "host-tdx", 8100, 8200});
  return cfg;
}

struct Outcome {
  int status;
  int retries;
  bool has_error;
  bool operator==(const Outcome& o) const {
    return status == o.status && retries == o.retries &&
           has_error == o.has_error;
  }
};

std::vector<Outcome> run_sequence(ConfBench& system,
                                  const net::FaultConfig& faults, int n) {
  system.network().set_faults(faults);
  std::vector<Outcome> out;
  for (int t = 0; t < n; ++t) {
    const InvocationRecord rec = system.gateway().invoke(
        {.function = "factors",
         .language = "lua",
         .platform = "tdx",
         .secure = false,
         .trial = static_cast<std::uint64_t>(t)});
    out.push_back({rec.http_status, rec.retries, !rec.error.empty()});
  }
  return out;
}

TEST(GatewayFaults, NoFaultsMeansNoRetries) {
  ConfBench system(single_tdx_config());
  for (const Outcome& o : run_sequence(system, {}, 5)) {
    EXPECT_EQ(o.status, 200);
    EXPECT_EQ(o.retries, 0);
    EXPECT_FALSE(o.has_error);
  }
}

TEST(GatewayFaults, PermanentDropExhaustsRetriesWith504) {
  ConfBench system(single_tdx_config());
  const auto outcomes = run_sequence(
      system, {.drop_rate = 1.0, .corrupt_rate = 0, .timeout_us = 500}, 3);
  for (const Outcome& o : outcomes) {
    EXPECT_EQ(o.status, 504);
    EXPECT_EQ(o.retries, system.gateway().config().retry.max_attempts - 1);
    EXPECT_TRUE(o.has_error);
  }
}

TEST(GatewayFaults, PermanentCorruptionExhaustsRetriesWith502) {
  ConfBench system(single_tdx_config());
  const auto outcomes = run_sequence(
      system, {.drop_rate = 0, .corrupt_rate = 1.0, .timeout_us = 500}, 3);
  for (const Outcome& o : outcomes) {
    EXPECT_EQ(o.status, 502);
    EXPECT_EQ(o.retries, system.gateway().config().retry.max_attempts - 1);
    EXPECT_TRUE(o.has_error);
  }
  EXPECT_GT(system.network().faults_injected(), 0u);
}

TEST(GatewayFaults, MixedFaultsRecoverThroughRetries) {
  ConfBench system(single_tdx_config());
  const auto outcomes = run_sequence(
      system, {.drop_rate = 0.35, .corrupt_rate = 0.15, .timeout_us = 500},
      40);
  int recovered = 0, failed = 0;
  for (const Outcome& o : outcomes) {
    if (o.status == 200) {
      EXPECT_FALSE(o.has_error);
      recovered += o.retries > 0;  // succeeded after >= 1 transport retry
    } else {
      // Only transport statuses can leak out of the retry loop.
      EXPECT_TRUE(o.status == 504 || o.status == 502);
      EXPECT_TRUE(o.has_error);
      ++failed;
    }
  }
  // With P(fail) = 0.5 per attempt and 3 attempts, expect a healthy mix of
  // clean wins, retried wins and exhausted failures. Deterministic seed:
  // the exact split is fixed; these bounds document the regime.
  EXPECT_GT(recovered, 0);
  EXPECT_GT(failed, 0);
  EXPECT_LT(failed, 40);
}

TEST(GatewayFaults, FaultInteractionIsDeterministic) {
  const net::FaultConfig faults{.drop_rate = 0.3, .corrupt_rate = 0.2,
                                .timeout_us = 700};
  ConfBench a(single_tdx_config());
  ConfBench b(single_tdx_config());
  const auto ra = run_sequence(a, faults, 60);
  const auto rb = run_sequence(b, faults, 60);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i)
    EXPECT_TRUE(ra[i] == rb[i]) << "diverged at invocation " << i;
  EXPECT_EQ(a.network().faults_injected(), b.network().faults_injected());
  EXPECT_EQ(a.network().requests_sent(), b.network().requests_sent());
}

TEST(GatewayFaults, NetworkSeedDecorrelatesFaultPattern) {
  // Same fault rates, different fabric seeds: the drop pattern must differ
  // (while each seed remains individually reproducible).
  auto pattern = [](std::uint64_t seed) {
    net::Network net(180.0, 0.8, seed);
    net.bind("h", 80, [](const net::HttpRequest&) {
      return net::HttpResponse::make(200, "ok");
    });
    net.set_faults({.drop_rate = 0.5, .corrupt_rate = 0, .timeout_us = 100});
    std::vector<int> statuses;
    for (int i = 0; i < 64; ++i)
      statuses.push_back(net.roundtrip("h", 80, net::HttpRequest{}).status);
    return statuses;
  };
  EXPECT_EQ(pattern(1), pattern(1));
  EXPECT_NE(pattern(1), pattern(2));
}

}  // namespace
}  // namespace confbench::core

// Closed-loop elastic control: the controller's policy (Holt forecast,
// rejection kick, hysteresis/cooldown/governor brakes, capacity budget),
// and the fabric integration — fault-tolerant controller-originated joins
// (cold-start crashes, attest outages during the join re-attest, retry
// with backoff, abandonment), scale-in aborts on unhealthy drain targets,
// and the zero-lost-requests invariant through all of it.
#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/fault.h"
#include "sched/elastic.h"
#include "sched/shard.h"
#include "sim/time.h"

namespace confbench::sched {
namespace {

using sim::kMs;
using sim::kSec;

// --- ElasticController policy ------------------------------------------------

ElasticConfig policy_config() {
  ElasticConfig cfg;
  cfg.enabled = true;
  cfg.tick_ns = 100 * kMs;
  cfg.max_extra_replicas = 16;
  return cfg;
}

ElasticSignals steady(sim::Ns now, std::uint64_t arrivals, int warm,
                      double per_replica_rps = 100.0) {
  ElasticSignals sig;
  sig.now = now;
  sig.arrivals_delta = arrivals;
  sig.warm = warm;
  sig.per_replica_rps = per_replica_rps;
  return sig;
}

TEST(ElasticController, ValidatesConfig) {
  ElasticConfig bad = policy_config();
  bad.tick_ns = 0;
  EXPECT_THROW(ElasticController{bad}, std::invalid_argument);
  bad = policy_config();
  bad.target_utilization = 1.5;
  EXPECT_THROW(ElasticController{bad}, std::invalid_argument);
  bad = policy_config();
  bad.down_threshold = 1.0;  // hysteresis band must stay open
  EXPECT_THROW(ElasticController{bad}, std::invalid_argument);
  bad = policy_config();
  bad.join_backoff_mult = 0.5;
  EXPECT_THROW(ElasticController{bad}, std::invalid_argument);
}

TEST(ElasticController, RejectionKickOrdersAboveCurrentCapacity) {
  // Rejections are ground truth, whatever the rate model believes: a tick
  // with zero observed arrivals but fresh rejections must still scale out.
  ElasticController c(policy_config());
  ElasticSignals sig = steady(0, 0, 3);
  sig.rejected_delta = 5;
  const ElasticDecision d = c.evaluate(sig);
  EXPECT_EQ(d.add_replicas, 1);
  EXPECT_EQ(c.live_extra_replicas(), 1);
  EXPECT_EQ(c.ordered_replicas(), 1);
}

TEST(ElasticController, PredictiveOrdersBeforeReactiveOnARamp) {
  // Arrival rate ramps linearly; one warm replica serves 100 rps. The
  // predictive controller extrapolates the Holt trend lead_time ahead and
  // must order strictly earlier than the reactive one.
  ElasticConfig reactive = policy_config();
  reactive.target_utilization = 1.0;
  ElasticConfig predictive = reactive;
  predictive.predictive = true;
  predictive.lead_time_ns = 10 * reactive.tick_ns;
  ElasticController cr(reactive);
  ElasticController cp(predictive);
  int first_reactive = -1;
  int first_predictive = -1;
  for (int t = 0; t < 40; ++t) {
    // +2 arrivals per tick per tick: rate(t) = 20*t rps at 100ms ticks.
    const auto arrivals = static_cast<std::uint64_t>(2 * t);
    const sim::Ns now = t * reactive.tick_ns;
    if (cr.evaluate(steady(now, arrivals, 1)).add_replicas > 0 &&
        first_reactive < 0)
      first_reactive = t;
    if (cp.evaluate(steady(now, arrivals, 1)).add_replicas > 0 &&
        first_predictive < 0)
      first_predictive = t;
  }
  ASSERT_GE(first_reactive, 0);
  ASSERT_GE(first_predictive, 0);
  EXPECT_LT(first_predictive, first_reactive)
      << "lead-time forecast must order capacity ahead of need";
}

TEST(ElasticController, HysteresisBandHoldsABorderlineFleet) {
  ElasticConfig cfg = policy_config();
  cfg.target_utilization = 1.0;
  cfg.down_threshold = 0.5;
  cfg.down_patience = 1;
  ElasticController c(cfg);
  // Acquire one extra so scale-in has something to target.
  ElasticSignals kick = steady(0, 0, 4);
  kick.rejected_delta = 1;
  ASSERT_EQ(c.evaluate(kick).add_replicas, 1);
  // needed = 3 with warm = 5: below the scale-out point, above the
  // scale-in point (5 * 0.5 = 2.5) — the band must hold both directions.
  for (int t = 1; t <= 20; ++t) {
    const ElasticDecision d =
        c.evaluate(steady(t * cfg.tick_ns, 30, /*warm=*/5));
    EXPECT_FALSE(d.any()) << "borderline fleet churned at tick " << t;
  }
  // A genuine lull (needed = 1 < 2.5) scales in after patience.
  EXPECT_EQ(c.evaluate(steady(21 * cfg.tick_ns, 10, 5)).remove_replicas, 1);
  EXPECT_EQ(c.live_extra_replicas(), 0);
}

TEST(ElasticController, DownPatienceAndCooldownBrakeScaleIn) {
  ElasticConfig cfg = policy_config();
  cfg.down_patience = 3;
  cfg.down_cooldown_ns = 100 * cfg.tick_ns;
  ElasticConfig nobrakes = cfg;
  ElasticController c(cfg);
  ElasticSignals kick = steady(0, 0, 2);
  kick.rejected_delta = 9;  // needed = have+1: order two extras over 2 ticks
  ASSERT_EQ(c.evaluate(kick).add_replicas, 1);
  kick.now = cfg.tick_ns;
  ASSERT_EQ(c.evaluate(kick).add_replicas, 1);
  // Idle fleet: the first removal waits out the patience...
  int removed = 0;
  std::uint64_t suppressed = 0;
  for (int t = 2; t < 20; ++t) {
    removed += c.evaluate(steady(t * cfg.tick_ns, 0, 4)).remove_replicas;
    suppressed = c.trace().back().suppressed_cooldown;
  }
  // ...and the second is held by the down-cooldown for the whole horizon.
  EXPECT_EQ(removed, 1);
  EXPECT_GT(suppressed, 0u) << "cooldown suppressions must be attributed";
  EXPECT_EQ(c.live_extra_replicas(), 1);
  (void)nobrakes;
}

TEST(ElasticController, GovernorCapsMembershipEventsPerWindow) {
  ElasticConfig cfg = policy_config();
  cfg.max_events_per_window = 2;
  cfg.churn_window_ns = 10 * kSec;  // wider than the test horizon
  ElasticController c(cfg);
  int ordered = 0;
  std::uint64_t suppressed = 0;
  for (int t = 0; t < 10; ++t) {
    ElasticSignals sig = steady(t * cfg.tick_ns, 0, 2);
    sig.rejected_delta = 7;  // wants one more every tick
    ordered += c.evaluate(sig).add_replicas;
    suppressed += c.trace().back().suppressed_governor;
  }
  EXPECT_EQ(ordered, 2) << "governor must cap churn events per window";
  EXPECT_GT(suppressed, 0u);
}

TEST(ElasticController, CumulativeOrderBudgetIsNeverRefunded) {
  ElasticConfig cfg = policy_config();
  cfg.max_extra_replicas = 3;
  ElasticController c(cfg);
  for (int t = 0; t < 10; ++t) {
    ElasticSignals sig = steady(t * cfg.tick_ns, 0, 2);
    sig.rejected_delta = 4;
    (void)c.evaluate(sig);
  }
  EXPECT_EQ(c.ordered_replicas(), 3);
  // An abandoned join shrinks the live ledger but not the spent budget:
  // its pre-sized slot is not reusable.
  c.on_join_abandoned();
  EXPECT_EQ(c.live_extra_replicas(), 2);
  EXPECT_EQ(c.ordered_replicas(), 3);
}

TEST(ElasticController, ShardJoinsTrackReplicasOrdered) {
  ElasticConfig cfg = policy_config();
  cfg.target_utilization = 1.0;
  cfg.replicas_per_shard = 2;
  cfg.max_extra_shards = 2;
  ElasticController c(cfg);
  // Demand jumping to 6 replicas' worth against 2 warm wants 4 joiners at
  // once — and one admission-plane shard per two joiners ordered.
  ElasticSignals sig = steady(0, 60, 2);  // 600 rps, 100 rps per replica
  const ElasticDecision d = c.evaluate(sig);
  EXPECT_EQ(d.add_replicas, 4);
  EXPECT_EQ(d.add_shards, 2);
  EXPECT_EQ(c.ordered_shards(), 2);
}

TEST(ElasticController, NeverRemovesBaseFleetCapacity) {
  ElasticConfig cfg = policy_config();
  cfg.down_patience = 1;
  ElasticController c(cfg);
  // Deep lull with zero controller-added capacity: nothing to remove.
  for (int t = 0; t < 20; ++t)
    EXPECT_FALSE(c.evaluate(steady(t * cfg.tick_ns, 0, 5)).any());
}

// --- Fabric integration ------------------------------------------------------

ShardedConfig elastic_config() {
  ShardedConfig cfg;
  cfg.requests = 6000;
  cfg.seed = 23;
  cfg.secure = false;
  cfg.replicas = 2;
  cfg.shard.shards = 2;
  cfg.shard.ring_mix_points = true;
  cfg.queue = {.concurrency = 2, .queue_depth = 8};
  cfg.scaler.tick_ns = 20 * kMs;
  cfg.retry.max_attempts = 4;
  // Base capacity ~4000 rps (2 replicas x 2 slots x 1ms service); the ramp
  // below triples the load, so absorbing it needs controller joins.
  cfg.rate_rps = 2000;
  cfg.rate_steps.push_back({.at_ns = 300 * kMs, .rate_rps = 12000});
  cfg.rate_steps.push_back({.at_ns = 600 * kMs, .rate_rps = 1000});
  cfg.elastic.enabled = true;
  cfg.elastic.tick_ns = 20 * kMs;
  cfg.elastic.max_extra_replicas = 6;
  cfg.elastic.join_backoff_ns = 20 * kMs;
  cfg.elastic.join_max_attempts = 8;
  return cfg;
}

ServiceModel elastic_model() {
  ServiceModel m;
  m.parallel_ns = 1 * kMs;
  m.serialized_ns = 0;
  m.jitter_sigma = 0.02;
  m.cold_start_ns = 150 * kMs;
  return m;
}

TEST(ShardedElastic, FlashRampOrdersJoinsThatCompleteAndStayAccounted) {
  ShardedConfig cfg = elastic_config();
  cfg.measure_start_ns = 300 * kMs;
  cfg.measure_end_ns = 700 * kMs;
  const ShardedResult res =
      ShardedExperiment(cfg).run_with_model(elastic_model());
  EXPECT_TRUE(res.accounted()) << "elastic churn lost a request";
  EXPECT_GT(res.elastic.ticks, 0u);
  EXPECT_GT(res.rejected, 0u) << "the ramp should overload the base fleet";
  EXPECT_GT(res.elastic.replica_orders, 0u);
  EXPECT_GT(res.elastic.joins_completed, 0u);
  EXPECT_EQ(res.elastic.joins_completed, res.churn.replica_adds);
  EXPECT_EQ(res.elastic.join_crashes, 0u);
  EXPECT_GT(res.last_reject_ns, 300 * kMs);
  EXPECT_FALSE(res.elastic_trace.empty());
  EXPECT_GT(res.elastic.warm_replica_seconds, 0.0);
  // The measurement window saw completions, and only a subset of them.
  EXPECT_GT(res.latency_window.count(), 0u);
  EXPECT_LT(res.latency_window.count(), res.latency.count());
}

TEST(ShardedElastic, JoinCrashesAreDetectedChargedAndRetried) {
  ShardedConfig cfg = elastic_config();
  // Every cold start begun in the first 450ms of the ramp crashes mid-boot;
  // retries with backoff land after the window and complete.
  cfg.faults.join_crash(300 * kMs, 150 * kMs);
  const ShardedResult res =
      ShardedExperiment(cfg).run_with_model(elastic_model());
  EXPECT_TRUE(res.accounted()) << "a crashed join must strand nothing";
  EXPECT_GT(res.elastic.join_crashes, 0u);
  EXPECT_GT(res.elastic.join_retries, 0u);
  EXPECT_GT(res.elastic.joins_completed, 0u);
}

TEST(ShardedElastic, AbandonedJoinsShrinkTheLedgerAndStayAccounted) {
  ShardedConfig cfg = elastic_config();
  cfg.elastic.join_max_attempts = 2;
  cfg.elastic.join_backoff_ns = 10 * kMs;
  cfg.faults.join_crash(0, 30 * kSec);  // crashes for the whole run
  const ShardedResult res =
      ShardedExperiment(cfg).run_with_model(elastic_model());
  EXPECT_TRUE(res.accounted());
  EXPECT_GT(res.elastic.joins_abandoned, 0u);
  EXPECT_EQ(res.elastic.joins_completed, 0u);
}

TEST(ShardedElastic, AttestOutageFailsTheFlatJoinReattest) {
  ShardedConfig cfg = elastic_config();
  cfg.secure = true;
  cfg.elastic.join_attest_ns = 50 * kMs;
  // The outage covers the first wave of join re-attestations (orders from
  // ~320ms + 150ms cold start); retries complete once it lifts.
  cfg.faults.attest_outage(400 * kMs, 300 * kMs);
  const ShardedResult res =
      ShardedExperiment(cfg).run_with_model(elastic_model());
  EXPECT_TRUE(res.accounted());
  EXPECT_GT(res.elastic.join_attest_failures, 0u);
  EXPECT_GT(res.elastic.join_retries, 0u);
  EXPECT_GT(res.elastic.joins_completed, 0u);
}

TEST(ShardedElastic, JoinReattestsThroughTheVerifyService) {
  ShardedConfig cfg = elastic_config();
  cfg.secure = true;
  cfg.attest_svc.enabled = true;
  const ShardedResult base =
      ShardedExperiment([] {
        ShardedConfig c = elastic_config();
        c.secure = true;
        c.attest_svc.enabled = true;
        c.elastic.enabled = false;
        c.elastic.max_extra_replicas = 0;
        return c;
      }()).run_with_model(elastic_model());
  const ShardedResult res =
      ShardedExperiment(cfg).run_with_model(elastic_model());
  EXPECT_TRUE(res.accounted());
  EXPECT_GT(res.elastic.joins_completed, 0u);
  // Each joiner is its own verification subject: the service must do more
  // work than the same run without elastic joins.
  EXPECT_GT(res.attest.full + res.attest.evtpm,
            base.attest.full + base.attest.evtpm);
}

TEST(ShardedElastic, ScaleInAbortsWhenTheDrainTargetTripsItsBreaker) {
  ShardedConfig cfg = elastic_config();
  cfg.elastic.max_extra_replicas = 1;  // the only joiner is replica 2
  cfg.elastic.down_patience = 2;
  // The joiner's link goes down shortly after it joins (still mid-ramp):
  // probes trip its breaker well before the post-ramp lull, and every
  // scale-in decision against it must abort (the controller's ledger grows
  // back, so it keeps retrying while the lull lasts).
  cfg.faults.link_down(500 * kMs, 2500 * kMs, /*replica=*/2);
  const ShardedResult res =
      ShardedExperiment(cfg).run_with_model(elastic_model());
  EXPECT_TRUE(res.accounted());
  ASSERT_GT(res.elastic.joins_completed, 0u);
  EXPECT_GT(res.elastic.scale_in_aborts, 0u)
      << "an unhealthy drain target must abort the scale-in";
}

TEST(ShardedElastic, ScaleInRemovesControllerCapacityOnLull) {
  ShardedConfig cfg = elastic_config();
  cfg.elastic.down_patience = 2;
  const ShardedResult res =
      ShardedExperiment(cfg).run_with_model(elastic_model());
  EXPECT_TRUE(res.accounted());
  ASSERT_GT(res.elastic.joins_completed, 0u);
  EXPECT_GT(res.elastic.scale_ins, 0u)
      << "the post-ramp lull should scale the extras back in";
  EXPECT_EQ(res.elastic.scale_ins, res.churn.replica_removes);
}

TEST(ShardedElastic, ElasticRunsAreByteReproducible) {
  ShardedConfig cfg = elastic_config();
  cfg.faults.join_crash(300 * kMs, 150 * kMs);
  const ShardedResult a =
      ShardedExperiment(cfg).run_with_model(elastic_model());
  const ShardedResult b =
      ShardedExperiment(cfg).run_with_model(elastic_model());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_TRUE(a.accounted());
}

TEST(ShardedElastic, DisabledControllerLeavesEveryCounterAtZero) {
  ShardedConfig cfg = elastic_config();
  cfg.elastic.enabled = false;
  const ShardedResult res =
      ShardedExperiment(cfg).run_with_model(elastic_model());
  EXPECT_TRUE(res.accounted());
  EXPECT_EQ(res.elastic.ticks, 0u);
  EXPECT_EQ(res.elastic.replica_orders, 0u);
  EXPECT_EQ(res.churn.replica_adds, 0u);
  EXPECT_TRUE(res.elastic_trace.empty());
}

}  // namespace
}  // namespace confbench::sched

// Integration tests asserting the *shapes* of the paper's findings — who
// wins, by roughly what factor, where crossovers fall — end to end through
// the full ConfBench stack (reduced trial counts for speed). Each test maps
// to an entry of DESIGN.md's experiment index.
#include <gtest/gtest.h>

#include "attest/service.h"
#include "core/confbench.h"
#include "tee/registry.h"
#include "tee/tdx.h"
#include "vm/vfs.h"
#include "wl/db/speedtest.h"
#include "wl/ml/model.h"
#include "wl/ub/unixbench.h"

namespace confbench {
namespace {

double suite_time(const char* platform, bool secure,
                  const std::function<void(vm::ExecutionContext&, vm::Vfs&)>&
                      body) {
  vm::ExecutionContext ctx(tee::Registry::instance().create(platform),
                           secure, 1);
  vm::Vfs fs(ctx);
  body(ctx, fs);
  return ctx.now();
}

// --- E1 / Fig. 3: confidential ML ----------------------------------------------

TEST(Fig3Ml, TdxAndSnpNearNativeCcaClearlySlower) {
  auto ml_time = [](const char* platform, bool secure) {
    return suite_time(platform, secure,
                      [](vm::ExecutionContext& ctx, vm::Vfs& fs) {
                        wl::ml::install_image_dataset(fs, 4);
                        const wl::ml::MobileNetModel model(1, 16);
                        for (int i = 0; i < 4; ++i) {
                          const auto img = wl::ml::load_and_decode(
                              ctx, fs, i, model.input_hw());
                          [[maybe_unused]] auto r = model.classify(ctx, img);
                        }
                      });
  };
  const double tdx = ml_time("tdx", true) / ml_time("tdx", false);
  const double snp = ml_time("sev-snp", true) / ml_time("sev-snp", false);
  const double cca = ml_time("cca", true) / ml_time("cca", false);
  // CPU-intensive: near-native on the bare-metal TEEs, TDX slightly ahead.
  EXPECT_LT(tdx, 1.10);
  EXPECT_LT(snp, 1.10);
  EXPECT_LE(tdx, snp + 0.02);
  // CCA: clearly slower, up to ~1.33x in the paper.
  EXPECT_GT(cca, 1.12);
  EXPECT_LT(cca, 1.6);
}

// --- E2 / DBMS -------------------------------------------------------------------

TEST(DbmsTable, TdxSnpCloseToOneCcaLargest) {
  auto db_ratios = [](const char* platform) {
    auto run = [&](bool secure) {
      std::vector<wl::db::SpeedtestResult> rs;
      suite_time(platform, secure,
                 [&](vm::ExecutionContext& ctx, vm::Vfs& fs) {
                   rs = wl::db::run_speedtest(ctx, fs, 20);
                 });
      return rs;
    };
    const auto sec = run(true);
    const auto nrm = run(false);
    double sum = 0;
    for (std::size_t i = 0; i < sec.size(); ++i)
      sum += sec[i].elapsed / nrm[i].elapsed;
    return sum / static_cast<double>(sec.size());
  };
  const double tdx = db_ratios("tdx");
  const double snp = db_ratios("sev-snp");
  const double cca = db_ratios("cca");
  EXPECT_LT(tdx, 1.5);   // "very similar and close to 1"
  EXPECT_LT(snp, 1.25);
  EXPECT_GT(cca, 3.0);   // "the largest ones, on average up to 10x"
  EXPECT_GT(cca, 2.0 * tdx);
}

// --- E3 / Fig. 4: UnixBench --------------------------------------------------------

TEST(Fig4UnixBench, OverheadsLargerThanMlAndOrderedTdxSnpCca) {
  auto ub_slowdown = [](const char* platform) {
    auto idx = [&](bool secure) {
      double out = 0;
      suite_time(platform, secure,
                 [&](vm::ExecutionContext& ctx, vm::Vfs& fs) {
                   out = wl::ub::aggregate_index(wl::ub::run_unixbench(ctx, fs));
                 });
      return out;
    };
    return idx(false) / idx(true);
  };
  const double tdx = ub_slowdown("tdx");
  const double snp = ub_slowdown("sev-snp");
  const double cca = ub_slowdown("cca");
  EXPECT_GT(tdx, 1.15);  // larger than the ML overheads
  EXPECT_LE(tdx, snp);   // TDX introduces the least overhead
  EXPECT_GT(cca, 2.0 * snp);  // CCA by far the most
}

// --- E4 / Fig. 5: attestation -------------------------------------------------------

TEST(Fig5Attestation, SnpWinsBothPhasesAndTdxCheckIsNetworkBound) {
  attest::AttestationService service;
  auto tdx = tee::Registry::instance().create("tdx");
  auto snp = tee::Registry::instance().create("sev-snp");
  double tdx_attest = 0, tdx_check = 0, snp_attest = 0, snp_check = 0;
  constexpr int kTrials = 3;
  for (std::uint64_t t = 0; t < kTrials; ++t) {
    const auto a = service.run_tdx(*tdx, t);
    const auto b = service.run_snp(*snp, t);
    ASSERT_TRUE(a.ok) << a.failure;
    ASSERT_TRUE(b.ok) << b.failure;
    tdx_attest += a.attest_ns;
    tdx_check += a.check_ns;
    snp_attest += b.attest_ns;
    snp_check += b.check_ns;
  }
  EXPECT_GT(tdx_attest, 2.0 * snp_attest);
  EXPECT_GT(tdx_check, 10.0 * snp_check);
}

// --- E5-E6 / Figs. 6-7: FaaS grids ---------------------------------------------------

struct FaasGrid : ::testing::Test {
  static core::ConfBench& system() {
    static auto instance = core::ConfBench::standard();
    return *instance;
  }
  static double ratio(const char* fn, const char* lang, const char* platform) {
    return system().measure(fn, lang, platform, 3).ratio();
  }
};

TEST_F(FaasGrid, IoCrossoverTdxLosesSnpWins) {
  const double tdx_io = ratio("iostress", "go", "tdx");
  const double snp_io = ratio("iostress", "go", "sev-snp");
  EXPECT_GT(tdx_io, 1.8);           // bounce buffers (§IV-D)
  EXPECT_LT(snp_io, tdx_io * 0.7);  // SEV-SNP faster with I/O
  EXPECT_GT(snp_io, 1.05);
}

TEST_F(FaasGrid, CpuCellsNearNativeOnBareMetalTees) {
  for (const char* platform : {"tdx", "sev-snp"}) {
    const double r = ratio("cpustress", "wasm", platform);
    EXPECT_GT(r, 0.95) << platform;
    EXPECT_LT(r, 1.10) << platform;
  }
}

TEST_F(FaasGrid, HeavierRuntimesAmplifyTdxOverheads) {
  // §IV-B: lightweight runtimes (lua) lower overhead; python/node heavier.
  double heavy = 0, light = 0;
  for (const char* fn : {"fib", "primes", "json"}) {
    heavy += ratio(fn, "python", "tdx");
    light += ratio(fn, "lua", "tdx");
  }
  EXPECT_GT(heavy, light + 0.02);
}

TEST_F(FaasGrid, CcaUniformlyWorseThanTdx) {
  for (const char* fn : {"cpustress", "logging", "iostress"}) {
    EXPECT_GT(ratio(fn, "python", "cca"), ratio(fn, "python", "tdx") + 0.2)
        << fn;
  }
}

TEST_F(FaasGrid, SecureCanOccasionallyBeFasterWithinJitter) {
  // The paper observed a few ratios below 1 (cache effects); our grid must
  // at least allow sub-1.02 cells for the lightest configurations.
  double min_ratio = 10;
  for (const char* fn : {"quicksort", "sha256", "crc32"}) {
    min_ratio = std::min(min_ratio, ratio(fn, "wasm", "sev-snp"));
  }
  EXPECT_LT(min_ratio, 1.02);
}

// --- E7 / Fig. 8: CCA distributions --------------------------------------------------

TEST_F(FaasGrid, CcaRealmShowsWiderSpread) {
  const auto m = system().measure("factors", "lua", "cca", 8);
  auto spread = [](const std::vector<double>& xs) {
    const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
    const double mid = (*mn + *mx) / 2;
    return (*mx - *mn) / mid;
  };
  EXPECT_GT(spread(m.secure_ns), spread(m.normal_ns));
}

// --- A1: firmware ablation ------------------------------------------------------------

TEST(FirmwareAblation, PreFixUpToTenTimesSlower) {
  auto pre = std::make_shared<tee::TdxPlatform>(tee::TdxFirmware::kPreFix);
  auto fixed = std::make_shared<tee::TdxPlatform>(tee::TdxFirmware::kFixed);
  auto io_time = [](tee::PlatformPtr p) {
    vm::ExecutionContext ctx(p, true, 1);
    vm::Vfs fs(ctx);
    fs.create("/f");
    fs.write("/f", 1 << 20);
    fs.fsync("/f");
    fs.drop_caches();
    fs.read("/f", 0, 1 << 20);
    return ctx.now();
  };
  const double speedup = io_time(pre) / io_time(fixed);
  EXPECT_GT(speedup, 4.0);
  EXPECT_LT(speedup, 20.0);
}

}  // namespace
}  // namespace confbench

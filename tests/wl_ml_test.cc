#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "tee/registry.h"
#include "vm/vfs.h"
#include "wl/ml/model.h"
#include "wl/ml/tensor.h"

namespace confbench::wl::ml {
namespace {

vm::ExecutionContext make_ctx(bool secure = false) {
  return vm::ExecutionContext(tee::Registry::instance().create("tdx"),
                              secure, 1);
}

// --- tensor kernels -----------------------------------------------------------

TEST(Tensor, ShapeAndIndexing) {
  Tensor t(4, 5, 3);
  EXPECT_EQ(t.size(), 60u);
  t.at(3, 4, 2) = 7.0f;
  EXPECT_FLOAT_EQ(t.at(3, 4, 2), 7.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0, 0), 0.0f);
}

TEST(Conv2d, OutputShapeSamePaddingStride1) {
  Tensor in(8, 8, 2);
  std::vector<float> w(4 * 9 * 2, 0.0f), b(4, 0.0f);
  const Tensor out = conv2d(in, w, b, 3, 4, 1);
  EXPECT_EQ(out.h, 8);
  EXPECT_EQ(out.w, 8);
  EXPECT_EQ(out.c, 4);
}

TEST(Conv2d, OutputShapeStride2) {
  Tensor in(9, 9, 1);
  std::vector<float> w(1 * 9 * 1, 0.0f), b(1, 0.0f);
  const Tensor out = conv2d(in, w, b, 3, 1, 2);
  EXPECT_EQ(out.h, 5);
  EXPECT_EQ(out.w, 5);
}

TEST(Conv2d, IdentityKernelPreservesInterior) {
  Tensor in(5, 5, 1);
  for (int y = 0; y < 5; ++y)
    for (int x = 0; x < 5; ++x) in.at(y, x, 0) = static_cast<float>(y * 5 + x);
  // Kernel with only the centre tap set: [out=1][k=3][k=3][in=1].
  std::vector<float> w(9, 0.0f), b(1, 0.0f);
  w[4] = 1.0f;  // centre (ky=1, kx=1)
  const Tensor out = conv2d(in, w, b, 3, 1, 1);
  for (int y = 0; y < 5; ++y)
    for (int x = 0; x < 5; ++x)
      EXPECT_FLOAT_EQ(out.at(y, x, 0), in.at(y, x, 0));
}

TEST(Conv2d, BiasAdds) {
  Tensor in(2, 2, 1);
  std::vector<float> w(9, 0.0f), b{2.5f};
  const Tensor out = conv2d(in, w, b, 3, 1, 1);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 2.5f);
}

TEST(DepthwiseConv, IdentityKernelPerChannel) {
  Tensor in(4, 4, 3);
  for (std::size_t i = 0; i < in.data.size(); ++i)
    in.data[i] = static_cast<float>(i) * 0.5f;
  std::vector<float> w(9 * 3, 0.0f), b(3, 0.0f);
  for (int ch = 0; ch < 3; ++ch) w[4 * 3 + ch] = 1.0f;  // centre tap
  const Tensor out = depthwise_conv2d(in, w, b, 3, 1);
  for (std::size_t i = 0; i < in.data.size(); ++i)
    EXPECT_FLOAT_EQ(out.data[i], in.data[i]);
}

TEST(DepthwiseConv, ChannelsStayIndependent) {
  Tensor in(2, 2, 2);
  in.at(0, 0, 0) = 1.0f;  // channel 0 only
  std::vector<float> w(9 * 2, 0.0f), b(2, 0.0f);
  for (int i = 0; i < 9; ++i) {
    w[i * 2 + 0] = 1.0f;
    w[i * 2 + 1] = 1.0f;
  }
  const Tensor out = depthwise_conv2d(in, w, b, 3, 1);
  // Channel 1 never sees channel 0's energy.
  for (int y = 0; y < 2; ++y)
    for (int x = 0; x < 2; ++x) EXPECT_FLOAT_EQ(out.at(y, x, 1), 0.0f);
}

TEST(PointwiseConv, IsPerPixelMatMul) {
  Tensor in(1, 1, 2);
  in.at(0, 0, 0) = 2.0f;
  in.at(0, 0, 1) = 3.0f;
  // 2 outputs: [1 0; 0 1] identity and a bias.
  std::vector<float> w{1, 0, 0, 1};
  std::vector<float> b{10, 20};
  const Tensor out = pointwise_conv2d(in, w, b, 2);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 12.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), 23.0f);
}

TEST(Relu6, ClampsBothEnds) {
  Tensor t(1, 1, 3);
  t.at(0, 0, 0) = -5.0f;
  t.at(0, 0, 1) = 3.0f;
  t.at(0, 0, 2) = 99.0f;
  relu6(t);
  EXPECT_FLOAT_EQ(t.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0, 1), 3.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0, 2), 6.0f);
}

TEST(GlobalAvgPool, Averages) {
  Tensor t(2, 2, 1);
  t.at(0, 0, 0) = 1;
  t.at(0, 1, 0) = 2;
  t.at(1, 0, 0) = 3;
  t.at(1, 1, 0) = 6;
  const Tensor out = global_avg_pool(t);
  EXPECT_EQ(out.h, 1);
  EXPECT_EQ(out.c, 1);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 3.0f);
}

TEST(Dense, ComputesAffineMap) {
  const std::vector<float> in{1, 2};
  const std::vector<float> w{3, 4, 5, 6};  // rows: [3 4], [5 6]
  const std::vector<float> b{0.5f, -0.5f};
  const auto out = dense(in, w, b, 2);
  EXPECT_FLOAT_EQ(out[0], 11.5f);
  EXPECT_FLOAT_EQ(out[1], 16.5f);
}

TEST(Softmax, NormalisesAndOrders) {
  const auto p = softmax({1.0f, 2.0f, 3.0f});
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-6);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(Softmax, StableForLargeLogits) {
  const auto p = softmax({1000.0f, 1000.0f});
  EXPECT_NEAR(p[0], 0.5, 1e-6);
  EXPECT_FALSE(std::isnan(p[1]));
}

// --- MobileNet model ------------------------------------------------------------

TEST(MobileNet, LayerTableMatchesThePaperModel) {
  const auto& layers = mobilenet_v1_layers();
  EXPECT_EQ(layers.size(), 27u);  // stem + 13 dw/pw pairs
  double total_macs = 0, total_weights = 0;
  for (const auto& l : layers) {
    total_macs += l.macs();
    total_weights += l.weight_bytes();
  }
  // MobileNetV1 @224: ~569M MACs, ~4.2M params (~16.8 MB fp32) before FC.
  EXPECT_NEAR(total_macs, 568e6, 25e6);
  EXPECT_NEAR(total_weights / 4.0, 3.2e6, 0.4e6);  // conv params only
}

TEST(MobileNet, ClassifyReturnsValidLabel) {
  MobileNetModel model(1, 16);
  auto ctx = make_ctx();
  Tensor img(model.input_hw(), model.input_hw(), 3);
  for (auto& v : img.data) v = 0.1f;
  const MlResult r = model.classify(ctx, img);
  EXPECT_GE(r.label, 0);
  EXPECT_LT(r.label, model.num_classes());
  EXPECT_GT(r.confidence, 0.0f);
  EXPECT_LE(r.confidence, 1.0f);
}

TEST(MobileNet, DeterministicForSeed) {
  MobileNetModel a(5, 16), b(5, 16);
  auto ctx1 = make_ctx(), ctx2 = make_ctx();
  Tensor img(a.input_hw(), a.input_hw(), 3);
  for (std::size_t i = 0; i < img.data.size(); ++i)
    img.data[i] = static_cast<float>(i % 13) * 0.07f;
  EXPECT_EQ(a.classify(ctx1, img).label, b.classify(ctx2, img).label);
}

TEST(MobileNet, DifferentInputsUsuallyDiffer) {
  MobileNetModel model(5, 16);
  auto ctx = make_ctx();
  Tensor a(model.input_hw(), model.input_hw(), 3);
  Tensor b = a;
  for (auto& v : a.data) v = 0.3f;
  for (std::size_t i = 0; i < b.data.size(); ++i)
    b.data[i] = (i % 2) ? 1.0f : -1.0f;
  const int la = model.classify(ctx, a).label;
  const int lb = model.classify(ctx, b).label;
  // Random-weight network: not guaranteed, but these two inputs are far
  // apart; assert confidences are sane instead of exact inequality.
  EXPECT_GE(la, 0);
  EXPECT_GE(lb, 0);
}

TEST(MobileNet, ClassifyChargesFullScaleCosts) {
  MobileNetModel model(1, 16);
  auto ctx = make_ctx();
  Tensor img(model.input_hw(), model.input_hw(), 3);
  [[maybe_unused]] auto r0 = model.classify(ctx, img);
  // 2 FLOPs per MAC at 569M MACs dominates the instruction count.
  EXPECT_GT(ctx.counters().instructions, 1.0e9);
  EXPECT_GT(ctx.counters().cache_references, 1e5);
  EXPECT_GT(ctx.now(), 0.1 * sim::kSec);
}

TEST(MobileNet, SecureInferenceSlightlySlower) {
  MobileNetModel model(1, 16);
  auto nrm = make_ctx(false);
  auto sec = make_ctx(true);
  Tensor img(model.input_hw(), model.input_hw(), 3);
  [[maybe_unused]] auto r1 = model.classify(nrm, img);
  [[maybe_unused]] auto r2 = model.classify(sec, img);
  EXPECT_GT(sec.now(), nrm.now());
  EXPECT_LT(sec.now(), nrm.now() * 1.15);  // near-native (Fig. 3)
}

// --- dataset + decode --------------------------------------------------------------

TEST(Dataset, InstallsFortyOneMegabyteImages) {
  auto ctx = make_ctx();
  vm::Vfs fs(ctx);
  install_image_dataset(fs, 40);
  EXPECT_EQ(fs.list_dir("/data").size(), 40u);
  EXPECT_EQ(fs.file_size("/data/img_0.bin"), 1u << 20);
  EXPECT_EQ(fs.file_size("/data/img_39.bin"), 1u << 20);
}

TEST(Dataset, LoadAndDecodeChargesIoAndCompute) {
  auto ctx = make_ctx();
  vm::Vfs fs(ctx);
  install_image_dataset(fs, 2);
  const double io0 = ctx.counters().io_bytes;
  const Tensor t = load_and_decode(ctx, fs, 0, 28);
  EXPECT_EQ(t.h, 28);
  EXPECT_EQ(t.c, 3);
  EXPECT_GT(ctx.counters().io_bytes, io0);  // cold read from the device
  EXPECT_GT(ctx.counters().instructions, 1e6);  // JPEG-ish decode work
}

TEST(Dataset, DecodedPixelsDeterministicPerIndex) {
  auto ctx = make_ctx();
  vm::Vfs fs(ctx);
  install_image_dataset(fs, 2);
  const Tensor a = load_and_decode(ctx, fs, 0, 16);
  const Tensor b = load_and_decode(ctx, fs, 0, 16);
  const Tensor c = load_and_decode(ctx, fs, 1, 16);
  EXPECT_EQ(a.data, b.data);
  EXPECT_NE(a.data, c.data);
}

}  // namespace
}  // namespace confbench::wl::ml

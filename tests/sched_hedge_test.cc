// Speculative cross-shard hedging: the learned-benefit cost gate, the
// ring-successor race with first-response-wins cancellation, the
// budget/breaker/degraded interlocks, ticket lifecycle races through the
// verification service, and the satellite regression that hedge duplicates
// never read as demand to the elastic controller.
#include <gtest/gtest.h>

#include <vector>

#include "attest/svc/cost_model.h"
#include "attest/svc/verify_service.h"
#include "fault/hedge.h"
#include "sched/shard.h"
#include "sim/time.h"

namespace confbench::sched {
namespace {

using sim::kMs;
using sim::kSec;
using sim::kUs;

// --- HedgePolicy cost gate (satellite: min_benefit_ns) -----------------------

/// Bimodal latency feed: `clean_n` fast completions plus `slow_n` stragglers,
/// the distribution a gray-slow link produces.
fault::HedgePolicy bimodal_policy(fault::HedgeConfig cfg, int clean_n = 900,
                                  int slow_n = 100) {
  cfg.enabled = true;
  fault::HedgePolicy p(cfg);
  for (int i = 0; i < clean_n; ++i) p.observe(0, 10 * kMs);
  for (int i = 0; i < slow_n; ++i) p.observe(0, 100 * kMs);
  return p;
}

TEST(HedgePolicyBenefit, ExpectedBenefitIsTheResidualTailBeyondTheArm) {
  fault::HedgeConfig cfg;
  cfg.quantile = 0.5;
  cfg.min_median_mult = 1.0;
  cfg.min_delay_ns = 1 * kMs;
  const fault::HedgePolicy p = bimodal_policy(cfg);
  // Arm sits in the clean bulk (~10ms); the 0.999 quantile sits in the
  // slow mode (~100ms): a straggler still has ~90ms left to lose.
  const sim::Ns arm = p.threshold_ns(0);
  EXPECT_GT(arm, 5 * kMs);
  EXPECT_LT(arm, 20 * kMs);
  const sim::Ns benefit = p.expected_benefit_ns(0);
  EXPECT_GT(benefit, 60 * kMs);
  EXPECT_LT(benefit, 120 * kMs);

  // Unarmed (disabled / warming) classes promise nothing.
  fault::HedgePolicy cold(cfg);
  EXPECT_EQ(cold.expected_benefit_ns(0), 0);
}

TEST(HedgePolicyBenefit, WorthHedgingClampsAtCrossingCostAndConfiguredFloor) {
  fault::HedgeConfig cfg;
  cfg.quantile = 0.5;
  cfg.min_median_mult = 1.0;
  cfg.min_delay_ns = 1 * kMs;
  const fault::HedgePolicy p = bimodal_policy(cfg);
  // A free backup (the legacy intra-shard path) always launches.
  EXPECT_TRUE(p.worth_hedging(0, 0));
  // A warm ticket-check (~µs..ms) is far below the ~90ms residual tail.
  EXPECT_TRUE(p.worth_hedging(0, 1 * kMs));
  // A TDX-style cold crossing exceeds anything a straggler can recover.
  EXPECT_FALSE(p.worth_hedging(0, 1460 * kMs));

  // The configured floor binds even when the measured crossing is cheap.
  cfg.min_benefit_ns = 200 * kMs;
  const fault::HedgePolicy floored = bimodal_policy(cfg);
  EXPECT_FALSE(floored.worth_hedging(0, 1 * kMs));
}

TEST(HedgePolicyBenefit, ColdClassNeverPaysACrossing) {
  fault::HedgeConfig cfg;
  cfg.cost_classes = 2;
  cfg.quantile = 0.5;
  cfg.min_median_mult = 1.0;
  const fault::HedgePolicy p = bimodal_policy(cfg);  // class 0 warm only
  EXPECT_EQ(p.expected_benefit_ns(1), 0);
  EXPECT_FALSE(p.worth_hedging(1, 1)) << "a cold class has no learned tail";
  EXPECT_TRUE(p.worth_hedging(1, 0)) << "...but the free backup still may";
}

// --- Sharded experiment ------------------------------------------------------

ShardedConfig hedge_config() {
  ShardedConfig cfg;
  cfg.requests = 3000;
  cfg.rate_rps = 3000;
  cfg.seed = 11;
  cfg.replicas = 16;
  cfg.shard.shards = 4;
  cfg.queue = {.concurrency = 8, .queue_depth = 32};
  cfg.scaler.tick_ns = 20 * kMs;
  cfg.retry.max_attempts = 4;
  // Arm in the clean bulk: with a gray-slow minority the low quantile plus
  // the median floor stays out of the slow mode, so stragglers hedge while
  // their answer crawls back through the slowed link.
  cfg.hedge.enabled = true;
  cfg.hedge.cross_shard = true;
  cfg.hedge.quantile = 0.55;
  cfg.hedge.budget_fraction = 0.5;
  return cfg;
}

ServiceModel hedge_model() {
  ServiceModel m;
  m.parallel_ns = 1 * kMs;
  m.serialized_ns = 0;
  m.jitter_sigma = 0.02;
  m.cold_start_ns = 0.5 * kSec;
  return m;
}

/// Gray-slows one member of shard-0's slice: its responses toward the
/// shard crawl (factor x the 100us hop), the request path stays clean —
/// pure tail latency, nothing for breakers or reactive failover to see.
void add_gray_slow(ShardedConfig& cfg, double factor, sim::Ns from = 300 * kMs,
                   sim::Ns until = 900 * kMs) {
  const ShardedFrontend fe(cfg.shard, cfg.replicas);
  cfg.faults.slow_link(from, until - from,
                       ShardedFrontend::replica_host(fe.slice(0)[0]),
                       ShardedFrontend::shard_host(0), factor);
}

TEST(SpecHedge, GraySlowRaceBeatsReactiveWaitingAndCancelsTheLosers) {
  ShardedConfig cfg = hedge_config();
  cfg.secure = false;  // crossing price: fabric hop + handshake only
  add_gray_slow(cfg, 500);  // ~100ms response tail on 1/4 of shard-0
  const ShardedResult hedged =
      ShardedExperiment(cfg).run_with_model(hedge_model());
  EXPECT_TRUE(hedged.accounted())
      << "completed=" << hedged.completed << " rejected=" << hedged.rejected
      << " failed=" << hedged.failed << " offered=" << hedged.offered;
  EXPECT_GT(hedged.hedging.fired, 20u);
  EXPECT_GT(hedged.hedging.cross, 20u);
  EXPECT_GT(hedged.hedging.cross_wins, 20u);
  EXPECT_EQ(hedged.hedging.attest_failures, 0u);
  // Every cross win cancels the primary's answer mid-wire on the slowed
  // link — the cancel-of-inflight-network-hop path.
  EXPECT_GT(hedged.hedging.cancelled_inflight, 20u);
  EXPECT_GT(hedged.latency_hedged.count(), 0u);

  // Reactive comparator: same gray failure, no hedging. The slowed
  // responses are merely late — links are up, so no breaker trips, no
  // failover fires, and the p99 eats the full gray tail.
  ShardedConfig reactive_cfg = cfg;
  reactive_cfg.hedge = {};
  const ShardedResult reactive =
      ShardedExperiment(reactive_cfg).run_with_model(hedge_model());
  EXPECT_TRUE(reactive.accounted());
  EXPECT_EQ(reactive.failovers, 0u);
  EXPECT_EQ(reactive.hedging.fired, 0u);
  EXPECT_LT(hedged.latency.p99() * 2, reactive.latency.p99())
      << "hedged=" << hedged.latency.p99()
      << " reactive=" << reactive.latency.p99();

  // Determinism with the race, cancels and all: same seed, same bytes.
  const ShardedResult again =
      ShardedExperiment(cfg).run_with_model(hedge_model());
  EXPECT_EQ(hedged.to_json(), again.to_json());
}

TEST(SpecHedge, BenefitFloorDeclinesEveryCrossingItCannotWin) {
  ShardedConfig cfg = hedge_config();
  cfg.secure = false;
  cfg.hedge.min_benefit_ns = 10 * kSec;  // no straggler can recover this
  add_gray_slow(cfg, 500);
  const ShardedResult r = ShardedExperiment(cfg).run_with_model(hedge_model());
  EXPECT_TRUE(r.accounted());
  EXPECT_GT(r.hedging.declined_cost, 20u);
  EXPECT_EQ(r.hedging.fired, 0u);
  EXPECT_EQ(r.hedging.wins, 0u);
  EXPECT_EQ(r.hedge_wins, 0u);
}

TEST(SpecHedge, NeverHedgesIntoAFailingSuccessor) {
  // Two-shard ring: shard-1 is the only possible successor for shard-0's
  // stragglers, and shard-1 -> slice links are down for most of the run.
  // Early declines hit the degraded gate (reachability 0); once shard-1's
  // own black-holed home traffic opens its slice breakers, the breaker
  // gate refuses first. Either way: zero crossings into the failing shard.
  ShardedConfig cfg = hedge_config();
  cfg.secure = false;
  cfg.shard.shards = 2;
  cfg.replicas = 8;
  add_gray_slow(cfg, 500, 250 * kMs, 950 * kMs);
  const ShardedFrontend fe(cfg.shard, cfg.replicas);
  for (const std::uint32_t r : fe.slice(1))
    cfg.faults.link_down(200 * kMs, 1300 * kMs,
                         ShardedFrontend::shard_host(1),
                         ShardedFrontend::replica_host(r));
  const ShardedResult r = ShardedExperiment(cfg).run_with_model(hedge_model());
  EXPECT_TRUE(r.accounted())
      << "completed=" << r.completed << " rejected=" << r.rejected
      << " failed=" << r.failed << " offered=" << r.offered;
  EXPECT_EQ(r.hedging.cross, 0u) << "never hedge toward a failing shard";
  EXPECT_GT(r.hedging.declined_degraded, 0u);
  EXPECT_GT(r.hedging.declined_breaker, 0u);
}

TEST(SpecHedge, HedgeStormNeverReadsAsDemandToTheElasticController) {
  // Satellite regression: an aggressive policy hedging the upper half of
  // *clean* traffic floods the successors with duplicates. Each duplicate
  // occupies a real queue slot, but the per-tick demand sample and the
  // overload guard's predicted wait both subtract the hedge-queued count —
  // so the storm must produce zero scale-out orders and zero early
  // rejections on a fleet whose genuine demand is flat and well-provisioned.
  ShardedConfig cfg = hedge_config();
  cfg.secure = false;
  cfg.hedge.quantile = 0.5;
  cfg.hedge.min_median_mult = 1.0;
  cfg.hedge.min_delay_ns = 100 * kUs;
  cfg.hedge.budget_fraction = 1.0;
  {
    // One gray member per slice: every shard produces stragglers, every
    // shard receives its neighbours' hedge duplicates.
    const ShardedFrontend fe(cfg.shard, cfg.replicas);
    for (int s = 0; s < cfg.shard.shards; ++s)
      cfg.faults.slow_link(300 * kMs, 600 * kMs,
                           ShardedFrontend::replica_host(fe.slice(s)[0]),
                           ShardedFrontend::shard_host(s), 500);
  }
  cfg.shard.early_reject = true;
  cfg.shard.early_reject_budget_ns = 50 * kMs;
  cfg.elastic.enabled = true;
  cfg.elastic.tick_ns = 50 * kMs;
  cfg.elastic.max_extra_replicas = 8;
  cfg.elastic.down_patience = 1000000;  // isolate the scale-out signal
  const ShardedResult r = ShardedExperiment(cfg).run_with_model(hedge_model());
  EXPECT_TRUE(r.accounted());
  EXPECT_GT(r.hedging.fired, 200u) << "the storm must actually blow";
  EXPECT_GT(r.elastic.ticks, 0u);
  EXPECT_EQ(r.elastic.replica_orders, 0u)
      << "hedge duplicates must not inflate the arrival/backlog signal";
  EXPECT_EQ(r.elastic.shard_orders, 0u);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.churn.early_rejected, 0u)
      << "duplicates must not trip the overload guard's predicted wait";
}

TEST(SpecHedge, TicketLifecycleRacesFallBackToFullVerifyAndStayAccounted) {
  // Crossings priced through the live verification service across every
  // ticket regime in one run: prewarmed tickets resume (~1ms) until their
  // TTL lapses mid-flight, expiry falls back to warm-collateral full
  // verifies that re-mint, a TCB recovery re-keys the collateral, and the
  // revocation storm flushes tickets and cache so late crossings pay the
  // full fetch — and still win, because the gray tail exceeds even that.
  ShardedConfig cfg = hedge_config();
  cfg.secure = true;
  add_gray_slow(cfg, 2000, 250 * kMs, 950 * kMs);  // ~400ms response tail
  cfg.attest_svc.enabled = true;
  attest::svc::CostModel cm;
  cm.platform = "tdx";
  cm.supported = true;
  cm.evidence_ns = 10 * kMs;
  cm.collateral_ns = 100 * kMs;
  cm.verify_ns = 5 * kMs;
  cm.full_round_ns = 130 * kMs;
  cm.ticket_check_ns = 1 * kMs;
  cfg.attest_svc.cost = cm;
  cfg.attest_svc.collateral_ttl_ns = 600 * kSec;
  cfg.attest_svc.ticket_ttl_ns = 400 * kMs;
  for (int s = 0; s < 4; ++s)
    cfg.attest_svc.prewarm_subjects.push_back(static_cast<std::uint64_t>(s));
  cfg.attest_svc.tcb_recovery_at = {450 * kMs};
  cfg.attest_svc.revoke_at = {650 * kMs};
  const ShardedResult r = ShardedExperiment(cfg).run_with_model(hedge_model());
  EXPECT_TRUE(r.accounted())
      << "completed=" << r.completed << " rejected=" << r.rejected
      << " failed=" << r.failed << " offered=" << r.offered;
  EXPECT_GT(r.hedging.fired, 20u);
  EXPECT_GT(r.hedging.cross_wins, 0u);
  EXPECT_GT(r.hedging.ticket_resumes, 0u) << "warm regime crossings";
  EXPECT_GT(r.hedging.full_verifies, 0u) << "expiry/revocation fallbacks";
  EXPECT_EQ(r.hedging.fired,
            r.hedging.cross + r.hedging.intra);
  EXPECT_GT(r.attest.fetches, 0u) << "post-flush crossings refetch";
  EXPECT_EQ(r.attest.revocations, 1u);
  EXPECT_EQ(r.attest.tcb_recoveries, 1u);

  const ShardedResult again =
      ShardedExperiment(cfg).run_with_model(hedge_model());
  EXPECT_EQ(r.to_json(), again.to_json());
}

}  // namespace
}  // namespace confbench::sched

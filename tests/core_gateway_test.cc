#include <gtest/gtest.h>

#include "core/confbench.h"
#include "core/launcher.h"
#include "core/native.h"

namespace confbench::core {
namespace {

struct GatewayTest : ::testing::Test {
  GatewayTest() : system(GatewayConfig::standard()) {
    system.gateway().upload_all_builtin();
  }
  ConfBench system;
};

TEST_F(GatewayTest, PlatformsFromConfig) {
  const auto platforms = system.gateway().platforms();
  EXPECT_EQ(platforms.size(), 4u);
  EXPECT_NE(system.gateway().pool("tdx"), nullptr);
  EXPECT_EQ(system.gateway().pool("sgx"), nullptr);
}

TEST_F(GatewayTest, FunctionDatabasePerLanguage) {
  EXPECT_EQ(system.gateway().functions("python").size(), 25u);
  EXPECT_EQ(system.gateway().functions("native").size(), 3u);
  EXPECT_TRUE(system.gateway().has_function("lua", "fib"));
  EXPECT_FALSE(system.gateway().has_function("lua", "nope"));
  EXPECT_TRUE(system.gateway().functions("cobol").empty());
}

TEST_F(GatewayTest, UploadValidation) {
  EXPECT_FALSE(system.gateway().upload_function("cobol", "fib", "src"));
  EXPECT_FALSE(system.gateway().upload_function("python", "nope", "src"));
  EXPECT_TRUE(system.gateway().upload_function("python", "fib", "def f():"));
}

TEST_F(GatewayTest, InvokeHappyPath) {
  const auto rec = system.gateway().invoke(
      {.function = "fib", .language = "lua", .platform = "tdx",
       .secure = true, .trial = 3});
  ASSERT_TRUE(rec.ok()) << rec.error;
  EXPECT_EQ(rec.output.rfind("fib:", 0), 0u);
  EXPECT_GT(rec.function_ns, 0);
  EXPECT_GT(rec.bootstrap_ns, 0);
  EXPECT_GT(rec.perf.instructions, 0);  // piggybacked perf parsed
  EXPECT_TRUE(rec.perf_from_pmu);
  EXPECT_EQ(rec.served_by, "host-tdx:8200");  // secure port selected
}

TEST_F(GatewayTest, NormalVmUsesNormalPort) {
  const auto rec = system.gateway().invoke(
      {.function = "fib", .language = "lua", .platform = "tdx",
       .secure = false});
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.served_by, "host-tdx:8100");
}

TEST_F(GatewayTest, CcaRealmInvocationUsesCustomCollector) {
  const auto rec = system.gateway().invoke(
      {.function = "fib", .language = "lua", .platform = "cca",
       .secure = true});
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE(rec.perf_from_pmu);
  EXPECT_DOUBLE_EQ(rec.perf.instructions, 0);
  EXPECT_GT(rec.perf.wall_ns, 0);
}

TEST_F(GatewayTest, InvokeErrorsAreDescriptive) {
  const auto missing = system.gateway().invoke(
      {.function = "nope", .language = "lua", .platform = "tdx",
       .secure = true});
  EXPECT_EQ(missing.http_status, 404);
  EXPECT_EQ(missing.code, ErrorCode::kFunctionNotFound);
  const auto no_pool = system.gateway().invoke(
      {.function = "fib", .language = "lua", .platform = "sgx",
       .secure = true});
  EXPECT_EQ(no_pool.http_status, 404);
  EXPECT_EQ(no_pool.code, ErrorCode::kNoPool);
}

TEST_F(GatewayTest, NativeClassicWorkloads) {
  const auto rec =
      system.gateway().invoke({.function = "db-speedtest",
                               .language = "native",
                               .platform = "sev-snp",
                               .secure = true});
  ASSERT_TRUE(rec.ok()) << rec.error;
  EXPECT_EQ(rec.output.rfind("db-speedtest:", 0), 0u);
}

TEST_F(GatewayTest, RestEndpointsOverTheWire) {
  auto& net = system.network();
  // GET /platforms
  net::HttpRequest req;
  req.method = "GET";
  req.path = "/platforms";
  auto resp = net.roundtrip("gateway", 8080, req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("tdx"), std::string::npos);
  // GET /functions/lua
  req.path = "/functions/lua";
  resp = net.roundtrip("gateway", 8080, req);
  EXPECT_NE(resp.body.find("fib"), std::string::npos);
  // GET /health
  req.path = "/health";
  EXPECT_EQ(net.roundtrip("gateway", 8080, req).status, 200);
  // POST /invoke
  req.method = "POST";
  req.path = "/invoke";
  req.query = "function=fib&lang=lua&platform=tdx&secure=1&trial=2";
  resp = net.roundtrip("gateway", 8080, req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.rfind("fib:", 0), 0u);
  EXPECT_EQ(resp.headers.count("X-Perf"), 1u);
  EXPECT_EQ(resp.headers.count("X-Function-Ns"), 1u);
  // POST /upload
  req.path = "/upload";
  req.query = "lang=python&function=fib";
  req.body = "def handler(): ...";
  EXPECT_EQ(net.roundtrip("gateway", 8080, req).status, 201);
  // Bad invoke
  req.path = "/invoke";
  req.query = "function=fib";
  EXPECT_EQ(net.roundtrip("gateway", 8080, req).status, 400);
  // Unknown route
  req.path = "/nope";
  EXPECT_EQ(net.roundtrip("gateway", 8080, req).status, 404);
}

TEST_F(GatewayTest, HostHealthEndpoint) {
  net::HttpRequest req;
  req.method = "GET";
  req.path = "/health";
  const auto resp = system.network().roundtrip("host-tdx", 8200, req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("secure=1"), std::string::npos);
  EXPECT_NE(resp.body.find("state=running"), std::string::npos);
}

TEST_F(GatewayTest, HostRejectsUnknownFunctionAndLanguage) {
  net::HttpRequest req;
  req.method = "POST";
  req.path = "/run";
  req.query = "function=fib&lang=cobol";
  EXPECT_EQ(system.network().roundtrip("host-tdx", 8100, req).status, 400);
  req.query = "function=missing&lang=lua";
  EXPECT_EQ(system.network().roundtrip("host-tdx", 8100, req).status, 404);
  req.query = "lang=lua";
  EXPECT_EQ(system.network().roundtrip("host-tdx", 8100, req).status, 400);
  req.query = "function=fib&lang=lua&trial=banana";
  EXPECT_EQ(system.network().roundtrip("host-tdx", 8100, req).status, 400);
}

TEST_F(GatewayTest, MeasureProducesConsistentSeries) {
  const auto m = system.measure("fib", "lua", "sev-snp", 4);
  EXPECT_EQ(m.secure_ns.size(), 4u);
  EXPECT_EQ(m.normal_ns.size(), 4u);
  EXPECT_GT(m.ratio(), 0.8);
  EXPECT_LT(m.ratio(), 2.0);
}

TEST_F(GatewayTest, PoolCountsRequests) {
  for (int i = 0; i < 6; ++i)
    (void)system.gateway().invoke({.function = "fib",
                                   .language = "lua",
                                   .platform = "tdx",
                                   .secure = i % 2 == 0});
  const auto& members = system.gateway().pool("tdx")->members();
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(members[0].served, 6u);
  EXPECT_EQ(members[0].in_flight, 0u);  // all released
}

TEST(Launcher, BootstrapExcludedFromFunctionTime) {
  auto platform = tee::Registry::instance().create("tdx");
  vm::VmConfig cfg{"vm", platform, false, vm::UnitKind::kVm, 8, 1ULL << 30};
  vm::GuestVm vm(cfg);
  vm.boot();
  const FunctionLauncher launcher(*rt::find_profile("python"));
  const auto* fn = wl::find_faas("fib");
  const LaunchResult r = launcher.launch(vm, *fn, 0);
  EXPECT_GT(r.bootstrap_ns, 0);
  EXPECT_GT(r.function_ns, 0);
  EXPECT_LT(r.function_ns, r.raw.wall_ns);
  // The function span plus the (unjittered) bootstrap roughly compose the
  // full wall time; allow the trial-jitter margin.
  EXPECT_NEAR(r.function_ns + r.bootstrap_ns, r.raw.wall_ns,
              r.raw.wall_ns * 0.15);
}

TEST(Launcher, HeavierRuntimeLongerBootstrap) {
  auto platform = tee::Registry::instance().create("tdx");
  vm::VmConfig cfg{"vm", platform, false, vm::UnitKind::kVm, 8, 1ULL << 30};
  vm::GuestVm vm(cfg);
  vm.boot();
  const auto* fn = wl::find_faas("fib");
  const FunctionLauncher py(*rt::find_profile("python"));
  const FunctionLauncher lua(*rt::find_profile("lua"));
  EXPECT_GT(py.launch(vm, *fn, 0).bootstrap_ns,
            lua.launch(vm, *fn, 0).bootstrap_ns);
}

TEST(Native, ThreeClassicWorkloads) {
  EXPECT_EQ(native_workloads().size(), 3u);
  EXPECT_NE(find_native("ml-inference"), nullptr);
  EXPECT_NE(find_native("unixbench"), nullptr);
  EXPECT_EQ(find_native("fib"), nullptr);
}

TEST(ConfBenchFacade, UnknownTeeThrows) {
  GatewayConfig cfg;
  cfg.endpoints = {{"sgx-classic", "host-x", 8100, 8200}};
  EXPECT_THROW(ConfBench{cfg}, std::invalid_argument);
}

TEST(ConfBenchFacade, HostsBootedAndAddressable) {
  ConfBench system(GatewayConfig::standard());
  EXPECT_EQ(system.hostnames().size(), 4u);
  ASSERT_NE(system.host("host-tdx"), nullptr);
  EXPECT_EQ(system.host("host-tdx")->vm_count(), 2u);
  EXPECT_EQ(system.host("nope"), nullptr);
}

}  // namespace
}  // namespace confbench::core
// (appended) --- retry behaviour under network faults -----------------------------

namespace confbench::core {
namespace {

TEST(GatewayRetries, TransientDropsAreRetried) {
  ConfBench system(GatewayConfig::standard());
  system.gateway().upload_all_builtin();
  system.network().set_faults(
      {.drop_rate = 0.4, .corrupt_rate = 0, .timeout_us = 500});
  int ok = 0, retried = 0;
  for (int i = 0; i < 30; ++i) {
    const auto rec = system.gateway().invoke(
        {.function = "fib", .language = "lua", .platform = "tdx",
         .secure = true, .trial = static_cast<std::uint64_t>(i)});
    ok += rec.ok();
    retried += rec.retries > 0;
  }
  EXPECT_GT(ok, 25);      // retries mask most 40% drops
  EXPECT_GT(retried, 3);  // and some invocations did need them
}

TEST(GatewayRetries, ZeroRetriesSurfacesFailures) {
  GatewayConfig cfg = GatewayConfig::standard();
  cfg.retry.max_attempts = 1;
  ConfBench system(cfg);
  system.gateway().upload_all_builtin();
  system.network().set_faults(
      {.drop_rate = 1.0, .corrupt_rate = 0, .timeout_us = 500});
  const auto rec = system.gateway().invoke(
      {.function = "fib", .language = "lua", .platform = "tdx",
       .secure = true});
  EXPECT_FALSE(rec.ok());
  EXPECT_EQ(rec.http_status, 504);
  EXPECT_EQ(rec.code, ErrorCode::kTransport);
  EXPECT_EQ(rec.retries, 0);
}

TEST(GatewayRetries, ApplicationErrorsAreNotRetried) {
  ConfBench system(GatewayConfig::standard());
  system.gateway().upload_all_builtin();
  // Unknown function reaches the host and 404s; no retries should happen.
  system.gateway().upload_function("lua", "fib", "src");
  const auto before = system.network().requests_sent();
  const auto rec = system.gateway().invoke(
      {.function = "fib", .language = "lua", .platform = "tdx",
       .secure = true});
  EXPECT_TRUE(rec.ok());
  EXPECT_EQ(system.network().requests_sent(), before + 1);
}

TEST(GatewayRetries, ConfigRoundTripsRetries) {
  GatewayConfig cfg;
  cfg.retry.max_attempts = 8;  // serialized as "retries = 7"
  cfg.retry.budget_ns = 250 * sim::kMs;
  const auto round = GatewayConfig::from_ini(cfg.to_ini());
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->retry.max_attempts, 8);
  EXPECT_DOUBLE_EQ(round->retry.budget_ns, 250 * sim::kMs);
  std::string err;
  auto bad = IniFile::parse("[gateway]\nretries = -3\n");
  EXPECT_FALSE(GatewayConfig::from_ini(*bad, &err).has_value());
  auto bad_budget = IniFile::parse("[gateway]\nretry_budget_ms = -1\n");
  EXPECT_FALSE(GatewayConfig::from_ini(*bad_budget, &err).has_value());
}

TEST(GatewayRetries, BackoffIsChargedIntoLatency) {
  // With a 100% drop rate every attempt times out; the record's latency
  // must include the (deterministic, jittered) backoff between attempts.
  GatewayConfig cfg = GatewayConfig::standard();
  cfg.retry.max_attempts = 3;
  ConfBench system(cfg);
  system.gateway().upload_all_builtin();
  system.network().set_faults(
      {.drop_rate = 1.0, .corrupt_rate = 0, .timeout_us = 500});
  const auto rec = system.gateway().invoke(
      {.function = "fib", .language = "lua", .platform = "tdx",
       .secure = true});
  EXPECT_FALSE(rec.ok());
  EXPECT_EQ(rec.retries, 2);
  EXPECT_GT(rec.backoff_ns, 0);
  // 3 attempts x 500us timeout + the two backoffs.
  EXPECT_DOUBLE_EQ(rec.latency_ns, 3 * 500 * sim::kUs + rec.backoff_ns);
}

TEST(GatewayRetries, DeadlineAwareGiveUpSkipsHopelessRetries) {
  // The deadline is shorter than the first backoff, so after the first
  // failed attempt the policy refuses to retry into a certain miss.
  GatewayConfig cfg = GatewayConfig::standard();
  cfg.retry.max_attempts = 5;
  cfg.retry.base_backoff_ns = 50 * sim::kMs;
  ConfBench system(cfg);
  system.gateway().upload_all_builtin();
  system.network().set_faults(
      {.drop_rate = 1.0, .corrupt_rate = 0, .timeout_us = 500});
  const auto rec = system.gateway().invoke(
      {.function = "fib", .language = "lua", .platform = "tdx",
       .secure = true, .deadline_ns = 10 * sim::kMs});
  EXPECT_FALSE(rec.ok());
  EXPECT_EQ(rec.retries, 0);
  EXPECT_DOUBLE_EQ(rec.backoff_ns, 0);
}

TEST(GatewayRetries, RetryBudgetCapsTotalSpend) {
  // A budget smaller than one network timeout allows no retries at all.
  GatewayConfig cfg = GatewayConfig::standard();
  cfg.retry.max_attempts = 5;
  cfg.retry.budget_ns = 100 * sim::kUs;
  ConfBench system(cfg);
  system.gateway().upload_all_builtin();
  system.network().set_faults(
      {.drop_rate = 1.0, .corrupt_rate = 0, .timeout_us = 500});
  const auto rec = system.gateway().invoke(
      {.function = "fib", .language = "lua", .platform = "tdx",
       .secure = true});
  EXPECT_FALSE(rec.ok());
  EXPECT_EQ(rec.retries, 0);
}

}  // namespace
}  // namespace confbench::core
// (appended) --- user-uploaded MiniWasm modules through the REST pipeline -----

namespace confbench::core {
namespace {

constexpr const char* kCollatzWat = R"((module
  (func $collatz (result i64) (local $n i64) (local $steps i64)
    i64.const 27 local.set $n
    block loop
      local.get $n i64.const 1 i64.le_s br_if 1
      local.get $n i64.const 2 i64.rem_s i64.eqz if
        local.get $n i64.const 2 i64.div_s local.set $n
      else
        local.get $n i64.const 3 i64.mul i64.const 1 i64.add local.set $n
      end
      local.get $steps i64.const 1 i64.add local.set $steps
      br 0
    end end
    local.get $steps)))";

struct MiniWasmUpload : ::testing::Test {
  MiniWasmUpload() : system(GatewayConfig::standard()) {}
  ConfBench system;
};

TEST_F(MiniWasmUpload, UploadValidatesModules) {
  auto& gw = system.gateway();
  EXPECT_TRUE(gw.upload_function("miniwasm", "collatz", kCollatzWat));
  EXPECT_TRUE(gw.has_function("miniwasm", "collatz"));
  // Unparseable, invalid, missing entry, wrong signature: all rejected.
  EXPECT_FALSE(gw.upload_function("miniwasm", "x", "(garbage"));
  EXPECT_FALSE(gw.upload_function("miniwasm", "x",
                                  "(module (func $x i64.add))"));
  EXPECT_FALSE(gw.upload_function("miniwasm", "missing", kCollatzWat));
  EXPECT_FALSE(gw.upload_function(
      "miniwasm", "f",
      "(module (func $f (param i64) (result i64) local.get 0))"));
}

TEST_F(MiniWasmUpload, InvokeRunsRealBytecodeInTheSecureVm) {
  auto& gw = system.gateway();
  ASSERT_TRUE(gw.upload_function("miniwasm", "collatz", kCollatzWat));
  const auto rec = gw.invoke({.function = "collatz",
                              .language = "miniwasm",
                              .platform = "tdx",
                              .secure = true});
  ASSERT_TRUE(rec.ok()) << rec.error;
  EXPECT_EQ(rec.output, "collatz:111");  // collatz(27) takes 111 steps
  EXPECT_GT(rec.function_ns, 0);
  EXPECT_GT(rec.bootstrap_ns, 0);          // engine instantiation excluded
  EXPECT_GT(rec.perf.instructions, 1000);  // dispatch work was charged
}

TEST_F(MiniWasmUpload, SecureCostsMoreOnCca) {
  auto& gw = system.gateway();
  ASSERT_TRUE(gw.upload_function("miniwasm", "collatz", kCollatzWat));
  double secure = 0, normal = 0;
  for (std::uint64_t t = 0; t < 3; ++t) {
    secure += gw.invoke({.function = "collatz",
                         .language = "miniwasm",
                         .platform = "cca",
                         .secure = true,
                         .trial = t})
                  .function_ns;
    normal += gw.invoke({.function = "collatz",
                         .language = "miniwasm",
                         .platform = "cca",
                         .secure = false,
                         .trial = t})
                  .function_ns;
  }
  EXPECT_GT(secure, normal * 1.2);
}

TEST_F(MiniWasmUpload, RestUploadAndInvoke) {
  net::HttpRequest req;
  req.method = "POST";
  req.path = "/upload";
  req.query = "lang=miniwasm&function=collatz";
  req.body = kCollatzWat;
  EXPECT_EQ(system.network().roundtrip("gateway", 8080, req).status, 201);
  req.path = "/invoke";
  req.query = "function=collatz&lang=miniwasm&platform=sev-snp&secure=1";
  req.body.clear();
  const auto resp = system.network().roundtrip("gateway", 8080, req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "collatz:111\n");
}

TEST_F(MiniWasmUpload, TrapsSurfaceAsServerErrors) {
  auto& gw = system.gateway();
  ASSERT_TRUE(gw.upload_function(
      "miniwasm", "boom",
      "(module (func $boom (result i64) i64.const 1 i64.const 0 "
      "i64.div_s))"));
  const auto rec = gw.invoke({.function = "boom",
                              .language = "miniwasm",
                              .platform = "tdx",
                              .secure = true});
  EXPECT_FALSE(rec.ok());
  EXPECT_EQ(rec.code, ErrorCode::kApplication);
  EXPECT_NE(rec.error.find("divide by zero"), std::string::npos);
}

}  // namespace
}  // namespace confbench::core
// (appended) --- typed error codes, deadlines, and the request-struct API ----

namespace confbench::core {
namespace {

TEST(GatewayErrors, EmptyPoolMapsToNoCapacity) {
  ConfBench system(GatewayConfig::standard());
  system.gateway().upload_all_builtin();
  TeePool* pool = system.gateway().pool("tdx");
  ASSERT_NE(pool, nullptr);
  for (std::uint32_t i = 0; i < pool->members().size(); ++i)
    pool->set_enabled(i, false);
  const auto rec = system.gateway().invoke(
      {.function = "fib", .language = "lua", .platform = "tdx",
       .secure = true});
  EXPECT_FALSE(rec.ok());
  EXPECT_EQ(rec.http_status, 503);
  EXPECT_EQ(rec.code, ErrorCode::kNoCapacity);
}

TEST(GatewayErrors, GarbagePerfHeaderIsSoftFailure) {
  // A hand-bound endpoint that answers 200 but with an unparseable X-Perf:
  // the function ran, so the invocation stays ok() with a typed code.
  net::Network net;
  GatewayConfig cfg;
  cfg.endpoints = {{"tdx", "fake-host", 9100, 9200}};
  net.bind("fake-host", 9200, [](const net::HttpRequest&) {
    net::HttpResponse resp = net::HttpResponse::make(200, "fib:1\n");
    resp.headers["X-Perf"] = "garbage";
    return resp;
  });
  Gateway gw(net, cfg);
  gw.upload_all_builtin();
  const auto rec = gw.invoke({.function = "fib",
                              .language = "lua",
                              .platform = "tdx",
                              .secure = true});
  EXPECT_TRUE(rec.ok());
  EXPECT_EQ(rec.code, ErrorCode::kUnparseablePerf);
  EXPECT_NE(rec.error.find("X-Perf"), std::string::npos);
}

TEST(GatewayErrors, DeadlineExceededDiscardsTheResult) {
  ConfBench system(GatewayConfig::standard());
  system.gateway().upload_all_builtin();
  const auto rec = system.gateway().invoke({.function = "fib",
                                            .language = "lua",
                                            .platform = "tdx",
                                            .secure = true,
                                            .deadline_ns = 1.0});
  EXPECT_FALSE(rec.ok());
  EXPECT_EQ(rec.http_status, 504);
  EXPECT_EQ(rec.code, ErrorCode::kDeadlineExceeded);
  EXPECT_TRUE(rec.output.empty());
  EXPECT_GT(rec.latency_ns, 1.0);  // the work was still done and billed
}

TEST(GatewayErrors, GenerousDeadlineChangesNothing) {
  ConfBench system(GatewayConfig::standard());
  system.gateway().upload_all_builtin();
  const auto rec = system.gateway().invoke({.function = "fib",
                                            .language = "lua",
                                            .platform = "tdx",
                                            .secure = true,
                                            .deadline_ns = 1e18});
  EXPECT_TRUE(rec.ok());
  EXPECT_EQ(rec.code, ErrorCode::kNone);
}

TEST(GatewayErrors, RestSurfaceCarriesTheErrorCode) {
  ConfBench system(GatewayConfig::standard());
  system.gateway().upload_all_builtin();
  net::HttpRequest req;
  req.method = "POST";
  req.path = "/invoke";
  req.query = "function=nope&lang=lua&platform=tdx&secure=1";
  const auto resp = system.network().roundtrip("gateway", 8080, req);
  EXPECT_EQ(resp.status, 404);
  ASSERT_EQ(resp.headers.count("X-Error-Code"), 1u);
  EXPECT_EQ(resp.headers.at("X-Error-Code"), "function_not_found");
}

TEST(GatewayDeterminism, IdenticalSystemsProduceIdenticalRecords) {
  // Two fresh systems see identical RNG/network streams, so the same
  // request must produce bit-identical records. (This replaced the old
  // positional-shim equivalence test when the deprecated overload was
  // removed.)
  ConfBench a(GatewayConfig::standard());
  ConfBench b(GatewayConfig::standard());
  a.gateway().upload_all_builtin();
  b.gateway().upload_all_builtin();
  const InvocationRequest req{.function = "primes",
                              .language = "go",
                              .platform = "sev-snp",
                              .secure = true,
                              .trial = 7};
  const auto rec_a = a.gateway().invoke(req);
  const auto rec_b = b.gateway().invoke(req);
  EXPECT_EQ(rec_a.http_status, rec_b.http_status);
  EXPECT_EQ(rec_a.code, rec_b.code);
  EXPECT_EQ(rec_a.output, rec_b.output);
  EXPECT_EQ(rec_a.served_by, rec_b.served_by);
  EXPECT_DOUBLE_EQ(rec_a.function_ns, rec_b.function_ns);
  EXPECT_DOUBLE_EQ(rec_a.bootstrap_ns, rec_b.bootstrap_ns);
  EXPECT_DOUBLE_EQ(rec_a.latency_ns, rec_b.latency_ns);
  EXPECT_DOUBLE_EQ(rec_a.perf.wall_ns, rec_b.perf.wall_ns);
  EXPECT_DOUBLE_EQ(rec_a.perf.instructions, rec_b.perf.instructions);
}

TEST(GatewayErrorCodeNames, AreStableStrings) {
  EXPECT_EQ(to_string(ErrorCode::kNone), "none");
  EXPECT_EQ(to_string(ErrorCode::kFunctionNotFound), "function_not_found");
  EXPECT_EQ(to_string(ErrorCode::kNoPool), "no_pool");
  EXPECT_EQ(to_string(ErrorCode::kNoCapacity), "no_capacity");
  EXPECT_EQ(to_string(ErrorCode::kTransport), "transport");
  EXPECT_EQ(to_string(ErrorCode::kUnparseablePerf), "unparseable_perf");
  EXPECT_EQ(to_string(ErrorCode::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_EQ(to_string(ErrorCode::kApplication), "application");
}

}  // namespace
}  // namespace confbench::core

#include <gtest/gtest.h>

#include "tee/registry.h"
#include "vm/guest_vm.h"
#include "vm/host.h"

namespace confbench::vm {
namespace {

tee::PlatformPtr plat(const char* name) {
  return tee::Registry::instance().create(name);
}

VmConfig config(const char* platform, bool secure) {
  VmConfig cfg;
  cfg.name = std::string(platform) + (secure ? "-s" : "-n");
  cfg.platform = plat(platform);
  cfg.secure = secure;
  return cfg;
}

TEST(GuestVm, RejectsBadConfig) {
  VmConfig cfg = config("tdx", false);
  cfg.platform = nullptr;
  EXPECT_THROW(GuestVm{cfg}, std::invalid_argument);
  cfg = config("tdx", false);
  cfg.vcpus = 0;
  EXPECT_THROW(GuestVm{cfg}, std::invalid_argument);
}

TEST(GuestVm, LifecycleStates) {
  GuestVm vm(config("tdx", false));
  EXPECT_EQ(vm.state(), VmState::kCreated);
  vm.boot();
  EXPECT_EQ(vm.state(), VmState::kRunning);
  vm.stop();
  EXPECT_EQ(vm.state(), VmState::kStopped);
  EXPECT_EQ(to_string(VmState::kRunning), "running");
}

TEST(GuestVm, BootIsIdempotent) {
  GuestVm vm(config("tdx", false));
  const sim::Ns t1 = vm.boot();
  const sim::Ns t2 = vm.boot();
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(GuestVm, SecureBootSlowerThanNormal) {
  GuestVm normal(config("tdx", false));
  GuestVm secure(config("tdx", true));
  EXPECT_GT(secure.boot(), normal.boot());
}

TEST(GuestVm, RunRequiresRunningState) {
  GuestVm vm(config("tdx", false));
  EXPECT_THROW(vm.run([](ExecutionContext&) { return "x"; }),
               std::logic_error);
  vm.boot();
  EXPECT_EQ(vm.run([](ExecutionContext&) { return "x"; }).output, "x");
  vm.stop();
  EXPECT_THROW(vm.run([](ExecutionContext&) { return "x"; }),
               std::logic_error);
}

TEST(GuestVm, RunCountsInvocations) {
  GuestVm vm(config("sev-snp", true));
  vm.boot();
  for (int i = 0; i < 3; ++i)
    vm.run([](ExecutionContext& ctx) {
      ctx.compute(1000);
      return "ok";
    });
  EXPECT_EQ(vm.invocations(), 3u);
}

TEST(GuestVm, TrialsAreIndependentButDeterministic) {
  GuestVm vm(config("tdx", true));
  vm.boot();
  auto body = [](ExecutionContext& ctx) {
    ctx.compute(1e6);
    return "ok";
  };
  const double t0 = vm.run(body, 0).raw.wall_ns;
  const double t1 = vm.run(body, 1).raw.wall_ns;
  const double t0_again = vm.run(body, 0).raw.wall_ns;
  EXPECT_NE(t0, t1);            // different trial jitter
  EXPECT_DOUBLE_EQ(t0, t0_again);  // same trial reproduces exactly
}

TEST(GuestVm, PmuCountersVisibleOnBareMetalTees) {
  GuestVm vm(config("tdx", true));
  vm.boot();
  const auto out = vm.run([](ExecutionContext& ctx) {
    ctx.compute(1e5, 1e4);
    return "ok";
  });
  EXPECT_TRUE(out.perf_from_pmu);
  EXPECT_GT(out.perf.instructions, 0);
  EXPECT_GT(out.perf.cycles, 0);
}

TEST(GuestVm, CcaRealmUsesCustomCollector) {
  GuestVm vm(config("cca", true));
  vm.boot();
  const auto out = vm.run([](ExecutionContext& ctx) {
    ctx.compute(1e5, 1e4);
    const std::uint64_t r = ctx.alloc_region(1 << 16);
    ctx.mem_read(r, 1 << 16, 64);
    ctx.syscall();
    return "ok";
  });
  // §III-B: no perf inside realms — PMU-derived counters are absent...
  EXPECT_FALSE(out.perf_from_pmu);
  EXPECT_DOUBLE_EQ(out.perf.instructions, 0);
  EXPECT_DOUBLE_EQ(out.perf.cache_misses, 0);
  // ...but the custom scripts still observe wall time and syscalls.
  EXPECT_GT(out.perf.wall_ns, 0);
  EXPECT_GT(out.perf.syscalls, 0);
  // Simulation truth remains available for debugging.
  EXPECT_GT(out.raw.instructions, 0);
}

TEST(GuestVm, CcaNormalVmStillHasPmu) {
  GuestVm vm(config("cca", false));
  vm.boot();
  const auto out = vm.run([](ExecutionContext& ctx) {
    ctx.compute(100);
    return "ok";
  });
  EXPECT_TRUE(out.perf_from_pmu);
}

TEST(Host, RoutesByPort) {
  Host host("h1", plat("tdx"));
  host.add_standard_pair();
  ASSERT_NE(host.route(Host::kNormalPort), nullptr);
  ASSERT_NE(host.route(Host::kSecurePort), nullptr);
  EXPECT_FALSE(host.route(Host::kNormalPort)->config().secure);
  EXPECT_TRUE(host.route(Host::kSecurePort)->config().secure);
  EXPECT_EQ(host.route(9999), nullptr);
}

TEST(Host, VmsBootOnAdd) {
  Host host("h2", plat("sev-snp"));
  GuestVm& vm = host.add_vm("extra", true, 9000);
  EXPECT_EQ(vm.state(), VmState::kRunning);
  EXPECT_EQ(host.vm_count(), 1u);
}

TEST(Host, DuplicatePortRejected) {
  Host host("h3", plat("tdx"));
  host.add_vm("a", false, 8100);
  EXPECT_THROW(host.add_vm("b", true, 8100), std::invalid_argument);
}

TEST(Host, PortListSorted) {
  Host host("h4", plat("cca"));
  host.add_vm("a", false, 9100);
  host.add_vm("b", true, 8100);
  const auto ports = host.ports();
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_EQ(ports[0], 8100);
  EXPECT_EQ(ports[1], 9100);
}

TEST(Host, VmNamesIncludeHost) {
  Host host("rack7", plat("tdx"));
  host.add_standard_pair();
  EXPECT_EQ(host.route(Host::kSecurePort)->config().name, "rack7/secure");
}

TEST(Host, NullPlatformRejected) {
  EXPECT_THROW(Host("h", nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace confbench::vm
// (appended) --- confidential containers (SV/SVI execution units) ------------

namespace confbench::vm {
namespace {

VmConfig container_config(const char* platform, bool secure) {
  VmConfig cfg;
  cfg.name = "pod";
  cfg.platform = tee::Registry::instance().create(platform);
  cfg.secure = secure;
  cfg.unit = UnitKind::kContainer;
  return cfg;
}

TEST(Container, BootsMuchFasterThanAVm) {
  VmConfig vm_cfg = container_config("tdx", true);
  vm_cfg.unit = UnitKind::kVm;
  GuestVm vm(vm_cfg);
  GuestVm pod(container_config("tdx", true));
  EXPECT_LT(pod.boot(), vm.boot() * 0.5);
  EXPECT_EQ(to_string(UnitKind::kContainer), "container");
}

TEST(Container, SecureBootStillPaysPageAcceptance) {
  GuestVm secure(container_config("sev-snp", true));
  GuestVm normal(container_config("sev-snp", false));
  EXPECT_GT(secure.boot(), normal.boot());
}

TEST(Container, RunsWorkloadsLikeAVm) {
  GuestVm pod(container_config("tdx", true));
  pod.boot();
  const auto out = pod.run([](ExecutionContext& ctx) {
    ctx.compute(1000);
    return "pod-ok";
  });
  EXPECT_EQ(out.output, "pod-ok");
  EXPECT_TRUE(out.perf_from_pmu);
}

}  // namespace
}  // namespace confbench::vm

// Cross-stack consistency: the same function must compute the same answer
// everywhere — across TEEs, VM kinds and language runtimes — with only the
// timing differing. This is the correctness backbone of the paper's
// methodology: ratios are meaningless unless both sides did the same work.
#include <gtest/gtest.h>

#include <map>

#include "core/confbench.h"
#include "rt/profile.h"
#include "wl/faas.h"

namespace confbench {
namespace {

core::ConfBench& system_instance() {
  static auto instance = [] {
    auto s = std::make_unique<core::ConfBench>(
        core::GatewayConfig::standard());
    return s;
  }();
  return *instance;
}

TEST(CrossStack, OutputsIdenticalAcrossPlatformsAndVmKinds) {
  auto& gw = system_instance().gateway();
  for (const char* fn : {"factors", "fib", "primes", "json", "sha256"}) {
    std::string reference;
    for (const char* platform : {"tdx", "sev-snp", "cca", "none"}) {
      for (const bool secure : {false, true}) {
        const auto rec = gw.invoke({.function = fn,
                                    .language = "lua",
                                    .platform = platform,
                                    .secure = secure});
        ASSERT_TRUE(rec.ok()) << fn << " on " << platform << ": "
                              << rec.error;
        if (reference.empty()) {
          reference = rec.output;
        } else {
          EXPECT_EQ(rec.output, reference)
              << fn << " diverged on " << platform
              << (secure ? " secure" : " normal");
        }
      }
    }
  }
}

TEST(CrossStack, OutputsIdenticalAcrossLanguages) {
  // The launcher normalises outputs across languages (§IV-B): the paper's
  // cross-language ports "maintain the original logic".
  auto& gw = system_instance().gateway();
  for (const char* fn : {"fib", "primes", "quicksort", "huffman"}) {
    std::string reference;
    for (const auto& profile : rt::builtin_profiles()) {
      const auto rec = gw.invoke({.function = fn,
                                  .language = profile.name,
                                  .platform = "tdx",
                                  .secure = true});
      ASSERT_TRUE(rec.ok()) << fn << "/" << profile.name;
      if (reference.empty()) {
        reference = rec.output;
      } else {
        EXPECT_EQ(rec.output, reference) << fn << "/" << profile.name;
      }
    }
  }
}

TEST(CrossStack, TimingsDifferEvenWhenOutputsMatch) {
  auto& gw = system_instance().gateway();
  std::map<std::string, double> times;
  for (const char* platform : {"tdx", "cca"}) {
    const auto rec = gw.invoke({.function = "fib",
                                .language = "lua",
                                .platform = platform,
                                .secure = true});
    ASSERT_TRUE(rec.ok());
    times[platform] = rec.function_ns;
  }
  EXPECT_GT(times["cca"], 2.0 * times["tdx"]);  // FVP slowdown
}

TEST(CrossStack, PerfCountersSurviveTheWireExactly) {
  // The kv piggyback format must not lose precision through HTTP.
  auto& gw = system_instance().gateway();
  const auto a = gw.invoke({.function = "primes",
                            .language = "go",
                            .platform = "sev-snp",
                            .secure = true,
                            .trial = 4});
  const auto b = gw.invoke({.function = "primes",
                            .language = "go",
                            .platform = "sev-snp",
                            .secure = true,
                            .trial = 4});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.perf.instructions, b.perf.instructions);
  EXPECT_DOUBLE_EQ(a.perf.wall_ns, b.perf.wall_ns);
  EXPECT_DOUBLE_EQ(a.function_ns, b.function_ns);
}

TEST(CrossStack, EveryLanguageReportsItsPaperVersion) {
  auto& system = system_instance();
  for (const auto& profile : rt::builtin_profiles()) {
    net::HttpRequest req;
    req.method = "POST";
    req.path = "/run";
    req.query = "function=fib&lang=" + profile.name;
    const auto resp = system.network().roundtrip("host-tdx", 8200, req);
    ASSERT_EQ(resp.status, 200) << profile.name;
    EXPECT_EQ(resp.headers.at("X-Runtime-Version"),
              profile.version_for(tee::TeeKind::kTdx))
        << profile.name;
  }
}

}  // namespace
}  // namespace confbench

#include "vm/exec_context.h"

#include <gtest/gtest.h>
#include <cmath>

#include "tee/registry.h"

namespace confbench::vm {
namespace {

tee::PlatformPtr plat(const char* name) {
  auto p = tee::Registry::instance().create(name);
  EXPECT_NE(p, nullptr);
  return p;
}

TEST(ExecContext, RejectsNullPlatform) {
  EXPECT_THROW(ExecutionContext(nullptr, false, 1), std::invalid_argument);
}

TEST(ExecContext, ComputeAdvancesClockAndCounters) {
  ExecutionContext ctx(plat("tdx"), false, 1);
  EXPECT_DOUBLE_EQ(ctx.now(), 0.0);
  ctx.compute(1000, 100);
  EXPECT_GT(ctx.now(), 0.0);
  EXPECT_DOUBLE_EQ(ctx.counters().instructions, 1100);
  EXPECT_DOUBLE_EQ(ctx.counters().branches, 100);
  EXPECT_GT(ctx.counters().branch_misses, 0);
}

TEST(ExecContext, FpOpsSlowerThanIntOps) {
  ExecutionContext a(plat("tdx"), false, 1);
  ExecutionContext b(plat("tdx"), false, 1);
  a.compute(1e6);
  b.compute_fp(1e6);
  EXPECT_GT(b.now(), a.now());
}

TEST(ExecContext, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    ExecutionContext ctx(plat("sev-snp"), true, seed);
    ctx.compute(12345, 678);
    const std::uint64_t r = ctx.alloc_region(1 << 16);
    ctx.mem_read(r, 1 << 16, 64);
    ctx.syscall();
    ctx.block_write(8192);
    return ctx.finish().wall_ns;
  };
  EXPECT_DOUBLE_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // trial jitter differs
}

TEST(ExecContext, MemTrafficFillsCounters) {
  ExecutionContext ctx(plat("tdx"), false, 1);
  const std::uint64_t r = ctx.alloc_region(1 << 20);
  ctx.mem_read(r, 1 << 20, 64);
  EXPECT_GT(ctx.counters().cache_references, 0);
  EXPECT_GT(ctx.counters().cache_misses, 0);
  EXPECT_GE(ctx.counters().cache_references, ctx.counters().cache_misses);
}

TEST(ExecContext, SecureMemoryTrafficCostsMore) {
  ExecutionContext nrm(plat("tdx"), false, 1);
  ExecutionContext sec(plat("tdx"), true, 1);
  for (auto* ctx : {&nrm, &sec}) {
    const std::uint64_t r = ctx->alloc_region(8 << 20);
    ctx->mem_read(r, 8 << 20, 64);
  }
  EXPECT_GT(sec.now(), nrm.now());
  EXPECT_GT(sec.counters().mem_protection_ns, 0);
  EXPECT_DOUBLE_EQ(nrm.counters().mem_protection_ns, 0);
}

TEST(ExecContext, SyscallChargesExpectedExitFraction) {
  ExecutionContext ctx(plat("tdx"), true, 1);
  for (int i = 0; i < 100; ++i) ctx.syscall();
  EXPECT_DOUBLE_EQ(ctx.counters().syscalls, 100);
  const double rate = ctx.costs().exit.exit_rate_per_syscall;
  EXPECT_NEAR(ctx.counters().vm_exits, 100 * rate, 1e-9);
  EXPECT_NEAR(ctx.counters().exit_count(tee::ExitReason::kSyscallAssist),
              100 * rate, 1e-9);
}

TEST(ExecContext, SecureSyscallSlower) {
  ExecutionContext nrm(plat("tdx"), false, 1);
  ExecutionContext sec(plat("tdx"), true, 1);
  for (int i = 0; i < 1000; ++i) {
    nrm.syscall();
    sec.syscall();
  }
  EXPECT_GT(sec.now(), nrm.now());
}

TEST(ExecContext, SleepChargesDurationPlusTimerExit) {
  ExecutionContext ctx(plat("sev-snp"), true, 1);
  ctx.sleep(1000.0);
  EXPECT_GE(ctx.now(), 1000.0);
  EXPECT_GT(ctx.counters().exit_count(tee::ExitReason::kTimer), 0);
}

TEST(ExecContext, PageFaultsSecureExtra) {
  ExecutionContext nrm(plat("tdx"), false, 1);
  ExecutionContext sec(plat("tdx"), true, 1);
  nrm.page_fault(100);
  sec.page_fault(100);
  EXPECT_DOUBLE_EQ(nrm.counters().page_faults, 100);
  EXPECT_DOUBLE_EQ(sec.counters().page_faults, 100);
  EXPECT_GT(sec.now(), nrm.now());
  EXPECT_GT(sec.counters().exit_count(tee::ExitReason::kPageAccept), 0);
  EXPECT_DOUBLE_EQ(nrm.counters().exit_count(tee::ExitReason::kPageAccept),
                   0);
}

TEST(ExecContext, ZeroAndNegativeFaultsAreNoOps) {
  ExecutionContext ctx(plat("tdx"), true, 1);
  ctx.page_fault(0);
  ctx.page_fault(-5);
  EXPECT_DOUBLE_EQ(ctx.counters().page_faults, 0);
  EXPECT_DOUBLE_EQ(ctx.now(), 0.0);
}

TEST(ExecContext, BlockIoBounceOnlyOnSecureTdx) {
  ExecutionContext nrm(plat("tdx"), false, 1);
  ExecutionContext sec(plat("tdx"), true, 1);
  nrm.block_read(1 << 20);
  sec.block_read(1 << 20);
  const double nrm_t = nrm.now();
  const double sec_t = sec.now();
  // The bounce copies should dominate the difference.
  const auto& io = sec.costs().io;
  const double expected_extra =
      io.bounce_fixed_ns + (1 << 20) * io.bounce_byte_ns;
  EXPECT_NEAR(sec_t - nrm_t, expected_extra,
              expected_extra * 0.2 + 5000.0);
  EXPECT_DOUBLE_EQ(sec.counters().io_bytes, 1 << 20);
}

TEST(ExecContext, BlockFlushChargesBarrier) {
  ExecutionContext ctx(plat("tdx"), false, 1);
  ctx.block_flush();
  EXPECT_GE(ctx.now(), ctx.costs().io.flush_ns);
}

TEST(ExecContext, NetTransferCountsBytes) {
  ExecutionContext ctx(plat("sev-snp"), false, 1);
  ctx.net_transfer(5000);
  EXPECT_DOUBLE_EQ(ctx.counters().net_bytes, 5000);
  EXPECT_GE(ctx.now(), ctx.costs().io.net_rtt_ns);
}

TEST(ExecContext, PipeAndContextSwitchAccounting) {
  ExecutionContext ctx(plat("tdx"), true, 1);
  ctx.pipe_transfer(512);
  ctx.context_switch();
  EXPECT_DOUBLE_EQ(ctx.counters().syscalls, 2);
  EXPECT_DOUBLE_EQ(ctx.counters().context_switches, 1);
}

TEST(ExecContext, SpawnProcessChargesFaultsAndSyscalls) {
  ExecutionContext ctx(plat("tdx"), false, 1);
  ctx.spawn_process();
  EXPECT_GE(ctx.counters().syscalls, 3);
  EXPECT_GT(ctx.counters().page_faults, 0);
  EXPECT_GE(ctx.now(), ctx.costs().exit.spawn_ns);
}

TEST(ExecContext, AllocRegionsDoNotOverlap) {
  ExecutionContext ctx(plat("tdx"), false, 1);
  const std::uint64_t a = ctx.alloc_region(4096);
  const std::uint64_t b = ctx.alloc_region(4096);
  EXPECT_GE(b, a + 4096);
  EXPECT_DOUBLE_EQ(ctx.now(), 0.0);  // address space is free
}

TEST(ExecContext, AllocRegionRespectsAlignment) {
  ExecutionContext ctx(plat("tdx"), false, 1);
  EXPECT_EQ(ctx.alloc_region(100, 4096) % 4096, 0u);
  EXPECT_EQ(ctx.alloc_region(100, 64) % 64, 0u);
}

TEST(ExecContext, SecureAndNormalLayoutsDiffer) {
  ExecutionContext nrm(plat("tdx"), false, 1);
  ExecutionContext sec(plat("tdx"), true, 1);
  EXPECT_NE(nrm.alloc_region(4096), sec.alloc_region(4096));
}

TEST(ExecContext, FinishFillsDerivedCounters) {
  ExecutionContext ctx(plat("tdx"), false, 42);
  ctx.compute(1e6);
  const auto c = ctx.finish();
  EXPECT_GT(c.wall_ns, 0);
  EXPECT_NEAR(c.cycles, c.wall_ns * ctx.costs().cpu.freq_ghz, 1e-6);
}

TEST(ExecContext, TrialJitterBounded) {
  // 6-sigma event would flag a modelling bug.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    ExecutionContext ctx(plat("tdx"), true, seed);
    ctx.compute(1e6);
    const double base = ctx.now();
    const auto c = ctx.finish();
    const double sigma = ctx.costs().trial_jitter_sigma;
    EXPECT_GT(c.wall_ns, base * std::exp(-6 * sigma));
    EXPECT_LT(c.wall_ns, base * std::exp(6 * sigma));
  }
}

TEST(ExecContext, CcaSimulationSlowdownApplies) {
  ExecutionContext cca(plat("cca"), false, 1);
  ExecutionContext tdx(plat("tdx"), false, 1);
  cca.compute(1e6);
  tdx.compute(1e6);
  EXPECT_GT(cca.now(), 3.0 * tdx.now());
}

}  // namespace
}  // namespace confbench::vm

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "fault/breaker.h"
#include "fault/fault.h"
#include "fault/recovery.h"
#include "fault/retry.h"
#include "sched/cluster.h"
#include "sim/time.h"

namespace confbench::fault {
namespace {

using sim::kMs;
using sim::kSec;

// --- FaultPlan --------------------------------------------------------------

TEST(FaultPlan, KeepsEventsTimeOrdered) {
  FaultPlan p;
  p.crash(3 * kSec, 1).crash(1 * kSec, 0).hang(2 * kSec, 100 * kMs, 2);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p.events()[0].at_ns, 1 * kSec);
  EXPECT_DOUBLE_EQ(p.events()[1].at_ns, 2 * kSec);
  EXPECT_DOUBLE_EQ(p.events()[2].at_ns, 3 * kSec);
}

TEST(FaultPlan, EqualTimesKeepInsertionOrder) {
  FaultPlan p;
  p.crash(1 * kSec, 7).hang(1 * kSec, 10 * kMs, 8);
  EXPECT_EQ(p.events()[0].replica, 7u);
  EXPECT_EQ(p.events()[1].replica, 8u);
}

TEST(FaultPlan, RejectsMalformedEvents) {
  FaultPlan p;
  EXPECT_THROW(p.crash(-1, 0), std::invalid_argument);
  EXPECT_THROW(p.hang(0, 0, 0), std::invalid_argument);  // windowed: dur > 0
  EXPECT_THROW(p.brownout(0, 10 * kMs, 0, 0.5), std::invalid_argument);
  EXPECT_THROW(p.partition(5, -1, 0), std::invalid_argument);
  // A crash has no window; zero duration is fine.
  EXPECT_NO_THROW(p.crash(0, 0));
}

TEST(FaultPlan, PeriodicCrashesCycleTheFleet) {
  FaultPlan p;
  p.periodic_crashes(1 * kSec, 500 * kMs, 5, 3);
  ASSERT_EQ(p.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(p.events()[i].kind, FaultKind::kVmCrash);
    EXPECT_DOUBLE_EQ(p.events()[i].at_ns,
                     1 * kSec + static_cast<double>(i) * 500 * kMs);
    EXPECT_EQ(p.events()[i].replica, static_cast<std::uint32_t>(i % 3));
  }
  EXPECT_THROW(p.periodic_crashes(0, 0, 1, 3), std::invalid_argument);
  EXPECT_THROW(p.periodic_crashes(0, 1, 1, 0), std::invalid_argument);
}

TEST(FaultPlan, AttestOutageWindows) {
  FaultPlan p;
  p.crash(1 * kSec, 0)
      .attest_outage(2 * kSec, 300 * kMs)
      .attest_outage(5 * kSec, 100 * kMs);
  const auto w = p.attest_outages();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0].first, 2 * kSec);
  EXPECT_DOUBLE_EQ(w[0].second, 2 * kSec + 300 * kMs);
  EXPECT_DOUBLE_EQ(w[1].first, 5 * kSec);
}

// --- RetryPolicy ------------------------------------------------------------

TEST(RetryPolicy, BackoffGrowsExponentiallyWithinJitterBounds) {
  RetryConfig cfg;
  cfg.base_backoff_ns = 10 * kMs;
  cfg.multiplier = 2.0;
  cfg.max_backoff_ns = 1 * kSec;
  cfg.jitter = 0.25;
  const RetryPolicy p(cfg, 42);
  for (int retry = 1; retry <= 5; ++retry) {
    const sim::Ns nominal = 10 * kMs * std::pow(2.0, retry - 1);
    const sim::Ns b = p.backoff_ns(retry);
    EXPECT_GE(b, 0.75 * nominal) << "retry " << retry;
    EXPECT_LE(b, 1.25 * nominal) << "retry " << retry;
  }
}

TEST(RetryPolicy, BackoffIsCappedAndDeterministic) {
  RetryConfig cfg;
  cfg.base_backoff_ns = 100 * kMs;
  cfg.max_backoff_ns = 150 * kMs;
  cfg.jitter = 0;
  const RetryPolicy p(cfg, 1);
  EXPECT_DOUBLE_EQ(p.backoff_ns(1), 100 * kMs);
  EXPECT_DOUBLE_EQ(p.backoff_ns(2), 150 * kMs);  // capped
  EXPECT_DOUBLE_EQ(p.backoff_ns(9), 150 * kMs);

  cfg.jitter = 0.5;
  const RetryPolicy a(cfg, 77), b(cfg, 77), c(cfg, 78);
  for (int r = 1; r < 6; ++r) {
    EXPECT_DOUBLE_EQ(a.backoff_ns(r), b.backoff_ns(r));  // same seed
  }
  // Different seeds decorrelate (at least one backoff differs).
  bool differs = false;
  for (int r = 1; r < 6; ++r)
    if (a.backoff_ns(r) != c.backoff_ns(r)) differs = true;
  EXPECT_TRUE(differs);
}

TEST(RetryPolicy, StopsAtMaxAttempts) {
  RetryConfig cfg;
  cfg.max_attempts = 3;  // 1 initial + 2 retries
  const RetryPolicy p(cfg, 0);
  EXPECT_TRUE(p.should_retry(1, 0, 0));
  EXPECT_TRUE(p.should_retry(2, 0, 0));
  EXPECT_FALSE(p.should_retry(3, 0, 0));
}

TEST(RetryPolicy, BudgetCapsTotalSpend) {
  RetryConfig cfg;
  cfg.max_attempts = 10;
  cfg.budget_ns = 50 * kMs;
  const RetryPolicy p(cfg, 0);
  EXPECT_TRUE(p.should_retry(1, 49 * kMs, 0));
  EXPECT_FALSE(p.should_retry(1, 50 * kMs, 0));
}

TEST(RetryPolicy, RefusesRetriesThatCannotBeatTheDeadline) {
  RetryConfig cfg;
  cfg.max_attempts = 10;
  cfg.base_backoff_ns = 40 * kMs;
  cfg.jitter = 0;
  const RetryPolicy p(cfg, 0);
  // 30ms spent, 40ms backoff ahead, 100ms deadline: 70 < 100, proceed.
  EXPECT_TRUE(p.should_retry(1, 30 * kMs, 100 * kMs));
  // 70ms spent: waiting the backoff lands at 110ms >= deadline — refuse.
  EXPECT_FALSE(p.should_retry(1, 70 * kMs, 100 * kMs));
}

// --- CircuitBreaker ---------------------------------------------------------

TEST(CircuitBreaker, OpensAfterConsecutiveFailures) {
  CircuitBreaker br({.failure_threshold = 3, .open_cooldown_ns = 100 * kMs});
  EXPECT_TRUE(br.allow(0));
  br.record_failure(0);
  br.record_failure(1);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
  // A success resets the streak.
  br.record_success(2);
  br.record_failure(3);
  br.record_failure(4);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
  br.record_failure(5);
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_EQ(br.times_opened(), 1u);
  EXPECT_FALSE(br.allow(6));  // cooldown not elapsed
}

TEST(CircuitBreaker, HalfOpenAdmitsOneProbeThenCloses) {
  CircuitBreaker br({.failure_threshold = 1,
                     .success_threshold = 1,
                     .open_cooldown_ns = 100 * kMs});
  br.record_failure(0);
  ASSERT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_TRUE(br.allow(100 * kMs));  // cooldown elapsed -> half-open probe
  EXPECT_EQ(br.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(br.allow(101 * kMs));  // one probe at a time
  br.record_success(102 * kMs);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, HalfOpenFailureReopensAndRestartsCooldown) {
  CircuitBreaker br({.failure_threshold = 1, .open_cooldown_ns = 100 * kMs});
  br.record_failure(0);
  ASSERT_TRUE(br.allow(100 * kMs));
  br.record_failure(110 * kMs);
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_EQ(br.times_opened(), 2u);
  EXPECT_FALSE(br.allow(150 * kMs));  // new cooldown from 110ms
  EXPECT_TRUE(br.allow(210 * kMs));
}

TEST(CircuitBreaker, HalfOpenRaceStaleTimeoutReopensExactlyOnce) {
  // Out-of-order outcomes: a dispatch that timed out *before* the trip is
  // reported while the breaker is already half-open with the probe still in
  // flight. The stale failure re-opens once; the probe's own failure then
  // lands in kOpen and is absorbed — times_opened() must not double-count.
  CircuitBreaker br({.failure_threshold = 1, .open_cooldown_ns = 100 * kMs});
  br.record_failure(0);
  ASSERT_EQ(br.times_opened(), 1u);
  ASSERT_TRUE(br.allow(100 * kMs));  // half-open, probe in flight
  br.record_failure(105 * kMs);      // stale pre-trip timeout arrives
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_EQ(br.times_opened(), 2u);
  br.record_failure(110 * kMs);  // the probe's own failure: absorbed
  EXPECT_EQ(br.times_opened(), 2u);
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  // The probe slot did not leak: after the new cooldown (from 105ms)
  // exactly one probe is admitted, and a second ask is refused.
  EXPECT_FALSE(br.allow(204 * kMs));
  EXPECT_TRUE(br.allow(205 * kMs));
  EXPECT_FALSE(br.allow(206 * kMs));
  br.record_success(210 * kMs);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, LateSuccessWhileOpenIsNotProbeEvidence) {
  // A reply from before the trip that arrives while open must not close
  // the breaker or free a probe slot that was never granted.
  CircuitBreaker br({.failure_threshold = 1, .open_cooldown_ns = 100 * kMs});
  br.record_failure(0);
  br.record_success(50 * kMs);  // late reply from before the trip
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_FALSE(br.allow(60 * kMs));  // still cooling down
  EXPECT_TRUE(br.allow(100 * kMs));  // normal half-open probe grant
  EXPECT_FALSE(br.allow(101 * kMs));
}

// --- measure_recovery -------------------------------------------------------

TEST(Recovery, SecureRecoveryIsSlowerOnEveryPlatform) {
  for (const char* plat : {"tdx", "sev-snp", "cca"}) {
    const RecoveryCosts normal = measure_recovery(plat, false);
    const RecoveryCosts secure = measure_recovery(plat, true);
    EXPECT_GT(normal.boot_ns, 0) << plat;
    EXPECT_DOUBLE_EQ(normal.attest_ns, 0) << plat;  // nothing to re-attest
    EXPECT_GT(secure.boot_ns, normal.boot_ns) << plat;  // memory acceptance
    EXPECT_GT(secure.total_ns(), normal.total_ns()) << plat;
  }
  // TDX and SNP re-attest; CCA under FVP has no attestation service but
  // still pays the slower confidential boot.
  EXPECT_GT(measure_recovery("tdx", true).attest_ns, 0);
  EXPECT_GT(measure_recovery("sev-snp", true).attest_ns, 0);
  EXPECT_DOUBLE_EQ(measure_recovery("cca", true).attest_ns, 0);
}

TEST(Recovery, UnknownPlatformThrows) {
  EXPECT_THROW(measure_recovery("sgx-enclave-9000", true),
               std::invalid_argument);
}

// --- Cluster chaos ----------------------------------------------------------

sched::ClusterConfig chaos_config() {
  sched::ClusterConfig cfg;
  cfg.requests = 20000;
  cfg.rate_rps = 6000;
  cfg.seed = 99;
  cfg.queue = {.concurrency = 8, .queue_depth = 16};
  // Pre-warmed fixed fleet: isolate failure handling from autoscaling.
  cfg.scaler = {.min_warm = 4, .max_replicas = 4, .tick_ns = 20 * kMs};
  return cfg;
}

sched::ServiceModel fast_model() {
  sched::ServiceModel m;
  m.parallel_ns = 1 * kMs;
  m.serialized_ns = 0;
  m.jitter_sigma = 0.02;
  m.cold_start_ns = 0.5 * kSec;
  return m;
}

TEST(ClusterChaos, CrashLosesNoRequests) {
  sched::ClusterConfig cfg = chaos_config();
  cfg.faults.crash(1 * kSec + 1 * kMs, 0);
  cfg.recovery = {.boot_ns = 1 * kSec, .attest_ns = 200 * kMs};
  const sched::ClusterResult r =
      sched::ClusterExperiment(cfg).run_with_model(fast_model());

  EXPECT_EQ(r.offered, cfg.requests);
  EXPECT_EQ(r.crashes, 1u);
  EXPECT_GT(r.failovers, 0u);
  // The zero-lost-requests invariant: every offered request ends in exactly
  // one of completed / rejected / failed (typed), nothing vanishes.
  EXPECT_TRUE(r.accounted())
      << "completed=" << r.completed << " rejected=" << r.rejected
      << " failed=" << r.failed << " offered=" << r.offered;
  for (const auto& [code, n] : r.failure_codes) {
    EXPECT_FALSE(code.empty());
    EXPECT_GT(n, 0u);
  }
  // The fleet recovers and the vast majority of traffic still completes.
  ASSERT_EQ(r.recoveries.size(), 1u);
  EXPECT_GT(r.recoveries[0].ttr_ns(), cfg.recovery.total_ns());
  EXPECT_GT(r.availability(), 0.95);
  EXPECT_GT(r.latency_fault.count(), 0u);
}

TEST(ClusterChaos, ChaosRunsAreDeterministic) {
  sched::ClusterConfig cfg = chaos_config();
  cfg.faults.periodic_crashes(800 * kMs, 700 * kMs, 3, 4);
  cfg.faults.hang(1 * kSec, 150 * kMs, 2);
  cfg.recovery = {.boot_ns = 900 * kMs, .attest_ns = 100 * kMs};
  const sched::ClusterExperiment ex(cfg);
  const sched::ClusterResult a = ex.run_with_model(fast_model());
  const sched::ClusterResult b = ex.run_with_model(fast_model());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_DOUBLE_EQ(a.latency.sum(), b.latency.sum());
  EXPECT_DOUBLE_EQ(a.latency_fault.sum(), b.latency_fault.sum());
  ASSERT_EQ(a.recoveries.size(), b.recoveries.size());
  for (std::size_t i = 0; i < a.recoveries.size(); ++i)
    EXPECT_DOUBLE_EQ(a.recoveries[i].recovered_ns,
                     b.recoveries[i].recovered_ns);
  EXPECT_DOUBLE_EQ(a.makespan_ns, b.makespan_ns);
}

TEST(ClusterChaos, EmptyPlanDisablesAllFaultMachinery) {
  // Two configs that differ only in fault-handling *parameters* but share
  // an empty plan must produce identical runs: with no faults scheduled,
  // none of the machinery (probes, breakers, retry policies) may touch the
  // event stream.
  sched::ClusterConfig plain = chaos_config();
  sched::ClusterConfig tuned = chaos_config();
  tuned.retry.max_attempts = 9;
  tuned.breaker.failure_threshold = 1;
  tuned.probe_interval_ns = 1 * kMs;
  tuned.detect_timeout_ns = 1 * kMs;
  tuned.recovery = {.boot_ns = 5 * kSec, .attest_ns = 5 * kSec};
  const sched::ClusterResult a =
      sched::ClusterExperiment(plain).run_with_model(fast_model());
  const sched::ClusterResult b =
      sched::ClusterExperiment(tuned).run_with_model(fast_model());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_DOUBLE_EQ(a.latency.sum(), b.latency.sum());
  EXPECT_DOUBLE_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_EQ(a.failed, 0u);
  EXPECT_EQ(b.crashes, 0u);
  EXPECT_EQ(b.latency_fault.count(), 0u);
  EXPECT_TRUE(b.recoveries.empty());
}

TEST(ClusterChaos, SecureFleetsRecoverSlowerWithTheSamePlan) {
  for (const char* plat : {"tdx", "sev-snp", "cca"}) {
    sched::ClusterConfig cfg = chaos_config();
    cfg.platform = plat;
    cfg.faults.crash(1 * kSec + 1 * kMs, 0);

    cfg.secure = false;
    cfg.recovery = measure_recovery(plat, false);
    const sched::ClusterResult normal =
        sched::ClusterExperiment(cfg).run_with_model(fast_model());

    cfg.secure = true;
    cfg.recovery = measure_recovery(plat, true);
    const sched::ClusterResult secure =
        sched::ClusterExperiment(cfg).run_with_model(fast_model());

    ASSERT_EQ(normal.recoveries.size(), 1u) << plat;
    ASSERT_EQ(secure.recoveries.size(), 1u) << plat;
    EXPECT_GT(secure.mean_ttr_ns(), normal.mean_ttr_ns()) << plat;
    // The gap is attributable to the boot premium + re-attestation, up to
    // breaker-cooldown + health-probe quantisation of the readmission edge.
    const sim::Ns gap = secure.mean_ttr_ns() - normal.mean_ttr_ns();
    const sim::Ns mech = (measure_recovery(plat, true).total_ns() -
                          measure_recovery(plat, false).total_ns());
    EXPECT_NEAR(gap, mech,
                cfg.breaker.open_cooldown_ns + 2 * cfg.probe_interval_ns)
        << plat;
    // And the per-sample attribution matches the measured costs exactly.
    const sched::RecoverySample& rs = secure.recoveries[0];
    EXPECT_NEAR(rs.boot_end_ns - rs.boot_start_ns, cfg.recovery.boot_ns, 1.0);
    EXPECT_NEAR(rs.attest_end_ns - rs.attest_start_ns, cfg.recovery.attest_ns,
                1.0);
  }
}

TEST(ClusterChaos, AttestOutageStallsOnlySecureRecovery) {
  // Crash at 1s; recovery boots for 1s; an attestation outage covers the
  // moment re-attestation would start. Secure recovery waits the outage
  // out; normal recovery (no attest step) is untouched by the same plan.
  auto run = [](RecoveryCosts costs, bool with_outage) {
    sched::ClusterConfig cfg = chaos_config();
    cfg.faults.crash(1 * kSec + 1 * kMs, 0);
    if (with_outage) cfg.faults.attest_outage(1 * kSec, 4 * kSec);
    cfg.recovery = costs;
    return sched::ClusterExperiment(cfg).run_with_model(fast_model());
  };
  const RecoveryCosts secure{.boot_ns = 1 * kSec, .attest_ns = 200 * kMs};
  const RecoveryCosts normal{.boot_ns = 1 * kSec, .attest_ns = 0};

  const sim::Ns secure_plain = run(secure, false).mean_ttr_ns();
  const sim::Ns secure_outage = run(secure, true).mean_ttr_ns();
  EXPECT_GT(secure_outage, secure_plain + 1 * kSec);  // waited for 5s edge

  const sim::Ns normal_plain = run(normal, false).mean_ttr_ns();
  const sim::Ns normal_outage = run(normal, true).mean_ttr_ns();
  EXPECT_DOUBLE_EQ(normal_outage, normal_plain);
}

TEST(ClusterChaos, BrownoutStretchesServiceTimesInsideTheWindow) {
  sched::ClusterConfig cfg = chaos_config();
  cfg.rate_rps = 2000;  // light load: latency ~ service time
  cfg.faults.brownout(1 * kSec, 1 * kSec, 0, 4.0);
  cfg.faults.brownout(1 * kSec, 1 * kSec, 1, 4.0);
  cfg.faults.brownout(1 * kSec, 1 * kSec, 2, 4.0);
  cfg.faults.brownout(1 * kSec, 1 * kSec, 3, 4.0);
  const sched::ClusterResult r =
      sched::ClusterExperiment(cfg).run_with_model(fast_model());
  sched::ClusterConfig calm = chaos_config();
  calm.rate_rps = 2000;
  const sched::ClusterResult base =
      sched::ClusterExperiment(calm).run_with_model(fast_model());
  EXPECT_TRUE(r.accounted());
  EXPECT_EQ(r.crashes, 0u);
  // Fleet-wide 4x brownout: the during-fault tail must sit far above the
  // calm run's tail (4ms service vs ~1ms).
  EXPECT_GT(r.latency_fault.count(), 0u);
  EXPECT_GT(r.latency_fault.p50(), 2 * base.latency.p99());
}

TEST(ClusterChaos, ResultJsonCarriesFailureAggregates) {
  sched::ClusterConfig cfg = chaos_config();
  cfg.requests = 5000;
  cfg.faults.crash(200 * kMs, 0);
  cfg.recovery = {.boot_ns = 500 * kMs, .attest_ns = 0};
  const std::string js =
      sched::ClusterExperiment(cfg).run_with_model(fast_model()).to_json();
  for (const char* key : {"\"availability\"", "\"failed\"", "\"failovers\"",
                          "\"crashes\"", "\"mean_ttr_ns\"",
                          "\"latency_fault_p99_ns\""})
    EXPECT_NE(js.find(key), std::string::npos) << key;
}

}  // namespace
}  // namespace confbench::fault

#include <gtest/gtest.h>

#include <vector>

#include "sched/arrivals.h"
#include "sched/autoscaler.h"
#include "sched/cluster.h"
#include "sched/event_queue.h"
#include "sched/replica_queue.h"
#include "sim/clock.h"

namespace confbench::sched {
namespace {

// --- EventQueue -------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  sim::VirtualClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  q.at(30, [&] { order.push_back(3); });
  q.at(10, [&] { order.push_back(1); });
  q.at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(clock.now(), 30);
}

TEST(EventQueue, EqualTimesRunInScheduleOrder) {
  sim::VirtualClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) q.at(100, [&order, i] { order.push_back(i); });
  q.run();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, HandlersScheduleFurtherEvents) {
  sim::VirtualClock clock;
  EventQueue q(clock);
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 5) q.after(10, hop);
  };
  q.after(10, hop);
  EXPECT_EQ(q.run(), 5u);
  EXPECT_EQ(hops, 5);
  EXPECT_DOUBLE_EQ(clock.now(), 50);
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  sim::VirtualClock clock;
  EventQueue q(clock);
  sim::Ns seen = -1;
  q.at(100, [&] {
    q.at(5, [&] { seen = clock.now(); });  // in the past: runs "now"
  });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 100);
}

TEST(EventQueue, RunRespectsEventCap) {
  sim::VirtualClock clock;
  EventQueue q(clock);
  std::function<void()> forever = [&] { q.after(1, forever); };
  q.after(1, forever);
  EXPECT_EQ(q.run(1000), 1000u);
  EXPECT_FALSE(q.empty());
}

// --- ArrivalProcess ---------------------------------------------------------

TEST(Arrivals, FixedRateIsExact) {
  ArrivalProcess a(ArrivalKind::kFixedRate, 1000.0, 7);  // 1k rps -> 1ms
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.next_gap(), 1 * sim::kMs);
}

TEST(Arrivals, PoissonMeanMatchesRate) {
  ArrivalProcess a(ArrivalKind::kPoisson, 500.0, 42);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += a.next_gap();
  const double mean_ms = sum / n / sim::kMs;
  EXPECT_NEAR(mean_ms, 2.0, 0.1);  // 500 rps -> 2 ms mean gap
}

TEST(Arrivals, SameSeedSameTrace) {
  ArrivalProcess a(ArrivalKind::kPoisson, 100.0, 99);
  ArrivalProcess b(ArrivalKind::kPoisson, 100.0, 99);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.next_gap(), b.next_gap());
}

// --- ReplicaQueue -----------------------------------------------------------

TEST(ReplicaQueue, RejectsBeyondCapacity) {
  ReplicaQueue q({.concurrency = 2, .queue_depth = 3});
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(q.admit(i).valid());
  EXPECT_FALSE(q.admit(5).valid());  // 429
  EXPECT_EQ(q.admitted(), 5u);
  EXPECT_EQ(q.rejected(), 1u);
}

TEST(ReplicaQueue, FifoServiceWithinConcurrencyLimit) {
  ReplicaQueue q({.concurrency = 2, .queue_depth = 8});
  for (std::uint64_t i = 0; i < 4; ++i) ASSERT_TRUE(q.admit(i).valid());
  EXPECT_EQ(q.start_next(), std::optional<std::uint64_t>(0));
  EXPECT_EQ(q.start_next(), std::optional<std::uint64_t>(1));
  EXPECT_EQ(q.start_next(), std::nullopt);  // both slots busy
  q.complete();
  EXPECT_EQ(q.start_next(), std::optional<std::uint64_t>(2));
  EXPECT_EQ(q.in_service(), 2);
  EXPECT_EQ(q.queued(), 1u);
}

TEST(ReplicaQueue, CompleteFreesCapacityForAdmission) {
  ReplicaQueue q({.concurrency = 1, .queue_depth = 0});
  ASSERT_TRUE(q.admit(0).valid());
  ASSERT_TRUE(q.start_next().has_value());
  EXPECT_FALSE(q.admit(1).valid());
  q.complete();
  EXPECT_TRUE(q.admit(1).valid());
}

TEST(ReplicaQueue, CancelTicketFreesSlotAndSkipsDeadEntry) {
  ReplicaQueue q({.concurrency = 1, .queue_depth = 4});
  const auto t0 = q.admit(0);
  const auto t1 = q.admit(1);
  const auto t2 = q.admit(2);
  ASSERT_TRUE(t0.valid() && t1.valid() && t2.valid());
  EXPECT_TRUE(q.cancel(t1));
  EXPECT_FALSE(q.cancel(t1));  // already dead
  EXPECT_EQ(q.queued(), 2u);
  EXPECT_EQ(q.start_next(), std::optional<std::uint64_t>(0));
  q.complete();
  // The cancelled middle entry is skipped; FIFO order is otherwise intact.
  EXPECT_EQ(q.start_next(), std::optional<std::uint64_t>(2));
}

TEST(ReplicaQueue, TicketGoesStaleOnServiceStartAndEviction) {
  ReplicaQueue q({.concurrency = 2, .queue_depth = 4});
  const auto t0 = q.admit(0);
  ASSERT_TRUE(q.start_next().has_value());
  EXPECT_FALSE(q.cancel(t0));  // already in service
  const auto t1 = q.admit(1);
  EXPECT_EQ(q.evict_all(), std::vector<std::uint64_t>{1});
  EXPECT_FALSE(q.cancel(t1));  // evicted
  EXPECT_FALSE(q.cancel({}));  // default ticket is never valid
}

TEST(ReplicaQueue, CancelledEntriesFreeCapacityImmediately) {
  ReplicaQueue q({.concurrency = 1, .queue_depth = 1});
  ASSERT_TRUE(q.admit(0).valid());
  const auto t1 = q.admit(1);
  ASSERT_TRUE(t1.valid());
  EXPECT_FALSE(q.admit(2).valid());  // full
  EXPECT_TRUE(q.cancel(t1));
  EXPECT_TRUE(q.admit(2).valid());  // slot reclaimed without a pop
}

// --- Autoscaler -------------------------------------------------------------

TEST(Autoscaler, BootsOnHighUtilization) {
  Autoscaler s({.min_warm = 1, .max_replicas = 4});
  // 1 warm replica, 8 slots all busy, backlog queued.
  EXPECT_GT(s.evaluate(1, 0, 8, 20, 8, 0), 0);
}

TEST(Autoscaler, NeverExceedsMaxReplicas) {
  Autoscaler s({.min_warm = 1, .max_replicas = 2});
  EXPECT_EQ(s.evaluate(2, 0, 16, 100, 8, 0), 0);
  EXPECT_EQ(s.evaluate(1, 1, 8, 100, 8, 0), 0);  // booting counts as capacity
}

TEST(Autoscaler, ParksOnlyAfterPatience) {
  Autoscaler s({.min_warm = 1,
                .max_replicas = 4,
                .scale_down_patience = 3});
  EXPECT_EQ(s.evaluate(3, 0, 0, 0, 8, 0), 0);
  EXPECT_EQ(s.evaluate(3, 0, 0, 0, 8, 1), 0);
  EXPECT_EQ(s.evaluate(3, 0, 0, 0, 8, 2), -1);
  // Patience restarts after a decision.
  EXPECT_EQ(s.evaluate(2, 0, 0, 0, 8, 3), 0);
}

TEST(Autoscaler, HoldsAtMinWarm) {
  Autoscaler s({.min_warm = 2, .max_replicas = 4, .scale_down_patience = 1});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s.evaluate(2, 0, 0, 0, 8, i), 0);
}

TEST(Autoscaler, RejectionsScaleUpAZeroWarmPool) {
  // A cold pool queues nothing — every request is turned away, so
  // rejected_delta is the only scale-up signal it ever emits.
  Autoscaler s({.min_warm = 0, .max_replicas = 4});
  EXPECT_EQ(s.evaluate(0, 0, 0, 0, 8, 0, /*rejected_delta=*/5), 1);
  // The sample records the attribution (satellite: trace column).
  ASSERT_EQ(s.trace().size(), 1u);
  EXPECT_EQ(s.trace().back().rejected_delta, 5u);
  EXPECT_EQ(s.trace().back().decision, 1);
}

TEST(Autoscaler, DeficitClampsAtMaxWithBootingCapacity) {
  // Backlog wants 100/8+1 = 13 replicas, but 2 are already booting and the
  // cap is 4: the decision must be exactly the remaining headroom.
  Autoscaler s({.min_warm = 0, .max_replicas = 4});
  EXPECT_EQ(s.evaluate(1, 2, 8, 100, 8, 0), 1);
}

TEST(Autoscaler, PatienceRestartsAfterANonLowTick) {
  Autoscaler s({.min_warm = 1, .max_replicas = 4, .scale_down_patience = 3});
  EXPECT_EQ(s.evaluate(3, 0, 0, 0, 8, 0), 0);   // low tick 1
  EXPECT_EQ(s.evaluate(3, 0, 0, 0, 8, 1), 0);   // low tick 2
  EXPECT_EQ(s.evaluate(3, 0, 12, 0, 8, 2), 0);  // util 0.5: band middle
  EXPECT_EQ(s.evaluate(3, 0, 0, 0, 8, 3), 0);   // low tick 1 again
  EXPECT_EQ(s.evaluate(3, 0, 0, 0, 8, 4), 0);   // low tick 2
  EXPECT_EQ(s.evaluate(3, 0, 0, 0, 8, 5), -1);  // low tick 3: park
}

TEST(Autoscaler, SetLimitsRestartsPatience) {
  // A churn resize re-clamps the band; low ticks accumulated against the
  // old band must not count toward parking under the new one.
  Autoscaler s({.min_warm = 1, .max_replicas = 4, .scale_down_patience = 2});
  EXPECT_EQ(s.evaluate(3, 0, 0, 0, 8, 0), 0);  // low tick 1
  s.set_limits(1, 3);
  EXPECT_EQ(s.evaluate(3, 0, 0, 0, 8, 1), 0);  // low tick 1, not 2
  EXPECT_EQ(s.evaluate(3, 0, 0, 0, 8, 2), -1);
}

// --- ClusterExperiment (pure simulation via run_with_model) -----------------

ClusterConfig base_config() {
  ClusterConfig cfg;
  cfg.requests = 20000;
  cfg.seed = 1234;
  cfg.queue = {.concurrency = 8, .queue_depth = 16};
  cfg.scaler = {.min_warm = 1, .max_replicas = 4, .tick_ns = 20 * sim::kMs};
  return cfg;
}

ServiceModel cpu_model() {
  ServiceModel m;
  m.parallel_ns = 1 * sim::kMs;
  m.serialized_ns = 0;
  m.jitter_sigma = 0.02;
  m.cold_start_ns = 0.5 * sim::kSec;
  return m;
}

TEST(ClusterExperiment, DeterministicAcrossRuns) {
  ClusterConfig cfg = base_config();
  cfg.rate_rps = 6000;
  const ClusterExperiment ex(cfg);
  const ClusterResult a = ex.run_with_model(cpu_model());
  const ClusterResult b = ex.run_with_model(cpu_model());
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_DOUBLE_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_DOUBLE_EQ(a.latency.p99(), b.latency.p99());
  EXPECT_DOUBLE_EQ(a.latency.sum(), b.latency.sum());
  EXPECT_EQ(a.peak_warm, b.peak_warm);
}

TEST(ClusterExperiment, LightLoadSeesNoQueueing) {
  ClusterConfig cfg = base_config();
  cfg.requests = 5000;
  cfg.rate_rps = 500;  // one replica sustains 8000 rps of 1ms requests
  const ClusterResult r = ClusterExperiment(cfg).run_with_model(cpu_model());
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.completed, r.offered);
  // p99 stays near the bare service time: almost no waiting.
  EXPECT_LT(r.latency.p99(), 1.5 * sim::kMs);
  EXPECT_LT(r.queue_wait.p99(), 0.2 * sim::kMs);
}

TEST(ClusterExperiment, OverloadRejectsAndThroughputSaturates) {
  ClusterConfig cfg = base_config();
  cfg.rate_rps = 100000;  // ~3x the 4-replica fleet capacity (32k rps)
  cfg.scaler.min_warm = 4;  // pre-warmed: isolate steady-state saturation
  const ClusterExperiment ex(cfg);
  const ClusterResult r = ex.run_with_model(cpu_model());
  EXPECT_GT(r.rejected, 0u);
  const double cap = ex.fleet_capacity_rps(cpu_model());
  EXPECT_NEAR(r.throughput_rps(), cap, 0.35 * cap);
  // Latency is bounded by the queue depth, not the offered load.
  const double worst_wait_ns =
      (cfg.queue.queue_depth / 8.0 + 1.0) * 2 * sim::kMs;
  EXPECT_LT(r.latency.p99(), worst_wait_ns + 2 * sim::kMs);
}

TEST(ClusterExperiment, AutoscalerAddsReplicasUnderLoad) {
  ClusterConfig cfg = base_config();
  cfg.rate_rps = 20000;  // needs ~3 replicas at 8k rps each
  const ClusterResult r = ClusterExperiment(cfg).run_with_model(cpu_model());
  EXPECT_GT(r.peak_warm, 1);
  EXPECT_LE(r.peak_warm, cfg.scaler.max_replicas);
  EXPECT_FALSE(r.scaler_trace.empty());
  // Once scaled, the fleet should complete the large majority of traffic.
  EXPECT_GT(static_cast<double>(r.completed),
            0.6 * static_cast<double>(r.offered));
}

TEST(ClusterExperiment, SerializedPortionCapsThroughput) {
  // Same total service time; one model funnels half of it through the
  // per-VM bounce-buffer path. Under pressure the serialized fleet must
  // deliver strictly less.
  ServiceModel parallel = cpu_model();
  ServiceModel bounced = cpu_model();
  bounced.parallel_ns = 0.5 * sim::kMs;
  bounced.serialized_ns = 0.5 * sim::kMs;
  bounced.bounce_slots = 1;
  ClusterConfig cfg = base_config();
  cfg.rate_rps = 30000;
  const ClusterExperiment ex(cfg);
  const double tput_parallel =
      ex.run_with_model(parallel).throughput_rps();
  const double tput_bounced = ex.run_with_model(bounced).throughput_rps();
  EXPECT_LT(tput_bounced, 0.5 * tput_parallel);
  // And the model's capacity predicts it: 1/serialized = 2k rps per VM.
  EXPECT_NEAR(bounced.replica_capacity_rps(8), 2000, 1);
}

TEST(ClusterExperiment, BounceSlotsScaleSerializedCapacity) {
  ServiceModel m = cpu_model();
  m.parallel_ns = 0.1 * sim::kMs;
  m.serialized_ns = 0.9 * sim::kMs;
  m.bounce_slots = 1;
  const double one_slot = m.replica_capacity_rps(8);
  m.bounce_slots = 4;
  EXPECT_NEAR(m.replica_capacity_rps(8), 4 * one_slot, 1e-6);
  // Enough slots: the parallel portion becomes the binding constraint.
  m.bounce_slots = 64;
  EXPECT_NEAR(m.replica_capacity_rps(8), 8 * sim::kSec / m.total_ns(), 1e-6);

  // End to end: more slots -> strictly more delivered throughput under an
  // overload that saturates the bounce path.
  ClusterConfig cfg = base_config();
  cfg.rate_rps = 30000;
  cfg.scaler.min_warm = 4;
  ServiceModel narrow = m, wide = m;
  narrow.bounce_slots = 1;
  wide.bounce_slots = 4;
  const ClusterExperiment ex(cfg);
  EXPECT_GT(ex.run_with_model(wide).throughput_rps(),
            1.5 * ex.run_with_model(narrow).throughput_rps());
}

TEST(ClusterExperiment, ClosedLoopIssuesAllRequests) {
  ClusterConfig cfg = base_config();
  cfg.requests = 2000;
  cfg.closed_loop_clients = 16;
  cfg.think_ns = 0.5 * sim::kMs;
  const ClusterResult r = ClusterExperiment(cfg).run_with_model(cpu_model());
  EXPECT_EQ(r.offered, cfg.requests);
  EXPECT_EQ(r.completed + r.rejected, r.offered);
  // 16 clients over 8+ slots: no admission pressure.
  EXPECT_EQ(r.rejected, 0u);
}

// --- Autoscaler edge cases --------------------------------------------------

TEST(ClusterScalingEdges, SpikeWhileRepliasMidBootDoesNotBootStorm) {
  // A sustained spike with a slow (confidential-style) cold start: ticks
  // fire many times while replicas are still mid-boot. Capacity already
  // booting must count, so the fleet never boots more than it can use.
  ClusterConfig cfg = base_config();
  cfg.rate_rps = 30000;  // needs the whole 4-replica fleet
  ServiceModel m = cpu_model();
  m.cold_start_ns = 2 * sim::kSec;  // ~100 ticks elapse while booting
  const ClusterResult r = ClusterExperiment(cfg).run_with_model(m);
  int booted = 0;
  for (const AutoscalerSample& s : r.scaler_trace)
    if (s.decision > 0) booted += s.decision;
  // min_warm=1: at most 3 replicas may ever be booted, no matter how many
  // ticks observed pressure while they were mid-boot.
  EXPECT_LE(booted, cfg.scaler.max_replicas - cfg.scaler.min_warm);
  EXPECT_EQ(r.peak_warm, cfg.scaler.max_replicas);
}

TEST(ClusterScalingEdges, ParkRacingQueuedInvocationsLosesNothing) {
  // Closed loop with long think times and an eager scale-down policy: the
  // autoscaler repeatedly tries to park replicas exactly while stragglers
  // are still arriving. A park may only take an idle replica, so every
  // request must still be admitted and completed.
  ClusterConfig cfg = base_config();
  cfg.requests = 4000;
  cfg.closed_loop_clients = 8;
  cfg.think_ns = 5 * sim::kMs;
  cfg.scaler.min_warm = 1;
  cfg.scaler.max_replicas = 4;
  cfg.scaler.scale_down_patience = 1;  // park at the first idle tick
  cfg.scaler.tick_ns = 5 * sim::kMs;
  const ClusterResult r = ClusterExperiment(cfg).run_with_model(cpu_model());
  EXPECT_EQ(r.offered, cfg.requests);
  EXPECT_EQ(r.completed, r.offered);  // nothing swallowed by a park
  EXPECT_EQ(r.rejected, 0u);
}

TEST(ClusterScalingEdges, ZeroWarmPoolScalesUpFromColdStartStorm) {
  // min_warm = 0: the fleet starts fully parked, so the opening burst is
  // rejected wholesale (nothing queues on a nonexistent replica) and those
  // rejections are the only scale-up signal the autoscaler gets.
  ClusterConfig cfg = base_config();
  cfg.requests = 30000;
  cfg.rate_rps = 5000;
  cfg.scaler.min_warm = 0;
  cfg.scaler.tick_ns = 20 * sim::kMs;
  ServiceModel m = cpu_model();
  m.cold_start_ns = 0.3 * sim::kSec;
  const ClusterResult r = ClusterExperiment(cfg).run_with_model(m);
  EXPECT_GT(r.rejected, 0u);  // the storm before the first boot finishes
  EXPECT_GT(r.peak_warm, 0);  // rejections did trigger boots
  EXPECT_EQ(r.completed + r.rejected, r.offered);
  // Once warm, the fleet absorbs the offered load.
  EXPECT_GT(static_cast<double>(r.completed),
            0.7 * static_cast<double>(r.offered));
}

TEST(ClusterExperiment, ResultJsonIsComplete) {
  ClusterConfig cfg = base_config();
  cfg.requests = 500;
  cfg.rate_rps = 1000;
  const ClusterResult r = ClusterExperiment(cfg).run_with_model(cpu_model());
  const std::string js = r.to_json();
  EXPECT_NE(js.find("\"throughput_rps\""), std::string::npos);
  EXPECT_NE(js.find("\"p999\""), std::string::npos);
  EXPECT_NE(js.find("\"cold_start_ns\""), std::string::npos);
}

}  // namespace
}  // namespace confbench::sched

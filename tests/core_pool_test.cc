#include <gtest/gtest.h>

#include <vector>

#include "core/pool.h"

namespace confbench::core {
namespace {

TeePool make_pool(LoadBalancePolicy policy, int n = 3) {
  TeePool p("tdx", policy);
  for (int i = 0; i < n; ++i)
    p.add_member({.host = "h" + std::to_string(i)});
  return p;
}

TEST(TeePool, LeastLoadedPrefersLowestIndexOnFullTie) {
  TeePool p = make_pool(LoadBalancePolicy::kLeastLoaded);
  // All members identical (in_flight=0, served=0): index breaks the tie.
  PoolMember* m = p.acquire();
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->index, 0u);
}

TEST(TeePool, LeastLoadedSpreadsSequentialTraffic) {
  // acquire/release one at a time: in_flight always ties at 0, so the
  // served tie-break rotates through the members.
  TeePool p = make_pool(LoadBalancePolicy::kLeastLoaded);
  std::vector<std::uint32_t> picks;
  for (int i = 0; i < 6; ++i) {
    PoolMember* m = p.acquire();
    picks.push_back(m->index);
    p.release(m);
  }
  EXPECT_EQ(picks, (std::vector<std::uint32_t>{0, 1, 2, 0, 1, 2}));
}

TEST(TeePool, LeastLoadedIsDeterministicAcrossRuns) {
  // Concurrent traffic (no release between acquires): two identical pools
  // must pick the identical member sequence.
  TeePool a = make_pool(LoadBalancePolicy::kLeastLoaded);
  TeePool b = make_pool(LoadBalancePolicy::kLeastLoaded);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.acquire()->index, b.acquire()->index) << "step " << i;
  }
}

TEST(TeePool, RandomPolicyIsSeedDeterministic) {
  // The RNG is seeded from the pool's TEE name: same name, same stream.
  TeePool a = make_pool(LoadBalancePolicy::kRandom, 5);
  TeePool b = make_pool(LoadBalancePolicy::kRandom, 5);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(a.acquire()->index, b.acquire()->index);
}

TEST(TeePool, DisabledMembersAreSkippedByEveryPolicy) {
  for (const auto policy :
       {LoadBalancePolicy::kRoundRobin, LoadBalancePolicy::kLeastLoaded,
        LoadBalancePolicy::kRandom}) {
    TeePool p = make_pool(policy, 4);
    p.set_enabled(0, false);
    p.set_enabled(2, false);
    EXPECT_EQ(p.enabled_count(), 2u);
    for (int i = 0; i < 12; ++i) {
      PoolMember* m = p.acquire();
      ASSERT_NE(m, nullptr);
      EXPECT_TRUE(m->index == 1 || m->index == 3)
          << "policy " << static_cast<int>(policy);
      p.release(m);
    }
  }
}

TEST(TeePool, AcquireReturnsNullWhenAllDisabled) {
  TeePool p = make_pool(LoadBalancePolicy::kRoundRobin, 2);
  p.set_enabled(0, false);
  p.set_enabled(1, false);
  EXPECT_EQ(p.acquire(), nullptr);
  p.set_enabled(1, true);
  ASSERT_NE(p.acquire(), nullptr);
}

TEST(TeePool, MemberPointersSurviveGrowth) {
  // The autoscaler adds replicas while requests hold PoolMember pointers;
  // deque storage keeps them valid.
  TeePool p("tdx", LoadBalancePolicy::kLeastLoaded);
  p.add_member({.host = "first"});
  PoolMember* held = p.acquire();
  ASSERT_NE(held, nullptr);
  for (int i = 0; i < 200; ++i)
    p.add_member({.host = "grown" + std::to_string(i)});
  EXPECT_EQ(held->host, "first");
  EXPECT_EQ(held->in_flight, 1u);
  p.release(held);
  EXPECT_EQ(held->in_flight, 0u);
  EXPECT_EQ(p.size(), 201u);
  EXPECT_EQ(p.member(5).index, 5u);
}

TEST(TeePool, ReleaseOnBusiestRebalances) {
  TeePool p = make_pool(LoadBalancePolicy::kLeastLoaded);
  PoolMember* a = p.acquire();  // h0
  PoolMember* b = p.acquire();  // h1
  PoolMember* c = p.acquire();  // h2
  EXPECT_EQ(a->index, 0u);
  EXPECT_EQ(b->index, 1u);
  EXPECT_EQ(c->index, 2u);
  p.release(b);  // h1 now least loaded (in_flight 0)
  EXPECT_EQ(p.acquire()->index, 1u);
}

}  // namespace
}  // namespace confbench::core

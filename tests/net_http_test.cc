#include <gtest/gtest.h>

#include "net/http.h"

namespace confbench::net {
namespace {

TEST(UrlCodec, EncodeDecodeRoundTrip) {
  const std::string raw = "a b/c?d=e&f%g";
  EXPECT_EQ(url_decode(url_encode(raw)), raw);
}

TEST(UrlCodec, DecodeKnownSequences) {
  EXPECT_EQ(url_decode("a%20b"), "a b");
  EXPECT_EQ(url_decode("a+b"), "a b");
  EXPECT_EQ(url_decode("%2F%3d"), "/=");
  EXPECT_EQ(url_decode("%zz"), "%zz");  // invalid escapes pass through
  EXPECT_EQ(url_decode("%2"), "%2");    // truncated escape
}

TEST(UrlCodec, EncodePreservesUnreserved) {
  EXPECT_EQ(url_encode("AZaz09-_.~"), "AZaz09-_.~");
  EXPECT_EQ(url_encode("a b"), "a%20b");
}

TEST(HttpRequest, SerializeHasRequestLineAndLength) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/invoke";
  req.query = "function=fib&lang=lua";
  req.body = "payload";
  const std::string wire = req.serialize();
  EXPECT_EQ(wire.rfind("POST /invoke?function=fib&lang=lua HTTP/1.1\r\n", 0),
            0u);
  EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\npayload"), std::string::npos);
}

TEST(HttpRequest, ParseRoundTrip) {
  HttpRequest req;
  req.method = "PUT";
  req.path = "/a/b";
  req.query = "x=1&y=two%20words";
  req.headers["X-Custom"] = "value";
  req.body = "the body";
  const auto parsed = parse_request(req.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, "PUT");
  EXPECT_EQ(parsed->path, "/a/b");
  EXPECT_EQ(parsed->query, "x=1&y=two%20words");
  EXPECT_EQ(parsed->headers.at("X-Custom"), "value");
  EXPECT_EQ(parsed->body, "the body");
}

TEST(HttpRequest, QueryParamsDecoded) {
  HttpRequest req;
  req.query = "function=fib&lang=lua&note=two%20words&flag";
  const auto params = req.query_params();
  EXPECT_EQ(params.at("function"), "fib");
  EXPECT_EQ(params.at("note"), "two words");
  EXPECT_EQ(params.at("flag"), "");
  EXPECT_EQ(params.size(), 4u);
}

TEST(HttpRequest, HeadersCaseInsensitive) {
  HttpRequest req;
  req.headers["content-type"] = "text/plain";
  EXPECT_EQ(req.headers.count("Content-Type"), 1u);
  EXPECT_EQ(req.headers.count("CONTENT-TYPE"), 1u);
}

TEST(HttpParse, RejectsMalformedInputs) {
  EXPECT_FALSE(parse_request("").has_value());
  EXPECT_FALSE(parse_request("garbage").has_value());
  EXPECT_FALSE(parse_request("GET /\r\n\r\n").has_value());  // no version
  EXPECT_FALSE(parse_request("GET / SPDY/3\r\n\r\n").has_value());
  EXPECT_FALSE(
      parse_request("GET / HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n").has_value());
  EXPECT_FALSE(
      parse_request("GET / HTTP/1.1\r\n: empty-name\r\n\r\n").has_value());
}

TEST(HttpParse, RejectsIncompleteBody) {
  EXPECT_FALSE(
      parse_request("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")
          .has_value());
  EXPECT_FALSE(
      parse_request("POST / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n")
          .has_value());
}

TEST(HttpParse, HeaderValueTrimmed) {
  const auto req =
      parse_request("GET / HTTP/1.1\r\nX-K:   spaced value  \r\n\r\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->headers.at("X-K"), "spaced value");
}

TEST(HttpParse, ConsumedSupportsPipelining) {
  HttpRequest a, b;
  a.path = "/first";
  b.path = "/second";
  const std::string stream = a.serialize() + b.serialize();
  std::size_t used = 0;
  const auto first = parse_request(stream, &used);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->path, "/first");
  const auto second = parse_request(stream.substr(used));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->path, "/second");
}

TEST(HttpResponse, MakeFillsReason) {
  const auto r = HttpResponse::make(404, "nope\n");
  EXPECT_EQ(r.status, 404);
  EXPECT_EQ(r.reason, "Not Found");
  EXPECT_EQ(r.headers.at("Content-Type"), "text/plain");
}

TEST(HttpResponse, ParseRoundTrip) {
  HttpResponse resp = HttpResponse::make(200, "result");
  resp.headers["X-Perf"] = "ins=5";
  const auto parsed = parse_response(resp.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->reason, "OK");
  EXPECT_EQ(parsed->body, "result");
  EXPECT_EQ(parsed->headers.at("X-Perf"), "ins=5");
}

TEST(HttpResponse, ParseRejectsBadStatusLine) {
  EXPECT_FALSE(parse_response("HTTP/1.1\r\n\r\n").has_value());
  EXPECT_FALSE(parse_response("HTTP/1.1 banana OK\r\n\r\n").has_value());
  EXPECT_FALSE(parse_response("HTTP/1.1 999999 ?\r\n\r\n").has_value());
  EXPECT_FALSE(parse_response("FTP/1.1 200 OK\r\n\r\n").has_value());
}

TEST(HttpResponse, ReasonStringsKnown) {
  EXPECT_EQ(reason_for_status(200), "OK");
  EXPECT_EQ(reason_for_status(502), "Bad Gateway");
  EXPECT_EQ(reason_for_status(418), "Unknown");
}

TEST(HttpParse, FuzzishInputsDontCrash) {
  // Deterministic mutation sweep over a valid request.
  HttpRequest req;
  req.method = "POST";
  req.path = "/run";
  req.query = "a=1";
  req.body = "xyz";
  const std::string wire = req.serialize();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (const char c : {'\0', '\r', '\n', ' ', ':', '?'}) {
      std::string mutated = wire;
      mutated[i] = c;
      (void)parse_request(mutated);  // must not crash or hang
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace confbench::net

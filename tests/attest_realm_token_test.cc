#include <gtest/gtest.h>

#include "attest/realm_token.h"

namespace confbench::attest {
namespace {

struct CcaTokenFlow : ::testing::Test {
  CcaTokenFlow() : gen("fvp-rev-c") {
    meas = golden_realm_measurements("realm-img");
    challenge = Sha256::hash(std::string("verifier-nonce"));
    rpv = Sha256::hash(std::string("tenant-42"));
    policy.expected = meas;
    policy.expected_challenge = challenge;
    policy.expected_platform_measurement = Sha256::hash("cca-fw:fvp-rev-c");
  }
  CcaTokenGenerator gen;
  RealmMeasurements meas;
  Digest challenge, rpv;
  CcaVerifyPolicy policy;
};

TEST_F(CcaTokenFlow, GenerateAndVerify) {
  const CcaToken token = gen.generate(meas, challenge, rpv);
  const auto v = verify_cca_token(token, gen.arm_root(), policy);
  EXPECT_TRUE(v.ok) << v.failure;
}

TEST_F(CcaTokenFlow, SerializationRoundTrip) {
  const CcaToken token = gen.generate(meas, challenge, rpv);
  const auto parsed = CcaToken::deserialize(token.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(verify_cca_token(*parsed, gen.arm_root(), policy).ok);
  EXPECT_EQ(parsed->realm.personalization, rpv);
}

TEST_F(CcaTokenFlow, TamperedWireRejected) {
  auto wire = gen.generate(meas, challenge, rpv).serialize();
  for (const std::size_t pos : {std::size_t{8}, wire.size() / 2,
                                wire.size() - 16}) {
    auto tampered = wire;
    tampered[pos] ^= 0x20;
    const auto parsed = CcaToken::deserialize(tampered);
    if (!parsed) continue;  // framing destroyed: also a rejection
    EXPECT_FALSE(verify_cca_token(*parsed, gen.arm_root(), policy).ok)
        << "byte " << pos;
  }
}

TEST_F(CcaTokenFlow, SwappedRakRejected) {
  // An attacker substitutes their own realm key + self-signed realm token;
  // the platform token's RAK hash exposes the swap.
  CcaToken token = gen.generate(meas, challenge, rpv);
  const Keypair attacker = SimSigner::keygen("attacker-rak");
  token.rak_pub = attacker.pub;
  token.realm.signature =
      SimSigner::sign(attacker, token.realm.signed_body());
  const auto v = verify_cca_token(token, gen.arm_root(), policy);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.failure, "RAK not bound to the platform token");
}

TEST_F(CcaTokenFlow, RealmMeasurementMismatchRejected) {
  RealmMeasurements wrong = meas;
  wrong.rem[2].extend("unexpected module");
  const CcaToken token = gen.generate(wrong, challenge, rpv);
  const auto v = verify_cca_token(token, gen.arm_root(), policy);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.failure, "realm measurement mismatch");
}

TEST_F(CcaTokenFlow, StaleChallengeRejected) {
  const CcaToken token =
      gen.generate(meas, Sha256::hash(std::string("old-nonce")), rpv);
  EXPECT_FALSE(verify_cca_token(token, gen.arm_root(), policy).ok);
}

TEST_F(CcaTokenFlow, WrongPlatformRejected) {
  CcaTokenGenerator other("different-board");
  const CcaToken token = other.generate(meas, challenge, rpv);
  // Same Arm root, but the platform firmware measurement differs.
  const auto v = verify_cca_token(token, other.arm_root(), policy);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.failure, "platform measurement mismatch");
}

TEST_F(CcaTokenFlow, WrongRootRejected) {
  const CcaToken token = gen.generate(meas, challenge, rpv);
  const Keypair fake = SimSigner::keygen("fake-arm-root");
  EXPECT_FALSE(verify_cca_token(token, fake.pub, policy).ok);
}

}  // namespace
}  // namespace confbench::attest

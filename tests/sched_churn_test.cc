// Elastic shard fabric: incremental ring membership (minimal-disruption
// bound, orphan-proof removal, validate/repair), slice handoff across live
// churn, scale-out cold starts, forced scale-in, overload-aware early
// rejection — and the zero-lost-requests invariant through all of it.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "fault/fault.h"
#include "sched/shard.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace confbench::sched {
namespace {

using sim::kMs;
using sim::kSec;

std::vector<std::string> node_names(int n) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) names.push_back("shard-" + std::to_string(i));
  return names;
}

std::vector<std::uint64_t> probe_keys(std::size_t n) {
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    keys.push_back(sim::hash_combine(sim::stable_hash("ring-probe"), i));
  return keys;
}

std::vector<std::uint32_t> owners(const HashRing& ring,
                                  const std::vector<std::uint64_t>& keys) {
  std::vector<std::uint32_t> out;
  out.reserve(keys.size());
  for (const std::uint64_t k : keys) out.push_back(ring.owner(k));
  return out;
}

// --- HashRing incremental membership ----------------------------------------

TEST(HashRingChurn, AddNodeMovesOnlyKeysOntoTheNewNode) {
  HashRing ring(node_names(4), 64, /*mix_points=*/true);
  const auto keys = probe_keys(4096);
  const auto before = owners(ring, keys);
  const std::uint32_t idx = ring.add_node("shard-4");
  EXPECT_EQ(idx, 4u);
  EXPECT_EQ(ring.live_nodes(), 5u);
  const auto after = owners(ring, keys);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (before[i] == after[i]) continue;
    ++moved;
    // Minimal disruption: a key may only move *onto* the new node. Any key
    // bouncing between the old nodes would mean the old points shifted.
    EXPECT_EQ(after[i], idx) << "key moved between pre-existing nodes";
  }
  const double frac = static_cast<double>(moved) / keys.size();
  EXPECT_GT(moved, 0u);
  EXPECT_LE(frac * ring.live_nodes(), 1.5) << "moved fraction above 1.5/N";
}

TEST(HashRingChurn, RemoveNodeMovesOnlyTheDepartedKeys) {
  HashRing ring(node_names(5), 64, /*mix_points=*/true);
  const auto keys = probe_keys(4096);
  const auto before = owners(ring, keys);
  const std::size_t n_before = ring.live_nodes();
  ring.remove_node(2);
  EXPECT_FALSE(ring.live(2));
  EXPECT_EQ(ring.live_nodes(), 4u);
  const auto after = owners(ring, keys);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (before[i] == after[i]) continue;
    ++moved;
    // Only keys the departed node owned may move, and never onto it.
    EXPECT_EQ(before[i], 2u) << "unaffected key changed owner";
    EXPECT_NE(after[i], 2u);
  }
  const double frac = static_cast<double>(moved) / keys.size();
  EXPECT_GT(moved, 0u);
  EXPECT_LE(frac * static_cast<double>(n_before), 1.5);
}

TEST(HashRingChurn, RandomizedJoinLeaveKeepsTheMinimalDisruptionBound) {
  sim::Rng rng(sim::stable_hash("churn-sequence"));
  HashRing ring(node_names(4), 64, /*mix_points=*/true);
  const auto keys = probe_keys(2048);
  int next_name = 4;
  for (int step = 0; step < 40; ++step) {
    const auto before = owners(ring, keys);
    const std::size_t n_before = ring.live_nodes();
    const bool join = ring.live_nodes() <= 2 || rng.next_double() < 0.5;
    std::size_t n_ref;
    if (join) {
      ring.add_node("shard-" + std::to_string(next_name++));
      n_ref = ring.live_nodes();  // join moves ~1/(N+1)
    } else {
      // Remove a deterministic-random live node.
      std::vector<std::uint32_t> live;
      for (std::uint32_t i = 0; i < ring.nodes(); ++i)
        if (ring.live(i)) live.push_back(i);
      ring.remove_node(live[rng.next_below(live.size())]);
      n_ref = n_before;  // leave moves ~1/N of the old membership
    }
    const auto after = owners(ring, keys);
    std::size_t moved = 0;
    for (std::size_t i = 0; i < keys.size(); ++i)
      moved += before[i] != after[i];
    const double frac = static_cast<double>(moved) / keys.size();
    EXPECT_LE(frac * static_cast<double>(n_ref), 1.5)
        << "step " << step << " moved " << frac << " with N=" << n_ref;
    EXPECT_TRUE(ring.validate()) << "ring inconsistent after step " << step;
  }
}

TEST(HashRingChurn, UnmovedKeysRouteBitIdenticallyThroughTheirChains) {
  HashRing ring(node_names(6), 64, /*mix_points=*/true);
  const auto keys = probe_keys(512);
  std::vector<std::vector<std::uint32_t>> chains_before;
  chains_before.reserve(keys.size());
  for (const std::uint64_t k : keys) chains_before.push_back(ring.chain(k));
  ring.remove_node(3);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    // Every key's post-churn chain must be its old chain with the departed
    // node deleted — clockwise order over the survivors is untouched, so
    // failover targets stay stable across membership changes.
    auto expect = chains_before[i];
    expect.erase(std::remove(expect.begin(), expect.end(), 3u),
                 expect.end());
    EXPECT_EQ(ring.chain(keys[i]), expect) << "chain reordered for key " << i;
  }
}

TEST(HashRingChurn, DeadSlotNameReuseCannotOrphanVnodes) {
  // The orphan regression: removal must erase points by node *index*. A new
  // live node reusing a dead slot's name projects byte-identical point
  // hashes; erasing the new node by re-hashed name would strip (or leave
  // behind) the wrong points. Index-keyed removal keeps both disjoint.
  HashRing ring(node_names(3), 32, /*mix_points=*/true);
  ring.remove_node(1);
  const std::uint32_t reborn = ring.add_node("shard-1");  // same name, new slot
  EXPECT_EQ(reborn, 3u);
  EXPECT_TRUE(ring.validate());
  ring.remove_node(reborn);
  EXPECT_TRUE(ring.validate()) << "name-collision removal orphaned vnodes";
  EXPECT_EQ(ring.live_nodes(), 2u);
  // And the surviving membership still owns the whole keyspace.
  for (const std::uint64_t k : probe_keys(256)) {
    const std::uint32_t o = ring.owner(k);
    EXPECT_TRUE(ring.live(o));
  }
}

TEST(HashRingChurn, ValidateRepairRebuildsFromLiveMembership) {
  HashRing ring(node_names(4), 16, /*mix_points=*/true);
  EXPECT_TRUE(ring.validate());
  ring.remove_node(0);
  EXPECT_TRUE(ring.validate());
  // repair on a consistent ring is a no-op that leaves routing unchanged.
  const auto keys = probe_keys(512);
  const auto before = owners(ring, keys);
  EXPECT_TRUE(ring.validate(/*repair=*/true));
  EXPECT_EQ(owners(ring, keys), before);
}

TEST(HashRingChurn, MembershipGuardsThrow) {
  HashRing ring(node_names(2), 16, /*mix_points=*/true);
  EXPECT_THROW(ring.add_node("shard-0"), std::invalid_argument);
  EXPECT_THROW(ring.remove_node(7), std::invalid_argument);
  ring.remove_node(0);
  EXPECT_THROW(ring.remove_node(0), std::invalid_argument);  // already dead
  EXPECT_THROW(ring.remove_node(1), std::invalid_argument);  // last live
}

// --- ShardedFrontend churn ---------------------------------------------------

TEST(FrontendChurn, AddShardReportsExactlyTheMovedReplicas) {
  ShardConfig sc;
  sc.shards = 4;
  ShardedFrontend fe(sc, 16);
  std::vector<std::uint32_t> owner_before(16);
  for (std::uint32_t r = 0; r < 16; ++r)
    owner_before[r] = fe.owner_of_replica(r);
  std::vector<ShardedFrontend::SliceMove> moves;
  const int s = fe.add_shard(&moves);
  EXPECT_EQ(s, 4);
  EXPECT_EQ(fe.live_shards(), 5);
  std::set<std::uint32_t> moved;
  for (const auto& mv : moves) {
    EXPECT_TRUE(moved.insert(mv.replica).second) << "duplicate move";
    EXPECT_EQ(mv.from, owner_before[mv.replica]);
    EXPECT_EQ(mv.to, fe.owner_of_replica(mv.replica));
  }
  std::size_t assigned = 0;
  for (int i = 0; i < fe.shards(); ++i) {
    for (const std::uint32_t r : fe.slice(i)) {
      EXPECT_EQ(fe.owner_of_replica(r), static_cast<std::uint32_t>(i));
      // Replicas the moves list does not mention kept their owner.
      if (!moved.count(r)) {
        EXPECT_EQ(owner_before[r], fe.owner_of_replica(r));
      }
    }
    assigned += fe.slice(i).size();
  }
  EXPECT_EQ(assigned, 16u) << "handoff lost or duplicated a replica";
}

TEST(FrontendChurn, RemoveShardReshardsItsSliceOntoSurvivors) {
  ShardConfig sc;
  sc.shards = 4;
  ShardedFrontend fe(sc, 16);
  const auto moves = fe.remove_shard(1);
  EXPECT_FALSE(fe.shard_live(1));
  EXPECT_TRUE(fe.slice(1).empty());
  for (const auto& mv : moves) EXPECT_NE(mv.to, 1u);
  std::size_t assigned = 0;
  for (int i = 0; i < fe.shards(); ++i) assigned += fe.slice(i).size();
  EXPECT_EQ(assigned, 16u);
  EXPECT_THROW(fe.remove_shard(1), std::invalid_argument);
}

TEST(FrontendChurn, ReplicaScaleOutAndInKeepIndicesStable) {
  ShardConfig sc;
  sc.shards = 3;
  ShardedFrontend fe(sc, 6);
  std::vector<ShardedFrontend::SliceMove> moves;
  const std::uint32_t r = fe.add_replica(&moves);
  EXPECT_EQ(r, 6u);
  EXPECT_TRUE(fe.replica_live(r));
  EXPECT_EQ(fe.live_replicas(), 7);
  EXPECT_NE(fe.owner_of_replica(r), ShardedFrontend::SliceMove::kUnowned);
  const auto out = fe.remove_replica(r);
  EXPECT_FALSE(fe.replica_live(r));
  EXPECT_EQ(fe.owner_of_replica(r), ShardedFrontend::SliceMove::kUnowned);
  EXPECT_EQ(fe.live_replicas(), 6);
  bool saw_departure = false;
  for (const auto& mv : out)
    if (mv.replica == r) {
      EXPECT_EQ(mv.to, ShardedFrontend::SliceMove::kUnowned);
      saw_departure = true;
    }
  EXPECT_TRUE(saw_departure);
  EXPECT_THROW(fe.remove_replica(r), std::invalid_argument);
}

// --- Live-churn experiments --------------------------------------------------

ShardedConfig churn_config() {
  ShardedConfig cfg;
  cfg.requests = 3000;
  cfg.rate_rps = 3000;
  cfg.seed = 11;
  cfg.replicas = 16;
  cfg.shard.shards = 4;
  cfg.shard.ring_mix_points = true;
  cfg.queue = {.concurrency = 8, .queue_depth = 32};
  cfg.scaler.tick_ns = 20 * kMs;
  cfg.retry.max_attempts = 4;
  return cfg;
}

ServiceModel churn_model() {
  ServiceModel m;
  m.parallel_ns = 1 * kMs;
  m.serialized_ns = 0;
  m.jitter_sigma = 0.02;
  m.cold_start_ns = 0.5 * kSec;
  return m;
}

TEST(ShardedChurn, ShardLeaveHandsOffWithoutLosingAcceptedRequests) {
  ShardedConfig cfg = churn_config();
  cfg.faults.shard_leave(300 * kMs, 1);
  const ShardedResult res =
      ShardedExperiment(cfg).run_with_model(churn_model());
  EXPECT_TRUE(res.accounted()) << "churn lost a request";
  EXPECT_EQ(res.churn.shard_leaves, 1u);
  EXPECT_GT(res.churn.replicas_moved, 0u);
  EXPECT_GT(res.churn.handoff_forwarded + res.churn.handoff_drained, 0u)
      << "a mid-ramp leave should find in-flight or queued work";
  EXPECT_LE(res.churn.max_moved_x_n, 1.5);
  ASSERT_GT(res.shards.size(), 1u);
  EXPECT_FALSE(res.shards[1].live);
  EXPECT_EQ(res.completed + res.rejected + res.failed, res.offered);
}

TEST(ShardedChurn, ShardJoinTakesOverTrafficAndKeepsTheBound) {
  ShardedConfig cfg = churn_config();
  cfg.faults.shard_join(300 * kMs);
  const ShardedResult res =
      ShardedExperiment(cfg).run_with_model(churn_model());
  EXPECT_TRUE(res.accounted());
  EXPECT_EQ(res.churn.shard_joins, 1u);
  EXPECT_GT(res.churn.replicas_moved, 0u);
  EXPECT_LE(res.churn.max_moved_x_n, 1.5);
  ASSERT_EQ(res.shards.size(), 5u) << "joined shard must be exported";
  EXPECT_TRUE(res.shards[4].live);
  EXPECT_GT(res.shards[4].admitted, 0u)
      << "traffic arriving after the join must home onto the new shard";
}

TEST(ShardedChurn, ReplicaScaleOutPaysColdStartBeforeServing) {
  ShardedConfig cfg = churn_config();
  cfg.faults.replica_add(200 * kMs, 4);
  const ShardedResult res =
      ShardedExperiment(cfg).run_with_model(churn_model());
  EXPECT_TRUE(res.accounted());
  EXPECT_EQ(res.churn.replica_adds, 4u);
  EXPECT_EQ(res.completed, res.offered);
}

TEST(ShardedChurn, ForcedScaleInRedispatchesQueuedWork) {
  ShardedConfig cfg = churn_config();
  cfg.queue = {.concurrency = 2, .queue_depth = 64};  // force queueing
  cfg.faults.replica_remove(300 * kMs, 3).replica_remove(320 * kMs, 9);
  const ShardedResult res =
      ShardedExperiment(cfg).run_with_model(churn_model());
  EXPECT_TRUE(res.accounted());
  EXPECT_EQ(res.churn.replica_removes, 2u);
  EXPECT_EQ(res.completed + res.rejected + res.failed, res.offered);
}

TEST(ShardedChurn, ChurnRunsAreByteReproducible) {
  ShardedConfig cfg = churn_config();
  cfg.faults.shard_join(250 * kMs)
      .shard_leave(500 * kMs, 0)
      .replica_add(300 * kMs, 2);
  const ShardedResult a =
      ShardedExperiment(cfg).run_with_model(churn_model());
  const ShardedResult b =
      ShardedExperiment(cfg).run_with_model(churn_model());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_TRUE(a.accounted());
}

TEST(ShardedChurn, EarlyRejectionShedsUnderOverloadAndStaysAccounted) {
  ShardedConfig base = churn_config();
  base.rate_rps = 40000;  // ~3x the 16-replica, 1 ms-service capacity
  base.requests = 6000;
  base.queue = {.concurrency = 8, .queue_depth = 256};

  ShardedConfig guarded = base;
  guarded.shard.early_reject = true;
  guarded.shard.early_reject_budget_ns = 20 * kMs;

  const ShardedResult queued =
      ShardedExperiment(base).run_with_model(churn_model());
  const ShardedResult rejected =
      ShardedExperiment(guarded).run_with_model(churn_model());
  EXPECT_TRUE(queued.accounted());
  EXPECT_TRUE(rejected.accounted());
  EXPECT_EQ(queued.churn.early_rejected, 0u) << "guard must be opt-in";
  EXPECT_GT(rejected.churn.early_rejected, 0u);
  // The traded-off pair: the guard sacrifices availability to cap the
  // completed requests' tail below the unbounded-queue run's.
  EXPECT_LT(rejected.latency.p99(), queued.latency.p99());
  EXPECT_LT(rejected.availability(), queued.availability());
}

TEST(ShardedChurn, DefaultConfigKeepsChurnCountersAtZero) {
  const ShardedResult res =
      ShardedExperiment(churn_config()).run_with_model(churn_model());
  EXPECT_EQ(res.churn.shard_joins, 0u);
  EXPECT_EQ(res.churn.shard_leaves, 0u);
  EXPECT_EQ(res.churn.replicas_moved, 0u);
  EXPECT_EQ(res.churn.handoff_forwarded, 0u);
  EXPECT_EQ(res.churn.early_rejected, 0u);
  EXPECT_EQ(res.churn.max_moved_fraction, 0.0);
}

}  // namespace
}  // namespace confbench::sched

#include <gtest/gtest.h>

#include "attest/signer.h"

namespace confbench::attest {
namespace {

TEST(SimSigner, KeygenDeterministicPerLabel) {
  const Keypair a = SimSigner::keygen("label-1");
  const Keypair b = SimSigner::keygen("label-1");
  const Keypair c = SimSigner::keygen("label-2");
  EXPECT_EQ(a.pub, b.pub);
  EXPECT_NE(a.pub, c.pub);
}

TEST(SimSigner, SignVerifyRoundTrip) {
  const Keypair kp = SimSigner::keygen("signer");
  const std::string msg = "attest me";
  const Signature sig = SimSigner::sign(kp, msg.data(), msg.size());
  EXPECT_TRUE(SimSigner::verify(kp.pub, msg.data(), msg.size(), sig));
}

TEST(SimSigner, TamperedMessageFails) {
  const Keypair kp = SimSigner::keygen("signer2");
  std::string msg = "original content";
  const Signature sig = SimSigner::sign(kp, msg.data(), msg.size());
  msg[3] ^= 0x01;
  EXPECT_FALSE(SimSigner::verify(kp.pub, msg.data(), msg.size(), sig));
}

TEST(SimSigner, WrongKeyFails) {
  const Keypair a = SimSigner::keygen("key-a");
  const Keypair b = SimSigner::keygen("key-b");
  const std::string msg = "msg";
  const Signature sig = SimSigner::sign(a, msg.data(), msg.size());
  EXPECT_FALSE(SimSigner::verify(b.pub, msg.data(), msg.size(), sig));
}

TEST(SimSigner, UnknownPublicKeyFails) {
  PubKey unknown{};
  unknown[0] = 0xFF;
  const std::string msg = "msg";
  Signature sig{};
  EXPECT_FALSE(SimSigner::verify(unknown, msg.data(), msg.size(), sig));
}

TEST(Certificate, SerializeDeserializeRoundTrip) {
  const Keypair issuer = SimSigner::keygen("root-ca");
  const Keypair subject = SimSigner::keygen("leaf");
  const Certificate cert =
      issue_certificate("leaf", subject, "root-ca", issuer);
  const auto blob = cert.serialize();
  const auto parsed = Certificate::deserialize(blob);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->subject, "leaf");
  EXPECT_EQ(parsed->issuer, "root-ca");
  EXPECT_EQ(parsed->subject_key, subject.pub);
  EXPECT_EQ(parsed->signature, cert.signature);
}

TEST(Certificate, DeserializeRejectsTruncatedAndTrailing) {
  const Keypair kp = SimSigner::keygen("x");
  const Certificate cert = issue_certificate("x", kp, "x", kp);
  auto blob = cert.serialize();
  auto truncated = blob;
  truncated.resize(truncated.size() - 5);
  EXPECT_FALSE(Certificate::deserialize(truncated).has_value());
  auto padded = blob;
  padded.push_back(0);
  EXPECT_FALSE(Certificate::deserialize(padded).has_value());
}

struct ChainFixture : ::testing::Test {
  ChainFixture()
      : root(SimSigner::keygen("chain-root")),
        intermediate(SimSigner::keygen("chain-int")),
        leaf(SimSigner::keygen("chain-leaf")) {
    chain.push_back(issue_certificate("leaf", leaf, "int", intermediate));
    chain.push_back(issue_certificate("int", intermediate, "root", root));
  }
  Keypair root, intermediate, leaf;
  std::vector<Certificate> chain;
};

TEST_F(ChainFixture, ValidChainVerifies) {
  EXPECT_TRUE(verify_chain(chain, root.pub, {}));
}

TEST_F(ChainFixture, EmptyChainFails) {
  EXPECT_FALSE(verify_chain({}, root.pub, {}));
}

TEST_F(ChainFixture, WrongRootFails) {
  const Keypair other = SimSigner::keygen("other-root");
  EXPECT_FALSE(verify_chain(chain, other.pub, {}));
}

TEST_F(ChainFixture, RevokedLeafFails) {
  EXPECT_FALSE(verify_chain(chain, root.pub, {leaf.pub}));
}

TEST_F(ChainFixture, RevokedIntermediateFails) {
  EXPECT_FALSE(verify_chain(chain, root.pub, {intermediate.pub}));
}

TEST_F(ChainFixture, UnrelatedRevocationStillVerifies) {
  const Keypair bystander = SimSigner::keygen("bystander");
  EXPECT_TRUE(verify_chain(chain, root.pub, {bystander.pub}));
}

TEST_F(ChainFixture, ReorderedChainFails) {
  std::vector<Certificate> reversed{chain[1], chain[0]};
  EXPECT_FALSE(verify_chain(reversed, root.pub, {}));
}

TEST_F(ChainFixture, ForgedCertificateFails) {
  // An attacker swaps the subject key but cannot re-sign.
  std::vector<Certificate> forged = chain;
  const Keypair attacker = SimSigner::keygen("attacker");
  forged[0].subject_key = attacker.pub;
  EXPECT_FALSE(verify_chain(forged, root.pub, {}));
}

TEST_F(ChainFixture, SelfSignedSingleCertChain) {
  std::vector<Certificate> self{issue_certificate("root", root, "root", root)};
  EXPECT_TRUE(verify_chain(self, root.pub, {}));
}

}  // namespace
}  // namespace confbench::attest

// Tests for the built-in time profile: the five t_* categories must account
// for every charged nanosecond (pre-jitter), and the per-category shares
// must reflect what the workload actually did.
#include <gtest/gtest.h>

#include "core/confbench.h"
#include "tee/registry.h"
#include "vm/exec_context.h"
#include "vm/vfs.h"
#include "wl/faas.h"

namespace confbench::vm {
namespace {

double category_sum(const metrics::PerfCounters& c) {
  return c.t_compute_ns + c.t_memory_ns + c.t_os_ns + c.t_io_ns +
         c.t_other_ns;
}

class BreakdownOnEveryPlatform : public ::testing::TestWithParam<const char*> {
};

TEST_P(BreakdownOnEveryPlatform, CategoriesSumToTheClockExactly) {
  for (const bool secure : {false, true}) {
    ExecutionContext ctx(tee::Registry::instance().create(GetParam()),
                         secure, 1);
    ctx.compute(1e6, 1e5);
    ctx.compute_fp(5e5);
    const std::uint64_t r = ctx.alloc_region(4 << 20);
    ctx.mem_read(r, 4 << 20, 64);
    ctx.mem_write(r, 1 << 20, 64);
    for (int i = 0; i < 50; ++i) ctx.syscall();
    ctx.context_switch();
    ctx.page_fault(10);
    ctx.spawn_process();
    ctx.pipe_transfer(512);
    ctx.block_read(1 << 16);
    ctx.block_flush();
    ctx.net_transfer(2048);
    ctx.sleep(5000);
    ctx.charge(1234.5);
    EXPECT_NEAR(category_sum(ctx.counters()), ctx.now(),
                ctx.now() * 1e-12 + 1e-9)
        << GetParam() << (secure ? " secure" : " normal");
  }
}

INSTANTIATE_TEST_SUITE_P(Tees, BreakdownOnEveryPlatform,
                         ::testing::Values("none", "tdx", "sev-snp", "cca",
                                           "sgx"));

TEST(Breakdown, PureComputeLandsInCompute) {
  ExecutionContext ctx(tee::Registry::instance().create("tdx"), false, 1);
  ctx.compute(1e6);
  EXPECT_GT(ctx.counters().t_compute_ns, 0);
  EXPECT_DOUBLE_EQ(ctx.counters().t_memory_ns, 0);
  EXPECT_DOUBLE_EQ(ctx.counters().t_io_ns, 0);
  EXPECT_DOUBLE_EQ(ctx.counters().t_os_ns, 0);
}

TEST(Breakdown, IoStressIsIoDominatedOnSecureTdx) {
  ExecutionContext ctx(tee::Registry::instance().create("tdx"), true, 1);
  {
    Vfs fs(ctx);
    fs.create("/f");
    fs.write("/f", 4 << 20);
    fs.fsync("/f");
    fs.drop_caches();
    fs.read("/f", 0, 4 << 20);
  }
  const auto& c = ctx.counters();
  EXPECT_GT(c.t_io_ns, c.t_compute_ns);
  EXPECT_GT(c.t_io_ns, 0.4 * category_sum(c));
}

TEST(Breakdown, SyscallStormIsOsDominated) {
  ExecutionContext ctx(tee::Registry::instance().create("sev-snp"), true, 1);
  for (int i = 0; i < 10000; ++i) ctx.syscall();
  const auto& c = ctx.counters();
  EXPECT_GT(c.t_os_ns, 0.99 * category_sum(c));
}

TEST(Breakdown, SurvivesTheHttpWire) {
  core::ConfBench system(core::GatewayConfig::standard());
  system.gateway().upload_all_builtin();
  const auto rec = system.gateway().invoke({.function = "iostress",
                                            .language = "go",
                                            .platform = "tdx",
                                            .secure = true});
  ASSERT_TRUE(rec.ok());
  EXPECT_GT(rec.perf.t_io_ns, 0);
  EXPECT_GT(rec.perf.t_compute_ns, 0);
  // The piggybacked categories still cover the whole (unjittered) run.
  const double sum = category_sum(rec.perf);
  EXPECT_GT(sum, rec.perf.wall_ns * 0.9);
  EXPECT_LT(sum, rec.perf.wall_ns * 1.1);
}

TEST(Breakdown, SecureTdxShiftsShareTowardsIoVsNormal) {
  // The bounce-buffer penalty shows up as a *larger I/O share*, which is
  // exactly how a user of the tool would diagnose the paper's iostress
  // finding from the piggybacked counters alone.
  auto io_share = [](bool secure) {
    ExecutionContext ctx(tee::Registry::instance().create("tdx"), secure, 1);
    Vfs fs(ctx);
    fs.create("/f");
    fs.write("/f", 2 << 20);
    fs.fsync("/f");
    const auto& c = ctx.counters();
    return c.t_io_ns / (c.t_compute_ns + c.t_memory_ns + c.t_os_ns +
                        c.t_io_ns + c.t_other_ns);
  };
  EXPECT_GT(io_share(true), io_share(false));
}

}  // namespace
}  // namespace confbench::vm

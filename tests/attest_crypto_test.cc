#include <gtest/gtest.h>

#include "attest/bytes.h"
#include "attest/hmac.h"
#include "attest/sha256.h"

namespace confbench::attest {
namespace {

// --- SHA-256 against FIPS 180-4 / NIST test vectors ---------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash(std::string(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, PaddingBoundaries) {
  // 55/56/57 bytes straddle the length-field boundary; 63/64/65 straddle
  // the block boundary.
  for (std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u}) {
    const Digest d1 = Sha256::hash(std::string(n, 'y'));
    const Digest d2 = Sha256::hash(std::string(n, 'y'));
    EXPECT_TRUE(digest_equal(d1, d2)) << n;
    EXPECT_FALSE(digest_equal(d1, Sha256::hash(std::string(n + 1, 'y'))))
        << n;
  }
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha256 h;
  h.update(msg.substr(0, 10));
  h.update(msg.substr(10, 20));
  h.update(msg.substr(30));
  EXPECT_TRUE(digest_equal(h.finalize(), Sha256::hash(msg)));
}

TEST(Sha256, HexIsLowercase64Chars) {
  const std::string hex = to_hex(Sha256::hash(std::string("x")));
  EXPECT_EQ(hex.size(), 64u);
  for (char c : hex)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
}

// --- HMAC-SHA256 against RFC 4231 ------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const std::string msg = "Hi There";
  EXPECT_EQ(to_hex(hmac_sha256(key, msg.data(), msg.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const std::string key_s = "Jefe";
  const std::vector<std::uint8_t> key(key_s.begin(), key_s.end());
  const std::string msg = "what do ya want for nothing?";
  EXPECT_EQ(to_hex(hmac_sha256(key, msg.data(), msg.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const std::vector<std::uint8_t> key(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  EXPECT_EQ(to_hex(hmac_sha256(key, msg.data(), msg.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  const std::vector<std::uint8_t> k1(16, 1), k2(16, 2);
  const std::string msg = "same message";
  EXPECT_FALSE(digest_equal(hmac_sha256(k1, msg.data(), msg.size()),
                            hmac_sha256(k2, msg.data(), msg.size())));
}

TEST(DigestEqual, ExactComparison) {
  Digest a{}, b{};
  EXPECT_TRUE(digest_equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(digest_equal(a, b));
}

// --- byte codecs -------------------------------------------------------------------

TEST(Bytes, WriterReaderRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.str("hello");
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, ReaderDetectsTruncation) {
  ByteWriter w;
  w.u32(7);
  const auto buf = w.take();
  ByteReader r(buf);
  r.u32();
  r.u32();  // past the end
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, StringLengthBeyondBufferFails) {
  ByteWriter w;
  w.u32(1000);  // claims a 1000-byte string that is not there
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, ArrayRoundTrip) {
  ByteWriter w;
  std::array<std::uint8_t, 32> arr{};
  for (std::size_t i = 0; i < arr.size(); ++i)
    arr[i] = static_cast<std::uint8_t>(i * 3);
  w.array(arr);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.array<32>(), arr);
  EXPECT_TRUE(r.at_end());
}

}  // namespace
}  // namespace confbench::attest

#include <gtest/gtest.h>

#include "tee/registry.h"
#include "vm/vfs.h"
#include "wl/ub/unixbench.h"

namespace confbench::wl::ub {
namespace {

std::vector<UbResult> run_on(const char* platform, bool secure) {
  vm::ExecutionContext ctx(tee::Registry::instance().create(platform),
                           secure, 1);
  vm::Vfs fs(ctx);
  return run_unixbench(ctx, fs);
}

TEST(UnixBench, ElevenTests) {
  const auto r = run_on("none", false);
  ASSERT_EQ(r.size(), 11u);
  for (const auto& t : r) {
    EXPECT_GT(t.score, 0) << t.name;
    EXPECT_GT(t.baseline, 0) << t.name;
    EXPECT_FALSE(t.unit.empty()) << t.name;
  }
}

TEST(UnixBench, ClassicTestNamesPresent) {
  const auto r = run_on("none", false);
  std::vector<std::string> names;
  for (const auto& t : r) names.push_back(t.name);
  for (const char* expected :
       {"Dhrystone 2 using register variables", "Double-Precision Whetstone",
        "Execl Throughput", "Pipe Throughput",
        "Pipe-based Context Switching", "Process Creation",
        "Shell Scripts (1 concurrent)", "System Call Overhead"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(UnixBench, SparcBaselinesFromTheSuite) {
  const auto r = run_on("none", false);
  // Spot-check the published reference scores (SPARCstation 20-61).
  EXPECT_DOUBLE_EQ(r[0].baseline, 116700.0);  // dhrystone
  EXPECT_DOUBLE_EQ(r[1].baseline, 55.0);      // whetstone
  EXPECT_DOUBLE_EQ(r[2].baseline, 43.0);      // execl
  EXPECT_DOUBLE_EQ(r[6].baseline, 12440.0);   // pipe throughput
  EXPECT_DOUBLE_EQ(r[10].baseline, 15000.0);  // syscall overhead
}

TEST(UnixBench, IndexIsScoreOverBaselineTimesTen) {
  UbResult r{"x", 233400.0, 116700.0, "lps"};
  EXPECT_DOUBLE_EQ(r.index(), 20.0);
}

TEST(UnixBench, AggregateIsGeometricMean) {
  std::vector<UbResult> rs;
  rs.push_back({"a", 10, 10, "lps"});   // index 10
  rs.push_back({"b", 4000, 1000, "lps"});  // index 40
  EXPECT_DOUBLE_EQ(aggregate_index(rs), 20.0);
}

TEST(UnixBench, SecureSlowsEveryExitHeavyTest) {
  const auto nrm = run_on("tdx", false);
  const auto sec = run_on("tdx", true);
  auto index_of = [](const std::vector<UbResult>& rs, const char* name) {
    for (const auto& r : rs)
      if (r.name == name) return r.index();
    ADD_FAILURE() << "missing " << name;
    return 0.0;
  };
  for (const char* t : {"System Call Overhead", "Pipe Throughput",
                        "Pipe-based Context Switching", "Process Creation",
                        "Execl Throughput"}) {
    EXPECT_GT(index_of(nrm, t), index_of(sec, t)) << t;
  }
}

TEST(UnixBench, ComputeTestsNearNative) {
  const auto nrm = run_on("tdx", false);
  const auto sec = run_on("tdx", true);
  // Dhrystone/Whetstone: pure compute, within a few percent.
  for (int i : {0, 1}) {
    const double ratio = nrm[i].index() / sec[i].index();
    EXPECT_GT(ratio, 0.97) << nrm[i].name;
    EXPECT_LT(ratio, 1.08) << nrm[i].name;
  }
}

TEST(UnixBench, AggregateOrderingMatchesFig4) {
  // TDX least overhead, SEV-SNP analogous (slightly worse), CCA worst.
  auto slowdown = [](const char* platform) {
    const double n = aggregate_index(run_on(platform, false));
    const double s = aggregate_index(run_on(platform, true));
    return n / s;
  };
  const double tdx = slowdown("tdx");
  const double snp = slowdown("sev-snp");
  const double cca = slowdown("cca");
  EXPECT_LT(tdx, snp);
  EXPECT_LT(snp, cca * 0.7);
  EXPECT_GT(tdx, 1.1);  // UnixBench overheads exceed ML/DBMS levels
}

TEST(UnixBench, DeterministicPerSeed) {
  const auto a = run_on("sev-snp", true);
  const auto b = run_on("sev-snp", true);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score) << a[i].name;
}

}  // namespace
}  // namespace confbench::wl::ub

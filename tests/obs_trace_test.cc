#include <gtest/gtest.h>

#include <functional>

#include "core/confbench.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sched/cluster.h"

namespace confbench::obs {
namespace {

// --- trace core --------------------------------------------------------------

TEST(Trace, ChargesPartitionTheTimeline) {
  Trace tr(1, "t");
  TraceScope scope(&tr);
  {
    SpanScope outer(Category::kInvoke, "outer");
    charge(Category::kCompute, 100);
    {
      SpanScope inner(Category::kFunction, "inner");
      charge(Category::kMemory, 40);
      charge(Category::kIo, 60);
    }
    charge(Category::kOs, 10);
  }
  EXPECT_DOUBLE_EQ(tr.now(), 210);
  double total = 0;
  for (const auto& stat : tr.charge_totals()) total += stat.total_ns;
  EXPECT_DOUBLE_EQ(total, tr.now());  // exact partition, no time lost
  EXPECT_DOUBLE_EQ(tr.charged_ns(Category::kMemory), 40);
  // The outer span covers the whole timeline; the inner one only its part.
  ASSERT_EQ(tr.spans().size(), 2u);
  EXPECT_DOUBLE_EQ(tr.spans()[0].duration_ns(), 210);
  EXPECT_DOUBLE_EQ(tr.spans()[1].start_ns, 100);
  EXPECT_DOUBLE_EQ(tr.spans()[1].end_ns, 200);
}

TEST(Trace, ChargesAttributeToTheInnermostSpan) {
  Trace tr(1, "t");
  TraceScope scope(&tr);
  SpanScope outer(Category::kInvoke, "outer");
  charge(Category::kCompute, 5);
  {
    SpanScope inner(Category::kFunction, "inner");
    charge(Category::kCompute, 7);
  }
  const Span& o = tr.spans()[0];
  const Span& i = tr.spans()[1];
  const auto idx = static_cast<std::size_t>(Category::kCompute);
  EXPECT_DOUBLE_EQ(o.charges[idx].total_ns, 5);
  EXPECT_DOUBLE_EQ(i.charges[idx].total_ns, 7);
  EXPECT_DOUBLE_EQ(tr.charged_ns(Category::kCompute), 12);
}

TEST(Trace, ChargesOutsideAnySpanLandOnASyntheticRoot) {
  Trace tr(1, "t");
  TraceScope scope(&tr);
  charge(Category::kNetwork, 33);
  ASSERT_EQ(tr.spans().size(), 1u);
  EXPECT_EQ(tr.spans()[0].name, "(trace)");
  EXPECT_DOUBLE_EQ(tr.charged_ns(Category::kNetwork), 33);
}

TEST(Trace, NotesAccumulateWithoutAdvancingTime) {
  Trace tr(1, "t");
  TraceScope scope(&tr);
  SpanScope s(Category::kFunction, "f");
  charge(Category::kMemory, 100);
  note("mem.encryption", 30);
  note("mem.encryption", 12, 2);
  EXPECT_DOUBLE_EQ(tr.now(), 100);  // notes are free
  const auto totals = tr.note_totals();
  ASSERT_EQ(totals.count("mem.encryption"), 1u);
  EXPECT_DOUBLE_EQ(totals.at("mem.encryption").total_ns, 42);
  EXPECT_DOUBLE_EQ(totals.at("mem.encryption").count, 3);
}

TEST(Trace, HooksAreNoOpsWithoutAnAmbientTrace) {
  // No TraceScope installed: every hook must be safely inert.
  EXPECT_EQ(current_trace(), nullptr);
  charge(Category::kCompute, 100);
  note("x", 5);
  SpanScope s(Category::kFunction, "f");
  EXPECT_FALSE(s.active());
}

TEST(Tracer, SequentialIdsAndLookup) {
  Tracer tracer;
  Trace& a = tracer.start_trace("a");
  Trace& b = tracer.start_trace("b");
  EXPECT_EQ(a.id(), 1u);
  EXPECT_EQ(b.id(), 2u);
  EXPECT_EQ(tracer.find(2u), &b);
  EXPECT_EQ(tracer.find(99u), nullptr);
}

// --- registry ----------------------------------------------------------------

TEST(Registry, CountersGaugesHistograms) {
  Registry reg;
  ++reg.counter("a.count");
  reg.counter("a.count") += 4;
  reg.gauge("b.level") = 2.5;
  reg.histogram("c.ns").record(100);
  reg.histogram("c.ns").record(1000);
  EXPECT_EQ(reg.counters().at("a.count"), 5u);
  EXPECT_DOUBLE_EQ(reg.gauges().at("b.level"), 2.5);
  EXPECT_EQ(reg.histograms().at("c.ns").count(), 2u);
}

TEST(Registry, MergeAddsCountersAndHistograms) {
  Registry a, b;
  a.counter("n") = 2;
  b.counter("n") = 3;
  a.gauge("g") = 1;
  b.gauge("g") = 9;
  a.histogram("h").record(10);
  b.histogram("h").record(20);
  a.merge(b);
  EXPECT_EQ(a.counters().at("n"), 5u);
  EXPECT_DOUBLE_EQ(a.gauges().at("g"), 9);  // last writer wins
  EXPECT_EQ(a.histograms().at("h").count(), 2u);
}

TEST(Registry, CsvIsKeyOrderedAndStable) {
  Registry reg;
  reg.counter("zz") = 1;
  reg.counter("aa") = 2;
  const std::string csv = reg.to_csv();
  EXPECT_LT(csv.find("aa"), csv.find("zz"));
  EXPECT_EQ(csv, reg.to_csv());
}

// --- gateway integration -----------------------------------------------------

core::InvocationRecord traced_invoke(core::ConfBench& system, Tracer* tracer,
                                     std::uint64_t trial = 0) {
  return system.gateway().invoke({.function = "iostress",
                                  .language = "go",
                                  .platform = "tdx",
                                  .secure = true,
                                  .trial = trial,
                                  .tracer = tracer});
}

TEST(GatewayTracing, ProducesAWellNestedSpanTree) {
  core::ConfBench system(core::GatewayConfig::standard());
  system.gateway().upload_all_builtin();
  Tracer tracer;
  const auto rec = traced_invoke(system, &tracer);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec.trace_id, 1u);
  const Trace* tr = tracer.find(rec.trace_id);
  ASSERT_NE(tr, nullptr);
  EXPECT_EQ(tr->open_depth(), 0u);  // everything closed
  // Expected structural spans along the path.
  std::map<std::string, int> names;
  for (const Span& s : tr->spans()) ++names[s.name];
  EXPECT_EQ(names["gateway.invoke"], 1);
  EXPECT_EQ(names["gateway.route"], 1);
  EXPECT_EQ(names["transport.attempt0"], 1);
  EXPECT_EQ(names["host.handle"], 1);
  EXPECT_EQ(names["launcher.bootstrap"], 1);
  EXPECT_EQ(names["function.body"], 1);
  // Well-nesting: every child interval lies inside its parent's.
  for (const Span& s : tr->spans()) {
    EXPECT_LE(s.start_ns, s.end_ns);
    if (s.parent == Span::kNoParent) continue;
    const Span& p = tr->spans()[s.parent];
    EXPECT_GE(s.start_ns, p.start_ns) << s.name;
    EXPECT_LE(s.end_ns, p.end_ns) << s.name;
  }
  // The root span covers the full timeline and all charges partition it
  // (up to float summation order across ~1e5 charges).
  double total = 0;
  for (const auto& stat : tr->charge_totals()) total += stat.total_ns;
  EXPECT_NEAR(total, tr->now(), tr->now() * 1e-12);
  EXPECT_GT(tr->charged_ns(Category::kBounce), 0);  // TDX swiotlb visible
  EXPECT_GT(tr->charged_ns(Category::kNetwork), 0);
}

TEST(GatewayTracing, TracingDoesNotPerturbRecords) {
  core::ConfBench plain(core::GatewayConfig::standard());
  core::ConfBench traced(core::GatewayConfig::standard());
  plain.gateway().upload_all_builtin();
  traced.gateway().upload_all_builtin();
  Tracer tracer;
  const auto a = traced_invoke(plain, nullptr, 3);
  const auto b = traced_invoke(traced, &tracer, 3);
  EXPECT_EQ(a.http_status, b.http_status);
  EXPECT_EQ(a.output, b.output);
  EXPECT_DOUBLE_EQ(a.perf.wall_ns, b.perf.wall_ns);
  EXPECT_DOUBLE_EQ(a.perf.instructions, b.perf.instructions);
  EXPECT_DOUBLE_EQ(a.function_ns, b.function_ns);
  EXPECT_DOUBLE_EQ(a.latency_ns, b.latency_ns);
  EXPECT_EQ(a.trace_id, 0u);
  EXPECT_EQ(b.trace_id, 1u);
}

TEST(GatewayTracing, SameSeedSameExportedJson) {
  auto run = [] {
    core::ConfBench system(core::GatewayConfig::standard());
    system.gateway().upload_all_builtin();
    Tracer tracer;
    for (std::uint64_t t = 0; t < 2; ++t)
      (void)traced_invoke(system, &tracer, t);
    return chrome_trace_json(tracer);
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_GT(a.size(), 1000u);
  EXPECT_EQ(a, b);  // byte-identical
}

TEST(GatewayTracing, RegistryCountsInvocationsAndErrors) {
  core::ConfBench system(core::GatewayConfig::standard());
  system.gateway().upload_all_builtin();
  Tracer tracer;
  system.gateway().set_tracer(&tracer);
  (void)traced_invoke(system, nullptr);  // falls back to the gateway tracer
  const auto bad = system.gateway().invoke({.function = "nope",
                                            .language = "lua",
                                            .platform = "tdx",
                                            .secure = true});
  EXPECT_FALSE(bad.ok());
  const Registry& reg = tracer.registry();
  EXPECT_EQ(reg.counters().at("gateway.invocations"), 2u);
  EXPECT_EQ(reg.counters().at("gateway.errors.function_not_found"), 1u);
  EXPECT_EQ(reg.histograms().at("gateway.latency_ns").count(), 1u);
}

TEST(GatewayTracing, DisabledTracerProducesNoTraces) {
  core::ConfBench system(core::GatewayConfig::standard());
  system.gateway().upload_all_builtin();
  Tracer tracer(/*enabled=*/false);
  const auto rec = traced_invoke(system, &tracer);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.trace_id, 0u);
  EXPECT_TRUE(tracer.traces().empty());
}

// --- exports -----------------------------------------------------------------

TEST(Export, ChromeJsonShapeAndCsvHeaders) {
  Tracer tracer;
  Trace& tr = tracer.start_trace("demo");
  {
    TraceScope scope(&tr);
    SpanScope s(Category::kInvoke, "root");
    charge(Category::kCompute, 1000);
    instant("pool.select", "member", "host-a");
  }
  const std::string json = chrome_trace_json(tracer);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("pool.select"), std::string::npos);
  EXPECT_EQ(spans_csv(tracer).rfind(
                "trace,span,parent,category,name,start_ns,dur_ns", 0),
            0u);
  EXPECT_EQ(charges_csv(tracer).rfind(
                "trace,trace_name,category,total_ns,count", 0),
            0u);
}

// --- cluster traces ----------------------------------------------------------

TEST(ClusterTracing, TailAndFleetTracesAreDeterministic) {
  const sched::ServiceModel model{.parallel_ns = 2 * sim::kMs,
                                  .serialized_ns = 1 * sim::kMs,
                                  .jitter_sigma = 0.05,
                                  .cold_start_ns = 200 * sim::kMs,
                                  .bounce_slots = 2};
  auto run = [&](Tracer* tracer) {
    sched::ClusterConfig cfg;
    cfg.rate_rps = 900;
    cfg.requests = 1500;
    cfg.warmup_requests = 100;
    cfg.scaler.max_replicas = 4;
    cfg.tracer = tracer;
    cfg.trace_tail = 3;
    return sched::ClusterExperiment(cfg).run_with_model(model);
  };

  Tracer t1, t2;
  const auto r1 = run(&t1);
  const auto r2 = run(&t2);
  EXPECT_EQ(chrome_trace_json(t1), chrome_trace_json(t2));

  // Tracing must not change the simulation itself.
  const auto r0 = run(nullptr);
  EXPECT_EQ(r0.completed, r1.completed);
  EXPECT_EQ(r0.rejected, r1.rejected);
  EXPECT_DOUBLE_EQ(r0.makespan_ns, r1.makespan_ns);
  EXPECT_DOUBLE_EQ(r0.latency.p99(), r1.latency.p99());

  // 3 tail traces + 1 fleet trace; tail trees are contiguous partitions of
  // the request interval (queue wait, service, bounce wait, bounce).
  ASSERT_EQ(t1.traces().size(), 4u);
  int tails = 0;
  for (const Trace& tr : t1.traces()) {
    if (tr.name().find("/tail#") == std::string::npos) continue;
    ++tails;
    ASSERT_GE(tr.spans().size(), 2u);
    const Span& root = tr.spans()[0];
    EXPECT_EQ(root.name, "request");
    sim::Ns cursor = root.start_ns;
    for (std::size_t i = 1; i < tr.spans().size(); ++i) {
      EXPECT_DOUBLE_EQ(tr.spans()[i].start_ns, cursor);
      cursor = tr.spans()[i].end_ns;
    }
    EXPECT_DOUBLE_EQ(cursor, root.end_ns);
  }
  EXPECT_EQ(tails, 3);
  // The fleet trace shows cold starts (the load forces scale-up) and the
  // registry carries the run aggregates.
  const Trace& fleet = t1.traces().back();
  EXPECT_NE(fleet.name().find("/fleet"), std::string::npos);
  EXPECT_GT(fleet.spans().size(), 0u);
  EXPECT_GT(fleet.instants().size(), 0u);
  EXPECT_EQ(t1.registry().counters().at("cluster.offered"), r1.offered);
}

}  // namespace
}  // namespace confbench::obs

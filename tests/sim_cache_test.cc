#include "sim/cache.h"

#include <gtest/gtest.h>

namespace confbench::sim {
namespace {

CacheConfig tiny_config() {
  // 4-way 1-KiB L1 (16 sets? no: 1024/64/4 = 4 sets), small L2/LLC so
  // eviction paths are easy to exercise.
  CacheConfig cfg;
  cfg.l1 = {1024, 4, 64};
  cfg.l2 = {4096, 4, 64};
  cfg.llc = {16384, 4, 64};
  cfg.sample_limit = 1 << 20;  // exact simulation in unit tests
  return cfg;
}

TEST(CacheSim, FirstAccessMissesThenHits) {
  CacheSim cache(tiny_config());
  const CacheCounts first = cache.access(0x1000, false);
  EXPECT_EQ(first.dram_fills, 1);
  EXPECT_EQ(first.l1_hits, 0);
  const CacheCounts second = cache.access(0x1000, false);
  EXPECT_EQ(second.l1_hits, 1);
  EXPECT_EQ(second.dram_fills, 0);
}

TEST(CacheSim, SubLineAccessesShareALine) {
  CacheSim cache(tiny_config());
  cache.access(0x2000, false);
  const CacheCounts c = cache.access(0x2010, false);  // same 64B line
  EXPECT_EQ(c.l1_hits, 1);
}

TEST(CacheSim, DistinctLinesDistinctFills) {
  CacheSim cache(tiny_config());
  CacheCounts total;
  for (int i = 0; i < 8; ++i) total += cache.access(0x4000 + i * 64, false);
  EXPECT_EQ(total.dram_fills, 8);
}

TEST(CacheSim, AssociativityConflictEvicts) {
  CacheSim cache(tiny_config());
  // L1: 4 sets, 4 ways. Addresses with identical set index, 5 distinct tags:
  // the 5th must evict the LRU (first) line.
  const std::uint64_t set_stride = 4 * 64;  // sets * line
  for (int i = 0; i < 5; ++i)
    cache.access(0x10000 + i * set_stride, false);
  // The 16-set L2 spreads these addresses across different sets, so the
  // line evicted from L1 is still resident in L2.
  const CacheCounts c = cache.access(0x10000, false);
  EXPECT_EQ(c.l1_hits, 0);
  EXPECT_EQ(c.l2_hits, 1);
}

TEST(CacheSim, LruKeepsRecentlyUsed) {
  CacheSim cache(tiny_config());
  const std::uint64_t set_stride = 4 * 64;
  for (int i = 0; i < 4; ++i) cache.access(0x20000 + i * set_stride, false);
  cache.access(0x20000, false);  // refresh line 0
  cache.access(0x20000 + 4 * set_stride, false);  // evicts line 1, not 0
  EXPECT_EQ(cache.access(0x20000, false).l1_hits, 1);
  EXPECT_EQ(cache.access(0x20000 + 1 * set_stride, false).l1_hits, 0);
}

TEST(CacheSim, DirtyEvictionCountsWriteback) {
  CacheConfig cfg = tiny_config();
  CacheSim cache(cfg);
  // Write a working set far larger than the whole hierarchy, then stream
  // over a second one: dirty victims must be written back.
  cache.access_range({0, 1 << 20, 64, /*write=*/true});
  const CacheCounts c =
      cache.access_range({1 << 24, 1 << 20, 64, /*write=*/false});
  EXPECT_GT(c.writebacks, 0);
}

TEST(CacheSim, CleanEvictionNoWriteback) {
  CacheSim cache(tiny_config());
  cache.access_range({0, 1 << 20, 64, /*write=*/false});
  const CacheCounts c =
      cache.access_range({1 << 24, 1 << 20, 64, /*write=*/false});
  EXPECT_EQ(c.writebacks, 0);
}

TEST(CacheSim, RangeCountsTouches) {
  CacheSim cache(tiny_config());
  const CacheCounts c = cache.access_range({0, 64 * 10, 64, false});
  EXPECT_EQ(c.accesses, 10);
  EXPECT_EQ(c.dram_fills, 10);
}

TEST(CacheSim, SubLineStrideFoldsIntoL1Hits) {
  CacheSim cache(tiny_config());
  // 8-byte stride over 640 bytes: 80 touches, 10 lines.
  const CacheCounts c = cache.access_range({0, 640, 8, false});
  EXPECT_EQ(c.accesses, 80);
  EXPECT_EQ(c.dram_fills, 10);
  EXPECT_EQ(c.l1_hits, 70);
}

TEST(CacheSim, EmptyRangeIsFree) {
  CacheSim cache(tiny_config());
  const CacheCounts c = cache.access_range({0, 0, 64, false});
  EXPECT_EQ(c.accesses, 0);
}

TEST(CacheSim, WorkingSetFitsInLlcStopsMissing) {
  CacheSim cache(tiny_config());
  const RangeAccess pass{0, 8192, 64, false};  // half the LLC
  cache.access_range(pass);
  const CacheCounts warm = cache.access_range(pass);
  EXPECT_EQ(warm.dram_fills, 0);
}

TEST(CacheSim, MissRateGrowsWithWorkingSet) {
  // Property: repeated passes over larger working sets never hit more.
  double prev_hit_rate = 1.1;
  for (std::uint64_t ws : {1024ULL, 4096ULL, 16384ULL, 1ULL << 20}) {
    CacheSim cache(tiny_config());
    cache.access_range({0, ws, 64, false});  // warm
    const CacheCounts c = cache.access_range({0, ws, 64, false});
    const double hit_rate =
        (c.l1_hits + c.l2_hits + c.llc_hits) / c.accesses;
    EXPECT_LE(hit_rate, prev_hit_rate + 1e-9) << "ws=" << ws;
    prev_hit_rate = hit_rate;
  }
}

TEST(CacheSim, SamplingApproximatesExactCounts) {
  CacheConfig exact_cfg = tiny_config();
  CacheConfig sampled_cfg = tiny_config();
  sampled_cfg.sample_limit = 512;
  CacheSim exact(exact_cfg), sampled(sampled_cfg);
  const RangeAccess big{0, 4 << 20, 64, false};  // 65536 touches
  const CacheCounts e = exact.access_range(big);
  const CacheCounts s = sampled.access_range(big);
  EXPECT_NEAR(s.accesses, e.accesses, e.accesses * 0.01);
  // A cold streaming pass misses everywhere in both modes.
  EXPECT_NEAR(s.dram_fills / s.accesses, e.dram_fills / e.accesses, 0.05);
}

TEST(CacheSim, TotalsAccumulateAndReset) {
  CacheSim cache(tiny_config());
  cache.access(0, false);
  cache.access(64, false);
  EXPECT_EQ(cache.totals().accesses, 2);
  cache.reset_counts();
  EXPECT_EQ(cache.totals().accesses, 0);
}

TEST(CacheSim, FlushColdsTheCache) {
  CacheSim cache(tiny_config());
  cache.access(0x77, false);
  cache.flush();
  EXPECT_EQ(cache.access(0x77, false).dram_fills, 1);
}

TEST(CacheSim, DefaultGeometryIsSane) {
  CacheSim cache;
  EXPECT_EQ(cache.config().l1.line_bytes, 64u);
  EXPECT_GT(cache.config().llc.size_bytes, cache.config().l2.size_bytes);
  EXPECT_GT(cache.config().l2.size_bytes, cache.config().l1.size_bytes);
}

// Parameterised sweep: all strides produce exactly the expected number of
// line-granular fills on a cold cache.
class StrideSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrideSweep, ColdFillsMatchLineMath) {
  const std::uint64_t stride = GetParam();
  CacheSim cache(tiny_config());
  const std::uint64_t bytes = 1 << 20;  // exceeds the hierarchy
  const CacheCounts c = cache.access_range({0, bytes, stride, false});
  const std::uint64_t touches = (bytes + stride - 1) / stride;
  std::uint64_t expected_lines;
  if (stride < 64) {
    expected_lines = (bytes + 63) / 64;
  } else {
    expected_lines = touches;
  }
  EXPECT_DOUBLE_EQ(c.accesses, static_cast<double>(touches));
  EXPECT_DOUBLE_EQ(c.dram_fills, static_cast<double>(expected_lines));
}

INSTANTIATE_TEST_SUITE_P(Strides, StrideSweep,
                         ::testing::Values(8, 16, 32, 64, 128, 256, 4096));

}  // namespace
}  // namespace confbench::sim

#include <gtest/gtest.h>

#include "core/launcher.h"
#include "rt/gc.h"
#include "rt/heap.h"
#include "rt/profile.h"
#include "rt/runtime.h"
#include "tee/registry.h"

namespace confbench::rt {
namespace {

vm::ExecutionContext make_ctx(const char* platform = "tdx",
                              bool secure = false, std::uint64_t seed = 1) {
  return vm::ExecutionContext(tee::Registry::instance().create(platform),
                              secure, seed);
}

// --- profiles -------------------------------------------------------------------

TEST(Profiles, SevenBuiltinLanguages) {
  const auto& ps = builtin_profiles();
  ASSERT_EQ(ps.size(), 7u);
  const char* expected[] = {"python", "node", "ruby",
                            "lua",    "luajit", "go", "wasm"};
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(ps[i].name, expected[i]);
}

TEST(Profiles, FindByName) {
  EXPECT_NE(find_profile("python"), nullptr);
  EXPECT_NE(find_profile("wasm"), nullptr);
  EXPECT_EQ(find_profile("cobol"), nullptr);
}

TEST(Profiles, PaperVersionsPerTestbed) {
  // §IV-A lists per-testbed interpreter versions.
  const auto* py = find_profile("python");
  EXPECT_EQ(py->version_for(tee::TeeKind::kTdx), "3.12.3");
  EXPECT_EQ(py->version_for(tee::TeeKind::kSevSnp), "3.10.12");
  EXPECT_EQ(py->version_for(tee::TeeKind::kCca), "3.11.8");
  const auto* node = find_profile("node");
  EXPECT_EQ(node->version_for(tee::TeeKind::kCca), "20.12.2");
  const auto* lua = find_profile("lua");
  EXPECT_EQ(lua->version_for(tee::TeeKind::kTdx), "5.4.6");
}

TEST(Profiles, ComplexityOrderingHolds) {
  // The traits that burden TEEs must rank heavy > light (§IV-B).
  const auto* py = find_profile("python");
  const auto* lua = find_profile("lua");
  const auto* go = find_profile("go");
  const auto* wasm = find_profile("wasm");
  EXPECT_GT(py->op_expansion, lua->op_expansion);
  EXPECT_GT(lua->op_expansion, go->op_expansion);
  EXPECT_GT(py->box_bytes_per_op, lua->box_bytes_per_op);
  EXPECT_GT(py->alloc_fault_rate, go->alloc_fault_rate);
  EXPECT_GT(py->mem_inflation, wasm->mem_inflation);
}

TEST(Profiles, JitRuntimesConfigured) {
  EXPECT_TRUE(find_profile("node")->jit);
  EXPECT_TRUE(find_profile("luajit")->jit);
  EXPECT_FALSE(find_profile("python")->jit);
  EXPECT_LT(find_profile("luajit")->jit_expansion,
            find_profile("luajit")->op_expansion);
}

// --- heap + GC -------------------------------------------------------------------

TEST(SimHeap, AllocationsTracked) {
  auto ctx = make_ctx();
  SimHeap heap(ctx);
  const std::uint64_t a = heap.allocate(100);
  const std::uint64_t b = heap.allocate(100);
  EXPECT_NE(a, b);
  EXPECT_GE(heap.live_bytes(), 200u);
  EXPECT_GE(heap.allocated_since_gc(), 200u);
  EXPECT_GT(ctx.counters().alloc_bytes, 0);
}

TEST(SimHeap, ReleaseReducesLive) {
  auto ctx = make_ctx();
  SimHeap heap(ctx);
  heap.allocate(1000);
  heap.release(600);
  EXPECT_EQ(heap.live_bytes(), 400u);
  heap.release(10000);  // over-release clamps at zero
  EXPECT_EQ(heap.live_bytes(), 0u);
}

TEST(SimHeap, SegmentRolloverGivesFreshAddresses) {
  auto ctx = make_ctx();
  SimHeap heap(ctx, /*segment_bytes=*/64 * 1024);
  const std::uint64_t first_base = heap.segment_base();
  heap.allocate(60 * 1024);
  heap.allocate(60 * 1024);  // forces a new segment
  EXPECT_NE(heap.segment_base(), first_base);
}

TEST(MarkSweepGc, TriggersOnNurseryOverflow) {
  auto ctx = make_ctx();
  SimHeap heap(ctx);
  RuntimeProfile profile;
  profile.gc_nursery_bytes = 32 * 1024;
  profile.gc_survivor_fraction = 0.25;
  MarkSweepGc gc(heap, profile);
  EXPECT_FALSE(gc.maybe_collect());  // nothing allocated yet
  heap.allocate(64 * 1024);
  EXPECT_TRUE(gc.maybe_collect());
  EXPECT_EQ(gc.collections(), 1u);
  EXPECT_EQ(heap.allocated_since_gc(), 0u);
  EXPECT_DOUBLE_EQ(ctx.counters().gc_cycles, 1);
}

TEST(MarkSweepGc, NoCollectorWhenNurseryZero) {
  auto ctx = make_ctx();
  SimHeap heap(ctx);
  RuntimeProfile no_gc;  // wasm-style
  no_gc.gc_nursery_bytes = 0;
  MarkSweepGc gc(heap, no_gc);
  heap.allocate(10 << 20);
  EXPECT_FALSE(gc.maybe_collect());
}

TEST(MarkSweepGc, SurvivorsRemainLive) {
  auto ctx = make_ctx();
  SimHeap heap(ctx);
  RuntimeProfile profile;
  profile.gc_nursery_bytes = 1024;
  profile.gc_survivor_fraction = 0.5;
  MarkSweepGc gc(heap, profile);
  heap.allocate(4096);
  gc.collect();
  EXPECT_NEAR(static_cast<double>(heap.live_bytes()), 2048, 8);
}

TEST(MarkSweepGc, CollectionChargesMemoryTraffic) {
  auto ctx = make_ctx();
  SimHeap heap(ctx);
  RuntimeProfile profile;
  profile.gc_nursery_bytes = 1;
  MarkSweepGc gc(heap, profile);
  heap.allocate(1 << 20);
  const double refs_before = ctx.counters().cache_references;
  gc.collect();
  EXPECT_GT(ctx.counters().cache_references, refs_before);
}

// --- RtContext --------------------------------------------------------------------

TEST(RtContext, OpExpandsInstructions) {
  auto ctx = make_ctx();
  {
    RtContext env(ctx, *find_profile("python"));
    env.op(1000);
  }
  // 28x dispatch expansion dominates the instruction count.
  EXPECT_GE(ctx.counters().instructions, 28000);
}

TEST(RtContext, HeavierRuntimeBurnsMoreTimeForSameWork) {
  auto t_for = [](const char* lang) {
    auto ctx = make_ctx();
    RtContext env(ctx, *find_profile(lang));
    env.op(100000, 10000);
    return ctx.now();
  };
  EXPECT_GT(t_for("python"), t_for("lua"));
  EXPECT_GT(t_for("lua"), t_for("go"));
}

TEST(RtContext, JitWarmupMakesLaterOpsCheaper) {
  auto ctx = make_ctx();
  RtContext env(ctx, *find_profile("luajit"));
  const auto* p = find_profile("luajit");
  env.op(p->jit_warmup_ops * 2);  // fully warm
  const double t0 = ctx.now();
  env.op(100000);
  const double warm_cost = ctx.now() - t0;

  auto ctx2 = make_ctx();
  RtContext cold(ctx2, *p);
  const double t1 = ctx2.now();
  cold.op(100000);
  const double cold_cost = ctx2.now() - t1;
  EXPECT_LT(warm_cost, cold_cost);
}

TEST(RtContext, BoxingAllocatesProportionally) {
  auto run = [](const char* lang) {
    auto ctx = make_ctx();
    RtContext env(ctx, *find_profile(lang));
    env.op(1e6);
    return ctx.counters().alloc_bytes;
  };
  EXPECT_GT(run("python"), run("lua"));
  EXPECT_GT(run("lua"), run("wasm"));
}

TEST(RtContext, SustainedAllocationTriggersGc) {
  auto ctx = make_ctx();
  RtContext env(ctx, *find_profile("python"));
  for (int i = 0; i < 40; ++i) env.alloc(1 << 20);
  EXPECT_GT(env.gc_collections(), 0u);
  EXPECT_GT(ctx.counters().gc_cycles, 0);
}

TEST(RtContext, MemInflationGrowsTraffic) {
  auto traffic = [](const char* lang) {
    auto ctx = make_ctx();
    RtContext env(ctx, *find_profile(lang));
    const std::uint64_t buf = env.alloc(1 << 20);
    env.read(buf, 1 << 20, 64);
    return ctx.counters().cache_references;
  };
  EXPECT_GT(traffic("python"), 2.5 * traffic("wasm"));
}

TEST(RtContext, SyscallAmplification) {
  auto ctx = make_ctx();
  {
    RtContext env(ctx, *find_profile("python"));  // amplification 1.35
    for (int i = 0; i < 100; ++i) env.syscall();
  }
  EXPECT_NEAR(ctx.counters().syscalls, 135, 1);
}

TEST(RtContext, PrintFlushesInBatches) {
  auto ctx = make_ctx();
  RtContext env(ctx, *find_profile("go"));
  const double sys0 = ctx.counters().syscalls;
  for (int i = 0; i < 64; ++i) env.print("log line " + std::to_string(i));
  // 64 lines at a 16-line flush interval: 4 flushes, each a write + pipe.
  EXPECT_GE(ctx.counters().syscalls - sys0, 4);
  EXPECT_LT(ctx.counters().syscalls - sys0, 64);
}

TEST(RtContext, FilesystemAccessible) {
  auto ctx = make_ctx();
  RtContext env(ctx, *find_profile("lua"));
  env.fs().mkdir("/w");
  EXPECT_EQ(env.fs().write("/w/f", 128), 128u);
  EXPECT_EQ(env.fs().read("/w/f", 0, 128), 128u);
}

TEST(RtContext, AllocFaultsFollowProfileRate) {
  auto faults = [](const char* lang) {
    auto ctx = make_ctx();
    RtContext env(ctx, *find_profile(lang));
    const double before = ctx.counters().page_faults;
    env.alloc(8 << 20);
    return ctx.counters().page_faults - before;
  };
  EXPECT_GT(faults("python"), faults("go"));
}

// --- native profile ------------------------------------------------------------------

TEST(NativeProfile, PassThrough) {
  const auto& native = core::native_profile();
  EXPECT_DOUBLE_EQ(native.op_expansion, 1.0);
  EXPECT_DOUBLE_EQ(native.box_bytes_per_op, 0.0);
  EXPECT_DOUBLE_EQ(native.mem_inflation, 1.0);
  auto ctx = make_ctx();
  RtContext env(ctx, native);
  env.op(1000);
  EXPECT_NEAR(ctx.counters().instructions, 1000, 1);
}

}  // namespace
}  // namespace confbench::rt

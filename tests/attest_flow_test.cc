#include <gtest/gtest.h>

#include "attest/pcs.h"
#include "attest/quote.h"
#include "attest/report.h"
#include "attest/service.h"
#include "tee/registry.h"

namespace confbench::attest {
namespace {

// --- TDX quote flow ------------------------------------------------------------

struct TdxFlow : ::testing::Test {
  TdxFlow() : gen("test-platform") {
    meas = golden_td_measurements("img-1");
    nonce = Sha256::hash(std::string("nonce"));
    policy.expected = meas;
    policy.expected_report_data = nonce;
    policy.min_tcb_level = 5;
  }
  TdxQuoteGenerator gen;
  TdMeasurements meas;
  Digest nonce;
  TdxVerifyPolicy policy;
};

TEST_F(TdxFlow, GenerateAndVerify) {
  const TdxQuote quote = gen.generate(meas, nonce);
  const auto v = verify_tdx_quote(quote, gen.intel_root(), {}, policy);
  EXPECT_TRUE(v.ok) << v.failure;
}

TEST_F(TdxFlow, SerializationRoundTrip) {
  const TdxQuote quote = gen.generate(meas, nonce);
  const auto wire = quote.serialize();
  const auto parsed = TdxQuote::deserialize(wire);
  ASSERT_TRUE(parsed.has_value());
  const auto v = verify_tdx_quote(*parsed, gen.intel_root(), {}, policy);
  EXPECT_TRUE(v.ok) << v.failure;
}

TEST_F(TdxFlow, EveryBitFlipBreaksTheQuote) {
  const TdxQuote quote = gen.generate(meas, nonce);
  const auto wire = quote.serialize();
  // Flip one bit in several structurally different places.
  for (const std::size_t pos :
       {std::size_t{10}, wire.size() / 3, wire.size() / 2,
        wire.size() - 20}) {
    auto tampered = wire;
    tampered[pos] ^= 0x10;
    const auto parsed = TdxQuote::deserialize(tampered);
    if (!parsed.has_value()) continue;  // framing destroyed: also fine
    const auto v = verify_tdx_quote(*parsed, gen.intel_root(), {}, policy);
    EXPECT_FALSE(v.ok) << "byte " << pos;
  }
}

TEST_F(TdxFlow, MeasurementMismatchRejected) {
  TdMeasurements wrong = meas;
  wrong.rtmr[3].extend("unexpected event");
  const TdxQuote quote = gen.generate(wrong, nonce);
  const auto v = verify_tdx_quote(quote, gen.intel_root(), {}, policy);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.failure, "measurement mismatch");
}

TEST_F(TdxFlow, StaleNonceRejected) {
  const TdxQuote quote = gen.generate(meas, Sha256::hash(std::string("old")));
  const auto v = verify_tdx_quote(quote, gen.intel_root(), {}, policy);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.failure, "report_data (nonce) mismatch");
}

TEST_F(TdxFlow, TcbBelowPolicyRejected) {
  TdxQuote quote = gen.generate(meas, nonce);
  policy.min_tcb_level = quote.tcb_level + 1;
  const auto v = verify_tdx_quote(quote, gen.intel_root(), {}, policy);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.failure, "TCB level below policy");
}

TEST_F(TdxFlow, RevokedPckRejected) {
  const TdxQuote quote = gen.generate(meas, nonce);
  ASSERT_GE(quote.pck_chain.size(), 2u);
  const PubKey pck = quote.pck_chain[1].subject_key;
  const auto v = verify_tdx_quote(quote, gen.intel_root(), {pck}, policy);
  EXPECT_FALSE(v.ok);
}

TEST_F(TdxFlow, WrongTeeTypeRejected) {
  TdxQuote quote = gen.generate(meas, nonce);
  quote.tee_type = 0x00;  // SGX, not TDX
  const auto v = verify_tdx_quote(quote, gen.intel_root(), {}, policy);
  EXPECT_FALSE(v.ok);
}

// --- SNP report flow ---------------------------------------------------------------

struct SnpFlow : ::testing::Test {
  SnpFlow() : gen("test-chip") {
    meas = golden_snp_measurements("img-1");
    nonce = Sha256::hash(std::string("snp-nonce"));
    policy.expected = meas;
    policy.expected_report_data = nonce;
  }
  SnpReportGenerator gen;
  SnpMeasurements meas;
  Digest nonce;
  SnpVerifyPolicy policy;
};

TEST_F(SnpFlow, GenerateAndVerify) {
  const SnpReport report = gen.generate(meas, nonce);
  const auto v =
      verify_snp_report(report, gen.cert_chain(), gen.ark(), policy);
  EXPECT_TRUE(v.ok) << v.failure;
}

TEST_F(SnpFlow, SerializationRoundTrip) {
  const SnpReport report = gen.generate(meas, nonce);
  const auto parsed = SnpReport::deserialize(report.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(
      verify_snp_report(*parsed, gen.cert_chain(), gen.ark(), policy).ok);
}

TEST_F(SnpFlow, TamperedReportRejected) {
  auto wire = gen.generate(meas, nonce).serialize();
  wire[wire.size() / 2] ^= 0x04;
  const auto parsed = SnpReport::deserialize(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(
      verify_snp_report(*parsed, gen.cert_chain(), gen.ark(), policy).ok);
}

TEST_F(SnpFlow, LaunchDigestMismatchRejected) {
  SnpMeasurements wrong = meas;
  wrong.launch_digest[0] ^= 1;
  const SnpReport report = gen.generate(wrong, nonce);
  const auto v =
      verify_snp_report(report, gen.cert_chain(), gen.ark(), policy);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.failure, "launch measurement mismatch");
}

TEST_F(SnpFlow, TcbPolicyEnforced) {
  SnpReport report = gen.generate(meas, nonce);
  policy.min_tcb = report.platform_tcb + 1;
  EXPECT_FALSE(
      verify_snp_report(report, gen.cert_chain(), gen.ark(), policy).ok);
}

TEST_F(SnpFlow, WrongArkRejected) {
  const SnpReport report = gen.generate(meas, nonce);
  const Keypair fake = SimSigner::keygen("fake-ark");
  EXPECT_FALSE(
      verify_snp_report(report, gen.cert_chain(), fake.pub, policy).ok);
}

// --- measurement registers -----------------------------------------------------------

TEST(Measurements, ExtendIsOrderSensitive) {
  MeasurementRegister a, b;
  a.extend("first");
  a.extend("second");
  b.extend("second");
  b.extend("first");
  EXPECT_NE(a.value(), b.value());
}

TEST(Measurements, GoldenValuesStablePerImage) {
  EXPECT_EQ(golden_td_measurements("img").compose(),
            golden_td_measurements("img").compose());
  EXPECT_NE(golden_td_measurements("img-a").compose(),
            golden_td_measurements("img-b").compose());
  EXPECT_NE(golden_snp_measurements("img").compose(),
            golden_realm_measurements("img").compose());
}

// --- timed end-to-end service (Fig. 5 semantics) --------------------------------------

struct ServiceFlow : ::testing::Test {
  AttestationService service;
  tee::PlatformPtr tdx = tee::Registry::instance().create("tdx");
  tee::PlatformPtr snp = tee::Registry::instance().create("sev-snp");
  tee::PlatformPtr cca = tee::Registry::instance().create("cca");
};

TEST_F(ServiceFlow, TdxRoundSucceeds) {
  const auto t = service.run_tdx(*tdx, 0);
  EXPECT_TRUE(t.ok) << t.failure;
  EXPECT_GT(t.attest_ns, 0);
  EXPECT_GT(t.check_ns, 0);
}

TEST_F(ServiceFlow, SnpRoundSucceeds) {
  const auto t = service.run_snp(*snp, 0);
  EXPECT_TRUE(t.ok) << t.failure;
}

TEST_F(ServiceFlow, SnpFasterThanTdxInBothPhases) {
  double tdx_attest = 0, tdx_check = 0, snp_attest = 0, snp_check = 0;
  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    const auto t = service.run_tdx(*tdx, trial);
    const auto s = service.run_snp(*snp, trial);
    tdx_attest += t.attest_ns;
    tdx_check += t.check_ns;
    snp_attest += s.attest_ns;
    snp_check += s.check_ns;
  }
  EXPECT_GT(tdx_attest, snp_attest);
  EXPECT_GT(tdx_check, snp_check);
  // TDX verification is dominated by PCS network round trips.
  EXPECT_GT(tdx_check, 4 * tdx_attest);
}

TEST_F(ServiceFlow, TamperedEvidenceFailsBothFlows) {
  EXPECT_FALSE(service.run_tdx(*tdx, 1, /*tamper=*/true).ok);
  EXPECT_FALSE(service.run_snp(*snp, 1, /*tamper=*/true).ok);
}

TEST_F(ServiceFlow, CcaUnsupported) {
  const auto t = service.run_tdx(*cca, 0);
  EXPECT_FALSE(t.ok);
  EXPECT_NE(t.failure.find("not supported"), std::string::npos);
}

TEST_F(ServiceFlow, TimingDeterministicPerTrial) {
  AttestationService s2;
  EXPECT_DOUBLE_EQ(service.run_tdx(*tdx, 3).check_ns,
                   s2.run_tdx(*tdx, 3).check_ns);
  EXPECT_NE(service.run_tdx(*tdx, 3).check_ns,
            service.run_tdx(*tdx, 4).check_ns);
}

TEST_F(ServiceFlow, PcsRevocationBreaksVerification) {
  AttestationService fresh;
  ASSERT_TRUE(fresh.run_tdx(*tdx, 0).ok);
  // Revoke the platform's PCK via the PCS: subsequent checks fail.
  const auto& chain = fresh.tdx_generator();
  TdxQuote quote = chain.generate(golden_td_measurements("ubuntu-24.04-guest"),
                                  Sha256::hash(std::string("n")));
  ASSERT_GE(quote.pck_chain.size(), 2u);
  fresh.pcs().revoke(quote.pck_chain[1].subject_key);
  EXPECT_FALSE(fresh.run_tdx(*tdx, 1).ok);
}

}  // namespace
}  // namespace confbench::attest

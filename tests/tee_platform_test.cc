#include "tee/platform.h"

#include <gtest/gtest.h>

#include "tee/cca.h"
#include "tee/colocation.h"
#include "tee/sgx.h"
#include "tee/none.h"
#include "tee/registry.h"
#include "tee/sev_snp.h"
#include "tee/tdx.h"

namespace confbench::tee {
namespace {

TEST(Registry, BuiltinPlatformsPresent) {
  const auto names = Registry::instance().names();
  ASSERT_GE(names.size(), 5u);
  for (const char* expected : {"none", "tdx", "sev-snp", "cca", "sgx"}) {
    bool found = false;
    for (const auto& n : names) found |= (n == expected);
    EXPECT_TRUE(found) << expected;
  }
}

TEST(Registry, CreateByName) {
  auto tdx = Registry::instance().create("tdx");
  ASSERT_NE(tdx, nullptr);
  EXPECT_EQ(tdx->kind(), TeeKind::kTdx);
  EXPECT_EQ(Registry::instance().create("no-such-tee"), nullptr);
}

TEST(Registry, RegisterCustomPlatform) {
  Registry::instance().register_platform(
      "tdx-test-custom", [] { return std::make_shared<TdxPlatform>(); });
  EXPECT_NE(Registry::instance().create("tdx-test-custom"), nullptr);
}

TEST(TeeKind, Names) {
  EXPECT_EQ(to_string(TeeKind::kNone), "none");
  EXPECT_EQ(to_string(TeeKind::kTdx), "tdx");
  EXPECT_EQ(to_string(TeeKind::kSevSnp), "sev-snp");
  EXPECT_EQ(to_string(TeeKind::kCca), "cca");
}

TEST(ExitReason, AllNamed) {
  for (int i = 0; i < static_cast<int>(ExitReason::kCount); ++i) {
    EXPECT_NE(to_string(static_cast<ExitReason>(i)), "?");
  }
}

class AllPlatforms : public ::testing::TestWithParam<const char*> {
 protected:
  PlatformPtr platform() const {
    auto p = Registry::instance().create(GetParam());
    EXPECT_NE(p, nullptr);
    return p;
  }
};

TEST_P(AllPlatforms, SecureVmNeverCheaperThanNormal) {
  auto p = platform();
  const auto& n = p->costs(false);
  const auto& s = p->costs(true);
  EXPECT_GE(s.mem.enc_extra_ns, n.mem.enc_extra_ns);
  EXPECT_GE(s.exit.secure_exit_extra_ns, n.exit.secure_exit_extra_ns);
  EXPECT_GE(s.exit.page_fault_extra_ns, n.exit.page_fault_extra_ns);
  EXPECT_GE(s.io.bounce_fixed_ns, n.io.bounce_fixed_ns);
  EXPECT_GE(s.io.bounce_byte_ns, n.io.bounce_byte_ns);
}

TEST_P(AllPlatforms, NormalVmHasNoTeeCharges) {
  auto p = platform();
  const auto& n = p->costs(false);
  EXPECT_DOUBLE_EQ(n.mem.enc_extra_ns, 0.0);
  EXPECT_DOUBLE_EQ(n.mem.integrity_extra_ns, 0.0);
  EXPECT_DOUBLE_EQ(n.exit.secure_exit_extra_ns, 0.0);
  EXPECT_DOUBLE_EQ(n.io.bounce_fixed_ns, 0.0);
}

TEST_P(AllPlatforms, SaneBasics) {
  auto p = platform();
  for (bool secure : {false, true}) {
    const auto& c = p->costs(secure);
    EXPECT_GT(c.cpu.freq_ghz, 0);
    EXPECT_GT(c.cpu.cpi, 0);
    EXPECT_GE(c.cpu.sim_slowdown, 1.0);
    EXPECT_GT(c.mem.dram_lat_ns, 0);
    EXPECT_GT(c.exit.syscall_ns, 0);
    EXPECT_GE(c.trial_jitter_sigma, 0);
  }
  EXPECT_FALSE(p->name().empty());
  EXPECT_FALSE(p->exit_primitive().empty());
}

INSTANTIATE_TEST_SUITE_P(Builtin, AllPlatforms,
                         ::testing::Values("none", "tdx", "sev-snp", "cca",
                                           "sgx"));

TEST(Tdx, SecureChargesMemoryProtectionAndBounce) {
  TdxPlatform tdx;
  const auto& s = tdx.costs(true);
  EXPECT_GT(s.mem.enc_extra_ns, 0);
  EXPECT_GT(s.mem.integrity_extra_ns, 0);
  EXPECT_GT(s.io.bounce_byte_ns, 0);
  EXPECT_EQ(tdx.exit_primitive(), "TDCALL");
  EXPECT_TRUE(tdx.has_perf_counters(true));
  EXPECT_FALSE(tdx.simulated());
}

TEST(Tdx, PreFixFirmwareIsUniformlyWorse) {
  TdxPlatform pre(TdxFirmware::kPreFix), fixed(TdxFirmware::kFixed);
  const auto& p = pre.costs(true);
  const auto& f = fixed.costs(true);
  EXPECT_GT(p.exit.secure_exit_extra_ns, f.exit.secure_exit_extra_ns * 10);
  EXPECT_GT(p.mem.enc_extra_ns, f.mem.enc_extra_ns);
  EXPECT_GT(p.io.bounce_byte_ns, f.io.bounce_byte_ns);
  // Normal VMs are unaffected by the TDX module version.
  EXPECT_DOUBLE_EQ(pre.costs(false).exit.syscall_ns,
                   fixed.costs(false).exit.syscall_ns);
}

TEST(Tdx, IoPathWorseThanSnp) {
  // The paper's crossover: TDX loses on I/O (bounce buffers)...
  TdxPlatform tdx;
  SevSnpPlatform snp;
  EXPECT_GT(tdx.costs(true).io.bounce_byte_ns,
            snp.costs(true).io.bounce_byte_ns);
  EXPECT_GT(tdx.costs(true).io.bounce_fixed_ns,
            snp.costs(true).io.bounce_fixed_ns);
}

TEST(Tdx, MemoryPathBetterThanSnp) {
  // ...and wins on CPU/memory-intensive work.
  TdxPlatform tdx;
  SevSnpPlatform snp;
  const double tdx_mem = tdx.costs(true).mem.enc_extra_ns +
                         tdx.costs(true).mem.integrity_extra_ns;
  const double snp_mem = snp.costs(true).mem.enc_extra_ns +
                         snp.costs(true).mem.integrity_extra_ns;
  EXPECT_LT(tdx_mem, snp_mem);
  EXPECT_LT(tdx.costs(true).exit.secure_exit_extra_ns,
            snp.costs(true).exit.secure_exit_extra_ns);
}

TEST(SevSnp, Basics) {
  SevSnpPlatform snp;
  EXPECT_EQ(snp.kind(), TeeKind::kSevSnp);
  EXPECT_EQ(snp.exit_primitive(), "VMEXIT");
  EXPECT_FALSE(snp.simulated());
  EXPECT_TRUE(snp.has_perf_counters(true));
}

TEST(Cca, SimulatedAndNoRealmPmu) {
  CcaPlatform cca;
  EXPECT_TRUE(cca.simulated());
  EXPECT_TRUE(cca.has_perf_counters(false));
  EXPECT_FALSE(cca.has_perf_counters(true));  // §III-B: no perf in realms
  EXPECT_EQ(cca.exit_primitive(), "RMI");
  EXPECT_GT(cca.costs(false).cpu.sim_slowdown, 1.0);
}

TEST(Cca, RealmOverheadsDwarfBareMetalTees) {
  CcaPlatform cca;
  TdxPlatform tdx;
  EXPECT_GT(cca.costs(true).exit.secure_exit_extra_ns,
            10 * tdx.costs(true).exit.secure_exit_extra_ns);
  EXPECT_GT(cca.costs(true).trial_jitter_sigma,
            tdx.costs(true).trial_jitter_sigma);
}

TEST(Attestation, SnpFasterThanTdxInBothPhases) {
  TdxPlatform tdx;
  SevSnpPlatform snp;
  const auto t = tdx.attestation();
  const auto s = snp.attestation();
  ASSERT_TRUE(t.supported);
  ASSERT_TRUE(s.supported);
  const double tdx_attest = t.report_request + t.measurement + t.sign;
  const double snp_attest = s.report_request + s.measurement + s.sign;
  EXPECT_GT(tdx_attest, snp_attest);
  const double tdx_check =
      t.collateral_round_trips * t.collateral_rtt + t.verify_compute;
  const double snp_check = s.collateral_local_fetch + s.verify_compute;
  EXPECT_GT(tdx_check, snp_check);
}

TEST(Attestation, TdxNeedsNetworkSnpDoesNot) {
  TdxPlatform tdx;
  SevSnpPlatform snp;
  EXPECT_GT(tdx.attestation().collateral_round_trips, 0);
  EXPECT_EQ(snp.attestation().collateral_round_trips, 0);
  EXPECT_GT(snp.attestation().collateral_local_fetch, 0);
}

TEST(Attestation, CcaUnsupported) {
  CcaPlatform cca;
  EXPECT_FALSE(cca.attestation().supported);
}

TEST(Sgx, ProcessTeeIsHarsherThanVmTees) {
  // The intro's motivation for second-generation TEEs, quantified: SGX
  // pays a full world switch per syscall and MEE integrity-tree walks.
  SgxPlatform sgx;
  TdxPlatform tdx;
  EXPECT_DOUBLE_EQ(sgx.costs(true).exit.exit_rate_per_syscall, 1.0);
  EXPECT_GT(sgx.costs(true).exit.secure_exit_extra_ns,
            tdx.costs(true).exit.secure_exit_extra_ns);
  EXPECT_GT(sgx.costs(true).mem.integrity_extra_ns,
            10 * tdx.costs(true).mem.integrity_extra_ns);
  EXPECT_FALSE(sgx.has_perf_counters(true));
  EXPECT_TRUE(sgx.has_perf_counters(false));
  EXPECT_EQ(sgx.exit_primitive(), "EOCALL");
}

TEST(Sgx, NormalProcessHasNoVirtualisationExits) {
  SgxPlatform sgx;
  EXPECT_DOUBLE_EQ(sgx.costs(false).exit.exit_rate_per_syscall, 0.0);
  EXPECT_DOUBLE_EQ(sgx.costs(false).exit.vmexit_ns, 0.0);
}

TEST(Colocation, OneTenantIsIdentity) {
  auto base = Registry::instance().create("tdx");
  ColocatedPlatform solo(base, 1);
  EXPECT_DOUBLE_EQ(solo.costs(true).mem.dram_lat_ns,
                   base->costs(true).mem.dram_lat_ns);
  EXPECT_DOUBLE_EQ(solo.costs(false).io.blk_fixed_ns,
                   base->costs(false).io.blk_fixed_ns);
  EXPECT_EQ(solo.name(), "tdx-x1");
  EXPECT_EQ(solo.kind(), TeeKind::kTdx);
}

TEST(Colocation, ContentionGrowsWithTenants) {
  auto base = Registry::instance().create("tdx");
  ColocatedPlatform two(base, 2), eight(base, 8);
  EXPECT_GT(two.costs(true).mem.dram_lat_ns,
            base->costs(true).mem.dram_lat_ns);
  EXPECT_GT(eight.costs(true).mem.dram_lat_ns,
            two.costs(true).mem.dram_lat_ns);
  EXPECT_LT(eight.costs(true).mem.mlp, base->costs(true).mem.mlp);
  EXPECT_GT(eight.costs(true).trial_jitter_sigma,
            base->costs(true).trial_jitter_sigma);
}

TEST(Colocation, SecureSideContendsHarderOnTheCryptoEngine) {
  auto base = Registry::instance().create("sev-snp");
  ColocatedPlatform four(base, 4);
  const double enc_growth = four.costs(true).mem.enc_extra_ns /
                            base->costs(true).mem.enc_extra_ns;
  const double dram_growth = four.costs(true).mem.dram_lat_ns /
                             base->costs(true).mem.dram_lat_ns;
  EXPECT_GT(enc_growth, dram_growth);
}

TEST(Colocation, RejectsBadArguments) {
  auto base = Registry::instance().create("tdx");
  EXPECT_THROW(ColocatedPlatform(nullptr, 2), std::invalid_argument);
  EXPECT_THROW(ColocatedPlatform(base, 0), std::invalid_argument);
}

TEST(Colocation, DelegatesPlatformTraits) {
  ColocatedPlatform cca(Registry::instance().create("cca"), 3);
  EXPECT_TRUE(cca.simulated());
  EXPECT_FALSE(cca.has_perf_counters(true));
  EXPECT_FALSE(cca.attestation().supported);
  EXPECT_EQ(cca.tenants(), 3);
}

TEST(None, SecureEqualsNormal) {
  NonePlatform none;
  EXPECT_DOUBLE_EQ(none.costs(true).exit.secure_exit_extra_ns,
                   none.costs(false).exit.secure_exit_extra_ns);
  EXPECT_FALSE(none.attestation().supported);
}

}  // namespace
}  // namespace confbench::tee

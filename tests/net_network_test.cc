#include <gtest/gtest.h>

#include <stdexcept>

#include "net/network.h"
#include "sim/time.h"

namespace confbench::net {
namespace {

TEST(Network, BindAndRoundTrip) {
  Network net;
  net.bind("host-a", 8100, [](const HttpRequest& req) {
    return HttpResponse::make(200, "echo:" + req.path);
  });
  HttpRequest req;
  req.path = "/hello";
  const auto resp = net.roundtrip("host-a", 8100, req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "echo:/hello");
}

TEST(Network, UnboundEndpointIs502) {
  Network net;
  const auto resp = net.roundtrip("ghost", 1, HttpRequest{});
  EXPECT_EQ(resp.status, 502);
  EXPECT_NE(resp.body.find("ghost:1"), std::string::npos);
}

TEST(Network, DuplicateBindThrows) {
  Network net;
  auto handler = [](const HttpRequest&) { return HttpResponse::make(200, ""); };
  net.bind("h", 80, handler);
  EXPECT_THROW(net.bind("h", 80, handler), std::invalid_argument);
  net.bind("h", 81, handler);  // different port is fine
}

TEST(Network, UnbindFreesEndpoint) {
  Network net;
  auto handler = [](const HttpRequest&) { return HttpResponse::make(200, ""); };
  net.bind("h", 80, handler);
  EXPECT_TRUE(net.bound("h", 80));
  net.unbind("h", 80);
  EXPECT_FALSE(net.bound("h", 80));
  EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 502);
  net.bind("h", 80, handler);  // can rebind
}

TEST(Network, ServerSeesWireParsedRequest) {
  // The handler must observe exactly what survived serialization.
  Network net;
  net.bind("h", 80, [](const HttpRequest& req) {
    return HttpResponse::make(200, req.query_params().at("key"));
  });
  HttpRequest req;
  req.method = "POST";
  req.path = "/x";
  req.query = "key=round%20trip";
  req.body = "ignored";
  EXPECT_EQ(net.roundtrip("h", 80, req).body, "round trip");
}

TEST(Network, LatencyAccumulatesPerRequest) {
  Network net;
  net.bind("h", 80,
           [](const HttpRequest&) { return HttpResponse::make(200, "x"); });
  EXPECT_DOUBLE_EQ(net.elapsed(), 0.0);
  net.roundtrip("h", 80, HttpRequest{});
  const double one = net.elapsed();
  EXPECT_GT(one, 0);
  net.roundtrip("h", 80, HttpRequest{});
  EXPECT_GT(net.elapsed(), one);
  EXPECT_EQ(net.requests_sent(), 2u);
}

TEST(Network, LargerPayloadsCostMore) {
  Network a, b;
  auto echo = [](const HttpRequest& r) {
    return HttpResponse::make(200, r.body);
  };
  a.bind("h", 80, echo);
  b.bind("h", 80, echo);
  HttpRequest small, big;
  small.body = "x";
  big.body = std::string(512 * 1024, 'x');
  a.roundtrip("h", 80, small);
  b.roundtrip("h", 80, big);
  EXPECT_GT(b.elapsed(), a.elapsed());
}

TEST(Network, HeadersSurviveTheWire) {
  Network net;
  net.bind("h", 80, [](const HttpRequest&) {
    auto resp = HttpResponse::make(200, "ok");
    resp.headers["X-Perf"] = "ins=123;wall_ns=456";
    return resp;
  });
  const auto resp = net.roundtrip("h", 80, HttpRequest{});
  EXPECT_EQ(resp.headers.at("X-Perf"), "ins=123;wall_ns=456");
}

}  // namespace
}  // namespace confbench::net
// (appended) --- fault injection -------------------------------------------------

namespace confbench::net {
namespace {

TEST(NetworkFaults, DropsTimeOutDeterministically) {
  Network net;
  net.bind("h", 80,
           [](const HttpRequest&) { return HttpResponse::make(200, "x"); });
  net.set_faults({.drop_rate = 0.5, .corrupt_rate = 0, .timeout_us = 1000});
  int drops = 0;
  for (int i = 0; i < 200; ++i)
    drops += net.roundtrip("h", 80, HttpRequest{}).status == 504;
  EXPECT_GT(drops, 60);
  EXPECT_LT(drops, 140);
  EXPECT_EQ(net.faults_injected(), static_cast<std::uint64_t>(drops));
}

TEST(NetworkFaults, CorruptionYields502) {
  Network net;
  net.bind("h", 80,
           [](const HttpRequest&) { return HttpResponse::make(200, "x"); });
  net.set_faults({.drop_rate = 0, .corrupt_rate = 1.0, .timeout_us = 1000});
  EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 502);
}

TEST(NetworkFaults, ClearingFaultsRestoresService) {
  Network net;
  net.bind("h", 80,
           [](const HttpRequest&) { return HttpResponse::make(200, "x"); });
  net.set_faults({.drop_rate = 1.0, .corrupt_rate = 0, .timeout_us = 1});
  EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 504);
  net.set_faults({});
  EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 200);
}

}  // namespace
}  // namespace confbench::net

namespace confbench::net {
namespace {

TEST(NetworkFaults, RatesAreClampedToProbabilityRange) {
  Network net;
  net.bind("h", 80,
           [](const HttpRequest&) { return HttpResponse::make(200, "x"); });
  // Out-of-range rates clamp rather than corrupt the Bernoulli draws: 7.0
  // behaves as certain drop, a negative corrupt rate as never.
  net.set_faults({.drop_rate = 7.0, .corrupt_rate = -3.0, .timeout_us = 10});
  EXPECT_DOUBLE_EQ(net.faults().drop_rate, 1.0);
  EXPECT_DOUBLE_EQ(net.faults().corrupt_rate, 0.0);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 504);

  net.set_faults({.drop_rate = -1.0, .corrupt_rate = 9.0, .timeout_us = 10});
  EXPECT_DOUBLE_EQ(net.faults().drop_rate, 0.0);
  EXPECT_DOUBLE_EQ(net.faults().corrupt_rate, 1.0);
  EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 502);
}

TEST(NetworkFaults, NegativeTimeoutIsRejected) {
  Network net;
  EXPECT_THROW(
      net.set_faults({.drop_rate = 0, .corrupt_rate = 0, .timeout_us = -1}),
      std::invalid_argument);
}

TEST(NetworkFaults, PartitionedHostIsUnreachableWithoutRngDraws) {
  Network net;
  net.bind("h", 80,
           [](const HttpRequest&) { return HttpResponse::make(200, "x"); });
  net.bind("other", 80,
           [](const HttpRequest&) { return HttpResponse::make(200, "y"); });
  // Reference run: no partition, record the jitter-driven elapsed time of
  // two calls to "other".
  Network ref;
  ref.bind("other", 80,
           [](const HttpRequest&) { return HttpResponse::make(200, "y"); });
  ref.roundtrip("other", 80, HttpRequest{});
  ref.roundtrip("other", 80, HttpRequest{});

  net.set_partitioned("h", true);
  EXPECT_TRUE(net.partitioned("h"));
  const auto resp = net.roundtrip("h", 80, HttpRequest{});
  EXPECT_EQ(resp.status, 504);
  EXPECT_EQ(net.faults_injected(), 1u);
  // The partitioned path must not consume RNG: the next calls to the
  // healthy host see the same latency sequence as the reference fabric.
  net.roundtrip("other", 80, HttpRequest{});
  net.roundtrip("other", 80, HttpRequest{});
  EXPECT_DOUBLE_EQ(net.elapsed() - net.faults().timeout_us * sim::kUs,
                   ref.elapsed());

  net.set_partitioned("h", false);
  EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 200);
}

}  // namespace
}  // namespace confbench::net

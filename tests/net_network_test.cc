#include <gtest/gtest.h>

#include <stdexcept>

#include "net/network.h"
#include "sim/time.h"

namespace confbench::net {
namespace {

TEST(Network, BindAndRoundTrip) {
  Network net;
  net.bind("host-a", 8100, [](const HttpRequest& req) {
    return HttpResponse::make(200, "echo:" + req.path);
  });
  HttpRequest req;
  req.path = "/hello";
  const auto resp = net.roundtrip("host-a", 8100, req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "echo:/hello");
}

TEST(Network, UnboundEndpointIs502) {
  Network net;
  const auto resp = net.roundtrip("ghost", 1, HttpRequest{});
  EXPECT_EQ(resp.status, 502);
  EXPECT_NE(resp.body.find("ghost:1"), std::string::npos);
}

TEST(Network, DuplicateBindThrows) {
  Network net;
  auto handler = [](const HttpRequest&) { return HttpResponse::make(200, ""); };
  net.bind("h", 80, handler);
  EXPECT_THROW(net.bind("h", 80, handler), std::invalid_argument);
  net.bind("h", 81, handler);  // different port is fine
}

TEST(Network, UnbindFreesEndpoint) {
  Network net;
  auto handler = [](const HttpRequest&) { return HttpResponse::make(200, ""); };
  net.bind("h", 80, handler);
  EXPECT_TRUE(net.bound("h", 80));
  net.unbind("h", 80);
  EXPECT_FALSE(net.bound("h", 80));
  EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 502);
  net.bind("h", 80, handler);  // can rebind
}

TEST(Network, ServerSeesWireParsedRequest) {
  // The handler must observe exactly what survived serialization.
  Network net;
  net.bind("h", 80, [](const HttpRequest& req) {
    return HttpResponse::make(200, req.query_params().at("key"));
  });
  HttpRequest req;
  req.method = "POST";
  req.path = "/x";
  req.query = "key=round%20trip";
  req.body = "ignored";
  EXPECT_EQ(net.roundtrip("h", 80, req).body, "round trip");
}

TEST(Network, LatencyAccumulatesPerRequest) {
  Network net;
  net.bind("h", 80,
           [](const HttpRequest&) { return HttpResponse::make(200, "x"); });
  EXPECT_DOUBLE_EQ(net.elapsed(), 0.0);
  net.roundtrip("h", 80, HttpRequest{});
  const double one = net.elapsed();
  EXPECT_GT(one, 0);
  net.roundtrip("h", 80, HttpRequest{});
  EXPECT_GT(net.elapsed(), one);
  EXPECT_EQ(net.requests_sent(), 2u);
}

TEST(Network, LargerPayloadsCostMore) {
  Network a, b;
  auto echo = [](const HttpRequest& r) {
    return HttpResponse::make(200, r.body);
  };
  a.bind("h", 80, echo);
  b.bind("h", 80, echo);
  HttpRequest small, big;
  small.body = "x";
  big.body = std::string(512 * 1024, 'x');
  a.roundtrip("h", 80, small);
  b.roundtrip("h", 80, big);
  EXPECT_GT(b.elapsed(), a.elapsed());
}

TEST(Network, HeadersSurviveTheWire) {
  Network net;
  net.bind("h", 80, [](const HttpRequest&) {
    auto resp = HttpResponse::make(200, "ok");
    resp.headers["X-Perf"] = "ins=123;wall_ns=456";
    return resp;
  });
  const auto resp = net.roundtrip("h", 80, HttpRequest{});
  EXPECT_EQ(resp.headers.at("X-Perf"), "ins=123;wall_ns=456");
}

}  // namespace
}  // namespace confbench::net
// (appended) --- fault injection -------------------------------------------------

namespace confbench::net {
namespace {

TEST(NetworkFaults, DropsTimeOutDeterministically) {
  Network net;
  net.bind("h", 80,
           [](const HttpRequest&) { return HttpResponse::make(200, "x"); });
  net.set_faults({.drop_rate = 0.5, .corrupt_rate = 0, .timeout_us = 1000});
  int drops = 0;
  for (int i = 0; i < 200; ++i)
    drops += net.roundtrip("h", 80, HttpRequest{}).status == 504;
  EXPECT_GT(drops, 60);
  EXPECT_LT(drops, 140);
  EXPECT_EQ(net.faults_injected(), static_cast<std::uint64_t>(drops));
}

TEST(NetworkFaults, CorruptionYields502) {
  Network net;
  net.bind("h", 80,
           [](const HttpRequest&) { return HttpResponse::make(200, "x"); });
  net.set_faults({.drop_rate = 0, .corrupt_rate = 1.0, .timeout_us = 1000});
  EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 502);
}

TEST(NetworkFaults, ClearingFaultsRestoresService) {
  Network net;
  net.bind("h", 80,
           [](const HttpRequest&) { return HttpResponse::make(200, "x"); });
  net.set_faults({.drop_rate = 1.0, .corrupt_rate = 0, .timeout_us = 1});
  EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 504);
  net.set_faults({});
  EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 200);
}

}  // namespace
}  // namespace confbench::net

namespace confbench::net {
namespace {

TEST(NetworkFaults, RatesAreClampedToProbabilityRange) {
  Network net;
  net.bind("h", 80,
           [](const HttpRequest&) { return HttpResponse::make(200, "x"); });
  // Out-of-range rates clamp rather than corrupt the Bernoulli draws: 7.0
  // behaves as certain drop, a negative corrupt rate as never.
  net.set_faults({.drop_rate = 7.0, .corrupt_rate = -3.0, .timeout_us = 10});
  EXPECT_DOUBLE_EQ(net.faults().drop_rate, 1.0);
  EXPECT_DOUBLE_EQ(net.faults().corrupt_rate, 0.0);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 504);

  net.set_faults({.drop_rate = -1.0, .corrupt_rate = 9.0, .timeout_us = 10});
  EXPECT_DOUBLE_EQ(net.faults().drop_rate, 0.0);
  EXPECT_DOUBLE_EQ(net.faults().corrupt_rate, 1.0);
  EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 502);
}

TEST(NetworkFaults, NegativeTimeoutIsRejected) {
  Network net;
  EXPECT_THROW(
      net.set_faults({.drop_rate = 0, .corrupt_rate = 0, .timeout_us = -1}),
      std::invalid_argument);
}

TEST(NetworkFaults, PartitionedHostIsUnreachableWithoutRngDraws) {
  Network net;
  net.bind("h", 80,
           [](const HttpRequest&) { return HttpResponse::make(200, "x"); });
  net.bind("other", 80,
           [](const HttpRequest&) { return HttpResponse::make(200, "y"); });
  // Reference run: no partition, record the jitter-driven elapsed time of
  // two calls to "other".
  Network ref;
  ref.bind("other", 80,
           [](const HttpRequest&) { return HttpResponse::make(200, "y"); });
  ref.roundtrip("other", 80, HttpRequest{});
  ref.roundtrip("other", 80, HttpRequest{});

  net.set_partitioned("h", true);
  EXPECT_TRUE(net.partitioned("h"));
  const auto resp = net.roundtrip("h", 80, HttpRequest{});
  EXPECT_EQ(resp.status, 504);
  EXPECT_EQ(net.faults_injected(), 1u);
  // The partitioned path must not consume RNG: the next calls to the
  // healthy host see the same latency sequence as the reference fabric.
  net.roundtrip("other", 80, HttpRequest{});
  net.roundtrip("other", 80, HttpRequest{});
  EXPECT_DOUBLE_EQ(net.elapsed() - net.faults().timeout_us * sim::kUs,
                   ref.elapsed());

  net.set_partitioned("h", false);
  EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 200);
}

// (appended) --- directed links: gray failures and asymmetric partitions ----

TEST(NetworkLinks, AsymmetricPartitionRunsHandlerButLosesResponse) {
  Network net;
  int served = 0;
  net.bind("h", 80, [&served](const HttpRequest&) {
    ++served;
    return HttpResponse::make(200, "x");
  });
  // Down response path h -> client: the server does the work, the answer
  // never arrives — the asymmetric-partition signature.
  net.set_link("h", Network::kClientHost, LinkState::kDown);
  EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 504);
  EXPECT_EQ(served, 1);
  EXPECT_EQ(net.faults_injected(), 1u);

  // Down request path client -> h: short-circuits before the handler.
  net.set_link("h", Network::kClientHost, LinkState::kUp);
  net.set_link(Network::kClientHost, "h", LinkState::kDown);
  EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 504);
  EXPECT_EQ(served, 1);  // handler did not run this time

  net.set_link(Network::kClientHost, "h", LinkState::kUp);
  EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 200);
  EXPECT_EQ(served, 2);
}

TEST(NetworkLinks, SubsetPartitionAffectsOnlyTheNamedPath) {
  Network net;
  auto ok = [](const HttpRequest&) { return HttpResponse::make(200, "y"); };
  net.bind("b", 80, ok);
  net.bind("c", 80, ok);
  net.set_link(Network::kClientHost, "c", LinkState::kDown);
  EXPECT_EQ(net.roundtrip("c", 80, HttpRequest{}).status, 504);
  EXPECT_EQ(net.roundtrip("b", 80, HttpRequest{}).status, 200);
  EXPECT_EQ(net.link_state(Network::kClientHost, "b"), LinkState::kUp);
  EXPECT_EQ(net.link_state(Network::kClientHost, "c"), LinkState::kDown);
}

TEST(NetworkLinks, SlowLinkScalesLatencyWithoutPerturbingRng) {
  // Same seed, same traffic: a factor-3 slow link must produce exactly 3x
  // the reference wire time, because the jitter draw happens regardless of
  // the factor (the slow path consumes the same RNG sequence).
  auto ok = [](const HttpRequest&) { return HttpResponse::make(200, "z"); };
  Network ref;
  ref.bind("h", 80, ok);
  ref.roundtrip("h", 80, HttpRequest{});
  const sim::Ns first = ref.elapsed();

  Network slow;
  slow.bind("h", 80, ok);
  slow.set_link(Network::kAnyHost, "h", LinkState::kSlow, 3.0);
  EXPECT_EQ(slow.roundtrip("h", 80, HttpRequest{}).status, 200);
  EXPECT_DOUBLE_EQ(slow.elapsed(), 3.0 * first);

  // Restoring the link restores the unscaled latency AND the sequence.
  ref.roundtrip("h", 80, HttpRequest{});
  slow.set_link(Network::kAnyHost, "h", LinkState::kUp);
  slow.roundtrip("h", 80, HttpRequest{});
  EXPECT_DOUBLE_EQ(slow.elapsed() - 3.0 * first, ref.elapsed() - first);
}

TEST(NetworkLinks, DownWinsOverSlowAndFactorsCombineByMax) {
  Network net;
  net.set_link(Network::kAnyHost, "h", LinkState::kSlow, 2.0);
  net.set_link(Network::kClientHost, "h", LinkState::kSlow, 5.0);
  EXPECT_EQ(net.link_state(Network::kClientHost, "h"), LinkState::kSlow);
  EXPECT_DOUBLE_EQ(net.link_factor(Network::kClientHost, "h"), 5.0);
  // A down rule on any matching key beats every slow rule.
  net.set_link(Network::kAnyHost, Network::kAnyHost, LinkState::kDown);
  EXPECT_EQ(net.link_state(Network::kClientHost, "h"), LinkState::kDown);
  EXPECT_DOUBLE_EQ(net.link_factor(Network::kClientHost, "h"), 1.0);
  net.set_link(Network::kAnyHost, Network::kAnyHost, LinkState::kUp);
  EXPECT_DOUBLE_EQ(net.link_factor(Network::kClientHost, "h"), 5.0);
  EXPECT_THROW(net.set_link("a", "b", LinkState::kSlow, 0.5),
               std::invalid_argument);
}

TEST(NetworkLinks, LiftingPartitionRestoresUnpartitionedRandomSequence) {
  // Regression: a lifted partition must leave the fabric's RNG exactly
  // where an never-partitioned fabric would be, so experiments that heal
  // are byte-comparable to experiments that never failed.
  auto ok = [](const HttpRequest&) { return HttpResponse::make(200, "w"); };
  Network ref;
  ref.bind("h", 80, ok);
  for (int i = 0; i < 4; ++i) ref.roundtrip("h", 80, HttpRequest{});

  Network net;
  net.bind("h", 80, ok);
  net.roundtrip("h", 80, HttpRequest{});
  net.set_link(Network::kClientHost, "h", LinkState::kDown);
  net.roundtrip("h", 80, HttpRequest{});  // 504, no RNG draw
  net.roundtrip("h", 80, HttpRequest{});  // 504, no RNG draw
  net.set_link(Network::kClientHost, "h", LinkState::kUp);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(net.roundtrip("h", 80, HttpRequest{}).status, 200);
  // 4 successful trips each; the two timeouts only added the fault charge.
  EXPECT_DOUBLE_EQ(net.elapsed() - 2 * net.faults().timeout_us * sim::kUs,
                   ref.elapsed());
}

// (appended) --- partition-overlay precedence + multi-hop paths -------------

TEST(NetworkLinks, PartitionOverlayBeatsExplicitRulesAndRestoresThem) {
  // The precedence contract: set_partitioned is an overlay, not a rule
  // write. It wins over any explicit rule while active and leaves the rule
  // table untouched when lifted — no last-writer-wins ambiguity.
  Network net;
  net.set_link(Network::kClientHost, "h", LinkState::kSlow, 3.0);
  net.set_partitioned("h", true);
  EXPECT_EQ(net.link_state(Network::kClientHost, "h"), LinkState::kDown);
  // Rule writes under the overlay are retained, not clobbered or lost.
  net.set_link(Network::kClientHost, "h", LinkState::kSlow, 7.0);
  EXPECT_EQ(net.link_state(Network::kClientHost, "h"), LinkState::kDown);
  net.set_partitioned("h", false);
  EXPECT_EQ(net.link_state(Network::kClientHost, "h"), LinkState::kSlow);
  EXPECT_DOUBLE_EQ(net.link_factor(Network::kClientHost, "h"), 7.0);
}

TEST(NetworkLinks, ExplicitDownSurvivesPartitionCycle) {
  Network net;
  net.set_link("h", Network::kClientHost, LinkState::kDown);
  net.set_partitioned("h", true);
  net.set_partitioned("h", false);
  // Lifting the overlay must not heal an explicitly-downed link.
  EXPECT_EQ(net.link_state("h", Network::kClientHost), LinkState::kDown);
  EXPECT_FALSE(net.partitioned("h"));
}

TEST(NetworkLinks, PartitionedReflectsOnlyTheOverlay) {
  Network net;
  net.set_link(Network::kAnyHost, "h", LinkState::kDown);
  EXPECT_FALSE(net.partitioned("h"))
      << "an explicit down rule is not the partition overlay";
  net.set_partitioned("h", true);
  EXPECT_TRUE(net.partitioned("h"));
  EXPECT_FALSE(net.partitioned("other"));
}

TEST(NetworkLinks, PathStateDownWinsAndSlowFactorsTakeTheMax) {
  Network net;
  EXPECT_EQ(net.path_state({"a", "b", "c"}).first, LinkState::kUp);
  EXPECT_DOUBLE_EQ(net.path_state({"a", "b", "c"}).second, 1.0);
  net.set_link("a", "b", LinkState::kSlow, 2.0);
  net.set_link("b", "c", LinkState::kSlow, 5.0);
  const auto [st, f] = net.path_state({"a", "b", "c"});
  EXPECT_EQ(st, LinkState::kSlow);
  EXPECT_DOUBLE_EQ(f, 5.0) << "end-to-end slowdown is the slowest hop's";
  net.set_link("b", "c", LinkState::kDown);
  EXPECT_EQ(net.path_state({"a", "b", "c"}).first, LinkState::kDown);
  // A partitioned mid-hop downs every path through it.
  net.set_link("b", "c", LinkState::kUp);
  net.set_partitioned("b", true);
  EXPECT_EQ(net.path_state({"a", "b", "c"}).first, LinkState::kDown);
}

}  // namespace
}  // namespace confbench::net

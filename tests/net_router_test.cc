#include <gtest/gtest.h>

#include "net/router.h"

namespace confbench::net {
namespace {

HttpRequest get(const std::string& path) {
  HttpRequest r;
  r.method = "GET";
  r.path = path;
  return r;
}

TEST(Router, ExactMatch) {
  Router router;
  router.add("GET", "/health", [](const HttpRequest&, const PathParams&) {
    return HttpResponse::make(200, "ok");
  });
  EXPECT_EQ(router.dispatch(get("/health")).status, 200);
  EXPECT_EQ(router.dispatch(get("/other")).status, 404);
}

TEST(Router, MethodMismatchIs405) {
  Router router;
  router.add("POST", "/upload", [](const HttpRequest&, const PathParams&) {
    return HttpResponse::make(201, "");
  });
  EXPECT_EQ(router.dispatch(get("/upload")).status, 405);
}

TEST(Router, ParamCapture) {
  Router router;
  router.add("GET", "/functions/:lang",
             [](const HttpRequest&, const PathParams& p) {
               return HttpResponse::make(200, p.at("lang"));
             });
  EXPECT_EQ(router.dispatch(get("/functions/python")).body, "python");
  EXPECT_EQ(router.dispatch(get("/functions")).status, 404);
  EXPECT_EQ(router.dispatch(get("/functions/python/extra")).status, 404);
}

TEST(Router, ParamsAreUrlDecoded) {
  Router router;
  router.add("GET", "/f/:name", [](const HttpRequest&, const PathParams& p) {
    return HttpResponse::make(200, p.at("name"));
  });
  EXPECT_EQ(router.dispatch(get("/f/two%20words")).body, "two words");
}

TEST(Router, MultipleParams) {
  Router router;
  router.add("GET", "/t/:a/x/:b", [](const HttpRequest&, const PathParams& p) {
    return HttpResponse::make(200, p.at("a") + "," + p.at("b"));
  });
  EXPECT_EQ(router.dispatch(get("/t/1/x/2")).body, "1,2");
}

TEST(Router, FirstMatchingRouteWins) {
  Router router;
  router.add("GET", "/a/:x", [](const HttpRequest&, const PathParams&) {
    return HttpResponse::make(200, "param");
  });
  router.add("GET", "/a/literal", [](const HttpRequest&, const PathParams&) {
    return HttpResponse::make(200, "literal");
  });
  EXPECT_EQ(router.dispatch(get("/a/literal")).body, "param");
}

TEST(Router, TrailingSlashNormalised) {
  Router router;
  router.add("GET", "/p", [](const HttpRequest&, const PathParams&) {
    return HttpResponse::make(200, "p");
  });
  EXPECT_EQ(router.dispatch(get("/p/")).status, 200);
  EXPECT_EQ(router.dispatch(get("//p")).status, 200);
}

TEST(Router, RouteCount) {
  Router router;
  EXPECT_EQ(router.route_count(), 0u);
  router.add("GET", "/a", [](const HttpRequest&, const PathParams&) {
    return HttpResponse::make(200, "");
  });
  EXPECT_EQ(router.route_count(), 1u);
}

}  // namespace
}  // namespace confbench::net

#include <gtest/gtest.h>

#include "core/config.h"

namespace confbench::core {
namespace {

TEST(Ini, ParsesSectionsAndKeys) {
  const auto ini = IniFile::parse(
      "# comment\n"
      "[gateway]\n"
      "host = gw\n"
      "port = 8080\n"
      "\n"
      "; another comment\n"
      "[tee \"tdx\"]\n"
      "host = host-tdx\n");
  ASSERT_TRUE(ini.has_value());
  EXPECT_EQ(ini->get("gateway", "host"), "gw");
  EXPECT_EQ(ini->get("gateway", "port"), "8080");
  EXPECT_EQ(ini->get("tee.tdx", "host"), "host-tdx");
  EXPECT_FALSE(ini->get("gateway", "missing").has_value());
  EXPECT_FALSE(ini->get("missing", "host").has_value());
}

TEST(Ini, WhitespaceTolerant) {
  const auto ini = IniFile::parse("  [s]  \n  key =   value with spaces  \n");
  ASSERT_TRUE(ini.has_value());
  EXPECT_EQ(ini->get("s", "key"), "value with spaces");
}

TEST(Ini, ErrorsCarryLineNumbers) {
  std::string err;
  EXPECT_FALSE(IniFile::parse("[s]\nkey-without-value\n", &err).has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos);
  EXPECT_FALSE(IniFile::parse("key = before-any-section\n", &err).has_value());
  EXPECT_NE(err.find("line 1"), std::string::npos);
  EXPECT_FALSE(IniFile::parse("[unterminated\n", &err).has_value());
  EXPECT_FALSE(IniFile::parse("[tee \"broken]\n", &err).has_value());
  EXPECT_FALSE(IniFile::parse("[]\n", &err).has_value());
}

TEST(Ini, SectionsWithPrefix) {
  const auto ini = IniFile::parse(
      "[tee \"tdx\"]\nhost = a\n[tee \"cca\"]\nhost = b\n[gateway]\nhost = "
      "g\n");
  ASSERT_TRUE(ini.has_value());
  const auto tees = ini->sections_with_prefix("tee.");
  EXPECT_EQ(tees.size(), 2u);
}

TEST(Ini, SerializeParseRoundTrip) {
  IniFile ini;
  ini.set("gateway", "host", "gw");
  ini.set("tee.tdx", "normal_port", "8100");
  const auto reparsed = IniFile::parse(ini.serialize());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->get("gateway", "host"), "gw");
  EXPECT_EQ(reparsed->get("tee.tdx", "normal_port"), "8100");
}

TEST(Policy, ParseAndPrint) {
  EXPECT_EQ(parse_policy("round-robin"), LoadBalancePolicy::kRoundRobin);
  EXPECT_EQ(parse_policy("least-loaded"), LoadBalancePolicy::kLeastLoaded);
  EXPECT_EQ(parse_policy("random"), LoadBalancePolicy::kRandom);
  EXPECT_FALSE(parse_policy("chaotic").has_value());
  EXPECT_EQ(to_string(LoadBalancePolicy::kRoundRobin), "round-robin");
}

TEST(GatewayConfig, FromIniFullExample) {
  const auto ini = IniFile::parse(
      "[gateway]\n"
      "host = the-gateway\n"
      "port = 9999\n"
      "policy = least-loaded\n"
      "[tee \"tdx\"]\n"
      "host = host-tdx\n"
      "normal_port = 7100\n"
      "secure_port = 7200\n"
      "[tee \"cca\"]\n"
      "host = host-cca\n");
  ASSERT_TRUE(ini.has_value());
  const auto cfg = GatewayConfig::from_ini(*ini);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->gateway_host, "the-gateway");
  EXPECT_EQ(cfg->gateway_port, 9999);
  EXPECT_EQ(cfg->policy, LoadBalancePolicy::kLeastLoaded);
  ASSERT_EQ(cfg->endpoints.size(), 2u);
  EXPECT_EQ(cfg->endpoints[0].tee, "cca");  // map order: cca < tdx
  EXPECT_EQ(cfg->endpoints[1].normal_port, 7100);
  EXPECT_EQ(cfg->endpoints[0].normal_port, 8100);  // default
}

TEST(GatewayConfig, BadValuesReportErrors) {
  std::string err;
  auto bad_policy =
      IniFile::parse("[gateway]\npolicy = chaotic\n");
  EXPECT_FALSE(GatewayConfig::from_ini(*bad_policy, &err).has_value());
  EXPECT_NE(err.find("chaotic"), std::string::npos);
  auto bad_port = IniFile::parse("[gateway]\nport = lots\n");
  EXPECT_FALSE(GatewayConfig::from_ini(*bad_port, &err).has_value());
  auto missing_host = IniFile::parse("[tee \"tdx\"]\nnormal_port = 1\n");
  EXPECT_FALSE(GatewayConfig::from_ini(*missing_host, &err).has_value());
  EXPECT_NE(err.find("missing host"), std::string::npos);
  auto bad_tee_port = IniFile::parse(
      "[tee \"tdx\"]\nhost = h\nsecure_port = banana\n");
  EXPECT_FALSE(GatewayConfig::from_ini(*bad_tee_port, &err).has_value());
}

TEST(GatewayConfig, ToIniRoundTrip) {
  const GatewayConfig cfg = GatewayConfig::standard();
  const auto round = GatewayConfig::from_ini(cfg.to_ini());
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->endpoints.size(), cfg.endpoints.size());
  EXPECT_EQ(round->gateway_host, cfg.gateway_host);
  EXPECT_EQ(round->policy, cfg.policy);
}

TEST(GatewayConfig, StandardHasAllFourPlatforms) {
  const GatewayConfig cfg = GatewayConfig::standard();
  ASSERT_EQ(cfg.endpoints.size(), 4u);
  std::set<std::string> tees;
  for (const auto& ep : cfg.endpoints) tees.insert(ep.tee);
  EXPECT_TRUE(tees.count("tdx"));
  EXPECT_TRUE(tees.count("sev-snp"));
  EXPECT_TRUE(tees.count("cca"));
  EXPECT_TRUE(tees.count("none"));
}

}  // namespace
}  // namespace confbench::core

#include "sim/costs.h"

#include <gtest/gtest.h>

#include "sim/clock.h"
#include "sim/memenc.h"

namespace confbench::sim {
namespace {

TEST(Clock, StartsAtZeroAndAdvances) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(12.5);
  clock.advance(7.5);
  EXPECT_DOUBLE_EQ(clock.now(), 20.0);
}

TEST(Clock, ResetReturnsToZero) {
  VirtualClock clock;
  clock.advance(1e9);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(Clock, ScopedTimerMeasuresSpan) {
  VirtualClock clock;
  clock.advance(5);
  Ns span = 0;
  {
    ScopedTimer timer(clock, span);
    clock.advance(37);
  }
  EXPECT_DOUBLE_EQ(span, 37.0);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(kUs, 1e3);
  EXPECT_DOUBLE_EQ(kMs, 1e6);
  EXPECT_DOUBLE_EQ(kSec, 1e9);
  EXPECT_DOUBLE_EQ(cycles_to_ns(3.0, 3.0), 1.0);
}

TEST(ComputeTime, ScalesWithOpsAndCpi) {
  CpuCostModel cpu{.freq_ghz = 2.0, .cpi = 0.5, .fp_cpi = 1.0,
                   .sim_slowdown = 1.0};
  EXPECT_DOUBLE_EQ(compute_time_ns(1000, cpu), 250.0);
  cpu.cpi = 1.0;
  EXPECT_DOUBLE_EQ(compute_time_ns(1000, cpu), 500.0);
}

TEST(ComputeTime, SlowdownMultiplies) {
  CpuCostModel cpu{.freq_ghz = 2.0, .cpi = 0.5, .fp_cpi = 1.0,
                   .sim_slowdown = 8.0};
  EXPECT_DOUBLE_EQ(compute_time_ns(1000, cpu), 2000.0);
  EXPECT_DOUBLE_EQ(fp_time_ns(1000, cpu), 4000.0);
}

TEST(MemTime, HitLatenciesPerLevel) {
  CpuCostModel cpu{.freq_ghz = 1.0, .cpi = 1.0, .fp_cpi = 1.0,
                   .sim_slowdown = 1.0};
  MemCostModel mem;
  mem.l1_lat_cy = 4;
  mem.l2_lat_cy = 10;
  mem.llc_lat_cy = 40;
  mem.mlp = 1.0;
  CacheCounts c;
  c.l1_hits = 1;
  EXPECT_DOUBLE_EQ(mem_time_ns(c, mem, cpu), 4.0);
  c = CacheCounts{};
  c.l2_hits = 2;
  EXPECT_DOUBLE_EQ(mem_time_ns(c, mem, cpu), 20.0);
}

TEST(MemTime, DramDividedByMlp) {
  CpuCostModel cpu{.freq_ghz = 1.0, .cpi = 1.0, .fp_cpi = 1.0,
                   .sim_slowdown = 1.0};
  MemCostModel mem;
  mem.dram_lat_ns = 100;
  mem.mlp = 4.0;
  CacheCounts c;
  c.dram_fills = 8;
  EXPECT_DOUBLE_EQ(mem_time_ns(c, mem, cpu), 200.0);
}

TEST(MemTime, ProtectionAddsOnlyWhenConfigured) {
  CpuCostModel cpu{.freq_ghz = 1.0, .cpi = 1.0, .fp_cpi = 1.0,
                   .sim_slowdown = 1.0};
  MemCostModel plain;
  plain.dram_lat_ns = 100;
  plain.mlp = 1.0;
  MemCostModel enc = plain;
  enc.enc_extra_ns = 3.0;
  enc.integrity_extra_ns = 2.0;
  CacheCounts c;
  c.dram_fills = 10;
  EXPECT_GT(mem_time_ns(c, enc, cpu), mem_time_ns(c, plain, cpu));
  EXPECT_DOUBLE_EQ(mem_protection_time_ns(c, plain), 0.0);
  EXPECT_DOUBLE_EQ(mem_protection_time_ns(c, enc), 10 * 3.0 + 10 * 2.0);
}

TEST(MemTime, WritebacksChargeEncryptionBothWays) {
  MemCostModel enc;
  enc.enc_extra_ns = 2.0;
  enc.integrity_extra_ns = 1.0;
  CacheCounts c;
  c.writebacks = 5;
  // Write-backs are encrypted but not integrity-checked on the way out.
  EXPECT_DOUBLE_EQ(mem_protection_time_ns(c, enc), 5 * 2.0);
}

TEST(MemEnc, DisabledEngineIsFree) {
  MemoryEncryptionEngine engine(false);
  MemCostModel mem;
  mem.enc_extra_ns = 5.0;
  CacheCounts c;
  c.dram_fills = 100;
  EXPECT_DOUBLE_EQ(engine.record(c, mem), 0.0);
  EXPECT_DOUBLE_EQ(engine.protection_time(), 0.0);
}

TEST(MemEnc, EnabledEngineTracksTraffic) {
  MemoryEncryptionEngine engine(true);
  MemCostModel mem;
  mem.enc_extra_ns = 2.0;
  mem.integrity_extra_ns = 0.0;
  CacheCounts c;
  c.dram_fills = 10;
  c.writebacks = 4;
  const Ns t = engine.record(c, mem);
  EXPECT_DOUBLE_EQ(t, 28.0);
  EXPECT_DOUBLE_EQ(engine.lines_decrypted(), 10);
  EXPECT_DOUBLE_EQ(engine.lines_encrypted(), 4);
  engine.reset();
  EXPECT_DOUBLE_EQ(engine.protection_time(), 0.0);
}

TEST(CacheCounts, AccumulateOperator) {
  CacheCounts a, b;
  a.accesses = 1;
  a.dram_fills = 2;
  b.accesses = 3;
  b.writebacks = 4;
  a += b;
  EXPECT_DOUBLE_EQ(a.accesses, 4);
  EXPECT_DOUBLE_EQ(a.dram_fills, 2);
  EXPECT_DOUBLE_EQ(a.writebacks, 4);
}

}  // namespace
}  // namespace confbench::sim

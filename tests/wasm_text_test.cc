#include <gtest/gtest.h>

#include "wasm/builder.h"
#include "wasm/interp.h"
#include "wasm/text.h"

namespace confbench::wasm {
namespace {

Value i64(std::int64_t v) { return Value::make_i64(v); }

TEST(WasmText, ParsesMinimalModule) {
  const auto r = parse_text("(module)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.module->functions.empty());
  EXPECT_EQ(r.module->memory_pages, 0u);
}

TEST(WasmText, ParsesMemoryAndFunction) {
  const auto r = parse_text(R"((module
    (memory 2)
    (func $answer (result i64)
      i64.const 42)))");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.module->memory_pages, 2u);
  ASSERT_EQ(r.module->functions.size(), 1u);
  EXPECT_EQ(r.module->functions[0].name, "answer");
  Interpreter interp(*r.module);
  EXPECT_EQ(interp.invoke("answer", {}).i64(), 42);
}

TEST(WasmText, NamedParamsAndLocalsResolve) {
  const auto r = parse_text(R"((module
    (func $sum (param $n i64) (result i64) (local $i i64) (local $acc i64)
      block loop
        local.get $i  local.get $n  i64.ge_s  br_if 1
        local.get $acc  local.get $i  i64.add  local.set $acc
        local.get $i  i64.const 1  i64.add  local.set $i
        br 0
      end end
      local.get $acc)))");
  ASSERT_TRUE(r.ok()) << r.error;
  Interpreter interp(*r.module);
  EXPECT_EQ(interp.invoke("sum", {i64(100)}).i64(), 4950);
}

TEST(WasmText, RecursionWithForwardAndSelfCalls) {
  const auto r = parse_text(R"((module
    (func $even (param $n i64) (result i64)
      local.get $n i64.eqz if i64.const 1 return end
      local.get $n i64.const 1 i64.sub call $odd)
    (func $odd (param $n i64) (result i64)
      local.get $n i64.eqz if i64.const 0 return end
      local.get $n i64.const 1 i64.sub call $even)))");
  ASSERT_TRUE(r.ok()) << r.error;
  Interpreter interp(*r.module);
  EXPECT_EQ(interp.invoke("even", {i64(10)}).i64(), 1);
  EXPECT_EQ(interp.invoke("even", {i64(7)}).i64(), 0);
  EXPECT_EQ(interp.invoke("odd", {i64(7)}).i64(), 1);
}

TEST(WasmText, CommentsAreSkipped) {
  const auto r = parse_text(R"((module
    ;; line comment
    (func $f (result i64)
      (; block
         comment ;) i64.const 7)))");
  ASSERT_TRUE(r.ok()) << r.error;
  Interpreter interp(*r.module);
  EXPECT_EQ(interp.invoke("f", {}).i64(), 7);
}

TEST(WasmText, MemoryOpsWithOffsets) {
  const auto r = parse_text(R"((module
    (memory 1)
    (func $f (result i64)
      i64.const 0  i64.const 99  i64.store offset=64
      i64.const 64 i64.load)))");
  ASSERT_TRUE(r.ok()) << r.error;
  Interpreter interp(*r.module);
  EXPECT_EQ(interp.invoke("f", {}).i64(), 99);
}

TEST(WasmText, FloatLiterals) {
  const auto r = parse_text(R"((module
    (func $f (result i64)
      f64.const 2.25 f64.const 4.0 f64.mul i64.trunc_f64_s)))");
  ASSERT_TRUE(r.ok()) << r.error;
  Interpreter interp(*r.module);
  EXPECT_EQ(interp.invoke("f", {}).i64(), 9);
}

TEST(WasmText, HexAndNegativeIntegers) {
  const auto r = parse_text(
      "(module (func $f (result i64) i64.const 0x10 i64.const -6 i64.add))");
  ASSERT_TRUE(r.ok()) << r.error;
  Interpreter interp(*r.module);
  EXPECT_EQ(interp.invoke("f", {}).i64(), 10);
}

// --- error reporting -------------------------------------------------------------

TEST(WasmTextErrors, UnknownInstruction) {
  const auto r = parse_text("(module (func $f i64.frobnicate))");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("i64.frobnicate"), std::string::npos);
}

TEST(WasmTextErrors, UnknownLocalName) {
  const auto r = parse_text("(module (func $f local.get $nope))");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("$nope"), std::string::npos);
}

TEST(WasmTextErrors, UnknownCallee) {
  const auto r = parse_text("(module (func $f call $ghost))");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("$ghost"), std::string::npos);
}

TEST(WasmTextErrors, DuplicateFunctionName) {
  const auto r = parse_text("(module (func $f) (func $f))");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("duplicate"), std::string::npos);
}

TEST(WasmTextErrors, LineNumbersReported) {
  const auto r = parse_text("(module\n(func $f\nbogus.op))");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.line, 3);
}

TEST(WasmTextErrors, MalformedStructures) {
  EXPECT_FALSE(parse_text("").ok());
  EXPECT_FALSE(parse_text("(mod)").ok());
  EXPECT_FALSE(parse_text("(module").ok());
  EXPECT_FALSE(parse_text("(module (memory))").ok());
  EXPECT_FALSE(parse_text("(module (widget 1))").ok());
  EXPECT_FALSE(parse_text("(module (func $f i64.const))").ok());
  EXPECT_FALSE(parse_text("(module (func $f (param banana)))").ok());
  EXPECT_FALSE(parse_text("(module (; unterminated").ok());
}

// --- printer round trips ------------------------------------------------------------

TEST(WasmTextRoundTrip, BuilderProgramsSurviveBothDirections) {
  for (const Module& original :
       {programs::fib_recursive(), programs::sum_loop(), programs::sieve(),
        programs::gcd(), programs::memfill()}) {
    const std::string text = to_text(original);
    const auto reparsed = parse_text(text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.error << "\n" << text;
    ASSERT_TRUE(validate(*reparsed.module).ok);
    ASSERT_EQ(reparsed.module->functions.size(),
              original.functions.size());
    const auto& a = original.functions[0];
    const auto& b = reparsed.module->functions[0];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.params, b.params);
    EXPECT_EQ(a.body.size(), b.body.size());
  }
}

TEST(WasmTextRoundTrip, ReparsedProgramsComputeTheSameResults) {
  const auto sieve_text = to_text(programs::sieve());
  const auto parsed = parse_text(sieve_text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  Interpreter a(programs::sieve()), b(*parsed.module);
  EXPECT_EQ(a.invoke("sieve", {i64(1000)}).i64(),
            b.invoke("sieve", {i64(1000)}).i64());
}

TEST(WasmTextRoundTrip, TextIsStableUnderReprinting) {
  const std::string once = to_text(programs::gcd());
  const auto parsed = parse_text(once);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(to_text(*parsed.module), once);
}

}  // namespace
}  // namespace confbench::wasm

// Property tests over the simulation's cost model: invariants that must
// hold for every platform and VM kind, independent of tuning constants.
#include <gtest/gtest.h>

#include <cmath>

#include "tee/registry.h"
#include "vm/exec_context.h"
#include "vm/vfs.h"

namespace confbench::vm {
namespace {

struct Config {
  const char* platform;
  bool secure;
};

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  std::string name = info.param.platform;
  for (auto& c : name)
    if (c == '-') c = '_';
  return name + (info.param.secure ? "_secure" : "_normal");
}

class EveryVmKind : public ::testing::TestWithParam<Config> {
 protected:
  ExecutionContext ctx(std::uint64_t seed = 1) const {
    return ExecutionContext(
        tee::Registry::instance().create(GetParam().platform),
        GetParam().secure, seed);
  }
};

TEST_P(EveryVmKind, TimeIsMonotoneInComputeWork) {
  auto a = ctx(), b = ctx(), c = ctx();
  a.compute(1e5);
  b.compute(2e5);
  c.compute(4e5);
  EXPECT_LT(a.now(), b.now());
  EXPECT_LT(b.now(), c.now());
}

TEST_P(EveryVmKind, ComputeChargesAreAdditive) {
  auto whole = ctx(), split = ctx();
  whole.compute(3e5, 2e4);
  split.compute(1e5, 1e4);
  split.compute(2e5, 1e4);
  EXPECT_NEAR(whole.now(), split.now(), whole.now() * 1e-12);
}

TEST_P(EveryVmKind, TimeIsMonotoneInMemoryTraffic) {
  auto a = ctx(), b = ctx();
  const std::uint64_t ra = a.alloc_region(8 << 20);
  const std::uint64_t rb = b.alloc_region(8 << 20);
  a.mem_read(ra, 1 << 20, 64);
  b.mem_read(rb, 8 << 20, 64);
  EXPECT_LT(a.now(), b.now());
}

TEST_P(EveryVmKind, EverySyscallCostsTime) {
  auto c = ctx();
  const double before = c.now();
  c.syscall();
  EXPECT_GT(c.now(), before);
}

TEST_P(EveryVmKind, CountersNeverGoNegative) {
  auto c = ctx();
  c.compute(1000, 100);
  const std::uint64_t r = c.alloc_region(1 << 16);
  c.mem_read(r, 1 << 16, 64);
  c.syscall();
  c.block_write(4096);
  c.page_fault(3);
  const auto& counters = c.counters();
  for (const double v :
       {counters.instructions, counters.cache_references,
        counters.cache_misses, counters.syscalls, counters.vm_exits,
        counters.page_faults, counters.io_bytes, counters.branch_misses}) {
    EXPECT_GE(v, 0.0);
  }
  EXPECT_GE(counters.cache_references, counters.cache_misses);
}

TEST_P(EveryVmKind, WallClockScalesWithAndOnlyWithCharges) {
  // Address-space reservations and counter reads are free.
  auto c = ctx();
  c.alloc_region(1 << 30);
  (void)c.counters();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST_P(EveryVmKind, TenTrialMeanJitterIsSmall) {
  // The lognormal trial jitter must average out near 1 over trials.
  double sum = 0;
  constexpr int kTrials = 10;
  double base = 0;
  for (std::uint64_t t = 0; t < kTrials; ++t) {
    auto c = ctx(t);
    c.compute(1e6);
    base = c.now();
    sum += c.finish().wall_ns;
  }
  const double mean = sum / kTrials;
  const double sigma =
      tee::Registry::instance()
          .create(GetParam().platform)
          ->costs(GetParam().secure)
          .trial_jitter_sigma;
  EXPECT_NEAR(mean / base, 1.0, 4 * sigma / std::sqrt(10.0) + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EveryVmKind,
    ::testing::Values(Config{"none", false}, Config{"none", true},
                      Config{"tdx", false}, Config{"tdx", true},
                      Config{"sev-snp", false}, Config{"sev-snp", true},
                      Config{"cca", false}, Config{"cca", true},
                      Config{"sgx", false}, Config{"sgx", true}),
    config_name);

// --- cross-VM-kind invariants ------------------------------------------------------

class EveryTee : public ::testing::TestWithParam<const char*> {};

TEST_P(EveryTee, SecureNeverBeatsNormalOnSyscallStorms) {
  auto platform = tee::Registry::instance().create(GetParam());
  ExecutionContext nrm(platform, false, 1), sec(platform, true, 1);
  for (int i = 0; i < 10000; ++i) {
    nrm.syscall();
    sec.syscall();
  }
  EXPECT_GE(sec.now(), nrm.now());
}

TEST_P(EveryTee, SecureNeverBeatsNormalOnColdIo) {
  auto platform = tee::Registry::instance().create(GetParam());
  ExecutionContext nrm(platform, false, 1), sec(platform, true, 1);
  for (auto* c : {&nrm, &sec}) {
    Vfs fs(*c);
    fs.create("/f");
    fs.write("/f", 4 << 20);
    fs.fsync("/f");
    fs.drop_caches();
    fs.read("/f", 0, 4 << 20);
  }
  EXPECT_GE(sec.now(), nrm.now());
}

TEST_P(EveryTee, PureComputeRatioStaysNearOne) {
  // Before trial jitter, pure ALU work differs only via the secure table's
  // cpi (CCA realms) — never by more than the FVP-class factor.
  auto platform = tee::Registry::instance().create(GetParam());
  ExecutionContext nrm(platform, false, 1), sec(platform, true, 1);
  nrm.compute(1e7);
  sec.compute(1e7);
  const double ratio = sec.now() / nrm.now();
  EXPECT_GE(ratio, 1.0);
  EXPECT_LE(ratio, 1.6);
}

INSTANTIATE_TEST_SUITE_P(Tees, EveryTee,
                         ::testing::Values("tdx", "sev-snp", "cca", "sgx"));

}  // namespace
}  // namespace confbench::vm

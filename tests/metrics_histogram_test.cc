#include <gtest/gtest.h>

#include <vector>

#include "metrics/histogram.h"
#include "metrics/stats.h"
#include "sim/rng.h"

namespace confbench::metrics {
namespace {

// Worst-case relative error of a bucket-midpoint quantile estimate: half a
// bucket in log space, i.e. 10^(1/(2*40)) - 1 ~ 2.92%. Allow 4% for the
// nearest-rank-vs-interpolation difference at the distribution edges.
constexpr double kQuantileTolerance = 0.04;

void expect_quantiles_match(const LogHistogram& h, std::vector<double> xs) {
  for (const double q : {0.50, 0.90, 0.95, 0.99, 0.999}) {
    const double exact = percentile(xs, q * 100.0);
    const double est = h.quantile(q);
    EXPECT_NEAR(est / exact, 1.0, kQuantileTolerance)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(LogHistogram, CountsSumMinMax) {
  LogHistogram h;
  h.record(1000);
  h.record(2000);
  h.record(500);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 3500);
  EXPECT_DOUBLE_EQ(h.min(), 500);
  EXPECT_DOUBLE_EQ(h.max(), 2000);
  EXPECT_NEAR(h.mean(), 1166.67, 0.01);
}

TEST(LogHistogram, EmptyIsAllZero) {
  const LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0);
  EXPECT_DOUBLE_EQ(h.max(), 0);
}

TEST(LogHistogram, SingleValueQuantilesAreExact) {
  LogHistogram h;
  h.record(3.7 * 1e6);
  for (const double q : {0.0, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(h.quantile(q), 3.7 * 1e6);  // clamped to [min, max]
}

TEST(LogHistogram, QuantileAccuracyUniform) {
  sim::Rng rng(7);
  LogHistogram h;
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) {
    const double v = 1e5 + rng.next_double() * 9.9e6;  // 0.1 .. 10 ms
    xs.push_back(v);
    h.record(v);
  }
  expect_quantiles_match(h, xs);
}

TEST(LogHistogram, QuantileAccuracyLognormal) {
  // Heavy-tailed latencies: the regime the histogram exists for.
  sim::Rng rng(11);
  LogHistogram h;
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) {
    const double v = 1e6 * rng.jitter(0.8);  // median 1 ms, long tail
    xs.push_back(v);
    h.record(v);
  }
  expect_quantiles_match(h, xs);
}

TEST(LogHistogram, OutOfRangeValuesClampIntoEdgeBuckets) {
  LogHistogram h;
  h.record(0.001);  // below 1 ns
  h.record(1e15);   // beyond the top decade
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(LogHistogram::kBuckets - 1), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);  // exact extremes are preserved
  EXPECT_DOUBLE_EQ(h.max(), 1e15);
}

LogHistogram sampled(std::uint64_t seed, double scale, int n) {
  sim::Rng rng(seed);
  LogHistogram h;
  for (int i = 0; i < n; ++i) h.record(scale * rng.jitter(0.5));
  return h;
}

TEST(LogHistogram, MergeMatchesCombinedRecording) {
  sim::Rng rng(3);
  LogHistogram all, left, right;
  for (int i = 0; i < 20000; ++i) {
    const double v = 5e5 * rng.jitter(0.6);
    all.record(v);
    (i % 2 ? left : right).record(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
  for (int i = 0; i < LogHistogram::kBuckets; ++i)
    EXPECT_EQ(left.bucket_count(i), all.bucket_count(i)) << "bucket " << i;
  for (const double q : {0.5, 0.99})
    EXPECT_DOUBLE_EQ(left.quantile(q), all.quantile(q));
}

TEST(LogHistogram, MergeIsAssociative) {
  const LogHistogram a = sampled(1, 1e5, 5000);
  const LogHistogram b = sampled(2, 1e6, 7000);
  const LogHistogram c = sampled(3, 1e7, 3000);

  LogHistogram ab_c = a;  // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  LogHistogram bc = b;  // a + (b + c)
  bc.merge(c);
  LogHistogram a_bc = a;
  a_bc.merge(bc);

  EXPECT_EQ(ab_c.count(), a_bc.count());
  EXPECT_DOUBLE_EQ(ab_c.min(), a_bc.min());
  EXPECT_DOUBLE_EQ(ab_c.max(), a_bc.max());
  for (int i = 0; i < LogHistogram::kBuckets; ++i)
    EXPECT_EQ(ab_c.bucket_count(i), a_bc.bucket_count(i)) << "bucket " << i;
  for (const double q : {0.5, 0.95, 0.999})
    EXPECT_DOUBLE_EQ(ab_c.quantile(q), a_bc.quantile(q));
  EXPECT_NEAR(ab_c.sum(), a_bc.sum(), 1e-6 * ab_c.sum());
}

TEST(LogHistogram, MergeWithEmptyIsIdentity) {
  LogHistogram a = sampled(5, 1e6, 1000);
  const double p99 = a.quantile(0.99);
  a.merge(LogHistogram{});
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_DOUBLE_EQ(a.quantile(0.99), p99);
  LogHistogram empty;
  empty.merge(a);
  EXPECT_EQ(empty.count(), a.count());
  EXPECT_DOUBLE_EQ(empty.quantile(0.99), a.quantile(0.99));
}

TEST(LogHistogram, BucketBoundsArePowersOfTen) {
  EXPECT_DOUBLE_EQ(LogHistogram::bucket_lo(0), 1.0);
  EXPECT_NEAR(LogHistogram::bucket_lo(LogHistogram::kBucketsPerDecade), 10.0,
              1e-9);
  EXPECT_NEAR(
      LogHistogram::bucket_lo(3 * LogHistogram::kBucketsPerDecade), 1e3,
      1e-6);
  // A value strictly inside a bucket maps to it.
  const int i = LogHistogram::bucket_index(1e6);
  EXPECT_LE(LogHistogram::bucket_lo(i), 1e6 * (1 + 1e-12));
  EXPECT_GT(LogHistogram::bucket_hi(i) * (1 + 1e-12), 1e6);
}

}  // namespace
}  // namespace confbench::metrics

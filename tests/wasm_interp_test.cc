#include <gtest/gtest.h>

#include "tee/registry.h"
#include "vm/exec_context.h"
#include "wasm/builder.h"
#include "wasm/interp.h"

namespace confbench::wasm {
namespace {

Value i64(std::int64_t v) { return Value::make_i64(v); }

// --- validation -------------------------------------------------------------------

TEST(Validate, AcceptsAllSamplePrograms) {
  for (const Module& m :
       {programs::fib_recursive(), programs::sum_loop(), programs::sieve(),
        programs::gcd(), programs::memfill()}) {
    const auto v = validate(m);
    EXPECT_TRUE(v.ok) << v.error;
  }
}

TEST(Validate, RejectsMissingEnd) {
  Module m;
  FuncBuilder fb("f");
  fb.result(ValType::kI64).i64_const(1);
  m.functions.push_back(fb.build());
  EXPECT_FALSE(validate(m).ok);
}

TEST(Validate, RejectsStackUnderflow) {
  Module m;
  FuncBuilder fb("f");
  fb.result(ValType::kI64).i64_const(1).add().end();  // add needs 2 values
  m.functions.push_back(fb.build());
  const auto v = validate(m);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("underflow"), std::string::npos);
}

TEST(Validate, RejectsTypeMismatch) {
  Module m;
  FuncBuilder fb("f");
  fb.result(ValType::kI64).i64_const(1).f64_const(2.0).add().end();
  m.functions.push_back(fb.build());
  EXPECT_FALSE(validate(m).ok);
}

TEST(Validate, RejectsUnknownLocal) {
  Module m;
  FuncBuilder fb("f");
  fb.get(3).emit(Op::kDrop).end();
  m.functions.push_back(fb.build());
  const auto v = validate(m);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("local"), std::string::npos);
}

TEST(Validate, RejectsBadBranchDepth) {
  Module m;
  FuncBuilder fb("f");
  fb.block().i64_const(1).br_if(7).end().end();
  m.functions.push_back(fb.build());
  const auto v = validate(m);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("depth"), std::string::npos);
}

TEST(Validate, RejectsUnbalancedFrames) {
  Module m;
  FuncBuilder fb("f");
  fb.block().block().end().end();  // missing the function's own end
  m.functions.push_back(fb.build());
  // The last end closes the function frame, leaving one block unclosed...
  // Actually: block block end end -> both blocks closed, function frame
  // remains open => "missing final end" style error.
  EXPECT_FALSE(validate(m).ok);
}

TEST(Validate, RejectsCallToUnknownFunction) {
  Module m;
  FuncBuilder fb("f");
  fb.call(9).end();
  m.functions.push_back(fb.build());
  EXPECT_FALSE(validate(m).ok);
}

TEST(Validate, RejectsResultTypeMismatch) {
  Module m;
  FuncBuilder fb("f");
  fb.result(ValType::kF64).i64_const(1).end();
  m.functions.push_back(fb.build());
  EXPECT_FALSE(validate(m).ok);
}

TEST(Validate, RejectsLeakyBlock) {
  Module m;
  FuncBuilder fb("f");
  fb.result(ValType::kI64).block().i64_const(5).end().i64_const(1).end();
  m.functions.push_back(fb.build());
  const auto v = validate(m);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("void"), std::string::npos);
}

TEST(Validate, RejectsElseWithoutIf) {
  Module m;
  FuncBuilder fb("f");
  fb.block().else_().end().end();
  m.functions.push_back(fb.build());
  EXPECT_FALSE(validate(m).ok);
}

TEST(Validate, RejectsOversizedMemory) {
  Module m;
  m.memory_pages = Module::kMaxPages + 1;
  EXPECT_FALSE(validate(m).ok);
}

TEST(Interpreter, ConstructorRejectsInvalidModule) {
  Module m;
  FuncBuilder fb("f");
  fb.add().end();
  m.functions.push_back(fb.build());
  EXPECT_THROW(Interpreter{m}, std::invalid_argument);
}

// --- execution semantics -------------------------------------------------------------

TEST(Exec, ConstantsAndArithmetic) {
  Module m;
  FuncBuilder fb("f");
  fb.result(ValType::kI64);
  fb.i64_const(20).i64_const(3).mul().i64_const(9).sub();  // 51
  fb.end();
  m.functions.push_back(fb.build());
  Interpreter interp(m);
  const auto r = interp.invoke("f", {});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.i64(), 51);
}

TEST(Exec, DivisionAndRemainderSemantics) {
  Module m;
  FuncBuilder fb("f");
  const int a = fb.param(ValType::kI64);
  const int b = fb.param(ValType::kI64);
  fb.result(ValType::kI64);
  fb.get(a).get(b).div_s().end();
  m.functions.push_back(fb.build());
  Interpreter interp(m);
  EXPECT_EQ(interp.invoke("f", {i64(17), i64(5)}).i64(), 3);
  EXPECT_EQ(interp.invoke("f", {i64(-17), i64(5)}).i64(), -3);  // trunc
}

TEST(Exec, DivideByZeroTraps) {
  Module m;
  FuncBuilder fb("f");
  fb.result(ValType::kI64).i64_const(5).i64_const(0).div_s().end();
  m.functions.push_back(fb.build());
  const auto r = Interpreter(m).invoke("f", {});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kDivideByZero);
  Module m2;
  FuncBuilder fb2("f");
  fb2.result(ValType::kI64).i64_const(5).i64_const(0).rem_s().end();
  m2.functions.push_back(fb2.build());
  EXPECT_EQ(Interpreter(m2).invoke("f", {}).trap, TrapKind::kDivideByZero);
}

TEST(Exec, IfElseBothArms) {
  Module m;
  FuncBuilder fb("f");
  const int c = fb.param(ValType::kI64);
  fb.result(ValType::kI64);
  const int out = fb.local(ValType::kI64);
  fb.get(c).if_();
  fb.i64_const(111).set(out);
  fb.else_();
  fb.i64_const(222).set(out);
  fb.end();
  fb.get(out).end();
  m.functions.push_back(fb.build());
  Interpreter interp(m);
  EXPECT_EQ(interp.invoke("f", {i64(1)}).i64(), 111);
  EXPECT_EQ(interp.invoke("f", {i64(0)}).i64(), 222);
}

TEST(Exec, IfWithoutElseSkipsWhenFalse) {
  Module m;
  FuncBuilder fb("f");
  const int c = fb.param(ValType::kI64);
  fb.result(ValType::kI64);
  const int out = fb.local(ValType::kI64);
  fb.i64_const(7).set(out);
  fb.get(c).if_().i64_const(42).set(out).end();
  fb.get(out).end();
  m.functions.push_back(fb.build());
  Interpreter interp(m);
  EXPECT_EQ(interp.invoke("f", {i64(0)}).i64(), 7);
  EXPECT_EQ(interp.invoke("f", {i64(5)}).i64(), 42);
}

TEST(Exec, SelectPicksByCondition) {
  Module m;
  FuncBuilder fb("f");
  const int c = fb.param(ValType::kI64);
  fb.result(ValType::kI64);
  fb.i64_const(10).i64_const(20).get(c).emit(Op::kSelect).end();
  m.functions.push_back(fb.build());
  Interpreter interp(m);
  EXPECT_EQ(interp.invoke("f", {i64(1)}).i64(), 10);
  EXPECT_EQ(interp.invoke("f", {i64(0)}).i64(), 20);
}

TEST(Exec, SumLoop) {
  Interpreter interp(programs::sum_loop());
  EXPECT_EQ(interp.invoke("sum", {i64(10)}).i64(), 45);
  EXPECT_EQ(interp.invoke("sum", {i64(1000)}).i64(), 499500);
  EXPECT_EQ(interp.invoke("sum", {i64(0)}).i64(), 0);
}

TEST(Exec, FibRecursive) {
  Interpreter interp(programs::fib_recursive());
  EXPECT_EQ(interp.invoke("fib", {i64(0)}).i64(), 0);
  EXPECT_EQ(interp.invoke("fib", {i64(1)}).i64(), 1);
  EXPECT_EQ(interp.invoke("fib", {i64(10)}).i64(), 55);
  EXPECT_EQ(interp.invoke("fib", {i64(20)}).i64(), 6765);
}

TEST(Exec, Gcd) {
  Interpreter interp(programs::gcd());
  EXPECT_EQ(interp.invoke("gcd", {i64(48), i64(36)}).i64(), 12);
  EXPECT_EQ(interp.invoke("gcd", {i64(17), i64(13)}).i64(), 1);
  EXPECT_EQ(interp.invoke("gcd", {i64(100), i64(0)}).i64(), 100);
}

TEST(Exec, SievePrimeCounts) {
  Interpreter interp(programs::sieve());
  EXPECT_EQ(interp.invoke("sieve", {i64(100)}).i64(), 25);
  EXPECT_EQ(interp.invoke("sieve", {i64(10000)}).i64(), 1229);
}

TEST(Exec, MemfillChecksum) {
  Interpreter interp(programs::memfill());
  // sum(i*7, i<100) = 7 * 4950
  EXPECT_EQ(interp.invoke("memfill", {i64(100)}).i64(), 7 * 4950);
  EXPECT_EQ(interp.read_i64(8), 7);  // slot 1 holds 1*7
}

TEST(Exec, OutOfBoundsMemoryTraps) {
  Module m;
  m.memory_pages = 1;
  FuncBuilder fb("f");
  fb.result(ValType::kI64);
  fb.i64_const(Module::kPageBytes - 4).i64_load().end();  // straddles end
  m.functions.push_back(fb.build());
  const auto r = Interpreter(m).invoke("f", {});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kOutOfBoundsMemory);
}

TEST(Exec, MemoryGrowExtendsBounds) {
  Module m;
  m.memory_pages = 1;
  FuncBuilder fb("f");
  fb.result(ValType::kI64);
  fb.i64_const(1).emit(Op::kMemoryGrow).emit(Op::kDrop);
  fb.i64_const(Module::kPageBytes + 16).i64_const(99).i64_store();
  fb.i64_const(Module::kPageBytes + 16).i64_load();
  fb.end();
  m.functions.push_back(fb.build());
  Interpreter interp(m);
  const auto r = interp.invoke("f", {});
  ASSERT_TRUE(r.ok) << to_string(r.trap);
  EXPECT_EQ(r.i64(), 99);
  EXPECT_EQ(interp.memory_bytes(), 2u * Module::kPageBytes);
}

TEST(Exec, DeepRecursionTrapsCleanly) {
  Module m;
  FuncBuilder fb("f");
  const int n = fb.param(ValType::kI64);
  fb.result(ValType::kI64);
  fb.get(n).i64_const(1).add().call(0).end();  // infinite recursion
  m.functions.push_back(fb.build());
  const auto r = Interpreter(m).invoke("f", {i64(0)});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kStackExhausted);
}

TEST(Exec, FuelLimitStopsRunawayLoops) {
  Module m;
  FuncBuilder fb("f");
  fb.result(ValType::kI64);
  fb.block().loop().br(0).end().end().i64_const(1).end();
  m.functions.push_back(fb.build());
  InterpConfig cfg;
  cfg.fuel = 10000;
  const auto r = Interpreter(m, cfg).invoke("f", {});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kFuelExhausted);
}

TEST(Exec, UnknownFunctionAndArityMismatch) {
  Interpreter interp(programs::gcd());
  EXPECT_EQ(interp.invoke("nope", {}).trap, TrapKind::kUnknownFunction);
  EXPECT_FALSE(interp.invoke("gcd", {i64(1)}).ok);
}

TEST(Exec, InstructionCountReported) {
  Interpreter interp(programs::sum_loop());
  const auto small = interp.invoke("sum", {i64(10)});
  const auto large = interp.invoke("sum", {i64(1000)});
  EXPECT_GT(small.instructions, 50u);
  EXPECT_GT(large.instructions, 50 * small.instructions / 10);
}

// --- simulation charging ---------------------------------------------------------------

TEST(Charging, DispatchWorkChargedToContext) {
  auto platform = tee::Registry::instance().create("tdx");
  vm::ExecutionContext ctx(platform, false, 1);
  Interpreter interp(programs::sum_loop());
  const auto r = interp.invoke("sum", {i64(50000)}, &ctx);
  ASSERT_TRUE(r.ok);
  // ~8 native ops per bytecode instruction (the wasm profile's expansion).
  EXPECT_NEAR(ctx.counters().instructions,
              static_cast<double>(r.instructions) * 8.0,
              static_cast<double>(r.instructions) * 8.0 * 0.25);
  EXPECT_GT(ctx.now(), 0);
}

TEST(Charging, MemoryProgramsTouchTheCacheModel) {
  auto platform = tee::Registry::instance().create("tdx");
  vm::ExecutionContext ctx(platform, false, 1);
  Interpreter interp(programs::memfill());
  interp.invoke("memfill", {i64(4000)}, &ctx);
  EXPECT_GE(ctx.counters().cache_references, 8000);  // load+store per slot
}

TEST(Charging, SecureVmSlowerForSameProgram) {
  auto platform = tee::Registry::instance().create("cca");
  vm::ExecutionContext nrm(platform, false, 1), sec(platform, true, 1);
  Interpreter a(programs::sieve()), b(programs::sieve());
  a.invoke("sieve", {i64(10000)}, &nrm);
  b.invoke("sieve", {i64(10000)}, &sec);
  EXPECT_GT(sec.now(), nrm.now());
}

TEST(Charging, MatchesWasmProfileExpansion) {
  // The rt 'wasm' profile models wasmi with op_expansion 8; MiniWasm's
  // default dispatch cost is the same constant — keep them in sync.
  InterpConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.dispatch_ops_per_instr, 8.0);
}

}  // namespace
}  // namespace confbench::wasm

#include "vm/vfs.h"

#include <gtest/gtest.h>

#include "tee/registry.h"

namespace confbench::vm {
namespace {

struct VfsTest : ::testing::Test {
  VfsTest()
      : ctx(tee::Registry::instance().create("none"), false, 1), fs(ctx) {}
  ExecutionContext ctx;
  Vfs fs;
};

TEST_F(VfsTest, MkdirAndExists) {
  EXPECT_TRUE(fs.mkdir("/a"));
  EXPECT_TRUE(fs.exists("/a"));
  EXPECT_TRUE(fs.is_dir("/a"));
  EXPECT_FALSE(fs.exists("/b"));
}

TEST_F(VfsTest, MkdirFailsWithoutParent) {
  EXPECT_FALSE(fs.mkdir("/a/b/c"));
  EXPECT_TRUE(fs.mkdir("/a"));
  EXPECT_TRUE(fs.mkdir("/a/b"));
  EXPECT_TRUE(fs.mkdir("/a/b/c"));
}

TEST_F(VfsTest, MkdirFailsOnDuplicate) {
  EXPECT_TRUE(fs.mkdir("/a"));
  EXPECT_FALSE(fs.mkdir("/a"));
}

TEST_F(VfsTest, CreateFileAndSize) {
  EXPECT_TRUE(fs.create("/f"));
  EXPECT_TRUE(fs.exists("/f"));
  EXPECT_FALSE(fs.is_dir("/f"));
  EXPECT_EQ(fs.file_size("/f"), 0u);
}

TEST_F(VfsTest, CreateFailsOnExisting) {
  EXPECT_TRUE(fs.create("/f"));
  EXPECT_FALSE(fs.create("/f"));
}

TEST_F(VfsTest, WriteAppendsAndGrowsSize) {
  fs.create("/f");
  EXPECT_EQ(fs.write("/f", 1000), 1000u);
  EXPECT_EQ(fs.write("/f", 500), 500u);
  EXPECT_EQ(fs.file_size("/f"), 1500u);
}

TEST_F(VfsTest, WriteCreatesMissingFile) {
  fs.mkdir("/d");
  EXPECT_EQ(fs.write("/d/new", 64), 64u);
  EXPECT_TRUE(fs.exists("/d/new"));
}

TEST_F(VfsTest, WriteFailsWithoutParentDir) {
  EXPECT_EQ(fs.write("/nodir/f", 64), 0u);
}

TEST_F(VfsTest, ReadRespectsEof) {
  fs.write("/f", 100);
  EXPECT_EQ(fs.read("/f", 0, 100), 100u);
  EXPECT_EQ(fs.read("/f", 50, 100), 50u);   // short read
  EXPECT_EQ(fs.read("/f", 100, 10), 0u);    // at EOF
  EXPECT_EQ(fs.read("/f", 200, 10), 0u);    // past EOF
}

TEST_F(VfsTest, ReadMissingFileFails) {
  EXPECT_EQ(fs.read("/nope", 0, 10), 0u);
}

TEST_F(VfsTest, UnlinkRemovesFilesOnly) {
  fs.create("/f");
  fs.mkdir("/d");
  EXPECT_TRUE(fs.unlink("/f"));
  EXPECT_FALSE(fs.exists("/f"));
  EXPECT_FALSE(fs.unlink("/d"));  // directories need rmdir
  EXPECT_FALSE(fs.unlink("/f"));  // already gone
}

TEST_F(VfsTest, RmdirOnlyEmptyDirs) {
  fs.mkdir("/d");
  fs.create("/d/f");
  EXPECT_FALSE(fs.rmdir("/d"));
  fs.unlink("/d/f");
  EXPECT_TRUE(fs.rmdir("/d"));
  EXPECT_FALSE(fs.exists("/d"));
}

TEST_F(VfsTest, ListDirSorted) {
  fs.mkdir("/d");
  fs.create("/d/b");
  fs.create("/d/a");
  fs.mkdir("/d/c");
  const auto entries = fs.list_dir("/d");
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], "a");
  EXPECT_EQ(entries[1], "b");
  EXPECT_EQ(entries[2], "c");
}

TEST_F(VfsTest, CachedReadAvoidsDevice) {
  fs.write("/f", 64 * 1024);
  fs.fsync("/f");
  const auto before = fs.device().reads();
  fs.read("/f", 0, 64 * 1024);  // resident: written pages stay cached
  EXPECT_EQ(fs.device().reads(), before);
}

TEST_F(VfsTest, DropCachesForcesDeviceReads) {
  fs.write("/f", 64 * 1024);
  fs.fsync("/f");
  fs.drop_caches();
  const auto before = fs.device().reads();
  fs.read("/f", 0, 4096);
  EXPECT_GT(fs.device().reads(), before);
}

TEST_F(VfsTest, ReadaheadBatchesSequentialReads) {
  fs.write("/f", 1 << 20);
  fs.fsync("/f");
  fs.drop_caches();
  const auto before = fs.device().reads();
  for (std::uint64_t off = 0; off < (1 << 20); off += 4096)
    fs.read("/f", off, 4096);
  const auto device_reads = fs.device().reads() - before;
  // 1 MiB at 128-KiB readahead: 8 device requests, not 256.
  EXPECT_LE(device_reads, 10u);
  EXPECT_GE(device_reads, 8u);
}

TEST_F(VfsTest, DirtyThresholdTriggersWriteback) {
  ExecutionContext ctx2(tee::Registry::instance().create("none"), false, 2);
  Vfs small(ctx2, /*dirty_threshold=*/64 * 1024);
  small.create("/f");
  const auto before = small.device().writes();
  small.write("/f", 128 * 1024);  // exceeds the 64-KiB dirty threshold
  EXPECT_GT(small.device().writes(), before);
}

TEST_F(VfsTest, FsyncWritesDirtyDataOnce) {
  fs.write("/f", 10000);
  const auto w0 = fs.device().bytes_written();
  fs.fsync("/f");
  const auto w1 = fs.device().bytes_written();
  EXPECT_GE(w1 - w0, 10000u);  // rounded up to sectors
  fs.fsync("/f");  // nothing dirty: no new data written
  EXPECT_EQ(fs.device().bytes_written(), w1);
}

TEST_F(VfsTest, FsyncOnMissingFileFails) {
  EXPECT_FALSE(fs.fsync("/ghost"));
}

TEST_F(VfsTest, TruncateResetsFile) {
  fs.write("/f", 5000);
  EXPECT_TRUE(fs.truncate("/f"));
  EXPECT_EQ(fs.file_size("/f"), 0u);
  EXPECT_EQ(fs.read("/f", 0, 10), 0u);
  EXPECT_FALSE(fs.truncate("/ghost"));
}

TEST_F(VfsTest, SyncAllFlushesEverything) {
  fs.mkdir("/d");
  fs.write("/d/a", 1000);
  fs.write("/d/b", 2000);
  fs.sync_all();
  const auto w = fs.device().bytes_written();
  fs.sync_all();  // idempotent
  EXPECT_EQ(fs.device().bytes_written(), w);
}

TEST_F(VfsTest, OperationsChargeSyscalls) {
  const double before = ctx.counters().syscalls;
  fs.mkdir("/x");
  fs.create("/x/f");
  fs.write("/x/f", 10);
  fs.read("/x/f", 0, 10);
  fs.unlink("/x/f");
  EXPECT_GE(ctx.counters().syscalls, before + 5);
}

TEST_F(VfsTest, SecureIoCostsMoreOnTdx) {
  auto tdx = tee::Registry::instance().create("tdx");
  ExecutionContext nrm(tdx, false, 3), sec(tdx, true, 3);
  sim::Ns nrm_t = 0, sec_t = 0;
  for (auto* c : {&nrm, &sec}) {
    Vfs f(*c);
    f.create("/f");
    const sim::Ns t0 = c->now();
    f.write("/f", 1 << 20);
    f.fsync("/f");
    f.drop_caches();
    f.read("/f", 0, 1 << 20);
    (c == &nrm ? nrm_t : sec_t) = c->now() - t0;
  }
  EXPECT_GT(sec_t, nrm_t * 1.3);  // bounce buffers bite
}

TEST(BlockDevice, RoundsToSectors) {
  ExecutionContext ctx(tee::Registry::instance().create("none"), false, 1);
  BlockDevice dev(ctx);
  dev.read(1);
  EXPECT_EQ(dev.bytes_read(), BlockDevice::kSector);
  dev.write(BlockDevice::kSector + 1);
  EXPECT_EQ(dev.bytes_written(), 2 * BlockDevice::kSector);
  dev.read(0);  // no-op
  EXPECT_EQ(dev.reads(), 1u);
}

}  // namespace
}  // namespace confbench::vm

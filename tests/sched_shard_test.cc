// Sharded gateway fabric: hash-ring determinism, bounded-load slice
// assignment, topology-born subset partitions, cross-shard failover and the
// zero-lost-requests invariant under full shard partitions.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "sched/shard.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace confbench::sched {
namespace {

using sim::kMs;
using sim::kSec;
using sim::kUs;

// --- HashRing ----------------------------------------------------------------

TEST(HashRing, OwnerHeadsTheChainAndChainsArePermutations) {
  const std::vector<std::string> nodes = {"shard-0", "shard-1", "shard-2",
                                          "shard-3"};
  HashRing ring(nodes, 64);
  HashRing again(nodes, 64);
  EXPECT_EQ(ring.nodes(), 4u);
  for (std::uint64_t k = 0; k < 200; ++k) {
    const std::uint64_t h = sim::stable_hash("key-" + std::to_string(k));
    const auto chain = ring.chain(h);
    ASSERT_EQ(chain.size(), 4u);
    EXPECT_EQ(chain.front(), ring.owner(h));
    // Every node appears exactly once: the chain is the failover order.
    std::set<std::uint32_t> distinct(chain.begin(), chain.end());
    EXPECT_EQ(distinct.size(), 4u);
    // Same nodes, same vnodes => same ring, independent of instance.
    EXPECT_EQ(again.chain(h), chain);
  }
}

TEST(HashRing, RejectsDegenerateConfigurations) {
  EXPECT_THROW(HashRing({}, 8), std::invalid_argument);
  EXPECT_THROW(HashRing({"a"}, 0), std::invalid_argument);
}

// --- ShardedFrontend ---------------------------------------------------------

TEST(ShardedFrontend, BoundedLoadSpillCapsEverySlice) {
  ShardConfig sc;
  sc.shards = 4;
  sc.load_factor = 1.25;
  const int replicas = 16;
  ShardedFrontend fe(sc, replicas);
  // cap = ceil(16 / 4 * 1.25) = 5
  std::size_t assigned = 0;
  for (int s = 0; s < fe.shards(); ++s) {
    EXPECT_LE(fe.slice(s).size(), 5u) << "bounded-load cap violated";
    for (const std::uint32_t r : fe.slice(s))
      EXPECT_EQ(fe.owner_of_replica(r), static_cast<std::uint32_t>(s));
    assigned += fe.slice(s).size();
  }
  EXPECT_EQ(assigned, static_cast<std::size_t>(replicas))
      << "every replica lands in exactly one slice";
  EXPECT_THROW(ShardedFrontend(ShardConfig{.shards = 0}, 4),
               std::invalid_argument);
  EXPECT_THROW(ShardedFrontend(ShardConfig{.load_factor = 0.5}, 4),
               std::invalid_argument);
}

TEST(ShardedFrontend, RouteIsDeterministicAndSpreadsHomeShards) {
  ShardConfig sc;
  ShardedFrontend fe(sc, 16);
  ShardedFrontend fe2(sc, 16);
  std::vector<std::uint64_t> per_shard(static_cast<std::size_t>(fe.shards()));
  for (std::uint64_t id = 0; id < 4000; ++id) {
    const auto chain = fe.route(id);
    ASSERT_EQ(chain.size(), static_cast<std::size_t>(fe.shards()));
    EXPECT_EQ(fe2.route(id), chain);
    ++per_shard[chain.front()];
  }
  // Sequential ids must not all march onto one shard: every shard homes a
  // material share of traffic (vnodes smooth the ring).
  for (const std::uint64_t n : per_shard)
    EXPECT_GT(n, 4000u / (static_cast<std::uint64_t>(fe.shards()) * 4));
}

// --- Sharded experiment ------------------------------------------------------

ShardedConfig shard_config() {
  ShardedConfig cfg;
  cfg.requests = 3000;
  cfg.rate_rps = 3000;
  cfg.seed = 11;
  cfg.replicas = 16;
  cfg.shard.shards = 4;
  cfg.queue = {.concurrency = 8, .queue_depth = 32};
  cfg.scaler.tick_ns = 20 * kMs;
  cfg.retry.max_attempts = 4;
  return cfg;
}

ServiceModel shard_model() {
  ServiceModel m;
  m.parallel_ns = 1 * kMs;
  m.serialized_ns = 0;
  m.jitter_sigma = 0.02;
  m.cold_start_ns = 0.5 * kSec;
  return m;
}

TEST(ShardedFabric, FaultFreeRunCompletesEverythingByteIdentically) {
  const ShardedConfig cfg = shard_config();
  const ShardedResult a =
      ShardedExperiment(cfg).run_with_model(shard_model());
  const ShardedResult b =
      ShardedExperiment(cfg).run_with_model(shard_model());
  EXPECT_EQ(a.offered, cfg.requests);
  EXPECT_EQ(a.completed, a.offered) << "fault-free fleet must not shed";
  EXPECT_TRUE(a.accounted());
  EXPECT_EQ(a.failovers, 0u);
  EXPECT_EQ(a.cross_failovers, 0u);
  EXPECT_EQ(a.shed, 0u);
  EXPECT_EQ(a.responses_lost, 0u);
  // Determinism contract: same seed, same bytes.
  EXPECT_EQ(a.to_json(), b.to_json());
  // Every shard served its home traffic.
  for (const ShardStats& s : a.shards) {
    EXPECT_GT(s.admitted, 0u) << s.host;
    EXPECT_EQ(s.cross_admitted, 0u) << s.host;
  }
}

TEST(ShardedFabric, ClientShardWindowEmergesAsSubsetPartition) {
  // One host-addressed window on client -> shard-0. Nothing in the replay
  // knows about shards; the subset partition *emerges* from the topology:
  // only shard-0's home admissions detour, the other shards are untouched.
  ShardedConfig cfg = shard_config();
  cfg.faults.link_down(200 * kMs, 400 * kMs, "client",
                       ShardedFrontend::shard_host(0));
  const ShardedResult r =
      ShardedExperiment(cfg).run_with_model(shard_model());
  EXPECT_TRUE(r.accounted())
      << "completed=" << r.completed << " rejected=" << r.rejected
      << " failed=" << r.failed << " offered=" << r.offered;
  EXPECT_GT(r.cross_failovers, 0u)
      << "shard-0 admissions must fail over across the ring";
  EXPECT_GT(r.latency_cross.count(), 0u);
  // The successors absorbed shard-0's traffic on its behalf.
  std::uint64_t cross_admitted = 0;
  for (const ShardStats& s : r.shards) cross_admitted += s.cross_admitted;
  EXPECT_GT(cross_admitted, 0u);
  EXPECT_GT(r.availability(), 0.95);
}

TEST(ShardedFabric, FullyPartitionedShardLosesZeroAcceptedRequests) {
  // shard-0 is cut off in both directions: client cannot reach it, it can
  // reach neither its replicas nor the client. Every request homed there
  // must still terminate — completed via a successor shard or failed with
  // a typed core::ErrorCode. Nothing may black-hole.
  ShardedConfig cfg = shard_config();
  const std::string s0 = ShardedFrontend::shard_host(0);
  cfg.faults.link_down(200 * kMs, 500 * kMs, "*", s0)
      .link_down(200 * kMs, 500 * kMs, s0, "*");
  const ShardedResult r =
      ShardedExperiment(cfg).run_with_model(shard_model());
  EXPECT_TRUE(r.accounted())
      << "zero-lost-requests invariant: completed=" << r.completed
      << " rejected=" << r.rejected << " failed=" << r.failed
      << " offered=" << r.offered;
  EXPECT_GT(r.cross_failovers, 0u);
  // Terminal failures, if any, carry a typed reason.
  std::uint64_t coded = 0;
  for (const auto& [code, n] : r.failure_codes) {
    EXPECT_FALSE(code.empty());
    coded += n;
  }
  EXPECT_EQ(coded, r.failed);
  EXPECT_GT(r.availability(), 0.9)
      << "three healthy shards must absorb the fourth's slice";
}

TEST(ShardedFabric, MinorityReachableSliceShedsInsteadOfBlackholing) {
  // Down shard-0 -> most of its own slice: the shard sees reachability
  // below degraded_min_reachable and sheds admissions to its successor
  // instead of dispatching into the partitioned slice.
  ShardedConfig cfg = shard_config();
  cfg.shard.degraded_min_reachable = 0.5;
  const ShardedFrontend fe(cfg.shard, cfg.replicas);
  const std::string s0 = ShardedFrontend::shard_host(0);
  const auto& slice = fe.slice(0);
  ASSERT_GE(slice.size(), 2u);
  const std::size_t cut = slice.size() - slice.size() / 4;  // > half
  for (std::size_t i = 0; i < cut; ++i)
    cfg.faults.link_down(200 * kMs, 400 * kMs, s0,
                         ShardedFrontend::replica_host(slice[i]));
  const ShardedResult r =
      ShardedExperiment(cfg).run_with_model(shard_model());
  EXPECT_GT(r.shed, 0u) << "degraded shard must shed, not black-hole";
  EXPECT_EQ(r.shed, r.shards[0].shed)
      << "only the degraded shard sheds";
  EXPECT_TRUE(r.accounted());
  EXPECT_GT(r.availability(), 0.95);
}

TEST(ShardedFabric, ReplicaAddressedPlanReplaysThroughTheFabric) {
  // The cluster sim's replica-addressed plan form, replayed through the
  // sharded fabric via ReplicaAddressing: replica 0's responses vanish
  // (asymmetric partition), its shard retries intra-slice first.
  ShardedConfig cfg = shard_config();
  cfg.faults.link_down(200 * kMs, 400 * kMs, /*replica=*/0);
  const ShardedResult r =
      ShardedExperiment(cfg).run_with_model(shard_model());
  EXPECT_GT(r.responses_lost, 0u)
      << "the replica serves but its answers are lost";
  EXPECT_GT(r.failovers, 0u);
  EXPECT_GT(r.retries, 0u);
  EXPECT_TRUE(r.accounted());
  EXPECT_GT(r.availability(), 0.95);
}

TEST(ShardedFabric, PerShardAutoscalerSizesEachSliceIndependently) {
  ShardedConfig cfg = shard_config();
  cfg.prewarm = false;
  cfg.scaler.min_warm = 1;
  cfg.scaler.scale_up_utilization = 0.7;
  const ShardedResult r =
      ShardedExperiment(cfg).run_with_model(shard_model());
  EXPECT_TRUE(r.accounted());
  EXPECT_GT(r.completed, 0u);
  ASSERT_EQ(r.shards.size(), 4u);
  for (const ShardStats& s : r.shards) {
    EXPECT_FALSE(s.scaler_trace.empty())
        << s.host << " must run its own autoscaler";
    EXPECT_GE(s.peak_warm, 1) << s.host;
    EXPECT_LE(s.peak_warm, static_cast<int>(s.slice)) << s.host;
  }
}

TEST(ShardedFabric, CrossAdmissionCostShowsUpInTheCrossTail) {
  // Same partition, same seed; only the cross-admission cost differs. The
  // cross-shard latency tail must price it in (the TEE re-attestation cost
  // bench/shard_failover charges on secure fleets).
  ShardedConfig cheap = shard_config();
  cheap.faults.link_down(200 * kMs, 400 * kMs, "client",
                         ShardedFrontend::shard_host(0));
  ShardedConfig dear = cheap;
  dear.shard.cross_admit_ns = 50 * kMs;
  const ShardedResult a =
      ShardedExperiment(cheap).run_with_model(shard_model());
  const ShardedResult b =
      ShardedExperiment(dear).run_with_model(shard_model());
  ASSERT_GT(a.latency_cross.count(), 0u);
  ASSERT_GT(b.latency_cross.count(), 0u);
  EXPECT_GT(b.latency_cross.p99(), a.latency_cross.p99() + 40 * kMs);
  EXPECT_TRUE(a.accounted());
  EXPECT_TRUE(b.accounted());
}

TEST(ShardedFabric, MixedWorkloadClassesStayDeterministicAndAccounted) {
  ShardedConfig cfg = shard_config();
  cfg.classes = {{.weight = 0.8, .service_mult = 1.0},
                 {.weight = 0.2, .service_mult = 4.0}};
  cfg.hedge.enabled = true;
  cfg.hedge.quantile = 0.9;
  cfg.hedge.budget_fraction = 0.25;
  const ShardedResult a = ShardedExperiment(cfg).run_with_model(shard_model());
  const ShardedResult b = ShardedExperiment(cfg).run_with_model(shard_model());
  EXPECT_TRUE(a.accounted());
  EXPECT_EQ(a.to_json(), b.to_json());
  // Hedge copies never enter the request accounting.
  EXPECT_EQ(a.completed + a.rejected + a.failed, a.offered);
}

}  // namespace
}  // namespace confbench::sched

// Fig. 8 — CCA: distribution (box-and-whiskers) of execution times from
// secure and normal VMs per function, over the 10 independent trials.
//
// Expected shape (§IV-D): realm (secure) whiskers visibly longer than the
// normal VM's — execution-time variability is higher inside realms under
// the FVP. We plot a representative subset of functions in python (one
// box pair per function) and report the whisker-span ratio for all 25.
#include <cstdio>

#include "bench/common.h"
#include "core/confbench.h"
#include "metrics/boxplot.h"
#include "metrics/csv.h"
#include "metrics/table.h"
#include "metrics/stats.h"
#include "wl/faas.h"

using namespace confbench;

int main() {
  const int n = bench::trials();
  std::printf(
      "Fig. 8 — CCA: per-function execution-time distributions (%d trials, "
      "python)\n\n",
      n);

  auto bench_sys = core::ConfBench::standard();
  metrics::CsvWriter csv(
      {"function", "vm", "trial", "ms"});

  std::vector<metrics::BoxSeries> series;
  double secure_span_sum = 0, normal_span_sum = 0;
  int wider_secure = 0, functions = 0;

  const std::vector<std::string> plotted = {"cpustress", "memstress",
                                            "iostress", "logging", "factors",
                                            "filesystem"};
  for (const auto& w : wl::faas_workloads()) {
    const auto m = bench_sys->measure(w.name, "python", "cca", n);
    std::vector<double> sec_ms, nrm_ms;
    for (std::size_t t = 0; t < m.secure_ns.size(); ++t) {
      sec_ms.push_back(m.secure_ns[t] / 1e6);
      nrm_ms.push_back(m.normal_ns[t] / 1e6);
      csv.add_row({w.name, "secure", std::to_string(t),
                   metrics::Table::num(sec_ms.back(), 4)});
      csv.add_row({w.name, "normal", std::to_string(t),
                   metrics::Table::num(nrm_ms.back(), 4)});
    }
    const auto ss = metrics::Summary::of(sec_ms);
    const auto ns = metrics::Summary::of(nrm_ms);
    // Whisker span relative to the median: the variability measure.
    const double s_span = ss.median > 0 ? (ss.max - ss.min) / ss.median : 0;
    const double n_span = ns.median > 0 ? (ns.max - ns.min) / ns.median : 0;
    secure_span_sum += s_span;
    normal_span_sum += n_span;
    ++functions;
    if (s_span > n_span) ++wider_secure;
    for (const auto& name : plotted) {
      if (name == w.name) {
        series.push_back({w.name + " realm ", ss});
        series.push_back({w.name + " normal", ns});
      }
    }
  }

  std::printf("%s\n",
              metrics::render_boxplots(series, 64, /*log_scale=*/true, "ms")
                  .c_str());
  std::printf(
      "relative whisker span (max-min)/median, mean over all 25 functions:\n"
      "  realm (secure): %.3f    normal: %.3f\n"
      "functions where the realm's whiskers are wider: %d / %d\n",
      secure_span_sum / functions, normal_span_sum / functions, wider_secure,
      functions);
  std::printf(
      "\npaper: whiskers tend to be longer in confidential VMs (higher "
      "variability)\n");
  csv.write_file("fig8_cca_dist.csv");
  std::printf("raw data -> fig8_cca_dist.csv\n");
  return 0;
}

// §IV-C "Confidential DBMS" — MiniDB speedtest (SQLite speedtest1 analogue).
//
// The paper omits detailed plots but reports: TDX and SEV-SNP overheads
// "very similar and close to 1"; CCA "the largest ones, on average up to
// 10x". This bench prints the per-test secure/normal ratios and the average
// per platform, and checks result checksums match across VMs (same data =>
// same answers).
#include <cstdio>
#include <map>

#include "bench/common.h"
#include "metrics/csv.h"
#include "metrics/table.h"
#include "vm/vfs.h"
#include "wl/db/speedtest.h"

using namespace confbench;

namespace {

std::vector<wl::db::SpeedtestResult> run_suite(vm::GuestVm& vm) {
  std::vector<wl::db::SpeedtestResult> results;
  vm.run([&](vm::ExecutionContext& ctx) -> std::string {
    vm::Vfs fs(ctx);
    results = wl::db::run_speedtest(ctx, fs, /*size=*/100);
    return "ok";
  });
  return results;
}

}  // namespace

int main() {
  std::printf(
      "DBMS stress (speedtest1-style, size 100) — secure/normal time "
      "ratios\n\n");

  std::map<std::string, std::vector<wl::db::SpeedtestResult>> secure_by, normal_by;
  const std::vector<std::string> platforms = {"tdx", "sev-snp", "cca"};
  for (const auto& p : platforms) {
    bench::VmPair pair = bench::make_vm_pair(p);
    secure_by[p] = run_suite(*pair.secure);
    normal_by[p] = run_suite(*pair.normal);
  }

  metrics::Table table({"test", "tdx", "sev-snp", "cca"});
  metrics::CsvWriter csv({"test", "platform", "secure_ms", "normal_ms",
                          "ratio"});
  std::map<std::string, double> sums;
  int checksum_mismatches = 0;
  const std::size_t n_tests = secure_by["tdx"].size();
  for (std::size_t i = 0; i < n_tests; ++i) {
    std::vector<std::string> row{secure_by["tdx"][i].id + " " +
                                 secure_by["tdx"][i].name};
    for (const auto& p : platforms) {
      const auto& s = secure_by[p][i];
      const auto& n = normal_by[p][i];
      if (s.checksum != n.checksum) ++checksum_mismatches;
      const double ratio = n.elapsed > 0 ? s.elapsed / n.elapsed : 0;
      sums[p] += ratio;
      row.push_back(metrics::Table::num(ratio));
      csv.add_row({s.id, p, metrics::Table::num(s.elapsed / 1e6, 3),
                   metrics::Table::num(n.elapsed / 1e6, 3),
                   metrics::Table::num(ratio, 3)});
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("average ratio:  tdx %.2f   sev-snp %.2f   cca %.2f\n",
              sums["tdx"] / n_tests, sums["sev-snp"] / n_tests,
              sums["cca"] / n_tests);
  std::printf("checksum mismatches secure-vs-normal: %d (expect 0)\n",
              checksum_mismatches);
  std::printf(
      "\npaper: TDX/SEV-SNP ratios ~1; CCA the largest, on average up to "
      "10x\n");
  csv.write_file("tab_dbms.csv");
  std::printf("raw data -> tab_dbms.csv\n");
  return 0;
}

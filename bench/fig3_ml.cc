// Fig. 3 — Confidential ML workloads: distribution (stacked percentiles) of
// observed inference times, secure vs normal, on TDX / SEV-SNP / CCA.
//
// Replicates the GuaranTEE-style experiment of §IV-C: a MobileNet-shaped
// model classifies 40 synthetic 1-MB images; we report min/p25/median/
// p95/max of the per-image inference time on a log scale, per platform and
// per VM kind. Expected shape: TDX and SEV-SNP close to native with TDX
// slightly ahead; CCA clearly slower (up to ~1.33x its own normal VM).
#include <cstdio>

#include "bench/common.h"
#include "metrics/csv.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "vm/vfs.h"
#include "wl/ml/model.h"

using namespace confbench;

namespace {

std::vector<double> inference_times(vm::GuestVm& vm, int images) {
  std::vector<double> times;
  vm.run([&](vm::ExecutionContext& ctx) -> std::string {
    vm::Vfs fs(ctx);
    wl::ml::install_image_dataset(fs, images);
    const wl::ml::MobileNetModel model(/*seed=*/11, /*reduced_scale=*/8);
    for (int i = 0; i < images; ++i) {
      const sim::Ns start = ctx.now();
      const auto img = wl::ml::load_and_decode(ctx, fs, i, model.input_hw());
      const auto r = model.classify(ctx, img);
      // Per-image OS noise (scheduling, interrupts): lognormal with the
      // platform's trial sigma, deterministic per (VM, image).
      const double noise = ctx.rng().jitter(ctx.costs().trial_jitter_sigma);
      times.push_back((ctx.now() - start) * noise);
      if (r.label < 0) return "bad-label";
    }
    return "ok";
  });
  return times;
}

}  // namespace

int main() {
  std::printf(
      "Fig. 3 — confidential ML: MobileNet inference time distribution\n"
      "40 synthetic 1-MB images per configuration; times in ms (virtual)\n\n");
  constexpr int kImages = 40;

  metrics::Table table({"platform", "vm", "min", "p25", "median", "p95",
                        "max", "mean"});
  metrics::CsvWriter csv(
      {"platform", "vm", "image", "inference_ms"});
  struct RatioRow {
    std::string platform;
    double ratio;
  };
  std::vector<RatioRow> ratios;

  for (const char* platform : {"tdx", "sev-snp", "cca"}) {
    bench::VmPair pair = bench::make_vm_pair(platform);
    const auto secure = inference_times(*pair.secure, kImages);
    const auto normal = inference_times(*pair.normal, kImages);
    for (int which = 0; which < 2; ++which) {
      const auto& xs = which ? secure : normal;
      const auto s = metrics::Summary::of(xs);
      table.add_row({platform, which ? "secure" : "normal",
                     metrics::Table::num(s.min / 1e6),
                     metrics::Table::num(s.p25 / 1e6),
                     metrics::Table::num(s.median / 1e6),
                     metrics::Table::num(s.p95 / 1e6),
                     metrics::Table::num(s.max / 1e6),
                     metrics::Table::num(s.mean / 1e6)});
      for (std::size_t i = 0; i < xs.size(); ++i)
        csv.add_row({platform, which ? "secure" : "normal",
                     std::to_string(i), metrics::Table::num(xs[i] / 1e6, 4)});
    }
    ratios.push_back({platform, bench::mean(secure) / bench::mean(normal)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("secure/normal mean-ratio per platform:\n");
  for (const auto& r : ratios)
    std::printf("  %-8s %.3fx\n", r.platform.c_str(), r.ratio);
  std::printf(
      "\npaper: TDX & SEV-SNP near-native (TDX slightly ahead); CCA up to "
      "~1.33x\n");
  csv.write_file("fig3_ml.csv");
  std::printf("raw data -> fig3_ml.csv\n");
  return 0;
}

// Fig. 5 — attestation: absolute times for creation ("attest") and
// validation ("check") of attestation reports on TDX and SEV-SNP.
//
// TDX follows the DCAP flow: quote generation via the TDX module + quoting
// enclave, then verification that fetches TCB info and CRLs from the Intel
// PCS over the network. SEV-SNP asks the AMD-SP for a signed report and
// verifies against certificates retrieved from the hardware. Expected
// shape: both phases faster on SEV-SNP; the TDX "check" dominated by PCS
// round trips. Y values span orders of magnitude (the paper plots log
// scale). CCA is excluded, as in the paper (no attestation hardware in the
// FVP).
#include <cstdio>

#include "attest/service.h"
#include "bench/common.h"
#include "metrics/boxplot.h"
#include "metrics/csv.h"
#include "metrics/table.h"
#include "metrics/stats.h"
#include "tee/registry.h"

using namespace confbench;

int main() {
  const int n = bench::trials();
  std::printf(
      "Fig. 5 — attestation latencies (%d trials, ms, log-scale axis)\n\n",
      n);

  attest::AttestationService service;
  metrics::CsvWriter csv({"platform", "phase", "trial", "ms"});
  std::vector<metrics::BoxSeries> series;

  struct Flow {
    const char* platform;
    bool tdx;
  };
  for (const Flow flow : {Flow{"tdx", true}, Flow{"sev-snp", false}}) {
    auto platform = tee::Registry::instance().create(flow.platform);
    std::vector<double> attest_ms, check_ms;
    int failures = 0;
    for (int t = 0; t < n; ++t) {
      const attest::AttestTiming timing =
          flow.tdx ? service.run_tdx(*platform, static_cast<std::uint64_t>(t))
                   : service.run_snp(*platform, static_cast<std::uint64_t>(t));
      if (!timing.ok) ++failures;
      attest_ms.push_back(timing.attest_ns / 1e6);
      check_ms.push_back(timing.check_ns / 1e6);
      csv.add_row({flow.platform, "attest", std::to_string(t),
                   metrics::Table::num(timing.attest_ns / 1e6, 3)});
      csv.add_row({flow.platform, "check", std::to_string(t),
                   metrics::Table::num(timing.check_ns / 1e6, 3)});
    }
    series.push_back({std::string(flow.platform) + " attest",
                      metrics::Summary::of(attest_ms)});
    series.push_back({std::string(flow.platform) + " check ",
                      metrics::Summary::of(check_ms)});
    std::printf("%-8s verification failures: %d (expect 0)\n", flow.platform,
                failures);
  }

  std::printf("\n%s\n",
              metrics::render_boxplots(series, 72, /*log_scale=*/true, "ms")
                  .c_str());
  std::printf(
      "paper: both phases faster on SEV-SNP; TDX check needs network "
      "requests to the Intel PCS\n");
  csv.write_file("fig5_attestation.csv");
  std::printf("raw data -> fig5_attestation.csv\n");
  return 0;
}

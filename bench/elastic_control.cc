// Closed-loop elastic control of the shard fabric — the controller
// *originates* churn (joins, scale-ins) from live fabric signals on the
// virtual clock instead of replaying a FaultPlan script (shard_churn
// covers the scripted events; this bench covers the policy that decides
// them).
//
// For each (platform, mode) the bench calibrates an iostress service
// model, prices the join re-attest at the verification service's full
// measured round (a joiner has no session state to resume — unlike the
// warm-ticket handoff in shard_churn), sets the controller's lead time to
// cold_start + join re-attest (exactly how long an order takes to become
// warm capacity), then runs three scenario timelines, each as a
// head-to-head pair sharing one seed so the arrival stream is identical
// and the policy is the only difference:
//   flash_ramp   a flash crowd ramps from 0.5x to 1.4x the base fleet's
//                capacity over one lead time and holds. reactive sizes
//                for the current tick's demand; predictive adds a Holt
//                level+trend forecast one lead time ahead. Both end at
//                the same fleet; predictive pays its cold starts during
//                the ramp instead of after it.
//   oscillate    demand flips between 0.65x and 1.3x capacity every
//                50 controller ticks. braked arms the anti-flapping
//                brakes (per-direction cooldowns, hysteresis band,
//                down-patience, max-churn-rate governor); nobrakes turns
//                them all off and chases every swing.
//   join_storm   the flash ramp with hostile scale-out: a crash window
//                kills every cold start begun during the first wave, and
//                (secure) an attest outage then fails the retry wave's
//                join re-attests. Failed joins are detected, charged
//                their full cold start, and retried with exponential
//                backoff; nothing accepted is ever lost.
// Expected shape:
//   - predictive absorbs the flash no later than reactive (time from
//     ramp start to the last admission rejection) and its
//     transition-window p99 does not exceed reactive's, on every secure
//     platform — at the price of more warm replica-seconds;
//   - the brakes strictly reduce membership events under oscillation,
//     and the suppression counters show where the braking happened;
//   - the storm completes joins despite crash + outage injection, with
//     detection, retries and zero lost accepted requests everywhere;
//   - identical seeds reproduce the CSV byte for byte, and cells are
//     trial-parallel: CONFBENCH_THREADS=4 emits the same bytes as 1.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "attest/svc/cost_model.h"
#include "bench/common.h"
#include "bench/harness.h"
#include "core/confbench.h"
#include "fault/fault.h"
#include "metrics/csv.h"
#include "metrics/table.h"
#include "sched/cluster.h"
#include "sched/shard.h"
#include "sim/parallel.h"
#include "sim/rng.h"
#include "tee/registry.h"

using namespace confbench;

namespace {

struct Key {
  std::string platform;
  bool secure;
  bool operator<(const Key& o) const {
    return std::tie(platform, secure) < std::tie(o.platform, o.secure);
  }
};

struct Cell {
  std::string scenario;  ///< flash_ramp | oscillate | join_storm
  std::string variant;   ///< reactive/predictive or braked/nobrakes
  std::string platform;
  bool secure = false;
};

constexpr int kShards = 3;
constexpr int kReplicas = 9;
constexpr int kConcurrency = 4;

}  // namespace

int main() {
  bench::Harness h("elastic_control");
  // Sizing knob: requests in the pre-ramp low phase (the Holt warm-up).
  // Ramp and plateau requests are derived per cell from the designed
  // timeline — integrated rate x phase duration — so every cell's stream
  // actually spans its scenario regardless of platform speed.
  const std::uint64_t n_low = h.requests("CONFBENCH_ELASTIC_REQUESTS", 2000);
  const std::vector<std::string> platforms = {"tdx", "sev-snp", "cca"};

  std::printf("Closed-loop elastic control — iostress, %llu low-phase "
              "requests/cell\n\n",
              static_cast<unsigned long long>(n_low));

  auto system = core::ConfBench::standard();

  std::map<Key, sched::ServiceModel> models;
  std::map<Key, sim::Ns> join_attest, handoff_attest;
  for (const auto& platform : platforms) {
    const tee::PlatformPtr plat = tee::Registry::instance().create(platform);
    for (const bool secure : {false, true}) {
      models[{platform, secure}] = sched::ServiceModel::calibrate(
          *system, "iostress", "go", platform, secure, 4);
      // A joiner re-attests from scratch — the full measured round, not
      // the warm-ticket resumption a slice handoff gets.
      join_attest[{platform, secure}] =
          secure && plat ? attest::svc::CostModel::measure(*plat).full_round_ns
                         : 0;
      handoff_attest[{platform, secure}] =
          secure && plat
              ? attest::svc::CostModel::measure(*plat).ticket_check_ns
              : 0;
    }
  }

  std::vector<Cell> cells;
  for (const auto& [scenario, variants] :
       std::vector<std::pair<std::string, std::vector<std::string>>>{
           {"flash_ramp", {"reactive", "predictive"}},
           {"oscillate", {"braked", "nobrakes"}},
           {"join_storm", {"reactive", "predictive"}}})
    for (const auto& variant : variants)
      for (const auto& platform : platforms)
        for (const bool secure : {false, true})
          cells.push_back({scenario, variant, platform, secure});

  // ramp_start per cell, needed again at scoring time.
  std::vector<sim::Ns> ramp_starts(cells.size(), 0);
  std::vector<sched::ShardedResult> results(cells.size());
  sim::parallel_for_ordered(
      cells.size(), sim::default_threads(), [&](std::size_t i) {
        const Cell& cell = cells[i];
        const sched::ServiceModel& model =
            models[{cell.platform, cell.secure}];
        const sim::Ns attest = join_attest[{cell.platform, cell.secure}];
        const sim::Ns lead = model.cold_start_ns + attest;
        const double lead_s = lead / sim::kSec;
        const double cold_s = model.cold_start_ns / sim::kSec;

        sched::ShardedConfig cfg;
        cfg.platform = cell.platform;
        cfg.secure = cell.secure;
        cfg.replicas = kReplicas;
        cfg.shard.shards = kShards;
        cfg.shard.ring_mix_points = true;
        cfg.shard.load_factor = 1.0;
        cfg.shard.handshake_ns = 200 * sim::kUs;
        cfg.shard.handoff_attest_ns =
            handoff_attest[{cell.platform, cell.secure}];
        cfg.queue = sched::QueueConfig{.concurrency = kConcurrency,
                                       .queue_depth = 16};
        cfg.scaler.tick_ns = 20 * sim::kMs;
        cfg.probe_interval_ns =
            std::max<sim::Ns>(50 * sim::kMs, model.total_ns());
        cfg.retry.max_attempts = 4;
        cfg.retry.budget_ns = 120 * sim::kSec;
        // Head-to-head pairs share one seed: the policy variant is the
        // only difference between the two arrival streams.
        cfg.seed = sim::hash_combine(
            sim::stable_hash("elastic/" + cell.scenario + "/" +
                             cell.platform),
            cell.secure);

        const double percap = model.replica_capacity_rps(kConcurrency);
        const double C = kReplicas * percap;  // base fleet capacity, rps

        cfg.elastic.enabled = true;
        cfg.elastic.join_attest_ns = attest;

        if (cell.scenario == "oscillate") {
          // Controller tick: long enough that the per-tick rate estimate
          // averages ~12 arrivals even in the slowest (cca/secure) cells —
          // a sub-arrival tick would make the Holt input pure shot noise.
          const double tick_s = std::max(0.025, 12.0 / (0.5 * C));
          cfg.elastic.tick_ns = tick_s * sim::kSec;
          cfg.elastic.target_utilization = 0.80;
          // Square-wave demand: 50 controller ticks per half-period so
          // the swing is well inside the Holt horizon on every platform.
          const double half_s = 50.0 * tick_s;
          const double lo = 0.65 * C, hi = 1.3 * C;
          cfg.rate_rps = lo;
          for (int k = 1; k < 8; ++k)
            cfg.rate_steps.push_back(
                {k * half_s * sim::kSec, (k % 2 != 0) ? hi : lo});
          cfg.requests = static_cast<std::uint64_t>(
              std::llround((lo + hi) / 2.0 * 8.0 * half_s));
          cfg.warmup_requests = cfg.requests / 20;
          cfg.measure_start_ns = half_s * sim::kSec;
          cfg.measure_end_ns = 8.0 * half_s * sim::kSec;
          cfg.elastic.max_extra_replicas = 12;
          if (cell.variant == "braked") {
            cfg.elastic.down_threshold = 0.6;
            cfg.elastic.down_patience = 20;
            cfg.elastic.up_cooldown_ns = 0.5 * half_s * sim::kSec;
            cfg.elastic.down_cooldown_ns = 2.0 * half_s * sim::kSec;
            cfg.elastic.max_events_per_window = 2;
            cfg.elastic.churn_window_ns = 3.0 * half_s * sim::kSec;
          } else {  // nobrakes: chase every swing
            cfg.elastic.down_threshold = 0.85;
            cfg.elastic.down_patience = 1;
            cfg.elastic.up_cooldown_ns = 0;
            cfg.elastic.down_cooldown_ns = 0;
            cfg.elastic.max_events_per_window = 0;
          }
          ramp_starts[i] = cfg.measure_start_ns;
        } else {
          // flash_ramp / join_storm: low phase at 0.35x capacity (Holt
          // warm-up), a 4-step ramp spanning one lead time up to 1.25x,
          // then a 1.4x plateau one lead time (plus margin) long — storm
          // stretches the plateau so crash-delayed joins still land
          // inside the run.
          //
          // Tick sizing is the load-bearing choice: exactly 8 ticks per
          // lead time. Fewer ticks per lead keeps the Holt trend's
          // extrapolation horizon short, so Poisson shot noise in the
          // per-tick rate (worst cell still averages >40 arrivals/tick)
          // cannot forge a ramp during the low phase — only a sustained
          // rise clears the order threshold.
          const double tick_s = std::max(0.05, lead_s / 8.0);
          cfg.elastic.tick_ns = tick_s * sim::kSec;
          // Ample post-transition headroom: at 0.65 target utilization
          // the absorbed plateau needs 16 replicas — which divides the
          // post-join ring into four equal 4-replica slices, so even the
          // shard with the largest keyspace share serves its load below
          // saturation. (Rejection is per-slice: a dispatch whose chosen
          // slice is full 429s rather than spilling, so absorption is a
          // per-shard property, not a fleet-total one.) The last
          // admission rejection then marks the end of the transition
          // rather than steady-state hot-shard overflow.
          cfg.elastic.target_utilization = 0.65;
          const double t_low = static_cast<double>(n_low) / (0.35 * C);
          const sim::Ns ramp = t_low * sim::kSec;
          ramp_starts[i] = ramp;
          const double plateau_s =
              lead_s + 2.5 +
              (cell.scenario == "join_storm" ? 2.5 * cold_s : 0.0);
          cfg.rate_rps = 0.35 * C;
          const double steps[4] = {0.6, 0.8, 0.95, 1.05};
          for (int k = 0; k < 4; ++k)
            cfg.rate_steps.push_back(
                {ramp + k * lead / 4.0, steps[k] * C});
          cfg.rate_steps.push_back({ramp + lead, 1.15 * C});
          cfg.requests = static_cast<std::uint64_t>(std::llround(
              n_low + (0.6 + 0.8 + 0.95 + 1.05) * C * lead_s / 4.0 +
              1.15 * C * plateau_s));
          cfg.warmup_requests = n_low / 2;
          cfg.measure_start_ns = ramp;
          cfg.measure_end_ns = ramp + lead + plateau_s * sim::kSec;
          cfg.elastic.max_extra_replicas = 7;
          cfg.elastic.replicas_per_shard = 4;
          cfg.elastic.max_extra_shards = 1;
          cfg.elastic.predictive = cell.variant == "predictive";
          cfg.elastic.lead_time_ns = lead;
          cfg.elastic.down_patience = 8;
          cfg.elastic.down_cooldown_ns = 1 * sim::kSec;
          if (cell.scenario == "join_storm") {
            // First-wave cold starts crash; the retry wave (backoff
            // pushes its boots past the window) then hits an attest
            // outage timed over its re-attest attempts (secure cells).
            cfg.faults.join_crash(ramp, 0.9 * model.cold_start_ns);
            if (cell.secure)
              cfg.faults.attest_outage(ramp + 1.8 * model.cold_start_ns,
                                       0.6 * model.cold_start_ns);
            cfg.elastic.join_max_attempts = 10;
            cfg.elastic.join_backoff_ns = 50 * sim::kMs;
            cfg.elastic.join_backoff_mult = 1.5;
          }
        }

        results[i] = sched::ShardedExperiment(cfg).run_with_model(model);
      });

  metrics::CsvWriter csv(
      {"scenario", "variant", "platform", "secure", "offered", "completed",
       "rejected", "failed", "replica_orders", "shard_orders",
       "joins_completed", "join_crashes", "join_attest_failures",
       "join_retries", "joins_abandoned", "scale_ins", "scale_in_aborts",
       "suppressed_cooldown", "suppressed_governor", "warm_replica_s",
       "tta_s", "p99_window_ms", "availability", "throughput_rps"});

  // [platform][secure] -> per-variant scores for the paired comparisons.
  using Grid = std::map<std::string, std::map<bool, double>>;
  Grid tta_react, tta_pred, p99_react, p99_pred, rs_react, rs_pred;
  Grid churn_braked, churn_nobrakes;
  std::uint64_t storm_crashes = 0, storm_retries = 0, storm_attest_fail = 0,
                storm_completed = 0, joins_total = 0;

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const sched::ShardedResult& r = results[i];
    const std::string where = cell.scenario + "/" + cell.variant + "/" +
                              cell.platform +
                              (cell.secure ? "/secure" : "/normal");

    h.check(r.accounted(), "zero lost accepted requests in " + where);
    h.check(r.elastic.replica_orders > 0,
            "the controller ordered capacity in " + where);
    joins_total += r.elastic.joins_completed;

    // Time-to-absorb: from ramp start to the last admission rejection
    // (never rejected again once the ordered capacity landed).
    const double tta_s =
        std::max(0.0, (r.last_reject_ns - ramp_starts[i]) / sim::kSec);
    const double p99w_ms = r.latency_window.p99() / 1e6;
    const double churn_events =
        static_cast<double>(r.elastic.replica_orders +
                            r.elastic.shard_orders + r.elastic.scale_ins +
                            r.elastic.shard_retires);

    if (cell.scenario == "flash_ramp") {
      h.check(r.latency_window.count() > 0,
              "the transition window saw completions in " + where);
      h.check(r.elastic.joins_completed == r.churn.replica_adds,
              "every ring add came from a completed join in " + where);
      (cell.variant == "predictive" ? tta_pred : tta_react)
          [cell.platform][cell.secure] = tta_s;
      (cell.variant == "predictive" ? p99_pred : p99_react)
          [cell.platform][cell.secure] = p99w_ms;
      (cell.variant == "predictive" ? rs_pred : rs_react)
          [cell.platform][cell.secure] = r.elastic.warm_replica_seconds;
    } else if (cell.scenario == "oscillate") {
      (cell.variant == "braked" ? churn_braked : churn_nobrakes)
          [cell.platform][cell.secure] = churn_events;
      if (cell.variant == "braked")
        h.check(r.elastic.suppressed_cooldown +
                        r.elastic.suppressed_governor >
                    0,
                "the brakes actually suppressed orders in " + where);
    } else {  // join_storm
      h.check(r.elastic.join_crashes > 0,
              "the crash window killed first-wave cold starts in " + where);
      h.check(r.elastic.join_retries > 0,
              "failed joins were retried with backoff in " + where);
      h.check(r.elastic.joins_completed > 0,
              "joins eventually completed despite the storm in " + where);
      if (cell.secure)
        h.check(r.elastic.join_attest_failures > 0,
                "the outage failed retry-wave re-attests in " + where);
      storm_crashes += r.elastic.join_crashes;
      storm_retries += r.elastic.join_retries;
      storm_attest_fail += r.elastic.join_attest_failures;
      storm_completed += r.elastic.joins_completed;
    }

    csv.add_row({cell.scenario, cell.variant, cell.platform,
                 cell.secure ? "1" : "0", std::to_string(r.offered),
                 std::to_string(r.completed), std::to_string(r.rejected),
                 std::to_string(r.failed),
                 std::to_string(r.elastic.replica_orders),
                 std::to_string(r.elastic.shard_orders),
                 std::to_string(r.elastic.joins_completed),
                 std::to_string(r.elastic.join_crashes),
                 std::to_string(r.elastic.join_attest_failures),
                 std::to_string(r.elastic.join_retries),
                 std::to_string(r.elastic.joins_abandoned),
                 std::to_string(r.elastic.scale_ins),
                 std::to_string(r.elastic.scale_in_aborts),
                 std::to_string(r.elastic.suppressed_cooldown),
                 std::to_string(r.elastic.suppressed_governor),
                 metrics::Table::num(r.elastic.warm_replica_seconds, 2),
                 metrics::Table::num(tta_s, 4),
                 metrics::Table::num(p99w_ms, 4),
                 metrics::Table::num(r.availability(), 6),
                 metrics::Table::num(r.throughput_rps(), 1)});
  }

  // (a) Predictive vs reactive on the flash ramp (secure platforms are
  // the gate: that is where the join re-attest makes lead time longest).
  std::printf("Flash ramp: predictive vs reactive\n");
  std::printf("%-9s %7s %10s %10s %12s %12s %10s\n", "platform", "mode",
              "tta_r_s", "tta_p_s", "p99w_r_ms", "p99w_p_ms", "rs_p/rs_r");
  double tta_margin_min = 1e18, p99_margin_min = 1e18;
  double tta_pred_worst = 0, rs_ratio_worst = 0;
  for (const auto& platform : platforms)
    for (const bool secure : {false, true}) {
      const double tr = tta_react[platform][secure];
      const double tp = tta_pred[platform][secure];
      const double pr = p99_react[platform][secure];
      const double pp = p99_pred[platform][secure];
      const double rs_ratio = rs_react[platform][secure] > 0
                                  ? rs_pred[platform][secure] /
                                        rs_react[platform][secure]
                                  : 0;
      std::printf("%-9s %7s %10.3f %10.3f %12.3f %12.3f %10.3f\n",
                  platform.c_str(), secure ? "secure" : "normal", tr, tp, pr,
                  pp, rs_ratio);
      if (secure) {
        tta_margin_min = std::min(tta_margin_min, tr - tp);
        p99_margin_min = std::min(p99_margin_min, pr - pp);
        tta_pred_worst = std::max(tta_pred_worst, tp);
        rs_ratio_worst = std::max(rs_ratio_worst, rs_ratio);
        h.check(tp <= tr + 1e-9,
                "predictive absorbs no later than reactive on " + platform +
                    "/secure");
        h.check(pp <= pr + 1e-9,
                "predictive transition p99 <= reactive on " + platform +
                    "/secure");
      }
    }
  std::printf(
      "expected: ordering capacity one lead time ahead moves the cold\n"
      "starts into the ramp — the flash is absorbed sooner and the\n"
      "transition tail is flatter, paid for in warm replica-seconds\n\n");

  // (b) Anti-flapping brakes under oscillating demand.
  std::printf("Oscillation: membership events, braked vs brakes-off\n");
  std::printf("%-9s %7s %10s %10s %8s\n", "platform", "mode", "braked",
              "nobrakes", "ratio");
  double brake_ratio_min = 1e18;
  for (const auto& platform : platforms)
    for (const bool secure : {false, true}) {
      const double b = churn_braked[platform][secure];
      const double nb = churn_nobrakes[platform][secure];
      brake_ratio_min =
          std::min(brake_ratio_min, b > 0 ? nb / b : 0.0);
      std::printf("%-9s %7s %10.0f %10.0f %8.2f\n", platform.c_str(),
                  secure ? "secure" : "normal", b, nb, b > 0 ? nb / b : 0.0);
      h.check(b < nb,
              "brakes cap churn events on " + platform +
                  (secure ? "/secure" : "/normal"));
    }
  std::printf(
      "expected: cooldowns, hysteresis, patience and the churn governor\n"
      "strictly reduce membership events against the same square wave\n\n");

  std::printf("Join storm: crashes=%llu retries=%llu attest_failures=%llu "
              "joins_completed=%llu\n\n",
              static_cast<unsigned long long>(storm_crashes),
              static_cast<unsigned long long>(storm_retries),
              static_cast<unsigned long long>(storm_attest_fail),
              static_cast<unsigned long long>(storm_completed));

  h.metric("tta_margin_min_s", tta_margin_min);
  h.metric("tta_pred_worst_s", tta_pred_worst);
  h.metric("p99_margin_min_ms", p99_margin_min);
  h.metric("replica_s_ratio_worst", rs_ratio_worst);
  h.metric("osc_brake_ratio_min", brake_ratio_min);
  h.metric("storm_join_crashes_total", storm_crashes);
  h.metric("storm_join_retries_total", storm_retries);
  h.metric("storm_attest_failures_total", storm_attest_fail);
  h.metric("storm_joins_completed_total", storm_completed);
  h.metric("joins_completed_total", joins_total);

  h.write_csv(csv, "elastic_control.csv");

  // Per-tick traces of one representative cell (flash_ramp/predictive/
  // tdx/secure): the controller's own decisions, and the per-shard scaler
  // samples with the rejected_delta attribution column.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    if (cell.scenario != "flash_ramp" || cell.variant != "predictive" ||
        cell.platform != "tdx" || !cell.secure)
      continue;
    const sched::ShardedResult& r = results[i];
    metrics::CsvWriter ctrace(
        {"t_ms", "rate_rps", "level_rps", "trend_rps", "demand_rps",
         "rejected_delta", "queued", "warm", "pending", "needed",
         "add_replicas", "add_shards", "remove_replicas",
         "suppressed_cooldown", "suppressed_governor"});
    for (const auto& s : r.elastic_trace)
      ctrace.add_row({metrics::Table::num(s.t / 1e6, 3),
                      metrics::Table::num(s.rate_rps, 2),
                      metrics::Table::num(s.level_rps, 2),
                      metrics::Table::num(s.trend_rps, 4),
                      metrics::Table::num(s.demand_rps, 2),
                      std::to_string(s.rejected_delta),
                      std::to_string(s.queued), std::to_string(s.warm),
                      std::to_string(s.pending), std::to_string(s.needed),
                      std::to_string(s.decision.add_replicas),
                      std::to_string(s.decision.add_shards),
                      std::to_string(s.decision.remove_replicas),
                      std::to_string(s.suppressed_cooldown),
                      std::to_string(s.suppressed_governor)});
    h.write_csv(ctrace, "elastic_controller_trace.csv");
    metrics::CsvWriter strace({"shard", "t_ms", "warm", "booting",
                               "in_service", "queued", "rejected_delta",
                               "utilization", "decision"});
    for (std::size_t s = 0; s < r.shards.size(); ++s)
      for (const auto& smp : r.shards[s].scaler_trace)
        strace.add_row({std::to_string(s),
                        metrics::Table::num(smp.t / 1e6, 3),
                        std::to_string(smp.warm),
                        std::to_string(smp.booting),
                        std::to_string(smp.in_service),
                        std::to_string(smp.queued),
                        std::to_string(smp.rejected_delta),
                        metrics::Table::num(smp.utilization, 4),
                        std::to_string(smp.decision)});
    h.write_csv(strace, "elastic_scaler_trace.csv");
  }

  return h.finish();
}

// Fig. 6 — TDX and SEV-SNP heatmaps: secure/normal mean execution-time
// ratio for all 25 FaaS functions x 7 language runtimes.
//
// Runs through the full ConfBench pipeline: gateway -> host (port-steered)
// -> VM -> language launcher, 10 independent trials per cell, averaging as
// in §IV-D. Expected shape: mostly ~1 (darker) with TDX ahead on CPU- and
// memory-intensive cells, SEV-SNP ahead on I/O-heavy ones (iostress,
// filesystem, kvstore); heavier runtimes (python, node, ruby) show larger
// ratios than lua/luajit/go/wasm; a few cells dip below 1 (cache effects).
#include <cstdio>

#include "bench/common.h"
#include "core/confbench.h"
#include "metrics/csv.h"
#include "metrics/table.h"
#include "metrics/heatmap.h"
#include "rt/profile.h"
#include "wl/faas.h"

using namespace confbench;

int main() {
  const int n = bench::trials();
  std::printf(
      "Fig. 6 — FaaS overhead heatmaps (secure/normal mean ratio, %d "
      "trials)\n\n",
      n);

  auto bench_sys = core::ConfBench::standard();
  const auto& workloads = wl::faas_workloads();
  const auto& profiles = rt::builtin_profiles();

  std::vector<std::string> rows, cols;
  for (const auto& w : workloads) rows.push_back(w.name);
  for (const auto& p : profiles) cols.push_back(p.name);

  metrics::CsvWriter csv({"platform", "function", "language", "ratio",
                          "secure_ms", "normal_ms"});
  for (const char* platform : {"tdx", "sev-snp"}) {
    metrics::Heatmap map(rows, cols);
    double below_one = 0, cells = 0;
    for (std::size_t r = 0; r < workloads.size(); ++r) {
      for (std::size_t c = 0; c < profiles.size(); ++c) {
        const auto m = bench_sys->measure(workloads[r].name, profiles[c].name,
                                          platform, n);
        const double ratio = m.ratio();
        map.set(r, c, ratio);
        cells += 1;
        if (ratio < 1.0) below_one += 1;
        csv.add_row({platform, workloads[r].name, profiles[c].name,
                     metrics::Table::num(ratio, 3),
                     metrics::Table::num(bench::mean(m.secure_ns) / 1e6, 3),
                     metrics::Table::num(bench::mean(m.normal_ns) / 1e6, 3)});
      }
    }
    std::printf("== %s ==\n%s", platform,
                map.render({.ansi_color = false, .lo = 0.95, .hi = 2.0})
                    .c_str());
    std::printf("cells below 1.0 (secure faster): %.0f of %.0f\n\n",
                below_one, cells);
  }
  std::printf(
      "paper: TDX faster on CPU/memory cells, SEV-SNP faster on I/O; "
      "heavier runtimes show larger ratios; a few cells < 1\n");
  csv.write_file("fig6_faas_tdx_sev.csv");
  std::printf("raw data -> fig6_faas_tdx_sev.csv\n");
  return 0;
}

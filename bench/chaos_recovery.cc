// Chaos experiment — availability and recovery of secure vs normal fleets
// under injected failures (the robustness face of the CVM trade-off; the
// paper's one-at-a-time evaluation never stresses it).
//
// For each (platform, mode) the bench calibrates an iostress service model
// through the real gateway -> host-agent -> launcher path and measures the
// replica replacement cost through the real boot + re-attestation machinery
// (fault::measure_recovery). Two deterministic fault plans then run against
// a pre-provisioned fleet:
//   crash          periodic VM crashes across the fleet; victims' queued and
//                  in-service requests fail over under the retry policy, the
//                  breaker trips, and replacement pays boot (+ attest).
//   attest_outage  the same crashes plus an attestation-service outage that
//                  covers the re-attestation step: secure recovery stalls
//                  until the outage lifts, normal recovery is untouched.
// Expected shape:
//   - time-to-recover(secure) > time-to-recover(normal) on every platform;
//     the gap is the measured boot premium + attestation round;
//   - availability dips deeper and p99-during-fault rises higher for secure
//     fleets (fewer effective replicas for longer);
//   - every offered request is accounted for (completed/rejected/failed);
//   - identical seeds reproduce the CSV byte for byte.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/confbench.h"
#include "fault/fault.h"
#include "fault/recovery.h"
#include "metrics/csv.h"
#include "metrics/table.h"
#include "sched/cluster.h"

using namespace confbench;

namespace {

std::uint64_t cell_requests() {
  if (const char* env = std::getenv("CONFBENCH_CHAOS_REQUESTS")) {
    const long long n = std::atoll(env);
    if (n > 0) return static_cast<std::uint64_t>(n);
  }
  return 40000;
}

struct Key {
  std::string platform;
  bool secure;
  bool operator<(const Key& o) const {
    return std::tie(platform, secure) < std::tie(o.platform, o.secure);
  }
};

}  // namespace

int main() {
  const std::uint64_t reqs = cell_requests();
  const std::vector<std::string> platforms = {"tdx", "sev-snp", "cca"};

  std::printf("Chaos & recovery — iostress, %llu requests/cell\n\n",
              static_cast<unsigned long long>(reqs));

  auto system = core::ConfBench::standard();

  std::map<Key, sched::ServiceModel> models;
  std::map<Key, fault::RecoveryCosts> recovery;
  for (const auto& platform : platforms) {
    for (const bool secure : {false, true}) {
      models[{platform, secure}] = sched::ServiceModel::calibrate(
          *system, "iostress", "go", platform, secure, 4);
      recovery[{platform, secure}] = fault::measure_recovery(platform, secure);
    }
  }

  // PR 3 columns first, tail-tolerance columns appended: rows for the
  // original scenarios carry zeros there, so the PR 3 baselines stay
  // comparable column-for-column.
  metrics::CsvWriter csv(
      {"scenario", "platform", "secure", "offered", "completed", "rejected",
       "failed", "retries", "failovers", "crashes", "availability",
       "p50_ms", "p99_ms", "p99_fault_ms", "ttr_ms", "boot_ms", "attest_ms",
       "throughput_rps", "hedges", "hedge_wins", "hedge_cancelled",
       "migrations"});

  // [scenario][platform][secure] -> mean TTR (ms), for the printed summary.
  std::map<std::string, std::map<std::string, std::map<bool, double>>> ttr_ms;
  std::map<std::string, std::map<bool, double>> avail;
  std::map<std::string, std::map<bool, double>> avail_hedged;

  // crash_hedged rides the exact crash schedule with hedged requests on:
  // a request whose victim replica black-holes it gets a live backup at the
  // learned latency threshold instead of waiting out the detection timeout.
  const std::vector<std::string> scenarios = {"crash", "attest_outage",
                                              "crash_hedged"};
  for (const auto& scenario : scenarios) {
    for (const auto& platform : platforms) {
      for (const bool secure : {false, true}) {
        const sched::ServiceModel& model = models[{platform, secure}];

        sched::ClusterConfig cfg;
        cfg.function = "iostress";
        cfg.language = "go";
        cfg.platform = platform;
        cfg.secure = secure;
        cfg.requests = reqs;
        cfg.queue = {.concurrency = 8, .queue_depth = 32};
        // Pre-provisioned fleet: isolate failure handling from autoscaling
        // (cluster_load covers the scaling transient separately).
        cfg.scaler = {.min_warm = 6, .max_replicas = 6,
                      .tick_ns = 20 * sim::kMs};
        // Half the fleet's own capacity: losing one replica hurts the tail
        // but does not brown the whole run out.
        cfg.rate_rps = 0.5 * sched::ClusterExperiment(cfg).fleet_capacity_rps(
                                 model);
        cfg.seed = sim::hash_combine(
            sim::stable_hash("chaos/" +
                                 (scenario == "crash_hedged" ? "crash"
                                                             : scenario) +
                                 "/" + platform),
            secure);
        if (scenario == "crash_hedged") cfg.hedge.enabled = true;
        cfg.recovery = recovery[{platform, secure}];
        cfg.retry.max_attempts = 4;
        cfg.retry.budget_ns = 30 * sim::kSec;
        cfg.faults.periodic_crashes(2 * sim::kSec, 10 * sim::kSec, 3, 6);
        if (scenario == "attest_outage") {
          // One outage per crash, opening just after the crash so every
          // recovery's re-attestation step lands inside a window.
          for (int i = 0; i < 3; ++i)
            cfg.faults.attest_outage(2 * sim::kSec + i * 10 * sim::kSec,
                                     8 * sim::kSec);
        }

        const sched::ClusterResult r =
            sched::ClusterExperiment(cfg).run_with_model(model);
        if (!r.accounted()) {
          std::fprintf(stderr,
                       "BUG: lost requests in %s/%s: offered=%llu "
                       "completed=%llu rejected=%llu failed=%llu\n",
                       scenario.c_str(), platform.c_str(),
                       static_cast<unsigned long long>(r.offered),
                       static_cast<unsigned long long>(r.completed),
                       static_cast<unsigned long long>(r.rejected),
                       static_cast<unsigned long long>(r.failed));
          return 1;
        }

        ttr_ms[scenario][platform][secure] = r.mean_ttr_ns() / 1e6;
        if (scenario == "crash") avail[platform][secure] = r.availability();
        if (scenario == "crash_hedged")
          avail_hedged[platform][secure] = r.availability();
        csv.add_row({scenario, platform, secure ? "1" : "0",
                     std::to_string(r.offered), std::to_string(r.completed),
                     std::to_string(r.rejected), std::to_string(r.failed),
                     std::to_string(r.retries), std::to_string(r.failovers),
                     std::to_string(r.crashes),
                     metrics::Table::num(r.availability(), 6),
                     metrics::Table::num(r.latency.p50() / 1e6, 4),
                     metrics::Table::num(r.latency.p99() / 1e6, 4),
                     metrics::Table::num(r.latency_fault.p99() / 1e6, 4),
                     metrics::Table::num(r.mean_ttr_ns() / 1e6, 2),
                     metrics::Table::num(cfg.recovery.boot_ns / 1e6, 2),
                     metrics::Table::num(cfg.recovery.attest_ns / 1e6, 2),
                     metrics::Table::num(r.throughput_rps(), 1),
                     std::to_string(r.hedges), std::to_string(r.hedge_wins),
                     std::to_string(r.hedge_cancelled),
                     std::to_string(r.migrations.size())});
      }
    }
  }

  // Secure-vs-normal recovery summary with mechanical attribution.
  std::printf(
      "Time-to-recover, crash scenario (breaker detect + boot + attest + "
      "readmit)\n");
  std::printf("%-9s %10s %10s %9s %12s %12s %14s\n", "platform", "normal_s",
              "secure_s", "gap_s", "boot_gap_s", "attest_s", "avail_secure");
  for (const auto& platform : platforms) {
    const double n = ttr_ms["crash"][platform][false] / 1e3;
    const double s = ttr_ms["crash"][platform][true] / 1e3;
    const double boot_gap = (recovery[{platform, true}].boot_ns -
                             recovery[{platform, false}].boot_ns) /
                            1e9;
    const double attest = recovery[{platform, true}].attest_ns / 1e9;
    std::printf("%-9s %10.2f %10.2f %9.2f %12.2f %12.2f %13.4f%%\n",
                platform.c_str(), n, s, s - n, boot_gap, attest,
                100.0 * avail[platform][true]);
  }
  std::printf(
      "\nThe secure-normal TTR gap decomposes into the confidential boot "
      "premium\n(eager page acceptance) plus the re-attestation round; both "
      "appear as\nrecovery.boot / recovery.attest spans in the fleet "
      "trace.\n");

  std::printf("\nAttestation-service outage (same crashes + 8s PCS outage)\n");
  std::printf("%-9s %14s %14s\n", "platform", "ttr_normal_s", "ttr_secure_s");
  for (const auto& platform : platforms)
    std::printf("%-9s %14.2f %14.2f\n", platform.c_str(),
                ttr_ms["attest_outage"][platform][false] / 1e3,
                ttr_ms["attest_outage"][platform][true] / 1e3);
  std::printf(
      "expected: the outage stalls only secure recovery (normal replicas "
      "never\nre-attest), widening the gap far past the mechanical "
      "boot+attest costs\n");

  std::printf("\nHedged requests under the same crash schedule\n");
  std::printf("%-9s %14s %14s\n", "platform", "avail_plain", "avail_hedged");
  for (const auto& platform : platforms)
    std::printf("%-9s %13.4f%% %13.4f%%\n", platform.c_str(),
                100.0 * avail[platform][true],
                100.0 * avail_hedged[platform][true]);
  std::printf(
      "expected: a backup dispatch beats waiting out the detection timeout, "
      "so\nhedged availability is no worse — the wins column attributes "
      "it\n");

  csv.write_file("chaos_recovery.csv");
  std::printf("\nraw data -> chaos_recovery.csv\n");
  return 0;
}

// Sharded gateway fabric under topology faults — consistent-hash admission,
// emergent subset partitions, and the price of cross-shard failover
// (robustness face of the CVM trade-off at the control-plane layer; the
// single-gateway chaos/tail benches cover the data-plane fleet).
//
// For each (platform, mode) the bench calibrates an iostress service model
// through the real gateway -> host-agent -> launcher path, prices the
// cross-shard re-admission attestation round through the verification
// service's cost model (attest::svc::CostModel: PCS-bound on TDX,
// local certs on SNP, free on CCA/FVP), then runs four deterministic
// scenarios through sched::ShardedFrontend — four gateway shards, each
// owning a bounded-load consistent-hash slice of a 16-replica fleet, every
// dispatch and completion routed over a live net::Network topology:
//   baseline      no faults: every request is admitted by its home shard
//                 and served inside that shard's slice.
//   intra_retry   the shard's link to one slice replica goes down (host-
//                 addressed window): dispatches to it black-hole, the
//                 detection timeout feeds its breaker, and the requests
//                 retry on slice peers — failover stays *inside* the shard
//                 and pays detection + backoff only.
//   cross_fail    the client's link to one shard goes down (host-addressed
//                 window): requests homed there walk the hash ring to the
//                 successor shard — failover *crosses* shards and pays
//                 detection + backoff + a session handshake + (secure) a
//                 re-attestation round, because the successor shares no
//                 session state with the home shard.
//   degraded_shed the shard can still hear the client but has lost most of
//                 its slice: it sheds admissions to its successor up front
//                 instead of black-holing them — the handshake is paid, the
//                 detection timeout is saved.
// Expected shape:
//   - cross-shard failover p99 sits strictly above intra-shard retry p99 on
//     every platform and mode (the handshake + re-admission premium);
//   - the secure-vs-normal cross-failover premium (baseline-subtracted) is
//     larger on TDX than on CCA: TDX re-verifies PCS-bound attestation
//     evidence on cross-admission, CCA/FVP has no attestation flow to pay;
//   - degraded-mode shedding undercuts reactive cross-failover (no
//     detection timeout) while keeping availability;
//   - every offered request terminates in exactly one bucket — completed,
//     rejected or typed-failed — even with a shard fully partitioned;
//   - identical seeds reproduce the CSV byte for byte.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "attest/svc/cost_model.h"
#include "bench/common.h"
#include "bench/harness.h"
#include "core/confbench.h"
#include "fault/fault.h"
#include "fault/recovery.h"
#include "metrics/csv.h"
#include "metrics/table.h"
#include "sched/cluster.h"
#include "sched/shard.h"
#include "tee/registry.h"

using namespace confbench;

namespace {

struct Key {
  std::string platform;
  bool secure;
  bool operator<(const Key& o) const {
    return std::tie(platform, secure) < std::tie(o.platform, o.secure);
  }
};

}  // namespace

int main() {
  bench::Harness h("shard_failover");
  const std::uint64_t reqs = h.requests("CONFBENCH_SHARD_REQUESTS", 12000);
  const std::vector<std::string> platforms = {"tdx", "sev-snp", "cca"};

  std::printf("Sharded gateway fabric under topology faults — iostress, "
              "%llu requests/cell\n\n",
              static_cast<unsigned long long>(reqs));

  auto system = core::ConfBench::standard();

  std::map<Key, sched::ServiceModel> models;
  std::map<Key, sim::Ns> cross_admit;
  for (const auto& platform : platforms) {
    const tee::PlatformPtr plat = tee::Registry::instance().create(platform);
    for (const bool secure : {false, true}) {
      models[{platform, secure}] = sched::ServiceModel::calibrate(
          *system, "iostress", "go", platform, secure, 4);
      // Secure fleets re-verify the fleet's attestation evidence when a
      // successor shard admits traffic for a slice it does not own. Priced
      // by the verification service's cost model — the same full-round
      // figure crash recovery and live migration charge.
      cross_admit[{platform, secure}] =
          secure && plat ? attest::svc::CostModel::measure(*plat).full_round_ns
                         : 0;
    }
  }

  metrics::CsvWriter csv(
      {"scenario", "platform", "secure", "offered", "completed", "rejected",
       "failed", "retries", "failovers", "cross_failovers", "shed",
       "responses_lost", "availability", "p50_ms", "p99_ms", "p99_fault_ms",
       "p99_intra_ms", "p99_cross_ms", "cross_admit_ms", "throughput_rps"});

  // [scenario][platform][secure] -> cell stats for the summary tables.
  std::map<std::string, std::map<std::string, std::map<bool, double>>> p99_ms;
  std::map<std::string, std::map<std::string, std::map<bool, double>>>
      tail_ms;  // scenario-specific tail: intra / cross / shed p99

  const std::vector<std::string> scenarios = {"baseline", "intra_retry",
                                              "cross_fail", "degraded_shed"};
  for (const auto& scenario : scenarios) {
    for (const auto& platform : platforms) {
      for (const bool secure : {false, true}) {
        const sched::ServiceModel& model = models[{platform, secure}];

        sched::ShardedConfig cfg;
        cfg.platform = platform;
        cfg.secure = secure;
        cfg.requests = reqs;
        cfg.warmup_requests = reqs / 20;
        cfg.replicas = 16;
        cfg.shard.shards = 4;
        // Session re-establishment on a non-home shard: TLS handshake,
        // route re-convergence and admission-state warmup — paid secure
        // and normal. Sized well above the log-histogram bucket width at
        // the slowest cell's latency scale, so the cross-vs-intra premium
        // survives p99 quantization on every platform.
        cfg.shard.handshake_ns = 300 * sim::kMs;
        cfg.shard.cross_admit_ns = cross_admit[{platform, secure}];
        cfg.queue = {.concurrency = 8, .queue_depth = 32};
        cfg.scaler.tick_ns = 20 * sim::kMs;
        // Health probes cost a service round, so their period scales with
        // the cell's service time: probing a multi-second CCA fleet every
        // 50 ms would isolate a downed replica before a single dispatch
        // ever black-holes on it, leaving no intra-shard retry tail to
        // measure.
        cfg.probe_interval_ns =
            std::max<sim::Ns>(50 * sim::kMs, model.total_ns());
        cfg.retry.max_attempts = 4;
        cfg.retry.budget_ns = 120 * sim::kSec;
        // 30% of the fleet's sustainable rate: when a whole shard's slice
        // drops out, the survivors absorb its traffic at ~0.4 utilization,
        // so the cross-failover tail measures the re-admission path rather
        // than queueing at the successor (which would scale with each
        // cell's service time and drown the attestation signal).
        cfg.rate_rps = 0.3 * cfg.replicas *
                       model.replica_capacity_rps(cfg.queue.concurrency);
        cfg.seed = sim::hash_combine(
            sim::stable_hash("shardfo/" + scenario + "/" + platform), secure);

        // Windows cover [10%, 70%] of the expected run so every cell —
        // whatever its service-time scale — spends the same fraction of
        // the experiment under fault.
        const sim::Ns expect_ns =
            static_cast<double>(reqs) / cfg.rate_rps * sim::kSec;
        const sim::Ns fault_at = 0.1 * expect_ns;
        const sim::Ns fault_for = 0.6 * expect_ns;

        if (scenario == "intra_retry") {
          // The owner shard's request path to replica 0 goes dark: same
          // client-invisible detection timeout as cross_fail, but the
          // retry stays inside the slice — the clean baseline the
          // cross-shard premium is measured against.
          const sched::ShardedFrontend fe(cfg.shard, cfg.replicas);
          cfg.faults.link_down(
              fault_at, fault_for,
              sched::ShardedFrontend::shard_host(
                  static_cast<int>(fe.owner_of_replica(0))),
              sched::ShardedFrontend::replica_host(0));
        } else if (scenario == "cross_fail") {
          cfg.faults.link_down(fault_at, fault_for, "client",
                               sched::ShardedFrontend::shard_host(0));
        } else if (scenario == "degraded_shed") {
          // Cut the shard off from most of its slice (request direction):
          // it must shed admissions to its ring successor up front.
          const sched::ShardedFrontend fe(cfg.shard, cfg.replicas);
          const auto& slice = fe.slice(0);
          const std::size_t cut = slice.size() - slice.size() / 4;
          for (std::size_t i = 0; i < cut; ++i)
            cfg.faults.link_down(
                fault_at, fault_for, sched::ShardedFrontend::shard_host(0),
                sched::ShardedFrontend::replica_host(slice[i]));
        }

        const sched::ShardedResult r =
            sched::ShardedExperiment(cfg).run_with_model(model);
        h.check(r.accounted(),
                "zero lost requests in " + scenario + "/" + platform +
                    (secure ? "/secure" : "/normal"));

        p99_ms[scenario][platform][secure] = r.latency.p99() / 1e6;
        tail_ms[scenario][platform][secure] =
            scenario == "intra_retry"   ? r.latency_intra.p99() / 1e6
            : scenario == "cross_fail"  ? r.latency_cross.p99() / 1e6
            : scenario == "degraded_shed" ? r.latency_cross.p99() / 1e6
                                          : 0.0;
        csv.add_row(
            {scenario, platform, secure ? "1" : "0",
             std::to_string(r.offered), std::to_string(r.completed),
             std::to_string(r.rejected), std::to_string(r.failed),
             std::to_string(r.retries), std::to_string(r.failovers),
             std::to_string(r.cross_failovers), std::to_string(r.shed),
             std::to_string(r.responses_lost),
             metrics::Table::num(r.availability(), 6),
             metrics::Table::num(r.latency.p50() / 1e6, 4),
             metrics::Table::num(r.latency.p99() / 1e6, 4),
             metrics::Table::num(r.latency_fault.p99() / 1e6, 4),
             metrics::Table::num(r.latency_intra.p99() / 1e6, 4),
             metrics::Table::num(r.latency_cross.p99() / 1e6, 4),
             metrics::Table::num(cfg.shard.cross_admit_ns / 1e6, 3),
             metrics::Table::num(r.throughput_rps(), 1)});
      }
    }
  }

  // (a) Cross-shard failover pays strictly more than intra-shard retry.
  std::printf("Failover tails: intra-shard retry vs cross-shard re-route "
              "(p99 of affected requests)\n");
  std::printf("%-9s %7s %12s %12s %12s %14s\n", "platform", "mode",
              "intra_ms", "cross_ms", "premium_ms", "cross_admit_ms");
  bool order_ok = true;
  for (const auto& platform : platforms)
    for (const bool secure : {false, true}) {
      const double intra = tail_ms["intra_retry"][platform][secure];
      const double cross = tail_ms["cross_fail"][platform][secure];
      // intra == 0 means the cell recorded no intra-retry samples at all;
      // the comparison would pass vacuously, so treat it as a failure.
      order_ok = order_ok && intra > 0.0 && cross > intra;
      std::printf("%-9s %7s %12.2f %12.2f %12.2f %14.3f\n", platform.c_str(),
                  secure ? "secure" : "normal", intra, cross, cross - intra,
                  cross_admit[{platform, secure}] / 1e6);
    }
  std::printf(
      "expected: cross > intra everywhere — re-routing pays the session\n"
      "handshake (and, secure, the re-attestation round) on top of the\n"
      "same detection + backoff an intra-slice retry pays\n\n");

  // (b) The secure premium of crossing shards, per platform.
  std::printf("Secure-vs-normal cross-failover premium "
              "(baseline-subtracted p99)\n");
  std::printf("%-9s %14s %14s %12s\n", "platform", "normal_over_ms",
              "secure_over_ms", "gap_ms");
  std::map<std::string, double> gap_ms;
  for (const auto& platform : platforms) {
    const double over_n = tail_ms["cross_fail"][platform][false] -
                          p99_ms["baseline"][platform][false];
    const double over_s = tail_ms["cross_fail"][platform][true] -
                          p99_ms["baseline"][platform][true];
    gap_ms[platform] = over_s - over_n;
    std::printf("%-9s %14.2f %14.2f %12.2f\n", platform.c_str(), over_n,
                over_s, gap_ms[platform]);
  }
  std::printf(
      "expected: the gap tracks the platform's attestation round — largest\n"
      "on TDX (PCS collateral round trips), ~zero on CCA (no attestation\n"
      "flow under FVP, so secure crossing costs what normal crossing "
      "costs)\n\n");

  // (c) Degraded-mode shedding vs reactive cross-failover.
  std::printf("Degraded shard: proactive shed vs reactive cross-failover "
              "(p99 of re-routed requests)\n");
  std::printf("%-9s %7s %12s %12s %12s\n", "platform", "mode", "shed_ms",
              "reactive_ms", "saved_ms");
  for (const auto& platform : platforms)
    for (const bool secure : {false, true}) {
      const double shed = tail_ms["degraded_shed"][platform][secure];
      const double reactive = tail_ms["cross_fail"][platform][secure];
      std::printf("%-9s %7s %12.2f %12.2f %12.2f\n", platform.c_str(),
                  secure ? "secure" : "normal", shed, reactive,
                  reactive - shed);
    }
  std::printf(
      "expected: shedding saves the client's detection timeout — the shard\n"
      "knows its slice is gone before the client's timer does\n");

  h.check(order_ok,
          "cross-shard failover p99 above intra-shard retry p99 in every "
          "cell");
  h.check(gap_ms["tdx"] > gap_ms["cca"],
          "secure cross-failover premium on TDX exceeds CCA's");
  h.metric("gap_tdx_ms", gap_ms["tdx"]);
  h.metric("gap_cca_ms", gap_ms["cca"]);

  std::printf("\n");
  h.write_csv(csv, "shard_failover.csv");
  return h.finish();
}

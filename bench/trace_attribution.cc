// Trace attribution — decomposing the secure-vs-normal latency delta.
//
// The heatmaps say a secure VM is N% slower; this bench says *where* the
// extra time goes. Every invocation runs under the obs:: tracer, whose
// category charges partition the trace timeline exactly, so the
// secure-minus-normal difference of per-category means decomposes the
// observed latency delta into named mechanisms: memory protection, VM
// exits, bounce-buffer copies, OS assists, compute drift from different
// cache layouts.
//
// Outputs (byte-identical across runs of the same build — the CI diff
// depends on it):
//   <outdir>/trace_attribution.json   Chrome trace-event dump of every
//                                     trace (open in ui.perfetto.dev)
//   <outdir>/trace_attribution.csv    per-trace per-category charge totals
//
// Exit status is non-zero unless the per-category deltas explain >= 90% of
// the record-level latency delta on tdx/iostress (the paper's worst case).
#include <array>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/confbench.h"
#include "metrics/table.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "sched/cluster.h"

using namespace confbench;

namespace {

constexpr int kTrials = 4;
constexpr std::size_t kNumCategories =
    static_cast<std::size_t>(obs::Category::kCount);

const char* kPlatforms[] = {"tdx", "sev-snp", "cca"};
const char* kWorkloads[] = {"iostress", "fib", "primes"};

struct ModeStats {
  std::array<double, kNumCategories> mean_ns{};  ///< per-category trace mean
  double trace_ns = 0;    ///< mean trace timeline (sum of all charges)
  double latency_ns = 0;  ///< mean record-level latency (incl. trial jitter)
};

ModeStats run_mode(const std::string& platform, const std::string& function,
                   bool secure, obs::Tracer& tracer) {
  // A fresh deployment per mode keeps every combination's RNG streams
  // independent of evaluation order.
  core::ConfBench system(core::GatewayConfig::standard());
  system.gateway().upload_all_builtin();
  ModeStats stats;
  for (int t = 0; t < kTrials; ++t) {
    const core::InvocationRecord rec = system.gateway().invoke(
        {.function = function,
         .language = "go",
         .platform = platform,
         .secure = secure,
         .trial = static_cast<std::uint64_t>(t),
         .tracer = &tracer});
    if (!rec.ok()) {
      std::fprintf(stderr, "invoke failed (%s/%s): %s\n", platform.c_str(),
                   function.c_str(), rec.error.c_str());
      std::exit(1);
    }
    const obs::Trace* tr = tracer.find(rec.trace_id);
    for (std::size_t c = 0; c < kNumCategories; ++c) {
      const double ns = tr->charge_totals()[c].total_ns;
      stats.mean_ns[c] += ns / kTrials;
      stats.trace_ns += ns / kTrials;
    }
    stats.latency_ns += rec.latency_ns / kTrials;
  }
  return stats;
}

/// Attribution coverage: how much of the record-level delta the categorised
/// trace deltas explain. The trace timeline is the unjittered charge sum,
/// so coverage < 1 measures trial jitter plus anything uninstrumented.
double coverage(const ModeStats& sec, const ModeStats& nrm) {
  const double record_delta = sec.latency_ns - nrm.latency_ns;
  if (record_delta == 0) return 1.0;
  double attributed = 0;
  for (std::size_t c = 0; c < kNumCategories; ++c)
    attributed += sec.mean_ns[c] - nrm.mean_ns[c];
  return attributed / record_delta;
}

void print_attribution(const char* platform, const char* function,
                       const ModeStats& sec, const ModeStats& nrm) {
  const double delta = sec.trace_ns - nrm.trace_ns;
  std::printf("%s / %s (go): secure %.3f ms, normal %.3f ms, delta %+.3f ms "
              "(record-level coverage %.1f%%)\n",
              platform, function, sec.trace_ns / sim::kMs,
              nrm.trace_ns / sim::kMs, delta / sim::kMs,
              100.0 * coverage(sec, nrm));
  metrics::Table table({"category", "secure ms", "normal ms", "delta ms",
                        "share %"});
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    const double d = sec.mean_ns[c] - nrm.mean_ns[c];
    if (sec.mean_ns[c] == 0 && nrm.mean_ns[c] == 0) continue;
    table.add_row(
        {std::string(to_string(static_cast<obs::Category>(c))),
         metrics::Table::num(sec.mean_ns[c] / sim::kMs, 3),
         metrics::Table::num(nrm.mean_ns[c] / sim::kMs, 3),
         metrics::Table::num(d / sim::kMs, 3),
         delta != 0 ? metrics::Table::num(100.0 * d / delta, 1) : "-"});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outdir = argc > 1 ? argv[1] : ".";
  std::printf("Trace attribution — where the secure-VM overhead lives\n");
  std::printf("(%d trials per mode; categories partition the trace "
              "timeline exactly)\n\n",
              kTrials);

  obs::Tracer tracer;
  bool pass = true;

  for (const char* platform : kPlatforms) {
    for (const char* function : kWorkloads) {
      const ModeStats sec = run_mode(platform, function, true, tracer);
      const ModeStats nrm = run_mode(platform, function, false, tracer);
      print_attribution(platform, function, sec, nrm);
      if (std::string(platform) == "tdx" &&
          std::string(function) == "iostress") {
        const double cov = coverage(sec, nrm);
        if (std::abs(cov - 1.0) > 0.10) {
          std::fprintf(stderr,
                       "FAIL: tdx/iostress attribution covers %.1f%% of the "
                       "record-level delta (need >= 90%%)\n",
                       100.0 * cov);
          pass = false;
        }
      }
    }
  }

  // --- cluster tail traces --------------------------------------------------
  // A small load experiment on the worst case: the slowest steady-state
  // requests become span trees showing queueing vs. bounce-slot contention.
  std::printf("cluster tail traces (tdx/iostress secure, Poisson load)\n");
  {
    core::ConfBench system(core::GatewayConfig::standard());
    system.gateway().upload_all_builtin();
    sched::ClusterConfig cfg;
    cfg.function = "iostress";
    cfg.language = "go";
    cfg.platform = "tdx";
    cfg.secure = true;
    cfg.rate_rps = 400;
    cfg.requests = 2000;
    cfg.warmup_requests = 200;
    cfg.scaler.max_replicas = 4;
    cfg.tracer = &tracer;
    cfg.trace_tail = 4;
    const sched::ClusterResult res = sched::ClusterExperiment(cfg).run(system);
    std::printf("  completed %llu/%llu, p99 %.2f ms, traced %d tail "
                "requests + 1 fleet trace\n",
                static_cast<unsigned long long>(res.completed),
                static_cast<unsigned long long>(res.offered),
                res.latency.p99() / sim::kMs, cfg.trace_tail);
    for (const obs::Trace& tr : tracer.traces()) {
      if (tr.name().find("/tail#") == std::string::npos) continue;
      std::printf("  %s:", tr.name().c_str());
      for (const obs::Span& s : tr.spans())
        if (s.parent != obs::Span::kNoParent)
          std::printf(" %s=%.2fms", s.name.c_str(),
                      s.duration_ns() / sim::kMs);
      std::printf("\n");
    }
  }
  std::printf("\n");

  // --- registry snapshot ----------------------------------------------------
  std::printf("metrics registry\n%s\n", tracer.registry().to_csv().c_str());

  // --- exports --------------------------------------------------------------
  const std::string json_path = outdir + "/trace_attribution.json";
  const std::string csv_path = outdir + "/trace_attribution.csv";
  if (!obs::write_text_file(json_path, obs::chrome_trace_json(tracer)) ||
      !obs::write_text_file(csv_path, obs::charges_csv(tracer))) {
    std::fprintf(stderr, "failed to write exports under %s\n",
                 outdir.c_str());
    return 1;
  }
  std::printf("wrote %s and %s (%zu traces)\n", json_path.c_str(),
              csv_path.c_str(), tracer.traces().size());

  return pass ? 0 : 1;
}

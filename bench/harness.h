// bench::Harness — the shared skeleton of the figure-reproduction benches.
//
// Every bench does the same four things: size itself from an environment
// variable, run a fixed list of scenarios, assert exit-check invariants
// (zero lost requests, expected orderings), and ship raw data as a CSV
// plus a BENCH_<name>.json snapshot for the perf-trajectory CI job. The
// Harness owns that skeleton so each bench body is only its scenarios.
//
// Determinism contract: everything that lands in the CSV is a pure
// function of configs and seeds — scenario wall-clock timings and the
// total wall_clock_s go only into the JSON snapshot, which the CI
// determinism diff deliberately ignores (timings are machine facts, not
// simulation facts). Scenarios run in registration order; a filter can
// skip scenarios but never reorders them, so filtered CSV output is a
// prefix-stable subset of the full run.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "metrics/csv.h"
#include "metrics/json.h"

namespace confbench::bench {

class Harness {
 public:
  explicit Harness(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  /// Per-cell request count: `env_var` when set (> 0), else `dflt`.
  /// Recorded into the JSON snapshot so a baseline comparison knows what
  /// size the numbers were taken at.
  std::uint64_t requests(const char* env_var, std::uint64_t dflt) {
    std::uint64_t n = dflt;
    if (const char* env = std::getenv(env_var)) {
      const long long v = std::atoll(env);
      if (v > 0) n = static_cast<std::uint64_t>(v);
    }
    metric("requests_per_cell", n);
    return n;
  }

  /// Registers a named scenario. Scenarios run in registration order.
  void scenario(std::string label, std::function<void()> fn) {
    scenarios_.push_back({std::move(label), std::move(fn)});
  }

  /// Runs the registered scenarios, timing each. CONFBENCH_SCENARIO, when
  /// set, selects by substring match (skips, never reorders).
  void run_scenarios() {
    const char* filter = std::getenv("CONFBENCH_SCENARIO");
    for (auto& s : scenarios_) {
      if (filter != nullptr && s.label.find(filter) == std::string::npos) {
        ++skipped_;
        continue;
      }
      const auto t0 = std::chrono::steady_clock::now();
      s.fn();
      phases_.emplace_back(
          s.label,
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
    }
  }

  /// Exit-check assertion: a failed check makes finish() return 1 (and
  /// prints what failed), but never aborts the run — later checks and the
  /// data export still happen, so a red CI run ships its evidence.
  void check(bool ok, const std::string& what) {
    ++checks_run_;
    if (!ok) {
      failures_.push_back(what);
      std::fprintf(stderr, "CHECK FAILED: %s\n", what.c_str());
    }
  }

  void metric(const std::string& key, double v) {
    num_metrics_.emplace_back(key, v);
  }
  void metric(const std::string& key, std::uint64_t v) {
    num_metrics_.emplace_back(key, static_cast<double>(v));
  }
  void metric(const std::string& key, const std::string& v) {
    str_metrics_.emplace_back(key, v);
  }

  /// Writes the raw dataset; failure to write is itself a failed check.
  void write_csv(const metrics::CsvWriter& csv, const std::string& path) {
    check(csv.write_file(path), "write " + path);
    std::printf("raw data -> %s\n", path.c_str());
  }

  /// Emits BENCH_<name>.json and returns the process exit code (1 when
  /// any check failed). Call once, last.
  int finish() {
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    metrics::JsonWriter w;
    w.begin_object();
    w.key("bench").value(name_);
    w.key("wall_clock_s").value(wall_s);  // machine fact: JSON only
    w.key("scenarios_skipped").value(skipped_);
    w.key("phases_s");
    w.begin_object();
    for (const auto& [label, secs] : phases_) w.key(label).value(secs);
    w.end_object();
    w.key("metrics");
    w.begin_object();
    for (const auto& [k, v] : num_metrics_) w.key(k).value(v);
    for (const auto& [k, v] : str_metrics_) w.key(k).value(v);
    w.end_object();
    w.key("checks");
    w.begin_object();
    w.key("run").value(checks_run_);
    w.key("failed").value(static_cast<std::uint64_t>(failures_.size()));
    w.key("failures");
    w.begin_array();
    for (const auto& f : failures_) w.value(f);
    w.end_array();
    w.end_object();
    w.end_object();
    const std::string path = "BENCH_" + name_ + ".json";
    if (FILE* f = std::fopen(path.c_str(), "w")) {
      std::fputs(w.str().c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("snapshot -> %s (wall %.2fs)\n", path.c_str(), wall_s);
    } else {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    if (!failures_.empty()) {
      std::fprintf(stderr, "%zu of %llu checks failed\n", failures_.size(),
                   static_cast<unsigned long long>(checks_run_));
      return 1;
    }
    return 0;
  }

 private:
  struct Scenario {
    std::string label;
    std::function<void()> fn;
  };

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<Scenario> scenarios_;
  std::vector<std::pair<std::string, double>> phases_;
  std::vector<std::pair<std::string, double>> num_metrics_;
  std::vector<std::pair<std::string, std::string>> str_metrics_;
  std::vector<std::string> failures_;
  std::uint64_t checks_run_ = 0;
  std::uint64_t skipped_ = 0;
};

}  // namespace confbench::bench

// Elastic shard fabric under live topology churn — ring membership changes
// mid-run, minimal-disruption slice handoff, and overload-aware early
// rejection (elasticity face of the CVM trade-off at the control-plane
// layer; shard_failover covers the *fault* topology changes, this bench
// covers the *deliberate* ones).
//
// For each (platform, mode) the bench calibrates an iostress service model
// through the real gateway -> host-agent -> launcher path, prices the
// handoff re-attestation through the verification service's cost model
// (warm-ticket resumption: the departing and receiving owners already
// share fabric trust state), then runs four deterministic scenarios
// through sched::ShardedFrontend with live ring churn scheduled on the
// virtual clock via fault::FaultPlan:
//   flash_scale_out  a flash crowd over-subscribes the initial fleet
//                    (arrivals at ~1.15x its warm capacity); mid-ramp a
//                    fifth shard joins the ring and four replicas scale
//                    out, paying cold starts before serving. The join may
//                    move only ~1/N of the keyspace.
//   forced_scale_in  a shard leaves the ring mid-run: its in-flight
//                    requests drain in place, its queued-but-unstarted
//                    requests forward to the new slice owners over the
//                    live fabric (handshake + warm-ticket re-attestation,
//                    secure fleets). A replica is then forcibly removed,
//                    re-dispatching its queue. Nothing accepted is lost.
//   overload_queue   sustained 2x-capacity overload with deep queues and
//                    no guard: every admitted request waits out the
//                    backlog — the queueing-delay baseline.
//   overload_reject  the same overload with the queue-depth-aware guard:
//                    admissions whose predicted wait (live queue depth x
//                    learned EWMA service time / warm capacity) exceeds
//                    the budget are rejected up front, feeding the
//                    autoscaler's rejected_delta signal.
// Expected shape:
//   - every ring-membership event moves at most ~1.5/N of the keyspace
//     (the ring uses splitmix-finalized vnode placement; legacy FNV
//     placement clusters points and breaks exactly this bound);
//   - shard leave loses nothing: completed + rejected + failed == offered
//     through every handoff, and the handoff actually forwards or drains
//     live work rather than finding empty queues;
//   - early rejection beats queueing under overload: the guarded cell's
//     completed p99 sits strictly below the queue-only cell's on every
//     platform and mode, at the price of availability;
//   - identical seeds reproduce the CSV byte for byte, and cells are
//     trial-parallel: CONFBENCH_THREADS=4 emits the same bytes as 1.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "attest/svc/cost_model.h"
#include "bench/common.h"
#include "bench/harness.h"
#include "core/confbench.h"
#include "fault/fault.h"
#include "metrics/csv.h"
#include "metrics/table.h"
#include "sched/cluster.h"
#include "sched/shard.h"
#include "sim/parallel.h"
#include "sim/rng.h"
#include "tee/registry.h"

using namespace confbench;

namespace {

struct Key {
  std::string platform;
  bool secure;
  bool operator<(const Key& o) const {
    return std::tie(platform, secure) < std::tie(o.platform, o.secure);
  }
};

struct Cell {
  std::string scenario;
  std::string platform;
  bool secure = false;
};

}  // namespace

int main() {
  bench::Harness h("shard_churn");
  const std::uint64_t reqs = h.requests("CONFBENCH_CHURN_REQUESTS", 10000);
  const std::vector<std::string> platforms = {"tdx", "sev-snp", "cca"};
  const std::vector<std::string> scenarios = {
      "flash_scale_out", "forced_scale_in", "overload_queue",
      "overload_reject"};

  std::printf("Elastic shard fabric under live churn — iostress, "
              "%llu requests/cell\n\n",
              static_cast<unsigned long long>(reqs));

  auto system = core::ConfBench::standard();

  std::map<Key, sched::ServiceModel> models;
  std::map<Key, sim::Ns> handoff_attest;
  for (const auto& platform : platforms) {
    const tee::PlatformPtr plat = tee::Registry::instance().create(platform);
    for (const bool secure : {false, true}) {
      models[{platform, secure}] = sched::ServiceModel::calibrate(
          *system, "iostress", "go", platform, secure, 4);
      // A handoff re-attests with a warm session ticket, not a full round:
      // the departing and receiving owners already share fabric trust
      // state, so the receiving shard only re-checks the ticket MAC.
      handoff_attest[{platform, secure}] =
          secure && plat
              ? attest::svc::CostModel::measure(*plat).ticket_check_ns
              : 0;
    }
  }

  std::vector<Cell> cells;
  for (const auto& scenario : scenarios)
    for (const auto& platform : platforms)
      for (const bool secure : {false, true})
        cells.push_back({scenario, platform, secure});

  // Trial-parallel fan-out: each cell owns its clock, RNG streams and
  // event queue; results land by index so the CSV is order-stable.
  std::vector<sched::ShardedResult> results(cells.size());
  sim::parallel_for_ordered(
      cells.size(), sim::default_threads(), [&](std::size_t i) {
        const Cell& cell = cells[i];
        const sched::ServiceModel& model =
            models[{cell.platform, cell.secure}];
        const bool overload = cell.scenario.rfind("overload", 0) == 0;

        sched::ShardedConfig cfg;
        cfg.platform = cell.platform;
        cfg.secure = cell.secure;
        cfg.requests = reqs;
        cfg.warmup_requests = reqs / 20;
        cfg.replicas = 16;
        cfg.shard.shards = 4;
        // The 1.5/N moved-keys bound needs balanced vnode shares; the
        // legacy FNV placement lets one shard own >2x its fair slice.
        cfg.shard.ring_mix_points = true;
        // Exact slice balance (cap = replicas/shards): the default 1.25
        // spill factor can starve the last-assigned shard down to a
        // one-replica slice while it still owns ~1/4 of the keyspace,
        // and a structurally drowning shard would dominate every number
        // this bench measures.
        cfg.shard.load_factor = 1.0;
        cfg.shard.handshake_ns = 200 * sim::kUs;
        cfg.shard.handoff_attest_ns =
            handoff_attest[{cell.platform, cell.secure}];
        cfg.queue = overload
                        ? sched::QueueConfig{.concurrency = 4,
                                             .queue_depth = 64}
                        : sched::QueueConfig{.concurrency = 4,
                                             .queue_depth = 16};
        cfg.scaler.tick_ns = 20 * sim::kMs;
        cfg.probe_interval_ns =
            std::max<sim::Ns>(50 * sim::kMs, model.total_ns());
        cfg.retry.max_attempts = 4;
        cfg.retry.budget_ns = 120 * sim::kSec;

        const double capacity_rps =
            cfg.replicas * model.replica_capacity_rps(cfg.queue.concurrency);
        // Both overload cells share one seed so the guard is the only
        // difference between the queue and reject arrival streams.
        const std::string seed_scenario =
            overload ? "overload" : cell.scenario;
        cfg.seed = sim::hash_combine(
            sim::stable_hash("shardchurn/" + seed_scenario + "/" +
                             cell.platform),
            cell.secure);

        if (cell.scenario == "flash_scale_out") {
          // Flash crowd: 1.15x the *initial* fleet's capacity — queues
          // build until the mid-ramp scale-out (a fifth shard + four
          // replicas) lifts capacity to 1.25x the offered rate.
          cfg.rate_rps = 1.15 * capacity_rps;
          const sim::Ns expect_ns =
              static_cast<double>(reqs) / cfg.rate_rps * sim::kSec;
          cfg.faults.shard_join(0.25 * expect_ns);
          cfg.faults.replica_add(0.30 * expect_ns, 4);
        } else if (cell.scenario == "forced_scale_in") {
          // Hot enough that the departing shard has queued-but-unstarted
          // work to *forward* (not just in-flight work to drain), while
          // the survivors can still absorb its slice. The leave targets
          // the shard with the largest keyspace share per slice member —
          // the one whose queues are deepest when the event fires —
          // computed deterministically from the pre-churn frontend over
          // the router's own key stream.
          cfg.rate_rps = 0.85 * capacity_rps;
          const sched::ShardedFrontend fe(cfg.shard, cfg.replicas);
          std::vector<std::uint64_t> hits(
              static_cast<std::size_t>(cfg.shard.shards), 0);
          for (std::uint64_t k = 0; k < 4096; ++k)
            ++hits[fe.ring().owner(
                sim::hash_combine(sim::stable_hash("shard-route"), k))];
          std::uint32_t hot = 0;
          double hot_ratio = 0;
          for (int s = 0; s < cfg.shard.shards; ++s) {
            const double ratio = static_cast<double>(hits[s]) /
                                 static_cast<double>(fe.slice(s).size());
            if (ratio > hot_ratio) {
              hot_ratio = ratio;
              hot = static_cast<std::uint32_t>(s);
            }
          }
          const sim::Ns expect_ns =
              static_cast<double>(reqs) / cfg.rate_rps * sim::kSec;
          cfg.faults.shard_leave(0.30 * expect_ns, hot);
          cfg.faults.replica_remove(0.55 * expect_ns, 15);
        } else {
          // Sustained 2x-capacity overload; the reject cell arms the
          // guard with a budget of ~6 service times — far below the
          // ~16-service-time wait a full 64-deep queue imposes.
          cfg.rate_rps = 2.0 * capacity_rps;
          // Both overload cells skip the guard's learning phase (the EWMA
          // needs min_samples completions per shard before it is trusted)
          // so the p99 comparison measures armed-guard steady state, not
          // the shared cold-start cohort that queued before arming.
          cfg.warmup_requests = reqs / 10;
          if (cell.scenario == "overload_reject") {
            cfg.shard.early_reject = true;
            cfg.shard.early_reject_budget_ns = 6 * model.total_ns();
            cfg.shard.early_reject_min_samples = 8;
          }
        }

        results[i] = sched::ShardedExperiment(cfg).run_with_model(model);
      });

  metrics::CsvWriter csv(
      {"scenario", "platform", "secure", "offered", "completed", "rejected",
       "failed", "early_rejected", "shard_joins", "shard_leaves",
       "replica_adds", "replica_removes", "replicas_moved",
       "handoff_forwarded", "handoff_drained", "moved_x_n", "availability",
       "p50_ms", "p99_ms", "throughput_rps"});

  // [platform][secure] -> completed-request p99 of the two overload cells.
  std::map<std::string, std::map<bool, double>> queue_p99, reject_p99;
  std::map<std::string, std::map<bool, double>> queue_avail, reject_avail;
  double moved_x_n_worst = 0;
  std::uint64_t forwarded_total = 0, drained_total = 0;

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const sched::ShardedResult& r = results[i];
    const std::string where = cell.scenario + "/" + cell.platform +
                              (cell.secure ? "/secure" : "/normal");

    h.check(r.accounted(), "zero lost accepted requests in " + where);
    moved_x_n_worst = std::max(moved_x_n_worst, r.churn.max_moved_x_n);
    forwarded_total += r.churn.handoff_forwarded;
    drained_total += r.churn.handoff_drained;

    if (cell.scenario == "flash_scale_out") {
      h.check(r.churn.shard_joins == 1 && r.churn.replica_adds == 4,
              "scale-out applied both churn events in " + where);
      h.check(r.shards.size() == 5 && r.shards[4].admitted > 0,
              "joined shard took over live traffic in " + where);
      h.check(r.churn.replicas_moved > 0,
              "the join re-sliced part of the fleet in " + where);
    } else if (cell.scenario == "forced_scale_in") {
      h.check(r.churn.shard_leaves == 1 && r.churn.replica_removes == 1,
              "scale-in applied both churn events in " + where);
      int dead = 0;
      for (const auto& sh : r.shards) dead += !sh.live;
      h.check(dead == 1, "departed shard left the ring in " + where);
      h.check(r.churn.handoff_forwarded > 0 && r.churn.handoff_drained > 0,
              "the leave forwarded queued work and drained in-flight work "
              "in " + where);
    } else if (cell.scenario == "overload_queue") {
      queue_p99[cell.platform][cell.secure] = r.latency.p99() / 1e6;
      queue_avail[cell.platform][cell.secure] = r.availability();
    } else if (cell.scenario == "overload_reject") {
      reject_p99[cell.platform][cell.secure] = r.latency.p99() / 1e6;
      reject_avail[cell.platform][cell.secure] = r.availability();
      h.check(r.churn.early_rejected > 0,
              "the overload guard fired in " + where);
    }

    csv.add_row({cell.scenario, cell.platform, cell.secure ? "1" : "0",
                 std::to_string(r.offered), std::to_string(r.completed),
                 std::to_string(r.rejected), std::to_string(r.failed),
                 std::to_string(r.churn.early_rejected),
                 std::to_string(r.churn.shard_joins),
                 std::to_string(r.churn.shard_leaves),
                 std::to_string(r.churn.replica_adds),
                 std::to_string(r.churn.replica_removes),
                 std::to_string(r.churn.replicas_moved),
                 std::to_string(r.churn.handoff_forwarded),
                 std::to_string(r.churn.handoff_drained),
                 metrics::Table::num(r.churn.max_moved_x_n, 4),
                 metrics::Table::num(r.availability(), 6),
                 metrics::Table::num(r.latency.p50() / 1e6, 4),
                 metrics::Table::num(r.latency.p99() / 1e6, 4),
                 metrics::Table::num(r.throughput_rps(), 1)});
  }

  // (a) Minimal-disruption bound across every membership event of the run.
  std::printf("Ring disruption: worst keyspace fraction moved x live shards "
              "= %.3f (bound 1.5)\n\n",
              moved_x_n_worst);
  h.check(moved_x_n_worst > 0, "churn cells measured ring movement");
  h.check(moved_x_n_worst <= 1.5,
          "every membership event moved at most 1.5/N of the keyspace");

  // (b) Early rejection vs queueing under overload.
  std::printf("Overload: queueing vs early rejection (completed-request "
              "p99)\n");
  std::printf("%-9s %7s %12s %12s %10s %10s %10s\n", "platform", "mode",
              "queue_ms", "reject_ms", "saved_ms", "avail_q", "avail_r");
  bool reject_wins = true;
  double ratio_min = 1e9;
  for (const auto& platform : platforms)
    for (const bool secure : {false, true}) {
      const double q = queue_p99[platform][secure];
      const double rj = reject_p99[platform][secure];
      reject_wins = reject_wins && rj > 0.0 && rj < q;
      if (rj > 0.0) ratio_min = std::min(ratio_min, q / rj);
      std::printf("%-9s %7s %12.2f %12.2f %10.2f %10.4f %10.4f\n",
                  platform.c_str(), secure ? "secure" : "normal", q, rj,
                  q - rj, queue_avail[platform][secure],
                  reject_avail[platform][secure]);
    }
  std::printf(
      "expected: the guard trades availability for tail latency — the\n"
      "reject cell's p99 undercuts the queue cell's in every cell, because\n"
      "requests that would have waited out the backlog are refused at\n"
      "admission instead\n\n");
  h.check(reject_wins,
          "early rejection beats queueing p99 under overload in every "
          "cell");

  h.metric("moved_x_n_worst", moved_x_n_worst);
  h.metric("overload_p99_ratio_min", ratio_min);
  h.metric("handoff_forwarded_total", forwarded_total);
  h.metric("handoff_drained_total", drained_total);

  h.write_csv(csv, "shard_churn.csv");
  return h.finish();
}

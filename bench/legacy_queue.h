// The discrete-event engine exactly as this repo shipped it through PR 6,
// kept verbatim as the perf baseline for bench/sim_engine.
//
// Two properties make it the honest "before" of the timer-wheel redesign:
//   - the binary heap stores {time, seq, std::function} elements directly,
//     so every std::push_heap/std::pop_heap sift moves 48-byte nodes with
//     non-trivial move constructors through log(n) levels;
//   - std::function heap-allocates every closure larger than its 16-byte
//     inline buffer — which is every cluster handler.
//
// It predates EventId, so it cannot run cancellation workloads — the old
// code emulated cancellation by letting events fire as flag-checked
// no-ops. sched::ReferenceEventQueue (src/sched/reference_queue.h) is the
// separate *oracle* baseline: same storage idea but with the new EventId
// API grafted on, used for order-equivalence checks. This file is the
// *speed* baseline: what a trial actually cost before the wheel.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/clock.h"
#include "sim/time.h"

namespace confbench::bench {

class LegacyEventQueue {
 public:
  using Action = std::function<void()>;

  explicit LegacyEventQueue(sim::VirtualClock& clock) : clock_(clock) {}

  LegacyEventQueue(const LegacyEventQueue&) = delete;
  LegacyEventQueue& operator=(const LegacyEventQueue&) = delete;

  void at(sim::Ns t, Action a) {
    if (t < clock_.now()) t = clock_.now();
    heap_.push_back(Event{t, next_seq_++, std::move(a)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  void after(sim::Ns d, Action a) { at(clock_.now() + d, std::move(a)); }

  bool step() {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event e = std::move(heap_.back());
    heap_.pop_back();
    clock_.advance(e.time - clock_.now());
    ++processed_;
    e.act();
    return true;
  }

  std::uint64_t run(std::uint64_t max_events = UINT64_MAX) {
    std::uint64_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] sim::Ns now() const { return clock_.now(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

 private:
  struct Event {
    sim::Ns time;
    std::uint64_t seq;
    Action act;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  sim::VirtualClock& clock_;
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace confbench::bench

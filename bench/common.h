// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tee/registry.h"
#include "vm/guest_vm.h"

namespace confbench::bench {

/// Trial count per measurement; the paper uses 10 independent trials
/// (§IV-D). Override with CONFBENCH_TRIALS for quick runs.
inline int trials() {
  if (const char* env = std::getenv("CONFBENCH_TRIALS")) {
    const int t = std::atoi(env);
    if (t > 0) return t;
  }
  return 10;
}

/// A booted secure+normal VM pair on one platform (the twin-VM setup of
/// §IV-A).
struct VmPair {
  tee::PlatformPtr platform;
  std::unique_ptr<vm::GuestVm> secure;
  std::unique_ptr<vm::GuestVm> normal;
};

inline VmPair make_vm_pair(const std::string& platform_name) {
  VmPair pair;
  pair.platform = tee::Registry::instance().create(platform_name);
  if (!pair.platform) {
    std::fprintf(stderr, "unknown platform %s\n", platform_name.c_str());
    std::abort();
  }
  vm::VmConfig sc{platform_name + "/secure", pair.platform, true, vm::UnitKind::kVm, 8,
                  16ULL << 30};
  vm::VmConfig nc{platform_name + "/normal", pair.platform, false, vm::UnitKind::kVm, 8,
                  16ULL << 30};
  pair.secure = std::make_unique<vm::GuestVm>(sc);
  pair.normal = std::make_unique<vm::GuestVm>(nc);
  pair.secure->boot();
  pair.normal->boot();
  return pair;
}

/// Runs `fn` for `n` trials in the given VM and returns wall times (ns).
inline std::vector<double> run_trials(vm::GuestVm& vm,
                                      const vm::GuestVm::WorkloadFn& fn,
                                      int n) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t)
    out.push_back(vm.run(fn, static_cast<std::uint64_t>(t)).raw.wall_ns);
  return out;
}

inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace confbench::bench

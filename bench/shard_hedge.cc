// Speculative cross-shard hedging vs reactive failover under gray-slow
// shards — the robustness face of the verification service's cheap repeat
// crossings (warm session tickets make a speculative crossing ~free;
// revocations and cold caches make it cost a full attestation round).
//
// For each (platform, mode) the bench calibrates an iostress service model,
// then runs one *gray* failure — a slow-link window on a single member of
// shard-0's slice that multiplies its response-path latency while the
// request path, the replica and every health signal stay clean — through
// three regimes:
//   reactive     hedging off: the PR-3-style machinery (detection timeouts,
//                breakers, cross-shard failover) is armed but blind — a
//                gray-slow response is merely late, nothing trips, and the
//                p99 eats the whole gray tail. This is the floor hedging
//                is priced against.
//   hedged_warm  speculative cross-shard hedging with a prewarmed
//                verification service: a straggler that outlives its shard's
//                learned quantile launches a backup at the ring-successor
//                shard, the crossing resumes the successor's session ticket
//                (~ticket-check), first response wins, the loser's in-flight
//                hop is cancelled.
//   hedged_cold  the same policy against a cold service (no tickets, no
//                cached collateral): every crossing would pay the full
//                collateral round, so the learned-benefit gate compares
//                that price against the residual gray tail per platform —
//                TDX (~1.46 s PCS round) must *decline* every hedge, while
//                SEV-SNP's local-cert round (~42 ms) stays worth paying.
// Expected shape (hard exit checks):
//   - hedged_warm p99 < reactive p99 on every secure platform — warm
//     crossings convert the gray tail into ~threshold-sized latency;
//   - in the TDX cold regime zero hedges fire and the cost gate's
//     declined counter is hot: the policy knows a 1.46 s crossing cannot
//     rescue a ~300 ms straggler;
//   - reactive failover never fires in any cell (gray slowness is
//     invisible to it — the motivation for hedging at all);
//   - every offered request terminates in exactly one bucket across every
//     hedge/cancel/race path, and identical seeds reproduce the CSV byte
//     for byte.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "attest/svc/cost_model.h"
#include "bench/common.h"
#include "bench/harness.h"
#include "core/confbench.h"
#include "fault/fault.h"
#include "metrics/csv.h"
#include "metrics/table.h"
#include "sched/shard.h"
#include "sim/rng.h"

using namespace confbench;

namespace {

struct Key {
  std::string platform;
  bool secure;
  bool operator<(const Key& o) const {
    return std::tie(platform, secure) < std::tie(o.platform, o.secure);
  }
};

}  // namespace

int main() {
  bench::Harness h("shard_hedge");
  const std::uint64_t reqs = h.requests("CONFBENCH_HEDGE_REQUESTS", 9000);
  const std::vector<std::string> platforms = {"tdx", "sev-snp", "cca"};

  std::printf("Speculative cross-shard hedging vs reactive failover under "
              "gray-slow shards — iostress, %llu requests/cell\n\n",
              static_cast<unsigned long long>(reqs));

  auto system = core::ConfBench::standard();

  std::map<Key, sched::ServiceModel> models;
  for (const auto& platform : platforms)
    for (const bool secure : {false, true})
      models[{platform, secure}] = sched::ServiceModel::calibrate(
          *system, "iostress", "go", platform, secure, 4);

  // What a speculative crossing costs through the verification service,
  // per platform: the warm price is a session-ticket check, the cold price
  // is the collateral fetch plus the local verify (what the service's
  // batch path actually charges on a cache miss).
  std::printf("Crossing price through the verification service\n");
  std::printf("%-9s %12s %12s\n", "platform", "warm_ms", "cold_ms");
  std::map<std::string, attest::svc::CostModel> costs;
  for (const auto& platform : platforms) {
    const attest::svc::CostModel cm = attest::svc::CostModel::measure(platform);
    costs[platform] = cm;
    std::printf("%-9s %12.3f %12.3f\n", platform.c_str(),
                cm.supported ? cm.ticket_check_ns / 1e6 : 0.0,
                cm.supported ? (cm.collateral_ns + cm.warm_verify_ns()) / 1e6
                             : 0.0);
  }
  std::printf("\n");

  metrics::CsvWriter csv(
      {"regime", "platform", "secure", "offered", "completed", "rejected",
       "failed", "failovers", "hedges_fired", "hedges_cross", "hedge_wins",
       "cross_wins", "cancelled_queue", "cancelled_inflight",
       "declined_budget", "declined_breaker", "declined_degraded",
       "declined_cost", "ticket_resumes", "full_verifies", "availability",
       "p50_ms", "p99_ms", "p99_hedged_ms", "throughput_rps"});

  // [regime][platform][secure] -> run result for the summary + checks.
  std::map<std::string, std::map<std::string, std::map<bool, double>>> p99_ms;
  std::map<std::string, std::map<std::string, std::map<bool, sched::HedgeStats>>>
      hstats;

  double waste_ratio_max = 0;  // warm-regime duplicated work that lost
  const std::vector<std::string> regimes = {"reactive", "hedged_warm",
                                            "hedged_cold"};
  for (const auto& regime : regimes) {
    for (const auto& platform : platforms) {
      for (const bool secure : {false, true}) {
        const sched::ServiceModel& model = models[{platform, secure}];

        sched::ShardedConfig cfg;
        cfg.platform = platform;
        cfg.secure = secure;
        cfg.requests = reqs;
        cfg.warmup_requests = reqs / 20;
        cfg.replicas = 16;
        cfg.shard.shards = 4;
        cfg.queue = {.concurrency = 8, .queue_depth = 32};
        cfg.scaler.tick_ns = 20 * sim::kMs;
        cfg.probe_interval_ns =
            std::max<sim::Ns>(50 * sim::kMs, model.total_ns());
        cfg.retry.max_attempts = 4;
        cfg.retry.budget_ns = 120 * sim::kSec;
        // 30% of sustainable rate: queues stay shallow, so the hedged tail
        // measures the crossing + race, not queueing at the successor.
        cfg.rate_rps = 0.3 * cfg.replicas *
                       model.replica_capacity_rps(cfg.queue.concurrency);
        cfg.seed = sim::hash_combine(
            sim::stable_hash("shardhedge/" + regime + "/" + platform), secure);

        if (regime != "reactive") {
          cfg.hedge.enabled = true;
          cfg.hedge.cross_shard = true;
          // Arm just above the clean bulk: the 25% gray minority never
          // drags the median, so stragglers hedge while their answer
          // crawls back through the slowed link.
          cfg.hedge.quantile = 0.55;
          cfg.hedge.budget_fraction = 0.5;
          cfg.hedge.warmup = 64;
          if (secure) {
            // Crossings verify through the live service (the cost model is
            // measured from cfg.platform). Warm regime: prewarmed
            // collateral + live session tickets for every shard subject.
            // Cold regime: no tickets, no cache — every crossing would pay
            // collateral + verify, and the benefit gate decides per
            // platform whether that can still win.
            cfg.attest_svc.enabled = true;
            if (regime == "hedged_warm") {
              cfg.attest_svc.collateral_ttl_ns = 600 * sim::kSec;
              cfg.attest_svc.ticket_ttl_ns = 300 * sim::kSec;
              for (int s = 0; s < cfg.shard.shards; ++s)
                cfg.attest_svc.prewarm_subjects.push_back(
                    static_cast<std::uint64_t>(s));
            } else {
              cfg.attest_svc.collateral_ttl_ns = 0;
              cfg.attest_svc.ticket_ttl_ns = 0;
            }
          }
        }

        // The gray failure: one member of shard-0's slice answers through a
        // slowed link for [10%, 70%] of the run. The response-path factor
        // adds ~10 service times of pure latency — far above any warm
        // crossing, below TDX's cold collateral round — while the request
        // path, the replica and the breakers see nothing.
        const sim::Ns expect_ns =
            static_cast<double>(reqs) / cfg.rate_rps * sim::kSec;
        const sim::Ns gray_extra = 10 * model.total_ns();
        const double factor =
            1.0 + static_cast<double>(gray_extra) /
                      static_cast<double>(2 * cfg.shard.hop_ns);
        const sched::ShardedFrontend fe(cfg.shard, cfg.replicas);
        cfg.faults.slow_link(0.1 * expect_ns, 0.6 * expect_ns,
                             sched::ShardedFrontend::replica_host(
                                 fe.slice(0)[0]),
                             sched::ShardedFrontend::shard_host(0), factor);

        const sched::ShardedResult r =
            sched::ShardedExperiment(cfg).run_with_model(model);
        const std::string cell =
            regime + "/" + platform + (secure ? "/secure" : "/normal");
        h.check(r.accounted(), "zero lost requests in " + cell);

        p99_ms[regime][platform][secure] = r.latency.p99() / 1e6;
        hstats[regime][platform][secure] = r.hedging;
        if (regime == "hedged_warm" && r.hedging.fired > 0)
          waste_ratio_max = std::max(
              waste_ratio_max,
              static_cast<double>(r.hedging.fired - r.hedging.wins) /
                  static_cast<double>(r.hedging.fired));

        csv.add_row(
            {regime, platform, secure ? "1" : "0", std::to_string(r.offered),
             std::to_string(r.completed), std::to_string(r.rejected),
             std::to_string(r.failed), std::to_string(r.failovers),
             std::to_string(r.hedging.fired), std::to_string(r.hedging.cross),
             std::to_string(r.hedging.wins),
             std::to_string(r.hedging.cross_wins),
             std::to_string(r.hedging.cancelled_queue),
             std::to_string(r.hedging.cancelled_inflight),
             std::to_string(r.hedging.declined_budget),
             std::to_string(r.hedging.declined_breaker),
             std::to_string(r.hedging.declined_degraded),
             std::to_string(r.hedging.declined_cost),
             std::to_string(r.hedging.ticket_resumes),
             std::to_string(r.hedging.full_verifies),
             metrics::Table::num(r.availability(), 6),
             metrics::Table::num(r.latency.p50() / 1e6, 4),
             metrics::Table::num(r.latency.p99() / 1e6, 4),
             metrics::Table::num(r.latency_hedged.p99() / 1e6, 4),
             metrics::Table::num(r.throughput_rps(), 1)});

        // Gray slowness must be invisible to the reactive machinery in
        // every regime — if a breaker or failover fired, the scenario is
        // not the pure-latency failure this bench prices.
        h.check(r.failovers == 0, "no reactive failover in " + cell);
      }
    }
  }

  // (a) Warm-ticket hedging vs reactive waiting, per secure platform.
  std::printf("Gray-slow tail: reactive waiting vs speculative crossing "
              "(fleet p99)\n");
  std::printf("%-9s %7s %12s %12s %12s %10s %10s\n", "platform", "mode",
              "reactive_ms", "hedged_ms", "saved_ms", "fired", "cross_wins");
  bool warm_wins = true;
  double ratio_worst = 0;  // hedged/reactive, worst secure cell
  for (const auto& platform : platforms)
    for (const bool secure : {false, true}) {
      const double reactive = p99_ms["reactive"][platform][secure];
      const double hedged = p99_ms["hedged_warm"][platform][secure];
      const sched::HedgeStats& hs = hstats["hedged_warm"][platform][secure];
      if (secure) {
        warm_wins = warm_wins && hedged < reactive && hs.cross_wins > 0;
        if (reactive > 0)
          ratio_worst = std::max(ratio_worst, hedged / reactive);
      }
      std::printf("%-9s %7s %12.2f %12.2f %12.2f %10llu %10llu\n",
                  platform.c_str(), secure ? "secure" : "normal", reactive,
                  hedged, reactive - hedged,
                  static_cast<unsigned long long>(hs.fired),
                  static_cast<unsigned long long>(hs.cross_wins));
    }
  std::printf(
      "expected: hedged < reactive everywhere — a warm crossing costs a\n"
      "ticket check, a gray straggler costs ~10 service times of waiting\n\n");

  // (b) The cold regime: the benefit gate prices per platform.
  std::printf("Cold-service regime: what the cost gate decided (secure)\n");
  std::printf("%-9s %12s %12s %14s %12s\n", "platform", "fired",
              "decl_cost", "cold_price_ms", "p99_ms");
  for (const auto& platform : platforms) {
    const sched::HedgeStats& hs = hstats["hedged_cold"][platform][true];
    const attest::svc::CostModel& cm = costs[platform];
    std::printf("%-9s %12llu %12llu %14.1f %12.2f\n", platform.c_str(),
                static_cast<unsigned long long>(hs.fired),
                static_cast<unsigned long long>(hs.declined_cost),
                cm.supported ? (cm.collateral_ns + cm.warm_verify_ns()) / 1e6
                             : 0.0,
                p99_ms["hedged_cold"][platform][true]);
  }
  std::printf(
      "expected: TDX declines everything (a 1.46s PCS round cannot rescue\n"
      "a ~300ms straggler); SEV-SNP's local-cert round stays worth paying;\n"
      "CCA crossings are free under FVP\n\n");

  const sched::HedgeStats& tdx_cold = hstats["hedged_cold"]["tdx"][true];
  h.check(warm_wins,
          "warm-ticket hedging beats reactive p99 (with cross wins) on every "
          "secure platform");
  h.check(tdx_cold.fired == 0 && tdx_cold.declined_cost > 0,
          "TDX cold regime: the cost gate declines every crossing");
  h.metric("hedged_vs_reactive_p99_ratio_worst", ratio_worst);
  h.metric("hedge_waste_ratio_max", waste_ratio_max);
  h.metric("tdx_warm_saved_ms", p99_ms["reactive"]["tdx"][true] -
                                    p99_ms["hedged_warm"]["tdx"][true]);
  h.metric("tdx_cold_declined",
           static_cast<double>(tdx_cold.declined_cost));

  h.write_csv(csv, "shard_hedge.csv");
  return h.finish();
}

// A4 — google-benchmark microbenches for ConfBench's own components.
//
// These measure the *host* cost of the simulation substrates (how fast the
// tool itself runs), complementing the virtual-time figure benches.
#include <benchmark/benchmark.h>

#include "attest/service.h"
#include "attest/sha256.h"
#include "net/http.h"
#include "sim/cache.h"
#include "sim/rng.h"
#include "tee/registry.h"
#include "vm/exec_context.h"
#include "wl/db/btree.h"
#include "wl/ml/tensor.h"

using namespace confbench;

static void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attest::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

static void BM_CacheSim_StreamMiB(benchmark::State& state) {
  sim::CacheSim cache;
  std::uint64_t base = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.access_range({base, 1 << 20, 64, false}));
    base += 1 << 20;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) << 20);
}
BENCHMARK(BM_CacheSim_StreamMiB);

static void BM_HttpParseRequest(benchmark::State& state) {
  const std::string wire =
      net::HttpRequest{
          "POST", "/invoke",
          "function=fib&lang=lua&platform=tdx&secure=1&trial=3",
          {{"Host", "gateway"}, {"User-Agent", "confbench"}},
          "payload-body"}
          .serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_request(wire));
  }
}
BENCHMARK(BM_HttpParseRequest);

static void BM_BTreeInsert(benchmark::State& state) {
  sim::Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    wl::db::BPlusTree tree;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i)
      tree.insert(rng.next_u64(), static_cast<std::uint64_t>(i));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000);

static void BM_BTreeFind(benchmark::State& state) {
  wl::db::BPlusTree tree;
  sim::Rng rng(7);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 10000; ++i) {
    keys.push_back(rng.next_u64());
    tree.insert(keys.back(), static_cast<std::uint64_t>(i));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BTreeFind);

static void BM_Conv2d_Pointwise(benchmark::State& state) {
  wl::ml::Tensor in(14, 14, 64);
  for (std::size_t i = 0; i < in.data.size(); ++i)
    in.data[i] = static_cast<float>(i % 7) * 0.1f;
  std::vector<float> w(128 * 64, 0.01f), b(128, 0.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl::ml::pointwise_conv2d(in, w, b, 128));
  }
}
BENCHMARK(BM_Conv2d_Pointwise);

static void BM_ExecContext_Syscall(benchmark::State& state) {
  auto platform = tee::Registry::instance().create("tdx");
  vm::ExecutionContext ctx(platform, /*secure=*/true, 1);
  for (auto _ : state) {
    ctx.syscall();
    benchmark::DoNotOptimize(ctx.now());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ExecContext_Syscall);

static void BM_AttestRoundTrip_Snp(benchmark::State& state) {
  attest::AttestationService service;
  auto platform = tee::Registry::instance().create("sev-snp");
  std::uint64_t trial = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.run_snp(*platform, trial++));
  }
}
BENCHMARK(BM_AttestRoundTrip_Snp);

static void BM_Rng_U64(benchmark::State& state) {
  sim::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_Rng_U64);

BENCHMARK_MAIN();

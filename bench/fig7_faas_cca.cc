// Fig. 7 — CCA heatmap: secure(realm)/normal mean execution-time ratio for
// all 25 FaaS functions x 7 languages, both VMs inside the FVP simulator.
//
// Expected shape (§IV-D): much higher overheads than TDX/SEV-SNP across
// the board (lighter/hotter cells), with I/O-heavy functions worst.
#include <cstdio>

#include "bench/common.h"
#include "core/confbench.h"
#include "metrics/csv.h"
#include "metrics/table.h"
#include "metrics/heatmap.h"
#include "rt/profile.h"
#include "wl/faas.h"

using namespace confbench;

int main() {
  const int n = bench::trials();
  std::printf(
      "Fig. 7 — CCA (FVP) FaaS overhead heatmap (secure/normal mean ratio, "
      "%d trials)\n\n",
      n);

  auto bench_sys = core::ConfBench::standard();
  const auto& workloads = wl::faas_workloads();
  const auto& profiles = rt::builtin_profiles();

  std::vector<std::string> rows, cols;
  for (const auto& w : workloads) rows.push_back(w.name);
  for (const auto& p : profiles) cols.push_back(p.name);

  metrics::Heatmap map(rows, cols);
  metrics::CsvWriter csv({"function", "language", "ratio", "secure_ms",
                          "normal_ms"});
  double sum = 0, hottest = 0;
  std::string hottest_cell;
  for (std::size_t r = 0; r < workloads.size(); ++r) {
    for (std::size_t c = 0; c < profiles.size(); ++c) {
      const auto m =
          bench_sys->measure(workloads[r].name, profiles[c].name, "cca", n);
      const double ratio = m.ratio();
      map.set(r, c, ratio);
      sum += ratio;
      if (ratio > hottest) {
        hottest = ratio;
        hottest_cell = workloads[r].name + "/" + profiles[c].name;
      }
      csv.add_row({workloads[r].name, profiles[c].name,
                   metrics::Table::num(ratio, 3),
                   metrics::Table::num(bench::mean(m.secure_ns) / 1e6, 3),
                   metrics::Table::num(bench::mean(m.normal_ns) / 1e6, 3)});
    }
  }
  std::printf("%s", map.render({.ansi_color = false, .lo = 1.0, .hi = 6.0})
                        .c_str());
  std::printf(
      "\nmean ratio over the grid: %.2f   hottest cell: %s (%.2fx)\n",
      sum / (static_cast<double>(workloads.size()) * profiles.size()),
      hottest_cell.c_str(), hottest);
  std::printf(
      "paper: CCA incurs much higher overheads than the bare-metal TEEs, "
      "worst on I/O\n");
  csv.write_file("fig7_faas_cca.csv");
  std::printf("raw data -> fig7_faas_cca.csv\n");
  return 0;
}

// Ablation A1 — the TDX firmware fix (§III-B).
//
// The paper initially observed "consistently high overhead without a clear
// cause", solved by Intel's TDX_1.5.05.46.698 firmware, "boosting the
// execution runtime up to a 10x factor". This ablation runs the same
// workloads on the pre-fix and fixed TDX models and reports the speedup.
#include <cstdio>

#include "bench/common.h"
#include "core/launcher.h"
#include "metrics/table.h"
#include "rt/profile.h"
#include "tee/tdx.h"
#include "wl/faas.h"

using namespace confbench;

namespace {

double mean_secure_ms(const tee::PlatformPtr& platform,
                      const wl::FaasWorkload& fn, int trials) {
  vm::VmConfig cfg{"tdx/secure", platform, true, vm::UnitKind::kVm, 8, 16ULL << 30};
  vm::GuestVm vm(cfg);
  vm.boot();
  const core::FunctionLauncher launcher(*rt::find_profile("python"));
  double sum = 0;
  for (int t = 0; t < trials; ++t)
    sum += launcher.launch(vm, fn, static_cast<std::uint64_t>(t)).function_ns;
  return sum / trials / 1e6;
}

}  // namespace

int main() {
  const int n = bench::trials();
  std::printf(
      "Ablation — TDX firmware upgrade (TDX_1.5.05.46.698), python, %d "
      "trials\n\n",
      n);

  auto pre = std::make_shared<tee::TdxPlatform>(tee::TdxFirmware::kPreFix);
  auto fixed = std::make_shared<tee::TdxPlatform>(tee::TdxFirmware::kFixed);

  metrics::Table table(
      {"function", "pre-fix ms", "fixed ms", "speedup"});
  double max_speedup = 0;
  for (const char* name :
       {"cpustress", "memstress", "iostress", "logging", "filesystem",
        "hashtable", "syscall-heavy: kvstore"}) {
    const std::string fn_name =
        std::string(name).find(':') != std::string::npos ? "kvstore" : name;
    const auto* fn = wl::find_faas(fn_name);
    if (!fn) continue;
    const double pre_ms = mean_secure_ms(pre, *fn, n);
    const double fixed_ms = mean_secure_ms(fixed, *fn, n);
    const double speedup = fixed_ms > 0 ? pre_ms / fixed_ms : 0;
    max_speedup = std::max(max_speedup, speedup);
    table.add_row({fn_name, metrics::Table::num(pre_ms),
                   metrics::Table::num(fixed_ms),
                   metrics::Table::num(speedup) + "x"});
  }
  std::printf("%s\nmax speedup from the firmware fix: %.1fx\n",
              table.render().c_str(), max_speedup);
  std::printf("paper: the upgrade boosted execution runtime up to 10x\n");
  return 0;
}

// Ablation A5 — first-generation process TEE (SGX) vs second-generation VM
// TEEs (paper §I motivation, §VI future work).
//
// The introduction argues that VM TEEs "lower the barriers to entry" vs
// SGX's intrusive model; this bench quantifies the *performance* side of
// that argument by running the same FaaS functions in an SGX enclave model
// versus TDX/SEV-SNP confidential VMs. Expect the enclave to be competitive
// on pure compute but to fall off a cliff on syscall- and memory-heavy
// work (OCALL world switches, MEE integrity-tree walks, EPC paging).
#include <cstdio>

#include "bench/common.h"
#include "core/launcher.h"
#include "metrics/table.h"
#include "rt/profile.h"
#include "tee/registry.h"
#include "wl/faas.h"

using namespace confbench;

namespace {

double secure_over_normal(const char* platform, const wl::FaasWorkload& fn,
                          int trials) {
  auto p = tee::Registry::instance().create(platform);
  const core::FunctionLauncher launcher(core::native_profile());
  double secure = 0, normal = 0;
  for (const bool is_secure : {true, false}) {
    vm::VmConfig cfg{std::string(platform), p, is_secure, vm::UnitKind::kVm, 8, 16ULL << 30};
    vm::GuestVm unit(cfg);
    unit.boot();
    double sum = 0;
    for (int t = 0; t < trials; ++t)
      sum += launcher.launch(unit, fn, static_cast<std::uint64_t>(t))
                 .function_ns;
    (is_secure ? secure : normal) = sum;
  }
  return secure / normal;
}

}  // namespace

int main() {
  const int n = bench::trials();
  std::printf(
      "Ablation — SGX enclave vs confidential VMs (native binaries, %d "
      "trials)\nsecure/normal execution-time ratio per platform\n\n",
      n);

  metrics::Table table({"function", "category", "sgx", "tdx", "sev-snp"});
  double sgx_sum = 0, tdx_sum = 0;
  int rows = 0;
  for (const char* name : {"cpustress", "fib", "primes", "hashtable",
                           "memstress", "json", "logging", "kvstore",
                           "iostress", "filesystem"}) {
    const auto* fn = wl::find_faas(name);
    const double sgx = secure_over_normal("sgx", *fn, n);
    const double tdx = secure_over_normal("tdx", *fn, n);
    const double snp = secure_over_normal("sev-snp", *fn, n);
    sgx_sum += sgx;
    tdx_sum += tdx;
    ++rows;
    table.add_row({name, std::string(to_string(fn->category)),
                   metrics::Table::num(sgx), metrics::Table::num(tdx),
                   metrics::Table::num(snp)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "mean ratio: sgx %.2f vs tdx %.2f — the gap is the paper's case for "
      "second-generation VM TEEs (§I)\n",
      sgx_sum / rows, tdx_sum / rows);
  return 0;
}

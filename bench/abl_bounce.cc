// Ablation A2 — TDX bounce buffers (§IV-D).
//
// The paper attributes TDX's iostress overhead to encrypted swiotlb bounce
// buffers and expects the upcoming TDX Connect to remove it. This ablation
// compares stock TDX against a "TDX Connect preview" platform whose secure
// I/O path performs trusted DMA (no bounce copies), isolating how much of
// the I/O-bound overhead the bounce path explains.
#include <cstdio>

#include "bench/common.h"
#include "core/launcher.h"
#include "metrics/table.h"
#include "rt/profile.h"
#include "tee/tdx.h"
#include "wl/faas.h"

using namespace confbench;

namespace {

/// Stock TDX with the bounce-buffer path removed (TDX Connect: trusted
/// devices DMA directly into private memory).
class TdxConnectPreview final : public tee::Platform {
 public:
  TdxConnectPreview() {
    secure_ = base_.costs(true);
    secure_.io.bounce_fixed_ns = 0;
    secure_.io.bounce_byte_ns = 0;
  }
  [[nodiscard]] tee::TeeKind kind() const override {
    return tee::TeeKind::kTdx;
  }
  [[nodiscard]] std::string_view name() const override {
    return "tdx-connect";
  }
  [[nodiscard]] const sim::PlatformCosts& costs(bool secure) const override {
    return secure ? secure_ : base_.costs(false);
  }
  [[nodiscard]] bool has_perf_counters(bool) const override { return true; }
  [[nodiscard]] tee::AttestationCosts attestation() const override {
    return base_.attestation();
  }
  [[nodiscard]] std::string_view exit_primitive() const override {
    return "TDCALL";
  }

 private:
  tee::TdxPlatform base_;
  sim::PlatformCosts secure_;
};

struct Ratio {
  double secure_ms;
  double normal_ms;
};

Ratio measure(const tee::PlatformPtr& platform, const wl::FaasWorkload& fn,
              int trials) {
  const core::FunctionLauncher launcher(*rt::find_profile("go"));
  Ratio r{0, 0};
  for (const bool secure : {true, false}) {
    vm::VmConfig cfg{std::string("tdx/") + (secure ? "s" : "n"), platform,
                     secure, vm::UnitKind::kVm, 8, 16ULL << 30};
    vm::GuestVm vm(cfg);
    vm.boot();
    double sum = 0;
    for (int t = 0; t < trials; ++t)
      sum +=
          launcher.launch(vm, fn, static_cast<std::uint64_t>(t)).function_ns;
    (secure ? r.secure_ms : r.normal_ms) = sum / trials / 1e6;
  }
  return r;
}

}  // namespace

int main() {
  const int n = bench::trials();
  std::printf(
      "Ablation — TDX bounce buffers vs TDX Connect preview (go, %d "
      "trials)\n\n",
      n);

  auto stock = std::make_shared<tee::TdxPlatform>();
  auto connect = std::make_shared<TdxConnectPreview>();

  metrics::Table table({"function", "stock ratio", "no-bounce ratio",
                        "bounce share of overhead"});
  for (const char* name :
       {"iostress", "filesystem", "kvstore", "logging", "cpustress"}) {
    const auto* fn = wl::find_faas(name);
    const Ratio stock_r = measure(stock, *fn, n);
    const Ratio conn_r = measure(connect, *fn, n);
    const double stock_ratio = stock_r.secure_ms / stock_r.normal_ms;
    const double conn_ratio = conn_r.secure_ms / conn_r.normal_ms;
    const double overhead = stock_ratio - 1.0;
    const double explained =
        overhead > 0 ? (stock_ratio - conn_ratio) / overhead * 100.0 : 0.0;
    table.add_row({name, metrics::Table::num(stock_ratio),
                   metrics::Table::num(conn_ratio),
                   metrics::Table::num(explained, 0) + "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper: bounce buffers explain TDX's I/O overhead; TDX Connect is "
      "expected to improve it considerably\n");
  return 0;
}

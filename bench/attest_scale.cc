// Attestation at production scale: the verification service under a
// cross-shard crossing-rate sweep.
//
// The sharded-fabric bench showed *one* number per (platform, mode): the
// flat full-round price every cross-shard admission pays. This bench asks
// the follow-up the verification service exists to answer: what do
// production crossing rates cost when verification is *shared* — tickets
// resumed, collateral cached, fetches batched — instead of re-priced from
// scratch per crossing?
//
// Grid: {x1, x2} crossing-rate scenarios (one / two of four shards shed
// their admissions to ring successors for 60% of the run, doubling the
// crossing volume between them) x three platforms (tdx, sev-snp, cca;
// secure fleets) x two service modes:
//
//   cold  caching and tickets disabled — every crossing pays the
//         decomposed full round (collateral fetch + quote verify). This is
//         the naive shared verifier, and on TDX it retains the ~1.46 s
//         PCS cliff the paper measures for standalone attestation;
//   warm  steady-state service — shard tickets pre-established (the
//         fabric ran before the measured window), so repeat crossings pay
//         ~ticket-check cost and the cross-shard tail collapses to fabric
//         transit + handshake;
//
// plus, on sev-snp only, the e-vTPM mode (SVSM vTPM at VMPL0, AK bound to
// an SNP report once): each verification is a local TPM quote check — no
// AMD-SP round, no collateral, outage-immune.
//
// A baseline cell per platform (no faults, no crossings) anchors the
// intra-shard p99 the warm tail is compared against.
//
// Exit checks (hard failures, return 1):
//   - every cell satisfies the zero-lost-requests invariant;
//   - warm crossings resume tickets (tdx + sev-snp; CCA has no
//     attestation flow under FVP and verifies for free);
//   - warm cross-shard p99 is within 2x of the baseline intra-shard p99
//     on all three platforms — the tentpole claim: shared verification
//     makes crossing shards affordable at production rates;
//   - cold TDX keeps the collateral cliff: cross p99 at least half a full
//     round above baseline — the service does not wish the PCS away, it
//     amortizes it;
//   - e-vTPM beats cold SNP cross p99 — binding the AK once is cheaper
//     than re-deriving trust from the AMD-SP per crossing.
//
// Determinism: same seeds, same bytes — CI runs the bench twice and
// byte-compares attest_scale.csv. The bench::Harness BENCH_attest_scale
// .json snapshot (wall-clock + the key p99s) records the perf trajectory
// per run; the wall-clock field is real time and is not part of the
// determinism contract.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "attest/svc/cost_model.h"
#include "bench/common.h"
#include "bench/harness.h"
#include "core/confbench.h"
#include "fault/fault.h"
#include "metrics/csv.h"
#include "metrics/table.h"
#include "sched/cluster.h"
#include "sched/shard.h"

using namespace confbench;

namespace {

/// Service configuration of one mode cell.
attest::svc::VerifyConfig mode_config(const std::string& mode, int shards) {
  attest::svc::VerifyConfig vc;
  vc.enabled = true;
  if (mode == "cold") {
    // Naive shared verifier: no reuse at all. Batching still amortizes
    // fetches *within* a window, but every request waits out the fetch.
    vc.collateral_ttl_ns = 0;
    vc.ticket_ttl_ns = 0;
  } else if (mode == "warm") {
    vc.collateral_ttl_ns = 3600 * sim::kSec;
    vc.ticket_ttl_ns = 3600 * sim::kSec;
    for (int s = 0; s < shards; ++s)
      vc.prewarm_subjects.push_back(static_cast<std::uint64_t>(s));
  } else {  // evtpm
    vc.mode = attest::svc::VerifyMode::kEvtpm;
    vc.collateral_ttl_ns = 0;
    vc.ticket_ttl_ns = 0;
  }
  return vc;
}

}  // namespace

int main() {
  bench::Harness h("attest_scale");
  const std::uint64_t reqs = h.requests("CONFBENCH_ATTEST_REQUESTS", 8000);
  const std::vector<std::string> platforms = {"tdx", "sev-snp", "cca"};

  std::printf("Attestation verification service at scale — iostress secure "
              "fleets, %llu requests/cell\n\n",
              static_cast<unsigned long long>(reqs));

  auto system = core::ConfBench::standard();

  std::map<std::string, sched::ServiceModel> models;
  std::map<std::string, attest::svc::CostModel> costs;
  for (const auto& platform : platforms) {
    models[platform] = sched::ServiceModel::calibrate(*system, "iostress",
                                                      "go", platform,
                                                      /*secure=*/true, 4);
    costs[platform] = attest::svc::CostModel::measure(platform);
  }

  metrics::CsvWriter csv(
      {"scenario", "platform", "mode", "offered", "completed", "rejected",
       "failed", "crossings", "shed", "availability", "p50_ms", "p99_ms",
       "p99_cross_ms", "full_verifies", "evtpm_verifies", "batches",
       "batched", "fetches", "cache_hits", "cache_misses", "ticket_mints",
       "ticket_resumes", "deadline_giveups", "throughput_rps"});

  // [scenario][platform][mode] -> p99s for the exit checks.
  std::map<std::string, std::map<std::string, std::map<std::string, double>>>
      p99_ms, cross_ms;
  std::map<std::string, std::map<std::string, std::map<std::string,
                                                       sched::AttestSvcStats>>>
      svc_stats;

  const std::vector<std::string> scenarios = {"baseline", "x1", "x2"};
  for (const auto& scenario : scenarios) {
    for (const auto& platform : platforms) {
      std::vector<std::string> modes = {"cold", "warm"};
      if (platform == "sev-snp") modes.push_back("evtpm");
      if (scenario == "baseline") modes = {"warm"};  // no crossings anyway
      for (const auto& mode : modes) {
        const sched::ServiceModel& model = models[platform];

        sched::ShardedConfig cfg;
        cfg.platform = platform;
        cfg.secure = true;
        cfg.requests = reqs;
        cfg.warmup_requests = reqs / 20;
        cfg.replicas = 16;
        cfg.shard.shards = 4;
        cfg.queue = {.concurrency = 8, .queue_depth = 32};
        cfg.scaler.tick_ns = 20 * sim::kMs;
        cfg.probe_interval_ns =
            std::max<sim::Ns>(50 * sim::kMs, model.total_ns());
        cfg.retry.max_attempts = 4;
        cfg.retry.budget_ns = 600 * sim::kSec;
        // 25% of fleet capacity: shedding shards re-route their quarter of
        // the traffic without saturating the successors, so the cross tail
        // measures verification, not queueing collapse.
        cfg.rate_rps = 0.25 * cfg.replicas *
                       model.replica_capacity_rps(cfg.queue.concurrency);
        cfg.seed = sim::hash_combine(
            sim::stable_hash("attscale/" + scenario + "/" + platform +
                             "/" + mode),
            1);
        cfg.attest_svc = mode_config(mode, cfg.shard.shards);
        cfg.attest_svc.cost = costs[platform];

        // Crossing-rate sweep: shed one (x1) or two (x2) of the four
        // shards for the middle 60% of the expected run by cutting each
        // off from 3/4 of its slice — the shard sees a minority-reachable
        // slice and forwards admissions to its ring successor, which must
        // verify before dispatching.
        const sim::Ns expect_ns =
            static_cast<double>(reqs) / cfg.rate_rps * sim::kSec;
        const int shed_shards =
            scenario == "x1" ? 1 : scenario == "x2" ? 2 : 0;
        if (shed_shards > 0) {
          const sched::ShardedFrontend fe(cfg.shard, cfg.replicas);
          for (int s = 0; s < shed_shards; ++s) {
            const auto& slice = fe.slice(s);
            const std::size_t cut = slice.size() - slice.size() / 4;
            for (std::size_t i = 0; i < cut; ++i)
              cfg.faults.link_down(0.1 * expect_ns, 0.6 * expect_ns,
                                   sched::ShardedFrontend::shard_host(s),
                                   sched::ShardedFrontend::replica_host(
                                       slice[i]));
          }
        }

        const sched::ShardedResult r =
            sched::ShardedExperiment(cfg).run_with_model(model);
        h.check(r.accounted(), "zero lost requests in " + scenario + "/" +
                                   platform + "/" + mode);

        p99_ms[scenario][platform][mode] = r.latency.p99() / 1e6;
        cross_ms[scenario][platform][mode] = r.latency_cross.p99() / 1e6;
        svc_stats[scenario][platform][mode] = r.attest;
        csv.add_row(
            {scenario, platform, mode, std::to_string(r.offered),
             std::to_string(r.completed), std::to_string(r.rejected),
             std::to_string(r.failed),
             std::to_string(r.cross_failovers + r.shed),
             std::to_string(r.shed),
             metrics::Table::num(r.availability(), 6),
             metrics::Table::num(r.latency.p50() / 1e6, 4),
             metrics::Table::num(r.latency.p99() / 1e6, 4),
             metrics::Table::num(r.latency_cross.p99() / 1e6, 4),
             std::to_string(r.attest.full), std::to_string(r.attest.evtpm),
             std::to_string(r.attest.batches),
             std::to_string(r.attest.batched),
             std::to_string(r.attest.fetches),
             std::to_string(r.attest.cache_hits),
             std::to_string(r.attest.cache_misses),
             std::to_string(r.attest.ticket_mints),
             std::to_string(r.attest.ticket_resumes),
             std::to_string(r.attest.deadline_giveups),
             metrics::Table::num(r.throughput_rps(), 1)});
      }
    }
  }

  // Summary: the crossing tail per mode against the intra-shard anchor.
  std::printf("Cross-shard p99 by service mode (x1 crossing rate; "
              "baseline = intra-shard anchor)\n");
  std::printf("%-9s %12s %12s %12s %12s %14s\n", "platform", "base_ms",
              "cold_ms", "warm_ms", "evtpm_ms", "full_round_ms");
  for (const auto& platform : platforms) {
    const double base = p99_ms["baseline"][platform]["warm"];
    const double cold = cross_ms["x1"][platform]["cold"];
    const double warm = cross_ms["x1"][platform]["warm"];
    const bool has_evtpm = platform == "sev-snp";
    std::printf("%-9s %12.2f %12.2f %12.2f %12s %14.1f\n", platform.c_str(),
                base, cold, warm,
                has_evtpm
                    ? metrics::Table::num(cross_ms["x1"][platform]["evtpm"], 2)
                          .c_str()
                    : "-",
                costs[platform].full_round_ns / 1e6);
  }
  std::printf(
      "expected: warm ~ base + fabric transit (tickets resume); cold keeps\n"
      "the platform's collateral cliff (~1.4 s TDX); e-vTPM sits between —\n"
      "local quote check, no PCS\n\n");

  std::printf("Doubling the crossing rate (x1 -> x2, warm): amortization "
              "should hold the tail\n");
  for (const auto& platform : platforms)
    std::printf("  %-9s warm cross p99: %8.2f -> %8.2f ms  "
                "(resumes %llu -> %llu)\n",
                platform.c_str(), cross_ms["x1"][platform]["warm"],
                cross_ms["x2"][platform]["warm"],
                static_cast<unsigned long long>(
                    svc_stats["x1"][platform]["warm"].ticket_resumes),
                static_cast<unsigned long long>(
                    svc_stats["x2"][platform]["warm"].ticket_resumes));
  std::printf("\n");

  // --- exit checks -----------------------------------------------------------
  for (const auto& platform : {std::string("tdx"), std::string("sev-snp")})
    for (const auto& scenario : {std::string("x1"), std::string("x2")})
      h.check(svc_stats[scenario][platform]["warm"].ticket_resumes > 0,
              scenario + "/" + platform +
                  " warm cell resumes tickets (crossings exercise the "
                  "service)");
  for (const auto& platform : platforms) {
    const double base = p99_ms["baseline"][platform]["warm"];
    const double warm = cross_ms["x1"][platform]["warm"];
    h.check(warm > 0.0 && warm <= 2.0 * base,
            platform + " warm cross-shard p99 within 2x of intra-shard p99");
  }
  {
    const double base = p99_ms["baseline"]["tdx"]["warm"];
    const double cold = cross_ms["x1"]["tdx"]["cold"];
    const double round_ms = costs["tdx"].full_round_ns / 1e6;
    h.check(cold - base >= 0.5 * round_ms,
            "cold TDX keeps the collateral cliff (cross p99 at least half "
            "a full round above baseline)");
  }
  h.check(cross_ms["x1"]["sev-snp"]["evtpm"] < cross_ms["x1"]["sev-snp"]["cold"],
          "e-vTPM cross p99 beats cold SNP");

  // Perf-trajectory snapshot: the key deterministic p99s CI tracks across
  // commits, alongside the Harness's (real-time) wall clock.
  for (const auto& platform : platforms) {
    h.metric(platform + "_base_p99_ms", p99_ms["baseline"][platform]["warm"]);
    h.metric(platform + "_cold_cross_p99_ms", cross_ms["x1"][platform]["cold"]);
    h.metric(platform + "_warm_cross_p99_ms", cross_ms["x1"][platform]["warm"]);
    h.metric(platform + "_full_round_ms", costs[platform].full_round_ns / 1e6);
  }
  h.metric("sev-snp_evtpm_cross_p99_ms", cross_ms["x1"]["sev-snp"]["evtpm"]);

  h.write_csv(csv, "attest_scale.csv");
  return h.finish();
}

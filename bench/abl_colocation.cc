// Ablation A6 — co-located TEE VMs on one host (paper §VI, future work).
//
// Sweeps the number of concurrently active confidential VMs per host and
// reports how the secure/normal ratio and absolute times degrade: the
// shared memory-crypto engine makes the *secure* VM degrade faster than its
// normal neighbour, so the TEE overhead ratio itself grows with tenancy.
#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "core/launcher.h"
#include "metrics/table.h"
#include "rt/profile.h"
#include "tee/colocation.h"
#include "tee/registry.h"
#include "wl/faas.h"

using namespace confbench;

namespace {

struct Point {
  double secure_ms;
  double normal_ms;
};

Point measure(const tee::PlatformPtr& platform, const wl::FaasWorkload& fn,
              int trials) {
  const core::FunctionLauncher launcher(*rt::find_profile("go"));
  Point p{0, 0};
  for (const bool secure : {true, false}) {
    vm::VmConfig cfg{"vm", platform, secure, vm::UnitKind::kVm, 8, 16ULL << 30};
    vm::GuestVm unit(cfg);
    unit.boot();
    double sum = 0;
    for (int t = 0; t < trials; ++t)
      sum += launcher.launch(unit, fn, static_cast<std::uint64_t>(t))
                 .function_ns;
    (secure ? p.secure_ms : p.normal_ms) = sum / trials / 1e6;
  }
  return p;
}

}  // namespace

int main() {
  const int n = bench::trials();
  std::printf(
      "Ablation — co-located confidential VMs per host (go runtime, %d "
      "trials)\n\n",
      n);

  for (const char* platform_name : {"tdx", "sev-snp"}) {
    auto base = tee::Registry::instance().create(platform_name);
    std::printf("== %s ==\n", platform_name);
    metrics::Table table({"tenants", "memstress ratio", "iostress ratio",
                          "memstress sec ms", "iostress sec ms"});
    for (const int tenants : {1, 2, 4, 8}) {
      auto platform =
          std::make_shared<tee::ColocatedPlatform>(base, tenants);
      const Point mem = measure(platform, *wl::find_faas("memstress"), n);
      const Point io = measure(platform, *wl::find_faas("iostress"), n);
      table.add_row({std::to_string(tenants),
                     metrics::Table::num(mem.secure_ms / mem.normal_ms),
                     metrics::Table::num(io.secure_ms / io.normal_ms),
                     metrics::Table::num(mem.secure_ms, 1),
                     metrics::Table::num(io.secure_ms, 1)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf(
      "absolute times degrade steeply with tenancy while the secure/normal "
      "ratio stays roughly stable\n(memory) or even shrinks (I/O): shared "
      "device and DRAM queues hit both VM kinds, diluting\nthe TEE-specific "
      "share of the overhead\n");
  return 0;
}

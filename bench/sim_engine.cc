// Engine self-benchmark — the perf-trajectory anchor for the simulation
// core (BENCH_sim_engine.json, gated by tools/check_perf.py in CI).
//
// Measures the timer-wheel EventQueue (SBO sched::Action, O(1)
// cancel/reschedule) against two baselines on identical event streams:
//   - bench::LegacyEventQueue, the engine exactly as the repo shipped it
//     through PR 6 ({time, seq, std::function} nodes sifted through one
//     std::push_heap binary heap) — the honest "before" and the side the
//     >= 5x target is measured against;
//   - sched::ReferenceEventQueue, the idealized indirect-heap oracle that
//     carries the new EventId API, used to prove order equivalence under
//     cancel/reschedule churn and as a stricter advisory ratio.
// CI gates on the speedup *ratios*, which are machine-independent;
// absolute events/sec and wall clocks ride along as advisory data.
//
// Scenarios:
//
//   realistic-mix: ~1M pending events, every handler schedules a
//   successor, ~12% of fires cancel a pseudo-random pending event and
//   backfill it (the hedge-loser pattern), ~6% reschedule one (the
//   deadline-extension pattern). Both engines fold (virtual time,
//   payload) of every fired event into a checksum; equal checksums prove
//   the wheel executed the randomized schedule in exactly the reference
//   order — the same (time, seq) contract the CSV byte-diffs rest on.
//
//   pending-scale: steady-state successor churn at 4M pending events
//   spread over a 16 s horizon — the fleet scale the ROADMAP's "sweep
//   what the paper could only sample" direction needs. Every pop of a
//   binary heap sifts a 4M-entry array (log n levels of cache misses,
//   48-byte non-trivial moves in the legacy engine); the wheel keeps the
//   far future parked in calendar buckets and pays O(1) per event. This
//   is where the >= 5x engine target is measured and enforced.
//
//   cluster-cell: one representative cluster_load sweep cell through the
//   real calibrate -> simulate path, timed. At bench-sized cells only a
//   few hundred events are pending, so this tracks the allocation-free
//   hot path rather than heap asymptotics — wall-clock absolute only.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/common.h"
#include "bench/harness.h"
#include "bench/legacy_queue.h"
#include "core/confbench.h"
#include "sched/cluster.h"
#include "sched/event_queue.h"
#include "sched/reference_queue.h"
#include "sim/clock.h"
#include "sim/time.h"

using namespace confbench;

namespace {

/// splitmix64 — the deterministic stream both engines replay.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kMixPending = 1'000'000;  ///< realistic-mix pending
constexpr std::uint64_t kLanes = 65'536;          ///< cancellable-handle ring

/// The identical workload, templated over the engine under test. Closures
/// capture 24 bytes (this + lane + token) — inline in sched::Action's
/// 64-byte buffer, a heap node in std::function — matching the shape of
/// the cluster/shard handlers the engines actually run.
template <typename Q>
struct Churn {
  Q& q;
  const std::uint64_t target;  ///< total events to schedule
  std::uint64_t scheduled = 0;
  std::uint64_t cancels = 0;
  std::uint64_t reschedules = 0;
  std::uint64_t checksum = 0;
  std::vector<sched::EventId> ring;  ///< most recent handle per lane

  Churn(Q& queue, std::uint64_t total) : q(queue), target(total) {
    ring.resize(kLanes);
    for (std::uint64_t i = 0; i < kMixPending && scheduled < target; ++i)
      schedule_one(i % kLanes);
  }

  /// 1 µs .. ~33 ms, spanning the ready window, L0, and L1.
  static sim::Ns delay(std::uint64_t r) {
    return 1000.0 + static_cast<double>(r % (33ULL << 20));
  }

  void schedule_one(std::uint64_t lane) {
    const std::uint64_t token = mix(++scheduled);
    ring[lane] = q.after(delay(token),
                         [this, lane, token] { fire(lane, token); });
  }

  void fire(std::uint64_t lane, std::uint64_t token) {
    checksum =
        mix(checksum ^ token ^ static_cast<std::uint64_t>(q.now()));
    if (scheduled >= target) return;  // drain the tail
    const std::uint64_t r = mix(scheduled ^ token);
    if ((r & 7) == 0) {
      // Hedge-loser pattern: cancel a pseudo-random pending event and
      // backfill so the population stays level. Stale handles (victim
      // already fired) fail identically in both engines.
      const std::uint64_t victim = (r >> 8) % kLanes;
      if (q.cancel(ring[victim])) {
        ++cancels;
        schedule_one(victim);
      }
    } else if ((r & 15) == 1) {
      const std::uint64_t victim = (r >> 8) % kLanes;
      const sched::EventId moved =
          q.reschedule(ring[victim], q.now() + delay(r >> 16));
      if (moved.valid()) {
        ++reschedules;
        ring[victim] = moved;
      }
    }
    schedule_one(lane);
  }
};

struct EngineRun {
  double secs = 0;
  std::uint64_t processed = 0;
  std::uint64_t cancels = 0;
  std::uint64_t reschedules = 0;
  std::uint64_t checksum = 0;
  [[nodiscard]] double events_per_sec() const {
    return secs > 0 ? static_cast<double>(processed) / secs : 0.0;
  }
};

template <typename Q>
EngineRun run_mix(std::uint64_t total) {
  const auto t0 = std::chrono::steady_clock::now();
  sim::VirtualClock clock;
  Q q(clock);
  Churn<Q> churn(q, total);
  q.run();
  EngineRun r;
  r.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
               .count();
  r.processed = q.processed();
  r.cancels = churn.cancels;
  r.reschedules = churn.reschedules;
  r.checksum = churn.checksum;
  return r;
}

/// Steady-state successor chain with a deliberately minimal driver (one
/// xorshift and one schedule per fire), so the measurement is the engine,
/// not the workload around it. Population `pending` is seeded untimed;
/// the timed region churns `total - pending` further events through it
/// and drains.
template <typename Q>
EngineRun run_scale(std::uint64_t pending, std::uint64_t total,
                    double span_ns) {
  sim::VirtualClock clock;
  Q q(clock);
  std::uint64_t rng = 88172645463325252ULL;
  const auto rnd = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::uint64_t left = total;
  struct Chain {
    Q* q;
    std::uint64_t* left;
    std::uint64_t* rng;
    double span;
    void operator()() const {
      if (*left == 0) return;
      --*left;
      std::uint64_t x = *rng;
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      *rng = x;
      q->after(1000.0 + static_cast<double>(
                            x % static_cast<std::uint64_t>(span)),
               *this);
    }
  };
  const Chain chain{&q, &left, &rng, span_ns};
  for (std::uint64_t i = 0; i < pending && left > 0; ++i) {
    --left;
    q.after(1000.0 + static_cast<double>(
                         rnd() % static_cast<std::uint64_t>(span_ns)),
            chain);
  }
  const auto t0 = std::chrono::steady_clock::now();
  q.run();
  EngineRun r;
  r.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
               .count();
  r.processed = q.processed();
  r.checksum = static_cast<std::uint64_t>(q.now());
  return r;
}

std::uint64_t env_u64(const char* var, std::uint64_t dflt) {
  if (const char* env = std::getenv(var)) {
    const long long n = std::atoll(env);
    if (n > 0) return static_cast<std::uint64_t>(n);
  }
  return dflt;
}

/// Runs one engine measurement in a forked child so every engine starts
/// from a pristine allocator and page table. Measuring the engines back
/// to back in one process contaminates the comparison: whichever engine
/// runs later inherits the earlier engine's warmed malloc arenas and
/// huge-page mappings and measures tens of percent off its cold-start
/// cost. EngineRun is trivially copyable and crosses back over a pipe.
template <typename Fn>
EngineRun isolated(Fn&& fn) {
  int fds[2];
  if (pipe(fds) != 0) return fn();  // no pipe: measure inline
  const pid_t pid = fork();
  if (pid < 0) {  // no fork: measure inline
    close(fds[0]);
    close(fds[1]);
    return fn();
  }
  if (pid == 0) {
    close(fds[0]);
    const EngineRun r = fn();
    ssize_t n = write(fds[1], &r, sizeof(r));
    _exit(n == sizeof(r) ? 0 : 1);
  }
  close(fds[1]);
  EngineRun r{};
  const ssize_t n = read(fds[0], &r, sizeof(r));
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (n != sizeof(r)) r = EngineRun{};  // child died: zeroed run fails checks
  return r;
}

}  // namespace

int main() {
  bench::Harness h("sim_engine");
  const std::uint64_t mix_events =
      env_u64("CONFBENCH_ENGINE_EVENTS", 2'000'000);
  const std::uint64_t scale_pending =
      env_u64("CONFBENCH_ENGINE_PENDING", 4'000'000);
  h.metric("mix_events", mix_events);
  h.metric("scale_pending", scale_pending);

  double mix_speedup = 0.0, scale_speedup = 0.0;

  h.scenario("realistic-mix", [&] {
    std::printf("Realistic mix: %llu events, ~%llu pending, "
                "cancel/reschedule churn\n",
                static_cast<unsigned long long>(mix_events),
                static_cast<unsigned long long>(kMixPending));
    const EngineRun wheel =
        isolated([&] { return run_mix<sched::EventQueue>(mix_events); });
    const EngineRun ref = isolated(
        [&] { return run_mix<sched::ReferenceEventQueue>(mix_events); });
    h.check(wheel.checksum == ref.checksum,
            "wheel executes the randomized schedule in reference order");
    h.check(wheel.processed == ref.processed,
            "wheel and reference fire the same event count");
    h.check(wheel.cancels == ref.cancels &&
                wheel.reschedules == ref.reschedules,
            "wheel and reference agree on cancel/reschedule outcomes");
    mix_speedup = wheel.secs > 0 ? ref.secs / wheel.secs : 0.0;
    std::printf("  wheel:     %8.3fs  %10.0f events/s  (%llu cancelled, "
                "%llu rescheduled)\n",
                wheel.secs, wheel.events_per_sec(),
                static_cast<unsigned long long>(wheel.cancels),
                static_cast<unsigned long long>(wheel.reschedules));
    std::printf("  reference: %8.3fs  %10.0f events/s\n", ref.secs,
                ref.events_per_sec());
    std::printf("  speedup:   %8.2fx  (checksum %016llx == %016llx)\n",
                mix_speedup,
                static_cast<unsigned long long>(wheel.checksum),
                static_cast<unsigned long long>(ref.checksum));
    h.metric("mix_speedup_vs_reference", mix_speedup);
    h.metric("mix_wheel_events_per_sec", wheel.events_per_sec());
    h.metric("mix_reference_events_per_sec", ref.events_per_sec());
  });

  h.scenario("pending-scale", [&] {
    const std::uint64_t total = 2 * scale_pending;
    const double span = 16.0 * sim::kSec;
    std::printf("\nPending scale: %llu pending over %.0fs horizon, "
                "%llu events\n",
                static_cast<unsigned long long>(scale_pending),
                span / sim::kSec, static_cast<unsigned long long>(total));
    const EngineRun wheel = isolated([&] {
      return run_scale<sched::EventQueue>(scale_pending, total, span);
    });
    const EngineRun legacy = isolated([&] {
      return run_scale<bench::LegacyEventQueue>(scale_pending, total, span);
    });
    const EngineRun ref = isolated([&] {
      return run_scale<sched::ReferenceEventQueue>(scale_pending, total,
                                                   span);
    });
    h.check(wheel.processed == legacy.processed &&
                wheel.processed == ref.processed,
            "scale run fires the same event count on every engine");
    h.check(wheel.checksum == legacy.checksum &&
                wheel.checksum == ref.checksum,
            "scale run ends at the same virtual time on every engine");
    scale_speedup = wheel.secs > 0 ? legacy.secs / wheel.secs : 0.0;
    const double vs_ref = wheel.secs > 0 ? ref.secs / wheel.secs : 0.0;
    h.check(scale_speedup >= 5.0,
            "engine at least 5x the shipped PR-6 engine at scale");
    std::printf("  wheel:     %8.3fs  %10.0f events/s\n", wheel.secs,
                wheel.events_per_sec());
    std::printf("  legacy:    %8.3fs  %10.0f events/s  (engine as shipped "
                "through PR 6)\n",
                legacy.secs, legacy.events_per_sec());
    std::printf("  reference: %8.3fs  %10.0f events/s  (idealized "
                "indirect heap)\n",
                ref.secs, ref.events_per_sec());
    std::printf("  speedup:   %8.2fx vs legacy, %.2fx vs reference\n",
                scale_speedup, vs_ref);
    h.metric("scale_speedup_vs_legacy", scale_speedup);
    h.metric("scale_speedup_vs_reference", vs_ref);
    h.metric("scale_wheel_events_per_sec", wheel.events_per_sec());
    h.metric("scale_legacy_events_per_sec", legacy.events_per_sec());
    h.metric("scale_reference_events_per_sec", ref.events_per_sec());
  });

  h.scenario("cluster-cell", [&] {
    auto system = core::ConfBench::standard();
    sched::ClusterConfig cfg;
    cfg.function = "iostress";
    cfg.language = "go";
    cfg.platform = "tdx";
    cfg.secure = true;
    cfg.requests = 16000;
    cfg.warmup_requests = 2000;
    cfg.queue = {.concurrency = 8, .queue_depth = 32};
    cfg.scaler = {.min_warm = 8, .max_replicas = 8, .tick_ns = 20 * sim::kMs};
    cfg.seed = 7;
    sched::ClusterExperiment exp(cfg);
    const sched::ClusterExperiment::Trial trial = exp.prepare(*system);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<sched::ClusterResult> results =
        sched::ClusterExperiment::run_trials({trial});
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    h.check(results[0].accounted(), "cluster cell accounted");
    std::printf("\nCluster cell (tdx/iostress/secure, 16k requests): "
                "%.3fs simulate\n",
                secs);
    h.metric("cluster_cell_simulate_s", secs);
  });

  h.run_scenarios();
  std::printf("\nengine speedup: %.2fx vs idealized reference (realistic "
              "mix), %.2fx vs shipped engine at %lluM pending "
              "(target >= 5x)\n",
              mix_speedup, scale_speedup,
              static_cast<unsigned long long>(scale_pending / 1'000'000));
  return h.finish();
}

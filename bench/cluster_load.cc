// Cluster load sweep — secure-vs-normal overhead at the throughput and
// tail-latency level (the dimension the paper's one-at-a-time evaluation
// cannot see).
//
// For each (platform, workload, secure?) the sweep calibrates a service
// model through the real gateway -> host-agent -> launcher path, then
// drives an open-loop Poisson arrival process at offered loads from 20% to
// 130% of the *normal-mode* fleet capacity through the discrete-event
// cluster simulation (least-loaded TeePool, per-VM bounded queues with
// 429 admission control, warm-pool autoscaler with TEE-specific cold
// starts). Expected shape:
//   - throughput saturates (knees) at the autoscaler's max-fleet capacity;
//   - on TDX the I/O-heavy workload's secure p99 overhead *grows with
//     load* (bounce-buffer serialization queues under concurrency) while
//     the CPU-bound workload stays near-flat;
//   - identical seeds reproduce the CSV byte for byte.
//
// Execution is two-phase: calibration resolves every sweep cell into a
// ClusterExperiment::Trial sequentially (the real invocation path is
// stateful), then run_trials() simulates the independent cells — in
// parallel when CONFBENCH_THREADS allows — and rows are emitted in fixed
// cell order, so the CSV is byte-identical at any thread count.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/harness.h"
#include "core/confbench.h"
#include "metrics/csv.h"
#include "metrics/table.h"
#include "sched/cluster.h"

using namespace confbench;

namespace {

struct CellKey {
  std::string platform, workload;
  bool secure;
  bool operator<(const CellKey& o) const {
    return std::tie(platform, workload, secure) <
           std::tie(o.platform, o.workload, o.secure);
  }
};

}  // namespace

int main() {
  bench::Harness h("cluster_load");
  // Requests per sweep cell; 64 cells x 16k = 1.02M requests by default.
  const std::uint64_t reqs = h.requests("CONFBENCH_CLUSTER_REQUESTS", 16000);
  const std::vector<std::string> platforms = {"tdx", "sev-snp"};
  const std::vector<std::string> workloads = {"cpustress", "iostress"};
  // Fractions of the *normal-mode* fleet capacity: the secure fleet knees
  // well below 1.0 (longer service times + bounce slots), the normal one
  // at 1.0; past that both are brick-walled by the bounded queues and the
  // p99 ratio trivially collapses to the service-time ratio.
  const std::vector<double> loads = {0.1, 0.15, 0.2, 0.25,
                                     0.3, 0.4, 0.6, 0.8};

  std::printf(
      "Cluster load sweep — open-loop Poisson, %llu requests/cell, "
      "%zu cells\n\n",
      static_cast<unsigned long long>(reqs),
      platforms.size() * workloads.size() * 2 * loads.size());

  auto system = core::ConfBench::standard();

  // Calibrate each (platform, workload, mode) once through the real
  // invocation path; the sweep then reuses the model across loads.
  std::map<CellKey, sched::ServiceModel> models;
  for (const auto& platform : platforms)
    for (const auto& workload : workloads)
      for (const bool secure : {false, true})
        models[{platform, workload, secure}] = sched::ServiceModel::calibrate(
            *system, workload, "go", platform, secure, 4);

  metrics::CsvWriter csv(
      {"platform", "workload", "secure", "load", "rate_rps", "offered",
       "completed", "rejected", "throughput_rps", "p50_ms", "p95_ms",
       "p99_ms", "p999_ms", "mean_wait_ms", "peak_warm"});

  // p99 per cell for the overhead summary: [platform][workload][load] -> ms.
  std::map<std::string, std::map<std::string, std::map<double, double>>>
      p99_secure, p99_normal;

  // Normal-mode fleet capacity per (platform, workload): the operator
  // provisions for plaintext service rates and we measure what
  // confidentiality does to the same traffic.
  std::map<std::string, double> normal_caps;

  std::vector<sched::ClusterExperiment::Trial> cells;
  h.scenario("latency-sweep", [&] {
    for (const auto& platform : platforms) {
      for (const auto& workload : workloads) {
        sched::ClusterConfig base;
        base.function = workload;
        base.language = "go";
        base.platform = platform;
        base.requests = reqs;
        base.warmup_requests = reqs / 8;  // tail stats exclude residual ramp
        base.queue = {.concurrency = 8, .queue_depth = 32};
        // The latency sweep measures a pre-provisioned fleet (min_warm ==
        // max_replicas) so every cell is steady state; the cold-start ramp
        // scenario exercises the autoscaler separately.
        base.scaler = {.min_warm = 8, .max_replicas = 8,
                       .tick_ns = 20 * sim::kMs};
        const double normal_cap =
            sched::ClusterExperiment(base).fleet_capacity_rps(
                models[{platform, workload, false}]);
        normal_caps[platform + "/" + workload] = normal_cap;
        for (const bool secure : {false, true}) {
          for (const double load : loads) {
            sched::ClusterConfig cfg = base;
            cfg.secure = secure;
            cfg.rate_rps = load * normal_cap;
            cfg.seed = sim::hash_combine(
                sim::stable_hash(platform + "/" + workload),
                sim::hash_combine(secure, static_cast<std::uint64_t>(
                                              load * 1000)));
            cells.push_back({cfg, models[{platform, workload, secure}]});
          }
        }
      }
    }
    const std::vector<sched::ClusterResult> results =
        sched::ClusterExperiment::run_trials(cells);
    // Emit rows in cell order — identical bytes at any thread count.
    std::size_t cell = 0;
    for (const auto& platform : platforms) {
      for (const auto& workload : workloads) {
        for (const bool secure : {false, true}) {
          for (const double load : loads) {
            const sched::ClusterResult& r = results[cell];
            const sched::ClusterConfig& cfg = cells[cell].cfg;
            ++cell;
            h.check(r.accounted(),
                    platform + "/" + workload + " accounted at load " +
                        metrics::Table::num(load, 2));
            const double p99_ms = r.latency.p99() / 1e6;
            (secure ? p99_secure : p99_normal)[platform][workload][load] =
                p99_ms;
            csv.add_row({platform, workload, secure ? "1" : "0",
                         metrics::Table::num(load, 2),
                         metrics::Table::num(cfg.rate_rps, 1),
                         std::to_string(r.offered),
                         std::to_string(r.completed),
                         std::to_string(r.rejected),
                         metrics::Table::num(r.throughput_rps(), 1),
                         metrics::Table::num(r.latency.p50() / 1e6, 4),
                         metrics::Table::num(r.latency.p95() / 1e6, 4),
                         metrics::Table::num(p99_ms, 4),
                         metrics::Table::num(r.latency.p999() / 1e6, 4),
                         metrics::Table::num(r.queue_wait.mean() / 1e6, 4),
                         std::to_string(r.peak_warm)});
          }
        }
        std::printf("calibrated %s/%s: normal %.3f ms, secure %.3f ms "
                    "(serialized %.3f ms), fleet capacity %.0f rps\n",
                    platform.c_str(), workload.c_str(),
                    models[{platform, workload, false}].total_ns() / 1e6,
                    models[{platform, workload, true}].total_ns() / 1e6,
                    models[{platform, workload, true}].serialized_ns / 1e6,
                    normal_caps[platform + "/" + workload]);
      }
    }
  });

  // Cold-start ramp: a step of traffic hits a minimally-warm fleet and the
  // autoscaler must grow it, paying each platform's measured boot cost
  // (eager page acceptance makes confidential VMs slower to add). Rejected
  // requests and the transient-inclusive p99 quantify the scramble.
  h.scenario("cold-start-ramp", [&] {
    std::printf(
        "\nCold-start ramp (step to 0.5x normal capacity, min_warm=2)\n");
    std::printf("%-9s %-7s %10s %10s %10s %9s\n", "platform", "mode",
                "rejected%", "p99_ms", "peak_warm", "boot_s");
    std::vector<sched::ClusterExperiment::Trial> ramp;
    for (const auto& platform : platforms) {
      sched::ClusterConfig cfg;
      cfg.function = "iostress";
      cfg.platform = platform;
      cfg.requests = reqs;
      cfg.queue = {.concurrency = 8, .queue_depth = 32};
      cfg.scaler = {.min_warm = 2, .max_replicas = 8,
                    .tick_ns = 20 * sim::kMs};
      const double cap = sched::ClusterExperiment(cfg).fleet_capacity_rps(
          models[{platform, "iostress", false}]);
      for (const bool secure : {false, true}) {
        cfg.secure = secure;
        cfg.rate_rps = 0.5 * cap;
        cfg.seed = sim::hash_combine(sim::stable_hash("ramp/" + platform),
                                     secure);
        ramp.push_back({cfg, models[{platform, "iostress", secure}]});
      }
    }
    const std::vector<sched::ClusterResult> results =
        sched::ClusterExperiment::run_trials(ramp);
    std::size_t cell = 0;
    for (const auto& platform : platforms) {
      for (const bool secure : {false, true}) {
        const sched::ClusterResult& r = results[cell];
        const sched::ClusterConfig& cfg = ramp[cell].cfg;
        const sched::ServiceModel& model = ramp[cell].model;
        ++cell;
        h.check(r.accounted(), "ramp/" + platform + " accounted");
        std::printf("%-9s %-7s %9.2f%% %10.2f %10d %9.2f\n",
                    platform.c_str(), secure ? "secure" : "normal",
                    100.0 * r.reject_rate(), r.latency.p99() / 1e6,
                    r.peak_warm, model.cold_start_ns / 1e9);
        csv.add_row({platform, "iostress", secure ? "1" : "0", "ramp",
                     metrics::Table::num(cfg.rate_rps, 1),
                     std::to_string(r.offered), std::to_string(r.completed),
                     std::to_string(r.rejected),
                     metrics::Table::num(r.throughput_rps(), 1),
                     metrics::Table::num(r.latency.p50() / 1e6, 4),
                     metrics::Table::num(r.latency.p95() / 1e6, 4),
                     metrics::Table::num(r.latency.p99() / 1e6, 4),
                     metrics::Table::num(r.latency.p999() / 1e6, 4),
                     metrics::Table::num(r.queue_wait.mean() / 1e6, 4),
                     std::to_string(r.peak_warm)});
      }
    }
  });

  h.run_scenarios();

  // Secure/normal p99 overhead vs offered load.
  std::printf("\nSecure/normal p99 overhead vs offered load\n");
  std::printf("%-9s %-10s", "platform", "workload");
  for (const double load : loads) std::printf(" %6.2f", load);
  std::printf("\n");
  for (const auto& platform : platforms) {
    for (const auto& workload : workloads) {
      std::printf("%-9s %-10s", platform.c_str(), workload.c_str());
      for (const double load : loads) {
        const double n = p99_normal[platform][workload][load];
        const double s = p99_secure[platform][workload][load];
        std::printf(" %6.2f", n > 0 ? s / n : 0.0);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nexpected: tdx/iostress overhead grows with load (bounce-buffer "
      "queueing);\ncpustress stays near-flat; throughput knees at the "
      "autoscaler max fleet\n");

  h.write_csv(csv, "cluster_load.csv");
  return h.finish();
}

// Ablation A7 — MiniWasm (the Wasmi-engine substrate) inside confidential
// VMs, on the wasmi-benchmarks-style programs (§IV-B, [36]).
//
// Unlike the profile-driven grid of Figs. 6-7, these runs execute real
// bytecode through the interpreter, with dispatch work and linear-memory
// traffic charged to the simulated VM. The expected shape matches the
// grid's wasm column: near-native on TDX/SEV-SNP, high on CCA.
#include <cstdio>

#include "bench/common.h"
#include "metrics/table.h"
#include "tee/registry.h"
#include "wasm/builder.h"
#include "wasm/interp.h"

using namespace confbench;

namespace {

struct Program {
  const char* label;
  wasm::Module module;
  const char* entry;
  std::vector<wasm::Value> args;
  std::int64_t expect;
};

double run_ms(const Program& p, const char* platform, bool secure,
              int trials) {
  double sum = 0;
  for (int t = 0; t < trials; ++t) {
    vm::ExecutionContext ctx(
        tee::Registry::instance().create(platform), secure,
        sim::hash_combine(sim::stable_hash(p.label),
                          static_cast<std::uint64_t>(t)));
    wasm::Interpreter interp(p.module);
    const auto r = interp.invoke(p.entry, p.args, &ctx);
    if (!r.ok || r.i64() != p.expect) {
      std::fprintf(stderr, "%s: wrong result %lld (trap: %s)\n", p.label,
                   static_cast<long long>(r.i64()),
                   std::string(to_string(r.trap)).c_str());
      std::exit(1);
    }
    sum += ctx.finish().wall_ns;
  }
  return sum / trials / 1e6;
}

}  // namespace

int main() {
  const int n = bench::trials();
  std::printf(
      "Ablation — MiniWasm interpreter in confidential VMs (%d trials)\n"
      "secure/normal wall-time ratio per program\n\n",
      n);

  using wasm::Value;
  std::vector<Program> programs;
  programs.push_back({"fib(24)", wasm::programs::fib_recursive(), "fib",
                      {Value::make_i64(24)}, 46368});
  programs.push_back({"sum(2'000'000)", wasm::programs::sum_loop(), "sum",
                      {Value::make_i64(2000000)},
                      2000000LL * 1999999 / 2});
  programs.push_back({"sieve(10'000)", wasm::programs::sieve(), "sieve",
                      {Value::make_i64(10000)}, 1229});
  programs.push_back({"memfill(8'000)", wasm::programs::memfill(), "memfill",
                      {Value::make_i64(8000)}, 7LL * 8000 * 7999 / 2});

  metrics::Table table({"program", "tdx", "sev-snp", "cca", "instrs"});
  for (const auto& p : programs) {
    std::vector<std::string> row{p.label};
    for (const char* platform : {"tdx", "sev-snp", "cca"}) {
      const double sec = run_ms(p, platform, true, n);
      const double nrm = run_ms(p, platform, false, n);
      row.push_back(metrics::Table::num(sec / nrm));
    }
    wasm::Interpreter interp(p.module);
    const auto r = interp.invoke(p.entry, p.args);
    row.push_back(std::to_string(r.instructions));
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "real bytecode execution reproduces the wasm column of Figs. 6-7: "
      "near-native on the bare-metal TEEs\n");
  return 0;
}

// Fig. 4 — UnixBench: per-test index ratios, secure vs normal VM.
//
// Single-threaded configuration; each test's score is normalised against
// the SPARCstation 20-61 baseline as in UnixBench, and we compare the
// per-test *execution* ratio between secure and normal VMs plus the
// aggregate index. Expected shape (§IV-C): overheads larger than in the
// ML/DBMS workloads (syscall/VM-exit dominated); TDX introduces the least
// overhead, SEV-SNP analogous, CCA by far the most.
#include <cstdio>
#include <map>

#include "bench/common.h"
#include "metrics/csv.h"
#include "metrics/table.h"
#include "vm/vfs.h"
#include "wl/ub/unixbench.h"

using namespace confbench;

namespace {

std::vector<wl::ub::UbResult> run_suite(vm::GuestVm& vm) {
  std::vector<wl::ub::UbResult> results;
  vm.run([&](vm::ExecutionContext& ctx) -> std::string {
    vm::Vfs fs(ctx);
    results = wl::ub::run_unixbench(ctx, fs);
    return "ok";
  });
  return results;
}

}  // namespace

int main() {
  std::printf(
      "Fig. 4 — UnixBench (single-threaded): secure/normal slowdown per "
      "test\n(ratio of index scores, normal/secure, >1 means the secure VM "
      "is slower)\n\n");

  const std::vector<std::string> platforms = {"tdx", "sev-snp", "cca"};
  std::map<std::string, std::vector<wl::ub::UbResult>> secure_by, normal_by;
  for (const auto& p : platforms) {
    bench::VmPair pair = bench::make_vm_pair(p);
    secure_by[p] = run_suite(*pair.secure);
    normal_by[p] = run_suite(*pair.normal);
  }

  metrics::Table table({"test", "tdx", "sev-snp", "cca"});
  metrics::CsvWriter csv({"test", "platform", "secure_index", "normal_index",
                          "slowdown"});
  const std::size_t n = secure_by["tdx"].size();
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::string> row{secure_by["tdx"][i].name};
    for (const auto& p : platforms) {
      // Index is "bigger is better": slowdown = normal_index / secure_index.
      const double slowdown =
          normal_by[p][i].index() / secure_by[p][i].index();
      row.push_back(metrics::Table::num(slowdown));
      csv.add_row({secure_by[p][i].name, p,
                   metrics::Table::num(secure_by[p][i].index(), 1),
                   metrics::Table::num(normal_by[p][i].index(), 1),
                   metrics::Table::num(slowdown, 3)});
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("aggregate UnixBench index (geometric mean):\n");
  for (const auto& p : platforms) {
    const double si = wl::ub::aggregate_index(secure_by[p]);
    const double ni = wl::ub::aggregate_index(normal_by[p]);
    std::printf("  %-8s secure %8.1f   normal %8.1f   slowdown %.2fx\n",
                p.c_str(), si, ni, ni / si);
  }
  std::printf(
      "\npaper: UnixBench overheads larger than ML/DBMS; TDX least, SEV-SNP "
      "similar, CCA most\n");
  csv.write_file("fig4_unixbench.csv");
  std::printf("raw data -> fig4_unixbench.csv\n");
  return 0;
}

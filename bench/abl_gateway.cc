// Ablation A3 — gateway machinery: TEE-pool load balancing and per-request
// HTTP cost.
//
// §III-A: the gateway load-balances across TEE pools; operators tune the
// policy. This bench runs a burst of requests against a 3-host TDX pool
// under each policy and reports the per-host distribution, plus the
// gateway-side network/HTTP cost per request (which the paper's in-guest
// timings deliberately exclude).
#include <cstdio>

#include "core/confbench.h"
#include "metrics/table.h"

using namespace confbench;

namespace {

core::GatewayConfig three_host_config(core::LoadBalancePolicy policy) {
  core::GatewayConfig cfg;
  cfg.policy = policy;
  cfg.endpoints = {
      {"tdx", "host-tdx-a", 8100, 8200},
      {"tdx", "host-tdx-b", 8100, 8200},
      {"tdx", "host-tdx-c", 8100, 8200},
  };
  return cfg;
}

}  // namespace

int main() {
  constexpr int kRequests = 300;
  std::printf(
      "Ablation — gateway: load-balancing policies over a 3-host TDX pool "
      "(%d requests)\n\n",
      kRequests);

  metrics::Table table({"policy", "host-a", "host-b", "host-c", "spread",
                        "gw us/req"});
  for (const auto policy : {core::LoadBalancePolicy::kRoundRobin,
                            core::LoadBalancePolicy::kLeastLoaded,
                            core::LoadBalancePolicy::kRandom}) {
    core::ConfBench system(three_host_config(policy));
    auto& gw = system.gateway();
    for (int i = 0; i < kRequests; ++i) {
      const auto rec = gw.invoke({.function = "fib",
                                  .language = "lua",
                                  .platform = "tdx",
                                  .secure = i % 2 == 0,
                                  .trial = static_cast<std::uint64_t>(i)});
      if (!rec.ok()) {
        std::fprintf(stderr, "request failed: %s\n", rec.error.c_str());
        return 1;
      }
    }
    const auto& members = gw.pool("tdx")->members();
    std::uint64_t lo = ~0ULL, hi = 0;
    std::vector<std::string> row{std::string(to_string(policy))};
    for (const auto& m : members) {
      row.push_back(std::to_string(m.served));
      lo = std::min(lo, m.served);
      hi = std::max(hi, m.served);
    }
    row.push_back(std::to_string(hi - lo));
    const double us_per_req =
        system.network().elapsed() / 1e3 /
        static_cast<double>(system.network().requests_sent());
    row.push_back(metrics::Table::num(us_per_req, 1));
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "round-robin/least-loaded spread evenly; random is close under "
      "deterministic seeding.\nGateway HTTP+network cost per request stays "
      "in the sub-millisecond range and is excluded from in-guest timings, "
      "as in the paper.\n");
  return 0;
}

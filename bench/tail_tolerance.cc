// Tail tolerance under gray failures — hedged requests, asymmetric
// partitions, and live-migration drain vs crash-reboot (robustness face of
// the CVM trade-off; composes PR 3's fail-stop chaos with failures that
// binary health probes cannot see).
//
// For each (platform, mode) the bench calibrates an iostress service model
// through the real gateway -> host-agent -> launcher path, then runs five
// deterministic scenarios against a pre-provisioned fleet:
//   slowlink        a gray slow link in front of one replica: every response
//                   it sends arrives 200 ms late, but the replica serves
//                   work and passes health probes. The fleet p99 absorbs
//                   the full delay.
//   slowlink_hedge  the same fault with hedged requests enabled: a request
//                   still waiting at the learned latency quantile gets a
//                   backup dispatch on another replica; first response wins.
//                   Hedges spend retry-budget attempts and are capped at a
//                   fraction of offered load, so they cannot amplify.
//   asympart        an asymmetric partition: requests reach the replica,
//                   responses never leave it (responses_lost). Hedging is
//                   on; the backup usually answers long before the primary's
//                   detection timeout charges the breaker.
//   gray_reboot     outlier detection on (per-replica latency EWMA vs fleet
//                   median); a gray-tripped replica is killed and pays the
//                   full crash recovery (boot + re-attest for secure).
//   gray_migrate    the same detection, answered with a planned drain +
//                   live migration (fault::measure_migration): pre-copy
//                   overlaps the drain, then a short blackout — plus, for
//                   secure fleets, private-memory re-acceptance and a
//                   re-attestation round on the target.
// Expected shape:
//   - hedging cuts the during-fault p99 by roughly the injected link delay
//     while firing hedges on only a few percent of requests;
//   - the learned hedge threshold is higher for secure fleets than normal
//     ones (slower service under the same quantile rule), so the same
//     policy self-calibrates per fleet;
//   - migrate beats reboot decisively for normal VMs; TEE re-acceptance +
//     re-attestation narrow — or invert — the gap for secure fleets;
//   - every offered request is accounted for, including cancelled hedge
//     losers (completed + rejected + failed == offered; hedges are copies,
//     not requests);
//   - identical seeds reproduce the CSV byte for byte, at any
//     CONFBENCH_THREADS value (cells simulate in parallel, rows are
//     emitted in fixed cell order).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/harness.h"
#include "core/confbench.h"
#include "fault/fault.h"
#include "fault/migrate.h"
#include "fault/recovery.h"
#include "metrics/csv.h"
#include "metrics/table.h"
#include "sched/cluster.h"

using namespace confbench;

namespace {

struct Key {
  std::string platform;
  bool secure;
  bool operator<(const Key& o) const {
    return std::tie(platform, secure) < std::tie(o.platform, o.secure);
  }
};

constexpr sim::Ns kMinLinkDelay = 200 * sim::kMs;

}  // namespace

int main() {
  bench::Harness h("tail_tolerance");
  const std::uint64_t reqs = h.requests("CONFBENCH_TAIL_REQUESTS", 20000);
  const std::vector<std::string> platforms = {"tdx", "sev-snp", "cca"};

  std::printf("Tail tolerance under gray failures — iostress, %llu "
              "requests/cell\n\n",
              static_cast<unsigned long long>(reqs));

  auto system = core::ConfBench::standard();

  std::map<Key, sched::ServiceModel> models;
  std::map<Key, fault::RecoveryCosts> recovery;
  std::map<Key, fault::MigrationCosts> migration;
  for (const auto& platform : platforms) {
    for (const bool secure : {false, true}) {
      models[{platform, secure}] = sched::ServiceModel::calibrate(
          *system, "iostress", "go", platform, secure, 4);
      recovery[{platform, secure}] = fault::measure_recovery(platform, secure);
      migration[{platform, secure}] =
          fault::measure_migration(platform, secure);
    }
  }

  metrics::CsvWriter csv(
      {"scenario", "platform", "secure", "offered", "completed", "rejected",
       "failed", "retries", "failovers", "hedges", "hedge_wins",
       "hedge_waste", "hedge_cancelled", "hedge_threshold_ms", "gray_trips",
       "responses_lost", "migrations", "availability", "p50_ms", "p99_ms",
       "p99_fault_ms", "ttr_ms", "blackout_ms", "throughput_rps"});

  // [scenario][platform][secure] -> cell, for the printed summaries.
  std::map<std::string, std::map<std::string, std::map<bool, double>>> p99f_ms;
  std::map<std::string, std::map<std::string, std::map<bool, double>>> ttr_ms;
  std::map<std::string, std::map<bool, double>> thresh_ms;
  std::map<std::string, std::map<bool, std::uint64_t>> hedges_fired;

  const auto make_cell = [&](const std::string& scenario,
                             const std::string& platform, bool secure) {
    const sched::ServiceModel& model = models[{platform, secure}];

    sched::ClusterConfig cfg;
    cfg.function = "iostress";
    cfg.language = "go";
    cfg.platform = platform;
    cfg.secure = secure;
    cfg.requests = reqs;
    cfg.queue = {.concurrency = 8, .queue_depth = 32};
    // Pre-provisioned fleet: isolate tail tolerance from autoscaling
    // (cluster_load covers the scaling transient separately). Twelve
    // replicas put one slow replica at ~8% of traffic — the regime
    // quantile-armed hedging is designed for (see below).
    cfg.scaler = {.min_warm = 12, .max_replicas = 12,
                  .tick_ns = 20 * sim::kMs};
    cfg.rate_rps = 0.5 * sched::ClusterExperiment(cfg).fleet_capacity_rps(
                             model);
    cfg.seed = sim::hash_combine(
        sim::stable_hash("tail/" + scenario + "/" + platform), secure);
    cfg.recovery = recovery[{platform, secure}];
    cfg.retry.max_attempts = 4;
    cfg.retry.budget_ns = 120 * sim::kSec;
    cfg.warmup_requests = reqs / 20;  // exclude the fleet's settling-in

    // Per-cell fault timing: cells differ by orders of magnitude in
    // service time (CCA's simulated premium), so the window covers the
    // same *fraction* of every run — [10%, 70%] of the expected
    // duration — and the injected delay is far enough past the cell's
    // own latency scale to be a gray failure everywhere (well above the
    // outlier ratio, well above the learned hedge threshold).
    const sim::Ns expect_ns =
        static_cast<double>(reqs) / cfg.rate_rps * sim::kSec;
    const sim::Ns fault_at = 0.1 * expect_ns;
    const sim::Ns fault_for = 0.6 * expect_ns;
    const sim::Ns delay =
        std::max<sim::Ns>(kMinLinkDelay, 6.0 * model.total_ns());
    // The slow link touches ~1/12 of traffic. The hedge quantile must
    // leave more tail mass than the affected fraction (1 - q > 1/12),
    // or the learned threshold ratchets up to the injected delay — the
    // threshold is a quantile of latencies hedging itself produces,
    // and once the affected mass crosses the quantile's tail the loop
    // has no good equilibrium. q = 0.9 keeps the threshold pinned to
    // the clean distribution; the budget is sized for the natural
    // above-threshold tail (~10%) plus the affected share.
    cfg.hedge.quantile = 0.9;
    cfg.hedge.budget_fraction = 0.25;

    if (scenario == "slowlink" || scenario == "slowlink_hedge") {
      cfg.faults.slow_link(fault_at, fault_for, 0, delay);
      if (scenario == "slowlink_hedge") cfg.hedge.enabled = true;
    } else if (scenario == "asympart") {
      cfg.faults.link_down(fault_at, fault_for, 0);
      cfg.hedge.enabled = true;
    } else {  // gray_reboot / gray_migrate
      // Hedging off: a winning hedge hides the slow replica's latency
      // from the detector — the two mitigations are run separately so
      // each one's effect is attributable.
      cfg.faults.slow_link(fault_at, fault_for, 0, delay);
      cfg.outlier.enabled = true;
      cfg.degrade_response = scenario == "gray_reboot"
                                 ? sched::DegradeResponse::kReboot
                                 : sched::DegradeResponse::kMigrate;
      cfg.migration = migration[{platform, secure}];
    }
    return sched::ClusterExperiment::Trial{cfg, model};
  };

  const std::vector<std::string> scenarios = {
      "slowlink", "slowlink_hedge", "asympart", "gray_reboot",
      "gray_migrate"};
  for (const auto& scenario : scenarios) {
    h.scenario(scenario, [&, scenario] {
      std::vector<sched::ClusterExperiment::Trial> cells;
      for (const auto& platform : platforms)
        for (const bool secure : {false, true})
          cells.push_back(make_cell(scenario, platform, secure));
      const std::vector<sched::ClusterResult> results =
          sched::ClusterExperiment::run_trials(cells);
      std::size_t cell = 0;
      for (const auto& platform : platforms) {
        for (const bool secure : {false, true}) {
          const sched::ClusterResult& r = results[cell];
          const sched::ClusterConfig& cfg = cells[cell].cfg;
          ++cell;
          h.check(r.accounted(),
                  "zero lost requests in " + scenario + "/" + platform +
                      (secure ? "/secure" : "/normal"));
          const double ttr = scenario == "gray_migrate"
                                 ? r.mean_migration_ttr_ns() / 1e6
                                 : r.mean_ttr_ns() / 1e6;
          p99f_ms[scenario][platform][secure] = r.latency_fault.p99() / 1e6;
          ttr_ms[scenario][platform][secure] = ttr;
          if (scenario == "slowlink_hedge") {
            thresh_ms[platform][secure] = r.hedge_threshold_ns / 1e6;
            hedges_fired[platform][secure] = r.hedges;
          }
          csv.add_row(
              {scenario, platform, secure ? "1" : "0",
               std::to_string(r.offered), std::to_string(r.completed),
               std::to_string(r.rejected), std::to_string(r.failed),
               std::to_string(r.retries), std::to_string(r.failovers),
               std::to_string(r.hedges), std::to_string(r.hedge_wins),
               std::to_string(r.hedge_waste),
               std::to_string(r.hedge_cancelled),
               metrics::Table::num(r.hedge_threshold_ns / 1e6, 3),
               std::to_string(r.gray_trips),
               std::to_string(r.responses_lost),
               std::to_string(r.migrations.size()),
               metrics::Table::num(r.availability(), 6),
               metrics::Table::num(r.latency.p50() / 1e6, 4),
               metrics::Table::num(r.latency.p99() / 1e6, 4),
               metrics::Table::num(r.latency_fault.p99() / 1e6, 4),
               metrics::Table::num(ttr, 2),
               metrics::Table::num(
                   scenario == "gray_migrate"
                       ? cfg.migration.blackout_ns() / 1e6
                       : 0.0,
                   2),
               metrics::Table::num(r.throughput_rps(), 1)});
        }
      }
    });
  }
  h.run_scenarios();

  // (a) Hedging cuts the during-fault p99.
  std::printf("Gray slow link (200 ms), p99 during the fault window\n");
  std::printf("%-9s %7s %14s %14s %10s %12s\n", "platform", "mode",
              "no_hedge_ms", "hedged_ms", "cut_ms", "hedges");
  for (const auto& platform : platforms)
    for (const bool secure : {false, true}) {
      const double base = p99f_ms["slowlink"][platform][secure];
      const double hedged = p99f_ms["slowlink_hedge"][platform][secure];
      std::printf("%-9s %7s %14.2f %14.2f %10.2f %12llu\n", platform.c_str(),
                  secure ? "secure" : "normal", base, hedged, base - hedged,
                  static_cast<unsigned long long>(
                      hedges_fired[platform][secure]));
    }
  std::printf(
      "expected: the cut is roughly the injected delay; hedges stay a few\n"
      "percent of offered load (budget_fraction), inside the retry "
      "budget\n\n");

  // (b) The learned threshold self-calibrates per fleet.
  std::printf("Learned hedge-arm threshold (p90 of observed latency)\n");
  std::printf("%-9s %12s %12s\n", "platform", "normal_ms", "secure_ms");
  for (const auto& platform : platforms)
    std::printf("%-9s %12.3f %12.3f\n", platform.c_str(),
                thresh_ms[platform][false], thresh_ms[platform][true]);
  std::printf(
      "expected: secure > normal on every platform — the same quantile rule\n"
      "arms later on fleets whose service is mechanically slower\n\n");

  // (c) Migrate vs reboot for a gray-tripped replica.
  std::printf(
      "Gray-tripped replica: planned live migration vs crash-reboot (TTR)\n");
  std::printf("%-9s %7s %12s %12s %12s %14s\n", "platform", "mode",
              "reboot_ms", "migrate_ms", "saved_ms", "blackout_ms");
  for (const auto& platform : platforms)
    for (const bool secure : {false, true}) {
      const double reboot = ttr_ms["gray_reboot"][platform][secure];
      const double migrate = ttr_ms["gray_migrate"][platform][secure];
      std::printf("%-9s %7s %12.2f %12.2f %12.2f %14.2f\n", platform.c_str(),
                  secure ? "secure" : "normal", reboot, migrate,
                  reboot - migrate,
                  migration[{platform, secure}].blackout_ns() / 1e6);
    }
  std::printf(
      "expected: migration wins big for normal VMs (no cold boot); secure\n"
      "fleets pay per-page encrypted export + re-acceptance + re-attest in\n"
      "the blackout, narrowing — or inverting — the gap\n\n");

  h.write_csv(csv, "tail_tolerance.csv");
  return h.finish();
}

// Quickstart: deploy ConfBench, upload a function, run it confidential vs
// normal on every TEE, and print the perf metrics the gateway returns.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/confbench.h"
#include "metrics/table.h"

using namespace confbench;

int main() {
  // 1. Deploy the standard topology: a gateway plus one TEE host each for
  //    Intel TDX, AMD SEV-SNP, Arm CCA (FVP) and a plain-KVM baseline. Every
  //    host boots a confidential and a normal VM.
  auto bench = core::ConfBench::standard();
  auto& gw = bench->gateway();

  std::printf("platforms:");
  for (const auto& p : gw.platforms()) std::printf(" %s", p.c_str());
  std::printf("\nfunctions uploaded for python: %zu\n",
              gw.functions("python").size());

  // 2. Invoke one function through the REST path, exactly as a user would.
  net::HttpRequest req;
  req.method = "POST";
  req.path = "/invoke";
  req.query = "function=factors&lang=python&platform=tdx&secure=1";
  const auto resp = bench->network().roundtrip("gateway", 8080, req);
  std::printf("\nPOST /invoke -> %d\n  body: %s  X-Perf: %.60s...\n",
              resp.status, resp.body.c_str(),
              resp.headers.at("X-Perf").c_str());

  // 3. Measure secure/normal overhead ratios for a few functions.
  metrics::Table table({"function", "lang", "tdx", "sev-snp", "cca"});
  for (const char* fn : {"cpustress", "memstress", "iostress", "logging"}) {
    std::vector<std::string> row{fn, "python"};
    for (const char* platform : {"tdx", "sev-snp", "cca"}) {
      const auto m = bench->measure(fn, "python", platform, /*trials=*/5);
      row.push_back(metrics::Table::num(m.ratio(), 2));
    }
    table.add_row(row);
  }
  std::printf("\nsecure/normal mean-time ratios (5 trials):\n%s",
              table.render().c_str());
  return 0;
}

// Minimal tour of the src/sched/ cluster scheduler: calibrate a service
// model for one workload through the real gateway path, then run the same
// open-loop Poisson traffic against the normal and the confidential
// deployment and compare throughput and tail latency.
//
//   ./cluster_demo [function] [platform] [rate_rps] [requests]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/confbench.h"
#include "sched/cluster.h"

using namespace confbench;

int main(int argc, char** argv) {
  const std::string function = argc > 1 ? argv[1] : "iostress";
  const std::string platform = argc > 2 ? argv[2] : "tdx";
  const double rate = argc > 3 ? std::atof(argv[3]) : 0.0;
  const std::uint64_t requests =
      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 50000;

  auto system = core::ConfBench::standard();

  std::printf("== cluster demo: %s on %s ==\n\n", function.c_str(),
              platform.c_str());
  try {
    for (const bool secure : {false, true}) {
      sched::ClusterConfig cfg;
      cfg.function = function;
      cfg.platform = platform;
      cfg.secure = secure;
      cfg.requests = requests;
      cfg.seed = 42;
      cfg.scaler.min_warm = 1;
      cfg.scaler.max_replicas = 4;
  
      // Calibrate once through the real invocation path; drive the cluster
      // at 80% of the normal-mode fleet capacity unless a rate was given.
      const auto model = sched::ServiceModel::calibrate(
          *system, function, cfg.language, platform, secure);
      sched::ClusterExperiment exp(cfg);
      cfg.rate_rps = rate > 0 ? rate : 0.8 * exp.fleet_capacity_rps(model);
      const auto result = sched::ClusterExperiment(cfg).run_with_model(model);
  
      std::printf("%s mode\n", secure ? "secure" : "normal");
      std::printf("  service model: parallel %.3f ms, serialized %.3f ms, "
                  "cold start %.2f s\n",
                  model.parallel_ns / 1e6, model.serialized_ns / 1e6,
                  model.cold_start_ns / 1e9);
      std::printf("  offered %llu at %.0f rps -> completed %llu, "
                  "rejected %llu (%.1f%%)\n",
                  static_cast<unsigned long long>(result.offered), cfg.rate_rps,
                  static_cast<unsigned long long>(result.completed),
                  static_cast<unsigned long long>(result.rejected),
                  100.0 * result.reject_rate());
      std::printf("  throughput %.0f rps, peak warm replicas %d\n",
                  result.throughput_rps(), result.peak_warm);
      std::printf("  latency p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  "
                  "p99.9 %.3f ms\n",
                  result.latency.p50() / 1e6, result.latency.p95() / 1e6,
                  result.latency.p99() / 1e6, result.latency.p999() / 1e6);
      std::printf("  queue wait mean %.3f ms, autoscaler samples %zu\n\n",
                  result.queue_wait.mean() / 1e6, result.scaler_trace.size());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("same seed + config reproduces these numbers exactly; see\n"
              "bench/cluster_load for the full load sweep.\n");
  return 0;
}

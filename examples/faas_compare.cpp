// faas_compare: the paper's core use case — compare FaaS overheads across
// TEEs and language runtimes through the full gateway pipeline.
//
//   ./build/examples/faas_compare [function ...]
//
// Runs the given functions (default: the six from §IV-D) in all seven
// languages on TDX, SEV-SNP and CCA, printing one mini-heatmap per platform
// plus the per-language mean ratio, which makes the "heavier runtimes hurt
// more" trend directly visible.
#include <cstdio>
#include <vector>

#include "core/confbench.h"
#include "metrics/heatmap.h"
#include "rt/profile.h"
#include "wl/faas.h"

using namespace confbench;

int main(int argc, char** argv) {
  std::vector<std::string> functions;
  for (int i = 1; i < argc; ++i) {
    if (!wl::find_faas(argv[i])) {
      std::fprintf(stderr, "unknown function '%s'; available:\n", argv[i]);
      for (const auto& w : wl::faas_workloads())
        std::fprintf(stderr, "  %s\n", w.name.c_str());
      return 1;
    }
    functions.push_back(argv[i]);
  }
  if (functions.empty()) {
    functions = {"cpustress", "memstress", "iostress",
                 "logging",   "factors",   "filesystem"};
  }

  auto bench = core::ConfBench::standard();
  std::vector<std::string> langs;
  for (const auto& p : rt::builtin_profiles()) langs.push_back(p.name);

  constexpr int kTrials = 5;
  for (const char* platform : {"tdx", "sev-snp", "cca"}) {
    metrics::Heatmap map(functions, langs);
    std::vector<double> lang_sums(langs.size(), 0.0);
    for (std::size_t r = 0; r < functions.size(); ++r) {
      for (std::size_t c = 0; c < langs.size(); ++c) {
        const auto m =
            bench->measure(functions[r], langs[c], platform, kTrials);
        map.set(r, c, m.ratio());
        lang_sums[c] += m.ratio();
      }
    }
    std::printf("== %s: secure/normal mean-time ratio (%d trials) ==\n%s",
                platform, kTrials,
                map.render({.lo = 0.95, .hi = 3.0}).c_str());
    std::printf("per-language mean:");
    for (std::size_t c = 0; c < langs.size(); ++c)
      std::printf(" %s=%.2f", langs[c].c_str(),
                  lang_sums[c] / static_cast<double>(functions.size()));
    std::printf("\n\n");
  }
  return 0;
}

// dbms_stress: the §IV-C DBMS scenario — MiniDB's speedtest1-style suite in
// confidential vs normal VMs, with per-test timings and result checksums.
//
//   ./build/examples/dbms_stress [size]     (default size 100, as the paper)
#include <cstdio>
#include <cstdlib>

#include "metrics/table.h"
#include "tee/registry.h"
#include "vm/guest_vm.h"
#include "vm/vfs.h"
#include "wl/db/speedtest.h"

using namespace confbench;

int main(int argc, char** argv) {
  const int size = argc > 1 ? std::atoi(argv[1]) : 100;
  std::printf("MiniDB speedtest, relative size %d (SQLite speedtest1 "
              "analogue)\n\n", size);

  for (const char* platform_name : {"tdx", "sev-snp", "cca"}) {
    auto platform = tee::Registry::instance().create(platform_name);
    std::vector<wl::db::SpeedtestResult> secure_rs, normal_rs;
    for (const bool secure : {true, false}) {
      vm::VmConfig cfg{std::string(platform_name) + "/db", platform, secure, vm::UnitKind::kVm, 8, 16ULL << 30};
      vm::GuestVm vm(cfg);
      vm.boot();
      vm.run([&](vm::ExecutionContext& ctx) {
        vm::Vfs fs(ctx);
        (secure ? secure_rs : normal_rs) =
            wl::db::run_speedtest(ctx, fs, size);
        return "done";
      });
    }

    metrics::Table table({"test", "secure ms", "normal ms", "ratio", "match"});
    double ratio_sum = 0;
    for (std::size_t i = 0; i < secure_rs.size(); ++i) {
      const double ratio = secure_rs[i].elapsed / normal_rs[i].elapsed;
      ratio_sum += ratio;
      table.add_row({secure_rs[i].id + " " + secure_rs[i].name,
                     metrics::Table::num(secure_rs[i].elapsed / 1e6),
                     metrics::Table::num(normal_rs[i].elapsed / 1e6),
                     metrics::Table::num(ratio),
                     secure_rs[i].checksum == normal_rs[i].checksum
                         ? "yes"
                         : "NO!"});
    }
    std::printf("== %s ==\n%saverage ratio: %.2f\n\n", platform_name,
                table.render().c_str(),
                ratio_sum / static_cast<double>(secure_rs.size()));
  }
  std::printf("('match' checks that secure and normal VMs computed identical "
              "query results)\n");
  return 0;
}

// confbench_cli: command-line front end for a ConfBench deployment.
//
//   confbench_cli platforms
//   confbench_cli functions <lang>
//   confbench_cli invoke <function> <lang> <platform> [--secure] [--trials N]
//   confbench_cli measure <function> <lang> <platform> [--trials N]
//   confbench_cli config [path]      # print (or load) the gateway INI
//
// Everything goes through the gateway's REST interface, exactly as a remote
// user of the tool would drive it (§III-C).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/confbench.h"
#include "metrics/json.h"
#include "metrics/stats.h"

using namespace confbench;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  confbench_cli platforms\n"
               "  confbench_cli functions <lang>\n"
               "  confbench_cli invoke <function> <lang> <platform> "
               "[--secure] [--json]\n"
               "  confbench_cli measure <function> <lang> <platform> "
               "[--trials N] [--json]\n"
               "  confbench_cli config [path]\n");
  return 2;
}

core::GatewayConfig load_config(const char* path) {
  if (!path) return core::GatewayConfig::standard();
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s; using the standard deployment\n",
                 path);
    return core::GatewayConfig::standard();
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  const auto ini = core::IniFile::parse(ss.str(), &err);
  if (!ini) {
    std::fprintf(stderr, "config parse error: %s\n", err.c_str());
    std::exit(2);
  }
  const auto cfg = core::GatewayConfig::from_ini(*ini, &err);
  if (!cfg) {
    std::fprintf(stderr, "config error: %s\n", err.c_str());
    std::exit(2);
  }
  return *cfg;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "config") {
    const auto cfg = load_config(argc > 2 ? argv[2] : nullptr);
    std::printf("%s", cfg.to_ini().serialize().c_str());
    return 0;
  }

  core::ConfBench system(core::GatewayConfig::standard());
  auto& gw = system.gateway();

  if (cmd == "platforms") {
    for (const auto& p : gw.platforms()) std::printf("%s\n", p.c_str());
    return 0;
  }
  if (cmd == "functions") {
    if (argc < 3) return usage();
    for (const auto& f : gw.functions(argv[2])) std::printf("%s\n", f.c_str());
    return 0;
  }

  if (cmd != "invoke" && cmd != "measure") return usage();
  if (argc < 5) return usage();
  const std::string function = argv[2];
  const std::string lang = argv[3];
  const std::string platform = argv[4];
  bool secure = false;
  bool json = false;
  int trials = 10;
  for (int i = 5; i < argc; ++i) {
    if (std::strcmp(argv[i], "--secure") == 0) {
      secure = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials = std::atoi(argv[++i]);
      if (trials <= 0) return usage();
    } else {
      return usage();
    }
  }

  if (cmd == "invoke") {
    const auto rec = gw.invoke({.function = function,
                                .language = lang,
                                .platform = platform,
                                .secure = secure});
    if (!rec.ok()) {
      std::fprintf(stderr, "HTTP %d: %s", rec.http_status, rec.error.c_str());
      return 1;
    }
    if (json) {
      metrics::JsonWriter w;
      w.begin_object()
          .key("function").value(rec.function)
          .key("language").value(rec.language)
          .key("platform").value(rec.platform)
          .key("secure").value(rec.secure)
          .key("output").value(rec.output)
          .key("served_by").value(rec.served_by)
          .key("function_ms").value(rec.function_ns / 1e6)
          .key("bootstrap_ms").value(rec.bootstrap_ns / 1e6)
          .key("perf_source").value(rec.perf_from_pmu ? "pmu" : "custom")
          .key("perf").begin_object()
              .key("instructions").value(rec.perf.instructions)
              .key("cache_misses").value(rec.perf.cache_misses)
              .key("syscalls").value(rec.perf.syscalls)
              .key("vm_exits").value(rec.perf.vm_exits)
              .key("wall_ms").value(rec.perf.wall_ns / 1e6)
          .end_object()
          .end_object();
      std::printf("%s\n", w.str().c_str());
      return 0;
    }
    std::printf("output:       %s\n", rec.output.c_str());
    std::printf("served by:    %s\n", rec.served_by.c_str());
    std::printf("function:     %.3f ms (bootstrap %.3f ms excluded)\n",
                rec.function_ns / 1e6, rec.bootstrap_ns / 1e6);
    std::printf("perf source:  %s\n", rec.perf_from_pmu ? "pmu" : "custom");
    std::printf("%s", rec.perf.to_perf_stat_string().c_str());
    return 0;
  }

  // measure: secure vs normal over N trials.
  const auto m = system.measure(function, lang, platform, trials);
  const auto s = metrics::Summary::of(m.secure_ns);
  const auto n = metrics::Summary::of(m.normal_ns);
  if (json) {
    metrics::JsonWriter w;
    w.begin_object()
        .key("function").value(function)
        .key("language").value(lang)
        .key("platform").value(platform)
        .key("trials").value(trials)
        .key("ratio").value(m.ratio())
        .key("secure_ms").begin_array();
    for (const double x : m.secure_ns) w.value(x / 1e6);
    w.end_array().key("normal_ms").begin_array();
    for (const double x : m.normal_ns) w.value(x / 1e6);
    w.end_array().end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::printf("%s/%s on %s, %d trials\n", function.c_str(), lang.c_str(),
              platform.c_str(), trials);
  std::printf("  secure: median %.3f ms  (min %.3f, max %.3f)\n",
              s.median / 1e6, s.min / 1e6, s.max / 1e6);
  std::printf("  normal: median %.3f ms  (min %.3f, max %.3f)\n",
              n.median / 1e6, n.min / 1e6, n.max / 1e6);
  std::printf("  secure/normal mean ratio: %.3f\n", m.ratio());
  return 0;
}

// confidential_ml: the §IV-C machine-learning scenario as an application.
//
// Boots a secure and a normal VM per platform, installs the 40-image
// dataset in each guest, runs MobileNet inference over all images and
// reports the per-image latency distribution plus the piggybacked perf
// counters — including the CCA case where the realm has no PMU and the
// custom collector only reports wall time.
#include <cstdio>

#include "metrics/stats.h"
#include "tee/registry.h"
#include "vm/guest_vm.h"
#include "vm/vfs.h"
#include "wl/ml/model.h"

using namespace confbench;

namespace {

void run_platform(const char* platform_name, int images) {
  auto platform = tee::Registry::instance().create(platform_name);
  std::printf("=== %s (exit primitive %s%s) ===\n", platform_name,
              platform->exit_primitive().data(),
              platform->simulated() ? ", FVP-simulated" : "");
  for (const bool secure : {false, true}) {
    vm::VmConfig cfg{std::string(platform_name) + (secure ? "/td" : "/vm"),
                     platform, secure, vm::UnitKind::kVm, 8, 16ULL << 30};
    vm::GuestVm vm(cfg);
    const sim::Ns boot = vm.boot();

    std::vector<double> times_ms;
    const auto outcome = vm.run([&](vm::ExecutionContext& ctx) {
      vm::Vfs fs(ctx);
      wl::ml::install_image_dataset(fs, images);
      const wl::ml::MobileNetModel model(/*seed=*/11, /*reduced_scale=*/8);
      int last_label = -1;
      for (int i = 0; i < images; ++i) {
        const sim::Ns t0 = ctx.now();
        const auto img =
            wl::ml::load_and_decode(ctx, fs, i, model.input_hw());
        last_label = model.classify(ctx, img).label;
        times_ms.push_back((ctx.now() - t0) / 1e6);
      }
      return "last-label:" + std::to_string(last_label);
    });

    const auto s = metrics::Summary::of(times_ms);
    std::printf(
        "  %-6s boot %5.1f s | inference ms: min %.1f p25 %.1f med %.1f "
        "p95 %.1f max %.1f\n",
        secure ? "secure" : "normal", boot / 1e9, s.min, s.p25, s.median,
        s.p95, s.max);
    if (outcome.perf_from_pmu) {
      std::printf("         perf: %.2fG instructions, %.1fM cache-misses, "
                  "%.0f VM exits\n",
                  outcome.perf.instructions / 1e9,
                  outcome.perf.cache_misses / 1e6, outcome.perf.vm_exits);
    } else {
      std::printf("         perf: PMU unavailable in realms — custom "
                  "collector reports wall=%.2fs, syscalls=%.0f\n",
                  outcome.perf.wall_ns / 1e9, outcome.perf.syscalls);
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int images = argc > 1 ? std::atoi(argv[1]) : 40;
  std::printf("Confidential ML: MobileNet over %d 1-MB images (Fig. 3 "
              "scenario)\n\n", images);
  for (const char* p : {"tdx", "sev-snp", "cca"}) run_platform(p, images);
  return 0;
}

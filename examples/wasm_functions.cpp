// wasm_functions: run real bytecode through the MiniWasm engine (the
// Wasmi-substrate, §IV-B) inside confidential and normal VMs.
//
//   ./build/examples/wasm_functions [fib_n]
//
// Prints each program's result, retired bytecode instructions, and the
// secure-vs-normal virtual times on every platform.
#include <cstdio>
#include <cstdlib>

#include "tee/registry.h"
#include "vm/exec_context.h"
#include "wasm/builder.h"
#include "wasm/interp.h"

using namespace confbench;
using wasm::Value;

namespace {

void run(const char* label, const wasm::Module& module, const char* entry,
         const std::vector<Value>& args) {
  std::printf("-- %s --\n", label);
  wasm::Interpreter pure(module);
  const auto ref = pure.invoke(entry, args);
  if (!ref.ok) {
    std::printf("   trap: %s\n", std::string(to_string(ref.trap)).c_str());
    return;
  }
  std::printf("   result %lld, %llu bytecode instructions\n",
              static_cast<long long>(ref.i64()),
              static_cast<unsigned long long>(ref.instructions));
  for (const char* platform : {"tdx", "sev-snp", "cca"}) {
    double times[2];
    for (const bool secure : {false, true}) {
      vm::ExecutionContext ctx(tee::Registry::instance().create(platform),
                               secure, 7);
      wasm::Interpreter interp(module);
      interp.invoke(entry, args, &ctx);
      times[secure ? 1 : 0] = ctx.finish().wall_ns;
    }
    std::printf("   %-8s normal %8.2f ms   secure %8.2f ms   ratio %.2f\n",
                platform, times[0] / 1e6, times[1] / 1e6,
                times[1] / times[0]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t fib_n = argc > 1 ? std::atoll(argv[1]) : 22;
  std::printf("MiniWasm programs in confidential VMs\n\n");
  run("fib (recursive)", wasm::programs::fib_recursive(), "fib",
      {Value::make_i64(fib_n)});
  run("sum loop (1e6)", wasm::programs::sum_loop(), "sum",
      {Value::make_i64(1000000)});
  run("sieve (10k)", wasm::programs::sieve(), "sieve",
      {Value::make_i64(10000)});
  run("memfill (8k slots)", wasm::programs::memfill(), "memfill",
      {Value::make_i64(8000)});
  return 0;
}

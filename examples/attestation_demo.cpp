// attestation_demo: the full remote-attestation flows of §IV-C, end to end.
//
// Walks through evidence generation and verification for TDX (DCAP quote +
// Intel PCS collateral) and SEV-SNP (AMD-SP report + on-platform certs),
// prints the structures at each step, demonstrates that tampering and
// key revocation are caught, and reports the attest/check latencies that
// Fig. 5 plots.
#include <cstdio>

#include "attest/service.h"
#include "tee/registry.h"

using namespace confbench;
using namespace confbench::attest;

int main() {
  AttestationService service;
  auto tdx = tee::Registry::instance().create("tdx");
  auto snp = tee::Registry::instance().create("sev-snp");
  auto cca = tee::Registry::instance().create("cca");

  // --- 1. TDX: quote generation + verification --------------------------------
  std::printf("=== Intel TDX (DCAP flow) ===\n");
  const TdMeasurements meas = golden_td_measurements("ubuntu-24.04-guest");
  std::printf("TD measurements:\n  MRTD    %s\n  RTMR[0] %s\n",
              to_hex(meas.mrtd).c_str(),
              to_hex(meas.rtmr[0].value()).c_str());
  const TdxQuote quote = service.tdx_generator().generate(
      meas, Sha256::hash(std::string("demo-nonce")));
  const auto wire = quote.serialize();
  std::printf("quote: %zu bytes on the wire, %zu-certificate PCK chain\n",
              wire.size(), quote.pck_chain.size());
  for (const auto& cert : quote.pck_chain)
    std::printf("  cert: %-18s issued by %s\n", cert.subject.c_str(),
                cert.issuer.c_str());

  const auto t1 = service.run_tdx(*tdx, 0);
  std::printf("verification: %s  (attest %.0f ms, check %.0f ms — check is "
              "dominated by %d PCS round trips)\n",
              t1.ok ? "ACCEPTED" : t1.failure.c_str(), t1.attest_ns / 1e6,
              t1.check_ns / 1e6,
              PcsService::round_trips_per_verification());

  const auto tampered = service.run_tdx(*tdx, 1, /*tamper=*/true);
  std::printf("tampered quote: %s (%s)\n\n",
              tampered.ok ? "ACCEPTED (bug!)" : "REJECTED",
              tampered.failure.c_str());

  // --- 2. SEV-SNP: report + 3-step verification --------------------------------
  std::printf("=== AMD SEV-SNP (snpguest flow) ===\n");
  const SnpMeasurements sm = golden_snp_measurements("ubuntu-24.04-guest");
  std::printf("launch digest %s\n", to_hex(sm.launch_digest).c_str());
  const auto t2 = service.run_snp(*snp, 0);
  std::printf("verification: %s  (attest %.0f ms, check %.0f ms — certs come "
              "from the platform, no network)\n",
              t2.ok ? "ACCEPTED" : t2.failure.c_str(), t2.attest_ns / 1e6,
              t2.check_ns / 1e6);
  const auto snp_tampered = service.run_snp(*snp, 1, /*tamper=*/true);
  std::printf("tampered report: %s (%s)\n\n",
              snp_tampered.ok ? "ACCEPTED (bug!)" : "REJECTED",
              snp_tampered.failure.c_str());

  // --- 3. Revocation via the PCS -------------------------------------------------
  std::printf("=== Revocation ===\n");
  service.pcs().revoke(quote.pck_chain[1].subject_key);
  const auto revoked = service.run_tdx(*tdx, 2);
  std::printf("after revoking the platform PCK: %s (%s)\n\n",
              revoked.ok ? "ACCEPTED (bug!)" : "REJECTED",
              revoked.failure.c_str());

  // --- 4. CCA: not attestable under the FVP --------------------------------------
  const auto t3 = service.run_tdx(*cca, 0);
  std::printf("=== Arm CCA ===\n%s (the FVP lacks attestation hardware, as "
              "in the paper)\n",
              t3.failure.c_str());
  return 0;
}

# Empty dependencies file for confbench_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/confbench_cli.dir/confbench_cli.cpp.o"
  "CMakeFiles/confbench_cli.dir/confbench_cli.cpp.o.d"
  "confbench_cli"
  "confbench_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confbench_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

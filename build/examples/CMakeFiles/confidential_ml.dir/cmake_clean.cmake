file(REMOVE_RECURSE
  "CMakeFiles/confidential_ml.dir/confidential_ml.cpp.o"
  "CMakeFiles/confidential_ml.dir/confidential_ml.cpp.o.d"
  "confidential_ml"
  "confidential_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confidential_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for confidential_ml.
# This may be replaced when dependencies are built.

# Empty dependencies file for wasm_functions.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wasm_functions.dir/wasm_functions.cpp.o"
  "CMakeFiles/wasm_functions.dir/wasm_functions.cpp.o.d"
  "wasm_functions"
  "wasm_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasm_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dbms_stress.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dbms_stress.dir/dbms_stress.cpp.o"
  "CMakeFiles/dbms_stress.dir/dbms_stress.cpp.o.d"
  "dbms_stress"
  "dbms_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbms_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for faas_compare.
# This may be replaced when dependencies are built.

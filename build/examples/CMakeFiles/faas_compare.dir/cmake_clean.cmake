file(REMOVE_RECURSE
  "CMakeFiles/faas_compare.dir/faas_compare.cpp.o"
  "CMakeFiles/faas_compare.dir/faas_compare.cpp.o.d"
  "faas_compare"
  "faas_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faas_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

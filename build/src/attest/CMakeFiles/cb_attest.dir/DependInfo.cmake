
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attest/bytes.cc" "src/attest/CMakeFiles/cb_attest.dir/bytes.cc.o" "gcc" "src/attest/CMakeFiles/cb_attest.dir/bytes.cc.o.d"
  "/root/repo/src/attest/hmac.cc" "src/attest/CMakeFiles/cb_attest.dir/hmac.cc.o" "gcc" "src/attest/CMakeFiles/cb_attest.dir/hmac.cc.o.d"
  "/root/repo/src/attest/measurement.cc" "src/attest/CMakeFiles/cb_attest.dir/measurement.cc.o" "gcc" "src/attest/CMakeFiles/cb_attest.dir/measurement.cc.o.d"
  "/root/repo/src/attest/pcs.cc" "src/attest/CMakeFiles/cb_attest.dir/pcs.cc.o" "gcc" "src/attest/CMakeFiles/cb_attest.dir/pcs.cc.o.d"
  "/root/repo/src/attest/quote.cc" "src/attest/CMakeFiles/cb_attest.dir/quote.cc.o" "gcc" "src/attest/CMakeFiles/cb_attest.dir/quote.cc.o.d"
  "/root/repo/src/attest/realm_token.cc" "src/attest/CMakeFiles/cb_attest.dir/realm_token.cc.o" "gcc" "src/attest/CMakeFiles/cb_attest.dir/realm_token.cc.o.d"
  "/root/repo/src/attest/report.cc" "src/attest/CMakeFiles/cb_attest.dir/report.cc.o" "gcc" "src/attest/CMakeFiles/cb_attest.dir/report.cc.o.d"
  "/root/repo/src/attest/service.cc" "src/attest/CMakeFiles/cb_attest.dir/service.cc.o" "gcc" "src/attest/CMakeFiles/cb_attest.dir/service.cc.o.d"
  "/root/repo/src/attest/sha256.cc" "src/attest/CMakeFiles/cb_attest.dir/sha256.cc.o" "gcc" "src/attest/CMakeFiles/cb_attest.dir/sha256.cc.o.d"
  "/root/repo/src/attest/signer.cc" "src/attest/CMakeFiles/cb_attest.dir/signer.cc.o" "gcc" "src/attest/CMakeFiles/cb_attest.dir/signer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/cb_tee.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcb_attest.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cb_attest.dir/bytes.cc.o"
  "CMakeFiles/cb_attest.dir/bytes.cc.o.d"
  "CMakeFiles/cb_attest.dir/hmac.cc.o"
  "CMakeFiles/cb_attest.dir/hmac.cc.o.d"
  "CMakeFiles/cb_attest.dir/measurement.cc.o"
  "CMakeFiles/cb_attest.dir/measurement.cc.o.d"
  "CMakeFiles/cb_attest.dir/pcs.cc.o"
  "CMakeFiles/cb_attest.dir/pcs.cc.o.d"
  "CMakeFiles/cb_attest.dir/quote.cc.o"
  "CMakeFiles/cb_attest.dir/quote.cc.o.d"
  "CMakeFiles/cb_attest.dir/realm_token.cc.o"
  "CMakeFiles/cb_attest.dir/realm_token.cc.o.d"
  "CMakeFiles/cb_attest.dir/report.cc.o"
  "CMakeFiles/cb_attest.dir/report.cc.o.d"
  "CMakeFiles/cb_attest.dir/service.cc.o"
  "CMakeFiles/cb_attest.dir/service.cc.o.d"
  "CMakeFiles/cb_attest.dir/sha256.cc.o"
  "CMakeFiles/cb_attest.dir/sha256.cc.o.d"
  "CMakeFiles/cb_attest.dir/signer.cc.o"
  "CMakeFiles/cb_attest.dir/signer.cc.o.d"
  "libcb_attest.a"
  "libcb_attest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_attest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cb_attest.
# This may be replaced when dependencies are built.

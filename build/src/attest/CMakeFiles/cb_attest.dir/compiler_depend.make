# Empty compiler generated dependencies file for cb_attest.
# This may be replaced when dependencies are built.

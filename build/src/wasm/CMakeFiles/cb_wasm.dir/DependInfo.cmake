
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wasm/builder.cc" "src/wasm/CMakeFiles/cb_wasm.dir/builder.cc.o" "gcc" "src/wasm/CMakeFiles/cb_wasm.dir/builder.cc.o.d"
  "/root/repo/src/wasm/interp.cc" "src/wasm/CMakeFiles/cb_wasm.dir/interp.cc.o" "gcc" "src/wasm/CMakeFiles/cb_wasm.dir/interp.cc.o.d"
  "/root/repo/src/wasm/module.cc" "src/wasm/CMakeFiles/cb_wasm.dir/module.cc.o" "gcc" "src/wasm/CMakeFiles/cb_wasm.dir/module.cc.o.d"
  "/root/repo/src/wasm/text.cc" "src/wasm/CMakeFiles/cb_wasm.dir/text.cc.o" "gcc" "src/wasm/CMakeFiles/cb_wasm.dir/text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/cb_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/cb_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

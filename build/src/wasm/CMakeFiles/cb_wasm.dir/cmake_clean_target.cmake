file(REMOVE_RECURSE
  "libcb_wasm.a"
)

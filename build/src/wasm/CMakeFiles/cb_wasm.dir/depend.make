# Empty dependencies file for cb_wasm.
# This may be replaced when dependencies are built.

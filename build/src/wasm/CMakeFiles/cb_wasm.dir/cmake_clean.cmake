file(REMOVE_RECURSE
  "CMakeFiles/cb_wasm.dir/builder.cc.o"
  "CMakeFiles/cb_wasm.dir/builder.cc.o.d"
  "CMakeFiles/cb_wasm.dir/interp.cc.o"
  "CMakeFiles/cb_wasm.dir/interp.cc.o.d"
  "CMakeFiles/cb_wasm.dir/module.cc.o"
  "CMakeFiles/cb_wasm.dir/module.cc.o.d"
  "CMakeFiles/cb_wasm.dir/text.cc.o"
  "CMakeFiles/cb_wasm.dir/text.cc.o.d"
  "libcb_wasm.a"
  "libcb_wasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_wasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

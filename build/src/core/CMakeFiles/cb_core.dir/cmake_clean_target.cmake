file(REMOVE_RECURSE
  "libcb_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cb_core.dir/confbench.cc.o"
  "CMakeFiles/cb_core.dir/confbench.cc.o.d"
  "CMakeFiles/cb_core.dir/config.cc.o"
  "CMakeFiles/cb_core.dir/config.cc.o.d"
  "CMakeFiles/cb_core.dir/gateway.cc.o"
  "CMakeFiles/cb_core.dir/gateway.cc.o.d"
  "CMakeFiles/cb_core.dir/host_agent.cc.o"
  "CMakeFiles/cb_core.dir/host_agent.cc.o.d"
  "CMakeFiles/cb_core.dir/launcher.cc.o"
  "CMakeFiles/cb_core.dir/launcher.cc.o.d"
  "CMakeFiles/cb_core.dir/native.cc.o"
  "CMakeFiles/cb_core.dir/native.cc.o.d"
  "CMakeFiles/cb_core.dir/pool.cc.o"
  "CMakeFiles/cb_core.dir/pool.cc.o.d"
  "libcb_core.a"
  "libcb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tee/cca.cc" "src/tee/CMakeFiles/cb_tee.dir/cca.cc.o" "gcc" "src/tee/CMakeFiles/cb_tee.dir/cca.cc.o.d"
  "/root/repo/src/tee/colocation.cc" "src/tee/CMakeFiles/cb_tee.dir/colocation.cc.o" "gcc" "src/tee/CMakeFiles/cb_tee.dir/colocation.cc.o.d"
  "/root/repo/src/tee/none.cc" "src/tee/CMakeFiles/cb_tee.dir/none.cc.o" "gcc" "src/tee/CMakeFiles/cb_tee.dir/none.cc.o.d"
  "/root/repo/src/tee/platform.cc" "src/tee/CMakeFiles/cb_tee.dir/platform.cc.o" "gcc" "src/tee/CMakeFiles/cb_tee.dir/platform.cc.o.d"
  "/root/repo/src/tee/registry.cc" "src/tee/CMakeFiles/cb_tee.dir/registry.cc.o" "gcc" "src/tee/CMakeFiles/cb_tee.dir/registry.cc.o.d"
  "/root/repo/src/tee/sev_snp.cc" "src/tee/CMakeFiles/cb_tee.dir/sev_snp.cc.o" "gcc" "src/tee/CMakeFiles/cb_tee.dir/sev_snp.cc.o.d"
  "/root/repo/src/tee/sgx.cc" "src/tee/CMakeFiles/cb_tee.dir/sgx.cc.o" "gcc" "src/tee/CMakeFiles/cb_tee.dir/sgx.cc.o.d"
  "/root/repo/src/tee/tdx.cc" "src/tee/CMakeFiles/cb_tee.dir/tdx.cc.o" "gcc" "src/tee/CMakeFiles/cb_tee.dir/tdx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

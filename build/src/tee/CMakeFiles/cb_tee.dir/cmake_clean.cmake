file(REMOVE_RECURSE
  "CMakeFiles/cb_tee.dir/cca.cc.o"
  "CMakeFiles/cb_tee.dir/cca.cc.o.d"
  "CMakeFiles/cb_tee.dir/colocation.cc.o"
  "CMakeFiles/cb_tee.dir/colocation.cc.o.d"
  "CMakeFiles/cb_tee.dir/none.cc.o"
  "CMakeFiles/cb_tee.dir/none.cc.o.d"
  "CMakeFiles/cb_tee.dir/platform.cc.o"
  "CMakeFiles/cb_tee.dir/platform.cc.o.d"
  "CMakeFiles/cb_tee.dir/registry.cc.o"
  "CMakeFiles/cb_tee.dir/registry.cc.o.d"
  "CMakeFiles/cb_tee.dir/sev_snp.cc.o"
  "CMakeFiles/cb_tee.dir/sev_snp.cc.o.d"
  "CMakeFiles/cb_tee.dir/sgx.cc.o"
  "CMakeFiles/cb_tee.dir/sgx.cc.o.d"
  "CMakeFiles/cb_tee.dir/tdx.cc.o"
  "CMakeFiles/cb_tee.dir/tdx.cc.o.d"
  "libcb_tee.a"
  "libcb_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

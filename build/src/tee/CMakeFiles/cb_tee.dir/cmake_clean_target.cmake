file(REMOVE_RECURSE
  "libcb_tee.a"
)

# Empty compiler generated dependencies file for cb_tee.
# This may be replaced when dependencies are built.

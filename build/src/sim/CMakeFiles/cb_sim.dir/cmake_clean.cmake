file(REMOVE_RECURSE
  "CMakeFiles/cb_sim.dir/cache.cc.o"
  "CMakeFiles/cb_sim.dir/cache.cc.o.d"
  "CMakeFiles/cb_sim.dir/clock.cc.o"
  "CMakeFiles/cb_sim.dir/clock.cc.o.d"
  "CMakeFiles/cb_sim.dir/costs.cc.o"
  "CMakeFiles/cb_sim.dir/costs.cc.o.d"
  "CMakeFiles/cb_sim.dir/memenc.cc.o"
  "CMakeFiles/cb_sim.dir/memenc.cc.o.d"
  "CMakeFiles/cb_sim.dir/rng.cc.o"
  "CMakeFiles/cb_sim.dir/rng.cc.o.d"
  "libcb_sim.a"
  "libcb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/cb_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/cb_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/clock.cc" "src/sim/CMakeFiles/cb_sim.dir/clock.cc.o" "gcc" "src/sim/CMakeFiles/cb_sim.dir/clock.cc.o.d"
  "/root/repo/src/sim/costs.cc" "src/sim/CMakeFiles/cb_sim.dir/costs.cc.o" "gcc" "src/sim/CMakeFiles/cb_sim.dir/costs.cc.o.d"
  "/root/repo/src/sim/memenc.cc" "src/sim/CMakeFiles/cb_sim.dir/memenc.cc.o" "gcc" "src/sim/CMakeFiles/cb_sim.dir/memenc.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/sim/CMakeFiles/cb_sim.dir/rng.cc.o" "gcc" "src/sim/CMakeFiles/cb_sim.dir/rng.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for cb_vm.
# This may be replaced when dependencies are built.

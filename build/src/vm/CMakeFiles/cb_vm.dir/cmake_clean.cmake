file(REMOVE_RECURSE
  "CMakeFiles/cb_vm.dir/block_device.cc.o"
  "CMakeFiles/cb_vm.dir/block_device.cc.o.d"
  "CMakeFiles/cb_vm.dir/exec_context.cc.o"
  "CMakeFiles/cb_vm.dir/exec_context.cc.o.d"
  "CMakeFiles/cb_vm.dir/guest_vm.cc.o"
  "CMakeFiles/cb_vm.dir/guest_vm.cc.o.d"
  "CMakeFiles/cb_vm.dir/host.cc.o"
  "CMakeFiles/cb_vm.dir/host.cc.o.d"
  "CMakeFiles/cb_vm.dir/vfs.cc.o"
  "CMakeFiles/cb_vm.dir/vfs.cc.o.d"
  "libcb_vm.a"
  "libcb_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcb_vm.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/block_device.cc" "src/vm/CMakeFiles/cb_vm.dir/block_device.cc.o" "gcc" "src/vm/CMakeFiles/cb_vm.dir/block_device.cc.o.d"
  "/root/repo/src/vm/exec_context.cc" "src/vm/CMakeFiles/cb_vm.dir/exec_context.cc.o" "gcc" "src/vm/CMakeFiles/cb_vm.dir/exec_context.cc.o.d"
  "/root/repo/src/vm/guest_vm.cc" "src/vm/CMakeFiles/cb_vm.dir/guest_vm.cc.o" "gcc" "src/vm/CMakeFiles/cb_vm.dir/guest_vm.cc.o.d"
  "/root/repo/src/vm/host.cc" "src/vm/CMakeFiles/cb_vm.dir/host.cc.o" "gcc" "src/vm/CMakeFiles/cb_vm.dir/host.cc.o.d"
  "/root/repo/src/vm/vfs.cc" "src/vm/CMakeFiles/cb_vm.dir/vfs.cc.o" "gcc" "src/vm/CMakeFiles/cb_vm.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/cb_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cb_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/cb_rt.dir/gc.cc.o"
  "CMakeFiles/cb_rt.dir/gc.cc.o.d"
  "CMakeFiles/cb_rt.dir/heap.cc.o"
  "CMakeFiles/cb_rt.dir/heap.cc.o.d"
  "CMakeFiles/cb_rt.dir/profile.cc.o"
  "CMakeFiles/cb_rt.dir/profile.cc.o.d"
  "CMakeFiles/cb_rt.dir/runtime.cc.o"
  "CMakeFiles/cb_rt.dir/runtime.cc.o.d"
  "libcb_rt.a"
  "libcb_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

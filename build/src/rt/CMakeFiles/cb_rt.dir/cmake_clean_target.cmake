file(REMOVE_RECURSE
  "libcb_rt.a"
)

# Empty dependencies file for cb_rt.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/gc.cc" "src/rt/CMakeFiles/cb_rt.dir/gc.cc.o" "gcc" "src/rt/CMakeFiles/cb_rt.dir/gc.cc.o.d"
  "/root/repo/src/rt/heap.cc" "src/rt/CMakeFiles/cb_rt.dir/heap.cc.o" "gcc" "src/rt/CMakeFiles/cb_rt.dir/heap.cc.o.d"
  "/root/repo/src/rt/profile.cc" "src/rt/CMakeFiles/cb_rt.dir/profile.cc.o" "gcc" "src/rt/CMakeFiles/cb_rt.dir/profile.cc.o.d"
  "/root/repo/src/rt/runtime.cc" "src/rt/CMakeFiles/cb_rt.dir/runtime.cc.o" "gcc" "src/rt/CMakeFiles/cb_rt.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/cb_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/cb_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for cb_wl.
# This may be replaced when dependencies are built.

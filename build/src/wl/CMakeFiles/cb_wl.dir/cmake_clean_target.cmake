file(REMOVE_RECURSE
  "libcb_wl.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wl/db/btree.cc" "src/wl/CMakeFiles/cb_wl.dir/db/btree.cc.o" "gcc" "src/wl/CMakeFiles/cb_wl.dir/db/btree.cc.o.d"
  "/root/repo/src/wl/db/db.cc" "src/wl/CMakeFiles/cb_wl.dir/db/db.cc.o" "gcc" "src/wl/CMakeFiles/cb_wl.dir/db/db.cc.o.d"
  "/root/repo/src/wl/db/speedtest.cc" "src/wl/CMakeFiles/cb_wl.dir/db/speedtest.cc.o" "gcc" "src/wl/CMakeFiles/cb_wl.dir/db/speedtest.cc.o.d"
  "/root/repo/src/wl/faas.cc" "src/wl/CMakeFiles/cb_wl.dir/faas.cc.o" "gcc" "src/wl/CMakeFiles/cb_wl.dir/faas.cc.o.d"
  "/root/repo/src/wl/faas_cpu.cc" "src/wl/CMakeFiles/cb_wl.dir/faas_cpu.cc.o" "gcc" "src/wl/CMakeFiles/cb_wl.dir/faas_cpu.cc.o.d"
  "/root/repo/src/wl/faas_io.cc" "src/wl/CMakeFiles/cb_wl.dir/faas_io.cc.o" "gcc" "src/wl/CMakeFiles/cb_wl.dir/faas_io.cc.o.d"
  "/root/repo/src/wl/faas_mem.cc" "src/wl/CMakeFiles/cb_wl.dir/faas_mem.cc.o" "gcc" "src/wl/CMakeFiles/cb_wl.dir/faas_mem.cc.o.d"
  "/root/repo/src/wl/ml/model.cc" "src/wl/CMakeFiles/cb_wl.dir/ml/model.cc.o" "gcc" "src/wl/CMakeFiles/cb_wl.dir/ml/model.cc.o.d"
  "/root/repo/src/wl/ml/tensor.cc" "src/wl/CMakeFiles/cb_wl.dir/ml/tensor.cc.o" "gcc" "src/wl/CMakeFiles/cb_wl.dir/ml/tensor.cc.o.d"
  "/root/repo/src/wl/ub/unixbench.cc" "src/wl/CMakeFiles/cb_wl.dir/ub/unixbench.cc.o" "gcc" "src/wl/CMakeFiles/cb_wl.dir/ub/unixbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/cb_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/cb_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/attest/CMakeFiles/cb_attest.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/cb_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

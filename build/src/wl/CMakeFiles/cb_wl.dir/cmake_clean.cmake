file(REMOVE_RECURSE
  "CMakeFiles/cb_wl.dir/db/btree.cc.o"
  "CMakeFiles/cb_wl.dir/db/btree.cc.o.d"
  "CMakeFiles/cb_wl.dir/db/db.cc.o"
  "CMakeFiles/cb_wl.dir/db/db.cc.o.d"
  "CMakeFiles/cb_wl.dir/db/speedtest.cc.o"
  "CMakeFiles/cb_wl.dir/db/speedtest.cc.o.d"
  "CMakeFiles/cb_wl.dir/faas.cc.o"
  "CMakeFiles/cb_wl.dir/faas.cc.o.d"
  "CMakeFiles/cb_wl.dir/faas_cpu.cc.o"
  "CMakeFiles/cb_wl.dir/faas_cpu.cc.o.d"
  "CMakeFiles/cb_wl.dir/faas_io.cc.o"
  "CMakeFiles/cb_wl.dir/faas_io.cc.o.d"
  "CMakeFiles/cb_wl.dir/faas_mem.cc.o"
  "CMakeFiles/cb_wl.dir/faas_mem.cc.o.d"
  "CMakeFiles/cb_wl.dir/ml/model.cc.o"
  "CMakeFiles/cb_wl.dir/ml/model.cc.o.d"
  "CMakeFiles/cb_wl.dir/ml/tensor.cc.o"
  "CMakeFiles/cb_wl.dir/ml/tensor.cc.o.d"
  "CMakeFiles/cb_wl.dir/ub/unixbench.cc.o"
  "CMakeFiles/cb_wl.dir/ub/unixbench.cc.o.d"
  "libcb_wl.a"
  "libcb_wl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_wl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/cb_metrics.dir/boxplot.cc.o"
  "CMakeFiles/cb_metrics.dir/boxplot.cc.o.d"
  "CMakeFiles/cb_metrics.dir/counters.cc.o"
  "CMakeFiles/cb_metrics.dir/counters.cc.o.d"
  "CMakeFiles/cb_metrics.dir/csv.cc.o"
  "CMakeFiles/cb_metrics.dir/csv.cc.o.d"
  "CMakeFiles/cb_metrics.dir/heatmap.cc.o"
  "CMakeFiles/cb_metrics.dir/heatmap.cc.o.d"
  "CMakeFiles/cb_metrics.dir/json.cc.o"
  "CMakeFiles/cb_metrics.dir/json.cc.o.d"
  "CMakeFiles/cb_metrics.dir/stats.cc.o"
  "CMakeFiles/cb_metrics.dir/stats.cc.o.d"
  "CMakeFiles/cb_metrics.dir/table.cc.o"
  "CMakeFiles/cb_metrics.dir/table.cc.o.d"
  "libcb_metrics.a"
  "libcb_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

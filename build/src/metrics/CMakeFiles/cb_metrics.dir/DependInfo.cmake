
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/boxplot.cc" "src/metrics/CMakeFiles/cb_metrics.dir/boxplot.cc.o" "gcc" "src/metrics/CMakeFiles/cb_metrics.dir/boxplot.cc.o.d"
  "/root/repo/src/metrics/counters.cc" "src/metrics/CMakeFiles/cb_metrics.dir/counters.cc.o" "gcc" "src/metrics/CMakeFiles/cb_metrics.dir/counters.cc.o.d"
  "/root/repo/src/metrics/csv.cc" "src/metrics/CMakeFiles/cb_metrics.dir/csv.cc.o" "gcc" "src/metrics/CMakeFiles/cb_metrics.dir/csv.cc.o.d"
  "/root/repo/src/metrics/heatmap.cc" "src/metrics/CMakeFiles/cb_metrics.dir/heatmap.cc.o" "gcc" "src/metrics/CMakeFiles/cb_metrics.dir/heatmap.cc.o.d"
  "/root/repo/src/metrics/json.cc" "src/metrics/CMakeFiles/cb_metrics.dir/json.cc.o" "gcc" "src/metrics/CMakeFiles/cb_metrics.dir/json.cc.o.d"
  "/root/repo/src/metrics/stats.cc" "src/metrics/CMakeFiles/cb_metrics.dir/stats.cc.o" "gcc" "src/metrics/CMakeFiles/cb_metrics.dir/stats.cc.o.d"
  "/root/repo/src/metrics/table.cc" "src/metrics/CMakeFiles/cb_metrics.dir/table.cc.o" "gcc" "src/metrics/CMakeFiles/cb_metrics.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/cb_tee.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

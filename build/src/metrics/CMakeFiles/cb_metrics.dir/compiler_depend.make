# Empty compiler generated dependencies file for cb_metrics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcb_metrics.a"
)

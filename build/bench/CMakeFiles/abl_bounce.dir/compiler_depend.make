# Empty compiler generated dependencies file for abl_bounce.
# This may be replaced when dependencies are built.

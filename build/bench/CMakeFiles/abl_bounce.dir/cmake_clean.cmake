file(REMOVE_RECURSE
  "CMakeFiles/abl_bounce.dir/abl_bounce.cc.o"
  "CMakeFiles/abl_bounce.dir/abl_bounce.cc.o.d"
  "abl_bounce"
  "abl_bounce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bounce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

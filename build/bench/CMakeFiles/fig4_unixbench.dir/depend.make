# Empty dependencies file for fig4_unixbench.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_unixbench.dir/fig4_unixbench.cc.o"
  "CMakeFiles/fig4_unixbench.dir/fig4_unixbench.cc.o.d"
  "fig4_unixbench"
  "fig4_unixbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_unixbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

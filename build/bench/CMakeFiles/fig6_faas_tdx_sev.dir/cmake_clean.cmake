file(REMOVE_RECURSE
  "CMakeFiles/fig6_faas_tdx_sev.dir/fig6_faas_tdx_sev.cc.o"
  "CMakeFiles/fig6_faas_tdx_sev.dir/fig6_faas_tdx_sev.cc.o.d"
  "fig6_faas_tdx_sev"
  "fig6_faas_tdx_sev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_faas_tdx_sev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig6_faas_tdx_sev.
# This may be replaced when dependencies are built.

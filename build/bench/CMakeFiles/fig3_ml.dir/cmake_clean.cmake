file(REMOVE_RECURSE
  "CMakeFiles/fig3_ml.dir/fig3_ml.cc.o"
  "CMakeFiles/fig3_ml.dir/fig3_ml.cc.o.d"
  "fig3_ml"
  "fig3_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig3_ml.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig7_faas_cca.
# This may be replaced when dependencies are built.

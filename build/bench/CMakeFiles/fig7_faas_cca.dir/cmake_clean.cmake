file(REMOVE_RECURSE
  "CMakeFiles/fig7_faas_cca.dir/fig7_faas_cca.cc.o"
  "CMakeFiles/fig7_faas_cca.dir/fig7_faas_cca.cc.o.d"
  "fig7_faas_cca"
  "fig7_faas_cca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_faas_cca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tab_dbms.dir/tab_dbms.cc.o"
  "CMakeFiles/tab_dbms.dir/tab_dbms.cc.o.d"
  "tab_dbms"
  "tab_dbms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_dbms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tab_dbms.
# This may be replaced when dependencies are built.

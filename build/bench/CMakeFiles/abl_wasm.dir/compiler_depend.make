# Empty compiler generated dependencies file for abl_wasm.
# This may be replaced when dependencies are built.

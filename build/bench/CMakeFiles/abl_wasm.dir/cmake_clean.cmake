file(REMOVE_RECURSE
  "CMakeFiles/abl_wasm.dir/abl_wasm.cc.o"
  "CMakeFiles/abl_wasm.dir/abl_wasm.cc.o.d"
  "abl_wasm"
  "abl_wasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_wasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

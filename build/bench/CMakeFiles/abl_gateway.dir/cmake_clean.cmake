file(REMOVE_RECURSE
  "CMakeFiles/abl_gateway.dir/abl_gateway.cc.o"
  "CMakeFiles/abl_gateway.dir/abl_gateway.cc.o.d"
  "abl_gateway"
  "abl_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

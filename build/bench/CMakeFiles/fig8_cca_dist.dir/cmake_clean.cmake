file(REMOVE_RECURSE
  "CMakeFiles/fig8_cca_dist.dir/fig8_cca_dist.cc.o"
  "CMakeFiles/fig8_cca_dist.dir/fig8_cca_dist.cc.o.d"
  "fig8_cca_dist"
  "fig8_cca_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cca_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

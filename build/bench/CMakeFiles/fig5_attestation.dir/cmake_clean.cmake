file(REMOVE_RECURSE
  "CMakeFiles/fig5_attestation.dir/fig5_attestation.cc.o"
  "CMakeFiles/fig5_attestation.dir/fig5_attestation.cc.o.d"
  "fig5_attestation"
  "fig5_attestation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig5_attestation.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for abl_firmware.
# This may be replaced when dependencies are built.

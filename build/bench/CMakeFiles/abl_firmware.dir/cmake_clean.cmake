file(REMOVE_RECURSE
  "CMakeFiles/abl_firmware.dir/abl_firmware.cc.o"
  "CMakeFiles/abl_firmware.dir/abl_firmware.cc.o.d"
  "abl_firmware"
  "abl_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/abl_colocation.dir/abl_colocation.cc.o"
  "CMakeFiles/abl_colocation.dir/abl_colocation.cc.o.d"
  "abl_colocation"
  "abl_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

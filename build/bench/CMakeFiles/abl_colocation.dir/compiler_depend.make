# Empty compiler generated dependencies file for abl_colocation.
# This may be replaced when dependencies are built.

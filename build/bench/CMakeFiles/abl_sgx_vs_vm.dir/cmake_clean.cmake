file(REMOVE_RECURSE
  "CMakeFiles/abl_sgx_vs_vm.dir/abl_sgx_vs_vm.cc.o"
  "CMakeFiles/abl_sgx_vs_vm.dir/abl_sgx_vs_vm.cc.o.d"
  "abl_sgx_vs_vm"
  "abl_sgx_vs_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sgx_vs_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for abl_sgx_vs_vm.
# This may be replaced when dependencies are built.

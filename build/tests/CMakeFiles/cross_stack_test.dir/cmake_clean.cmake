file(REMOVE_RECURSE
  "CMakeFiles/cross_stack_test.dir/cross_stack_test.cc.o"
  "CMakeFiles/cross_stack_test.dir/cross_stack_test.cc.o.d"
  "cross_stack_test"
  "cross_stack_test.pdb"
  "cross_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

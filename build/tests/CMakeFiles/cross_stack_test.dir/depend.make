# Empty dependencies file for cross_stack_test.
# This may be replaced when dependencies are built.

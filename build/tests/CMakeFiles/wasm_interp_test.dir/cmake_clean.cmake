file(REMOVE_RECURSE
  "CMakeFiles/wasm_interp_test.dir/wasm_interp_test.cc.o"
  "CMakeFiles/wasm_interp_test.dir/wasm_interp_test.cc.o.d"
  "wasm_interp_test"
  "wasm_interp_test.pdb"
  "wasm_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasm_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

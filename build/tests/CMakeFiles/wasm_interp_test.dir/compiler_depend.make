# Empty compiler generated dependencies file for wasm_interp_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/net_http_test.dir/net_http_test.cc.o"
  "CMakeFiles/net_http_test.dir/net_http_test.cc.o.d"
  "net_http_test"
  "net_http_test.pdb"
  "net_http_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_http_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for net_http_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vm_exec_context_test.dir/vm_exec_context_test.cc.o"
  "CMakeFiles/vm_exec_context_test.dir/vm_exec_context_test.cc.o.d"
  "vm_exec_context_test"
  "vm_exec_context_test.pdb"
  "vm_exec_context_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_exec_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

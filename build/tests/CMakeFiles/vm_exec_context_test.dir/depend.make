# Empty dependencies file for vm_exec_context_test.
# This may be replaced when dependencies are built.

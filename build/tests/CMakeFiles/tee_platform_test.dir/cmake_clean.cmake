file(REMOVE_RECURSE
  "CMakeFiles/tee_platform_test.dir/tee_platform_test.cc.o"
  "CMakeFiles/tee_platform_test.dir/tee_platform_test.cc.o.d"
  "tee_platform_test"
  "tee_platform_test.pdb"
  "tee_platform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tee_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

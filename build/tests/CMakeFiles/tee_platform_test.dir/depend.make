# Empty dependencies file for tee_platform_test.
# This may be replaced when dependencies are built.

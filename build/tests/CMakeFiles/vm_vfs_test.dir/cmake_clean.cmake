file(REMOVE_RECURSE
  "CMakeFiles/vm_vfs_test.dir/vm_vfs_test.cc.o"
  "CMakeFiles/vm_vfs_test.dir/vm_vfs_test.cc.o.d"
  "vm_vfs_test"
  "vm_vfs_test.pdb"
  "vm_vfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_vfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for vm_vfs_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/core_gateway_test.dir/core_gateway_test.cc.o"
  "CMakeFiles/core_gateway_test.dir/core_gateway_test.cc.o.d"
  "core_gateway_test"
  "core_gateway_test.pdb"
  "core_gateway_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_gateway_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/wl_faas_test.dir/wl_faas_test.cc.o"
  "CMakeFiles/wl_faas_test.dir/wl_faas_test.cc.o.d"
  "wl_faas_test"
  "wl_faas_test.pdb"
  "wl_faas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_faas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for attest_realm_token_test.
# This may be replaced when dependencies are built.

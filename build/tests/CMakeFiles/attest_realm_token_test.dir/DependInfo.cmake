
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/attest_realm_token_test.cc" "tests/CMakeFiles/attest_realm_token_test.dir/attest_realm_token_test.cc.o" "gcc" "tests/CMakeFiles/attest_realm_token_test.dir/attest_realm_token_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/wasm/CMakeFiles/cb_wasm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wl/CMakeFiles/cb_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/cb_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/attest/CMakeFiles/cb_attest.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/cb_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/cb_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

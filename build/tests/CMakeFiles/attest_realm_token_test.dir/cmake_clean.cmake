file(REMOVE_RECURSE
  "CMakeFiles/attest_realm_token_test.dir/attest_realm_token_test.cc.o"
  "CMakeFiles/attest_realm_token_test.dir/attest_realm_token_test.cc.o.d"
  "attest_realm_token_test"
  "attest_realm_token_test.pdb"
  "attest_realm_token_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attest_realm_token_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for attest_chain_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/attest_chain_test.dir/attest_chain_test.cc.o"
  "CMakeFiles/attest_chain_test.dir/attest_chain_test.cc.o.d"
  "attest_chain_test"
  "attest_chain_test.pdb"
  "attest_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attest_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/wl_db_test.dir/wl_db_test.cc.o"
  "CMakeFiles/wl_db_test.dir/wl_db_test.cc.o.d"
  "wl_db_test"
  "wl_db_test.pdb"
  "wl_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

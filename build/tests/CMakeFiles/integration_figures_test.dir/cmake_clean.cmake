file(REMOVE_RECURSE
  "CMakeFiles/integration_figures_test.dir/integration_figures_test.cc.o"
  "CMakeFiles/integration_figures_test.dir/integration_figures_test.cc.o.d"
  "integration_figures_test"
  "integration_figures_test.pdb"
  "integration_figures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_figures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rt_runtime_test.dir/rt_runtime_test.cc.o"
  "CMakeFiles/rt_runtime_test.dir/rt_runtime_test.cc.o.d"
  "rt_runtime_test"
  "rt_runtime_test.pdb"
  "rt_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

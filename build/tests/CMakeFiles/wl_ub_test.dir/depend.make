# Empty dependencies file for wl_ub_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wl_ub_test.dir/wl_ub_test.cc.o"
  "CMakeFiles/wl_ub_test.dir/wl_ub_test.cc.o.d"
  "wl_ub_test"
  "wl_ub_test.pdb"
  "wl_ub_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_ub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for time_breakdown_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/time_breakdown_test.dir/time_breakdown_test.cc.o"
  "CMakeFiles/time_breakdown_test.dir/time_breakdown_test.cc.o.d"
  "time_breakdown_test"
  "time_breakdown_test.pdb"
  "time_breakdown_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_breakdown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

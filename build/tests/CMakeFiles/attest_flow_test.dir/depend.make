# Empty dependencies file for attest_flow_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/attest_flow_test.dir/attest_flow_test.cc.o"
  "CMakeFiles/attest_flow_test.dir/attest_flow_test.cc.o.d"
  "attest_flow_test"
  "attest_flow_test.pdb"
  "attest_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attest_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

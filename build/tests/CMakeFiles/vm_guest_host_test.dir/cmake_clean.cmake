file(REMOVE_RECURSE
  "CMakeFiles/vm_guest_host_test.dir/vm_guest_host_test.cc.o"
  "CMakeFiles/vm_guest_host_test.dir/vm_guest_host_test.cc.o.d"
  "vm_guest_host_test"
  "vm_guest_host_test.pdb"
  "vm_guest_host_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_guest_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/attest_crypto_test.dir/attest_crypto_test.cc.o"
  "CMakeFiles/attest_crypto_test.dir/attest_crypto_test.cc.o.d"
  "attest_crypto_test"
  "attest_crypto_test.pdb"
  "attest_crypto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attest_crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/wl_ml_test.dir/wl_ml_test.cc.o"
  "CMakeFiles/wl_ml_test.dir/wl_ml_test.cc.o.d"
  "wl_ml_test"
  "wl_ml_test.pdb"
  "wl_ml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for wl_ml_test.
# This may be replaced when dependencies are built.

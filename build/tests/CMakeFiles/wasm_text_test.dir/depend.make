# Empty dependencies file for wasm_text_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wasm_text_test.dir/wasm_text_test.cc.o"
  "CMakeFiles/wasm_text_test.dir/wasm_text_test.cc.o.d"
  "wasm_text_test"
  "wasm_text_test.pdb"
  "wasm_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasm_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

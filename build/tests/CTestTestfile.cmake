# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_rng_test[1]_include.cmake")
include("/root/repo/build/tests/sim_cache_test[1]_include.cmake")
include("/root/repo/build/tests/sim_costs_test[1]_include.cmake")
include("/root/repo/build/tests/tee_platform_test[1]_include.cmake")
include("/root/repo/build/tests/vm_exec_context_test[1]_include.cmake")
include("/root/repo/build/tests/vm_vfs_test[1]_include.cmake")
include("/root/repo/build/tests/vm_guest_host_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/attest_crypto_test[1]_include.cmake")
include("/root/repo/build/tests/attest_chain_test[1]_include.cmake")
include("/root/repo/build/tests/attest_flow_test[1]_include.cmake")
include("/root/repo/build/tests/rt_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/wl_faas_test[1]_include.cmake")
include("/root/repo/build/tests/wl_ml_test[1]_include.cmake")
include("/root/repo/build/tests/wl_db_test[1]_include.cmake")
include("/root/repo/build/tests/wl_ub_test[1]_include.cmake")
include("/root/repo/build/tests/net_http_test[1]_include.cmake")
include("/root/repo/build/tests/net_router_test[1]_include.cmake")
include("/root/repo/build/tests/net_network_test[1]_include.cmake")
include("/root/repo/build/tests/core_config_test[1]_include.cmake")
include("/root/repo/build/tests/core_gateway_test[1]_include.cmake")
include("/root/repo/build/tests/integration_figures_test[1]_include.cmake")
include("/root/repo/build/tests/wasm_interp_test[1]_include.cmake")
include("/root/repo/build/tests/wasm_text_test[1]_include.cmake")
include("/root/repo/build/tests/model_properties_test[1]_include.cmake")
include("/root/repo/build/tests/cross_stack_test[1]_include.cmake")
include("/root/repo/build/tests/time_breakdown_test[1]_include.cmake")
include("/root/repo/build/tests/attest_realm_token_test[1]_include.cmake")

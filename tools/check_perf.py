#!/usr/bin/env python3
"""Perf-trajectory gate for the self-benchmarks.

Compares a fresh BENCH_<name>.json against its committed baseline
(bench/baseline/BENCH_<name>.baseline.json) and fails CI when the bench
regresses. The gating config is selected by the "bench" field of the
current snapshot, so one script serves every gated bench.

Two classes of metric, treated differently:

  - Gated metrics are machine-independent (speedup ratios measured in the
    same process, or pure simulation facts like keyspace-movement bounds
    and virtual-time latency ratios): a slower runner does not move them.
    Each is HARD-gated against baseline drift in its stated direction —
    "higher" is better (fails when it drops more than TOLERANCE below
    baseline), "lower" is better (fails when it rises more than TOLERANCE
    above). Absolute floors/ceilings add baseline-independent backstops
    for the headline claims, which the benches also assert internally.

  - Advisory metrics (events/sec, wall clocks, raw counters) are machine
    or size facts. They are compared and printed for the trajectory
    record, but only warn.

The bench's own exit checks ride along in the JSON; checks.failed != 0
fails here too, so a green perf job implies every in-bench invariant
(zero lost requests, ordering claims, checksums) held.
"""

import json
import sys

TOLERANCE = 0.25  # fail when a gated metric drifts >25% the wrong way

BENCHES = {
    "sim_engine": {
        # Speedup ratios: wheel vs the legacy/reference engines measured
        # in the same process on the same core seconds.
        "gated": {
            "mix_speedup_vs_reference": "higher",
            "scale_speedup_vs_legacy": "higher",
            "scale_speedup_vs_reference": "higher",
        },
        # The redesign's headline claim, independent of baseline drift.
        "floors": {"scale_speedup_vs_legacy": 5.0},
        "ceilings": {},
        "advisory": [
            "mix_wheel_events_per_sec",
            "mix_reference_events_per_sec",
            "scale_wheel_events_per_sec",
            "scale_legacy_events_per_sec",
            "scale_reference_events_per_sec",
            "cluster_cell_simulate_s",
        ],
    },
    "shard_churn": {
        # Pure simulation facts (virtual-time ratios over fixed seeds).
        "gated": {
            # Worst keyspace fraction moved by one membership event, times
            # the live shard count — ~1 for a minimal-disruption ring.
            "moved_x_n_worst": "lower",
            # Queue-only overload p99 / early-reject overload p99, worst
            # cell: how much tail the admission guard buys.
            "overload_p99_ratio_min": "higher",
        },
        # The bench's two headline claims, also asserted in-bench.
        "floors": {"overload_p99_ratio_min": 1.0},
        "ceilings": {"moved_x_n_worst": 1.5},
        "advisory": [
            "handoff_forwarded_total",
            "handoff_drained_total",
        ],
    },
    "elastic_control": {
        # Pure simulation facts (virtual-time ratios over fixed seeds,
        # paired variants sharing identical arrival streams).
        "gated": {
            # Worst secure-cell reactive-minus-predictive time-to-absorb:
            # how much sooner forecast-ahead ordering ends rejections.
            "tta_margin_min_s": "higher",
            # Predictive's slowest secure absorption — the time-to-absorb
            # ceiling (dominated by cca's ~68 s cold start).
            "tta_pred_worst_s": "lower",
            # Worst secure-cell reactive-minus-predictive transition p99.
            "p99_margin_min_ms": "higher",
            # Predictive / reactive warm replica-seconds, worst secure
            # cell — the over-provisioning cost of ordering ahead.
            "replica_s_ratio_worst": "lower",
            # Brakes-off / braked membership events, worst cell.
            "osc_brake_ratio_min": "higher",
        },
        # The bench's headline claims, also asserted in-bench.
        "floors": {
            "tta_margin_min_s": 0.0,
            "p99_margin_min_ms": 0.0,
            "osc_brake_ratio_min": 1.0,
        },
        "ceilings": {
            "tta_pred_worst_s": 120.0,
            "replica_s_ratio_worst": 1.25,
        },
        "advisory": [
            "storm_join_crashes_total",
            "storm_join_retries_total",
            "storm_attest_failures_total",
            "storm_joins_completed_total",
            "joins_completed_total",
        ],
    },
    "shard_hedge": {
        # Pure simulation facts (virtual-time ratios over fixed seeds).
        "gated": {
            # Worst secure-cell hedged-warm p99 / reactive p99 under the
            # gray-slow window — below 1.0 means hedging paid for itself.
            "hedged_vs_reactive_p99_ratio_worst": "lower",
            # Worst warm-cell fraction of launched hedges that lost the
            # race — the duplicated-work price of the tail rescue.
            "hedge_waste_ratio_max": "lower",
        },
        # The bench's headline claims, also asserted in-bench: hedging
        # must beat reactive waiting in every secure warm cell, and the
        # duplicated work must stay a small fraction of launches.
        "floors": {},
        "ceilings": {
            "hedged_vs_reactive_p99_ratio_worst": 1.0,
            "hedge_waste_ratio_max": 0.5,
        },
        "advisory": [
            "tdx_warm_saved_ms",
            "tdx_cold_declined",
        ],
    },
}


def main() -> int:
    if len(sys.argv) != 3:
        print("usage: check_perf.py <current.json> <baseline.json>",
              file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        current = json.load(f)
    with open(sys.argv[2], encoding="utf-8") as f:
        baseline = json.load(f)

    bench = current.get("bench")
    if bench not in BENCHES:
        print(f"no gating config for bench '{bench}'", file=sys.stderr)
        return 2
    if baseline.get("bench") != bench:
        print(f"baseline is for '{baseline.get('bench')}', current is for "
              f"'{bench}'", file=sys.stderr)
        return 2
    cfg = BENCHES[bench]

    cur = current.get("metrics", {})
    base = baseline.get("metrics", {})
    failures = []

    failed_checks = current.get("checks", {}).get("failed", 0)
    if failed_checks:
        for what in current["checks"].get("failures", []):
            failures.append(f"bench exit check failed: {what}")

    print(f"bench: {bench}")
    print(f"{'metric':<36} {'baseline':>12} {'current':>12}  verdict")
    for key, direction in cfg["gated"].items():
        b, c = base.get(key), cur.get(key)
        if b is None or c is None:
            failures.append(f"{key}: missing from "
                            f"{'baseline' if b is None else 'current'} run")
            continue
        if direction == "higher":
            limit = b * (1.0 - TOLERANCE)
            drifted = c < limit
            drift_msg = (f"{key}: {c:.3f} is more than {TOLERANCE:.0%} below "
                         f"baseline {b:.3f} (floor {limit:.3f})")
        else:
            limit = b * (1.0 + TOLERANCE)
            drifted = c > limit
            drift_msg = (f"{key}: {c:.3f} is more than {TOLERANCE:.0%} above "
                         f"baseline {b:.3f} (ceiling {limit:.3f})")
        floor = cfg["floors"].get(key)
        ceiling = cfg["ceilings"].get(key)
        ok = (not drifted and (floor is None or c >= floor) and
              (ceiling is None or c <= ceiling))
        verdict = "ok" if ok else "REGRESSION"
        print(f"{key:<36} {b:>12.3f} {c:>12.3f}  {verdict}")
        if drifted:
            failures.append(drift_msg)
        if floor is not None and c < floor:
            failures.append(f"{key}: {c:.3f} is below the hard floor {floor}")
        if ceiling is not None and c > ceiling:
            failures.append(
                f"{key}: {c:.3f} is above the hard ceiling {ceiling}")

    for key in cfg["advisory"]:
        b, c = base.get(key), cur.get(key)
        if b is None or c is None:
            continue
        drift = (c - b) / b if b else 0.0
        note = "advisory" if abs(drift) <= TOLERANCE else \
            f"advisory, {drift:+.0%} (not gated)"
        print(f"{key:<36} {b:>12.0f} {c:>12.0f}  {note}")

    if failures:
        print(f"\n{len(failures)} perf gate failure(s):", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        return 1
    print("\nperf trajectory ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())

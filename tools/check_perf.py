#!/usr/bin/env python3
"""Perf-trajectory gate for the engine self-benchmark.

Compares a fresh BENCH_sim_engine.json against the committed baseline
(bench/baseline/BENCH_sim_engine.baseline.json) and fails CI when the
engine regresses.

Two classes of metric, treated differently:

  - Speedup ratios (wheel vs the legacy/reference engines measured in the
    same process on the same core seconds) are machine-independent: a
    slower runner slows both sides. These are HARD-gated — a ratio more
    than TOLERANCE below its baseline fails, and scale_speedup_vs_legacy
    additionally has an absolute floor of 5.0 (the redesign's headline
    claim, also asserted inside the bench itself).

  - Absolute numbers (events/sec, wall clocks) are machine facts. They are
    compared and printed for the trajectory record, but only warn.

The bench's own exit checks ride along in the JSON; checks.failed != 0
fails here too, so a green perf job implies the checksums matched and the
event order was equivalent across engines.
"""

import json
import sys

TOLERANCE = 0.25  # fail when a gated ratio drops >25% below baseline

# Machine-independent ratios: hard-gated against baseline * (1 - TOLERANCE).
GATED_RATIOS = [
    "mix_speedup_vs_reference",
    "scale_speedup_vs_legacy",
    "scale_speedup_vs_reference",
]

# Absolute floors independent of any baseline drift.
HARD_FLOORS = {
    "scale_speedup_vs_legacy": 5.0,
}

# Machine-dependent absolutes: tracked and printed, never fatal.
ADVISORY = [
    "mix_wheel_events_per_sec",
    "mix_reference_events_per_sec",
    "scale_wheel_events_per_sec",
    "scale_legacy_events_per_sec",
    "scale_reference_events_per_sec",
    "cluster_cell_simulate_s",
]


def main() -> int:
    if len(sys.argv) != 3:
        print("usage: check_perf.py <current.json> <baseline.json>",
              file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        current = json.load(f)
    with open(sys.argv[2], encoding="utf-8") as f:
        baseline = json.load(f)

    cur = current.get("metrics", {})
    base = baseline.get("metrics", {})
    failures = []

    failed_checks = current.get("checks", {}).get("failed", 0)
    if failed_checks:
        for what in current["checks"].get("failures", []):
            failures.append(f"bench exit check failed: {what}")

    print(f"{'metric':<36} {'baseline':>12} {'current':>12}  verdict")
    for key in GATED_RATIOS:
        b, c = base.get(key), cur.get(key)
        if b is None or c is None:
            failures.append(f"{key}: missing from "
                            f"{'baseline' if b is None else 'current'} run")
            continue
        floor = b * (1.0 - TOLERANCE)
        hard = HARD_FLOORS.get(key)
        ok = c >= floor and (hard is None or c >= hard)
        verdict = "ok" if ok else "REGRESSION"
        print(f"{key:<36} {b:>12.2f} {c:>12.2f}  {verdict}")
        if c < floor:
            failures.append(
                f"{key}: {c:.2f} is more than {TOLERANCE:.0%} below "
                f"baseline {b:.2f} (floor {floor:.2f})")
        if hard is not None and c < hard:
            failures.append(f"{key}: {c:.2f} is below the hard floor {hard}")

    for key in ADVISORY:
        b, c = base.get(key), cur.get(key)
        if b is None or c is None:
            continue
        drift = (c - b) / b if b else 0.0
        note = "advisory" if abs(drift) <= TOLERANCE else \
            f"advisory, {drift:+.0%} (machine fact, not gated)"
        print(f"{key:<36} {b:>12.0f} {c:>12.0f}  {note}")

    if failures:
        print(f"\n{len(failures)} perf gate failure(s):", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        return 1
    print("\nperf trajectory ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#include "obs/export.h"

#include <cstdio>

#include "metrics/csv.h"
#include "metrics/json.h"
#include "metrics/table.h"

namespace confbench::obs {

namespace {

void emit_trace_events(metrics::JsonWriter& w, const Trace& trace) {
  const auto tid = static_cast<std::int64_t>(trace.id());
  // Thread-name metadata: the trace renders as a named track.
  w.begin_object();
  w.key("ph").value("M");
  w.key("name").value("thread_name");
  w.key("pid").value(1);
  w.key("tid").value(tid);
  w.key("args");
  w.begin_object();
  w.key("name").value(trace.name());
  w.end_object();
  w.end_object();

  for (const Span& s : trace.spans()) {
    w.begin_object();
    w.key("ph").value("X");
    w.key("name").value(s.name);
    w.key("cat").value(std::string(to_string(s.category)));
    w.key("pid").value(1);
    w.key("tid").value(tid);
    w.key("ts").value(s.start_ns / 1e3);   // trace-event ts is microseconds
    w.key("dur").value(s.duration_ns() / 1e3);
    w.key("args");
    w.begin_object();
    for (const auto& [k, v] : s.attrs) w.key(k).value(v);
    for (std::size_t c = 0; c < s.charges.size(); ++c) {
      const ChargeStat& stat = s.charges[c];
      if (stat.count == 0 && stat.total_ns == 0) continue;
      w.key("charge." + std::string(to_string(static_cast<Category>(c))) +
            "_ns")
          .value(stat.total_ns);
    }
    for (const auto& [name, stat] : s.notes) {
      w.key("note." + name + "_ns").value(stat.total_ns);
      w.key("note." + name + "_n").value(stat.count);
    }
    w.end_object();
    w.end_object();
  }

  for (const Instant& i : trace.instants()) {
    w.begin_object();
    w.key("ph").value("i");
    w.key("name").value(i.name);
    w.key("pid").value(1);
    w.key("tid").value(tid);
    w.key("ts").value(i.t / 1e3);
    w.key("s").value("t");  // thread-scoped instant
    w.key("args");
    w.begin_object();
    for (const auto& [k, v] : i.attrs) w.key(k).value(v);
    w.end_object();
    w.end_object();
  }
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer) {
  metrics::JsonWriter w;
  w.begin_array();
  for (const Trace& t : tracer.traces()) emit_trace_events(w, t);
  w.end_array();
  return w.str();
}

std::string chrome_trace_json(const Trace& trace) {
  metrics::JsonWriter w;
  w.begin_array();
  emit_trace_events(w, trace);
  w.end_array();
  return w.str();
}

std::string spans_csv(const Tracer& tracer) {
  metrics::CsvWriter csv({"trace", "span", "parent", "category", "name",
                          "start_ns", "dur_ns"});
  for (const Trace& t : tracer.traces()) {
    for (const Span& s : t.spans()) {
      csv.add_row({std::to_string(t.id()), std::to_string(s.id),
                   s.parent == Span::kNoParent ? ""
                                               : std::to_string(s.parent),
                   std::string(to_string(s.category)), s.name,
                   metrics::Table::num(s.start_ns, 1),
                   metrics::Table::num(s.duration_ns(), 1)});
    }
  }
  return csv.str();
}

std::string charges_csv(const Tracer& tracer) {
  metrics::CsvWriter csv({"trace", "trace_name", "category", "total_ns",
                          "count"});
  for (const Trace& t : tracer.traces()) {
    const auto& totals = t.charge_totals();
    for (std::size_t c = 0; c < totals.size(); ++c) {
      if (totals[c].count == 0 && totals[c].total_ns == 0) continue;
      csv.add_row({std::to_string(t.id()), t.name(),
                   std::string(to_string(static_cast<Category>(c))),
                   metrics::Table::num(totals[c].total_ns, 1),
                   metrics::Table::num(totals[c].count, 2)});
    }
  }
  return csv.str();
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const int rc = std::fclose(f);
  return n == content.size() && rc == 0;
}

}  // namespace confbench::obs

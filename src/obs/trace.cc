#include "obs/trace.h"

#include <cassert>

namespace confbench::obs {

namespace detail {
Trace* g_current_trace = nullptr;
}  // namespace detail

std::string_view to_string(Category c) {
  switch (c) {
    case Category::kInvoke:
      return "invoke";
    case Category::kRoute:
      return "route";
    case Category::kTransport:
      return "transport";
    case Category::kHostHandle:
      return "host";
    case Category::kBootstrap:
      return "bootstrap";
    case Category::kFunction:
      return "function";
    case Category::kGc:
      return "gc";
    case Category::kCompute:
      return "compute";
    case Category::kMemory:
      return "memory";
    case Category::kOs:
      return "os";
    case Category::kVmExit:
      return "vm_exit";
    case Category::kIo:
      return "io";
    case Category::kBounce:
      return "bounce";
    case Category::kNetwork:
      return "network";
    case Category::kPcs:
      return "pcs";
    case Category::kQueueWait:
      return "queue_wait";
    case Category::kService:
      return "service";
    case Category::kBounceWait:
      return "bounce_wait";
    case Category::kColdStart:
      return "cold_start";
    case Category::kRetryBackoff:
      return "retry_backoff";
    case Category::kFailover:
      return "failover";
    case Category::kFault:
      return "fault";
    case Category::kRecovery:
      return "recovery";
    case Category::kAttest:
      return "attest";
    case Category::kHedge:
      return "hedge";
    case Category::kMigration:
      return "migration";
    case Category::kShard:
      return "shard";
    case Category::kOther:
      return "other";
    case Category::kCount:
      break;
  }
  return "?";
}

std::uint32_t Trace::begin_span(Category c, std::string name) {
  Span s;
  s.id = static_cast<std::uint32_t>(spans_.size());
  s.parent = open_.empty() ? Span::kNoParent : open_.back();
  s.category = c;
  s.name = std::move(name);
  s.start_ns = now_;
  s.end_ns = now_;
  spans_.push_back(std::move(s));
  open_.push_back(spans_.back().id);
  return spans_.back().id;
}

void Trace::end_span(std::uint32_t id) {
  assert(!open_.empty() && open_.back() == id && "spans must close LIFO");
  if (open_.empty() || open_.back() != id) return;  // tolerate in release
  spans_[id].end_ns = now_;
  open_.pop_back();
}

void Trace::set_attr(std::uint32_t id, std::string key, std::string value) {
  if (id < spans_.size())
    spans_[id].attrs.emplace_back(std::move(key), std::move(value));
}

std::uint32_t Trace::add_span(Category c, std::string name, sim::Ns start,
                              sim::Ns end, std::uint32_t parent) {
  Span s;
  s.id = static_cast<std::uint32_t>(spans_.size());
  s.parent = parent;
  s.category = c;
  s.name = std::move(name);
  s.start_ns = start;
  s.end_ns = end;
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

Span& Trace::innermost() {
  if (open_.empty()) {
    // Charges outside any span land on a synthetic root covering the whole
    // timeline, so no virtual time is ever lost from the totals.
    begin_span(Category::kOther, "(trace)");
  }
  return spans_[open_.back()];
}

void Trace::charge(Category c, sim::Ns t, double count) {
  Span& s = innermost();
  auto& stat = s.charges[static_cast<std::size_t>(c)];
  stat.total_ns += t;
  stat.count += count;
  auto& tot = totals_[static_cast<std::size_t>(c)];
  tot.total_ns += t;
  tot.count += count;
  now_ += t;
  // Keep every open span's end watermark current so an assertion/exception
  // path still exports sane (if unclosed) spans.
  for (const std::uint32_t id : open_) spans_[id].end_ns = now_;
}

void Trace::note(std::string_view name, sim::Ns t, double count) {
  Span& s = innermost();
  auto it = s.notes.find(name);
  if (it == s.notes.end())
    it = s.notes.emplace(std::string(name), ChargeStat{}).first;
  it->second.total_ns += t;
  it->second.count += count;
}

void Trace::instant(std::string name,
                    std::vector<std::pair<std::string, std::string>> attrs) {
  instants_.push_back({std::move(name), now_, std::move(attrs)});
}

void Trace::instant_at(std::string name, sim::Ns t,
                       std::vector<std::pair<std::string, std::string>> attrs) {
  instants_.push_back({std::move(name), t, std::move(attrs)});
}

std::map<std::string, ChargeStat, std::less<>> Trace::note_totals() const {
  std::map<std::string, ChargeStat, std::less<>> out;
  for (const Span& s : spans_) {
    for (const auto& [name, stat] : s.notes) {
      auto& dst = out[name];
      dst.total_ns += stat.total_ns;
      dst.count += stat.count;
    }
  }
  return out;
}

Trace& Tracer::start_trace(std::string name) {
  traces_.emplace_back(++next_id_, std::move(name));
  return traces_.back();
}

Trace* Tracer::find(std::uint64_t id) {
  for (Trace& t : traces_)
    if (t.id() == id) return &t;
  return nullptr;
}

const Trace* Tracer::find(std::uint64_t id) const {
  for (const Trace& t : traces_)
    if (t.id() == id) return &t;
  return nullptr;
}

}  // namespace confbench::obs

// Central registry of named counters, gauges and histograms.
//
// Components publish operational metrics (invocation counts, error classes,
// autoscaler decisions, latency distributions) under stable dotted names.
// Storage is ordered maps, so every export iterates in byte-stable key
// order; histograms reuse metrics::LogHistogram, so registry snapshots from
// different runs or shards merge exactly.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "metrics/histogram.h"

namespace confbench::obs {

class Registry {
 public:
  /// Returns the counter registered under `name`, creating it at zero.
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  /// Returns the gauge registered under `name`, creating it at zero.
  double& gauge(const std::string& name) { return gauges_[name]; }
  /// Returns the histogram registered under `name`, creating it empty.
  metrics::LogHistogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, metrics::LogHistogram>&
  histograms() const {
    return histograms_;
  }

  /// Adds every metric of `other` into this registry (counters and
  /// histograms add; gauges take the other's value — last writer wins).
  void merge(const Registry& other);

  /// Deterministic CSV snapshot: kind,name,count,sum,mean,p50,p99,max.
  /// Counters/gauges fill count (resp. sum) and leave quantiles empty.
  [[nodiscard]] std::string to_csv() const;

  void clear();

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, metrics::LogHistogram> histograms_;
};

}  // namespace confbench::obs

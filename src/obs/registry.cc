#include "obs/registry.h"

#include "metrics/csv.h"
#include "metrics/table.h"

namespace confbench::obs {

void Registry::merge(const Registry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) gauges_[name] = v;
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

std::string Registry::to_csv() const {
  metrics::CsvWriter csv({"kind", "name", "count", "sum", "mean", "p50",
                          "p99", "max"});
  for (const auto& [name, v] : counters_)
    csv.add_row({"counter", name, std::to_string(v), "", "", "", "", ""});
  for (const auto& [name, v] : gauges_)
    csv.add_row({"gauge", name, "", metrics::Table::num(v, 4), "", "", "",
                 ""});
  for (const auto& [name, h] : histograms_)
    csv.add_row({"histogram", name, std::to_string(h.count()),
                 metrics::Table::num(h.sum(), 1),
                 metrics::Table::num(h.mean(), 1),
                 metrics::Table::num(h.p50(), 1),
                 metrics::Table::num(h.p99(), 1),
                 metrics::Table::num(h.max(), 1)});
  return csv.str();
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace confbench::obs

// Deterministic end-to-end invocation tracing on the virtual clock.
//
// The aggregate metrics (mean ratios, heatmaps, tail percentiles) say *that*
// a secure VM is slower; a trace says *where inside one request* the secure
// overhead lives — bounce-buffer serialization vs. VM-exit classes vs. GC
// pauses vs. queueing. Every invocation gets a trace ID and a well-nested
// span tree (gateway route, transport attempts, host handling, runtime
// bootstrap, function body, GC pauses), and every cost-model charge is
// attributed to a fixed category on the innermost open span.
//
// Determinism contract: trace and span IDs are sequential counters, span
// timestamps derive exclusively from virtual-clock charges, and all
// containers iterate in insertion or key order — the same seed produces
// byte-identical exported JSON/CSV on every run, machine and compiler.
//
// Cost contract: tracing is ambient (a single global current-trace pointer;
// the simulation is single-threaded by design). When no trace is installed,
// every hook is one pointer load and a predictable branch, so tracing can
// stay compiled into every benchmark without changing its output.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/registry.h"
#include "sim/time.h"

namespace confbench::obs {

/// Fixed span/charge taxonomy. Categories partition virtual time: the sum
/// of per-category charges of a trace equals the trace's timeline span, so
/// secure-minus-normal deltas decompose exactly (bench/trace_attribution).
enum class Category : std::uint8_t {
  // Structural spans along the invocation path.
  kInvoke,      ///< gateway entry: whole request
  kRoute,       ///< function-db lookup + pool resolution
  kTransport,   ///< one transport attempt (selection + HTTP round trip)
  kHostHandle,  ///< host-agent request handling
  kBootstrap,   ///< runtime/interpreter startup inside the VM
  kFunction,    ///< function body execution
  kGc,          ///< collector pause inside the function
  // Charge categories (virtual-time attribution).
  kCompute,     ///< ALU/FP work incl. interpreter dispatch
  kMemory,      ///< cache hierarchy + DRAM + memory protection
  kOs,          ///< syscalls, faults, scheduling (exit time excluded)
  kVmExit,      ///< world-switch cost of VM exits, all classes
  kIo,          ///< block/network device time (bounce share excluded)
  kBounce,      ///< swiotlb/shared-page bounce-buffer copies and waits
  kNetwork,     ///< gateway-side fabric latency
  kPcs,         ///< attestation collateral round trips (PCS)
  // Cluster-simulation spans.
  kQueueWait,   ///< admission -> service start on a replica
  kService,     ///< parallel (per-worker) portion of service
  kBounceWait,  ///< waiting for a free bounce-buffer slot
  kColdStart,   ///< replica boot (firmware/kernel + page acceptance)
  // Failure/recovery spans (fault injection, retries, failover).
  kRetryBackoff,  ///< waiting out a retry backoff between attempts
  kFailover,      ///< re-dispatching a request off a failed replica
  kFault,         ///< an injected fault window (crash/hang/brownout/...)
  kRecovery,      ///< replica replacement: boot + (secure) re-attestation
  kAttest,        ///< attestation round during recovery
  // Tail-tolerance spans (hedged requests, live migration).
  kHedge,         ///< hedge fire/win/waste of a backup dispatch
  kMigration,     ///< live-migration phase (pre-copy/drain/blackout)
  kShard,         ///< sharded-frontend admission / cross-shard failover
  kOther,       ///< direct charges: sleeps, bootstrap constants, misc
  kCount
};

std::string_view to_string(Category c);

/// Accumulated virtual time + event count for one charge bucket.
struct ChargeStat {
  sim::Ns total_ns = 0;
  double count = 0;
};

struct Span {
  static constexpr std::uint32_t kNoParent = 0xFFFFFFFFu;

  std::uint32_t id = 0;
  std::uint32_t parent = kNoParent;
  Category category = Category::kOther;
  std::string name;
  sim::Ns start_ns = 0;
  sim::Ns end_ns = 0;
  /// Deterministically ordered key/value annotations (host, port, status).
  std::vector<std::pair<std::string, std::string>> attrs;
  /// Category charges attributed while this span was innermost.
  std::array<ChargeStat, static_cast<std::size_t>(Category::kCount)> charges{};
  /// Named fine-grained detail (per-exit-class time, encryption time).
  std::map<std::string, ChargeStat, std::less<>> notes;

  [[nodiscard]] sim::Ns duration_ns() const { return end_ns - start_ns; }
};

/// A point annotation on the trace timeline (pool pick, scaler decision).
struct Instant {
  std::string name;
  sim::Ns t = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// One invocation's span tree on its own virtual timeline.
///
/// The timeline starts at zero and advances only through charge(): sites
/// that charge virtual time to their local clocks mirror the same amount
/// here, so the trace clock is the exact unjittered sum of all cost-model
/// charges. Explicit-timestamp spans (add_span) serve the cluster
/// simulation, whose events already live on a shared virtual clock.
class Trace {
 public:
  Trace(std::uint64_t id, std::string name)
      : id_(id), name_(std::move(name)) {}

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Ns now() const { return now_; }

  // --- nested spans (RAII via SpanScope) -----------------------------------
  /// Opens a span starting at now(); returns its id.
  std::uint32_t begin_span(Category c, std::string name);
  /// Closes the innermost open span (spans close strictly LIFO, which is
  /// what guarantees well-nested trees). `id` must be that span.
  void end_span(std::uint32_t id);
  void set_attr(std::uint32_t id, std::string key, std::string value);

  // --- explicit-timestamp spans (cluster simulation) -----------------------
  /// Appends a closed span with caller-supplied timestamps. The caller is
  /// responsible for nesting children inside [start, end] of their parent.
  std::uint32_t add_span(Category c, std::string name, sim::Ns start,
                         sim::Ns end, std::uint32_t parent = Span::kNoParent);

  // --- charges -------------------------------------------------------------
  /// Advances the trace timeline by `t` and attributes it to `c` on the
  /// innermost open span (or a synthetic trace-level root when none).
  void charge(Category c, sim::Ns t, double count = 1);
  /// Named detail on the innermost open span; does NOT advance the
  /// timeline (the time is already covered by a category charge).
  void note(std::string_view name, sim::Ns t, double count = 1);
  /// Point annotation at the current timeline position.
  void instant(std::string name,
               std::vector<std::pair<std::string, std::string>> attrs = {});
  /// Point annotation at an explicit timestamp (cluster simulation).
  void instant_at(std::string name, sim::Ns t,
                  std::vector<std::pair<std::string, std::string>> attrs = {});

  // --- introspection -------------------------------------------------------
  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<Instant>& instants() const {
    return instants_;
  }
  [[nodiscard]] std::size_t open_depth() const { return open_.size(); }
  /// Whole-trace charge totals (sum over spans), indexed by Category.
  [[nodiscard]] const std::array<ChargeStat,
                                 static_cast<std::size_t>(Category::kCount)>&
  charge_totals() const {
    return totals_;
  }
  [[nodiscard]] sim::Ns charged_ns(Category c) const {
    return totals_[static_cast<std::size_t>(c)].total_ns;
  }
  /// Merged named notes across all spans (key order).
  [[nodiscard]] std::map<std::string, ChargeStat, std::less<>> note_totals()
      const;

 private:
  Span& innermost();

  std::uint64_t id_;
  std::string name_;
  sim::Ns now_ = 0;
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::vector<std::uint32_t> open_;  ///< stack of open span ids
  std::array<ChargeStat, static_cast<std::size_t>(Category::kCount)> totals_{};
};

/// Owns the traces of one experiment plus the central metrics registry.
/// Trace storage is a deque so Trace pointers stay valid across starts.
class Tracer {
 public:
  explicit Tracer(bool enabled = true) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool e) { enabled_ = e; }

  /// Starts a new trace with the next sequential id (ids start at 1).
  Trace& start_trace(std::string name);

  [[nodiscard]] const std::deque<Trace>& traces() const { return traces_; }
  [[nodiscard]] Trace* find(std::uint64_t id);
  [[nodiscard]] const Trace* find(std::uint64_t id) const;
  /// Drops all recorded traces (keeps the id sequence and the registry).
  void clear_traces() { traces_.clear(); }

  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] const Registry& registry() const { return registry_; }

 private:
  bool enabled_;
  std::uint64_t next_id_ = 0;
  std::deque<Trace> traces_;
  Registry registry_;
};

// --- ambient context ---------------------------------------------------------
//
// The simulation is single-threaded and synchronous: a gateway invocation
// runs the host agent, launcher and workload inside one call stack. The
// active trace is therefore a single global pointer, installed with RAII
// for the duration of the invocation — no plumbing through constructors,
// and a disabled hook costs one load + branch.

namespace detail {
extern Trace* g_current_trace;
}  // namespace detail

/// The trace the innermost TraceScope installed, or nullptr.
inline Trace* current_trace() { return detail::g_current_trace; }

/// Installs `t` as the ambient trace for the scope's lifetime.
class TraceScope {
 public:
  explicit TraceScope(Trace* t) : prev_(detail::g_current_trace) {
    detail::g_current_trace = t;
  }
  ~TraceScope() { detail::g_current_trace = prev_; }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Trace* prev_;
};

/// RAII span on the ambient trace; a no-op when tracing is off.
class SpanScope {
 public:
  SpanScope(Category c, std::string_view name) : trace_(current_trace()) {
    if (trace_) id_ = trace_->begin_span(c, std::string(name));
  }
  SpanScope(Category c, std::string_view name,
            std::vector<std::pair<std::string, std::string>> attrs)
      : SpanScope(c, name) {
    if (trace_)
      for (auto& [k, v] : attrs)
        trace_->set_attr(id_, std::move(k), std::move(v));
  }
  ~SpanScope() {
    if (trace_) trace_->end_span(id_);
  }

  void set_attr(std::string key, std::string value) {
    if (trace_) trace_->set_attr(id_, std::move(key), std::move(value));
  }
  [[nodiscard]] bool active() const { return trace_ != nullptr; }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Trace* trace_;
  std::uint32_t id_ = 0;
};

/// Ambient charge/note/instant helpers for instrumentation sites.
inline void charge(Category c, sim::Ns t, double count = 1) {
  if (Trace* tr = detail::g_current_trace) tr->charge(c, t, count);
}
inline void note(std::string_view name, sim::Ns t, double count = 1) {
  if (Trace* tr = detail::g_current_trace) tr->note(name, t, count);
}
inline void instant(std::string_view name, std::string key,
                    std::string value) {
  if (Trace* tr = detail::g_current_trace)
    tr->instant(std::string(name), {{std::move(key), std::move(value)}});
}

}  // namespace confbench::obs

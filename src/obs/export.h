// Trace exporters: Chrome trace-event JSON (Perfetto-loadable) and CSV.
//
// The JSON is the classic trace-event array format ("X" complete events,
// "i" instants, "M" thread-name metadata), so a dump drops straight into
// chrome://tracing or ui.perfetto.dev. Each trace renders as one named
// track (pid 1, tid = trace id); timestamps are the trace's virtual
// nanoseconds converted to microseconds. Both exporters inherit the
// determinism contract: same seed, byte-identical output.
#pragma once

#include <string>

#include "obs/trace.h"

namespace confbench::obs {

/// Chrome trace-event JSON for every trace in the tracer.
[[nodiscard]] std::string chrome_trace_json(const Tracer& tracer);

/// One trace only (tail-request dumps).
[[nodiscard]] std::string chrome_trace_json(const Trace& trace);

/// Per-span CSV: trace,span,parent,category,name,start_ns,dur_ns.
[[nodiscard]] std::string spans_csv(const Tracer& tracer);

/// Per-trace charge totals CSV: trace,trace_name,category,total_ns,count.
[[nodiscard]] std::string charges_csv(const Tracer& tracer);

/// Writes `content` to `path`; returns false on I/O error.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace confbench::obs

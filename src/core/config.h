// Gateway configuration: INI-style parser + typed config.
//
// §III-A: "a dedicated gateway configuration file maps TEEs and their
// interface ports". The format is git-config-flavoured INI:
//
//   [gateway]
//   host = gateway
//   policy = round-robin
//
//   [tee "tdx"]
//   host = host-tdx
//   normal_port = 8100
//   secure_port = 8200
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fault/retry.h"

namespace confbench::core {

/// Raw parsed INI: section -> key -> value. Sections of the form
/// [type "label"] become "type.label".
class IniFile {
 public:
  /// Parses INI text. Returns nullopt on malformed lines (with the line
  /// number in `err` when provided).
  static std::optional<IniFile> parse(const std::string& text,
                                      std::string* err = nullptr);

  [[nodiscard]] std::optional<std::string> get(const std::string& section,
                                               const std::string& key) const;
  [[nodiscard]] std::vector<std::string> sections_with_prefix(
      const std::string& prefix) const;
  void set(const std::string& section, const std::string& key,
           const std::string& value);
  [[nodiscard]] std::string serialize() const;

 private:
  std::map<std::string, std::map<std::string, std::string>> data_;
};

enum class LoadBalancePolicy { kRoundRobin, kLeastLoaded, kRandom };

std::optional<LoadBalancePolicy> parse_policy(const std::string& s);
std::string_view to_string(LoadBalancePolicy p);

struct TeeEndpoint {
  std::string tee;        ///< platform name in the tee:: registry
  std::string host;       ///< network hostname of the TEE machine
  std::uint16_t normal_port = 8100;
  std::uint16_t secure_port = 8200;
};

struct GatewayConfig {
  std::string gateway_host = "gateway";
  std::uint16_t gateway_port = 8080;
  LoadBalancePolicy policy = LoadBalancePolicy::kRoundRobin;
  /// Transport-level failures (timeouts, corrupted responses) are retried
  /// under this policy: exponential backoff with deterministic jitter,
  /// optional per-request budget, deadline-aware give-up. The INI key
  /// `retries = N` maps to `retry.max_attempts = N + 1` (N retries after
  /// the initial attempt), preserving the old config surface.
  fault::RetryConfig retry;
  std::vector<TeeEndpoint> endpoints;

  /// Typed view over an IniFile; reports the first problem in `err`.
  static std::optional<GatewayConfig> from_ini(const IniFile& ini,
                                               std::string* err = nullptr);
  [[nodiscard]] IniFile to_ini() const;

  /// The default three-TEE deployment of §IV-A (tdx, sev-snp, cca) plus a
  /// plain "none" host for baselines.
  static GatewayConfig standard();
};

}  // namespace confbench::core

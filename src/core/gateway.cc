#include "core/gateway.h"

#include <sstream>

#include "core/native.h"
#include "fault/retry.h"
#include "sim/rng.h"
#include "wasm/text.h"
#include "rt/profile.h"
#include "wl/faas.h"

namespace confbench::core {

std::string_view to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kNone:
      return "none";
    case ErrorCode::kFunctionNotFound:
      return "function_not_found";
    case ErrorCode::kNoPool:
      return "no_pool";
    case ErrorCode::kNoCapacity:
      return "no_capacity";
    case ErrorCode::kTransport:
      return "transport";
    case ErrorCode::kUnparseablePerf:
      return "unparseable_perf";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kApplication:
      return "application";
  }
  return "?";
}

Gateway::Gateway(net::Network& net, GatewayConfig cfg)
    : net_(net), cfg_(std::move(cfg)) {
  for (const auto& ep : cfg_.endpoints) {
    auto [it, fresh] = pools_.try_emplace(ep.tee, ep.tee, cfg_.policy);
    it->second.add_member({ep.host, ep.normal_port, ep.secure_port, 0, 0});
  }
  build_routes();
  net_.bind(cfg_.gateway_host, cfg_.gateway_port,
            [this](const net::HttpRequest& req) { return handle(req); });
}

Gateway::~Gateway() { net_.unbind(cfg_.gateway_host, cfg_.gateway_port); }

bool Gateway::upload_function(const std::string& language,
                              const std::string& name,
                              const std::string& source) {
  if (language == "miniwasm") {
    // User-supplied bytecode modules in the MiniWasm text format: the
    // module must parse, validate, and export a nullary i64 function with
    // the uploaded name.
    const wasm::ParseResult parsed = wasm::parse_text(source);
    if (!parsed.ok()) return false;
    if (!wasm::validate(*parsed.module).ok) return false;
    const wasm::Function* entry = parsed.module->find(name);
    if (!entry || !entry->params.empty() ||
        entry->result != wasm::ValType::kI64)
      return false;
    function_db_[language][name] = source;
    return true;
  }
  const bool native = language == "native";
  if (!native && rt::find_profile(language) == nullptr) return false;
  const bool known =
      native ? find_native(name) != nullptr : wl::find_faas(name) != nullptr;
  if (!known) return false;
  function_db_[language][name] = source;
  return true;
}

bool Gateway::has_function(const std::string& language,
                           const std::string& name) const {
  const auto lang = function_db_.find(language);
  return lang != function_db_.end() && lang->second.count(name) > 0;
}

std::vector<std::string> Gateway::functions(const std::string& language) const {
  std::vector<std::string> out;
  const auto lang = function_db_.find(language);
  if (lang == function_db_.end()) return out;
  out.reserve(lang->second.size());
  for (const auto& [name, _] : lang->second) out.push_back(name);
  return out;
}

void Gateway::upload_all_builtin() {
  for (const auto& profile : rt::builtin_profiles()) {
    for (const auto& fn : wl::faas_workloads())
      upload_function(profile.name, fn.name, "builtin:" + fn.name);
  }
  for (const auto& fn : native_workloads())
    upload_function("native", fn.name, "builtin:" + fn.name);
}

std::vector<std::string> Gateway::platforms() const {
  std::vector<std::string> out;
  out.reserve(pools_.size());
  for (const auto& [name, _] : pools_) out.push_back(name);
  return out;
}

TeePool* Gateway::pool(const std::string& platform) {
  auto it = pools_.find(platform);
  return it == pools_.end() ? nullptr : &it->second;
}

const TeePool* Gateway::pool(const std::string& platform) const {
  const auto it = pools_.find(platform);
  return it == pools_.end() ? nullptr : &it->second;
}

InvocationRecord Gateway::invoke(const InvocationRequest& req) {
  obs::Tracer* tracer = req.tracer ? req.tracer : tracer_;
  InvocationRecord rec;
  if (tracer && tracer->enabled()) {
    obs::Trace& tr = tracer->start_trace(
        req.platform + "/" + req.language + "/" + req.function +
        (req.secure ? "/secure" : "/normal") + "#" +
        std::to_string(req.trial));
    obs::TraceScope scope(&tr);
    {
      obs::SpanScope root(obs::Category::kInvoke, "gateway.invoke");
      rec = invoke_traced(req);
      root.set_attr("status", std::to_string(rec.http_status));
      if (rec.code != ErrorCode::kNone)
        root.set_attr("error", std::string(to_string(rec.code)));
    }
    rec.trace_id = tr.id();
  } else {
    rec = invoke_traced(req);
  }
  account(rec, tracer);
  return rec;
}

InvocationRecord Gateway::invoke_traced(const InvocationRequest& inv) {
  InvocationRecord rec;
  rec.function = inv.function;
  rec.language = inv.language;
  rec.platform = inv.platform;
  rec.secure = inv.secure;
  rec.trial = inv.trial;
  const sim::Ns net_start = net_.elapsed();

  TeePool* p = nullptr;
  {
    obs::SpanScope route(obs::Category::kRoute, "gateway.route");
    if (!has_function(inv.language, inv.function)) {
      rec.http_status = 404;
      rec.code = ErrorCode::kFunctionNotFound;
      rec.error = "function not uploaded for language";
      return rec;
    }
    p = pool(inv.platform);
    if (!p) {
      rec.http_status = 404;
      rec.code = ErrorCode::kNoPool;
      rec.error = "no pool for platform " + inv.platform;
      return rec;
    }
    route.set_attr("pool", inv.platform);
  }

  net::HttpRequest req;
  req.method = "POST";
  req.path = "/run";
  req.query = "function=" + net::url_encode(inv.function) +
              "&lang=" + net::url_encode(inv.language) +
              "&trial=" + std::to_string(inv.trial);
  // No trace header on this hop: the ambient trace already correlates the
  // whole in-process path, and extra wire bytes would make tracing perturb
  // the simulated latency it is supposed to observe.
  // User-supplied modules travel with the request; built-in workloads are
  // pre-installed on every VM (the shared-filesystem convention, §III-B).
  if (inv.language == "miniwasm")
    req.body = function_db_[inv.language][inv.function];

  // Transport-level failures (timeout / corrupted response) are retried
  // with fresh pool selection under the configured RetryPolicy; application
  // errors (4xx) are not. Backoff between attempts is charged as virtual
  // time and included in the record's end-to-end latency.
  const fault::RetryPolicy policy(
      cfg_.retry,
      sim::hash_combine(sim::stable_hash(inv.function), inv.trial));
  net::HttpResponse resp;
  for (int attempt = 0;; ++attempt) {
    obs::SpanScope span(obs::Category::kTransport,
                        "transport.attempt" + std::to_string(attempt));
    PoolMember* member = p->acquire();
    if (!member) {
      rec.http_status = 503;
      rec.code = ErrorCode::kNoCapacity;
      rec.error = "empty pool";
      return rec;
    }
    // The gateway selects the VM by rewriting the destination port (§III-B).
    const std::uint16_t port =
        inv.secure ? member->secure_port : member->normal_port;
    resp = net_.roundtrip(member->host, port, req);
    p->release(member);
    rec.http_status = resp.status;
    rec.served_by = member->host + ":" + std::to_string(port);
    rec.retries = attempt;
    span.set_attr("endpoint", rec.served_by);
    span.set_attr("status", std::to_string(resp.status));
    const bool transport_failure = resp.status == 504 || resp.status == 502;
    if (!transport_failure) break;
    const sim::Ns spent = (net_.elapsed() - net_start) + rec.backoff_ns;
    if (!policy.should_retry(attempt + 1, spent, inv.deadline_ns)) break;
    const sim::Ns wait = policy.backoff_ns(attempt + 1);
    rec.backoff_ns += wait;
    obs::charge(obs::Category::kRetryBackoff, wait);
  }
  if (resp.status != 200) {
    rec.code = (resp.status == 504 || resp.status == 502)
                   ? ErrorCode::kTransport
                   : ErrorCode::kApplication;
    rec.error = resp.body;
    rec.latency_ns = (net_.elapsed() - net_start) + rec.backoff_ns;
    return rec;
  }
  rec.output = resp.body;
  if (!rec.output.empty() && rec.output.back() == '\n') rec.output.pop_back();
  if (const auto it = resp.headers.find("X-Perf"); it != resp.headers.end()) {
    if (!metrics::PerfCounters::from_kv_string(it->second, &rec.perf)) {
      rec.code = ErrorCode::kUnparseablePerf;
      rec.error = "unparseable X-Perf header";
    }
  }
  if (const auto it = resp.headers.find("X-Perf-Source");
      it != resp.headers.end())
    rec.perf_from_pmu = (it->second == "pmu");
  auto ns_header = [&](const char* name) -> sim::Ns {
    const auto it = resp.headers.find(name);
    if (it == resp.headers.end()) return 0;
    try {
      return std::stod(it->second);
    } catch (...) {
      return 0;
    }
  };
  rec.function_ns = ns_header("X-Function-Ns");
  rec.bootstrap_ns = ns_header("X-Bootstrap-Ns");
  rec.latency_ns =
      (net_.elapsed() - net_start) + rec.backoff_ns + rec.perf.wall_ns;
  if (inv.deadline_ns > 0 && rec.latency_ns > inv.deadline_ns) {
    // The response arrived after the caller stopped waiting: the work was
    // done (and is still billed in latency_ns) but the result is discarded.
    rec.http_status = 504;
    rec.code = ErrorCode::kDeadlineExceeded;
    rec.error = "deadline exceeded";
    rec.output.clear();
  }
  return rec;
}

void Gateway::account(const InvocationRecord& rec, obs::Tracer* tracer) {
  if (!tracer || !tracer->enabled()) return;
  obs::Registry& reg = tracer->registry();
  ++reg.counter("gateway.invocations");
  if (rec.retries > 0)
    reg.counter("gateway.retries") +=
        static_cast<std::uint64_t>(rec.retries);
  if (rec.code != ErrorCode::kNone)
    ++reg.counter("gateway.errors." + std::string(to_string(rec.code)));
  if (rec.ok()) reg.histogram("gateway.latency_ns").record(rec.latency_ns);
}

void Gateway::build_routes() {
  router_.add("GET", "/platforms",
              [this](const net::HttpRequest&, const net::PathParams&) {
                std::ostringstream os;
                for (const auto& p : platforms()) os << p << "\n";
                return net::HttpResponse::make(200, os.str());
              });
  router_.add("GET", "/functions/:lang",
              [this](const net::HttpRequest&, const net::PathParams& params) {
                std::ostringstream os;
                for (const auto& f : functions(params.at("lang")))
                  os << f << "\n";
                return net::HttpResponse::make(200, os.str());
              });
  router_.add(
      "POST", "/upload",
      [this](const net::HttpRequest& req, const net::PathParams&) {
        const auto params = req.query_params();
        const auto lang = params.find("lang");
        const auto name = params.find("function");
        if (lang == params.end() || name == params.end())
          return net::HttpResponse::make(400, "missing lang/function\n");
        if (!upload_function(lang->second, name->second, req.body))
          return net::HttpResponse::make(400, "unsupported function\n");
        return net::HttpResponse::make(201, "uploaded\n");
      });
  router_.add(
      "POST", "/invoke",
      [this](const net::HttpRequest& req, const net::PathParams&) {
        const auto params = req.query_params();
        auto get = [&](const char* k) -> std::string {
          const auto it = params.find(k);
          return it == params.end() ? "" : it->second;
        };
        InvocationRequest inv;
        inv.function = get("function");
        inv.language = get("lang");
        inv.platform = get("platform");
        inv.secure = get("secure") == "1" || get("secure") == "true";
        try {
          if (!get("trial").empty()) inv.trial = std::stoull(get("trial"));
        } catch (...) {
          return net::HttpResponse::make(400, "bad trial\n");
        }
        try {
          if (!get("deadline_ns").empty())
            inv.deadline_ns = std::stod(get("deadline_ns"));
        } catch (...) {
          return net::HttpResponse::make(400, "bad deadline_ns\n");
        }
        if (inv.function.empty() || inv.language.empty() ||
            inv.platform.empty())
          return net::HttpResponse::make(
              400, "missing function/lang/platform\n");
        const InvocationRecord rec = invoke(inv);
        if (!rec.ok()) {
          net::HttpResponse resp =
              net::HttpResponse::make(rec.http_status, rec.error + "\n");
          resp.headers["X-Error-Code"] = std::string(to_string(rec.code));
          return resp;
        }
        net::HttpResponse resp = net::HttpResponse::make(200, rec.output + "\n");
        resp.headers["X-Perf"] = rec.perf.to_kv_string();
        resp.headers["X-Function-Ns"] = std::to_string(rec.function_ns);
        resp.headers["X-Served-By"] = rec.served_by;
        if (rec.trace_id != 0)
          resp.headers["X-Trace-Id"] = std::to_string(rec.trace_id);
        return resp;
      });
  router_.add("GET", "/health",
              [](const net::HttpRequest&, const net::PathParams&) {
                return net::HttpResponse::make(200, "ok\n");
              });
}

net::HttpResponse Gateway::handle(const net::HttpRequest& req) {
  return router_.dispatch(req);
}

}  // namespace confbench::core

// Function launcher (§III-A, §IV-D).
//
// One launcher exists per supported language. It bootstraps the runtime
// inside the target VM, executes the function body under the language's
// RtContext and normalises the output. Following the paper's methodology,
// the reported function time *excludes* the launcher's runtime bootstrap.
#pragma once

#include <cstdint>

#include "metrics/counters.h"
#include "rt/profile.h"
#include "vm/guest_vm.h"
#include "wl/faas.h"

namespace confbench::core {

struct LaunchResult {
  std::string output;
  metrics::PerfCounters perf;  ///< what perf-stat (or the custom collector)
                               ///< reports — piggybacked on HTTP responses
  metrics::PerfCounters raw;   ///< simulation truth (debugging/tests)
  bool perf_from_pmu = true;
  sim::Ns function_ns = 0;   ///< function body only (bootstrap excluded)
  sim::Ns bootstrap_ns = 0;  ///< runtime startup inside the VM
};

class FunctionLauncher {
 public:
  explicit FunctionLauncher(const rt::RuntimeProfile& profile)
      : profile_(profile) {}

  /// Runs one invocation of `fn` inside `vm`.
  [[nodiscard]] LaunchResult launch(vm::GuestVm& vm,
                                    const wl::FaasWorkload& fn,
                                    std::uint64_t trial) const;

  [[nodiscard]] const rt::RuntimeProfile& profile() const { return profile_; }

 private:
  const rt::RuntimeProfile& profile_;
};

/// The pass-through "native" profile for classic (non-FaaS) workloads: the
/// user cross-compiles and submits a binary (§III-A), so there is no
/// interpreter expansion, boxing or GC.
const rt::RuntimeProfile& native_profile();

}  // namespace confbench::core

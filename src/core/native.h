// Classic (non-FaaS) workloads packaged as native functions.
//
// §III-A: for non-FaaS scenarios the user cross-compiles and submits an
// executable. These adapters wrap the ML, DBMS and UnixBench substrates as
// native workloads so the same gateway/launcher machinery serves them.
#pragma once

#include <vector>

#include "wl/faas.h"

namespace confbench::core {

/// "ml-inference", "db-speedtest", "unixbench" — run through the native
/// (pass-through) profile.
const std::vector<wl::FaasWorkload>& native_workloads();

const wl::FaasWorkload* find_native(const std::string& name);

}  // namespace confbench::core

#include "core/host_agent.h"

#include <sstream>

#include "core/launcher.h"
#include "core/native.h"
#include "obs/trace.h"
#include "rt/profile.h"
#include "wl/faas.h"
#include "wasm/interp.h"
#include "wasm/text.h"

namespace confbench::core {

HostAgent::HostAgent(vm::Host& host, std::string hostname, net::Network& net)
    : host_(host), hostname_(std::move(hostname)), net_(net) {
  for (const std::uint16_t port : host_.ports()) {
    net_.bind(hostname_, port, [this, port](const net::HttpRequest& req) {
      return handle(port, req);
    });
    bound_ports_.push_back(port);
  }
}

net::HttpResponse HostAgent::run_miniwasm(vm::GuestVm& vm,
                                          const std::string& function,
                                          const std::string& source,
                                          std::uint64_t trial) {
  const wasm::ParseResult parsed = wasm::parse_text(source);
  if (!parsed.ok())
    return net::HttpResponse::make(
        400, "module parse error (line " + std::to_string(parsed.line) +
                 "): " + parsed.error + "\n");
  const wasm::ValidationResult valid = wasm::validate(*parsed.module);
  if (!valid.ok)
    return net::HttpResponse::make(400, "invalid module: " + valid.error +
                                            "\n");
  sim::Ns function_ns = 0;
  sim::Ns bootstrap_ns = 0;
  bool trapped = false;
  std::string trap_text;
  const vm::InvocationOutcome outcome = vm.run(
      [&](vm::ExecutionContext& ctx) -> std::string {
        {
          // Engine instantiation (validation + memory setup) is the wasm
          // equivalent of runtime bootstrap and is excluded from timing.
          obs::SpanScope boot(obs::Category::kBootstrap, "launcher.bootstrap",
                              {{"runtime", "miniwasm"}});
          ctx.charge(3.1 * sim::kMs * ctx.costs().cpu.sim_slowdown);
        }
        bootstrap_ns = ctx.now();
        obs::SpanScope body(obs::Category::kFunction, "function.body",
                            {{"function", function}});
        wasm::Interpreter interp(*parsed.module);
        const sim::Ns start = ctx.now();
        const wasm::RunResult r = interp.invoke(function, {}, &ctx);
        function_ns = ctx.now() - start;
        if (!r.ok) {
          trapped = true;
          trap_text = std::string(to_string(r.trap));
          return "trap";
        }
        return function + ":" + std::to_string(r.i64());
      },
      trial);
  if (trapped)
    return net::HttpResponse::make(500, "wasm trap: " + trap_text + "\n");
  net::HttpResponse resp = net::HttpResponse::make(200, outcome.output + "\n");
  resp.headers["X-Perf"] = outcome.perf.to_kv_string();
  resp.headers["X-Perf-Source"] = outcome.perf_from_pmu ? "pmu" : "custom";
  resp.headers["X-Function-Ns"] = std::to_string(function_ns);
  resp.headers["X-Bootstrap-Ns"] = std::to_string(bootstrap_ns);
  resp.headers["X-Runtime-Version"] = "miniwasm-1";
  resp.headers["X-Vm"] = vm.config().name;
  return resp;
}

HostAgent::~HostAgent() {
  for (const std::uint16_t port : bound_ports_) net_.unbind(hostname_, port);
}

net::HttpResponse HostAgent::handle(std::uint16_t port,
                                    const net::HttpRequest& req) {
  obs::SpanScope span(obs::Category::kHostHandle, "host.handle",
                      {{"host", hostname_},
                       {"port", std::to_string(port)}});
  if (hung_) return net::HttpResponse::make(504, "host agent hung\n");
  vm::GuestVm* vm = host_.route(port);
  if (!vm) return net::HttpResponse::make(503, "no VM on port\n");

  if (req.method == "GET" && req.path == "/health") {
    std::ostringstream os;
    os << "vm=" << vm->config().name << " state=" << to_string(vm->state())
       << " secure=" << (vm->config().secure ? 1 : 0)
       << " invocations=" << vm->invocations() << "\n";
    return net::HttpResponse::make(200, os.str());
  }

  if (req.method != "POST" || req.path != "/run")
    return net::HttpResponse::make(404, "no such route\n");

  if (vm->state() != vm::VmState::kRunning)
    return net::HttpResponse::make(
        503, "vm not running (state=" + std::string(to_string(vm->state())) +
                 ")\n");

  const auto params = req.query_params();
  const auto fn_it = params.find("function");
  const auto lang_it = params.find("lang");
  if (fn_it == params.end() || lang_it == params.end())
    return net::HttpResponse::make(400, "missing function/lang\n");
  std::uint64_t trial = 0;
  if (const auto t = params.find("trial"); t != params.end()) {
    try {
      trial = std::stoull(t->second);
    } catch (...) {
      return net::HttpResponse::make(400, "bad trial\n");
    }
  }

  if (lang_it->second == "miniwasm") {
    return run_miniwasm(*vm, fn_it->second, req.body, trial);
  }

  const rt::RuntimeProfile* profile = nullptr;
  const wl::FaasWorkload* fn = nullptr;
  if (lang_it->second == "native") {
    profile = &native_profile();
    fn = find_native(fn_it->second);
  } else {
    profile = rt::find_profile(lang_it->second);
    fn = wl::find_faas(fn_it->second);
  }
  if (!profile)
    return net::HttpResponse::make(400,
                                   "unknown language: " + lang_it->second + "\n");
  if (!fn)
    return net::HttpResponse::make(404,
                                   "unknown function: " + fn_it->second + "\n");

  const FunctionLauncher launcher(*profile);
  const LaunchResult r = launcher.launch(*vm, *fn, trial);

  net::HttpResponse resp = net::HttpResponse::make(200, r.output + "\n");
  resp.headers["X-Perf"] = r.perf.to_kv_string();
  resp.headers["X-Perf-Source"] = r.perf_from_pmu ? "pmu" : "custom";
  resp.headers["X-Function-Ns"] = std::to_string(r.function_ns);
  resp.headers["X-Bootstrap-Ns"] = std::to_string(r.bootstrap_ns);
  resp.headers["X-Runtime-Version"] =
      profile->version_for(host_.platform().kind());
  resp.headers["X-Vm"] = vm->config().name;
  return resp;
}

}  // namespace confbench::core

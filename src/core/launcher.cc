#include "core/launcher.h"

#include "obs/trace.h"
#include "rt/runtime.h"

namespace confbench::core {

const rt::RuntimeProfile& native_profile() {
  static const rt::RuntimeProfile kNative = [] {
    rt::RuntimeProfile p;
    p.name = "native";
    p.version_tdx = p.version_snp = p.version_cca = "binary";
    p.bootstrap_ns = 0.4 * sim::kMs;  // exec + dynamic loader
    p.op_expansion = 1.0;
    p.box_bytes_per_op = 0.0;
    p.gc_nursery_bytes = 0.0;
    p.mem_inflation = 1.0;
    p.syscall_amplification = 1.0;
    return p;
  }();
  return kNative;
}

LaunchResult FunctionLauncher::launch(vm::GuestVm& vm,
                                      const wl::FaasWorkload& fn,
                                      std::uint64_t trial) const {
  LaunchResult result;
  sim::Ns body_fraction = 0.0;
  const vm::InvocationOutcome outcome = vm.run(
      [&](vm::ExecutionContext& ctx) -> std::string {
        {
          // Runtime bootstrap: interpreter startup + demand paging the image.
          obs::SpanScope boot(obs::Category::kBootstrap, "launcher.bootstrap",
                              {{"runtime", profile_.name}});
          ctx.charge(profile_.bootstrap_ns * ctx.costs().cpu.sim_slowdown);
          ctx.page_fault(profile_.bootstrap_ns / sim::kMs * 6.0);
        }
        const sim::Ns body_start = ctx.now();
        obs::SpanScope body(obs::Category::kFunction, "function.body",
                            {{"function", fn.name}});
        rt::RtContext env(ctx, profile_);
        std::string out = fn.body(env);
        const sim::Ns total = ctx.now();
        body_fraction = total > 0 ? (total - body_start) / total : 1.0;
        result.bootstrap_ns = body_start;
        return out;
      },
      trial);
  result.output = outcome.output;
  result.perf = outcome.perf;
  result.raw = outcome.raw;
  result.perf_from_pmu = outcome.perf_from_pmu;
  // The trial jitter scales the whole wall clock; apportion the function
  // span by its unjittered fraction so bootstrap stays excluded (§IV-D).
  result.function_ns = outcome.raw.wall_ns * body_fraction;
  return result;
}

}  // namespace confbench::core

#include "core/pool.h"

#include <tuple>

#include "obs/trace.h"

namespace confbench::core {

PoolMember& TeePool::add_member(PoolMember m) {
  m.index = static_cast<std::uint32_t>(members_.size());
  members_.push_back(std::move(m));
  return members_.back();
}

std::size_t TeePool::enabled_count() const {
  std::size_t n = 0;
  for (const auto& m : members_) n += m.enabled;
  return n;
}

void TeePool::set_enabled(std::uint32_t index, bool enabled) {
  if (index < members_.size()) members_[index].enabled = enabled;
}

PoolMember* TeePool::acquire() { return acquire_excluding(kNoExclude); }

PoolMember* TeePool::acquire_excluding(std::uint32_t exclude) {
  // Eligible = enabled and not the excluded index. With the kNoExclude
  // sentinel this is exactly enabled_count(), so the plain acquire() path
  // is unchanged draw-for-draw.
  std::size_t eligible = 0;
  for (const auto& m : members_)
    if (m.enabled && m.index != exclude) ++eligible;
  if (eligible == 0) return nullptr;
  PoolMember* picked = nullptr;
  switch (policy_) {
    case LoadBalancePolicy::kRoundRobin:
      // Advance past ineligible members; `eligible > 0` bounds the scan.
      do {
        picked = &members_[rr_next_ % members_.size()];
        ++rr_next_;
      } while (!picked->enabled || picked->index == exclude);
      break;
    case LoadBalancePolicy::kLeastLoaded: {
      // Documented deterministic total order: (in_flight, served, index).
      for (auto& m : members_) {
        if (!m.enabled || m.index == exclude) continue;
        if (!picked || std::tuple(m.in_flight, m.served, m.index) <
                           std::tuple(picked->in_flight, picked->served,
                                      picked->index))
          picked = &m;
      }
      break;
    }
    case LoadBalancePolicy::kRandom: {
      // Pick the k-th eligible member; one RNG draw per acquire keeps the
      // stream aligned regardless of which members are parked.
      std::uint64_t k = rng_.next_below(eligible);
      for (auto& m : members_) {
        if (!m.enabled || m.index == exclude) continue;
        if (k-- == 0) {
          picked = &m;
          break;
        }
      }
      break;
    }
  }
  ++picked->in_flight;
  ++picked->served;
  if (obs::Trace* tr = obs::current_trace())
    tr->instant("pool.select",
                {{"pool", tee_},
                 {"member", picked->host},
                 {"in_flight", std::to_string(picked->in_flight)}});
  return picked;
}

void TeePool::release(PoolMember* m) {
  if (m && m->in_flight > 0) --m->in_flight;
}

}  // namespace confbench::core

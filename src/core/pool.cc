#include "core/pool.h"

#include <algorithm>
#include <utility>

namespace confbench::core {

PoolMember* TeePool::acquire() {
  if (members_.empty()) return nullptr;
  PoolMember* picked = nullptr;
  switch (policy_) {
    case LoadBalancePolicy::kRoundRobin:
      picked = &members_[rr_next_ % members_.size()];
      ++rr_next_;
      break;
    case LoadBalancePolicy::kLeastLoaded: {
      picked = &members_[0];
      for (auto& m : members_) {
        // Tie-break on lifetime counts so sequential traffic still spreads.
        if (std::pair(m.in_flight, m.served) <
            std::pair(picked->in_flight, picked->served))
          picked = &m;
      }
      break;
    }
    case LoadBalancePolicy::kRandom:
      picked = &members_[rng_.next_below(members_.size())];
      break;
  }
  ++picked->in_flight;
  ++picked->served;
  return picked;
}

void TeePool::release(PoolMember* m) {
  if (m && m->in_flight > 0) --m->in_flight;
}

}  // namespace confbench::core

#include "core/pool.h"

#include <tuple>

#include "obs/trace.h"

namespace confbench::core {

PoolMember& TeePool::add_member(PoolMember m) {
  m.index = static_cast<std::uint32_t>(members_.size());
  members_.push_back(std::move(m));
  return members_.back();
}

std::size_t TeePool::enabled_count() const {
  std::size_t n = 0;
  for (const auto& m : members_) n += m.enabled;
  return n;
}

void TeePool::set_enabled(std::uint32_t index, bool enabled) {
  if (index < members_.size()) members_[index].enabled = enabled;
}

PoolMember* TeePool::acquire() {
  const std::size_t enabled = enabled_count();
  if (enabled == 0) return nullptr;
  PoolMember* picked = nullptr;
  switch (policy_) {
    case LoadBalancePolicy::kRoundRobin:
      // Advance past disabled members; `enabled > 0` bounds the scan.
      do {
        picked = &members_[rr_next_ % members_.size()];
        ++rr_next_;
      } while (!picked->enabled);
      break;
    case LoadBalancePolicy::kLeastLoaded: {
      // Documented deterministic total order: (in_flight, served, index).
      for (auto& m : members_) {
        if (!m.enabled) continue;
        if (!picked || std::tuple(m.in_flight, m.served, m.index) <
                           std::tuple(picked->in_flight, picked->served,
                                      picked->index))
          picked = &m;
      }
      break;
    }
    case LoadBalancePolicy::kRandom: {
      // Pick the k-th enabled member; one RNG draw per acquire keeps the
      // stream aligned regardless of which members are parked.
      std::uint64_t k = rng_.next_below(enabled);
      for (auto& m : members_) {
        if (!m.enabled) continue;
        if (k-- == 0) {
          picked = &m;
          break;
        }
      }
      break;
    }
  }
  ++picked->in_flight;
  ++picked->served;
  if (obs::Trace* tr = obs::current_trace())
    tr->instant("pool.select",
                {{"pool", tee_},
                 {"member", picked->host},
                 {"in_flight", std::to_string(picked->in_flight)}});
  return picked;
}

void TeePool::release(PoolMember* m) {
  if (m && m->in_flight > 0) --m->in_flight;
}

}  // namespace confbench::core

#include "core/native.h"

#include <sstream>

#include "wl/db/speedtest.h"
#include "wl/ml/model.h"
#include "wl/ub/unixbench.h"

namespace confbench::core {

namespace {

std::string ml_inference(rt::RtContext& env) {
  // A trimmed confidential-ML run: 4 images through the MobileNet-shaped
  // model (the Fig. 3 bench drives the full 40-image dataset directly).
  auto& ctx = env.raw();
  auto& fs = env.fs();
  wl::ml::install_image_dataset(fs, /*count=*/4);
  const wl::ml::MobileNetModel model(/*seed=*/7, /*reduced_scale=*/16);
  std::ostringstream os;
  os << "ml-inference:";
  for (int i = 0; i < 4; ++i) {
    const auto img = wl::ml::load_and_decode(ctx, fs, i, model.input_hw());
    const auto r = model.classify(ctx, img);
    os << r.label << (i == 3 ? "" : ",");
  }
  return os.str();
}

std::string db_speedtest(rt::RtContext& env) {
  const auto results =
      wl::db::run_speedtest(env.raw(), env.fs(), /*size=*/20);
  std::uint64_t checksum = 0;
  for (const auto& r : results) checksum ^= r.checksum;
  return "db-speedtest:" + std::to_string(results.size()) + ":" +
         std::to_string(checksum);
}

std::string unixbench(rt::RtContext& env) {
  const auto results = wl::ub::run_unixbench(env.raw(), env.fs());
  const double index = wl::ub::aggregate_index(results);
  std::ostringstream os;
  os << "unixbench:" << results.size() << ":index=" << index;
  return os.str();
}

}  // namespace

const std::vector<wl::FaasWorkload>& native_workloads() {
  static const std::vector<wl::FaasWorkload> kNative = {
      {"ml-inference", wl::Category::kCpu, ml_inference},
      {"db-speedtest", wl::Category::kMixed, db_speedtest},
      {"unixbench", wl::Category::kMixed, unixbench},
  };
  return kNative;
}

const wl::FaasWorkload* find_native(const std::string& name) {
  for (const auto& w : native_workloads()) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

}  // namespace confbench::core

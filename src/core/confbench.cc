#include "core/confbench.h"

#include <stdexcept>

namespace confbench::core {

double OverheadMeasurement::ratio() const {
  if (secure_ns.empty() || normal_ns.empty()) return 0.0;
  double s = 0, n = 0;
  for (double x : secure_ns) s += x;
  for (double x : normal_ns) n += x;
  s /= static_cast<double>(secure_ns.size());
  n /= static_cast<double>(normal_ns.size());
  return n > 0 ? s / n : 0.0;
}

ConfBench::ConfBench(GatewayConfig cfg) {
  for (const auto& ep : cfg.endpoints) {
    if (hosts_.count(ep.host)) continue;  // one machine, many pool entries
    tee::PlatformPtr platform = tee::Registry::instance().create(ep.tee);
    if (!platform)
      throw std::invalid_argument("unknown TEE platform: " + ep.tee);
    auto host = std::make_unique<vm::Host>(ep.host, platform);
    host->add_vm("normal", /*secure=*/false, ep.normal_port);
    host->add_vm("secure", /*secure=*/true, ep.secure_port);
    agents_.push_back(std::make_unique<HostAgent>(*host, ep.host, net_));
    hosts_.emplace(ep.host, std::move(host));
  }
  gateway_ = std::make_unique<Gateway>(net_, std::move(cfg));
  gateway_->upload_all_builtin();
}

std::unique_ptr<ConfBench> ConfBench::standard() {
  return std::make_unique<ConfBench>(GatewayConfig::standard());
}

vm::Host* ConfBench::host(const std::string& hostname) {
  const auto it = hosts_.find(hostname);
  return it == hosts_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ConfBench::hostnames() const {
  std::vector<std::string> out;
  out.reserve(hosts_.size());
  for (const auto& [name, _] : hosts_) out.push_back(name);
  return out;
}

OverheadMeasurement ConfBench::measure(const std::string& function,
                                       const std::string& language,
                                       const std::string& platform,
                                       int trials) {
  OverheadMeasurement m;
  m.function = function;
  m.language = language;
  m.platform = platform;
  for (int t = 0; t < trials; ++t) {
    const auto secure = gateway_->invoke({.function = function,
                                          .language = language,
                                          .platform = platform,
                                          .secure = true,
                                          .trial = static_cast<std::uint64_t>(t)});
    const auto normal = gateway_->invoke({.function = function,
                                          .language = language,
                                          .platform = platform,
                                          .secure = false,
                                          .trial = static_cast<std::uint64_t>(t)});
    if (!secure.ok() || !normal.ok())
      throw std::runtime_error("invocation failed: " + secure.error +
                               normal.error);
    m.secure_ns.push_back(secure.function_ns);
    m.normal_ns.push_back(normal.function_ns);
  }
  return m;
}

}  // namespace confbench::core

// ConfBench facade: a complete deployment in one object.
//
// Builds the full paper topology — a gateway machine plus one TEE-enabled
// host per configured platform, each running a confidential and a normal VM
// — wires host agents into the network fabric, uploads the built-in
// workloads, and offers the measurement loops the evaluation section uses
// (N independent trials per function, secure vs normal, ratio of means).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/gateway.h"
#include "core/host_agent.h"
#include "net/network.h"
#include "tee/registry.h"
#include "vm/host.h"

namespace confbench::core {

/// One function's secure-vs-normal measurement (the unit behind every cell
/// of Figs. 6/7 and every bar of Figs. 3/4).
struct OverheadMeasurement {
  std::string function;
  std::string language;
  std::string platform;
  std::vector<double> secure_ns;  ///< per-trial function times
  std::vector<double> normal_ns;
  /// Ratio of mean execution times, secure / normal (§IV-B).
  [[nodiscard]] double ratio() const;
};

class ConfBench {
 public:
  /// Deploys from a config. Unknown TEE names throw.
  explicit ConfBench(GatewayConfig cfg);

  /// The standard four-platform deployment (tdx, sev-snp, cca, none).
  static std::unique_ptr<ConfBench> standard();

  [[nodiscard]] Gateway& gateway() { return *gateway_; }
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] vm::Host* host(const std::string& hostname);
  [[nodiscard]] std::vector<std::string> hostnames() const;

  /// Runs `trials` secure and normal invocations of a function and returns
  /// the timing series (through the full gateway + HTTP + launcher path).
  OverheadMeasurement measure(const std::string& function,
                              const std::string& language,
                              const std::string& platform, int trials = 10);

 private:
  net::Network net_;
  std::map<std::string, std::unique_ptr<vm::Host>> hosts_;
  std::vector<std::unique_ptr<HostAgent>> agents_;
  std::unique_ptr<Gateway> gateway_;
};

}  // namespace confbench::core

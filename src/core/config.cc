#include "core/config.h"

#include <sstream>

namespace confbench::core {

namespace {
std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}
}  // namespace

std::optional<IniFile> IniFile::parse(const std::string& text,
                                      std::string* err) {
  IniFile ini;
  std::istringstream is(text);
  std::string line;
  std::string section;
  int lineno = 0;
  auto fail = [&](const std::string& what) -> std::optional<IniFile> {
    if (err) *err = "line " + std::to_string(lineno) + ": " + what;
    return std::nullopt;
  };
  while (std::getline(is, line)) {
    ++lineno;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#' || t[0] == ';') continue;
    if (t.front() == '[') {
      if (t.back() != ']') return fail("unterminated section header");
      std::string inner = trim(t.substr(1, t.size() - 2));
      // [type "label"] -> type.label
      const auto quote = inner.find('"');
      if (quote != std::string::npos) {
        if (inner.back() != '"') return fail("bad quoted section label");
        const std::string type = trim(inner.substr(0, quote));
        const std::string label =
            inner.substr(quote + 1, inner.size() - quote - 2);
        if (type.empty() || label.empty()) return fail("empty section parts");
        section = type + "." + label;
      } else {
        if (inner.empty()) return fail("empty section name");
        section = inner;
      }
      ini.data_[section];  // materialise even if the section stays empty
      continue;
    }
    const auto eq = t.find('=');
    if (eq == std::string::npos) return fail("expected key = value");
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (key.empty()) return fail("empty key");
    if (section.empty()) return fail("key outside any section");
    ini.data_[section][key] = value;
  }
  return ini;
}

std::optional<std::string> IniFile::get(const std::string& section,
                                        const std::string& key) const {
  const auto s = data_.find(section);
  if (s == data_.end()) return std::nullopt;
  const auto k = s->second.find(key);
  if (k == s->second.end()) return std::nullopt;
  return k->second;
}

std::vector<std::string> IniFile::sections_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [name, _] : data_) {
    if (name.rfind(prefix, 0) == 0) out.push_back(name);
  }
  return out;
}

void IniFile::set(const std::string& section, const std::string& key,
                  const std::string& value) {
  data_[section][key] = value;
}

std::string IniFile::serialize() const {
  std::ostringstream os;
  for (const auto& [section, kv] : data_) {
    const auto dot = section.find('.');
    if (dot == std::string::npos) {
      os << '[' << section << "]\n";
    } else {
      os << '[' << section.substr(0, dot) << " \""
         << section.substr(dot + 1) << "\"]\n";
    }
    for (const auto& [k, v] : kv) os << k << " = " << v << "\n";
    os << "\n";
  }
  return os.str();
}

std::optional<LoadBalancePolicy> parse_policy(const std::string& s) {
  if (s == "round-robin") return LoadBalancePolicy::kRoundRobin;
  if (s == "least-loaded") return LoadBalancePolicy::kLeastLoaded;
  if (s == "random") return LoadBalancePolicy::kRandom;
  return std::nullopt;
}

std::string_view to_string(LoadBalancePolicy p) {
  switch (p) {
    case LoadBalancePolicy::kRoundRobin:
      return "round-robin";
    case LoadBalancePolicy::kLeastLoaded:
      return "least-loaded";
    case LoadBalancePolicy::kRandom:
      return "random";
  }
  return "?";
}

std::optional<GatewayConfig> GatewayConfig::from_ini(const IniFile& ini,
                                                     std::string* err) {
  GatewayConfig cfg;
  if (auto v = ini.get("gateway", "host")) cfg.gateway_host = *v;
  if (auto v = ini.get("gateway", "port")) {
    try {
      cfg.gateway_port = static_cast<std::uint16_t>(std::stoul(*v));
    } catch (...) {
      if (err) *err = "bad gateway port: " + *v;
      return std::nullopt;
    }
  }
  if (auto v = ini.get("gateway", "retries")) {
    try {
      const int retries = std::stoi(*v);
      if (retries < 0) throw std::invalid_argument("negative");
      cfg.retry.max_attempts = retries + 1;
    } catch (...) {
      if (err) *err = "bad retries: " + *v;
      return std::nullopt;
    }
  }
  if (auto v = ini.get("gateway", "retry_budget_ms")) {
    try {
      const double ms = std::stod(*v);
      if (ms < 0) throw std::invalid_argument("negative");
      cfg.retry.budget_ns = ms * 1e6;
    } catch (...) {
      if (err) *err = "bad retry_budget_ms: " + *v;
      return std::nullopt;
    }
  }
  if (auto v = ini.get("gateway", "policy")) {
    const auto p = parse_policy(*v);
    if (!p) {
      if (err) *err = "unknown policy: " + *v;
      return std::nullopt;
    }
    cfg.policy = *p;
  }
  for (const std::string& section : ini.sections_with_prefix("tee.")) {
    TeeEndpoint ep;
    ep.tee = section.substr(4);
    const auto host = ini.get(section, "host");
    if (!host) {
      if (err) *err = section + ": missing host";
      return std::nullopt;
    }
    ep.host = *host;
    auto port_of = [&](const char* key,
                       std::uint16_t fallback) -> std::optional<std::uint16_t> {
      const auto v = ini.get(section, key);
      if (!v) return fallback;
      try {
        return static_cast<std::uint16_t>(std::stoul(*v));
      } catch (...) {
        return std::nullopt;
      }
    };
    const auto np = port_of("normal_port", 8100);
    const auto sp = port_of("secure_port", 8200);
    if (!np || !sp) {
      if (err) *err = section + ": bad port";
      return std::nullopt;
    }
    ep.normal_port = *np;
    ep.secure_port = *sp;
    cfg.endpoints.push_back(ep);
  }
  return cfg;
}

IniFile GatewayConfig::to_ini() const {
  IniFile ini;
  ini.set("gateway", "host", gateway_host);
  ini.set("gateway", "port", std::to_string(gateway_port));
  ini.set("gateway", "policy", std::string(to_string(policy)));
  ini.set("gateway", "retries", std::to_string(retry.max_attempts - 1));
  if (retry.budget_ns > 0)
    ini.set("gateway", "retry_budget_ms",
            std::to_string(retry.budget_ns / 1e6));
  for (const auto& ep : endpoints) {
    const std::string s = "tee." + ep.tee;
    ini.set(s, "host", ep.host);
    ini.set(s, "normal_port", std::to_string(ep.normal_port));
    ini.set(s, "secure_port", std::to_string(ep.secure_port));
  }
  return ini;
}

GatewayConfig GatewayConfig::standard() {
  GatewayConfig cfg;
  cfg.endpoints = {
      {"tdx", "host-tdx", 8100, 8200},
      {"sev-snp", "host-snp", 8100, 8200},
      {"cca", "host-cca", 8100, 8200},
      {"none", "host-none", 8100, 8200},
  };
  return cfg;
}

}  // namespace confbench::core

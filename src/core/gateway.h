// The ConfBench gateway: single entry point for all requests (§III-A).
//
// Users upload functions and submit invocation requests with the runtime
// parameters (language, target TEE, confidential-or-not). The gateway keeps
// a per-language function database, maintains TEE pools for load balancing,
// rewrites the destination port to select the confidential vs. normal VM on
// the chosen host, performs the HTTP round trip and returns the output with
// the piggybacked perf metrics.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/pool.h"
#include "metrics/counters.h"
#include "net/network.h"
#include "net/router.h"

namespace confbench::core {

struct InvocationRecord {
  std::string function;
  std::string language;
  std::string platform;
  bool secure = false;
  std::uint64_t trial = 0;
  int http_status = 0;
  std::string output;
  metrics::PerfCounters perf;
  bool perf_from_pmu = true;
  sim::Ns function_ns = 0;
  sim::Ns bootstrap_ns = 0;
  std::string served_by;  ///< host that executed the request
  int retries = 0;        ///< transport-level retries performed
  std::string error;      ///< non-empty on failure
  [[nodiscard]] bool ok() const { return http_status == 200; }
};

class Gateway {
 public:
  Gateway(net::Network& net, GatewayConfig cfg);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  // --- function database ---------------------------------------------------
  /// Registers `name` as available for `language`. `source` is stored as
  /// the uploaded artefact. Fails (false) if the body is not a known
  /// workload implementation or the language is unsupported.
  bool upload_function(const std::string& language, const std::string& name,
                       const std::string& source);
  [[nodiscard]] bool has_function(const std::string& language,
                                  const std::string& name) const;
  [[nodiscard]] std::vector<std::string> functions(
      const std::string& language) const;

  /// Convenience: uploads every built-in workload for every language (and
  /// the classic natives).
  void upload_all_builtin();

  // --- invocation ------------------------------------------------------------
  /// Dispatches one invocation; `platform` must name a configured pool.
  InvocationRecord invoke(const std::string& function,
                          const std::string& language,
                          const std::string& platform, bool secure,
                          std::uint64_t trial = 0);

  // --- introspection -----------------------------------------------------------
  [[nodiscard]] std::vector<std::string> platforms() const;
  [[nodiscard]] TeePool* pool(const std::string& platform);
  [[nodiscard]] const GatewayConfig& config() const { return cfg_; }

  /// The gateway's own REST surface (bound on the network at
  /// cfg.gateway_host:cfg.gateway_port).
  net::HttpResponse handle(const net::HttpRequest& req);

 private:
  void build_routes();

  net::Network& net_;
  GatewayConfig cfg_;
  std::map<std::string, TeePool> pools_;  ///< platform -> pool
  /// language -> function name -> uploaded source.
  std::map<std::string, std::map<std::string, std::string>> function_db_;
  net::Router router_;
};

}  // namespace confbench::core

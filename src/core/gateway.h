// The ConfBench gateway: single entry point for all requests (§III-A).
//
// Users upload functions and submit invocation requests with the runtime
// parameters (language, target TEE, confidential-or-not). The gateway keeps
// a per-language function database, maintains TEE pools for load balancing,
// rewrites the destination port to select the confidential vs. normal VM on
// the chosen host, performs the HTTP round trip and returns the output with
// the piggybacked perf metrics.
//
// Requests are described by an InvocationRequest (function, language,
// platform, mode, trial, optional deadline and trace context); failures
// carry a typed ErrorCode so callers never string-match `error`. When a
// tracer is attached (per request or gateway-wide), every invocation
// produces a deterministic span tree: route -> transport attempts ->
// host handling -> bootstrap -> function, with per-category time charges.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/pool.h"
#include "metrics/counters.h"
#include "net/network.h"
#include "net/router.h"
#include "obs/trace.h"

namespace confbench::core {

/// Typed failure classes for InvocationRecord. kNone on success;
/// kUnparseablePerf is the one "soft" failure that leaves http_status at
/// 200 (the function ran; only the piggybacked counters were garbage).
enum class ErrorCode : std::uint8_t {
  kNone,              ///< success
  kFunctionNotFound,  ///< function not uploaded for the language (404)
  kNoPool,            ///< no pool configured for the platform (404)
  kNoCapacity,        ///< pool has no enabled member (503)
  kTransport,         ///< timeout / corrupted response after retries
  kUnparseablePerf,   ///< 200 but the X-Perf header did not parse
  kDeadlineExceeded,  ///< response arrived after the request deadline (504)
  kApplication,       ///< host/VM-side application error (other non-200)
};

std::string_view to_string(ErrorCode c);

/// One invocation, fully described. The old positional invoke() arguments
/// map 1:1 onto the first five fields; deadline and tracing are new.
struct InvocationRequest {
  std::string function;
  std::string language = "native";
  std::string platform;
  bool secure = false;
  std::uint64_t trial = 0;
  /// Reject the response (504 / kDeadlineExceeded) when the end-to-end
  /// virtual latency exceeds this. 0 disables the deadline.
  sim::Ns deadline_ns = 0;
  /// Trace sink for this invocation; overrides the gateway-wide tracer set
  /// with Gateway::set_tracer(). Tracing is purely observational: attaching
  /// a tracer never changes the record.
  obs::Tracer* tracer = nullptr;
};

struct InvocationRecord {
  std::string function;
  std::string language;
  std::string platform;
  bool secure = false;
  std::uint64_t trial = 0;
  int http_status = 0;
  ErrorCode code = ErrorCode::kNone;
  std::string output;
  metrics::PerfCounters perf;
  bool perf_from_pmu = true;
  sim::Ns function_ns = 0;
  sim::Ns bootstrap_ns = 0;
  /// End-to-end virtual latency the gateway observed: fabric time plus the
  /// in-VM wall clock piggybacked on the response.
  sim::Ns latency_ns = 0;
  std::string served_by;  ///< host that executed the request
  int retries = 0;        ///< transport-level retries performed
  sim::Ns backoff_ns = 0; ///< total retry backoff waited (part of latency)
  std::string error;      ///< non-empty on failure (human-readable)
  std::uint64_t trace_id = 0;  ///< 0 when the invocation was not traced
  [[nodiscard]] bool ok() const { return http_status == 200; }
};

class Gateway {
 public:
  Gateway(net::Network& net, GatewayConfig cfg);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  // --- function database ---------------------------------------------------
  /// Registers `name` as available for `language`. `source` is stored as
  /// the uploaded artefact. Fails (false) if the body is not a known
  /// workload implementation or the language is unsupported.
  bool upload_function(const std::string& language, const std::string& name,
                       const std::string& source);
  [[nodiscard]] bool has_function(const std::string& language,
                                  const std::string& name) const;
  [[nodiscard]] std::vector<std::string> functions(
      const std::string& language) const;

  /// Convenience: uploads every built-in workload for every language (and
  /// the classic natives).
  void upload_all_builtin();

  // --- invocation ------------------------------------------------------------
  /// Dispatches one invocation; `req.platform` must name a configured pool.
  /// (The old positional overload is gone: build an InvocationRequest.)
  [[nodiscard]] InvocationRecord invoke(const InvocationRequest& req);

  /// Gateway-wide trace sink for invocations that do not carry their own
  /// (including requests arriving over the REST surface). May be null.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

  // --- introspection -----------------------------------------------------------
  [[nodiscard]] std::vector<std::string> platforms() const;
  [[nodiscard]] TeePool* pool(const std::string& platform);
  [[nodiscard]] const TeePool* pool(const std::string& platform) const;
  [[nodiscard]] const GatewayConfig& config() const { return cfg_; }

  /// The gateway's own REST surface (bound on the network at
  /// cfg.gateway_host:cfg.gateway_port).
  net::HttpResponse handle(const net::HttpRequest& req);

 private:
  void build_routes();
  InvocationRecord invoke_traced(const InvocationRequest& req);
  /// Bumps the tracer registry's per-outcome counters; no-op untraced.
  void account(const InvocationRecord& rec, obs::Tracer* tracer);

  net::Network& net_;
  GatewayConfig cfg_;
  obs::Tracer* tracer_ = nullptr;
  std::map<std::string, TeePool> pools_;  ///< platform -> pool
  /// language -> function name -> uploaded source.
  std::map<std::string, std::map<std::string, std::string>> function_db_;
  net::Router router_;
};

}  // namespace confbench::core

// Host-side agent: receives gateway requests and runs them in the VM
// listening on the destination port (§III-A).
//
// One agent per TEE host. It binds an HTTP handler on every VM port of the
// host (the socat steering role), resolves the requested function and
// language, executes it through the FunctionLauncher and piggybacks the
// perf counters on the response headers (§III-B).
#pragma once

#include <string>

#include "net/network.h"
#include "vm/host.h"

namespace confbench::core {

class HostAgent {
 public:
  /// Binds handlers for all currently-mapped ports of `host` under the
  /// network name `hostname`.
  HostAgent(vm::Host& host, std::string hostname, net::Network& net);
  ~HostAgent();

  HostAgent(const HostAgent&) = delete;
  HostAgent& operator=(const HostAgent&) = delete;

  [[nodiscard]] const std::string& hostname() const { return hostname_; }

  /// Fault injection: while hung, the agent answers every request —
  /// including health probes — with 504, without touching the VMs. Work
  /// already running inside a VM is unaffected.
  void set_hung(bool hung) { hung_ = hung; }
  [[nodiscard]] bool hung() const { return hung_; }

 private:
  net::HttpResponse handle(std::uint16_t port, const net::HttpRequest& req);
  /// Executes a user-uploaded MiniWasm module (shipped in the request body)
  /// through the real interpreter inside the target VM.
  net::HttpResponse run_miniwasm(vm::GuestVm& vm, const std::string& function,
                                 const std::string& source,
                                 std::uint64_t trial);

  vm::Host& host_;
  std::string hostname_;
  net::Network& net_;
  std::vector<std::uint16_t> bound_ports_;
  bool hung_ = false;
};

}  // namespace confbench::core

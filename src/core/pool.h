// TEE pools with pluggable load balancing (§III-A).
//
// The gateway maintains one pool per TEE type; each pool holds the TEE
// hosts able to serve that platform and picks one per request according to
// the configured policy. Cloud operators would tune the policy to their
// SLAs; we ship round-robin, least-loaded and (deterministic) random.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "sim/rng.h"

namespace confbench::core {

struct PoolMember {
  std::string host;
  std::uint16_t normal_port = 8100;
  std::uint16_t secure_port = 8200;
  std::uint64_t in_flight = 0;   ///< currently assigned requests
  std::uint64_t served = 0;      ///< lifetime counter
};

class TeePool {
 public:
  TeePool(std::string tee, LoadBalancePolicy policy)
      : tee_(std::move(tee)), policy_(policy), rng_(tee_) {}

  void add_member(PoolMember m) { members_.push_back(std::move(m)); }

  /// Picks a member per the policy; nullptr when the pool is empty.
  /// The caller must pair every acquire() with a release().
  PoolMember* acquire();
  void release(PoolMember* m);

  [[nodiscard]] const std::string& tee() const { return tee_; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] const std::vector<PoolMember>& members() const {
    return members_;
  }
  [[nodiscard]] LoadBalancePolicy policy() const { return policy_; }
  void set_policy(LoadBalancePolicy p) { policy_ = p; }

 private:
  std::string tee_;
  LoadBalancePolicy policy_;
  std::vector<PoolMember> members_;
  std::size_t rr_next_ = 0;
  sim::Rng rng_;
};

}  // namespace confbench::core

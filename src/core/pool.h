// TEE pools with pluggable load balancing (§III-A).
//
// The gateway maintains one pool per TEE type; each pool holds the TEE
// hosts able to serve that platform and picks one per request according to
// the configured policy. Cloud operators would tune the policy to their
// SLAs; we ship round-robin, least-loaded and (deterministic) random.
//
// Determinism contract: every policy is a pure function of the pool state
// and (for kRandom) the pool's own seeded RNG, so identical call sequences
// pick identical members on every run, machine and compiler. Least-loaded
// uses the documented total order (in_flight, served, index): fewest
// requests currently assigned wins; on equal in_flight the member with the
// lower lifetime served count wins (so sequential traffic still spreads
// round-robin-style); on a full tie the lowest-index member wins.
//
// Members live in a deque, so pointers returned by acquire() stay valid
// across add_member() — the scheduler's autoscaler (src/sched) grows pools
// at runtime while requests are in flight. Members can be administratively
// disabled (a parked warm-pool VM); every policy skips disabled members.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "core/config.h"
#include "sim/rng.h"

namespace confbench::core {

struct PoolMember {
  std::string host;
  std::uint16_t normal_port = 8100;
  std::uint16_t secure_port = 8200;
  std::uint64_t in_flight = 0;   ///< currently assigned requests
  std::uint64_t served = 0;      ///< lifetime counter
  bool enabled = true;           ///< disabled members are never picked
  std::uint32_t index = 0;       ///< position in the pool (set by add_member)
};

class TeePool {
 public:
  TeePool(std::string tee, LoadBalancePolicy policy)
      : tee_(std::move(tee)), policy_(policy), rng_(tee_) {}

  /// Appends a member; assigns its index. Existing PoolMember pointers
  /// remain valid (deque storage).
  PoolMember& add_member(PoolMember m);

  /// Picks an enabled member per the policy; nullptr when none is enabled.
  /// The caller must pair every acquire() with a release().
  PoolMember* acquire();

  /// acquire() that refuses one member index — the hedged-request path,
  /// where the backup must land on a *different* replica than the primary.
  /// Passing an index no enabled member has (e.g. the kNoExclude sentinel)
  /// makes this behave exactly like acquire(), draw-for-draw, so hedging
  /// support changes nothing for non-hedged callers. Returns nullptr when
  /// no enabled member other than `exclude` exists.
  static constexpr std::uint32_t kNoExclude = 0xFFFFFFFFu;
  PoolMember* acquire_excluding(std::uint32_t exclude);

  void release(PoolMember* m);

  /// Administrative enable/disable (warm-pool park/unpark). Disabling does
  /// not affect requests already in flight on the member.
  void set_enabled(std::uint32_t index, bool enabled);

  [[nodiscard]] const std::string& tee() const { return tee_; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] std::size_t enabled_count() const;
  [[nodiscard]] const std::deque<PoolMember>& members() const {
    return members_;
  }
  [[nodiscard]] PoolMember& member(std::uint32_t index) {
    return members_[index];
  }
  [[nodiscard]] LoadBalancePolicy policy() const { return policy_; }
  void set_policy(LoadBalancePolicy p) { policy_ = p; }

 private:
  std::string tee_;
  LoadBalancePolicy policy_;
  std::deque<PoolMember> members_;
  std::size_t rr_next_ = 0;
  sim::Rng rng_;
};

}  // namespace confbench::core

// Deterministic random number generation for the simulation.
//
// Everything stochastic in ConfBench (trial jitter, sampling, synthetic
// datasets) derives from SplitMix64 / xoshiro256** seeded from stable string
// hashes, so runs are bit-reproducible across machines and compilers.
#pragma once

#include <cstdint>
#include <string_view>

namespace confbench::sim {

/// SplitMix64: used to seed xoshiro and for cheap one-shot hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stable FNV-1a hash of a string; independent of std::hash implementation.
std::uint64_t stable_hash(std::string_view s);

/// Combines two 64-bit values into one (used for derived seeds).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

/// xoshiro256**: the workhorse generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);
  explicit Rng(std::string_view seed_string) : Rng(stable_hash(seed_string)) {}

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) using Lemire's method. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double next_gaussian();

  /// Lognormal multiplicative jitter centred on 1.0 with the given sigma
  /// (sigma == 0 returns exactly 1.0). Used to model trial-to-trial noise.
  double jitter(double sigma);

 private:
  std::uint64_t s_[4];
};

}  // namespace confbench::sim

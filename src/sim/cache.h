// Set-associative multi-level cache hierarchy simulator.
//
// The simulator models a single-core L1d/L2/LLC hierarchy with LRU
// replacement, write-allocate and write-back semantics. Workloads describe
// their memory traffic as strided range accesses; very large ranges are
// sampled deterministically and the resulting counts scaled, which keeps
// simulation cost bounded while preserving hit-rate structure.
//
// The simulator produces *event counts* (hits per level, DRAM fills,
// write-backs). Translating counts into virtual time — including the extra
// latency of TEE memory encryption / integrity checking on DRAM traffic —
// is the job of the platform cost model (see sim/costs.h), keeping the
// cache model TEE-agnostic.
#pragma once

#include <cstdint>
#include <vector>

namespace confbench::sim {

/// Geometry of one cache level.
struct CacheLevelConfig {
  std::uint64_t size_bytes = 0;
  std::uint32_t ways = 0;
  std::uint32_t line_bytes = 64;
};

/// Geometry of the whole hierarchy.
struct CacheConfig {
  CacheLevelConfig l1{48 * 1024, 12, 64};
  CacheLevelConfig l2{2 * 1024 * 1024, 16, 64};
  CacheLevelConfig llc{32 * 1024 * 1024, 16, 64};
  /// Maximum line touches simulated exactly per range access before the
  /// simulator switches to deterministic sampling.
  std::uint32_t sample_limit = 8192;
};

/// Aggregated event counts. Doubles because sampled ranges scale counts.
struct CacheCounts {
  double accesses = 0;    ///< line-granular accesses issued
  double l1_hits = 0;
  double l2_hits = 0;
  double llc_hits = 0;
  double dram_fills = 0;  ///< misses at every level (line fills from DRAM)
  double writebacks = 0;  ///< dirty evictions written back to DRAM

  CacheCounts& operator+=(const CacheCounts& o) {
    accesses += o.accesses;
    l1_hits += o.l1_hits;
    l2_hits += o.l2_hits;
    llc_hits += o.llc_hits;
    dram_fills += o.dram_fills;
    writebacks += o.writebacks;
    return *this;
  }
};

/// One strided access pattern over [base, base + bytes).
struct RangeAccess {
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;
  std::uint64_t stride = 1;  ///< byte stride between successive touches
  bool write = false;
};

class CacheSim {
 public:
  explicit CacheSim(const CacheConfig& cfg = CacheConfig{});

  /// Simulates a strided range access and returns the event deltas.
  CacheCounts access_range(const RangeAccess& a);

  /// Simulates a single line-granular access at `addr`.
  CacheCounts access(std::uint64_t addr, bool write);

  /// Cumulative counts since construction / last reset.
  [[nodiscard]] const CacheCounts& totals() const { return totals_; }

  void reset_counts() { totals_ = CacheCounts{}; }

  /// Drops all cached lines (cold caches) in addition to the counters.
  void flush();

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }

 private:
  struct Level {
    std::uint32_t sets = 0;
    std::uint32_t ways = 0;
    std::uint32_t line_shift = 0;
    // tags[set * ways + way]; 0 means empty (tags store line addr | 1).
    std::vector<std::uint64_t> tags;
    std::vector<std::uint32_t> lru;   // recency stamp per way slot
    std::vector<std::uint8_t> dirty;
    std::uint32_t stamp = 0;

    void init(const CacheLevelConfig& c);
    // Returns true on hit; on miss installs the line and reports whether a
    // dirty victim was evicted.
    bool lookup_fill(std::uint64_t line_addr, bool write, bool* evicted_dirty);
    void clear();
  };

  void access_line(std::uint64_t line_addr, bool write, CacheCounts* out);
  CacheCounts access_range_sampled(const RangeAccess& a, std::uint64_t touches,
                                   CacheCounts* out);

  CacheConfig cfg_;
  Level l1_, l2_, llc_;
  CacheCounts totals_;
};

}  // namespace confbench::sim

#include "sim/clock.h"

// VirtualClock is header-only; this translation unit anchors the library.

// Deterministic ordered fan-out for independent simulation trials.
//
// The engine itself is single-threaded by design (the determinism contract
// lives in one totally-ordered event stream), but *trials* — independent
// (config, model) cells with their own clock, RNG streams and event queue —
// share nothing and can run concurrently. parallel_for_ordered() runs
// fn(0..n-1) on up to `threads` workers and returns only when all have
// finished; the caller writes result[i] from fn(i), so merged output is in
// index order regardless of which worker ran which trial or when. With
// threads <= 1 (or n <= 1) it degenerates to a plain sequential loop — the
// reference schedule the determinism suite compares against.
#pragma once

#include <atomic>
#include <cstdlib>
#include <thread>
#include <utility>
#include <vector>

namespace confbench::sim {

/// Worker count for trial fan-out: CONFBENCH_THREADS when set (0 or 1
/// disables), else the hardware concurrency.
inline int default_threads() {
  if (const char* env = std::getenv("CONFBENCH_THREADS")) {
    const int t = std::atoi(env);
    return t > 0 ? t : 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Invokes fn(i) for every i in [0, n) and blocks until all complete.
/// Work is claimed from a shared atomic counter, so scheduling is
/// nondeterministic — fn must only touch state owned by trial i (write
/// results by index, never append). Exceptions from fn terminate (workers
/// are plain threads); trial code reports failure through its result.
template <typename Fn>
void parallel_for_ordered(std::size_t n, int threads, Fn&& fn) {
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads), n);
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < n; i = next.fetch_add(1, std::memory_order_relaxed))
        fn(i);
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace confbench::sim

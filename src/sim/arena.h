// Bump allocator with trial-scoped lifetime.
//
// A simulation trial allocates millions of short-lived objects (request
// records, spilled event closures, tail samples) whose lifetimes all end
// together when the trial's event queue drains. Arena hands out pointers by
// bumping a cursor through geometrically-growing blocks and never frees
// individually: the whole arena is released wholesale at destruction (or
// rewound with reset()). Allocation is a pointer bump — no malloc metadata,
// no per-object free, no churn in the engine hot path.
//
// Lifetime rule: anything allocated from an Arena must not be touched after
// the Arena is reset or destroyed. Non-trivially-destructible objects must
// have their destructors run by whoever placed them (the arena only
// reclaims memory). sched::EventQueue follows this rule for spilled
// actions; ArenaVector runs element destructors through the allocator
// protocol as usual.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace confbench::sim {

class Arena {
 public:
  /// First block size; subsequent blocks double up to kMaxBlockBytes.
  explicit Arena(std::size_t first_block_bytes = 1 << 14)
      : next_block_bytes_(first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  void* allocate(std::size_t bytes, std::size_t align) {
    std::uintptr_t p = reinterpret_cast<std::uintptr_t>(cur_);
    p = (p + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    if (p + bytes > reinterpret_cast<std::uintptr_t>(end_)) {
      grow(bytes + align);
      p = reinterpret_cast<std::uintptr_t>(cur_);
      p = (p + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    }
    cur_ = reinterpret_cast<unsigned char*>(p + bytes);
    bytes_served_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Rewinds to empty, keeping the largest block for reuse. Everything
  /// previously allocated becomes invalid at once — the wholesale free.
  void reset() {
    if (blocks_.empty()) return;
    // Keep only the last (largest) block; rewind the cursor to its start.
    Block last = std::move(blocks_.back());
    blocks_.clear();
    cur_ = last.data.get();
    end_ = cur_ + last.size;
    blocks_.push_back(std::move(last));
    bytes_served_ = 0;
  }

  [[nodiscard]] std::size_t bytes_served() const { return bytes_served_; }
  [[nodiscard]] std::size_t blocks() const { return blocks_.size(); }

 private:
  static constexpr std::size_t kMaxBlockBytes = std::size_t{1} << 22;

  struct Block {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t at_least) {
    std::size_t size = next_block_bytes_;
    while (size < at_least) size *= 2;
    next_block_bytes_ = std::min(size * 2, kMaxBlockBytes);
    Block b{std::make_unique<unsigned char[]>(size), size};
    cur_ = b.data.get();
    end_ = cur_ + size;
    blocks_.push_back(std::move(b));
  }

  std::vector<Block> blocks_;
  unsigned char* cur_ = nullptr;
  unsigned char* end_ = nullptr;
  std::size_t next_block_bytes_;
  std::size_t bytes_served_ = 0;
};

/// Standard-library allocator over an Arena: deallocate is a no-op, the
/// memory comes back when the arena does. Lets per-trial containers
/// (request tables, samples) live in the trial's arena.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& o) : arena_(o.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}  // wholesale free at arena reset

  [[nodiscard]] Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }

 private:
  Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace confbench::sim

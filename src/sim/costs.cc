#include "sim/costs.h"

namespace confbench::sim {

Ns compute_time_ns(double ops, const CpuCostModel& cpu) {
  return cycles_to_ns(ops * cpu.cpi, cpu.freq_ghz) * cpu.sim_slowdown;
}

Ns fp_time_ns(double ops, const CpuCostModel& cpu) {
  return cycles_to_ns(ops * cpu.fp_cpi, cpu.freq_ghz) * cpu.sim_slowdown;
}

Ns mem_protection_time_ns(const CacheCounts& c, const MemCostModel& mem) {
  const double dram_transfers = c.dram_fills + c.writebacks;
  return dram_transfers * (mem.enc_extra_ns) +
         c.dram_fills * mem.integrity_extra_ns;
}

Ns mem_time_ns(const CacheCounts& c, const MemCostModel& mem,
               const CpuCostModel& cpu) {
  const double hit_cycles = c.l1_hits * mem.l1_lat_cy +
                            c.l2_hits * mem.l2_lat_cy +
                            c.llc_hits * mem.llc_lat_cy;
  // Overlapped DRAM accesses: divide by the effective MLP. Write-backs are
  // posted and mostly hidden; charge a quarter of a fill for bandwidth.
  const double mlp = mem.mlp > 1.0 ? mem.mlp : 1.0;
  const double dram_ns =
      (c.dram_fills + 0.25 * c.writebacks) * mem.dram_lat_ns / mlp;
  const Ns protection = mem_protection_time_ns(c, mem) / mlp;
  return (cycles_to_ns(hit_cycles, cpu.freq_ghz) + dram_ns + protection) *
         cpu.sim_slowdown;
}

}  // namespace confbench::sim

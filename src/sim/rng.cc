#include "sim/rng.h"

#include <cmath>
#include <numbers>

namespace confbench::sim {

std::uint64_t stable_hash(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  SplitMix64 mix(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
  return mix.next();
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 mix(seed);
  for (auto& s : s_) s = mix.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's multiply-shift with rejection for unbiased results.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_gaussian() {
  // Box-Muller; draws two uniforms per call for simplicity and determinism.
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::jitter(double sigma) {
  if (sigma <= 0.0) return 1.0;
  return std::exp(sigma * next_gaussian());
}

}  // namespace confbench::sim

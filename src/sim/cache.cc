#include "sim/cache.h"

#include <bit>
#include <cassert>

namespace confbench::sim {

namespace {
std::uint32_t log2_u64(std::uint64_t v) {
  assert(v != 0 && (v & (v - 1)) == 0 && "must be a power of two");
  return static_cast<std::uint32_t>(std::countr_zero(v));
}
}  // namespace

void CacheSim::Level::init(const CacheLevelConfig& c) {
  ways = c.ways;
  line_shift = log2_u64(c.line_bytes);
  const std::uint64_t lines = c.size_bytes / c.line_bytes;
  sets = static_cast<std::uint32_t>(lines / c.ways);
  assert(sets > 0 && (sets & (sets - 1)) == 0 && "sets must be a power of 2");
  tags.assign(static_cast<std::size_t>(sets) * ways, 0);
  lru.assign(tags.size(), 0);
  dirty.assign(tags.size(), 0);
  stamp = 0;
}

void CacheSim::Level::clear() {
  std::fill(tags.begin(), tags.end(), 0);
  std::fill(lru.begin(), lru.end(), 0);
  std::fill(dirty.begin(), dirty.end(), 0);
  stamp = 0;
}

bool CacheSim::Level::lookup_fill(std::uint64_t line_addr, bool write,
                                  bool* evicted_dirty) {
  *evicted_dirty = false;
  const std::uint64_t tag = (line_addr << 1) | 1;
  const std::uint32_t set = static_cast<std::uint32_t>(line_addr) & (sets - 1);
  const std::size_t base = static_cast<std::size_t>(set) * ways;
  ++stamp;
  std::size_t victim = base;
  std::uint32_t victim_stamp = ~0u;
  for (std::size_t i = base; i < base + ways; ++i) {
    if (tags[i] == tag) {
      lru[i] = stamp;
      if (write) dirty[i] = 1;
      return true;
    }
    if (tags[i] == 0) {
      // Prefer empty slots; stamp 0 guarantees they win the LRU scan below
      // only if no earlier empty slot was chosen, so short-circuit here.
      victim = i;
      victim_stamp = 0;
      break;
    }
    if (lru[i] < victim_stamp) {
      victim_stamp = lru[i];
      victim = i;
    }
  }
  if (tags[victim] != 0 && dirty[victim]) *evicted_dirty = true;
  tags[victim] = tag;
  lru[victim] = stamp;
  dirty[victim] = write ? 1 : 0;
  return false;
}

CacheSim::CacheSim(const CacheConfig& cfg) : cfg_(cfg) {
  l1_.init(cfg_.l1);
  l2_.init(cfg_.l2);
  llc_.init(cfg_.llc);
}

void CacheSim::flush() {
  l1_.clear();
  l2_.clear();
  llc_.clear();
  reset_counts();
}

void CacheSim::access_line(std::uint64_t line_addr, bool write,
                           CacheCounts* out) {
  out->accesses += 1;
  bool dirty_evict = false;
  if (l1_.lookup_fill(line_addr, write, &dirty_evict)) {
    out->l1_hits += 1;
    return;
  }
  // A dirty L1 victim propagates into L2 in hardware; we approximate by
  // counting only DRAM-bound write-backs (dirty LLC victims) below, plus
  // dirty L1/L2 victims as LLC writes (free in our model).
  if (l2_.lookup_fill(line_addr, write, &dirty_evict)) {
    out->l2_hits += 1;
    return;
  }
  if (llc_.lookup_fill(line_addr, write, &dirty_evict)) {
    out->llc_hits += 1;
    return;
  }
  out->dram_fills += 1;
  if (dirty_evict) out->writebacks += 1;
}

CacheCounts CacheSim::access(std::uint64_t addr, bool write) {
  CacheCounts out;
  access_line(addr >> l1_.line_shift, write, &out);
  totals_ += out;
  return out;
}

CacheCounts CacheSim::access_range(const RangeAccess& a) {
  CacheCounts out;
  if (a.bytes == 0) return out;
  const std::uint64_t line = cfg_.l1.line_bytes;
  const std::uint64_t stride = a.stride == 0 ? line : a.stride;

  // Number of distinct touches issued by the pattern.
  const std::uint64_t touches = (a.bytes + stride - 1) / stride;
  // Collapse sub-line strides: successive touches within one line hit L1
  // trivially; issue one access per line instead and record the rest as
  // L1 hits directly (they cannot miss).
  if (stride < line) {
    const std::uint64_t lines = (a.bytes + line - 1) / line;
    const std::uint64_t folded = touches > lines ? touches - lines : 0;
    out.accesses += static_cast<double>(folded);
    out.l1_hits += static_cast<double>(folded);
    RangeAccess per_line{a.base, a.bytes, line, a.write};
    CacheCounts sub = access_range_sampled(per_line, lines, &out);
    (void)sub;
    totals_ += out;
    return out;
  }
  access_range_sampled(a, touches, &out);
  totals_ += out;
  return out;
}

CacheCounts CacheSim::access_range_sampled(const RangeAccess& a,
                                           std::uint64_t touches,
                                           CacheCounts* out) {
  const std::uint64_t stride = a.stride;
  if (touches <= cfg_.sample_limit) {
    for (std::uint64_t i = 0; i < touches; ++i) {
      access_line((a.base + i * stride) >> l1_.line_shift, a.write, out);
    }
    return *out;
  }
  // Deterministic systematic sampling: simulate `sample_limit` touches
  // evenly spread over the range, then scale the event deltas.
  CacheCounts sampled;
  const std::uint64_t n = cfg_.sample_limit;
  const double step = static_cast<double>(touches) / static_cast<double>(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::uint64_t>(static_cast<double>(i) * step);
    access_line((a.base + idx * stride) >> l1_.line_shift, a.write, &sampled);
  }
  const double scale = static_cast<double>(touches) / static_cast<double>(n);
  out->accesses += sampled.accesses * scale;
  out->l1_hits += sampled.l1_hits * scale;
  out->l2_hits += sampled.l2_hits * scale;
  out->llc_hits += sampled.llc_hits * scale;
  out->dram_fills += sampled.dram_fills * scale;
  out->writebacks += sampled.writebacks * scale;
  return *out;
}

}  // namespace confbench::sim

#include "sim/memenc.h"

// Header-only; anchors the translation unit.

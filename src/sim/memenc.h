// Inline memory-encryption engine accounting.
//
// Models the memory-controller crypto unit (Intel TME-MK for TDX, AMD
// SME/SNP AES engine, Arm MEC for CCA). The engine itself only *counts*
// protected DRAM traffic and reports the protection time computed by the
// cost model; it exists so the metrics layer can expose encryption work as a
// first-class counter, mirroring how the paper reasons about overheads.
#pragma once

#include <cstdint>

#include "sim/cache.h"
#include "sim/costs.h"

namespace confbench::sim {

class MemoryEncryptionEngine {
 public:
  /// `enabled` is false on non-confidential VMs: traffic passes through
  /// unencrypted and no protection time accrues.
  explicit MemoryEncryptionEngine(bool enabled) : enabled_(enabled) {}

  /// Records the DRAM-side traffic of a batch of cache events and returns
  /// the protection time to charge (0 when disabled).
  Ns record(const CacheCounts& c, const MemCostModel& mem) {
    if (!enabled_) return 0.0;
    lines_decrypted_ += c.dram_fills;
    lines_encrypted_ += c.writebacks;
    const Ns t = mem_protection_time_ns(c, mem);
    protection_time_ += t;
    return t;
  }

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] double lines_encrypted() const { return lines_encrypted_; }
  [[nodiscard]] double lines_decrypted() const { return lines_decrypted_; }
  [[nodiscard]] Ns protection_time() const { return protection_time_; }

  void reset() {
    lines_encrypted_ = 0;
    lines_decrypted_ = 0;
    protection_time_ = 0;
  }

 private:
  bool enabled_;
  double lines_encrypted_ = 0;  ///< write-backs through the AES engine
  double lines_decrypted_ = 0;  ///< line fills through the AES engine
  Ns protection_time_ = 0;
};

}  // namespace confbench::sim

// Cost-model tables that translate simulated events into virtual time.
//
// Each TEE platform (src/tee) instantiates one `PlatformCosts` table for its
// secure VMs and one for its normal VMs. The tables are the single place
// where "how expensive is X on platform Y" lives; workloads and the VM layer
// only emit events.
#pragma once

#include "sim/cache.h"
#include "sim/time.h"

namespace confbench::sim {

/// Core execution costs.
struct CpuCostModel {
  double freq_ghz = 3.0;      ///< nominal core frequency
  double cpi = 0.5;           ///< cycles per abstract ALU op (superscalar)
  double fp_cpi = 1.0;        ///< cycles per floating-point op
  double sim_slowdown = 1.0;  ///< multiplicative simulator penalty (FVP)
};

/// Memory hierarchy latency + TEE memory-protection costs.
struct MemCostModel {
  double l1_lat_cy = 4;
  double l2_lat_cy = 14;
  double llc_lat_cy = 42;
  double dram_lat_ns = 85;
  /// Effective memory-level parallelism: DRAM latency is divided by this to
  /// model overlapped misses in streaming code.
  double mlp = 4.0;
  /// Extra nanoseconds per DRAM line transfer for inline memory encryption
  /// (AES-XTS in the memory controller). Zero on non-secure VMs.
  double enc_extra_ns = 0.0;
  /// Extra nanoseconds per DRAM line fill for integrity verification
  /// (TDX logical-integrity / CCA GPT+MEC checks).
  double integrity_extra_ns = 0.0;
};

/// Guest/host transition costs.
struct ExitCostModel {
  double syscall_ns = 120;          ///< in-guest syscall (no exit)
  double exit_rate_per_syscall = 0.08;  ///< fraction of syscalls causing exits
  double vmexit_ns = 0.0;           ///< cost of one VM exit + resume
  double secure_exit_extra_ns = 0;  ///< added on secure VMs (TDCALL/RMI path)
  double timer_wake_exit = 1.0;     ///< exits per sleep/wake event
  double ctx_switch_ns = 1100;      ///< in-guest context switch
  double exit_rate_per_ctx_switch = 0.35;  ///< idle/wake exits per switch
  double page_fault_ns = 1900;      ///< minor-fault handling in guest
  double page_fault_extra_ns = 0;   ///< secure page-accept / RMP / GPT cost
  double spawn_ns = 230 * kUs;      ///< fork+exec of a small process
};

/// Storage and network I/O costs.
struct IoCostModel {
  double blk_fixed_ns = 18 * kUs;  ///< per block-device request (virtio)
  double blk_byte_ns = 0.25;       ///< per byte transferred (~4 GB/s)
  double flush_ns = 110 * kUs;     ///< device write-barrier (fsync) latency
  /// Bounce-buffer (swiotlb) penalty applied on secure VMs that cannot DMA
  /// into private memory (Intel TDX): extra copies + re-encryption.
  double bounce_fixed_ns = 0.0;
  double bounce_byte_ns = 0.0;
  double net_rtt_ns = 120 * kUs;   ///< LAN round-trip
  double net_byte_ns = 0.085;      ///< ~11.7 GB/s effective on-wire copy rate
};

/// The complete per-(platform, secure?) cost table.
struct PlatformCosts {
  CpuCostModel cpu;
  MemCostModel mem;
  ExitCostModel exit;
  IoCostModel io;
  /// Lognormal sigma applied once per trial to model run-to-run variance.
  double trial_jitter_sigma = 0.01;
};

/// Time for `ops` abstract integer/ALU operations.
Ns compute_time_ns(double ops, const CpuCostModel& cpu);

/// Time for `ops` floating-point operations.
Ns fp_time_ns(double ops, const CpuCostModel& cpu);

/// Time for a batch of cache events under the given model, including the
/// memory-encryption and integrity surcharges on DRAM traffic.
Ns mem_time_ns(const CacheCounts& c, const MemCostModel& mem,
               const CpuCostModel& cpu);

/// Extra DRAM-side time attributable only to memory protection (used by the
/// metrics layer to expose "encryption overhead" as a counter).
Ns mem_protection_time_ns(const CacheCounts& c, const MemCostModel& mem);

}  // namespace confbench::sim

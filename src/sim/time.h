// Virtual time units used across the ConfBench simulation.
//
// All simulated durations are expressed in (double) nanoseconds of virtual
// time. Virtual time is fully deterministic: it is advanced only by explicit
// charges from cost models, never by the wall clock.
#pragma once

#include <cstdint>

namespace confbench::sim {

/// Virtual duration in nanoseconds.
using Ns = double;

constexpr Ns kNs = 1.0;
constexpr Ns kUs = 1e3;
constexpr Ns kMs = 1e6;
constexpr Ns kSec = 1e9;

/// Converts a cycle count at frequency `ghz` into nanoseconds.
constexpr Ns cycles_to_ns(double cycles, double ghz) { return cycles / ghz; }

}  // namespace confbench::sim

// Deterministic virtual clock.
#pragma once

#include <cassert>

#include "sim/time.h"

namespace confbench::sim {

/// A monotonically advancing virtual clock. The clock only moves when a cost
/// model charges time to it, which makes every simulated run reproducible.
class VirtualClock {
 public:
  VirtualClock() = default;

  /// Advances the clock by `d` nanoseconds. Negative charges are a logic
  /// error (cost models must never produce them) and are clamped in release.
  void advance(Ns d) {
    assert(d >= 0.0 && "negative time charge");
    if (d > 0.0) now_ += d;
  }

  /// Current virtual time since clock creation, in nanoseconds.
  [[nodiscard]] Ns now() const { return now_; }

  /// Resets the clock to zero (used between benchmark trials).
  void reset() { now_ = 0.0; }

 private:
  Ns now_ = 0.0;
};

/// RAII helper measuring the virtual time elapsed across a scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(const VirtualClock& clock, Ns& out)
      : clock_(clock), out_(out), start_(clock.now()) {}
  ~ScopedTimer() { out_ = clock_.now() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const VirtualClock& clock_;
  Ns& out_;
  Ns start_;
};

}  // namespace confbench::sim

#include "fault/fault.h"

#include <algorithm>
#include <stdexcept>

namespace confbench::fault {

std::string_view to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kVmCrash:
      return "vm_crash";
    case FaultKind::kAgentHang:
      return "agent_hang";
    case FaultKind::kBrownout:
      return "brownout";
    case FaultKind::kAttestOutage:
      return "attest_outage";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kLinkSlow:
      return "link_slow";
    case FaultKind::kLinkDown:
      return "link_down";
    case FaultKind::kShardJoin:
      return "shard_join";
    case FaultKind::kShardLeave:
      return "shard_leave";
    case FaultKind::kReplicaAdd:
      return "replica_add";
    case FaultKind::kReplicaRemove:
      return "replica_remove";
    case FaultKind::kJoinCrash:
      return "join_crash";
  }
  return "?";
}

namespace {

bool is_churn(FaultKind k) {
  return k == FaultKind::kShardJoin || k == FaultKind::kShardLeave ||
         k == FaultKind::kReplicaAdd || k == FaultKind::kReplicaRemove;
}

}  // namespace

FaultPlan& FaultPlan::add(FaultEvent e) {
  if (e.at_ns < 0) throw std::invalid_argument("fault at_ns must be >= 0");
  if (e.duration_ns < 0)
    throw std::invalid_argument("fault duration_ns must be >= 0");
  if (e.kind != FaultKind::kVmCrash && !is_churn(e.kind) &&
      e.duration_ns <= 0)
    throw std::invalid_argument("windowed fault needs duration_ns > 0");
  if (e.kind == FaultKind::kReplicaAdd && e.replica == 0)
    throw std::invalid_argument("replica_add count must be >= 1");
  if (e.kind == FaultKind::kBrownout && e.severity < 1.0)
    throw std::invalid_argument("brownout severity must be >= 1");
  if (e.kind == FaultKind::kLinkSlow) {
    if (e.severity < 1.0)
      throw std::invalid_argument("slow-link latency factor must be >= 1");
    if (e.src.empty() && e.dst.empty() && e.delay_ns <= 0)
      throw std::invalid_argument(
          "replica-addressed slow link needs delay_ns > 0");
  }
  if ((e.kind == FaultKind::kLinkSlow || e.kind == FaultKind::kLinkDown) &&
      (e.src.empty() != e.dst.empty()))
    throw std::invalid_argument("link events need both src and dst, or "
                                "neither (replica-addressed)");
  // Stable insertion keeps equal-time events in authoring order, which is
  // the order the experiment replays them (matching EventQueue's seq rule).
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), e.at_ns,
      [](sim::Ns t, const FaultEvent& ev) { return t < ev.at_ns; });
  events_.insert(pos, e);
  return *this;
}

FaultPlan& FaultPlan::crash(sim::Ns at, std::uint32_t replica) {
  return add({.kind = FaultKind::kVmCrash, .at_ns = at, .replica = replica});
}

FaultPlan& FaultPlan::hang(sim::Ns at, sim::Ns duration,
                           std::uint32_t replica) {
  return add({.kind = FaultKind::kAgentHang,
              .at_ns = at,
              .duration_ns = duration,
              .replica = replica});
}

FaultPlan& FaultPlan::brownout(sim::Ns at, sim::Ns duration,
                               std::uint32_t replica, double severity) {
  return add({.kind = FaultKind::kBrownout,
              .at_ns = at,
              .duration_ns = duration,
              .replica = replica,
              .severity = severity});
}

FaultPlan& FaultPlan::attest_outage(sim::Ns at, sim::Ns duration) {
  return add({.kind = FaultKind::kAttestOutage,
              .at_ns = at,
              .duration_ns = duration});
}

FaultPlan& FaultPlan::partition(sim::Ns at, sim::Ns duration,
                                std::uint32_t replica) {
  return add({.kind = FaultKind::kPartition,
              .at_ns = at,
              .duration_ns = duration,
              .replica = replica});
}

FaultPlan& FaultPlan::slow_link(sim::Ns at, sim::Ns duration,
                                std::uint32_t replica, sim::Ns delay) {
  return add({.kind = FaultKind::kLinkSlow,
              .at_ns = at,
              .duration_ns = duration,
              .replica = replica,
              .severity = 1.0,
              .delay_ns = delay});
}

FaultPlan& FaultPlan::slow_link(sim::Ns at, sim::Ns duration, std::string src,
                                std::string dst, double factor) {
  return add({.kind = FaultKind::kLinkSlow,
              .at_ns = at,
              .duration_ns = duration,
              .replica = FaultEvent::kNoReplica,
              .severity = factor,
              .src = std::move(src),
              .dst = std::move(dst)});
}

FaultPlan& FaultPlan::link_down(sim::Ns at, sim::Ns duration,
                                std::uint32_t replica) {
  return add({.kind = FaultKind::kLinkDown,
              .at_ns = at,
              .duration_ns = duration,
              .replica = replica});
}

FaultPlan& FaultPlan::link_down(sim::Ns at, sim::Ns duration, std::string src,
                                std::string dst) {
  return add({.kind = FaultKind::kLinkDown,
              .at_ns = at,
              .duration_ns = duration,
              .replica = FaultEvent::kNoReplica,
              .src = std::move(src),
              .dst = std::move(dst)});
}

FaultPlan& FaultPlan::shard_join(sim::Ns at) {
  return add({.kind = FaultKind::kShardJoin, .at_ns = at});
}

FaultPlan& FaultPlan::shard_leave(sim::Ns at, std::uint32_t shard) {
  return add({.kind = FaultKind::kShardLeave, .at_ns = at, .replica = shard});
}

FaultPlan& FaultPlan::replica_add(sim::Ns at, std::uint32_t count) {
  return add({.kind = FaultKind::kReplicaAdd, .at_ns = at, .replica = count});
}

FaultPlan& FaultPlan::replica_remove(sim::Ns at, std::uint32_t replica) {
  return add(
      {.kind = FaultKind::kReplicaRemove, .at_ns = at, .replica = replica});
}

FaultPlan& FaultPlan::join_crash(sim::Ns at, sim::Ns duration) {
  return add({.kind = FaultKind::kJoinCrash,
              .at_ns = at,
              .duration_ns = duration});
}

FaultPlan& FaultPlan::periodic_crashes(sim::Ns first_at, sim::Ns period,
                                       int count, std::uint32_t fleet_size) {
  if (period <= 0) throw std::invalid_argument("crash period must be > 0");
  if (fleet_size == 0) throw std::invalid_argument("fleet_size must be > 0");
  for (int i = 0; i < count; ++i)
    crash(first_at + static_cast<double>(i) * period,
          static_cast<std::uint32_t>(i) % fleet_size);
  return *this;
}

bool FaultPlan::has_churn() const {
  return std::any_of(events_.begin(), events_.end(),
                     [](const FaultEvent& e) { return is_churn(e.kind); });
}

std::vector<std::pair<sim::Ns, sim::Ns>> FaultPlan::attest_outages() const {
  std::vector<std::pair<sim::Ns, sim::Ns>> out;
  for (const FaultEvent& e : events_)
    if (e.kind == FaultKind::kAttestOutage)
      out.emplace_back(e.at_ns, e.at_ns + e.duration_ns);
  return out;
}

std::vector<std::pair<sim::Ns, sim::Ns>> FaultPlan::join_crashes() const {
  std::vector<std::pair<sim::Ns, sim::Ns>> out;
  for (const FaultEvent& e : events_)
    if (e.kind == FaultKind::kJoinCrash)
      out.emplace_back(e.at_ns, e.at_ns + e.duration_ns);
  return out;
}

}  // namespace confbench::fault

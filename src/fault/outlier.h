// Gray-failure outlier detection from per-replica latency EWMAs.
//
// Binary failure detectors (health probes, dispatch timeouts) only see
// fail-stop behaviour. A gray-failing replica — slow link, degrading disk,
// noisy neighbour — answers every probe in time while serving real traffic
// several times slower than its peers, so nothing ever trips. The
// OutlierDetector closes that gap: it keeps an exponentially weighted
// moving average of completed-request latency per replica and flags a
// replica whose EWMA exceeds `ratio` times the fleet median EWMA. The
// cluster feeds flags into the replica's CircuitBreaker as failure
// evidence, so gray failures trip the same machinery as crashes.
//
// Comparing against the fleet *median* (not a fixed bound) makes the
// detector self-calibrating across platforms: a secure CCA fleet is
// uniformly ~7x slower than a normal TDX fleet, but an outlier within
// either fleet still stands out by the same ratio.
//
// `forgive()` resets a replica's EWMA when it re-enters rotation (breaker
// half-open) — otherwise the stale pre-recovery average would instantly
// re-trip the breaker on a now-healthy replica.
//
// Deterministic, no RNG, no event wiring; the cluster owns when observe()
// and outlier() are called.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace confbench::fault {

struct OutlierConfig {
  bool enabled = false;
  /// EWMA smoothing factor in (0, 1]; higher reacts faster.
  double alpha = 0.2;
  /// Flag a replica when its EWMA exceeds ratio * fleet-median EWMA.
  double ratio = 3.0;
  /// Samples a replica must accumulate before it can be flagged (and
  /// before it participates in the fleet median).
  std::uint64_t min_samples = 20;
};

class OutlierDetector {
 public:
  OutlierDetector(OutlierConfig cfg, std::size_t replicas);

  /// Feeds one completed-request latency for `replica`.
  void observe(std::size_t replica, sim::Ns latency_ns);

  /// Is `replica` currently a latency outlier? False while disabled, while
  /// the replica (or the fleet) lacks min_samples, or when fewer than two
  /// replicas have warmed up (a lone replica has no peers to deviate from).
  [[nodiscard]] bool outlier(std::size_t replica) const;

  /// Resets a replica's EWMA and sample count (readmission after recovery
  /// or migration, or fleet growth reusing a slot).
  void forgive(std::size_t replica);

  [[nodiscard]] sim::Ns ewma_ns(std::size_t replica) const;
  /// Median EWMA across replicas with >= min_samples; 0 if fewer than one.
  [[nodiscard]] sim::Ns fleet_median_ns() const;
  [[nodiscard]] const OutlierConfig& config() const { return cfg_; }

 private:
  struct Track {
    double ewma_ns = 0;
    std::uint64_t samples = 0;
  };
  OutlierConfig cfg_;
  std::vector<Track> tracks_;
};

}  // namespace confbench::fault

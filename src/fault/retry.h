// Retry policy: exponential backoff with deterministic jitter, per-request
// retry budgets and deadline-aware give-up.
//
// Replaces the gateway's original fixed-attempt loop. The policy is pure
// decision logic over (attempt number, time already spent, deadline): it
// holds no mutable state and draws from no shared RNG stream — jitter is
// derived by hashing (seed, retry index) through SplitMix64, so retry
// schedules are reproducible per request and adding a retrying caller never
// perturbs any other consumer's random sequence.
//
// Budget semantics: `budget_ns` caps the *total* virtual time a request may
// spend across all attempts and backoffs (0 = unlimited). A retry is only
// granted when (a) attempts remain, (b) the budget would not already be
// exceeded, and (c) waiting out the next backoff could still beat the
// caller's deadline — retrying into a certain deadline miss is wasted work
// and is refused up front.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.h"

namespace confbench::fault {

/// Typed outcome of a retry decision. Callers that give up must attribute
/// the failure (map the verdict to a core::ErrorCode) rather than silently
/// dropping the request — the chaos experiments assert that every offered
/// request is accounted for with a reason.
enum class RetryVerdict : std::uint8_t {
  kRetry,              ///< the retry may proceed
  kAttemptsExhausted,  ///< max_attempts reached
  kBudgetExhausted,    ///< per-request retry budget spent
  kDeadlineExceeded,   ///< next backoff cannot beat the caller's deadline
};

std::string_view to_string(RetryVerdict v);

struct RetryConfig {
  /// Total attempts (1 initial + max_attempts-1 retries). 1 disables
  /// retries entirely.
  int max_attempts = 3;
  sim::Ns base_backoff_ns = 2 * sim::kMs;  ///< backoff before retry #1
  double multiplier = 2.0;                 ///< exponential growth per retry
  sim::Ns max_backoff_ns = 200 * sim::kMs; ///< backoff ceiling
  /// Deterministic jitter fraction: each backoff is scaled by a factor in
  /// [1 - jitter, 1 + jitter] derived from (seed, retry). 0 disables.
  double jitter = 0.25;
  /// Per-request retry budget: total virtual time (attempts + backoffs)
  /// this request may consume before the policy gives up. 0 = unlimited.
  sim::Ns budget_ns = 0;
};

class RetryPolicy {
 public:
  /// `seed` individualises the jitter sequence (callers derive it from the
  /// request identity so concurrent retriers do not synchronise).
  RetryPolicy(RetryConfig cfg, std::uint64_t seed) : cfg_(cfg), seed_(seed) {}

  /// Backoff to wait before retry number `retry` (1-based), jittered and
  /// capped. Deterministic in (config, seed, retry).
  [[nodiscard]] sim::Ns backoff_ns(int retry) const;

  /// Decides retry number `retry` (1-based) after `spent_ns` of virtual
  /// time has elapsed since the request started. `deadline_ns` is the
  /// request's absolute latency budget (0 = none). Checks run in a fixed
  /// order — attempts, then budget, then deadline — so the verdict for a
  /// given input is stable and test-assertable.
  [[nodiscard]] RetryVerdict verdict(int retry, sim::Ns spent_ns,
                                     sim::Ns deadline_ns) const;

  /// Whether retry number `retry` (1-based) may proceed; equivalent to
  /// `verdict(...) == RetryVerdict::kRetry`.
  [[nodiscard]] bool should_retry(int retry, sim::Ns spent_ns,
                                  sim::Ns deadline_ns) const;

  [[nodiscard]] const RetryConfig& config() const { return cfg_; }

 private:
  RetryConfig cfg_;
  std::uint64_t seed_;
};

}  // namespace confbench::fault

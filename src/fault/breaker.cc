#include "fault/breaker.h"

namespace confbench::fault {

std::string_view to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "?";
}

bool CircuitBreaker::allow(sim::Ns now) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now - opened_at_ < cfg_.open_cooldown_ns) return false;
      state_ = BreakerState::kHalfOpen;
      half_open_ok_ = 0;
      probe_in_flight_ = true;
      return true;
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::record_success(sim::Ns now) {
  (void)now;
  failures_ = 0;
  switch (state_) {
    case BreakerState::kClosed:
      break;
    case BreakerState::kOpen:
      // A success while nominally open (e.g. a late reply from before the
      // trip) is not probe evidence; stay open until the cooldown probe.
      break;
    case BreakerState::kHalfOpen:
      probe_in_flight_ = false;
      if (++half_open_ok_ >= cfg_.success_threshold)
        state_ = BreakerState::kClosed;
      break;
  }
}

void CircuitBreaker::record_failure(sim::Ns now) {
  switch (state_) {
    case BreakerState::kClosed:
      if (++failures_ >= cfg_.failure_threshold) open(now);
      break;
    case BreakerState::kOpen:
      break;  // already open; the cooldown clock keeps running
    case BreakerState::kHalfOpen:
      probe_in_flight_ = false;
      open(now);  // failed probe: re-open and restart the cooldown
      break;
  }
}

void CircuitBreaker::open(sim::Ns now) {
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  failures_ = 0;
  half_open_ok_ = 0;
  probe_in_flight_ = false;
  ++times_opened_;
}

}  // namespace confbench::fault

#include "fault/linkfault.h"

#include <algorithm>
#include <stdexcept>

namespace confbench::fault {

void LinkFaultDriver::advance(sim::Ns now) {
  if (now < last_now_)
    throw std::invalid_argument("LinkFaultDriver::advance: time went back");
  last_now_ = now;

  // Desired state per directed link from the currently-active windows.
  LinkMap want;
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind != FaultKind::kLinkSlow && e.kind != FaultKind::kLinkDown)
      continue;
    if (e.src.empty()) continue;  // replica-addressed: cluster sim's job
    if (!(e.at_ns <= now && now < e.at_ns + e.duration_ns)) continue;
    auto& slot = want.emplace(std::make_pair(e.src, e.dst),
                              std::make_pair(net::LinkState::kUp, 1.0))
                     .first->second;
    if (e.kind == FaultKind::kLinkDown) {
      slot.first = net::LinkState::kDown;
      slot.second = 1.0;
    } else if (slot.first != net::LinkState::kDown) {
      slot.first = net::LinkState::kSlow;
      slot.second = std::max(slot.second, e.severity);
    }
  }

  // Compare against what *this driver* applied last time — not against the
  // network's resolved view, which folds in wildcard rules owned by other
  // callers (e.g. set_partitioned).
  for (const auto& [key, state] : want) {
    const auto it = applied_.find(key);
    if (it != applied_.end() && it->second == state) continue;
    net_.set_link(key.first, key.second, state.first, state.second);
    ++transitions_;
  }
  for (const auto& [key, state] : applied_) {
    if (want.count(key)) continue;
    net_.set_link(key.first, key.second, net::LinkState::kUp);
    ++transitions_;
  }
  applied_ = std::move(want);
}

}  // namespace confbench::fault

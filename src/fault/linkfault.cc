#include "fault/linkfault.h"

#include <algorithm>
#include <stdexcept>

namespace confbench::fault {

std::optional<ReplicaLinkWindow> replica_link_view(const FaultEvent& e) {
  if (e.kind != FaultKind::kLinkSlow && e.kind != FaultKind::kLinkDown)
    return std::nullopt;
  if (!e.src.empty()) return std::nullopt;  // host-addressed
  return ReplicaLinkWindow{.down = e.kind == FaultKind::kLinkDown,
                           .delay_ns = e.delay_ns};
}

LinkFaultDriver::LinkFaultDriver(net::Network& net, const FaultPlan& plan,
                                 std::optional<ReplicaAddressing> replicas)
    : net_(net), plan_(plan), replicas_(std::move(replicas)) {
  if (replicas_ && replicas_->hop_ns <= 0)
    throw std::invalid_argument("ReplicaAddressing::hop_ns must be > 0");
}

void LinkFaultDriver::advance(sim::Ns now) {
  if (now < last_now_)
    throw std::invalid_argument("LinkFaultDriver::advance: time went back");
  last_now_ = now;

  // Desired state per directed link from the currently-active windows.
  LinkMap want;
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind != FaultKind::kLinkSlow && e.kind != FaultKind::kLinkDown)
      continue;
    if (!(e.at_ns <= now && now < e.at_ns + e.duration_ns)) continue;
    std::pair<std::string, std::string> key;
    bool down;
    double factor = 1.0;
    if (const auto view = replica_link_view(e)) {
      if (!replicas_) continue;  // default: cluster sim's job
      // Response path of the replica's fabric host: requests still arrive,
      // answers are lost (down) or delayed (slow).
      key = {replicas_->host_prefix + std::to_string(e.replica),
             net::Network::kAnyHost};
      down = view->down;
      if (!down)
        factor = 1.0 + static_cast<double>(view->delay_ns) /
                           static_cast<double>(replicas_->hop_ns);
    } else {
      key = {e.src, e.dst};
      down = e.kind == FaultKind::kLinkDown;
      factor = e.severity;
    }
    auto& slot =
        want.emplace(key, std::make_pair(net::LinkState::kUp, 1.0))
            .first->second;
    if (down) {
      slot.first = net::LinkState::kDown;
      slot.second = 1.0;
    } else if (slot.first != net::LinkState::kDown) {
      slot.first = net::LinkState::kSlow;
      slot.second = std::max(slot.second, factor);
    }
  }

  // Compare against what *this driver* applied last time — not against the
  // network's resolved view, which folds in wildcard rules owned by other
  // callers (e.g. set_partitioned).
  for (const auto& [key, state] : want) {
    const auto it = applied_.find(key);
    if (it != applied_.end() && it->second == state) continue;
    net_.set_link(key.first, key.second, state.first, state.second);
    ++transitions_;
  }
  for (const auto& [key, state] : applied_) {
    if (want.count(key)) continue;
    net_.set_link(key.first, key.second, net::LinkState::kUp);
    ++transitions_;
  }
  applied_ = std::move(want);
}

}  // namespace confbench::fault

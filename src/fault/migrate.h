// Live-migration cost model and drain planner.
//
// The graceful alternative to crash-and-reboot: a degraded (gray-failing)
// replica is drained — admissions stop, its backlog finishes — while its
// memory pre-copies to a target host in the background, then a short
// blackout transfers the dirty residue and the replica resumes on the
// target. For a normal VM the blackout is just the dirty-page copy; a
// confidential VM additionally pays, on the target:
//   * private-memory re-acceptance — every migrated page must be
//     re-encrypted under the target's key and re-accepted into the guest
//     (TDX TDH.IMPORT / SNP SNP_PAGE_MOVE / CCA granule delegation), priced
//     from the same measured boot machinery as crash recovery: the
//     re-acceptance premium is the measured (secure boot - normal boot)
//     gap of a real vm::GuestVm pair;
//   * encrypted export of every transferred page on the source (the VMM
//     cannot read private memory, so each page funnels through the TEE's
//     export primitive), charged per 4 KiB page on both pre-copy and
//     stop-copy streams;
//   * re-attestation — the migrated guest's measurement must be re-verified
//     on the target before traffic is admitted, priced by the same
//     measure_attest_ns() round as crash recovery (and stalled by any
//     scheduled attestation-service outage, like recovery is).
//
// This is exactly why "migrate beats reboot" flips between fleets: the
// normal-VM blackout is tiny next to a cold boot, while TEE re-acceptance +
// re-attest grow the secure blackout until the gap narrows — or inverts on
// slow platforms (CCA's simulated boot premium is enormous, but so is its
// per-page cost).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace confbench::attest::svc {
class VerifyService;
}

namespace confbench::fault {

/// Where a migrating guest lands. kLeastLoaded minimizes the target's
/// post-migration backlog; kAntiAffinity keeps the guest off the source's
/// rack first (a rack-level fault should not take out both incarnations)
/// and breaks ties least-loaded. Both are deterministic: equal candidates
/// resolve by list order.
enum class PlacementPolicy : std::uint8_t { kLeastLoaded, kAntiAffinity };

std::string_view to_string(PlacementPolicy p);

/// One candidate target host for a migration.
struct PlacementCandidate {
  std::string host;        ///< target host name (exported in the trace note)
  std::uint64_t load = 0;  ///< current backlog / in-flight work on the host
  std::string rack;        ///< failure-domain label for anti-affinity
};

/// Picks the index of the migration target among `candidates` under
/// `policy`. Anti-affinity prefers hosts outside `source_rack` (falling
/// back to least-loaded across all candidates when every host shares the
/// source's rack); least-loaded ignores racks entirely. Ties break by the
/// lowest index, so the choice is deterministic for a fixed candidate
/// order. Returns 0 for a single candidate; behaviour is undefined for an
/// empty list (callers always have at least the source's pool peers).
[[nodiscard]] std::size_t choose_target(
    PlacementPolicy policy, const std::vector<PlacementCandidate>& candidates,
    std::string_view source_rack);

struct MigrationConfig {
  std::uint64_t ram_bytes = 1ULL << 30;    ///< migrated guest footprint
  std::uint64_t dirty_bytes = 64ULL << 20; ///< residue re-copied in blackout
  double stream_bytes_per_ns = 2.5;        ///< migration stream (~2.5 GB/s)
};

/// Measured/derived costs of one live migration. Pre-copy overlaps service
/// (the source keeps draining its backlog); the blackout is the
/// unavailability window.
struct MigrationCosts {
  sim::Ns pre_copy_ns = 0;   ///< background bulk transfer (overlaps drain)
  sim::Ns stop_copy_ns = 0;  ///< blackout: dirty-page transfer
  sim::Ns reaccept_ns = 0;   ///< target-side private-memory re-acceptance
  sim::Ns reattest_ns = 0;   ///< target-side re-attestation round
  [[nodiscard]] sim::Ns blackout_ns() const {
    return stop_copy_ns + reaccept_ns + reattest_ns;
  }
  [[nodiscard]] sim::Ns total_ns() const {
    return pre_copy_ns + blackout_ns();
  }
};

/// Prices a live migration for one (platform, secure) pair through the real
/// machinery: re-acceptance is the measured boot gap between a secure and a
/// normal GuestVm (the same eager page-acceptance path crash recovery
/// pays), re-attestation is a real measure_attest_ns() round, and both
/// transfer phases scale with the platform's simulator slowdown. Normal VMs
/// pay only the two copy phases. Throws std::invalid_argument for an
/// unknown platform name.
[[nodiscard]] MigrationCosts measure_migration(const std::string& platform,
                                               bool secure,
                                               const MigrationConfig& cfg = {});

/// Phase boundaries of one planned migration, all absolute virtual times.
struct MigrationSchedule {
  sim::Ns detect_ns = 0;         ///< degradation detected; pre-copy starts
  sim::Ns precopy_end_ns = 0;    ///< bulk transfer done
  sim::Ns drain_end_ns = 0;      ///< source backlog drained
  sim::Ns blackout_start_ns = 0; ///< max(precopy_end, drain_end)
  sim::Ns reattest_start_ns = 0; ///< after stop-copy + re-accept (+ stall)
  sim::Ns blackout_end_ns = 0;   ///< replica live on target
  /// Time-to-restore: detection to target live.
  [[nodiscard]] sim::Ns ttr_ns() const { return blackout_end_ns - detect_ns; }
};

/// Turns MigrationCosts into absolute phase times, stalling the
/// re-attestation step behind scheduled attestation-service outages exactly
/// like crash recovery does — a migration is not an escape hatch from an
/// attestation outage.
class MigrationPlanner {
 public:
  MigrationPlanner(MigrationCosts costs,
                   std::vector<std::pair<sim::Ns, sim::Ns>> attest_outages)
      : costs_(costs), outages_(std::move(attest_outages)) {}

  /// Routes the re-attestation step through a shared attestation
  /// verification service instead of the flat reattest_ns + outage-stall
  /// model. Migration re-attest stays a *full* quote round — the TDX
  /// live-migration security model forbids resuming a session ticket for a
  /// migrated guest — but warm collateral skips the network share, and an
  /// attestation outage stalls the round only on a cache miss. Pass
  /// nullptr to restore the legacy behaviour (the default).
  void attach_service(attest::svc::VerifyService* svc) { svc_ = svc; }

  /// Plans one migration detected at `detect_ns` whose source backlog
  /// drains at `drain_end_ns` (callers pass detect_ns when the queue is
  /// already empty).
  [[nodiscard]] MigrationSchedule plan(sim::Ns detect_ns,
                                       sim::Ns drain_end_ns) const;

  [[nodiscard]] const MigrationCosts& costs() const { return costs_; }

 private:
  MigrationCosts costs_;
  std::vector<std::pair<sim::Ns, sim::Ns>> outages_;  ///< [start, end)
  /// Optional shared verification service (non-owning); plan() prices the
  /// re-attest through it when attached. Mutated by pricing (cache fills),
  /// which is the point: one migration's fetch warms the next one's round.
  attest::svc::VerifyService* svc_ = nullptr;
};

}  // namespace confbench::fault

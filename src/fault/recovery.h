// Replica recovery cost model.
//
// When the cluster replaces a crashed replica it pays the *mechanical*
// recovery path: boot a fresh guest VM and, for confidential VMs, re-attest
// it before admitting traffic. Rather than invent constants, the costs are
// measured once per (platform, secure) through the real machinery — an
// actual `vm::GuestVm::boot()` (which charges secure platforms their eager
// page-acceptance premium) and an actual `attest::AttestationService`
// attest+verify round (TDX pays its PCS collateral round-trips, SNP its
// local cert fetch). This is why time-to-recover(secure) exceeds
// time-to-recover(normal) in the chaos experiments: the gap is exactly the
// boot premium plus the attestation round, and both show up as spans in the
// fleet trace.
#pragma once

#include <string>

#include "sim/time.h"
#include "tee/platform.h"

namespace confbench::fault {

struct RecoveryCosts {
  sim::Ns boot_ns = 0;    ///< guest VM boot (incl. secure memory acceptance)
  sim::Ns attest_ns = 0;  ///< attest + verify round (0 for normal VMs)
  [[nodiscard]] sim::Ns total_ns() const { return boot_ns + attest_ns; }
};

/// Measures the recovery path for one platform by booting a throwaway
/// GuestVm and — when `secure` and the platform supports attestation —
/// running a real attest+verify round at trial 0. Platforms without
/// attestation hardware (CCA under FVP) recover secure replicas with
/// attest_ns == 0 but still pay the slower confidential boot. Throws
/// std::invalid_argument for an unknown platform name.
[[nodiscard]] RecoveryCosts measure_recovery(const std::string& platform,
                                             bool secure);

/// Measures one attest+verify round on `plat` through the real
/// AttestationService flow (TDX/SNP), falling back to the platform's
/// declared cost table for TEEs without an end-to-end flow. Returns 0 when
/// the platform lacks attestation hardware (CCA under FVP). Thin wrapper
/// over attest::svc::CostModel::measure().full_round_ns — the verification
/// service is the single pricing authority; crash recovery, live migration
/// and shard cross-admission all charge the same re-attestation price
/// through it.
[[nodiscard]] sim::Ns measure_attest_ns(const tee::Platform& plat);

}  // namespace confbench::fault

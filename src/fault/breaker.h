// Per-replica circuit breaker (closed / open / half-open).
//
// The cluster scheduler otherwise keeps routing to a dead replica until
// every request has personally timed out on it. The breaker aggregates
// failure evidence (failed health probes, request timeouts) and trips after
// `failure_threshold` consecutive failures; while open, the replica is
// taken out of rotation. After `open_cooldown_ns` the breaker lets a single
// probe through (half-open); `success_threshold` consecutive successes
// close it again, any failure re-opens it and restarts the cooldown.
//
// Like the autoscaler, this is pure decision logic on the virtual clock —
// no event wiring — so the policy is unit-testable and the experiment loop
// stays deterministic.
//
// Half-open race invariant. Outcomes can arrive out of order: a dispatch
// that timed out *before* the trip may only be reported while the breaker is
// already half-open with a probe outstanding. The state machine guarantees
// that (a) any failure observed in half-open re-opens exactly once —
// `open()` is only reachable from kClosed (threshold) and kHalfOpen, and it
// moves to kOpen where further failures are absorbed, so a stale timeout
// followed by the probe's own failure increments `times_opened()` by one,
// not two — and (b) the probe slot can never leak: `probe_in_flight_` is
// cleared by every half-open outcome *and* by `open()` itself, and is only
// set by `allow()` when it grants the single half-open probe. Late
// successes from before the trip land in kOpen and are deliberately not
// treated as probe evidence (see record_success).
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.h"

namespace confbench::fault {

struct BreakerConfig {
  int failure_threshold = 3;  ///< consecutive failures that open the breaker
  int success_threshold = 1;  ///< half-open successes required to close
  sim::Ns open_cooldown_ns = 250 * sim::kMs;  ///< open -> half-open delay
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

std::string_view to_string(BreakerState s);

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig cfg = {}) : cfg_(cfg) {}

  /// May traffic (or a probe) be sent now? Closed: always. Open: only once
  /// the cooldown has elapsed, which transitions to half-open and admits
  /// exactly one in-flight probe. Half-open: only while no probe is
  /// outstanding.
  [[nodiscard]] bool allow(sim::Ns now);

  /// Outcome reporting. Failures in closed count toward the threshold;
  /// any failure in half-open re-opens; successes reset the failure streak
  /// and (in half-open) count toward closing.
  void record_success(sim::Ns now);
  void record_failure(sim::Ns now);

  [[nodiscard]] BreakerState state() const { return state_; }
  [[nodiscard]] int consecutive_failures() const { return failures_; }
  [[nodiscard]] std::uint64_t times_opened() const { return times_opened_; }
  [[nodiscard]] const BreakerConfig& config() const { return cfg_; }

 private:
  void open(sim::Ns now);

  BreakerConfig cfg_;
  BreakerState state_ = BreakerState::kClosed;
  int failures_ = 0;        ///< consecutive failures (closed)
  int half_open_ok_ = 0;    ///< consecutive successes (half-open)
  bool probe_in_flight_ = false;
  sim::Ns opened_at_ = 0;
  std::uint64_t times_opened_ = 0;
};

}  // namespace confbench::fault

#include "fault/outlier.h"

#include <algorithm>
#include <stdexcept>

namespace confbench::fault {

OutlierDetector::OutlierDetector(OutlierConfig cfg, std::size_t replicas)
    : cfg_(cfg), tracks_(replicas) {
  if (cfg.alpha <= 0.0 || cfg.alpha > 1.0)
    throw std::invalid_argument("OutlierConfig::alpha must be in (0, 1]");
  if (cfg.ratio < 1.0)
    throw std::invalid_argument("OutlierConfig::ratio must be >= 1");
}

void OutlierDetector::observe(std::size_t replica, sim::Ns latency_ns) {
  if (replica >= tracks_.size()) tracks_.resize(replica + 1);
  Track& t = tracks_[replica];
  const double x = static_cast<double>(latency_ns);
  t.ewma_ns = t.samples == 0 ? x : cfg_.alpha * x + (1 - cfg_.alpha) * t.ewma_ns;
  ++t.samples;
}

bool OutlierDetector::outlier(std::size_t replica) const {
  if (!cfg_.enabled || replica >= tracks_.size()) return false;
  const Track& t = tracks_[replica];
  if (t.samples < cfg_.min_samples) return false;
  // Need at least one warmed-up *peer*: the median of a one-replica fleet
  // is the replica itself and can never deviate from it.
  std::size_t warmed = 0;
  for (const Track& other : tracks_)
    if (other.samples >= cfg_.min_samples) ++warmed;
  if (warmed < 2) return false;
  const sim::Ns median = fleet_median_ns();
  return median > 0 &&
         t.ewma_ns > cfg_.ratio * static_cast<double>(median);
}

void OutlierDetector::forgive(std::size_t replica) {
  if (replica < tracks_.size()) tracks_[replica] = Track{};
}

sim::Ns OutlierDetector::ewma_ns(std::size_t replica) const {
  if (replica >= tracks_.size()) return 0;
  return static_cast<sim::Ns>(tracks_[replica].ewma_ns);
}

sim::Ns OutlierDetector::fleet_median_ns() const {
  std::vector<double> warm;
  warm.reserve(tracks_.size());
  for (const Track& t : tracks_)
    if (t.samples >= cfg_.min_samples) warm.push_back(t.ewma_ns);
  if (warm.empty()) return 0;
  // Lower median: deterministic for even counts without averaging floats
  // in an order-dependent way.
  const std::size_t mid = (warm.size() - 1) / 2;
  std::nth_element(warm.begin(), warm.begin() + static_cast<std::ptrdiff_t>(mid),
                   warm.end());
  return static_cast<sim::Ns>(warm[mid]);
}

}  // namespace confbench::fault

// Replays FaultPlan link events against a net::Network fabric.
//
// Host-addressed kLinkSlow / kLinkDown events (src/dst set) describe the
// fabric's directed-link failures over virtual time; this driver applies
// them to a live Network as the clock advances. It recomputes the desired
// state of every affected link from the set of currently-active windows —
// any active kDown wins, otherwise active kSlow factors combine by max —
// so overlapping windows on the same link compose instead of the first
// expiry clobbering the second. advance() is idempotent and requires a
// monotone `now`.
//
// Replica-addressed link events (src empty) are by default the cluster
// simulation's business and are ignored here. Pass a ReplicaAddressing to
// unify the two: the driver then folds replica-addressed windows onto the
// fabric as directed rules on the replica's *response* path —
// link_down(r) downs "<prefix>r" -> "*" (requests still arrive, answers
// vanish: the asymmetric-partition signature), and slow_link(r, delay)
// slows the same link by factor 1 + delay/hop_ns, so a fixed per-hop
// latency of hop_ns reproduces exactly the extra `delay` the cluster sim
// used to charge out of band. One FaultPlan, one replay mechanism, and
// host-addressed windows on shard or client links compose with the
// replica-addressed ones through ordinary link resolution.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "fault/fault.h"
#include "net/network.h"
#include "sim/time.h"

namespace confbench::fault {

/// Classified view of a replica-addressed link event: the response-path
/// effect the cluster layer must apply during the window.
struct ReplicaLinkWindow {
  bool down = false;     ///< kLinkDown: responses lost entirely
  sim::Ns delay_ns = 0;  ///< kLinkSlow: extra latency per response
};

/// Classifies `e` as a replica-addressed link event. Returns nullopt for
/// host-addressed link events and for every non-link kind, so both the
/// cluster simulation and the LinkFaultDriver consume one shared predicate
/// instead of each hand-rolling `kind == ... && src.empty()` checks.
[[nodiscard]] std::optional<ReplicaLinkWindow> replica_link_view(
    const FaultEvent& e);

/// Opt-in mapping from replica indices to fabric hosts, enabling the driver
/// to replay replica-addressed windows as directed link rules.
struct ReplicaAddressing {
  /// Replica r lives at host "<host_prefix>r" on the fabric.
  std::string host_prefix = "replica-";
  /// Base one-way latency of the replica's response hop; slow windows map
  /// to factor 1 + delay/hop_ns. Must be > 0.
  sim::Ns hop_ns = 100 * sim::kUs;
};

class LinkFaultDriver {
 public:
  /// Keeps a reference to both: the plan must outlive the driver. With the
  /// default (no ReplicaAddressing) the driver replays only host-addressed
  /// windows; pass an addressing to also fold replica-addressed windows
  /// onto the fabric (see the header comment). Throws
  /// std::invalid_argument for a non-positive hop_ns.
  LinkFaultDriver(net::Network& net, const FaultPlan& plan,
                  std::optional<ReplicaAddressing> replicas = std::nullopt);

  /// Applies the fabric state implied by all link windows active at `now`
  /// (start <= now < start + duration). Throws std::invalid_argument if
  /// `now` moves backwards.
  void advance(sim::Ns now);

  /// Number of set_link() transitions applied so far.
  [[nodiscard]] std::size_t transitions() const { return transitions_; }

 private:
  using LinkMap = std::map<std::pair<std::string, std::string>,
                           std::pair<net::LinkState, double>>;

  net::Network& net_;
  const FaultPlan& plan_;
  std::optional<ReplicaAddressing> replicas_;
  /// Directed-link state this driver applied last advance(); diffed against
  /// the desired state so rules owned by other callers (set_partitioned)
  /// are never touched and idle links are restored exactly once.
  LinkMap applied_;
  sim::Ns last_now_ = -1;
  std::size_t transitions_ = 0;
};

}  // namespace confbench::fault

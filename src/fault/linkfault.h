// Replays FaultPlan link events against a net::Network fabric.
//
// Host-addressed kLinkSlow / kLinkDown events (src/dst set) describe the
// fabric's directed-link failures over virtual time; this driver applies
// them to a live Network as the clock advances. It recomputes the desired
// state of every affected link from the set of currently-active windows —
// any active kDown wins, otherwise active kSlow factors combine by max —
// so overlapping windows on the same link compose instead of the first
// expiry clobbering the second. advance() is idempotent and requires a
// monotone `now`.
//
// Replica-addressed link events are the cluster simulation's business and
// are ignored here.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>

#include "fault/fault.h"
#include "net/network.h"
#include "sim/time.h"

namespace confbench::fault {

class LinkFaultDriver {
 public:
  /// Keeps a reference to both: the plan must outlive the driver.
  LinkFaultDriver(net::Network& net, const FaultPlan& plan)
      : net_(net), plan_(plan) {}

  /// Applies the fabric state implied by all host-addressed link windows
  /// active at `now` (start <= now < start + duration). Throws
  /// std::invalid_argument if `now` moves backwards.
  void advance(sim::Ns now);

  /// Number of set_link() transitions applied so far.
  [[nodiscard]] std::size_t transitions() const { return transitions_; }

 private:
  using LinkMap = std::map<std::pair<std::string, std::string>,
                           std::pair<net::LinkState, double>>;

  net::Network& net_;
  const FaultPlan& plan_;
  /// Directed-link state this driver applied last advance(); diffed against
  /// the desired state so rules owned by other callers (set_partitioned)
  /// are never touched and idle links are restored exactly once.
  LinkMap applied_;
  sim::Ns last_now_ = -1;
  std::size_t transitions_ = 0;
};

}  // namespace confbench::fault

#include "fault/retry.h"

#include <algorithm>
#include <cmath>

#include "sim/rng.h"

namespace confbench::fault {

sim::Ns RetryPolicy::backoff_ns(int retry) const {
  if (retry < 1) return 0;
  double b = cfg_.base_backoff_ns *
             std::pow(cfg_.multiplier, static_cast<double>(retry - 1));
  b = std::min(b, static_cast<double>(cfg_.max_backoff_ns));
  if (cfg_.jitter > 0) {
    // Stateless deterministic jitter: hash (seed, retry) to a uniform in
    // [1 - jitter, 1 + jitter]. No shared RNG stream is consumed.
    const std::uint64_t h = sim::SplitMix64(sim::hash_combine(
                                seed_, static_cast<std::uint64_t>(retry)))
                                .next();
    const double u =
        static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
    b *= 1.0 + cfg_.jitter * (2.0 * u - 1.0);
  }
  return b;
}

std::string_view to_string(RetryVerdict v) {
  switch (v) {
    case RetryVerdict::kRetry:
      return "retry";
    case RetryVerdict::kAttemptsExhausted:
      return "attempts_exhausted";
    case RetryVerdict::kBudgetExhausted:
      return "budget_exhausted";
    case RetryVerdict::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "?";
}

RetryVerdict RetryPolicy::verdict(int retry, sim::Ns spent_ns,
                                  sim::Ns deadline_ns) const {
  if (retry >= cfg_.max_attempts) return RetryVerdict::kAttemptsExhausted;
  if (cfg_.budget_ns > 0 && spent_ns >= cfg_.budget_ns)
    return RetryVerdict::kBudgetExhausted;
  // Deadline-aware give-up: if even starting the next attempt (after its
  // backoff) cannot beat the deadline, fail now instead of burning time.
  if (deadline_ns > 0 && spent_ns + backoff_ns(retry) >= deadline_ns)
    return RetryVerdict::kDeadlineExceeded;
  return RetryVerdict::kRetry;
}

bool RetryPolicy::should_retry(int retry, sim::Ns spent_ns,
                               sim::Ns deadline_ns) const {
  return verdict(retry, spent_ns, deadline_ns) == RetryVerdict::kRetry;
}

}  // namespace confbench::fault

#include "fault/migrate.h"

#include <algorithm>
#include <stdexcept>

#include "attest/svc/verify_service.h"
#include "fault/recovery.h"
#include "tee/registry.h"
#include "vm/guest_vm.h"

namespace confbench::fault {

namespace {

constexpr std::uint64_t kPageBytes = 4096;
/// Per-page cryptographic export cost on the source (integrity-tagged
/// AEAD of one 4 KiB page through the TEE's export primitive).
constexpr double kPageExportCryptoNs = 2 * sim::kUs;

}  // namespace

std::string_view to_string(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kLeastLoaded:
      return "least-loaded";
    case PlacementPolicy::kAntiAffinity:
      return "anti-affinity";
  }
  return "?";
}

std::size_t choose_target(PlacementPolicy policy,
                          const std::vector<PlacementCandidate>& candidates,
                          std::string_view source_rack) {
  // Least-loaded over an index subset; strict '<' keeps ties on the lowest
  // index, which is what makes the pick deterministic.
  const auto least_loaded = [&](bool off_rack_only) -> std::size_t {
    std::size_t best = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (off_rack_only && candidates[i].rack == source_rack) continue;
      if (best == candidates.size() ||
          candidates[i].load < candidates[best].load)
        best = i;
    }
    return best;
  };
  if (policy == PlacementPolicy::kAntiAffinity) {
    const std::size_t off_rack = least_loaded(/*off_rack_only=*/true);
    if (off_rack != candidates.size()) return off_rack;
    // Every candidate shares the source's rack: anti-affinity cannot be
    // satisfied, degrade to plain least-loaded rather than refuse.
  }
  return least_loaded(/*off_rack_only=*/false);
}

MigrationCosts measure_migration(const std::string& platform, bool secure,
                                 const MigrationConfig& cfg) {
  tee::PlatformPtr plat = tee::Registry::instance().create(platform);
  if (!plat)
    throw std::invalid_argument("measure_migration: unknown platform '" +
                                platform + "'");
  if (cfg.stream_bytes_per_ns <= 0)
    throw std::invalid_argument("migration stream bandwidth must be > 0");

  const sim::PlatformCosts& costs = plat->costs(secure);
  const double slowdown = costs.cpu.sim_slowdown;

  // Raw copy time of `bytes` over the migration stream; secure VMs add the
  // per-page encrypted-export path (the VMM cannot read private memory).
  const auto transfer_ns = [&](std::uint64_t bytes) -> sim::Ns {
    double ns = static_cast<double>(bytes) / cfg.stream_bytes_per_ns;
    if (secure) {
      const double pages =
          static_cast<double>((bytes + kPageBytes - 1) / kPageBytes);
      ns += pages *
            (2.0 * costs.exit.page_fault_extra_ns + kPageExportCryptoNs);
    }
    return ns * slowdown;
  };

  MigrationCosts out;
  out.pre_copy_ns = transfer_ns(cfg.ram_bytes);
  out.stop_copy_ns = transfer_ns(cfg.dirty_bytes);

  if (secure) {
    // Target-side re-acceptance: every private page must be measured back
    // into the guest on the target, the same eager-acceptance machinery a
    // secure boot pays. Price it as the measured boot gap of a real
    // GuestVm pair so the premium tracks the platform's cost tables.
    vm::GuestVm sec({.name = "migrate-probe-secure",
                     .platform = plat,
                     .secure = true});
    vm::GuestVm norm({.name = "migrate-probe-normal",
                      .platform = plat,
                      .secure = false});
    const sim::Ns gap = sec.boot() - norm.boot();
    out.reaccept_ns = std::max<sim::Ns>(gap, 0);
    out.reattest_ns = measure_attest_ns(*plat);
  }
  return out;
}

MigrationSchedule MigrationPlanner::plan(sim::Ns detect_ns,
                                         sim::Ns drain_end_ns) const {
  MigrationSchedule s;
  s.detect_ns = detect_ns;
  s.precopy_end_ns = detect_ns + costs_.pre_copy_ns;
  s.drain_end_ns = std::max(detect_ns, drain_end_ns);
  s.blackout_start_ns = std::max(s.precopy_end_ns, s.drain_end_ns);
  s.reattest_start_ns =
      s.blackout_start_ns + costs_.stop_copy_ns + costs_.reaccept_ns;
  if (svc_ != nullptr && costs_.reattest_ns > 0) {
    // Service-backed re-attest: the verification service prices the round.
    // Warm collateral skips the network share entirely — and, because the
    // fetch is the only part that needs the attestation service, a warm
    // round also sails through an outage window. Only cache misses stall.
    s.blackout_end_ns = svc_->reverify_done_ns(s.reattest_start_ns);
    return s;
  }
  // Attestation outages stall the re-attest step just like crash recovery:
  // if the round would start inside an outage window, it waits the window
  // out (windows are time-ordered and non-overlapping by construction).
  if (costs_.reattest_ns > 0)
    for (const auto& [start, end] : outages_)
      if (s.reattest_start_ns >= start && s.reattest_start_ns < end)
        s.reattest_start_ns = end;
  s.blackout_end_ns = s.reattest_start_ns + costs_.reattest_ns;
  return s;
}

}  // namespace confbench::fault

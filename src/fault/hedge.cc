#include "fault/hedge.h"

#include <algorithm>
#include <cmath>

namespace confbench::fault {

sim::Ns HedgePolicy::threshold_ns() const {
  if (!cfg_.enabled || hist_.count() < cfg_.warmup) return 0;
  // The median floor keeps the arm delay out of the latency bulk even when
  // bucket quantization collapses the configured quantile onto it.
  const double q = std::max(hist_.quantile(cfg_.quantile),
                            cfg_.min_median_mult * hist_.quantile(0.5));
  return std::max(cfg_.min_delay_ns,
                  static_cast<sim::Ns>(std::llround(q)));
}

bool HedgePolicy::allow(std::uint64_t hedges_fired,
                        std::uint64_t offered) const {
  if (!cfg_.enabled || hist_.count() < cfg_.warmup) return false;
  // Fleet-wide amplification cap: hedges may not exceed budget_fraction of
  // offered load. Strict '<' so a zero fraction disables hedging outright.
  return static_cast<double>(hedges_fired) <
         cfg_.budget_fraction * static_cast<double>(offered);
}

}  // namespace confbench::fault

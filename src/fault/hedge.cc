#include "fault/hedge.h"

#include <algorithm>
#include <cmath>

namespace confbench::fault {

HedgePolicy::HedgePolicy(HedgeConfig cfg)
    : cfg_(cfg), hists_(static_cast<std::size_t>(std::max(1, cfg.cost_classes))) {}

std::size_t HedgePolicy::clamp_class(std::uint32_t cost_class) const {
  return std::min<std::size_t>(cost_class, hists_.size() - 1);
}

void HedgePolicy::observe(std::uint32_t cost_class, sim::Ns latency_ns) {
  hists_[clamp_class(cost_class)].record(latency_ns);
}

sim::Ns HedgePolicy::threshold_ns(std::uint32_t cost_class) const {
  const auto& hist = hists_[clamp_class(cost_class)];
  if (!cfg_.enabled || hist.count() < cfg_.warmup) return 0;
  // The median floor keeps the arm delay out of the latency bulk even when
  // bucket quantization collapses the configured quantile onto it.
  const double q = std::max(hist.quantile(cfg_.quantile),
                            cfg_.min_median_mult * hist.quantile(0.5));
  return std::max(cfg_.min_delay_ns,
                  static_cast<sim::Ns>(std::llround(q)));
}

sim::Ns HedgePolicy::expected_benefit_ns(std::uint32_t cost_class) const {
  const sim::Ns arm = threshold_ns(cost_class);
  if (arm <= 0) return 0;
  const auto& hist = hists_[clamp_class(cost_class)];
  const auto tail =
      static_cast<sim::Ns>(std::llround(hist.quantile(cfg_.benefit_quantile)));
  return std::max<sim::Ns>(tail - arm, 0);
}

bool HedgePolicy::worth_hedging(std::uint32_t cost_class,
                                sim::Ns crossing_cost_ns) const {
  const sim::Ns floor = std::max(cfg_.min_benefit_ns, crossing_cost_ns);
  if (floor <= 0) return true;  // free backup: the legacy always-launch path
  return expected_benefit_ns(cost_class) > floor;
}

bool HedgePolicy::allow(std::uint64_t hedges_fired,
                        std::uint64_t offered) const {
  if (!cfg_.enabled) return false;
  // Any warm class may hedge; cold classes are already gated by their zero
  // threshold_ns(), so the fleet-wide check only needs one warm histogram.
  const bool any_warm =
      std::any_of(hists_.begin(), hists_.end(), [&](const auto& h) {
        return h.count() >= cfg_.warmup;
      });
  if (!any_warm) return false;
  // Fleet-wide amplification cap: hedges may not exceed budget_fraction of
  // offered load. Strict '<' so a zero fraction disables hedging outright.
  return static_cast<double>(hedges_fired) <
         cfg_.budget_fraction * static_cast<double>(offered);
}

}  // namespace confbench::fault

#include "fault/recovery.h"

#include <stdexcept>

#include "attest/service.h"
#include "tee/registry.h"
#include "vm/guest_vm.h"

namespace confbench::fault {

sim::Ns measure_attest_ns(const tee::Platform& plat) {
  const tee::AttestationCosts ac = plat.attestation();
  if (!ac.supported) return 0;
  attest::AttestationService svc;
  attest::AttestTiming t;
  switch (plat.kind()) {
    case tee::TeeKind::kTdx:
      t = svc.run_tdx(plat, /*trial=*/0);
      break;
    case tee::TeeKind::kSevSnp:
      t = svc.run_snp(plat, /*trial=*/0);
      break;
    default:
      // No end-to-end flow modelled for this TEE: fall back to the
      // platform's declared cost table.
      t.attest_ns = ac.report_request + ac.measurement + ac.sign;
      t.check_ns = ac.collateral_round_trips * ac.collateral_rtt +
                   ac.collateral_local_fetch + ac.verify_compute;
      t.ok = true;
      break;
  }
  return t.ok ? t.attest_ns + t.check_ns : 0;
}

RecoveryCosts measure_recovery(const std::string& platform, bool secure) {
  tee::PlatformPtr plat = tee::Registry::instance().create(platform);
  if (!plat)
    throw std::invalid_argument("measure_recovery: unknown platform '" +
                                platform + "'");

  RecoveryCosts costs;
  vm::GuestVm probe({.name = "recovery-probe",
                     .platform = plat,
                     .secure = secure});
  costs.boot_ns = probe.boot();

  if (secure) costs.attest_ns = measure_attest_ns(*plat);
  return costs;
}

}  // namespace confbench::fault

#include "fault/recovery.h"

#include <stdexcept>

#include "attest/svc/cost_model.h"
#include "tee/registry.h"
#include "vm/guest_vm.h"

namespace confbench::fault {

sim::Ns measure_attest_ns(const tee::Platform& plat) {
  // All attestation pricing lives in one place now: the verification
  // service's CostModel. full_round_ns is measured through the same
  // AttestationService flow this function ran before the service existed,
  // so every legacy consumer charges the identical value.
  return attest::svc::CostModel::measure(plat).full_round_ns;
}

RecoveryCosts measure_recovery(const std::string& platform, bool secure) {
  tee::PlatformPtr plat = tee::Registry::instance().create(platform);
  if (!plat)
    throw std::invalid_argument("measure_recovery: unknown platform '" +
                                platform + "'");

  RecoveryCosts costs;
  vm::GuestVm probe({.name = "recovery-probe",
                     .platform = plat,
                     .secure = secure});
  costs.boot_ns = probe.boot();

  if (secure) costs.attest_ns = measure_attest_ns(*plat);
  return costs;
}

}  // namespace confbench::fault

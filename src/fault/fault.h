// Deterministic fault injection plans for chaos experiments.
//
// A FaultPlan is a validated, time-ordered list of typed fault events to be
// replayed against a running deployment or the discrete-event cluster
// simulation. Plans carry no randomness of their own: a plan is data, and
// the same plan against the same seed produces byte-identical experiment
// output. Helpers exist to lay faults out deterministically (periodic
// crashes across a fleet) so chaos sweeps stay reproducible.
//
// Fault taxonomy (what each kind means to the cluster layer):
//   kVmCrash      the replica's VM dies instantly; queued and in-service
//                 requests are lost and must fail over; recovery re-runs the
//                 real boot + (secure) re-attestation path, which is why
//                 confidential fleets recover mechanically slower.
//   kAgentHang    the host agent stops answering for `duration_ns`; new
//                 dispatches and health probes time out, work already
//                 executing inside the VM completes normally.
//   kBrownout     the replica serves `severity`x slower for `duration_ns`
//                 (thermal throttling, noisy neighbour, failing disk).
//   kAttestOutage the attestation service (PCS / AMD-SP reachability) is
//                 down for `duration_ns`: secure replicas whose recovery
//                 reaches the re-attestation step must wait the outage out;
//                 normal replicas are untouched.
//   kPartition    the network path to the replica drops for `duration_ns`;
//                 like a hang, but injected at the fabric rather than the
//                 agent (the distinction matters for traces and for the
//                 real-path injection hooks).
//
// Gray-failure kinds (directed-link events; see net::Network::set_link):
//   kLinkSlow     the link stays up but delivers slowly for `duration_ns`.
//                 Replica-addressed events add `delay_ns` to every response
//                 from the replica in the cluster simulation; host-addressed
//                 events (src/dst set) multiply a fabric link's latency by
//                 `severity`. Requests still succeed — only timeouts never
//                 fire, which is exactly why binary failure detectors miss
//                 gray failures and an OutlierDetector is needed.
//   kLinkDown     one *direction* of a link drops for `duration_ns`.
//                 Replica-addressed events kill the replica's response path
//                 in the simulation (work completes, answers vanish);
//                 host-addressed events down the directed fabric link
//                 src -> dst, expressing asymmetric and subset partitions.
//
// Churn kinds (instantaneous topology-membership events; the sharded
// fabric is the consumer — see sched::ShardedExperiment):
//   kShardJoin     a new gateway shard joins the consistent-hash ring at
//                  `at_ns` and takes over ~1/N of the keyspace.
//   kShardLeave    shard `replica` (a shard index here) leaves the ring:
//                  its in-flight requests drain in place, its queued ones
//                  hand off to the new owners, its slice re-shards.
//   kReplicaAdd    `replica` (a count here) fresh fleet replicas scale out
//                  mid-run; each boots a real cold start before serving.
//   kReplicaRemove replica `replica` is forcibly scaled in: no new
//                  dispatches, queued work re-dispatches, in-flight drains.
//   kJoinCrash     a windowed fault against *controller-originated* scale
//                  events (sched::ElasticController): any elastic joiner
//                  whose cold start begins inside [at_ns, at_ns+duration)
//                  crashes mid-boot — the failure is detected when the
//                  join deadline passes, charged, and retried with backoff.
//                  Scripted churn and the serving fleet are untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace confbench::fault {

enum class FaultKind : std::uint8_t {
  kVmCrash,
  kAgentHang,
  kBrownout,
  kAttestOutage,
  kPartition,
  kLinkSlow,
  kLinkDown,
  kShardJoin,
  kShardLeave,
  kReplicaAdd,
  kReplicaRemove,
  kJoinCrash,
};

std::string_view to_string(FaultKind k);

struct FaultEvent {
  /// Sentinel for `replica` on host-addressed link events.
  static constexpr std::uint32_t kNoReplica = 0xFFFFFFFFu;

  FaultKind kind = FaultKind::kVmCrash;
  sim::Ns at_ns = 0;        ///< injection time (virtual)
  sim::Ns duration_ns = 0;  ///< window length; ignored for kVmCrash (the
                            ///< fault lasts until recovery completes) and
                            ///< the instantaneous churn kinds
  /// Target replica. Overloaded by the churn kinds: the departing shard
  /// index for kShardLeave, the scale-out count for kReplicaAdd.
  std::uint32_t replica = 0;
  double severity = 2.0;      ///< kBrownout service-time multiplier (>= 1);
                              ///< host-addressed kLinkSlow latency factor
  /// kLinkSlow (replica-addressed): extra response latency charged by the
  /// cluster simulation on every request the replica answers.
  sim::Ns delay_ns = 0;
  /// Directed-link endpoints for host-addressed kLinkSlow / kLinkDown
  /// events replayed against a net::Network fabric; empty for all other
  /// kinds (and for replica-addressed link events).
  std::string src = {}, dst = {};
};

/// A validated, time-ordered fault schedule. add() keeps events sorted by
/// (at_ns, insertion order) and rejects malformed events, so consumers can
/// replay the list front to back against an event queue.
class FaultPlan {
 public:
  /// Appends a validated event. Throws std::invalid_argument on negative
  /// times/durations, a brownout severity below 1, or a replica-addressed
  /// kLinkSlow without a positive delay.
  FaultPlan& add(FaultEvent e);

  // Convenience builders (all forward to add()).
  FaultPlan& crash(sim::Ns at, std::uint32_t replica);
  FaultPlan& hang(sim::Ns at, sim::Ns duration, std::uint32_t replica);
  FaultPlan& brownout(sim::Ns at, sim::Ns duration, std::uint32_t replica,
                      double severity);
  FaultPlan& attest_outage(sim::Ns at, sim::Ns duration);
  FaultPlan& partition(sim::Ns at, sim::Ns duration, std::uint32_t replica);
  /// Gray failure against a cluster replica: every response it produces
  /// inside the window arrives `delay` late (the replica itself is healthy).
  FaultPlan& slow_link(sim::Ns at, sim::Ns duration, std::uint32_t replica,
                       sim::Ns delay);
  /// Gray failure on a fabric link: src -> dst latency multiplied by
  /// `factor` (>= 1) for the window. Either side may be net's "*" wildcard.
  FaultPlan& slow_link(sim::Ns at, sim::Ns duration, std::string src,
                       std::string dst, double factor);
  /// Asymmetric partition against a cluster replica: its responses are
  /// lost for the window while requests still reach it (wasted work).
  FaultPlan& link_down(sim::Ns at, sim::Ns duration, std::uint32_t replica);
  /// Directed fabric link down: src -> dst drops while dst -> src stays up.
  FaultPlan& link_down(sim::Ns at, sim::Ns duration, std::string src,
                       std::string dst);

  // Topology churn (consumed by sched::ShardedExperiment; instantaneous).
  /// A fresh gateway shard joins the ring, taking over ~1/N of the keys.
  FaultPlan& shard_join(sim::Ns at);
  /// Gateway shard `shard` leaves the ring: queued requests hand off to
  /// the new owners, in-flight requests drain in place.
  FaultPlan& shard_leave(sim::Ns at, std::uint32_t shard);
  /// `count` fresh replicas scale out mid-run (each pays a real cold
  /// start before serving).
  FaultPlan& replica_add(sim::Ns at, std::uint32_t count = 1);
  /// Replica `replica` is forcibly scaled in mid-run.
  FaultPlan& replica_remove(sim::Ns at, std::uint32_t replica);
  /// Elastic joiners whose cold start begins inside the window crash
  /// mid-boot (controller-originated scale events only; see taxonomy).
  FaultPlan& join_crash(sim::Ns at, sim::Ns duration);

  /// Lays `count` crashes out at a fixed period starting at `first_at`,
  /// cycling deterministically over `fleet_size` replicas. The workhorse of
  /// reproducible chaos sweeps: no RNG anywhere.
  FaultPlan& periodic_crashes(sim::Ns first_at, sim::Ns period, int count,
                              std::uint32_t fleet_size);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Windows [start, end) of every kAttestOutage event, time-ordered.
  [[nodiscard]] std::vector<std::pair<sim::Ns, sim::Ns>> attest_outages()
      const;

  /// Windows [start, end) of every kJoinCrash event, time-ordered.
  [[nodiscard]] std::vector<std::pair<sim::Ns, sim::Ns>> join_crashes()
      const;

  /// True when the plan schedules any topology-churn event (the sharded
  /// experiment pre-sizes its fleet from them).
  [[nodiscard]] bool has_churn() const;

 private:
  std::vector<FaultEvent> events_;  ///< sorted by (at_ns, insertion order)
};

}  // namespace confbench::fault

// Deterministic fault injection plans for chaos experiments.
//
// A FaultPlan is a validated, time-ordered list of typed fault events to be
// replayed against a running deployment or the discrete-event cluster
// simulation. Plans carry no randomness of their own: a plan is data, and
// the same plan against the same seed produces byte-identical experiment
// output. Helpers exist to lay faults out deterministically (periodic
// crashes across a fleet) so chaos sweeps stay reproducible.
//
// Fault taxonomy (what each kind means to the cluster layer):
//   kVmCrash      the replica's VM dies instantly; queued and in-service
//                 requests are lost and must fail over; recovery re-runs the
//                 real boot + (secure) re-attestation path, which is why
//                 confidential fleets recover mechanically slower.
//   kAgentHang    the host agent stops answering for `duration_ns`; new
//                 dispatches and health probes time out, work already
//                 executing inside the VM completes normally.
//   kBrownout     the replica serves `severity`x slower for `duration_ns`
//                 (thermal throttling, noisy neighbour, failing disk).
//   kAttestOutage the attestation service (PCS / AMD-SP reachability) is
//                 down for `duration_ns`: secure replicas whose recovery
//                 reaches the re-attestation step must wait the outage out;
//                 normal replicas are untouched.
//   kPartition    the network path to the replica drops for `duration_ns`;
//                 like a hang, but injected at the fabric rather than the
//                 agent (the distinction matters for traces and for the
//                 real-path injection hooks).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace confbench::fault {

enum class FaultKind : std::uint8_t {
  kVmCrash,
  kAgentHang,
  kBrownout,
  kAttestOutage,
  kPartition,
};

std::string_view to_string(FaultKind k);

struct FaultEvent {
  FaultKind kind = FaultKind::kVmCrash;
  sim::Ns at_ns = 0;        ///< injection time (virtual)
  sim::Ns duration_ns = 0;  ///< window length; ignored for kVmCrash (the
                            ///< fault lasts until recovery completes)
  std::uint32_t replica = 0;  ///< target replica; ignored for kAttestOutage
  double severity = 2.0;      ///< kBrownout service-time multiplier (>= 1)
};

/// A validated, time-ordered fault schedule. add() keeps events sorted by
/// (at_ns, insertion order) and rejects malformed events, so consumers can
/// replay the list front to back against an event queue.
class FaultPlan {
 public:
  /// Appends a validated event. Throws std::invalid_argument on negative
  /// times/durations or a brownout severity below 1.
  FaultPlan& add(FaultEvent e);

  // Convenience builders (all forward to add()).
  FaultPlan& crash(sim::Ns at, std::uint32_t replica);
  FaultPlan& hang(sim::Ns at, sim::Ns duration, std::uint32_t replica);
  FaultPlan& brownout(sim::Ns at, sim::Ns duration, std::uint32_t replica,
                      double severity);
  FaultPlan& attest_outage(sim::Ns at, sim::Ns duration);
  FaultPlan& partition(sim::Ns at, sim::Ns duration, std::uint32_t replica);

  /// Lays `count` crashes out at a fixed period starting at `first_at`,
  /// cycling deterministically over `fleet_size` replicas. The workhorse of
  /// reproducible chaos sweeps: no RNG anywhere.
  FaultPlan& periodic_crashes(sim::Ns first_at, sim::Ns period, int count,
                              std::uint32_t fleet_size);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Windows [start, end) of every kAttestOutage event, time-ordered.
  [[nodiscard]] std::vector<std::pair<sim::Ns, sim::Ns>> attest_outages()
      const;

 private:
  std::vector<FaultEvent> events_;  ///< sorted by (at_ns, insertion order)
};

}  // namespace confbench::fault

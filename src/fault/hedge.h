// Hedged requests: tail-tolerance by backup dispatch.
//
// The classic "tail at scale" defence: once a request has waited longer
// than a high quantile of recent latency, fire a second copy to a different
// replica; the first response wins and the loser is cancelled. Hedging
// converts rare stragglers (gray failures, brownouts, queue collisions)
// into a small amount of duplicated work — but only if the trigger
// threshold tracks the fleet's *actual* latency distribution, which differs
// between secure and normal fleets (memory-protection overheads shift every
// quantile up), so the threshold is learned online from a LogHistogram of
// completed-request latencies rather than configured as a constant.
//
// Load-amplification guard rails (hedges must not melt a browning-out
// fleet):
//   * a hedge consumes one attempt from the request's RetryPolicy budget,
//     so retries + hedges share the same per-request allowance;
//   * `budget_fraction` caps fleet-wide hedges to a fraction of offered
//     load — once hedges_fired exceeds the cap no more fire until offered
//     load catches up;
//   * no threshold is produced until `warmup` samples have been observed
//     (an empty histogram would hedge everything).
//
// The policy itself is pure decision logic: deterministic, no RNG, no event
// wiring. The cluster scheduler owns the timers.
#pragma once

#include <cstdint>

#include "metrics/histogram.h"
#include "sim/time.h"

namespace confbench::fault {

struct HedgeConfig {
  bool enabled = false;
  /// Latency quantile that arms the hedge timer: a request still waiting at
  /// quantile(q) of recent completions gets a backup dispatch.
  double quantile = 0.95;
  /// Floor under the learned threshold, so a fast warm fleet does not hedge
  /// on scheduling noise.
  sim::Ns min_delay_ns = 1 * sim::kMs;
  /// Second floor: the threshold never drops below this multiple of the
  /// learned median. Guards against a tight latency distribution whose
  /// high quantile lands inside the bulk (log-histogram buckets are ~6%
  /// wide, so p50 and p95 can share a bucket) — hedging the bulk of
  /// traffic drains the budget on requests that were never stragglers.
  double min_median_mult = 1.5;
  /// Fleet-wide cap: hedges fired may not exceed this fraction of offered
  /// requests.
  double budget_fraction = 0.05;
  /// Completed-latency samples required before any hedge fires.
  std::uint64_t warmup = 100;
};

class HedgePolicy {
 public:
  explicit HedgePolicy(HedgeConfig cfg = {}) : cfg_(cfg) {}

  /// Feeds one completed-request latency into the online histogram.
  void observe(sim::Ns latency_ns) { hist_.record(latency_ns); }

  /// Current hedge-arm delay: quantile(cfg.quantile) of observed latencies,
  /// floored at both min_delay_ns and min_median_mult * median. Returns 0
  /// ("do not arm") while disabled or during warmup.
  [[nodiscard]] sim::Ns threshold_ns() const;

  /// May a hedge fire now, given fleet-wide counters? Checks enablement,
  /// warmup and the budget_fraction cap (callers separately charge the
  /// per-request RetryPolicy attempt). Pure — does not count the hedge;
  /// call record_fired() once the backup is actually dispatched.
  [[nodiscard]] bool allow(std::uint64_t hedges_fired,
                           std::uint64_t offered) const;

  void record_fired() { ++fired_; }
  [[nodiscard]] std::uint64_t fired() const { return fired_; }

  [[nodiscard]] const HedgeConfig& config() const { return cfg_; }
  [[nodiscard]] const metrics::LogHistogram& histogram() const {
    return hist_;
  }

 private:
  HedgeConfig cfg_;
  metrics::LogHistogram hist_;
  std::uint64_t fired_ = 0;
};

}  // namespace confbench::fault

// Hedged requests: tail-tolerance by backup dispatch.
//
// The classic "tail at scale" defence: once a request has waited longer
// than a high quantile of recent latency, fire a second copy to a different
// replica; the first response wins and the loser is cancelled. Hedging
// converts rare stragglers (gray failures, brownouts, queue collisions)
// into a small amount of duplicated work — but only if the trigger
// threshold tracks the fleet's *actual* latency distribution, which differs
// between secure and normal fleets (memory-protection overheads shift every
// quantile up), so the threshold is learned online from a LogHistogram of
// completed-request latencies rather than configured as a constant.
//
// Load-amplification guard rails (hedges must not melt a browning-out
// fleet):
//   * a hedge consumes one attempt from the request's RetryPolicy budget,
//     so retries + hedges share the same per-request allowance;
//   * `budget_fraction` caps fleet-wide hedges to a fraction of offered
//     load — once hedges_fired exceeds the cap no more fire until offered
//     load catches up;
//   * no threshold is produced until `warmup` samples have been observed
//     (an empty histogram would hedge everything).
//
// Workload-aware thresholds: on a mixed fleet a single fleet-global
// histogram lets a heavy cost-class (an ML batch with 100x the service
// time) inflate the learned threshold of every light one (FaaS calls that
// should hedge at a few ms wait out the batch quantile instead). The
// policy therefore keys its quantile histograms by *workload cost-class*:
// observe() and threshold_ns() take a class index, each class learns its
// own arm delay, and `cost_classes = 1` (the default) collapses to the old
// fleet-global behaviour. The hedge budget stays fleet-wide — duplicated
// work amplifies fleet load no matter which class burned it.
//
// The policy itself is pure decision logic: deterministic, no RNG, no event
// wiring. The cluster scheduler owns the timers.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/histogram.h"
#include "sim/time.h"

namespace confbench::fault {

struct HedgeConfig {
  bool enabled = false;
  /// Latency quantile that arms the hedge timer: a request still waiting at
  /// quantile(q) of recent completions gets a backup dispatch.
  double quantile = 0.95;
  /// Floor under the learned threshold, so a fast warm fleet does not hedge
  /// on scheduling noise.
  sim::Ns min_delay_ns = 1 * sim::kMs;
  /// Second floor: the threshold never drops below this multiple of the
  /// learned median. Guards against a tight latency distribution whose
  /// high quantile lands inside the bulk (log-histogram buckets are ~6%
  /// wide, so p50 and p95 can share a bucket) — hedging the bulk of
  /// traffic drains the budget on requests that were never stragglers.
  double min_median_mult = 1.5;
  /// Fleet-wide cap: hedges fired may not exceed this fraction of offered
  /// requests.
  double budget_fraction = 0.05;
  /// Completed-latency samples required before any hedge fires. Applies
  /// per cost-class: a class produces no threshold (and so never arms)
  /// until it has observed this many of its own completions.
  std::uint64_t warmup = 100;
  /// Independent quantile histograms, one per workload cost-class. 1 keeps
  /// the fleet-global behaviour; class indices at or above the count clamp
  /// to the last class.
  int cost_classes = 1;

  // --- speculative cross-shard hedging (consumed by sched::Sharded*) ---
  /// Launch the backup copy at the request's *ring-successor shard* instead
  /// of a sibling replica on the home shard, paying the real crossing cost
  /// (fabric hop + handshake + attestation re-verify) before it can queue.
  /// Off (the default): the legacy intra-shard backup, byte-identical.
  bool cross_shard = false;
  /// Cost-awareness floor: a hedge only fires when its expected benefit —
  /// the learned residual tail beyond the arm threshold — exceeds the
  /// larger of this floor and the measured crossing cost the caller passes
  /// to worth_hedging(). Callers price the crossing from
  /// attest::svc::CostModel (warm ticket-check vs cold full round), so a
  /// TDX cold crossing (~1.46 s) declines hedges a warm one would launch.
  /// 0 with a zero crossing cost keeps the legacy always-launch behaviour.
  sim::Ns min_benefit_ns = 0;
  /// Quantile whose residual above the arm threshold is the expected
  /// benefit: how much tail latency a straggler still has left to lose
  /// once it has already waited out threshold_ns().
  double benefit_quantile = 0.999;
};

class HedgePolicy {
 public:
  explicit HedgePolicy(HedgeConfig cfg = {});

  /// Feeds one completed-request latency into `cost_class`'s histogram.
  void observe(std::uint32_t cost_class, sim::Ns latency_ns);
  /// Single-class convenience (class 0): the pre-cost-class API.
  void observe(sim::Ns latency_ns) { observe(0, latency_ns); }

  /// Current hedge-arm delay for `cost_class`: quantile(cfg.quantile) of
  /// that class's observed latencies, floored at both min_delay_ns and
  /// min_median_mult * its median. Returns 0 ("do not arm") while disabled
  /// or while the class is still warming up — a cold class never hedges
  /// off another class's distribution.
  [[nodiscard]] sim::Ns threshold_ns(std::uint32_t cost_class = 0) const;

  /// May a hedge fire now, given fleet-wide counters? Checks enablement,
  /// warmup (any class warm) and the budget_fraction cap — the budget is
  /// deliberately fleet-wide, not per class (callers separately charge the
  /// per-request RetryPolicy attempt). Pure — does not count the hedge;
  /// call record_fired() once the backup is actually dispatched.
  [[nodiscard]] bool allow(std::uint64_t hedges_fired,
                           std::uint64_t offered) const;

  /// Expected benefit of hedging a `cost_class` straggler: the learned
  /// residual tail quantile(benefit_quantile) - threshold_ns() — the
  /// latency a request that already outlived the arm threshold can still
  /// expect to lose by waiting instead of hedging. 0 while the class is
  /// cold or unarmed.
  [[nodiscard]] sim::Ns expected_benefit_ns(std::uint32_t cost_class = 0) const;

  /// The min_benefit_ns clamp (satellite fix): may a hedge that must pay
  /// `crossing_cost_ns` up front ever win? The floor is the larger of the
  /// configured min_benefit_ns and the measured crossing cost; a
  /// non-positive floor always allows (legacy behaviour, and the
  /// intra-shard path where the backup dispatch is free). Pure — budget
  /// and warmup gates stay in allow()/threshold_ns().
  [[nodiscard]] bool worth_hedging(std::uint32_t cost_class,
                                   sim::Ns crossing_cost_ns = 0) const;

  void record_fired() { ++fired_; }
  [[nodiscard]] std::uint64_t fired() const { return fired_; }

  [[nodiscard]] const HedgeConfig& config() const { return cfg_; }
  [[nodiscard]] const metrics::LogHistogram& histogram(
      std::uint32_t cost_class = 0) const {
    return hists_[clamp_class(cost_class)];
  }

 private:
  [[nodiscard]] std::size_t clamp_class(std::uint32_t cost_class) const;

  HedgeConfig cfg_;
  std::vector<metrics::LogHistogram> hists_;  ///< one per cost-class
  std::uint64_t fired_ = 0;
};

}  // namespace confbench::fault

#include "wasm/builder.h"

namespace confbench::wasm::programs {

Module fib_recursive() {
  Module m;
  FuncBuilder fb("fib");
  const int n = fb.param(ValType::kI64);
  fb.result(ValType::kI64);
  // if (n < 2) return n;
  fb.get(n).i64_const(2).lt_s().if_();
  fb.get(n).ret();
  fb.end();
  // return fib(n-1) + fib(n-2);
  fb.get(n).i64_const(1).sub().call(0);
  fb.get(n).i64_const(2).sub().call(0);
  fb.add();
  fb.end();
  m.functions.push_back(fb.build());
  return m;
}

Module sum_loop() {
  Module m;
  FuncBuilder fb("sum");
  const int n = fb.param(ValType::kI64);
  fb.result(ValType::kI64);
  const int i = fb.local(ValType::kI64);
  const int acc = fb.local(ValType::kI64);
  fb.block().loop();
  fb.get(i).get(n).ge_s().br_if(1);
  fb.get(acc).get(i).add().set(acc);
  fb.get(i).i64_const(1).add().set(i);
  fb.br(0);
  fb.end().end();
  fb.get(acc);
  fb.end();
  m.functions.push_back(fb.build());
  return m;
}

Module sieve() {
  Module m;
  m.memory_pages = 2;  // 16384 i64 flag slots
  FuncBuilder fb("sieve");
  const int limit = fb.param(ValType::kI64);
  fb.result(ValType::kI64);
  const int p = fb.local(ValType::kI64);
  const int q = fb.local(ValType::kI64);
  const int count = fb.local(ValType::kI64);

  // Mark composites: for (p = 2; p*p <= limit; ++p) if (!flags[p]) ...
  fb.i64_const(2).set(p);
  fb.block().loop();
  fb.get(p).get(p).mul().get(limit).gt_s().br_if(1);
  fb.get(p).i64_const(8).mul().i64_load().eqz().if_();
  fb.get(p).get(p).mul().set(q);
  fb.block().loop();
  fb.get(q).get(limit).gt_s().br_if(1);
  fb.get(q).i64_const(8).mul().i64_const(1).i64_store();
  fb.get(q).get(p).add().set(q);
  fb.br(0);
  fb.end().end();
  fb.end();  // if
  fb.get(p).i64_const(1).add().set(p);
  fb.br(0);
  fb.end().end();

  // Count primes in [2, limit].
  fb.i64_const(2).set(p);
  fb.i64_const(0).set(count);
  fb.block().loop();
  fb.get(p).get(limit).gt_s().br_if(1);
  fb.get(p).i64_const(8).mul().i64_load().eqz().if_();
  fb.get(count).i64_const(1).add().set(count);
  fb.end();
  fb.get(p).i64_const(1).add().set(p);
  fb.br(0);
  fb.end().end();

  fb.get(count);
  fb.end();
  m.functions.push_back(fb.build());
  return m;
}

Module gcd() {
  Module m;
  FuncBuilder fb("gcd");
  const int a = fb.param(ValType::kI64);
  const int b = fb.param(ValType::kI64);
  fb.result(ValType::kI64);
  const int t = fb.local(ValType::kI64);
  fb.block().loop();
  fb.get(b).eqz().br_if(1);
  fb.get(a).get(b).rem_s().set(t);
  fb.get(b).set(a);
  fb.get(t).set(b);
  fb.br(0);
  fb.end().end();
  fb.get(a);
  fb.end();
  m.functions.push_back(fb.build());
  return m;
}

Module memfill() {
  Module m;
  m.memory_pages = 1;  // 8192 slots
  FuncBuilder fb("memfill");
  const int n = fb.param(ValType::kI64);
  fb.result(ValType::kI64);
  const int i = fb.local(ValType::kI64);
  const int acc = fb.local(ValType::kI64);
  // Fill slots[i] = i * 7.
  fb.block().loop();
  fb.get(i).get(n).ge_s().br_if(1);
  fb.get(i).i64_const(8).mul();
  fb.get(i).i64_const(7).mul();
  fb.i64_store();
  fb.get(i).i64_const(1).add().set(i);
  fb.br(0);
  fb.end().end();
  // Sum them back.
  fb.i64_const(0).set(i);
  fb.block().loop();
  fb.get(i).get(n).ge_s().br_if(1);
  fb.get(acc).get(i).i64_const(8).mul().i64_load().add().set(acc);
  fb.get(i).i64_const(1).add().set(i);
  fb.br(0);
  fb.end().end();
  fb.get(acc);
  fb.end();
  m.functions.push_back(fb.build());
  return m;
}

}  // namespace confbench::wasm::programs

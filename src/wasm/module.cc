#include "wasm/module.h"

#include <sstream>

namespace confbench::wasm {

std::string_view to_string(ValType t) {
  return t == ValType::kI64 ? "i64" : "f64";
}

std::string_view to_string(Op op) {
  switch (op) {
    case Op::kI64Const: return "i64.const";
    case Op::kF64Const: return "f64.const";
    case Op::kLocalGet: return "local.get";
    case Op::kLocalSet: return "local.set";
    case Op::kLocalTee: return "local.tee";
    case Op::kI64Add: return "i64.add";
    case Op::kI64Sub: return "i64.sub";
    case Op::kI64Mul: return "i64.mul";
    case Op::kI64DivS: return "i64.div_s";
    case Op::kI64RemS: return "i64.rem_s";
    case Op::kI64And: return "i64.and";
    case Op::kI64Or: return "i64.or";
    case Op::kI64Xor: return "i64.xor";
    case Op::kI64Shl: return "i64.shl";
    case Op::kI64ShrS: return "i64.shr_s";
    case Op::kI64Eqz: return "i64.eqz";
    case Op::kI64Eq: return "i64.eq";
    case Op::kI64Ne: return "i64.ne";
    case Op::kI64LtS: return "i64.lt_s";
    case Op::kI64GtS: return "i64.gt_s";
    case Op::kI64LeS: return "i64.le_s";
    case Op::kI64GeS: return "i64.ge_s";
    case Op::kF64Add: return "f64.add";
    case Op::kF64Sub: return "f64.sub";
    case Op::kF64Mul: return "f64.mul";
    case Op::kF64Div: return "f64.div";
    case Op::kF64Sqrt: return "f64.sqrt";
    case Op::kF64Abs: return "f64.abs";
    case Op::kF64Neg: return "f64.neg";
    case Op::kF64Eq: return "f64.eq";
    case Op::kF64Lt: return "f64.lt";
    case Op::kF64Gt: return "f64.gt";
    case Op::kI64TruncF64: return "i64.trunc_f64_s";
    case Op::kF64ConvertI64: return "f64.convert_i64_s";
    case Op::kDrop: return "drop";
    case Op::kSelect: return "select";
    case Op::kI64Load: return "i64.load";
    case Op::kI64Store: return "i64.store";
    case Op::kF64Load: return "f64.load";
    case Op::kF64Store: return "f64.store";
    case Op::kMemorySize: return "memory.size";
    case Op::kMemoryGrow: return "memory.grow";
    case Op::kBlock: return "block";
    case Op::kLoop: return "loop";
    case Op::kIf: return "if";
    case Op::kElse: return "else";
    case Op::kEnd: return "end";
    case Op::kBr: return "br";
    case Op::kBrIf: return "br_if";
    case Op::kReturn: return "return";
    case Op::kCall: return "call";
    case Op::kCount: break;
  }
  return "?";
}

const Function* Module::find(const std::string& name) const {
  for (const auto& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

int Module::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < functions.size(); ++i) {
    if (functions[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

/// Per-function type checker. Control frames are void-typed (a deliberate
/// MiniWasm simplification — values may not flow out of blocks; function
/// results are produced at the function's final End). Code after an
/// unconditional br/return is skipped until the enclosing frame closes.
class Validator {
 public:
  Validator(const Module& module, const Function& fn)
      : module_(module), fn_(fn) {}

  std::string check() {
    frames_.push_back({false, 0});  // implicit function frame
    for (pc_ = 0; pc_ < fn_.body.size(); ++pc_) {
      const Instr& in = fn_.body[pc_];
      if (unreachable_) {
        if (!step_unreachable(in)) continue;
        if (!err_.empty()) return err_;
        continue;
      }
      step(in);
      if (!err_.empty())
        return "at " + std::to_string(pc_) + " (" +
               std::string(to_string(in.op)) + "): " + err_;
    }
    if (!frames_.empty())
      return "unbalanced control frames: " + std::to_string(frames_.size()) +
             " unclosed";
    if (!done_) return "function body missing final end";
    return "";
  }

 private:
  struct Frame {
    bool is_loop;
    std::size_t height;
    bool saw_else = false;
    bool is_if = false;
  };

  void fail(const std::string& what) {
    if (err_.empty()) err_ = what;
  }

  void push(ValType t) { stack_.push_back(t); }

  std::optional<ValType> pop() {
    if (frames_.empty()) {
      fail("pop outside any frame");
      return std::nullopt;
    }
    if (stack_.size() <= frames_.back().height) {
      fail("stack underflow");
      return std::nullopt;
    }
    const ValType t = stack_.back();
    stack_.pop_back();
    return t;
  }

  void expect(ValType want) {
    const auto got = pop();
    if (got && *got != want)
      fail(std::string("expected ") + std::string(to_string(want)) +
           ", found " + std::string(to_string(*got)));
  }

  void binop(ValType t) {
    expect(t);
    expect(t);
    push(t);
  }

  void cmp(ValType t) {
    expect(t);
    expect(t);
    push(ValType::kI64);
  }

  ValType local_type(std::int64_t idx) {
    if (idx < 0 ||
        static_cast<std::size_t>(idx) >= fn_.params.size() + fn_.locals.size()) {
      fail("unknown local " + std::to_string(idx));
      return ValType::kI64;
    }
    const auto u = static_cast<std::size_t>(idx);
    return u < fn_.params.size() ? fn_.params[u]
                                 : fn_.locals[u - fn_.params.size()];
  }

  void check_branch_depth(std::int64_t depth) {
    if (depth < 0 || static_cast<std::size_t>(depth) >= frames_.size())
      fail("branch depth " + std::to_string(depth) + " exceeds " +
           std::to_string(frames_.size()) + " frames");
  }

  // Skips unreachable code; returns true if the instruction was structural
  // and handled here.
  bool step_unreachable(const Instr& in) {
    switch (in.op) {
      case Op::kBlock:
      case Op::kLoop:
      case Op::kIf:
        ++skip_depth_;
        return true;
      case Op::kElse:
        if (skip_depth_ == 0) {
          // The else-arm of the frame that went unreachable is reachable.
          unreachable_ = false;
          handle_else();
        }
        return true;
      case Op::kEnd:
        if (skip_depth_ > 0) {
          --skip_depth_;
          return true;
        }
        unreachable_ = false;
        if (frames_.size() == 1) {
          // Function end reached via unconditional br/return: the result
          // was already produced at the branch site.
          frames_.pop_back();
          done_ = true;
          if (pc_ + 1 != fn_.body.size()) fail("code after final end");
          stack_.clear();
          return true;
        }
        stack_.resize(frames_.back().height);
        handle_end();
        return true;
      default:
        return true;  // skipped
    }
  }

  void handle_else() {
    if (frames_.empty() || !frames_.back().is_if || frames_.back().saw_else) {
      fail("else without matching if");
      return;
    }
    frames_.back().saw_else = true;
    stack_.resize(frames_.back().height);
  }

  void handle_end() {
    if (frames_.empty()) {
      fail("end without open frame");
      return;
    }
    const Frame frame = frames_.back();
    frames_.pop_back();
    if (frames_.empty()) {
      // Function end: the stack must carry exactly the declared result.
      done_ = true;
      const std::size_t want = fn_.result ? 1 : 0;
      if (stack_.size() != want) {
        fail("function leaves " + std::to_string(stack_.size()) +
             " values, declared " + std::to_string(want));
        return;
      }
      if (fn_.result && stack_.back() != *fn_.result)
        fail("result type mismatch");
      if (pc_ + 1 != fn_.body.size()) fail("code after final end");
      return;
    }
    if (stack_.size() != frame.height)
      fail("block leaves " +
           std::to_string(stack_.size() - frame.height) +
           " values (blocks are void in MiniWasm)");
  }

  void step(const Instr& in) {
    switch (in.op) {
      case Op::kI64Const:
        push(ValType::kI64);
        break;
      case Op::kF64Const:
        push(ValType::kF64);
        break;
      case Op::kLocalGet:
        push(local_type(in.imm_i));
        break;
      case Op::kLocalSet:
        expect(local_type(in.imm_i));
        break;
      case Op::kLocalTee: {
        const ValType t = local_type(in.imm_i);
        expect(t);
        push(t);
        break;
      }
      case Op::kI64Add: case Op::kI64Sub: case Op::kI64Mul:
      case Op::kI64DivS: case Op::kI64RemS: case Op::kI64And:
      case Op::kI64Or: case Op::kI64Xor: case Op::kI64Shl:
      case Op::kI64ShrS:
        binop(ValType::kI64);
        break;
      case Op::kI64Eqz:
        expect(ValType::kI64);
        push(ValType::kI64);
        break;
      case Op::kI64Eq: case Op::kI64Ne: case Op::kI64LtS:
      case Op::kI64GtS: case Op::kI64LeS: case Op::kI64GeS:
        cmp(ValType::kI64);
        break;
      case Op::kF64Add: case Op::kF64Sub: case Op::kF64Mul:
      case Op::kF64Div:
        binop(ValType::kF64);
        break;
      case Op::kF64Sqrt: case Op::kF64Abs: case Op::kF64Neg:
        expect(ValType::kF64);
        push(ValType::kF64);
        break;
      case Op::kF64Eq: case Op::kF64Lt: case Op::kF64Gt:
        cmp(ValType::kF64);
        break;
      case Op::kI64TruncF64:
        expect(ValType::kF64);
        push(ValType::kI64);
        break;
      case Op::kF64ConvertI64:
        expect(ValType::kI64);
        push(ValType::kF64);
        break;
      case Op::kDrop:
        pop();
        break;
      case Op::kSelect: {
        expect(ValType::kI64);  // condition
        const auto b = pop();
        const auto a = pop();
        if (a && b && *a != *b) fail("select arms differ in type");
        if (a) push(*a);
        break;
      }
      case Op::kI64Load:
        expect(ValType::kI64);
        push(ValType::kI64);
        break;
      case Op::kF64Load:
        expect(ValType::kI64);
        push(ValType::kF64);
        break;
      case Op::kI64Store:
        expect(ValType::kI64);  // value
        expect(ValType::kI64);  // address
        break;
      case Op::kF64Store:
        expect(ValType::kF64);
        expect(ValType::kI64);
        break;
      case Op::kMemorySize:
        push(ValType::kI64);
        break;
      case Op::kMemoryGrow:
        expect(ValType::kI64);
        push(ValType::kI64);
        break;
      case Op::kBlock:
        frames_.push_back({false, stack_.size()});
        break;
      case Op::kLoop:
        frames_.push_back({true, stack_.size()});
        break;
      case Op::kIf:
        expect(ValType::kI64);
        frames_.push_back({false, stack_.size(), false, true});
        break;
      case Op::kElse:
        handle_else();
        break;
      case Op::kEnd:
        handle_end();
        break;
      case Op::kBr:
        check_branch_depth(in.imm_i);
        unreachable_ = true;
        break;
      case Op::kBrIf:
        expect(ValType::kI64);
        check_branch_depth(in.imm_i);
        break;
      case Op::kReturn: {
        if (fn_.result) expect(*fn_.result);
        unreachable_ = true;
        break;
      }
      case Op::kCall: {
        if (in.imm_i < 0 ||
            static_cast<std::size_t>(in.imm_i) >= module_.functions.size()) {
          fail("call to unknown function " + std::to_string(in.imm_i));
          break;
        }
        const Function& callee =
            module_.functions[static_cast<std::size_t>(in.imm_i)];
        for (auto it = callee.params.rbegin(); it != callee.params.rend();
             ++it)
          expect(*it);
        if (callee.result) push(*callee.result);
        break;
      }
      case Op::kCount:
        fail("invalid opcode");
        break;
    }
  }

  const Module& module_;
  const Function& fn_;
  std::vector<Frame> frames_;
  std::vector<ValType> stack_;
  std::size_t pc_ = 0;
  bool unreachable_ = false;
  int skip_depth_ = 0;
  bool done_ = false;
  std::string err_;
};

}  // namespace

ValidationResult validate(const Module& module) {
  ValidationResult out;
  if (module.memory_pages > Module::kMaxPages) {
    out.error = "memory exceeds the 64-MiB cap";
    return out;
  }
  for (const auto& fn : module.functions) {
    if (fn.body.empty() || fn.body.back().op != Op::kEnd) {
      out.error = fn.name + ": body must end with 'end'";
      return out;
    }
    Validator v(module, fn);
    const std::string err = v.check();
    if (!err.empty()) {
      out.error = fn.name + ": " + err;
      return out;
    }
  }
  out.ok = true;
  return out;
}

}  // namespace confbench::wasm

// MiniWasm module model: instructions, functions, validation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wasm/value.h"

namespace confbench::wasm {

enum class Op : std::uint8_t {
  // constants
  kI64Const, kF64Const,
  // locals
  kLocalGet, kLocalSet, kLocalTee,
  // i64 arithmetic / logic
  kI64Add, kI64Sub, kI64Mul, kI64DivS, kI64RemS,
  kI64And, kI64Or, kI64Xor, kI64Shl, kI64ShrS,
  // i64 comparisons (produce i64 0/1)
  kI64Eqz, kI64Eq, kI64Ne, kI64LtS, kI64GtS, kI64LeS, kI64GeS,
  // f64 arithmetic
  kF64Add, kF64Sub, kF64Mul, kF64Div, kF64Sqrt, kF64Abs, kF64Neg,
  // f64 comparisons
  kF64Eq, kF64Lt, kF64Gt,
  // conversions
  kI64TruncF64, kF64ConvertI64,
  // parametric
  kDrop, kSelect,
  // memory (byte-addressed, bounds-checked)
  kI64Load, kI64Store, kF64Load, kF64Store, kMemorySize, kMemoryGrow,
  // control
  kBlock, kLoop, kIf, kElse, kEnd, kBr, kBrIf, kReturn, kCall,
  kCount
};

std::string_view to_string(Op op);

/// One instruction: opcode + immediate. `imm_i` carries local indices,
/// branch depths, function indices or i64 constants; `imm_f` carries f64
/// constants.
struct Instr {
  Op op;
  std::int64_t imm_i = 0;
  double imm_f = 0.0;
};

struct Function {
  std::string name;
  std::vector<ValType> params;
  std::vector<ValType> locals;  ///< additional locals (zero-initialised)
  std::optional<ValType> result;
  std::vector<Instr> body;      ///< must end with kEnd
};

struct Module {
  std::vector<Function> functions;
  std::uint32_t memory_pages = 0;  ///< 64-KiB pages
  static constexpr std::uint32_t kPageBytes = 64 * 1024;
  static constexpr std::uint32_t kMaxPages = 1024;  // 64 MiB cap

  [[nodiscard]] const Function* find(const std::string& name) const;
  [[nodiscard]] int index_of(const std::string& name) const;
};

/// Validation result: empty error means the module is well-formed.
struct ValidationResult {
  bool ok = false;
  std::string error;
};

/// Structural + type validation: balanced control frames, known branch
/// depths, known locals/functions, stack-effect consistency on every path,
/// and result-type agreement.
ValidationResult validate(const Module& module);

}  // namespace confbench::wasm

#include "wasm/interp.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "vm/exec_context.h"

namespace confbench::wasm {

std::string_view to_string(TrapKind k) {
  switch (k) {
    case TrapKind::kNone: return "none";
    case TrapKind::kDivideByZero: return "integer divide by zero";
    case TrapKind::kOutOfBoundsMemory: return "out-of-bounds memory access";
    case TrapKind::kStackExhausted: return "call stack exhausted";
    case TrapKind::kFuelExhausted: return "fuel exhausted";
    case TrapKind::kUnknownFunction: return "unknown function";
  }
  return "?";
}

Interpreter::Interpreter(Module module, InterpConfig cfg)
    : module_(std::move(module)), cfg_(cfg) {
  const ValidationResult v = validate(module_);
  if (!v.ok) throw std::invalid_argument("invalid module: " + v.error);
  memory_.assign(static_cast<std::size_t>(module_.memory_pages) *
                     Module::kPageBytes,
                 0);
  targets_.resize(module_.functions.size());
  for (std::size_t i = 0; i < module_.functions.size(); ++i)
    resolve_control(module_.functions[i], &targets_[i]);
}

void Interpreter::resolve_control(const Function& fn,
                                  ControlTargets* out) const {
  constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  out->end_of.assign(fn.body.size(), kNpos);
  out->else_of.assign(fn.body.size(), kNpos);
  std::vector<std::size_t> opens;
  for (std::size_t pc = 0; pc < fn.body.size(); ++pc) {
    switch (fn.body[pc].op) {
      case Op::kBlock:
      case Op::kLoop:
      case Op::kIf:
        opens.push_back(pc);
        break;
      case Op::kElse:
        if (!opens.empty()) out->else_of[opens.back()] = pc;
        break;
      case Op::kEnd:
        if (!opens.empty()) {
          out->end_of[opens.back()] = pc;
          // An Else also needs to know its End to skip over the else-arm.
          if (out->else_of[opens.back()] != kNpos)
            out->end_of[out->else_of[opens.back()]] = pc;
          opens.pop_back();
        }
        break;
      default:
        break;
    }
  }
}

std::int64_t Interpreter::read_i64(std::uint64_t addr) const {
  std::int64_t v = 0;
  if (addr + 8 <= memory_.size()) std::memcpy(&v, memory_.data() + addr, 8);
  return v;
}

void Interpreter::write_i64(std::uint64_t addr, std::int64_t v) {
  if (addr + 8 <= memory_.size()) std::memcpy(memory_.data() + addr, &v, 8);
}

RunResult Interpreter::invoke(const std::string& function,
                              const std::vector<Value>& args,
                              vm::ExecutionContext* ctx) {
  fuel_used_ = 0;
  const int idx = module_.index_of(function);
  if (idx < 0) {
    RunResult r;
    r.trap = TrapKind::kUnknownFunction;
    return r;
  }
  RunResult r = call(static_cast<std::size_t>(idx), args, ctx, 0);
  r.instructions = fuel_used_;
  return r;
}

RunResult Interpreter::call(std::size_t fn_index,
                            const std::vector<Value>& args,
                            vm::ExecutionContext* ctx, std::uint64_t depth) {
  RunResult result;
  if (depth >= cfg_.max_call_depth) {
    result.trap = TrapKind::kStackExhausted;
    return result;
  }
  const Function& fn = module_.functions[fn_index];
  const ControlTargets& tg = targets_[fn_index];
  if (args.size() != fn.params.size()) {
    result.trap = TrapKind::kUnknownFunction;  // arity mismatch
    return result;
  }

  std::vector<Value> locals(fn.params.size() + fn.locals.size());
  for (std::size_t i = 0; i < args.size(); ++i) locals[i] = args[i];
  for (std::size_t i = 0; i < fn.locals.size(); ++i)
    locals[args.size() + i] = fn.locals[i] == ValType::kF64
                                  ? Value::make_f64(0.0)
                                  : Value::make_i64(0);

  std::vector<Value> stack;
  stack.reserve(32);
  // Control stack: entry pc of each open frame (to find loop backedges).
  std::vector<std::size_t> frames;
  // Charged-cost accumulators, flushed in batches.
  std::uint64_t batch_instrs = 0;
  const std::uint64_t mem_region =
      ctx && !memory_.empty() ? ctx->alloc_region(memory_.size(), 4096) : 0;
  auto flush = [&] {
    if (ctx && batch_instrs > 0) {
      ctx->compute(static_cast<double>(batch_instrs) *
                       cfg_.dispatch_ops_per_instr,
                   static_cast<double>(batch_instrs) * 1.2);
    }
    batch_instrs = 0;
  };
  auto trap = [&](TrapKind k) {
    flush();
    result.trap = k;
    return result;
  };

  auto pop = [&] {
    const Value v = stack.back();
    stack.pop_back();
    return v;
  };

  for (std::size_t pc = 0; pc < fn.body.size(); ++pc) {
    const Instr& in = fn.body[pc];
    ++fuel_used_;
    ++batch_instrs;
    if (batch_instrs >= 4096) flush();
    if (cfg_.fuel != 0 && fuel_used_ > cfg_.fuel)
      return trap(TrapKind::kFuelExhausted);

    switch (in.op) {
      case Op::kI64Const:
        stack.push_back(Value::make_i64(in.imm_i));
        break;
      case Op::kF64Const:
        stack.push_back(Value::make_f64(in.imm_f));
        break;
      case Op::kLocalGet:
        stack.push_back(locals[static_cast<std::size_t>(in.imm_i)]);
        break;
      case Op::kLocalSet:
        locals[static_cast<std::size_t>(in.imm_i)] = pop();
        break;
      case Op::kLocalTee:
        locals[static_cast<std::size_t>(in.imm_i)] = stack.back();
        break;

#define CB_I64_BINOP(OP, EXPR)                                   \
  case Op::OP: {                                                 \
    const std::int64_t b = pop().i64;                            \
    const std::int64_t a = pop().i64;                            \
    stack.push_back(Value::make_i64(EXPR));                      \
    break;                                                       \
  }
      CB_I64_BINOP(kI64Add, a + b)
      CB_I64_BINOP(kI64Sub, a - b)
      CB_I64_BINOP(kI64Mul, a * b)
      CB_I64_BINOP(kI64And, a & b)
      CB_I64_BINOP(kI64Or, a | b)
      CB_I64_BINOP(kI64Xor, a ^ b)
      CB_I64_BINOP(kI64Shl, a << (b & 63))
      CB_I64_BINOP(kI64ShrS, a >> (b & 63))
      CB_I64_BINOP(kI64Eq, a == b ? 1 : 0)
      CB_I64_BINOP(kI64Ne, a != b ? 1 : 0)
      CB_I64_BINOP(kI64LtS, a < b ? 1 : 0)
      CB_I64_BINOP(kI64GtS, a > b ? 1 : 0)
      CB_I64_BINOP(kI64LeS, a <= b ? 1 : 0)
      CB_I64_BINOP(kI64GeS, a >= b ? 1 : 0)
#undef CB_I64_BINOP

      case Op::kI64DivS: {
        const std::int64_t b = pop().i64;
        const std::int64_t a = pop().i64;
        if (b == 0) return trap(TrapKind::kDivideByZero);
        stack.push_back(Value::make_i64(a / b));
        break;
      }
      case Op::kI64RemS: {
        const std::int64_t b = pop().i64;
        const std::int64_t a = pop().i64;
        if (b == 0) return trap(TrapKind::kDivideByZero);
        stack.push_back(Value::make_i64(a % b));
        break;
      }
      case Op::kI64Eqz:
        stack.back() = Value::make_i64(stack.back().i64 == 0 ? 1 : 0);
        break;

#define CB_F64_BINOP(OP, EXPR)                                   \
  case Op::OP: {                                                 \
    const double b = pop().f64;                                  \
    const double a = pop().f64;                                  \
    stack.push_back(EXPR);                                       \
    break;                                                       \
  }
      CB_F64_BINOP(kF64Add, Value::make_f64(a + b))
      CB_F64_BINOP(kF64Sub, Value::make_f64(a - b))
      CB_F64_BINOP(kF64Mul, Value::make_f64(a * b))
      CB_F64_BINOP(kF64Div, Value::make_f64(a / b))
      CB_F64_BINOP(kF64Eq, Value::make_i64(a == b ? 1 : 0))
      CB_F64_BINOP(kF64Lt, Value::make_i64(a < b ? 1 : 0))
      CB_F64_BINOP(kF64Gt, Value::make_i64(a > b ? 1 : 0))
#undef CB_F64_BINOP

      case Op::kF64Sqrt:
        stack.back() = Value::make_f64(std::sqrt(stack.back().f64));
        break;
      case Op::kF64Abs:
        stack.back() = Value::make_f64(std::fabs(stack.back().f64));
        break;
      case Op::kF64Neg:
        stack.back() = Value::make_f64(-stack.back().f64);
        break;
      case Op::kI64TruncF64:
        stack.back() =
            Value::make_i64(static_cast<std::int64_t>(stack.back().f64));
        break;
      case Op::kF64ConvertI64:
        stack.back() =
            Value::make_f64(static_cast<double>(stack.back().i64));
        break;

      case Op::kDrop:
        stack.pop_back();
        break;
      case Op::kSelect: {
        const std::int64_t c = pop().i64;
        const Value b = pop();
        const Value a = pop();
        stack.push_back(c != 0 ? a : b);
        break;
      }

      case Op::kI64Load: {
        const auto addr = static_cast<std::uint64_t>(pop().i64) +
                          static_cast<std::uint64_t>(in.imm_i);
        if (addr + 8 > memory_.size())
          return trap(TrapKind::kOutOfBoundsMemory);
        std::int64_t v;
        std::memcpy(&v, memory_.data() + addr, 8);
        stack.push_back(Value::make_i64(v));
        if (ctx) ctx->mem_read(mem_region + addr, 8, 8);
        break;
      }
      case Op::kF64Load: {
        const auto addr = static_cast<std::uint64_t>(pop().i64) +
                          static_cast<std::uint64_t>(in.imm_i);
        if (addr + 8 > memory_.size())
          return trap(TrapKind::kOutOfBoundsMemory);
        double v;
        std::memcpy(&v, memory_.data() + addr, 8);
        stack.push_back(Value::make_f64(v));
        if (ctx) ctx->mem_read(mem_region + addr, 8, 8);
        break;
      }
      case Op::kI64Store: {
        const std::int64_t v = pop().i64;
        const auto addr = static_cast<std::uint64_t>(pop().i64) +
                          static_cast<std::uint64_t>(in.imm_i);
        if (addr + 8 > memory_.size())
          return trap(TrapKind::kOutOfBoundsMemory);
        std::memcpy(memory_.data() + addr, &v, 8);
        if (ctx) ctx->mem_write(mem_region + addr, 8, 8);
        break;
      }
      case Op::kF64Store: {
        const double v = pop().f64;
        const auto addr = static_cast<std::uint64_t>(pop().i64) +
                          static_cast<std::uint64_t>(in.imm_i);
        if (addr + 8 > memory_.size())
          return trap(TrapKind::kOutOfBoundsMemory);
        std::memcpy(memory_.data() + addr, &v, 8);
        if (ctx) ctx->mem_write(mem_region + addr, 8, 8);
        break;
      }
      case Op::kMemorySize:
        stack.push_back(Value::make_i64(
            static_cast<std::int64_t>(memory_.size() / Module::kPageBytes)));
        break;
      case Op::kMemoryGrow: {
        const std::int64_t delta = pop().i64;
        const std::uint64_t old_pages = memory_.size() / Module::kPageBytes;
        const std::uint64_t want =
            old_pages + static_cast<std::uint64_t>(delta < 0 ? 0 : delta);
        if (delta < 0 || want > Module::kMaxPages) {
          stack.push_back(Value::make_i64(-1));
        } else {
          memory_.resize(want * Module::kPageBytes, 0);
          stack.push_back(
              Value::make_i64(static_cast<std::int64_t>(old_pages)));
          if (ctx)
            ctx->page_fault(static_cast<double>(delta) *
                            Module::kPageBytes / 4096.0);
        }
        break;
      }

      case Op::kBlock:
      case Op::kLoop:
      case Op::kIf: {
        if (in.op == Op::kIf) {
          const std::int64_t cond = pop().i64;
          if (cond == 0) {
            const std::size_t else_pc = tg.else_of[pc];
            if (else_pc != static_cast<std::size_t>(-1)) {
              frames.push_back(pc);
              pc = else_pc;  // jump into the else-arm
            } else {
              pc = tg.end_of[pc];  // skip the whole if
            }
            break;
          }
        }
        frames.push_back(pc);
        break;
      }
      case Op::kElse:
        // Falling into Else after a taken if-arm: skip to End.
        pc = tg.end_of[pc];
        if (!frames.empty()) frames.pop_back();
        break;
      case Op::kEnd:
        if (!frames.empty()) frames.pop_back();
        break;
      case Op::kBr:
      case Op::kBrIf: {
        if (in.op == Op::kBrIf && pop().i64 == 0) break;
        const auto depth_imm = static_cast<std::size_t>(in.imm_i);
        if (depth_imm >= frames.size()) {
          // Branch to the function frame: return.
          flush();
          result.ok = true;
          if (fn.result && !stack.empty()) result.value = stack.back();
          return result;
        }
        const std::size_t target_open =
            frames[frames.size() - 1 - depth_imm];
        if (fn.body[target_open].op == Op::kLoop) {
          // Back-edge: continue from the loop header; the frame stays.
          frames.resize(frames.size() - depth_imm);
          pc = target_open;
        } else {
          // Forward branch: exit the frame.
          frames.resize(frames.size() - depth_imm - 1);
          pc = tg.end_of[target_open];
        }
        break;
      }
      case Op::kReturn:
        flush();
        result.ok = true;
        if (fn.result && !stack.empty()) result.value = stack.back();
        return result;
      case Op::kCall: {
        const auto callee = static_cast<std::size_t>(in.imm_i);
        const Function& cf = module_.functions[callee];
        std::vector<Value> call_args(cf.params.size());
        for (std::size_t i = cf.params.size(); i-- > 0;)
          call_args[i] = pop();
        flush();
        RunResult sub = call(callee, call_args, ctx, depth + 1);
        if (!sub.ok) return sub;
        if (cf.result) stack.push_back(*sub.value);
        break;
      }
      case Op::kCount:
        return trap(TrapKind::kUnknownFunction);
    }
  }

  flush();
  result.ok = true;
  if (fn.result && !stack.empty()) result.value = stack.back();
  return result;
}

}  // namespace confbench::wasm

#include "wasm/text.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace confbench::wasm {

namespace {

// ---------------------------------------------------------------- tokenizer

struct Token {
  enum class Kind { kLParen, kRParen, kAtom, kEof } kind;
  std::string text;
  int line;
};

class Tokenizer {
 public:
  explicit Tokenizer(const std::string& src) : src_(src) {}

  // Returns false on lexical error (error_ set).
  bool tokenize(std::vector<Token>* out) {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == ';' && peek(1) == ';') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else if (c == '(' && peek(1) == ';') {
        if (!skip_block_comment()) return false;
      } else if (c == '(') {
        out->push_back({Token::Kind::kLParen, "(", line_});
        ++pos_;
      } else if (c == ')') {
        out->push_back({Token::Kind::kRParen, ")", line_});
        ++pos_;
      } else {
        std::string atom;
        const int start_line = line_;
        while (pos_ < src_.size() && !std::isspace(static_cast<unsigned char>(
                                         src_[pos_])) &&
               src_[pos_] != '(' && src_[pos_] != ')') {
          atom += src_[pos_++];
        }
        out->push_back({Token::Kind::kAtom, atom, start_line});
      }
    }
    out->push_back({Token::Kind::kEof, "", line_});
    return true;
  }

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] int error_line() const { return line_; }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  bool skip_block_comment() {
    int depth = 0;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '(' && peek(1) == ';') {
        ++depth;
        pos_ += 2;
      } else if (src_[pos_] == ';' && peek(1) == ')') {
        --depth;
        pos_ += 2;
        if (depth == 0) return true;
      } else {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      }
    }
    error_ = "unterminated block comment";
    return false;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  std::string error_;
};

// ------------------------------------------------------------------- parser

const std::map<std::string, Op>& op_table() {
  static const std::map<std::string, Op> kTable = [] {
    std::map<std::string, Op> t;
    for (int i = 0; i < static_cast<int>(Op::kCount); ++i) {
      const Op op = static_cast<Op>(i);
      t.emplace(std::string(to_string(op)), op);
    }
    return t;
  }();
  return kTable;
}

bool op_takes_index_imm(Op op) {
  switch (op) {
    case Op::kLocalGet:
    case Op::kLocalSet:
    case Op::kLocalTee:
    case Op::kBr:
    case Op::kBrIf:
    case Op::kCall:
      return true;
    default:
      return false;
  }
}

bool op_takes_optional_offset(Op op) {
  switch (op) {
    case Op::kI64Load:
    case Op::kI64Store:
    case Op::kF64Load:
    case Op::kF64Store:
      return true;
    default:
      return false;
  }
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ParseResult parse() {
    ParseResult result;
    Module module;
    if (!expect(Token::Kind::kLParen) || !expect_atom("module")) {
      return fail_result();
    }
    // First pass over function names happens inline: function indices are
    // assigned in declaration order, and forward calls by $name are patched
    // at the end.
    while (peek().kind == Token::Kind::kLParen) {
      const Token& next = tokens_[pos_ + 1];
      if (next.kind != Token::Kind::kAtom) return fail_result("expected form");
      if (next.text == "memory") {
        if (!parse_memory(&module)) return fail_result();
      } else if (next.text == "func") {
        if (!parse_func(&module)) return fail_result();
      } else {
        return fail_result("unknown form '" + next.text + "'");
      }
    }
    if (!expect(Token::Kind::kRParen)) return fail_result();
    if (!patch_forward_calls(&module)) return fail_result();
    result.module = std::move(module);
    return result;
  }

 private:
  ParseResult fail_result(const std::string& msg = "") {
    if (!msg.empty()) set_error(msg);
    ParseResult r;
    r.error = error_.empty() ? "parse error" : error_;
    r.line = error_line_ ? error_line_ : peek().line;
    return r;
  }

  void set_error(const std::string& msg) {
    if (error_.empty()) {
      error_ = msg;
      error_line_ = peek().line;
    }
  }

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& take() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool expect(Token::Kind kind) {
    if (peek().kind != kind) {
      set_error("unexpected token '" + peek().text + "'");
      return false;
    }
    ++pos_;
    return true;
  }
  bool expect_atom(const std::string& text) {
    if (peek().kind != Token::Kind::kAtom || peek().text != text) {
      set_error("expected '" + text + "'");
      return false;
    }
    ++pos_;
    return true;
  }

  static std::optional<ValType> parse_valtype(const std::string& s) {
    if (s == "i64") return ValType::kI64;
    if (s == "f64") return ValType::kF64;
    return std::nullopt;
  }

  bool parse_int(const std::string& s, std::int64_t* out) {
    try {
      std::size_t used = 0;
      *out = std::stoll(s, &used, 0);
      return used == s.size();
    } catch (...) {
      return false;
    }
  }

  bool parse_memory(Module* module) {
    ++pos_;  // (
    ++pos_;  // memory
    std::int64_t pages = 0;
    if (peek().kind != Token::Kind::kAtom ||
        !parse_int(take().text, &pages) || pages < 0) {
      set_error("memory needs a page count");
      return false;
    }
    module->memory_pages = static_cast<std::uint32_t>(pages);
    return expect(Token::Kind::kRParen);
  }

  bool parse_func(Module* module) {
    ++pos_;  // (
    ++pos_;  // func
    Function fn;
    std::map<std::string, int> local_names;

    if (peek().kind == Token::Kind::kAtom && peek().text[0] == '$') {
      fn.name = take().text.substr(1);
    } else {
      fn.name = "f" + std::to_string(module->functions.size());
    }
    if (fn_indices_.count(fn.name)) {
      set_error("duplicate function $" + fn.name);
      return false;
    }
    fn_indices_[fn.name] = static_cast<int>(module->functions.size());

    // (param [$name] type)* (result type)? (local [$name] type)*
    while (peek().kind == Token::Kind::kLParen &&
           peek(1).kind == Token::Kind::kAtom &&
           (peek(1).text == "param" || peek(1).text == "result" ||
            peek(1).text == "local")) {
      ++pos_;
      const std::string what = take().text;
      std::string name;
      if (peek().kind == Token::Kind::kAtom && peek().text[0] == '$')
        name = take().text.substr(1);
      if (what == "result") {
        const auto t = peek().kind == Token::Kind::kAtom
                           ? parse_valtype(take().text)
                           : std::nullopt;
        if (!t) {
          set_error("result needs a type");
          return false;
        }
        fn.result = *t;
      } else {
        const auto t = peek().kind == Token::Kind::kAtom
                           ? parse_valtype(take().text)
                           : std::nullopt;
        if (!t) {
          set_error(what + " needs a type");
          return false;
        }
        int index;
        if (what == "param") {
          if (!fn.locals.empty() || fn.result) {
            set_error("params must precede result and locals");
            return false;
          }
          fn.params.push_back(*t);
          index = static_cast<int>(fn.params.size()) - 1;
        } else {
          fn.locals.push_back(*t);
          index =
              static_cast<int>(fn.params.size() + fn.locals.size()) - 1;
        }
        if (!name.empty()) {
          if (local_names.count(name)) {
            set_error("duplicate local $" + name);
            return false;
          }
          local_names[name] = index;
        }
      }
      if (!expect(Token::Kind::kRParen)) return false;
    }

    // Linear instruction sequence until the function's closing paren.
    while (peek().kind == Token::Kind::kAtom) {
      if (!parse_instr(&fn, local_names)) return false;
    }
    if (!expect(Token::Kind::kRParen)) {
      set_error("expected instruction or ')'");
      return false;
    }
    // The implicit function end.
    if (fn.body.empty() || fn.body.back().op != Op::kEnd)
      fn.body.push_back({Op::kEnd, 0, 0.0});
    module->functions.push_back(std::move(fn));
    return true;
  }

  bool parse_instr(Function* fn, const std::map<std::string, int>& locals) {
    const Token tok = take();
    const auto it = op_table().find(tok.text);
    if (it == op_table().end()) {
      set_error("unknown instruction '" + tok.text + "'");
      return false;
    }
    Instr in{it->second, 0, 0.0};
    if (in.op == Op::kI64Const) {
      if (peek().kind != Token::Kind::kAtom ||
          !parse_int(take().text, &in.imm_i)) {
        set_error("i64.const needs an integer");
        return false;
      }
    } else if (in.op == Op::kF64Const) {
      if (peek().kind != Token::Kind::kAtom) {
        set_error("f64.const needs a number");
        return false;
      }
      try {
        in.imm_f = std::stod(take().text);
      } catch (...) {
        set_error("bad f64 literal");
        return false;
      }
    } else if (op_takes_index_imm(in.op)) {
      if (peek().kind != Token::Kind::kAtom) {
        set_error(std::string(to_string(in.op)) + " needs an operand");
        return false;
      }
      const std::string operand = take().text;
      if (!operand.empty() && operand[0] == '$') {
        const std::string name = operand.substr(1);
        if (in.op == Op::kCall) {
          // Defer: forward references are patched after all functions parse.
          pending_calls_.push_back(
              {current_instr_slot(fn), name, tok.line});
          in.imm_i = -1;
        } else {
          const auto lit = locals.find(name);
          if (lit == locals.end()) {
            set_error("unknown local $" + name);
            return false;
          }
          in.imm_i = lit->second;
        }
      } else if (!parse_int(operand, &in.imm_i) || in.imm_i < 0) {
        set_error("bad index '" + operand + "'");
        return false;
      }
    } else if (op_takes_optional_offset(in.op)) {
      if (peek().kind == Token::Kind::kAtom) {
        // offset=N attribute (optional).
        const std::string& text = peek().text;
        if (text.rfind("offset=", 0) == 0) {
          if (!parse_int(text.substr(7), &in.imm_i)) {
            set_error("bad offset");
            return false;
          }
          ++pos_;
        }
      }
    }
    fn->body.push_back(in);
    return true;
  }

  struct PendingCall {
    std::pair<std::size_t, std::size_t> slot;  // function idx, instr idx
    std::string callee;
    int line;
  };

  std::pair<std::size_t, std::size_t> current_instr_slot(Function* fn) const {
    return {fn_indices_.size() - 1, fn->body.size()};
  }

  bool patch_forward_calls(Module* module) {
    for (const auto& call : pending_calls_) {
      const auto it = fn_indices_.find(call.callee);
      if (it == fn_indices_.end()) {
        error_ = "call to unknown function $" + call.callee;
        error_line_ = call.line;
        return false;
      }
      module->functions[call.slot.first].body[call.slot.second].imm_i =
          it->second;
    }
    return true;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::map<std::string, int> fn_indices_;
  std::vector<PendingCall> pending_calls_;
  std::string error_;
  int error_line_ = 0;
};

}  // namespace

ParseResult parse_text(const std::string& source) {
  Tokenizer tokenizer(source);
  std::vector<Token> tokens;
  if (!tokenizer.tokenize(&tokens)) {
    ParseResult r;
    r.error = tokenizer.error();
    r.line = tokenizer.error_line();
    return r;
  }
  Parser parser(std::move(tokens));
  return parser.parse();
}

std::string to_text(const Module& module) {
  std::ostringstream os;
  os << "(module\n";
  if (module.memory_pages > 0)
    os << "  (memory " << module.memory_pages << ")\n";
  for (const auto& fn : module.functions) {
    os << "  (func $" << fn.name;
    for (const ValType p : fn.params) os << " (param " << to_string(p) << ")";
    if (fn.result) os << " (result " << to_string(*fn.result) << ")";
    for (const ValType l : fn.locals) os << " (local " << to_string(l) << ")";
    os << "\n";
    int indent = 2;
    for (std::size_t i = 0; i < fn.body.size(); ++i) {
      const Instr& in = fn.body[i];
      const bool last = i + 1 == fn.body.size();
      if (last && in.op == Op::kEnd) break;  // implicit function end
      if (in.op == Op::kEnd || in.op == Op::kElse) indent = std::max(1, indent - 1);
      os << std::string(static_cast<std::size_t>(indent) * 2, ' ')
         << to_string(in.op);
      if (in.op == Op::kI64Const) {
        os << ' ' << in.imm_i;
      } else if (in.op == Op::kF64Const) {
        os << ' ' << in.imm_f;
      } else if (op_takes_index_imm(in.op)) {
        if (in.op == Op::kCall) {
          os << " $"
             << module.functions[static_cast<std::size_t>(in.imm_i)].name;
        } else {
          os << ' ' << in.imm_i;
        }
      } else if (op_takes_optional_offset(in.op) && in.imm_i != 0) {
        os << " offset=" << in.imm_i;
      }
      os << "\n";
      if (in.op == Op::kBlock || in.op == Op::kLoop || in.op == Op::kIf ||
          in.op == Op::kElse)
        ++indent;
    }
    os << "  )\n";
  }
  os << ")\n";
  return os.str();
}

}  // namespace confbench::wasm

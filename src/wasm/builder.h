// Fluent bytecode builder for MiniWasm functions.
#pragma once

#include <string>
#include <utility>

#include "wasm/module.h"

namespace confbench::wasm {

class FuncBuilder {
 public:
  explicit FuncBuilder(std::string name) { fn_.name = std::move(name); }

  /// Declares a parameter; returns its local index.
  int param(ValType t) {
    fn_.params.push_back(t);
    return static_cast<int>(fn_.params.size()) - 1;
  }
  /// Declares an extra local; returns its local index.
  int local(ValType t) {
    fn_.locals.push_back(t);
    return static_cast<int>(fn_.params.size() + fn_.locals.size()) - 1;
  }
  FuncBuilder& result(ValType t) {
    fn_.result = t;
    return *this;
  }

  FuncBuilder& emit(Op op, std::int64_t imm = 0) {
    fn_.body.push_back({op, imm, 0.0});
    return *this;
  }
  FuncBuilder& i64_const(std::int64_t v) { return emit(Op::kI64Const, v); }
  FuncBuilder& f64_const(double v) {
    fn_.body.push_back({Op::kF64Const, 0, v});
    return *this;
  }
  FuncBuilder& get(int local_idx) { return emit(Op::kLocalGet, local_idx); }
  FuncBuilder& set(int local_idx) { return emit(Op::kLocalSet, local_idx); }
  FuncBuilder& tee(int local_idx) { return emit(Op::kLocalTee, local_idx); }
  FuncBuilder& add() { return emit(Op::kI64Add); }
  FuncBuilder& sub() { return emit(Op::kI64Sub); }
  FuncBuilder& mul() { return emit(Op::kI64Mul); }
  FuncBuilder& rem_s() { return emit(Op::kI64RemS); }
  FuncBuilder& div_s() { return emit(Op::kI64DivS); }
  FuncBuilder& eq() { return emit(Op::kI64Eq); }
  FuncBuilder& ne() { return emit(Op::kI64Ne); }
  FuncBuilder& lt_s() { return emit(Op::kI64LtS); }
  FuncBuilder& gt_s() { return emit(Op::kI64GtS); }
  FuncBuilder& le_s() { return emit(Op::kI64LeS); }
  FuncBuilder& ge_s() { return emit(Op::kI64GeS); }
  FuncBuilder& eqz() { return emit(Op::kI64Eqz); }
  FuncBuilder& block() { return emit(Op::kBlock); }
  FuncBuilder& loop() { return emit(Op::kLoop); }
  FuncBuilder& if_() { return emit(Op::kIf); }
  FuncBuilder& else_() { return emit(Op::kElse); }
  FuncBuilder& end() { return emit(Op::kEnd); }
  FuncBuilder& br(int depth) { return emit(Op::kBr, depth); }
  FuncBuilder& br_if(int depth) { return emit(Op::kBrIf, depth); }
  FuncBuilder& ret() { return emit(Op::kReturn); }
  FuncBuilder& call(int fn_index) { return emit(Op::kCall, fn_index); }
  FuncBuilder& i64_load(std::int64_t offset = 0) {
    return emit(Op::kI64Load, offset);
  }
  FuncBuilder& i64_store(std::int64_t offset = 0) {
    return emit(Op::kI64Store, offset);
  }

  [[nodiscard]] Function build() const { return fn_; }

 private:
  Function fn_;
};

/// Ready-made benchmark programs (the wasmi-benchmarks flavour, [36]).
namespace programs {

/// fib(n), naive recursion — call-dispatch heavy.
Module fib_recursive();
/// sum of 0..n-1 in a tight loop — branch/arith heavy.
Module sum_loop();
/// Sieve of Eratosthenes over `limit` bytes of linear memory; returns the
/// prime count — memory heavy. Module declares 2 pages.
Module sieve();
/// gcd(a, b) via Euclid — loop + rem.
Module gcd();
/// memory_fill(base, count): writes a pattern then checksums it.
Module memfill();

}  // namespace programs

}  // namespace confbench::wasm

// MiniWasm text format (a WAT-flavoured s-expression syntax).
//
// Lets users ship MiniWasm functions to ConfBench as source text — the
// FaaS upload path of §III-C — instead of building modules in C++:
//
//   (module
//     (memory 2)
//     (func $sum (param $n i64) (result i64)
//       (local $i i64) (local $acc i64)
//       block loop
//         local.get $i  local.get $n  i64.ge_s  br_if 1
//         local.get $acc  local.get $i  i64.add  local.set $acc
//         local.get $i  i64.const 1  i64.add  local.set $i
//         br 0
//       end end
//       local.get $acc))
//
// Instructions are written in linear (stack) order using the canonical
// names of wasm::to_string(Op). `$name` identifiers are resolved for
// functions, params and locals; plain integers work everywhere too.
// `;; line` and `(; block ;)` comments are supported.
#pragma once

#include <optional>
#include <string>

#include "wasm/module.h"

namespace confbench::wasm {

struct ParseResult {
  std::optional<Module> module;
  std::string error;  ///< empty on success
  int line = 0;       ///< 1-based line of the first error
  [[nodiscard]] bool ok() const { return module.has_value(); }
};

/// Parses text into a module. The module is *not* validated — callers run
/// wasm::validate (the Interpreter constructor does so anyway).
ParseResult parse_text(const std::string& source);

/// Prints a module in the text format; parse_text(to_text(m)) reproduces
/// the module (names are synthesised as $f0, $f1, ...).
std::string to_text(const Module& module);

}  // namespace confbench::wasm

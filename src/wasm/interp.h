// MiniWasm interpreter.
//
// A classic switch-dispatch interpreter over validated modules, with a
// bounds-checked linear memory. When given an ExecutionContext it charges
// the simulation for its dispatch work and memory traffic, so MiniWasm
// programs run "inside" a confidential VM like every other workload — this
// is the executable ground truth behind the `wasm` runtime profile's
// op-expansion parameter (checked by a unit test).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wasm/module.h"

namespace confbench::vm {
class ExecutionContext;
}

namespace confbench::wasm {

enum class TrapKind : std::uint8_t {
  kNone,
  kDivideByZero,
  kOutOfBoundsMemory,
  kStackExhausted,
  kFuelExhausted,
  kUnknownFunction,
};

std::string_view to_string(TrapKind k);

struct RunResult {
  bool ok = false;
  TrapKind trap = TrapKind::kNone;
  std::optional<Value> value;
  std::uint64_t instructions = 0;  ///< bytecode instructions retired
  [[nodiscard]] std::int64_t i64() const { return value ? value->i64 : 0; }
  [[nodiscard]] double f64() const { return value ? value->f64 : 0; }
};

struct InterpConfig {
  std::uint64_t max_call_depth = 2048;
  /// 0 = unlimited. Counts bytecode instructions.
  std::uint64_t fuel = 0;
  /// Native ops charged to the ExecutionContext per bytecode instruction —
  /// MiniWasm's dispatch loop cost (wasmi-class interpreter).
  double dispatch_ops_per_instr = 8.0;
};

class Interpreter {
 public:
  /// The module must have been validated; constructing an interpreter over
  /// an invalid module throws std::invalid_argument.
  explicit Interpreter(Module module, InterpConfig cfg = {});

  /// Invokes `function` with `args`. If `ctx` is non-null, dispatch work
  /// and linear-memory traffic are charged to the simulation.
  RunResult invoke(const std::string& function,
                   const std::vector<Value>& args,
                   vm::ExecutionContext* ctx = nullptr);

  [[nodiscard]] const Module& module() const { return module_; }
  [[nodiscard]] std::uint64_t memory_bytes() const { return memory_.size(); }

  /// Direct linear-memory access (for tests and host data exchange).
  [[nodiscard]] std::int64_t read_i64(std::uint64_t addr) const;
  void write_i64(std::uint64_t addr, std::int64_t v);

 private:
  struct ControlTargets {
    // For each instruction index: the matching End (for Block/If) and the
    // Else (for If, or npos).
    std::vector<std::size_t> end_of;
    std::vector<std::size_t> else_of;
  };
  void resolve_control(const Function& fn, ControlTargets* out) const;

  RunResult call(std::size_t fn_index, const std::vector<Value>& args,
                 vm::ExecutionContext* ctx, std::uint64_t depth);

  Module module_;
  InterpConfig cfg_;
  std::vector<std::uint8_t> memory_;
  std::vector<ControlTargets> targets_;  ///< per function
  std::uint64_t fuel_used_ = 0;
};

}  // namespace confbench::wasm

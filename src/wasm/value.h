// Value model for the MiniWasm interpreter.
//
// MiniWasm is ConfBench's stand-in for the Wasmi engine the paper uses for
// its WebAssembly FaaS runtime (§IV-B, [36], [37]): a validated, stack-based
// bytecode VM with linear memory. It supports the i64/f64 subset the
// benchmark programs need.
#pragma once

#include <cstdint>
#include <string>

namespace confbench::wasm {

enum class ValType : std::uint8_t { kI64, kF64 };

std::string_view to_string(ValType t);

/// A tagged runtime value.
struct Value {
  ValType type = ValType::kI64;
  union {
    std::int64_t i64;
    double f64;
  };

  Value() : i64(0) {}
  static Value make_i64(std::int64_t v) {
    Value out;
    out.type = ValType::kI64;
    out.i64 = v;
    return out;
  }
  static Value make_f64(double v) {
    Value out;
    out.type = ValType::kF64;
    out.f64 = v;
    return out;
  }

  [[nodiscard]] bool operator==(const Value& o) const {
    if (type != o.type) return false;
    return type == ValType::kI64 ? i64 == o.i64 : f64 == o.f64;
  }
};

}  // namespace confbench::wasm

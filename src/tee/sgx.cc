#include "tee/sgx.h"

namespace confbench::tee {

using sim::kMs;
using sim::kUs;

SgxPlatform::SgxPlatform() {
  // Baseline: a plain process on an SGX-capable Xeon.
  normal_.cpu = {.freq_ghz = 3.0, .cpi = 0.5, .fp_cpi = 1.0,
                 .sim_slowdown = 1.0};
  normal_.mem = {.l1_lat_cy = 4, .l2_lat_cy = 14, .llc_lat_cy = 44,
                 .dram_lat_ns = 88, .mlp = 4.0,
                 .enc_extra_ns = 0.0, .integrity_extra_ns = 0.0};
  // Processes, not VMs: no virtualisation exits at all.
  normal_.exit = {.syscall_ns = 110, .exit_rate_per_syscall = 0.0,
                  .vmexit_ns = 0, .secure_exit_extra_ns = 0,
                  .timer_wake_exit = 0.0, .ctx_switch_ns = 1050};
  normal_.io = {.blk_fixed_ns = 14 * kUs, .blk_byte_ns = 0.22,
                .flush_ns = 100 * kUs,
                .bounce_fixed_ns = 0, .bounce_byte_ns = 0,
                .net_rtt_ns = 105 * kUs, .net_byte_ns = 0.085};
  normal_.trial_jitter_sigma = 0.012;

  // --- Enclave -------------------------------------------------------------
  secure_ = normal_;
  // The MEE's integrity tree is far more expensive than TME-class inline
  // encryption: every EPC miss walks counter-tree levels.
  secure_.mem.enc_extra_ns = 9.0;
  secure_.mem.integrity_extra_ns = 18.0;
  secure_.mem.mlp = 2.5;  // tree walks serialise misses
  // Every syscall leaves the enclave: OCALL out + ECALL back (~8 us pair),
  // modelled as a guaranteed exit with a large cost.
  secure_.exit.exit_rate_per_syscall = 1.0;
  secure_.exit.vmexit_ns = 0;
  secure_.exit.secure_exit_extra_ns = 8200;
  secure_.exit.timer_wake_exit = 1.0;
  // EPC paging: faults run the EWB/ELDU crypto path.
  secure_.exit.page_fault_extra_ns = 11000;
  // I/O data is marshalled through untrusted buffers (copy + re-check).
  secure_.io.bounce_fixed_ns = 3 * kUs;
  secure_.io.bounce_byte_ns = 0.45;
  secure_.trial_jitter_sigma = 0.02;
}

AttestationCosts SgxPlatform::attestation() const {
  // EPID/DCAP-style local quote generation; verification mirrors the TDX
  // DCAP path (it is the same collateral infrastructure).
  AttestationCosts a;
  a.report_request = 2.0 * kMs;
  a.measurement = 0.9 * kMs;
  a.sign = 70 * kMs;
  a.collateral_round_trips = 4;
  a.collateral_rtt = 310 * kMs;
  a.verify_compute = 35 * kMs;
  a.supported = true;
  return a;
}

}  // namespace confbench::tee

#include "tee/tdx.h"

namespace confbench::tee {

using sim::kMs;
using sim::kUs;

TdxPlatform::TdxPlatform(TdxFirmware fw) : fw_(fw) {
  // --- Normal (legacy) VM on the TDX host -------------------------------
  normal_.cpu = {.freq_ghz = 3.2, .cpi = 0.50, .fp_cpi = 1.0,
                 .sim_slowdown = 1.0};
  normal_.mem = {.l1_lat_cy = 4, .l2_lat_cy = 14, .llc_lat_cy = 42,
                 .dram_lat_ns = 85, .mlp = 4.0,
                 .enc_extra_ns = 0.0, .integrity_extra_ns = 0.0};
  normal_.exit = {.syscall_ns = 110, .exit_rate_per_syscall = 0.05,
                  .vmexit_ns = 1400, .secure_exit_extra_ns = 0,
                  .timer_wake_exit = 1.0, .ctx_switch_ns = 1100};
  normal_.io = {.blk_fixed_ns = 16 * kUs, .blk_byte_ns = 0.24,
                .flush_ns = 105 * kUs,
                .bounce_fixed_ns = 0, .bounce_byte_ns = 0,
                .net_rtt_ns = 110 * kUs, .net_byte_ns = 0.085};
  normal_.trial_jitter_sigma = 0.012;

  // --- Trust Domain (secure VM) ------------------------------------------
  secure_ = normal_;
  // TME-MK AES-XTS on every DRAM transfer + logical integrity on fills.
  secure_.mem.enc_extra_ns = 1.4;
  secure_.mem.integrity_extra_ns = 0.6;
  // Assisted syscalls take the TDCALL -> TDX module -> host -> SEAMRET
  // path, which is considerably longer than a plain VMEXIT.
  secure_.exit.secure_exit_extra_ns = 2600;
  // DMA must round-trip through shared swiotlb bounce buffers: one extra
  // copy out, one in, both through the crypto engine (§IV-D, [34]).
  secure_.io.bounce_fixed_ns = 11 * kUs;
  secure_.io.bounce_byte_ns = 0.95;
  // TDG.MEM.PAGE.ACCEPT on first touch of private pages.
  secure_.exit.page_fault_extra_ns = 2700;
  secure_.trial_jitter_sigma = 0.018;

  if (fw_ == TdxFirmware::kPreFix) {
    // Pre-TDX_1.5.05.46.698 behaviour: pathological SEAM transition costs
    // and per-fill stalls that slowed some workloads up to 10x (§III-B).
    secure_.exit.secure_exit_extra_ns *= 40.0;
    secure_.mem.enc_extra_ns *= 14.0;
    secure_.mem.integrity_extra_ns *= 14.0;
    secure_.io.bounce_fixed_ns *= 22.0;
    secure_.io.bounce_byte_ns *= 14.0;
    secure_.exit.page_fault_extra_ns *= 12.0;
    secure_.trial_jitter_sigma = 0.05;
  }
}

AttestationCosts TdxPlatform::attestation() const {
  // DCAP path (§IV-C): TDCALL TDG.MR.REPORT, then the host-side Quoting
  // Enclave turns the report into a signed quote. Verification must fetch
  // TCB info and CRLs from the Intel PCS over the network [20].
  AttestationCosts a;
  a.report_request = 3.2 * kMs;       // TDREPORT via TDCALL + module
  a.measurement = 1.1 * kMs;          // RTMR collection + hashing
  a.sign = 92 * kMs;                  // QE quote generation (ECDSA, enclave)
  a.collateral_round_trips = 4;       // TCB info, QE identity, 2x CRL
  a.collateral_rtt = 310 * kMs;       // WAN RTT + PCS service time
  a.collateral_local_fetch = 0;
  a.verify_compute = 41 * kMs;        // chain + quote signature + TCB checks
  a.supported = true;
  return a;
}

}  // namespace confbench::tee

// Co-located confidential VMs (paper §VI, future work).
//
// "We intend to study the overheads of co-locating and executing several
// TEE-aware VMs inside the same host, as it happens in a typical
// cloud-based multi-tenant scenario." ColocatedPlatform decorates any base
// platform with contention from `tenants` concurrently active VMs:
// shared-LLC pressure raises effective DRAM latency and trims MLP, the
// shared crypto engine's per-line surcharge grows with queueing, block and
// network devices serve more queues, and the hypervisor's exit handling
// slows under load. Secure VMs suffer slightly more than normal ones
// because the memory-protection hardware is itself the shared bottleneck.
#pragma once

#include <memory>

#include "tee/platform.h"

namespace confbench::tee {

class ColocatedPlatform final : public Platform {
 public:
  /// `tenants` >= 1; 1 reproduces the base platform exactly.
  ColocatedPlatform(PlatformPtr base, int tenants);

  [[nodiscard]] TeeKind kind() const override { return base_->kind(); }
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] const sim::PlatformCosts& costs(bool secure) const override {
    return secure ? secure_ : normal_;
  }
  [[nodiscard]] bool has_perf_counters(bool secure) const override {
    return base_->has_perf_counters(secure);
  }
  [[nodiscard]] AttestationCosts attestation() const override {
    return base_->attestation();
  }
  [[nodiscard]] std::string_view exit_primitive() const override {
    return base_->exit_primitive();
  }
  [[nodiscard]] bool simulated() const override { return base_->simulated(); }

  [[nodiscard]] int tenants() const { return tenants_; }

 private:
  static sim::PlatformCosts contend(const sim::PlatformCosts& base,
                                    int tenants, bool secure);

  PlatformPtr base_;
  int tenants_;
  std::string name_;
  sim::PlatformCosts normal_;
  sim::PlatformCosts secure_;
};

}  // namespace confbench::tee

#include "tee/cca.h"

namespace confbench::tee {

using sim::kMs;
using sim::kUs;

CcaPlatform::CcaPlatform() {
  // --- Normal VM inside the FVP simulator ---------------------------------
  // The FVP is functionally accurate but not cycle-accurate; we model it as
  // a uniform slowdown with wide run-to-run variance.
  normal_.cpu = {.freq_ghz = 2.0, .cpi = 0.62, .fp_cpi = 1.3,
                 .sim_slowdown = 7.5};
  normal_.mem = {.l1_lat_cy = 4, .l2_lat_cy = 15, .llc_lat_cy = 50,
                 .dram_lat_ns = 100, .mlp = 3.0,
                 .enc_extra_ns = 0.0, .integrity_extra_ns = 0.0};
  normal_.exit = {.syscall_ns = 140, .exit_rate_per_syscall = 0.05,
                  .vmexit_ns = 9000, .secure_exit_extra_ns = 0,
                  .timer_wake_exit = 1.0, .ctx_switch_ns = 1600};
  normal_.io = {.blk_fixed_ns = 55 * kUs, .blk_byte_ns = 0.9,
                .flush_ns = 140 * kUs,
                .bounce_fixed_ns = 0, .bounce_byte_ns = 0,
                .net_rtt_ns = 900 * kUs, .net_byte_ns = 0.6};
  normal_.trial_jitter_sigma = 0.055;

  // --- Realm (confidential VM) ---------------------------------------------
  secure_ = normal_;
  // Realm-side execution interposes the RMM on faults, timers and IPIs;
  // under simulation this shows up as a broad compute penalty.
  secure_.cpu.cpi = 0.95;
  secure_.cpu.fp_cpi = 1.62;
  // Granule Protection Table walks + MEC-style protection on DRAM traffic.
  secure_.mem.enc_extra_ns = 3.0;
  secure_.mem.integrity_extra_ns = 9.0;
  secure_.mem.mlp = 2.2;  // simulator serialises misses more aggressively
  // REC enter/exit through the RMM is extremely slow on the FVP.
  secure_.exit.secure_exit_extra_ns = 58 * kUs;
  secure_.exit.exit_rate_per_syscall = 0.10;  // stage-2 assists are frequent
  // Two abstraction layers for I/O (tap + tun + virtio, §III-B) plus
  // realm shared-memory copies.
  secure_.io.bounce_fixed_ns = 3000 * kUs;
  secure_.io.bounce_byte_ns = 2.6;
  // Granule delegation through the RMM on realm page faults (FVP).
  secure_.exit.page_fault_extra_ns = 26 * kUs;
  secure_.trial_jitter_sigma = 0.11;  // Fig. 8: realms show wide whiskers
}

AttestationCosts CcaPlatform::attestation() const {
  // The FVP lacks the hardware needed for end-to-end attestation (§IV-B):
  // ConfBench reports it as unsupported, as the paper leaves CCA out of
  // Fig. 5.
  AttestationCosts a;
  a.supported = false;
  return a;
}

}  // namespace confbench::tee

#include "tee/none.h"

namespace confbench::tee {

using sim::kUs;

NonePlatform::NonePlatform() {
  costs_.cpu = {.freq_ghz = 3.1, .cpi = 0.5, .fp_cpi = 1.0,
                .sim_slowdown = 1.0};
  costs_.mem = {.l1_lat_cy = 4, .l2_lat_cy = 14, .llc_lat_cy = 44,
                .dram_lat_ns = 88, .mlp = 4.0,
                .enc_extra_ns = 0.0, .integrity_extra_ns = 0.0};
  costs_.exit = {.syscall_ns = 112, .exit_rate_per_syscall = 0.05,
                 .vmexit_ns = 1450, .secure_exit_extra_ns = 0,
                 .timer_wake_exit = 1.0, .ctx_switch_ns = 1120};
  costs_.io = {.blk_fixed_ns = 16 * kUs, .blk_byte_ns = 0.24,
               .flush_ns = 108 * kUs,
               .bounce_fixed_ns = 0, .bounce_byte_ns = 0,
               .net_rtt_ns = 112 * kUs, .net_byte_ns = 0.085};
  costs_.trial_jitter_sigma = 0.012;
}

}  // namespace confbench::tee

// AMD SEV-SNP platform model.
//
// Models the testbed of §IV-A: 16-core EPYC 9124 @ 3.0 GHz. Secure VMs pay
// SME-class memory encryption on DRAM traffic and RMP ownership checks, but
// I/O through explicitly shared (unencrypted) buffers is cheaper than TDX's
// bounce-buffer path — producing the paper's CPU-vs-I/O crossover (§IV-D).
#pragma once

#include "tee/platform.h"

namespace confbench::tee {

class SevSnpPlatform final : public Platform {
 public:
  SevSnpPlatform();

  [[nodiscard]] TeeKind kind() const override { return TeeKind::kSevSnp; }
  [[nodiscard]] std::string_view name() const override { return "sev-snp"; }
  [[nodiscard]] const sim::PlatformCosts& costs(bool secure) const override {
    return secure ? secure_ : normal_;
  }
  [[nodiscard]] bool has_perf_counters(bool /*secure*/) const override {
    return true;
  }
  [[nodiscard]] AttestationCosts attestation() const override;
  [[nodiscard]] std::string_view exit_primitive() const override {
    return "VMEXIT";
  }

 private:
  sim::PlatformCosts normal_;
  sim::PlatformCosts secure_;
};

}  // namespace confbench::tee

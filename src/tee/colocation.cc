#include "tee/colocation.h"

#include <algorithm>
#include <stdexcept>

namespace confbench::tee {

ColocatedPlatform::ColocatedPlatform(PlatformPtr base, int tenants)
    : base_(std::move(base)), tenants_(tenants) {
  if (!base_) throw std::invalid_argument("null base platform");
  if (tenants_ < 1) throw std::invalid_argument("tenants must be >= 1");
  name_ = std::string(base_->name()) + "-x" + std::to_string(tenants_);
  normal_ = contend(base_->costs(false), tenants_, /*secure=*/false);
  secure_ = contend(base_->costs(true), tenants_, /*secure=*/true);
}

sim::PlatformCosts ColocatedPlatform::contend(const sim::PlatformCosts& base,
                                              int tenants, bool secure) {
  sim::PlatformCosts c = base;
  const double extra = static_cast<double>(tenants - 1);
  // Memory-system pressure: DRAM queueing and reduced effective MLP.
  c.mem.dram_lat_ns *= 1.0 + 0.13 * extra;
  c.mem.mlp = std::max(1.0, c.mem.mlp * (1.0 - 0.06 * extra));
  // The shared memory-crypto engine queues protected lines; the protection
  // surcharge grows super-linearly relative to plain DRAM pressure.
  c.mem.enc_extra_ns *= 1.0 + 0.22 * extra;
  c.mem.integrity_extra_ns *= 1.0 + 0.22 * extra;
  // Hypervisor exit handling contends on shared state.
  c.exit.vmexit_ns *= 1.0 + 0.10 * extra;
  c.exit.secure_exit_extra_ns *= 1.0 + 0.14 * extra;
  c.exit.page_fault_extra_ns *= 1.0 + 0.14 * extra;
  // Device queues shared across tenants.
  c.io.blk_fixed_ns *= 1.0 + 0.18 * extra;
  c.io.blk_byte_ns *= 1.0 + 0.10 * extra;
  c.io.flush_ns *= 1.0 + 0.12 * extra;
  c.io.bounce_fixed_ns *= 1.0 + 0.10 * extra;
  // Noisy neighbours: wider run-to-run spread, more so for secure VMs.
  c.trial_jitter_sigma *= 1.0 + (secure ? 0.30 : 0.22) * extra;
  return c;
}

}  // namespace confbench::tee

// Name -> platform factory registry.
//
// The gateway resolves the platform requested in a query ("tdx", "sev-snp",
// "cca", "none") through this registry; third parties can register new TEEs
// without touching core code.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "tee/platform.h"

namespace confbench::tee {

class Registry {
 public:
  using Factory = std::function<PlatformPtr()>;

  /// The process-wide registry, pre-populated with the built-in platforms.
  static Registry& instance();

  /// Registers (or replaces) a factory under `name`.
  void register_platform(std::string name, Factory f);

  /// Creates the platform registered under `name`; nullptr if unknown.
  [[nodiscard]] PlatformPtr create(std::string_view name) const;

  [[nodiscard]] std::vector<std::string> names() const;

 private:
  Registry();
  std::vector<std::pair<std::string, Factory>> entries_;
};

}  // namespace confbench::tee

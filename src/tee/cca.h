// Arm CCA platform model (FVP-simulated).
//
// No CCA silicon exists (§IV-A); like the paper we model execution inside
// the Arm Fixed Virtual Platform simulator. Both the realm (secure) and the
// co-located normal VM run *inside* the simulator, so both tables carry the
// FVP slowdown; the realm additionally pays RMI/RSI world switches through
// the RMM, granule-protection + MEC checks on memory traffic, and a heavily
// penalised two-hop virtio path (host tap -> simulator tun -> VM, §III-B).
// Realms expose no PMU, which is why has_perf_counters() is false for the
// secure side — exercising ConfBench's custom-collector hook.
#pragma once

#include "tee/platform.h"

namespace confbench::tee {

class CcaPlatform final : public Platform {
 public:
  CcaPlatform();

  [[nodiscard]] TeeKind kind() const override { return TeeKind::kCca; }
  [[nodiscard]] std::string_view name() const override { return "cca"; }
  [[nodiscard]] const sim::PlatformCosts& costs(bool secure) const override {
    return secure ? secure_ : normal_;
  }
  [[nodiscard]] bool has_perf_counters(bool secure) const override {
    return !secure;  // no PMU inside realms (§III-B)
  }
  [[nodiscard]] AttestationCosts attestation() const override;
  [[nodiscard]] std::string_view exit_primitive() const override {
    return "RMI";
  }
  [[nodiscard]] bool simulated() const override { return true; }

 private:
  sim::PlatformCosts normal_;
  sim::PlatformCosts secure_;
};

}  // namespace confbench::tee

// Baseline "no TEE" platform: a plain KVM host.
//
// Used for sanity baselines and for tests; its secure table equals its
// normal table, so every ratio is 1.0 modulo jitter.
#pragma once

#include "tee/platform.h"

namespace confbench::tee {

class NonePlatform final : public Platform {
 public:
  NonePlatform();

  [[nodiscard]] TeeKind kind() const override { return TeeKind::kNone; }
  [[nodiscard]] std::string_view name() const override { return "none"; }
  [[nodiscard]] const sim::PlatformCosts& costs(bool /*secure*/) const
      override {
    return costs_;
  }
  [[nodiscard]] bool has_perf_counters(bool /*secure*/) const override {
    return true;
  }
  [[nodiscard]] AttestationCosts attestation() const override {
    AttestationCosts a;
    a.supported = false;
    return a;
  }
  [[nodiscard]] std::string_view exit_primitive() const override {
    return "VMEXIT";
  }

 private:
  sim::PlatformCosts costs_;
};

}  // namespace confbench::tee

#include "tee/platform.h"

namespace confbench::tee {

std::string_view to_string(TeeKind k) {
  switch (k) {
    case TeeKind::kNone:
      return "none";
    case TeeKind::kTdx:
      return "tdx";
    case TeeKind::kSevSnp:
      return "sev-snp";
    case TeeKind::kCca:
      return "cca";
  }
  return "?";
}

std::string_view to_string(ExitReason r) {
  switch (r) {
    case ExitReason::kSyscallAssist:
      return "syscall-assist";
    case ExitReason::kMmio:
      return "mmio";
    case ExitReason::kTimer:
      return "timer";
    case ExitReason::kInterrupt:
      return "interrupt";
    case ExitReason::kPageAccept:
      return "page-accept";
    case ExitReason::kCount:
      break;
  }
  return "?";
}

}  // namespace confbench::tee

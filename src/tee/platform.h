// TEE platform abstraction.
//
// A `Platform` bundles everything ConfBench needs to know about one TEE
// technology: the cost tables for its secure and normal VMs, its VM-exit
// taxonomy, whether guests can use hardware perf counters, and the latency
// profile of its attestation machinery. Adding a new TEE to ConfBench means
// implementing this interface and registering it (see tee/registry.h) —
// mirroring the extensibility claim of the paper (§III-A).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "sim/costs.h"
#include "sim/time.h"

namespace confbench::tee {

enum class TeeKind : std::uint8_t { kNone, kTdx, kSevSnp, kCca };

std::string_view to_string(TeeKind k);

/// VM-exit classes tracked by the metrics layer. Names differ per platform
/// (TDCALL / VMEXIT / RMI) but the classes are common.
enum class ExitReason : std::uint8_t {
  kSyscallAssist,  ///< syscall needing hypervisor help (vmcall/tdvmcall)
  kMmio,           ///< device MMIO / virtio kick
  kTimer,          ///< timer programming and wake-up
  kInterrupt,      ///< external interrupt delivery
  kPageAccept,     ///< private-page conversion / acceptance
  kCount
};

std::string_view to_string(ExitReason r);

/// Latency profile of the platform's attestation flow; consumed by the
/// attest:: module to produce Fig. 5.
struct AttestationCosts {
  sim::Ns report_request = 0;  ///< guest -> firmware/module report request
  sim::Ns measurement = 0;     ///< collecting and hashing claims
  sim::Ns sign = 0;            ///< signing by QE / AMD-SP / RMM
  /// Verification-side collateral fetch: number of network round-trips and
  /// per-trip latency. Zero trips means collateral comes from the hardware
  /// (the SNP model) or a local cache.
  int collateral_round_trips = 0;
  sim::Ns collateral_rtt = 0;
  sim::Ns collateral_local_fetch = 0;  ///< local/hardware cert retrieval
  sim::Ns verify_compute = 0;          ///< signature + TCB checks
  bool supported = true;               ///< CCA/FVP: no attestation hardware
};

class Platform {
 public:
  virtual ~Platform() = default;

  [[nodiscard]] virtual TeeKind kind() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Cost table for a VM on this platform. `secure` selects the
  /// confidential-VM table; false selects the co-located normal VM.
  [[nodiscard]] virtual const sim::PlatformCosts& costs(bool secure) const = 0;

  /// Whether guests of this kind can read PMU counters (perf). CCA realms
  /// cannot (§III-B), forcing the custom-collector path.
  [[nodiscard]] virtual bool has_perf_counters(bool secure) const = 0;

  [[nodiscard]] virtual AttestationCosts attestation() const = 0;

  /// Human-readable name of the world-switch primitive, for reports
  /// (e.g. "TDCALL", "VMEXIT", "RMI").
  [[nodiscard]] virtual std::string_view exit_primitive() const = 0;

  /// True when the platform runs under a software simulator (FVP): timing
  /// has extra variance and absolute numbers are only comparable within the
  /// same simulator (§IV-A).
  [[nodiscard]] virtual bool simulated() const { return false; }
};

using PlatformPtr = std::shared_ptr<const Platform>;

}  // namespace confbench::tee

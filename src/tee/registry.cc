#include "tee/registry.h"

#include <algorithm>

#include "tee/cca.h"
#include "tee/sgx.h"
#include "tee/none.h"
#include "tee/sev_snp.h"
#include "tee/tdx.h"

namespace confbench::tee {

Registry::Registry() {
  register_platform("none", [] { return std::make_shared<NonePlatform>(); });
  register_platform("tdx", [] { return std::make_shared<TdxPlatform>(); });
  register_platform("sev-snp",
                    [] { return std::make_shared<SevSnpPlatform>(); });
  register_platform("cca", [] { return std::make_shared<CcaPlatform>(); });
  // First-generation process TEE, kept out of the standard deployment but
  // available for the enclave-vs-VM comparison (paper SVI future work).
  register_platform("sgx", [] { return std::make_shared<SgxPlatform>(); });
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

void Registry::register_platform(std::string name, Factory f) {
  for (auto& [n, factory] : entries_) {
    if (n == name) {
      factory = std::move(f);
      return;
    }
  }
  entries_.emplace_back(std::move(name), std::move(f));
}

PlatformPtr Registry::create(std::string_view name) const {
  for (const auto& [n, factory] : entries_) {
    if (n == name) return factory();
  }
  return nullptr;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [n, _] : entries_) out.push_back(n);
  return out;
}

}  // namespace confbench::tee

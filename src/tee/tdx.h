// Intel TDX platform model.
//
// Models the testbed of §IV-A: 8-core Xeon Gold 5515+ @ 3.2 GHz. The secure
// table charges SEAM transitions (TDCALL/SEAMCALL) on assisted syscalls,
// TME-MK memory encryption plus logical-integrity checks on DRAM traffic,
// and — crucially for the paper's I/O findings — swiotlb bounce-buffer
// copies on every block/network DMA, because devices cannot access TD
// private memory.
//
// §III-B reports that a firmware upgrade (TDX_1.5.05.46.698) improved
// runtimes "up to a 10x factor"; `Firmware::kPreFix` reproduces the broken
// behaviour for the ablation bench.
#pragma once

#include "tee/platform.h"

namespace confbench::tee {

enum class TdxFirmware { kPreFix, kFixed };

class TdxPlatform final : public Platform {
 public:
  explicit TdxPlatform(TdxFirmware fw = TdxFirmware::kFixed);

  [[nodiscard]] TeeKind kind() const override { return TeeKind::kTdx; }
  [[nodiscard]] std::string_view name() const override { return "tdx"; }
  [[nodiscard]] const sim::PlatformCosts& costs(bool secure) const override {
    return secure ? secure_ : normal_;
  }
  [[nodiscard]] bool has_perf_counters(bool /*secure*/) const override {
    return true;
  }
  [[nodiscard]] AttestationCosts attestation() const override;
  [[nodiscard]] std::string_view exit_primitive() const override {
    return "TDCALL";
  }
  [[nodiscard]] TdxFirmware firmware() const { return fw_; }

 private:
  TdxFirmware fw_;
  sim::PlatformCosts normal_;
  sim::PlatformCosts secure_;
};

}  // namespace confbench::tee

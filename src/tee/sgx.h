// Intel SGX platform model (first-generation, process-level TEE).
//
// §VI lists "support [for] native processes (for Intel SGX enclaves)" as
// future work, and the introduction motivates second-generation VM TEEs by
// SGX's burdens. This model lets ConfBench quantify that motivation: the
// "secure" unit is an enclave process, with expensive ECALL/OCALL world
// switches on every syscall (enclaves cannot issue syscalls directly), EPC
// paging costs once the working set exceeds the ~192-MiB EPC, and MEE
// memory encryption with a steeper latency than TME-class engines.
#pragma once

#include "tee/platform.h"

namespace confbench::tee {

class SgxPlatform final : public Platform {
 public:
  SgxPlatform();

  [[nodiscard]] TeeKind kind() const override { return TeeKind::kNone; }
  [[nodiscard]] std::string_view name() const override { return "sgx"; }
  [[nodiscard]] const sim::PlatformCosts& costs(bool secure) const override {
    return secure ? secure_ : normal_;
  }
  /// Enclaves cannot be profiled with standard PMU access (anti side-channel
  /// measures); like CCA realms, the custom-collector path applies.
  [[nodiscard]] bool has_perf_counters(bool secure) const override {
    return !secure;
  }
  [[nodiscard]] AttestationCosts attestation() const override;
  [[nodiscard]] std::string_view exit_primitive() const override {
    return "EOCALL";
  }

 private:
  sim::PlatformCosts normal_;
  sim::PlatformCosts secure_;
};

}  // namespace confbench::tee

#include "tee/sev_snp.h"

namespace confbench::tee {

using sim::kMs;
using sim::kUs;

SevSnpPlatform::SevSnpPlatform() {
  // --- Normal VM on the EPYC host ----------------------------------------
  normal_.cpu = {.freq_ghz = 3.0, .cpi = 0.52, .fp_cpi = 1.05,
                 .sim_slowdown = 1.0};
  normal_.mem = {.l1_lat_cy = 4, .l2_lat_cy = 13, .llc_lat_cy = 46,
                 .dram_lat_ns = 92, .mlp = 4.0,
                 .enc_extra_ns = 0.0, .integrity_extra_ns = 0.0};
  normal_.exit = {.syscall_ns = 115, .exit_rate_per_syscall = 0.05,
                  .vmexit_ns = 1500, .secure_exit_extra_ns = 0,
                  .timer_wake_exit = 1.0, .ctx_switch_ns = 1150};
  normal_.io = {.blk_fixed_ns = 17 * kUs, .blk_byte_ns = 0.25,
                .flush_ns = 110 * kUs,
                .bounce_fixed_ns = 0, .bounce_byte_ns = 0,
                .net_rtt_ns = 115 * kUs, .net_byte_ns = 0.085};
  normal_.trial_jitter_sigma = 0.013;

  // --- SNP guest ----------------------------------------------------------
  secure_ = normal_;
  // AES-128 memory encryption adds a bit more latency than Intel's TME-MK;
  // RMP lookups are folded into a small per-fill integrity charge.
  secure_.mem.enc_extra_ns = 2.1;
  secure_.mem.integrity_extra_ns = 0.35;
  // World switches are plain VMEXITs plus GHCB marshalling: cheaper than
  // TDX's SEAM round-trip.
  secure_.exit.secure_exit_extra_ns = 3200;
  // Para-virtualised I/O uses explicitly shared unencrypted pages: one
  // extra copy, no re-encryption round trip.
  secure_.io.bounce_fixed_ns = 1.2 * kUs;
  secure_.io.bounce_byte_ns = 0.05;
  // PVALIDATE + RMP update on private-page faults.
  secure_.exit.page_fault_extra_ns = 3400;
  secure_.trial_jitter_sigma = 0.02;
}

AttestationCosts SevSnpPlatform::attestation() const {
  // snpguest flow (§IV-C): MSG_REPORT_REQ to the AMD Secure Processor,
  // which signs with the VCEK; verification walks the ARK -> ASK -> VCEK
  // chain, with certificates fetched from the hardware/hypervisor rather
  // than the network [46], [50].
  AttestationCosts a;
  a.report_request = 1.6 * kMs;      // GHCB guest message to the AMD-SP
  a.measurement = 0.4 * kMs;         // report field population
  a.sign = 14 * kMs;                 // AMD-SP ECDSA-P384 signing
  a.collateral_round_trips = 0;      // certs come from the platform
  a.collateral_rtt = 0;
  a.collateral_local_fetch = 5.5 * kMs;  // extended-report cert retrieval
  a.verify_compute = 22 * kMs;       // 3-step chain walk + report checks
  a.supported = true;
  return a;
}

}  // namespace confbench::tee

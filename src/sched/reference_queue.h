// Reference discrete-event engine: one std::push_heap-managed binary heap
// over std::function closures — the storage the timer-wheel EventQueue
// replaced, kept alive behind the same EventId API.
//
// Two jobs:
//   - the *oracle* for the determinism regression suite: the wheel must
//     execute randomized schedules (including same-tick cancel/reschedule
//     races) in exactly this engine's order, because both implement the
//     same (time, seq) total-order contract;
//   - the *baseline* for bench/sim_engine: the engine speedup recorded in
//     BENCH_sim_engine.json is wheel-vs-this on identical event streams.
//
// Cancellation here is the lazy-tombstone variant: the heap node stays and
// is skipped on pop when its (slot, seq) no longer matches — semantically
// identical to the wheel (cancelled events never run, never advance the
// clock), just O(log n) per pop instead of near-O(1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sched/event_queue.h"  // EventId
#include "sim/clock.h"
#include "sim/time.h"

namespace confbench::sched {

class ReferenceEventQueue {
 public:
  using Action = std::function<void()>;

  explicit ReferenceEventQueue(sim::VirtualClock& clock) : clock_(clock) {}

  ReferenceEventQueue(const ReferenceEventQueue&) = delete;
  ReferenceEventQueue& operator=(const ReferenceEventQueue&) = delete;

  EventId at(sim::Ns t, Action a) {
    if (t < clock_.now()) {
      ++clamped_;
      t = clock_.now();
    }
    std::uint32_t slot;
    if (free_.empty()) {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    } else {
      slot = free_.back();
      free_.pop_back();
    }
    const std::uint64_t seq = next_seq_++;
    slots_[slot] = Slot{std::move(a), t, seq};
    heap_.push_back(Entry{t, seq, slot});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++live_;
    return EventId{slot, seq};
  }
  EventId after(sim::Ns d, Action a) {
    return at(clock_.now() + d, std::move(a));
  }

  bool cancel(EventId id) {
    if (!id.valid() || id.slot >= slots_.size()) return false;
    Slot& s = slots_[id.slot];
    if (s.seq != id.seq) return false;
    s.act = nullptr;
    s.seq = 0;
    free_.push_back(id.slot);
    --live_;
    ++cancelled_;
    return true;
  }

  EventId reschedule(EventId id, sim::Ns t) {
    if (!id.valid() || id.slot >= slots_.size()) return EventId{};
    Slot& s = slots_[id.slot];
    if (s.seq != id.seq) return EventId{};
    if (t < clock_.now()) {
      ++clamped_;
      t = clock_.now();
    }
    const std::uint64_t seq = next_seq_++;
    s.seq = seq;
    s.time = t;
    heap_.push_back(Entry{t, seq, id.slot});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return EventId{id.slot, seq};
  }

  bool step() {
    for (;;) {
      if (heap_.empty()) return false;
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      const Entry e = heap_.back();
      heap_.pop_back();
      Slot& s = slots_[e.slot];
      if (s.seq != e.seq) continue;  // tombstoned
      Action act = std::move(s.act);
      s.act = nullptr;
      s.seq = 0;
      free_.push_back(e.slot);
      --live_;
      clock_.advance(e.time - clock_.now());
      ++processed_;
      act();
      return true;
    }
  }

  std::uint64_t run(std::uint64_t max_events = UINT64_MAX) {
    std::uint64_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] sim::Ns now() const { return clock_.now(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }
  [[nodiscard]] std::uint64_t cancelled() const { return cancelled_; }
  [[nodiscard]] std::uint64_t clamped() const { return clamped_; }

 private:
  struct Slot {
    Action act;
    sim::Ns time = 0;
    std::uint64_t seq = 0;
  };
  struct Entry {
    sim::Ns time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  sim::VirtualClock& clock_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<Entry> heap_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t clamped_ = 0;
};

}  // namespace confbench::sched

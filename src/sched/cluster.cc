#include "sched/cluster.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "metrics/json.h"
#include "sim/clock.h"
#include "tee/registry.h"
#include "vm/guest_vm.h"

namespace confbench::sched {

double ServiceModel::replica_capacity_rps(int concurrency) const {
  const double total_s = total_ns() / sim::kSec;
  if (total_s <= 0) return 0;
  // Workers overlap the parallel portion; the serialized (bounce-buffer)
  // portion funnels through the per-VM slot pool and caps the VM's rate.
  const double parallel_rate = static_cast<double>(concurrency) / total_s;
  if (serialized_ns <= 0) return parallel_rate;
  const double bounce_rate =
      std::max(1, bounce_slots) * sim::kSec / serialized_ns;
  return std::min(parallel_rate, bounce_rate);
}

ServiceModel ServiceModel::calibrate(core::ConfBench& system,
                                     const std::string& function,
                                     const std::string& language,
                                     const std::string& platform, bool secure,
                                     int probes) {
  tee::PlatformPtr plat = tee::Registry::instance().create(platform);
  if (!plat) throw std::invalid_argument("unknown platform: " + platform);
  const sim::PlatformCosts& costs = plat->costs(secure);

  double total = 0, io_share = 0;
  int n = 0;
  for (int t = 0; t < probes; ++t) {
    const core::InvocationRecord rec = system.gateway().invoke(
        {.function = function,
         .language = language,
         .platform = platform,
         .secure = secure,
         .trial = static_cast<std::uint64_t>(t)});
    if (!rec.ok())
      throw std::runtime_error("calibration invoke failed: " + rec.error);
    total += rec.function_ns;
    const metrics::PerfCounters& pc = rec.perf;
    const double parts = pc.t_compute_ns + pc.t_memory_ns + pc.t_os_ns +
                         pc.t_io_ns + pc.t_other_ns;
    if (parts > 0) io_share += pc.t_io_ns / parts;
    ++n;
  }

  ServiceModel m;
  const double mean_total = n ? total / n : 1 * sim::kMs;
  io_share = n ? io_share / n : 0;
  // Only platforms that actually route DMA through bounce buffers (TDX
  // swiotlb, CCA realm shared pages) serialize their I/O portion; SNP's
  // shared-page path and every normal VM keep I/O on the parallel side.
  const bool bounced = secure && costs.io.bounce_fixed_ns > 0;
  m.serialized_ns = bounced ? mean_total * io_share : 0;
  m.parallel_ns = mean_total - m.serialized_ns;
  m.jitter_sigma = costs.trial_jitter_sigma;

  // TEE-specific cold start: boot a throwaway VM of the same kind the
  // autoscaler would add (firmware/kernel plus, on confidential VMs, the
  // eager private-memory acceptance charged by GuestVm::boot).
  vm::VmConfig vc{platform + "/coldstart", plat, secure, vm::UnitKind::kVm,
                  8, 16ULL << 30};
  m.cold_start_ns = vm::GuestVm(vc).boot();
  return m;
}

double ClusterResult::throughput_rps() const {
  return makespan_ns > 0
             ? static_cast<double>(completed) / (makespan_ns / sim::kSec)
             : 0.0;
}

std::string ClusterResult::to_json() const {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("function").value(cfg.function);
  w.key("language").value(cfg.language);
  w.key("platform").value(cfg.platform);
  w.key("secure").value(cfg.secure);
  w.key("arrival").value(std::string(to_string(cfg.arrival)));
  w.key("rate_rps").value(cfg.rate_rps);
  w.key("seed").value(cfg.seed);
  w.key("model");
  w.begin_object();
  w.key("parallel_ns").value(model.parallel_ns);
  w.key("serialized_ns").value(model.serialized_ns);
  w.key("bounce_slots").value(model.bounce_slots);
  w.key("jitter_sigma").value(model.jitter_sigma);
  w.key("cold_start_ns").value(model.cold_start_ns);
  w.end_object();
  w.key("offered").value(offered);
  w.key("completed").value(completed);
  w.key("rejected").value(rejected);
  w.key("makespan_ns").value(makespan_ns);
  w.key("throughput_rps").value(throughput_rps());
  w.key("peak_warm").value(peak_warm);
  w.key("latency_ns");
  w.begin_object();
  w.key("p50").value(latency.p50());
  w.key("p95").value(latency.p95());
  w.key("p99").value(latency.p99());
  w.key("p999").value(latency.p999());
  w.key("mean").value(latency.mean());
  w.key("max").value(latency.max());
  w.end_object();
  w.key("queue_wait_p99_ns").value(queue_wait.p99());
  w.end_object();
  return w.str();
}

double ClusterExperiment::fleet_capacity_rps(const ServiceModel& model) const {
  return model.replica_capacity_rps(cfg_.queue.concurrency) *
         cfg_.scaler.max_replicas;
}

ClusterResult ClusterExperiment::run(core::ConfBench& system) const {
  const ServiceModel model =
      ServiceModel::calibrate(system, cfg_.function, cfg_.language,
                              cfg_.platform, cfg_.secure,
                              cfg_.calibration_probes);
  return run_with_model(model);
}

namespace {

struct Replica {
  enum class State : std::uint8_t { kParked, kBooting, kWarm };
  ReplicaQueue queue;
  State state = State::kParked;
  /// Virtual time at which each swiotlb slot of this VM becomes free; a
  /// request's serialized portion takes the earliest-free slot.
  std::vector<sim::Ns> bounce_free;
};

/// Per-request phase timestamps, recorded only when a tracer is attached;
/// turned into span trees for the slowest requests after the run.
struct TailSample {
  sim::Ns arrival = 0;
  sim::Ns start = 0;     ///< service start (queue wait ends)
  sim::Ns par_end = 0;   ///< parallel portion done
  sim::Ns io_start = 0;  ///< bounce slot acquired
  sim::Ns finish = 0;
  std::uint32_t replica = 0;
  bool done = false;
};

struct BootEvent {
  std::uint32_t replica = 0;
  sim::Ns start = 0;
  sim::Ns end = 0;
};

struct ScalerDecision {
  sim::Ns t = 0;
  int delta = 0;
  int warm = 0;
  int booting = 0;
  std::uint64_t in_service = 0;
  std::uint64_t queued = 0;
};

std::string fmt_ns(sim::Ns t) {
  return std::to_string(static_cast<long long>(t));
}

}  // namespace

ClusterResult ClusterExperiment::run_with_model(
    const ServiceModel& model) const {
  ClusterResult res;
  res.cfg = cfg_;
  res.model = model;

  sim::VirtualClock clock;
  EventQueue events(clock);

  // Tracing is purely observational: samples are collected on the side and
  // converted to traces after the event loop drains, so the simulation's
  // RNG streams and event order are identical with or without a tracer.
  obs::Tracer* tracer =
      (cfg_.tracer && cfg_.tracer->enabled()) ? cfg_.tracer : nullptr;
  std::vector<TailSample> samples;
  if (tracer) samples.resize(cfg_.requests);
  std::vector<BootEvent> boots;
  std::vector<ScalerDecision> decisions;

  AutoscalerConfig scfg = cfg_.scaler;
  scfg.cold_start_ns = model.cold_start_ns;
  scfg.min_warm = std::clamp(scfg.min_warm, 1, scfg.max_replicas);
  Autoscaler scaler(scfg);

  // Replica fleet: a TeePool (least-loaded, documented deterministic
  // tie-break) fronts the per-VM queues; parked replicas are disabled.
  core::TeePool pool(cfg_.platform, core::LoadBalancePolicy::kLeastLoaded);
  std::vector<Replica> replicas(static_cast<std::size_t>(scfg.max_replicas));
  int warm = 0, booting = 0;
  for (int i = 0; i < scfg.max_replicas; ++i) {
    pool.add_member({.host = "replica-" + std::to_string(i)});
    replicas[static_cast<std::size_t>(i)].queue = ReplicaQueue(cfg_.queue);
    replicas[static_cast<std::size_t>(i)].bounce_free.assign(
        static_cast<std::size_t>(std::max(1, model.bounce_slots)), 0.0);
    const bool start_warm = i < scfg.min_warm;
    pool.set_enabled(static_cast<std::uint32_t>(i), start_warm);
    replicas[static_cast<std::size_t>(i)].state =
        start_warm ? Replica::State::kWarm : Replica::State::kParked;
    warm += start_warm;
  }
  res.peak_warm = warm;

  sim::Rng jitter_rng(sim::hash_combine(cfg_.seed,
                                        sim::stable_hash("service-jitter")));
  ArrivalProcess arrivals(cfg_.arrival, std::max(cfg_.rate_rps, 1e-9),
                          sim::hash_combine(cfg_.seed,
                                            sim::stable_hash("arrivals")));

  std::vector<double> arrival_ns;
  std::vector<int> client_of;  // closed-loop only
  arrival_ns.reserve(std::min<std::uint64_t>(cfg_.requests, 1 << 22));
  std::uint64_t issued = 0;

  const bool closed = cfg_.closed_loop_clients > 0;

  // Mutually recursive handlers, declared up front.
  std::function<void(std::uint32_t, std::uint64_t)> on_complete;
  std::function<void(int)> client_issue;

  auto start_service = [&](std::uint32_t idx, std::uint64_t id) {
    Replica& r = replicas[idx];
    if (id >= cfg_.warmup_requests)
      res.queue_wait.record(clock.now() - arrival_ns[id]);
    const double j = jitter_rng.jitter(model.jitter_sigma);
    const sim::Ns parallel = model.parallel_ns * j;
    const sim::Ns par_end = clock.now() + parallel;
    sim::Ns io_start = par_end;
    sim::Ns finish;
    if (model.serialized_ns > 0) {
      // The I/O tail of the request contends on the VM's slot-limited
      // bounce-buffer pool: it grabs the earliest-free slot, starting when
      // both the parallel work and that slot are done.
      auto slot = std::min_element(r.bounce_free.begin(),
                                   r.bounce_free.end());
      io_start = std::max(par_end, *slot);
      finish = io_start + model.serialized_ns * j;
      *slot = finish;
    } else {
      finish = par_end;
    }
    if (tracer && id < samples.size())
      samples[id] = {arrival_ns[id], clock.now(), par_end, io_start,
                     finish,         idx,         true};
    events.at(finish, [&, idx, id] { on_complete(idx, id); });
  };

  auto try_start = [&](std::uint32_t idx) {
    while (auto id = replicas[idx].queue.start_next()) start_service(idx, *id);
  };

  auto dispatch = [&](std::uint64_t id) -> bool {
    core::PoolMember* m = pool.acquire();
    if (!m) {  // no warm replica at all
      ++res.rejected;
      return false;
    }
    Replica& r = replicas[m->index];
    if (!r.queue.admit(id)) {  // 429: replica backlog full
      pool.release(m);
      ++res.rejected;
      return false;
    }
    try_start(m->index);
    return true;
  };

  on_complete = [&](std::uint32_t idx, std::uint64_t id) {
    if (id >= cfg_.warmup_requests)
      res.latency.record(clock.now() - arrival_ns[id]);
    ++res.completed;
    replicas[idx].queue.complete();
    pool.release(&pool.member(idx));
    try_start(idx);
    if (closed)
      events.after(cfg_.think_ns,
                   [&, c = client_of[id]] { client_issue(c); });
  };

  // --- load generation -----------------------------------------------------
  std::function<void()> on_open_arrival = [&] {
    const std::uint64_t id = issued++;
    arrival_ns.push_back(clock.now());
    ++res.offered;
    dispatch(id);
    if (issued < cfg_.requests) events.after(arrivals.next_gap(),
                                             on_open_arrival);
  };

  client_issue = [&](int c) {
    if (issued >= cfg_.requests) return;
    const std::uint64_t id = issued++;
    arrival_ns.push_back(clock.now());
    client_of.push_back(c);
    ++res.offered;
    if (!dispatch(id))  // rejected: the client backs off one think time
      events.after(cfg_.think_ns, [&, c] { client_issue(c); });
  };

  if (closed) {
    client_of.reserve(arrival_ns.capacity());
    for (int c = 0; c < cfg_.closed_loop_clients; ++c)
      events.after(static_cast<double>(c) * sim::kUs,
                   [&, c] { client_issue(c); });
  } else if (cfg_.requests > 0) {
    events.after(arrivals.next_gap(), on_open_arrival);
  }

  // --- autoscaler ticks ----------------------------------------------------
  std::function<void()> tick = [&] {
    std::uint64_t in_service = 0, queued = 0;
    for (const Replica& r : replicas) {
      in_service += static_cast<std::uint64_t>(r.queue.in_service());
      queued += r.queue.queued();
    }
    const int delta = scaler.evaluate(warm, booting, in_service, queued,
                                      cfg_.queue.concurrency, clock.now());
    if (tracer && delta != 0)
      decisions.push_back(
          {clock.now(), delta, warm, booting, in_service, queued});
    if (delta > 0) {
      int to_boot = delta;
      for (std::uint32_t i = 0;
           i < replicas.size() && to_boot > 0; ++i) {
        if (replicas[i].state != Replica::State::kParked) continue;
        replicas[i].state = Replica::State::kBooting;
        ++booting;
        --to_boot;
        const sim::Ns boot_start = clock.now();
        events.after(scfg.cold_start_ns, [&, i, boot_start] {
          if (replicas[i].state != Replica::State::kBooting) return;
          replicas[i].state = Replica::State::kWarm;
          pool.set_enabled(i, true);
          --booting;
          ++warm;
          res.peak_warm = std::max(res.peak_warm, warm);
          if (tracer) boots.push_back({i, boot_start, clock.now()});
        });
      }
    } else if (delta < 0) {
      // Park the highest-index warm replica that is fully idle.
      for (std::uint32_t i = static_cast<std::uint32_t>(replicas.size());
           i-- > 0;) {
        if (replicas[i].state != Replica::State::kWarm) continue;
        if (!replicas[i].queue.idle() || pool.member(i).in_flight != 0)
          continue;
        replicas[i].state = Replica::State::kParked;
        pool.set_enabled(i, false);
        --warm;
        break;
      }
    }
    const bool work_left =
        issued < cfg_.requests || in_service + queued > 0 || booting > 0;
    if (work_left) events.after(scfg.tick_ns, tick);
  };
  events.after(scfg.tick_ns, tick);

  events.run();

  res.makespan_ns = clock.now();
  res.scaler_trace = scaler.trace();

  if (tracer) {
    const std::string run_name =
        cfg_.platform + "/" + cfg_.function +
        (cfg_.secure ? "/secure" : "/normal");

    // Tail traces: the trace_tail slowest steady-state requests, each a
    // well-nested tree of queue-wait / service / bounce-wait / bounce.
    std::vector<std::uint64_t> ids;
    for (std::uint64_t id = cfg_.warmup_requests; id < samples.size(); ++id)
      if (samples[id].done) ids.push_back(id);
    std::sort(ids.begin(), ids.end(),
              [&](std::uint64_t a, std::uint64_t b) {
                const sim::Ns la = samples[a].finish - samples[a].arrival;
                const sim::Ns lb = samples[b].finish - samples[b].arrival;
                return la != lb ? la > lb : a < b;
              });
    const auto k = std::min<std::size_t>(
        ids.size(), static_cast<std::size_t>(std::max(cfg_.trace_tail, 0)));
    for (std::size_t i = 0; i < k; ++i) {
      const TailSample& s = samples[ids[i]];
      obs::Trace& tr = tracer->start_trace(
          run_name + "/tail#" + std::to_string(ids[i]));
      const std::uint32_t root = tr.add_span(
          obs::Category::kInvoke, "request", s.arrival, s.finish);
      tr.set_attr(root, "replica", "replica-" + std::to_string(s.replica));
      tr.set_attr(root, "latency_ns", fmt_ns(s.finish - s.arrival));
      if (s.start > s.arrival)
        tr.add_span(obs::Category::kQueueWait, "queue.wait", s.arrival,
                    s.start, root);
      tr.add_span(obs::Category::kService, "service.parallel", s.start,
                  s.par_end, root);
      if (s.io_start > s.par_end)
        tr.add_span(obs::Category::kBounceWait, "bounce.wait", s.par_end,
                    s.io_start, root);
      if (s.finish > s.io_start)
        tr.add_span(obs::Category::kBounce, "bounce.io", s.io_start,
                    s.finish, root);
    }

    // Fleet trace: cold-start spans plus every autoscaler decision.
    obs::Trace& fleet = tracer->start_trace(run_name + "/fleet");
    for (const BootEvent& b : boots) {
      const std::uint32_t sp = fleet.add_span(
          obs::Category::kColdStart, "replica.boot", b.start, b.end);
      fleet.set_attr(sp, "replica", "replica-" + std::to_string(b.replica));
    }
    for (const ScalerDecision& d : decisions)
      fleet.instant_at("scaler.decision", d.t,
                       {{"delta", std::to_string(d.delta)},
                        {"warm", std::to_string(d.warm)},
                        {"booting", std::to_string(d.booting)},
                        {"in_service", std::to_string(d.in_service)},
                        {"queued", std::to_string(d.queued)}});

    // Run aggregates into the central registry.
    obs::Registry& reg = tracer->registry();
    reg.counter("cluster.offered") += res.offered;
    reg.counter("cluster.completed") += res.completed;
    reg.counter("cluster.rejected") += res.rejected;
    reg.gauge("cluster.peak_warm") = res.peak_warm;
    reg.histogram("cluster.latency_ns").merge(res.latency);
    reg.histogram("cluster.queue_wait_ns").merge(res.queue_wait);
  }
  return res;
}

}  // namespace confbench::sched
